// T4 — Boolean-engine throughput vs. input size (google-benchmark).
//
// Measures the scanline engine on orthogonal and all-angle polygon soups of
// growing size, for OR / AND / XOR, plus the trapezoid and polygon output
// paths. Complexity is expected near O(n log n) in edges for sparse
// overlap, degrading toward O(n^2) splitting for pathological all-angle
// crossing storms (documented engine property, DESIGN.md decision 3).
#include <benchmark/benchmark.h>

#include "core/patterns.h"
#include "geom/boolean.h"
#include "util/rng.h"

namespace {

using namespace ebl;

PolygonSet manhattan_soup(int n_rects, std::uint64_t seed) {
  Rng rng(seed);
  PolygonSet s;
  // Spread over an area that keeps overlap density roughly constant.
  const Coord span = static_cast<Coord>(400.0 * std::sqrt(double(n_rects)));
  for (int i = 0; i < n_rects; ++i) {
    const Coord w = static_cast<Coord>(rng.uniform(50, 600));
    const Coord h = static_cast<Coord>(rng.uniform(50, 600));
    const Coord x = static_cast<Coord>(rng.uniform(0, span));
    const Coord y = static_cast<Coord>(rng.uniform(0, span));
    s.insert(Box{x, y, static_cast<Coord>(x + w), static_cast<Coord>(y + h)});
  }
  return s;
}

PolygonSet triangle_soup(int n_tris, std::uint64_t seed) {
  Rng rng(seed);
  const Coord span = static_cast<Coord>(400.0 * std::sqrt(double(n_tris)));
  PolygonSet s;
  for (int i = 0; i < n_tris; ++i) {
    const Point a{static_cast<Coord>(rng.uniform(0, span)),
                  static_cast<Coord>(rng.uniform(0, span))};
    const Point b = a + Point{static_cast<Coord>(rng.uniform(-400, 400)),
                              static_cast<Coord>(rng.uniform(-400, 400))};
    const Point c = a + Point{static_cast<Coord>(rng.uniform(-400, 400)),
                              static_cast<Coord>(rng.uniform(-400, 400))};
    if (cross(a, b, c) == 0) continue;
    s.insert(SimplePolygon{{a, b, c}});
  }
  return s;
}

void add_all(BooleanEngine& eng, const PolygonSet& a, const PolygonSet& b) {
  for (const Polygon& p : a.polygons()) eng.add(p, 0);
  for (const Polygon& p : b.polygons()) eng.add(p, 1);
}

void BM_UnionManhattan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PolygonSet a = manhattan_soup(n, 1);
  const PolygonSet b = manhattan_soup(n, 2);
  std::size_t edges = 0;
  for (auto _ : state) {
    BooleanEngine eng;
    add_all(eng, a, b);
    benchmark::DoNotOptimize(eng.trapezoids(BoolOp::Or));
    edges = eng.stats().input_edges;
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_UnionManhattan)->Arg(100)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

void BM_AndManhattan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PolygonSet a = manhattan_soup(n, 3);
  const PolygonSet b = manhattan_soup(n, 4);
  for (auto _ : state) {
    BooleanEngine eng;
    add_all(eng, a, b);
    benchmark::DoNotOptimize(eng.trapezoids(BoolOp::And));
  }
}
BENCHMARK(BM_AndManhattan)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

void BM_XorAllAngle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PolygonSet a = triangle_soup(n, 5);
  const PolygonSet b = triangle_soup(n, 6);
  for (auto _ : state) {
    BooleanEngine eng;
    add_all(eng, a, b);
    benchmark::DoNotOptimize(eng.trapezoids(BoolOp::Xor));
  }
}
BENCHMARK(BM_XorAllAngle)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_PolygonReconstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PolygonSet a = manhattan_soup(n, 7);
  for (auto _ : state) {
    BooleanEngine eng;
    for (const Polygon& p : a.polygons()) eng.add(p, 0);
    benchmark::DoNotOptimize(eng.polygons(BoolOp::Or));
  }
}
BENCHMARK(BM_PolygonReconstruction)->Arg(400)->Arg(1600)->Arg(6400)
    ->Unit(benchmark::kMillisecond);

void BM_Sizing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const PolygonSet a = manhattan_soup(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.sized(25));
  }
}
BENCHMARK(BM_Sizing)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
