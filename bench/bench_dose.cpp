// F4 — Dose latitude: printed CD vs. dose for iso and dense lines.
//
// Expected shape: CD grows monotonically with dose (negative resist);
// the dense line prints wider than the isolated line at equal dose
// (backscatter pedestal) — the iso-dense bias — and the bias shrinks as
// dose drops toward the threshold. The slope dCD/dlog(dose) is the dose
// latitude, steeper for the low-contrast resist.
#include <iostream>

#include "util/artifacts.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "sim/exposure_sim.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

int main() {
  const Coord w = 500;
  const Coord pitch = 1000;
  const Coord len = 30000;
  PolygonSet pattern = line_space_array({0, 0}, w, pitch, len, 15);
  pattern.insert(Box{30000, 0, 30000 + w, len});  // isolated line

  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  const ShotList base = fracture(pattern).shots;
  const double level = 0.42;  // resist print threshold

  Table t("F4: printed CD vs. relative dose (0.5um lines, threshold 0.42)");
  t.columns({"dose", "CD dense (nm)", "CD iso (nm)", "iso-dense bias (nm)"});
  CsvWriter csv(artifact_path("bench_f4_dose_latitude.csv"));
  csv.header({"dose", "cd_dense_nm", "cd_iso_nm", "bias_nm"});

  for (const double dose : {0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4}) {
    ShotList shots = base;
    for (Shot& s : shots) s.dose = dose;
    const Raster e = simulate_exposure(shots, psf, {.pixel = 25});
    // Window straddles exactly one grating line (line 7 spans 7000..7500;
    // neighbors end at 6500 and start at 8000).
    const auto cd_dense =
        measure_cd(e, level, Point{6750, len / 2}, Point{7750, len / 2}, 801);
    const auto cd_iso =
        measure_cd(e, level, Point{29500, len / 2}, Point{31500, len / 2}, 801);
    const std::string ds = cd_dense ? fixed(*cd_dense, 0) : "no print";
    const std::string is = cd_iso ? fixed(*cd_iso, 0) : "no print";
    const std::string bias =
        (cd_dense && cd_iso) ? fixed(*cd_dense - *cd_iso, 0) : "-";
    t.row(fixed(dose, 2), ds, is, bias);
    csv.row(dose, cd_dense.value_or(0.0), cd_iso.value_or(0.0),
            (cd_dense && cd_iso) ? *cd_dense - *cd_iso : 0.0);
  }
  t.print();
  std::cout << "\nwrote bench_f4_dose_latitude.csv\n";
  return 0;
}
