// F6 — Field stitching error vs. field size, with and without calibration.
//
// The deflection distortion model has fixed relative coefficients (ppm-scale
// gain error, small rotation, third-order pincushion); the absolute
// displacement at the field edge scales with the field size. Expected
// shape: stitching error grows superlinearly with field size (the cubic
// term), and affine calibration removes the gain/rotation part, leaving the
// pincushion residual — a drop of one to two orders of magnitude for small
// fields, less for large ones where the cubic term dominates.
#include <iostream>

#include "machine/distortion.h"
#include "machine/field.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ebl;

int main() {
  // Relative machine imperfections (dimensionless, per unit half-field):
  const double gain_ppm = 150.0;   // 150 ppm deflection gain error
  const double rot_urad = 80.0;    // 80 µrad axis rotation
  const double pin_k3 = 2e-16;     // cubic coefficient, nm⁻² (≈25 nm at 1 mm field)

  Table t("F6: max stitching error vs. field size");
  t.columns({"field (um)", "raw error (nm)", "calibrated (nm)",
             "calibrated+noise (nm)", "improvement"});
  CsvWriter csv("bench_f6_stitching.csv");
  csv.header({"field_um", "raw_nm", "calibrated_nm", "calibrated_noise_nm"});

  for (const double field_um : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    const double half = field_um * 1000.0 / 2.0;  // nm
    DeflectionDistortion d;
    d.scale_x = gain_ppm * 1e-6 * half;
    d.scale_y = 0.7 * gain_ppm * 1e-6 * half;
    d.rotation = rot_urad * 1e-6 * half;
    d.pincushion = pin_k3 * half * half * half;  // corner displacement, nm

    const double raw = max_stitching_error(d);
    const double cal = max_stitching_error(calibrate_affine(d, 7, 0.0));
    const double cal_noise = max_stitching_error(calibrate_affine(d, 7, 2.0, 99));
    t.row(fixed(field_um, 0), fixed(raw, 2), fixed(cal, 3), fixed(cal_noise, 3),
          fixed(raw / std::max(cal_noise, 1e-9), 1) + "x");
    csv.row(field_um, raw, cal, cal_noise);
  }
  t.print();

  // Companion table: how many shots land on field boundaries as the field
  // shrinks (stitching exposure: smaller fields stitch more figures).
  Rng rng(55);
  const PolygonSet s =
      random_manhattan(rng, Box{0, 0, 800000, 800000}, 0.15, 3000, 40000);
  const ShotList shots = fracture(s).shots;
  Table t2("F6b: figures cut by field boundaries (800x800um pattern)");
  t2.columns({"field (um)", "fields", "straddlers", "straddler %"});
  for (const Coord field : {100000, 200000, 400000, 800000}) {
    const auto fields = partition_fields(shots, field);
    const std::size_t straddlers = count_boundary_straddlers(shots, field);
    t2.row(field / 1000, fields.size(), straddlers,
           fixed(100.0 * double(straddlers) / double(shots.size()), 1) + "%");
  }
  t2.print();
  std::cout << "\nwrote bench_f6_stitching.csv\n";
  return 0;
}
