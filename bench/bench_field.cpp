// F6 — Field stitching error vs. field size, with and without calibration,
// plus the field-partitioner scaling section (BENCH_field.json).
//
// The deflection distortion model has fixed relative coefficients (ppm-scale
// gain error, small rotation, third-order pincushion); the absolute
// displacement at the field edge scales with the field size. Expected
// shape: stitching error grows superlinearly with field size (the cubic
// term), and affine calibration removes the gain/rotation part, leaving the
// pincushion residual — a drop of one to two orders of magnitude for small
// fields, less for large ones where the cubic term dominates.
//
// The partition-scaling section times the two-pass bucket partitioner
// (count + prefix-sum + parallel clip fill) across shot counts and field
// sizes, and exercises the 64-bit frame math on a pattern whose extent
// exceeds 2^31 dbu — the case the old per-piece std::map accumulator
// silently wrapped on. Results land in BENCH_field.json for trajectory
// tracking; CI smoke-runs `bench_field --quick`.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "util/artifacts.h"
#include "machine/distortion.h"
#include "machine/field.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "util/csv.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ebl;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

struct PartitionRow {
  std::size_t shots = 0;
  Coord field = 0;
  std::size_t fields = 0;
  std::size_t straddlers = 0;
  std::size_t pieces = 0;
  double ms = 0.0;
};

PartitionRow time_partition(const ShotList& shots, Coord field) {
  PartitionRow row;
  row.shots = shots.size();
  row.field = field;
  const auto t0 = std::chrono::steady_clock::now();
  const FieldPartition part = partition_fields_counted(shots, field);
  row.ms = ms_since(t0);
  row.fields = part.fields.size();
  row.straddlers = part.straddlers;
  for (const FieldJob& f : part.fields) row.pieces += f.shots.size();
  return row;
}

std::vector<PartitionRow> run_partition_scaling(bool quick) {
  // Dense random Manhattan layouts on growing frames; small figures so the
  // straddler fraction is realistic for fractured production data.
  const std::vector<Coord> sides = quick ? std::vector<Coord>{400000}
                                         : std::vector<Coord>{800000, 1600000};
  std::vector<PartitionRow> rows;
  for (const Coord side : sides) {
    Rng rng(55);
    const PolygonSet s =
        random_manhattan(rng, Box{0, 0, side, side}, 0.25, 3000, 15000);
    const ShotList shots = fracture(s, {.max_shot_size = 2500}).shots;
    for (const Coord field : {100000, 400000}) {
      rows.push_back(time_partition(shots, field));
      std::cerr << "partition scaling: " << shots.size() << " shots, field "
                << field / 1000 << " um done\n";
    }
  }
  return rows;
}

// A pattern whose corner-to-corner extent is ~2^32 dbu: two dense clusters
// at the far corners of the coordinate range. Every frame index is > 2^31 /
// field_size from the anchor, so any 32-bit frame arithmetic wraps.
struct ExtremeRow {
  Coord64 extent = 0;
  std::size_t shots = 0;
  std::size_t fields = 0;
  std::size_t straddlers = 0;
  double ms = 0.0;
  bool area_conserved = false;
};

ExtremeRow run_extreme_extent() {
  constexpr Coord kMax = std::numeric_limits<Coord>::max();
  constexpr Coord kMin = std::numeric_limits<Coord>::min();
  ShotList shots;
  const auto cluster = [&](Coord x0, Coord y0) {
    for (int iy = 0; iy < 50; ++iy) {
      for (int ix = 0; ix < 50; ++ix) {
        const Coord x = x0 + static_cast<Coord>(ix) * 60000;
        const Coord y = y0 + static_cast<Coord>(iy) * 60000;
        shots.push_back({Trapezoid::rect(Box{x, y, x + 35000, y + 35000}), 1.0});
      }
    }
  };
  cluster(kMin + 1000, kMin + 1000);
  cluster(kMax - 50 * 60000 - 1000, kMax - 50 * 60000 - 1000);

  ExtremeRow row;
  row.shots = shots.size();
  Box bb;
  for (const Shot& s : shots) bb += s.shape.bbox();
  row.extent = std::max(bb.width(), bb.height());
  const double area = shot_area(shots);

  const auto t0 = std::chrono::steady_clock::now();
  const FieldPartition part = partition_fields_counted(shots, 1000000);
  row.ms = ms_since(t0);
  row.fields = part.fields.size();
  row.straddlers = part.straddlers;
  double piece_area = 0.0;
  for (const FieldJob& f : part.fields)
    for (const Shot& s : f.shots) piece_area += s.shape.area();
  row.area_conserved = std::abs(piece_area - area) <= area * 1e-9;
  return row;
}

void write_bench_json(const std::vector<PartitionRow>& rows, const ExtremeRow& ex) {
  std::ofstream out("BENCH_field.json");
  out << "{\n  \"bench\": \"field_partition\",\n";
  out << "  \"workload\": \"random manhattan, 25% density, fractured at 2.5um"
         " aperture\",\n";
  out << "  \"threads\": " << resolve_threads(0) << ",\n";
  out << "  \"cases\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PartitionRow& r = rows[i];
    out << (i ? "," : "") << "\n    {\"shots\": " << r.shots
        << ", \"field_size_dbu\": " << r.field << ", \"fields\": " << r.fields
        << ", \"straddlers\": " << r.straddlers << ", \"pieces\": " << r.pieces
        << ", \"partition_ms\": " << r.ms << ", \"shots_per_sec\": "
        << 1000.0 * static_cast<double>(r.shots) / r.ms << "}";
  }
  out << "\n  ],\n";
  out << "  \"extreme_extent\": {\"extent_dbu\": " << ex.extent
      << ", \"shots\": " << ex.shots << ", \"fields\": " << ex.fields
      << ", \"straddlers\": " << ex.straddlers << ", \"partition_ms\": " << ex.ms
      << ", \"area_conserved\": " << (ex.area_conserved ? "true" : "false")
      << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // Relative machine imperfections (dimensionless, per unit half-field):
  const double gain_ppm = 150.0;   // 150 ppm deflection gain error
  const double rot_urad = 80.0;    // 80 µrad axis rotation
  const double pin_k3 = 2e-16;     // cubic coefficient, nm⁻² (≈25 nm at 1 mm field)

  Table t("F6: max stitching error vs. field size");
  t.columns({"field (um)", "raw error (nm)", "calibrated (nm)",
             "calibrated+noise (nm)", "improvement"});
  CsvWriter csv(artifact_path("bench_f6_stitching.csv"));
  csv.header({"field_um", "raw_nm", "calibrated_nm", "calibrated_noise_nm"});

  for (const double field_um : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    const double half = field_um * 1000.0 / 2.0;  // nm
    DeflectionDistortion d;
    d.scale_x = gain_ppm * 1e-6 * half;
    d.scale_y = 0.7 * gain_ppm * 1e-6 * half;
    d.rotation = rot_urad * 1e-6 * half;
    d.pincushion = pin_k3 * half * half * half;  // corner displacement, nm

    const double raw = max_stitching_error(d);
    const double cal = max_stitching_error(calibrate_affine(d, 7, 0.0));
    const double cal_noise = max_stitching_error(calibrate_affine(d, 7, 2.0, 99));
    t.row(fixed(field_um, 0), fixed(raw, 2), fixed(cal, 3), fixed(cal_noise, 3),
          fixed(raw / std::max(cal_noise, 1e-9), 1) + "x");
    csv.row(field_um, raw, cal, cal_noise);
  }
  t.print();

  if (!quick) {
    // Companion table: how many shots land on field boundaries as the field
    // shrinks (stitching exposure: smaller fields stitch more figures).
    Rng rng(55);
    const PolygonSet s =
        random_manhattan(rng, Box{0, 0, 800000, 800000}, 0.15, 3000, 40000);
    const ShotList shots = fracture(s).shots;
    Table t2("F6b: figures cut by field boundaries (800x800um pattern)");
    t2.columns({"field (um)", "fields", "straddlers", "straddler %"});
    for (const Coord field : {100000, 200000, 400000, 800000}) {
      const auto fields = partition_fields(shots, field);
      const std::size_t straddlers = count_boundary_straddlers(shots, field);
      t2.row(field / 1000, fields.size(), straddlers,
             fixed(100.0 * double(straddlers) / double(shots.size()), 1) + "%");
    }
    t2.print();
  }

  // --- Partition scaling: two-pass bucket partitioner throughput. ---
  const std::vector<PartitionRow> scaling = run_partition_scaling(quick);
  Table ps("Partition scaling: two-pass bucket partitioner");
  ps.columns({"shots", "field (um)", "fields", "straddlers", "pieces", "ms",
              "shots/sec"});
  for (const PartitionRow& r : scaling) {
    ps.row(r.shots, r.field / 1000, r.fields, r.straddlers, r.pieces, fixed(r.ms, 1),
           fixed(1000.0 * double(r.shots) / r.ms, 0));
  }
  ps.print();

  const ExtremeRow ex = run_extreme_extent();
  Table et("Extreme extent: >2^31-dbu pattern through 64-bit frame math");
  et.columns({"extent (dbu)", "shots", "fields", "straddlers", "ms", "area ok"});
  et.row(ex.extent, ex.shots, ex.fields, ex.straddlers, fixed(ex.ms, 1),
         ex.area_conserved ? "yes" : "NO");
  et.print();

  write_bench_json(scaling, ex);
  std::cout << "\nwrote bench_f6_stitching.csv, BENCH_field.json\n";
  return 0;
}
