// T1 + F3 — Fracture statistics and shot-count scaling.
//
// T1 (table): figure count, sliver count, runtime per strategy on the three
// workload families (manhattan soup, all-angle soup, curved zone plate).
// F3 (figure/series): VSB shot count vs. max shot size, and figure count
// vs. input vertex count (expected: shots ~ area/aperture² once clamped;
// figures linear in vertices).
#include <chrono>
#include <iostream>

#include "util/artifacts.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "geom/curves.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ebl;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

void table_t1() {
  struct Workload {
    std::string name;
    PolygonSet set;
  };
  Rng rng(11);
  std::vector<Workload> workloads;
  workloads.push_back(
      {"manhattan 30%", random_manhattan(rng, Box{0, 0, 200000, 200000}, 0.3, 500, 8000)});
  workloads.push_back(
      {"all-angle 20%", random_triangles(rng, Box{0, 0, 150000, 150000}, 0.2, 1000, 9000)});
  workloads.push_back({"zone plate f=150um", zone_plate({0, 0}, 150000.0, 532.0, 32, 2.0)});

  Table t("T1: fracture statistics by strategy (sliver threshold 50 nm)");
  t.columns({"workload", "strategy", "figures", "rect", "tri", "slivers", "area um^2",
             "runtime ms"});
  for (const auto& w : workloads) {
    for (const auto strategy : {FractureStrategy::bands, FractureStrategy::merged_traps}) {
      FractureOptions opt;
      opt.strategy = strategy;
      opt.sliver_threshold = 50;
      const auto t0 = std::chrono::steady_clock::now();
      const FractureResult r = fracture(w.set, opt);
      const double ms = ms_since(t0);
      t.row(w.name, strategy == FractureStrategy::bands ? "bands" : "merged",
            r.stats.figures, r.stats.rectangles, r.stats.triangles, r.stats.slivers,
            fixed(r.stats.area / 1e6, 1), fixed(ms, 1));
    }
  }
  t.print();
}

void figure_f3_shot_size() {
  Rng rng(12);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 200000, 200000}, 0.3, 2000, 30000);
  Table t("F3a: VSB shot count vs. max shot size (manhattan 30%, 200x200um)");
  t.columns({"max shot (um)", "shots", "shots/figure", "area um^2"});
  CsvWriter csv(artifact_path("bench_f3_shot_size.csv"));
  csv.header({"max_shot_nm", "shots", "figures"});
  for (const Coord aperture : {500, 1000, 2000, 4000, 8000, 16000}) {
    FractureOptions opt;
    opt.max_shot_size = aperture;
    const FractureResult r = fracture(s, opt);
    t.row(fixed(aperture / 1000.0, 1), r.stats.shots,
          fixed(double(r.stats.shots) / double(r.stats.figures), 2),
          fixed(r.stats.area / 1e6, 1));
    csv.row(aperture, r.stats.shots, r.stats.figures);
  }
  t.print();
}

void figure_f3_vertex_scaling() {
  Table t("F3b: figure count vs. input vertex count (circle flattening sweep)");
  t.columns({"vertices", "figures (merged)", "figures/vertex"});
  CsvWriter csv(artifact_path("bench_f3_vertices.csv"));
  csv.header({"vertices", "figures"});
  for (const double tol : {64.0, 16.0, 4.0, 1.0, 0.25}) {
    PolygonSet s;
    s.insert(circle({0, 0}, 100000, tol));
    const std::size_t verts = s.vertex_count();
    const FractureResult r = fracture(s);
    t.row(verts, r.stats.figures, fixed(double(r.stats.figures) / double(verts), 3));
    csv.row(verts, r.stats.figures);
  }
  t.print();
}

}  // namespace

int main() {
  table_t1();
  figure_f3_shot_size();
  figure_f3_vertex_scaling();
  std::cout << "\nwrote bench_f3_shot_size.csv, bench_f3_vertices.csv\n";
  return 0;
}
