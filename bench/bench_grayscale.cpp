// F7 — Grayscale transfer: remaining thickness vs. dose, and multi-level
// staircase fidelity.
//
// Expected shape: the thickness-vs-dose transfer follows the resist
// contrast curve (log-linear between onset and saturation); 4-level and
// 8-level staircases written by dose modulation land within a few percent
// of the designed levels, with the largest error at the extreme steps
// (backscatter pedestal from neighboring steps).
#include <cmath>
#include <iostream>

#include "util/artifacts.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "sim/exposure_sim.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

namespace {

void transfer_curve(const ContrastResist& resist, const Psf& psf) {
  // Large isolated pads exposed at swept dose: measured center thickness
  // vs. the ideal contrast curve.
  Table t("F7a: grayscale transfer (10um pad, gamma=1, onset 0.4)");
  t.columns({"dose", "ideal t", "simulated t", "error"});
  CsvWriter csv(artifact_path("bench_f7_transfer.csv"));
  csv.header({"dose", "ideal", "simulated"});
  for (const double dose : {0.3, 0.45, 0.6, 0.8, 1.0, 1.4, 2.0, 2.8, 4.0, 5.6}) {
    ShotList shots{{Trapezoid::rect(Box{0, 0, 10000, 10000}), dose}};
    const Raster e = simulate_exposure(shots, psf, {.pixel = 100});
    const Raster relief = develop(e, resist);
    const double sim_t =
        profile_along(relief, Point{5000, 5000}, Point{5001, 5000}, 2)[0];
    const double ideal = resist.thickness(dose);  // bulk: E(center) ~ dose
    t.row(fixed(dose, 2), fixed(ideal, 3), fixed(sim_t, 3), fixed(sim_t - ideal, 3));
    csv.row(dose, ideal, sim_t);
  }
  t.print();
}

void staircase_fidelity(const ContrastResist& resist, const Psf& psf, int levels) {
  const Coord step_w = 2000;
  const Coord height = 20000;
  ShotList shots;
  for (int i = 0; i < levels; ++i) {
    const double t_target = (i + 1.0) / levels;
    shots.push_back({Trapezoid::rect(Box{Coord(i * step_w), 0,
                                         Coord((i + 1) * step_w), height}),
                     resist.exposure_for_thickness(t_target)});
  }
  const Raster e = simulate_exposure(shots, psf, {.pixel = 50});
  const Raster relief = develop(e, resist);

  Table t("F7b: " + std::to_string(levels) + "-level staircase fidelity");
  t.columns({"step", "designed t", "achieved t", "error"});
  double rms = 0.0;
  for (int i = 0; i < levels; ++i) {
    const double designed = (i + 1.0) / levels;
    const Point c{Coord(i * step_w + step_w / 2), height / 2};
    const double achieved = profile_along(relief, c, c + Point{1, 0}, 2)[0];
    rms += (achieved - designed) * (achieved - designed);
    t.row(i + 1, fixed(designed, 3), fixed(achieved, 3), fixed(achieved - designed, 3));
  }
  t.print();
  std::cout << "rms level error: " << fixed(std::sqrt(rms / levels), 4) << "\n";
}

}  // namespace

int main() {
  const ContrastResist resist(1.0, 0.4);
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  transfer_curve(resist, psf);
  staircase_fidelity(resist, psf, 4);
  staircase_fidelity(resist, psf, 8);
  std::cout << "\nwrote bench_f7_transfer.csv\n";
  return 0;
}
