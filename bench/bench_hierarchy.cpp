// H1 (extension) — Hierarchical vs. flat data preparation.
//
// The 1979 motivation for keeping pattern data hierarchical: an N x N array
// of a macro costs the flat flow N² fractures worth of work, but the
// hierarchical flow one fracture plus N² cheap shot transforms. Expected
// shape: speedup grows with N² at identical shot counts and area.
#include <chrono>
#include <iostream>

#include "util/artifacts.h"
#include "core/ebl.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

Library make_library(std::uint32_t n) {
  Library lib("H1");
  Rng rng(77);
  const CellId macro = lib.add_cell("MACRO");
  // A realistic macro: ~200 mixed shapes including 45° wedges.
  for (int i = 0; i < 180; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord y = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord w = static_cast<Coord>(rng.uniform(100, 1500));
    const Coord h = static_cast<Coord>(rng.uniform(100, 1500));
    lib.cell(macro).add_shape(LayerKey{1, 0},
                              Box{x, y, static_cast<Coord>(x + w), static_cast<Coord>(y + h)});
  }
  for (int i = 0; i < 20; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord y = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord s = static_cast<Coord>(rng.uniform(300, 1200));
    lib.cell(macro).add_shape(
        LayerKey{1, 0},
        SimplePolygon{{{x, y}, {static_cast<Coord>(x + s), y}, {x, static_cast<Coord>(y + s)}}});
  }
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = macro;
  r.cols = n;
  r.rows = n;
  r.col_step = {20000, 0};
  r.row_step = {0, 20000};
  lib.cell(top).add_reference(r);
  return lib;
}

}  // namespace

int main() {
  Table t("H1: hierarchical vs. flat prep (180-rect + 20-triangle macro, NxN array)");
  t.columns({"array", "flat ms", "hier ms", "speedup", "flat shots", "hier shots"});
  CsvWriter csv(artifact_path("bench_h1_hierarchy.csv"));
  csv.header({"n", "flat_ms", "hier_ms", "flat_shots", "hier_shots"});

  FractureOptions opt;
  opt.max_shot_size = 2000;

  for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
    const Library lib = make_library(n);
    const CellId top = *lib.find_cell("TOP");

    auto t0 = std::chrono::steady_clock::now();
    const FractureResult flat = fracture(lib.flatten(top, LayerKey{1, 0}), opt);
    const double flat_ms = ms_since(t0);

    t0 = std::chrono::steady_clock::now();
    const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{1, 0}, opt);
    const double hier_ms = ms_since(t0);

    t.row(std::to_string(n) + "x" + std::to_string(n), fixed(flat_ms, 1),
          fixed(hier_ms, 1), fixed(flat_ms / hier_ms, 1) + "x", flat.stats.shots,
          hier.stats.shots);
    csv.row(n, flat_ms, hier_ms, flat.stats.shots, hier.stats.shots);
  }
  t.print();
  std::cout << "\nwrote bench_h1_hierarchy.csv\n";
  return 0;
}
