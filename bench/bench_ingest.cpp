// I1 — Streaming ingestion throughput and window behavior.
//
// Measures the new front door (layout/stream.h): an OASIS file streamed
// cell-at-a-time through a bounded window straight into fracture, against
// the classic path (read whole library, flatten, fracture). Three scenario
// shapes stress different window dynamics:
//
//   macro_array — one macro placed NxN: the window holds 1 cell, zero
//                 reloads, the streamed path should track the in-RAM one.
//   deep_reuse  — interleaved leaves under two mid cells arrayed at the
//                 top: a tight window must evict and re-parse (reload cost).
//   flat_cells  — many sibling cells each placed once: a pure sweep, the
//                 worst case for directory overhead per cell.
//
// Every case asserts the streamed shots are bitwise-identical to the in-RAM
// reference (the whole point of the emission-order contract); the bench
// exits nonzero on any mismatch, so the CI smoke run doubles as an
// end-to-end equivalence check. BENCH_ingest.json records the trajectory;
// streamed_vs_inram_speedup is the same-host ratio the regression guard
// watches.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/ebl.h"
#include "util/artifacts.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ebl;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

constexpr LayerKey kMetal{1, 0};

void fill_macro(Cell& c, Rng& rng, int rects, int triangles) {
  for (int i = 0; i < rects; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord y = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord w = static_cast<Coord>(rng.uniform(100, 1500));
    const Coord h = static_cast<Coord>(rng.uniform(100, 1500));
    c.add_shape(kMetal, Box{x, y, static_cast<Coord>(x + w), static_cast<Coord>(y + h)});
  }
  for (int i = 0; i < triangles; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord y = static_cast<Coord>(rng.uniform(0, 18000));
    const Coord s = static_cast<Coord>(rng.uniform(300, 1200));
    c.add_shape(kMetal, SimplePolygon{{{x, y},
                                       {static_cast<Coord>(x + s), y},
                                       {x, static_cast<Coord>(y + s)}}});
  }
}

Library macro_array(std::uint32_t n) {
  Library lib("I1A");
  Rng rng(41);
  const CellId macro = lib.add_cell("MACRO");
  fill_macro(lib.cell(macro), rng, 120, 20);
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = macro;
  r.cols = n;
  r.rows = n;
  r.col_step = {20000, 0};
  r.row_step = {0, 20000};
  lib.cell(top).add_reference(r);
  return lib;
}

Library deep_reuse(std::uint32_t n) {
  Library lib("I1B");
  Rng rng(43);
  const CellId leaf_a = lib.add_cell("LEAF_A");
  fill_macro(lib.cell(leaf_a), rng, 60, 10);
  const CellId leaf_b = lib.add_cell("LEAF_B");
  fill_macro(lib.cell(leaf_b), rng, 60, 10);
  // Two mids that interleave the leaves in opposite order: any window
  // smaller than 2 re-parses a leaf on every visit.
  const CellId mid_a = lib.add_cell("MID_A");
  const CellId mid_b = lib.add_cell("MID_B");
  for (int i = 0; i < 2; ++i) {
    Reference r;
    r.child = i == 0 ? leaf_a : leaf_b;
    r.trans = CTrans{Point{static_cast<Coord>(i * 20000), 0}, 0.0, 1.0, false};
    lib.cell(mid_a).add_reference(r);
    r.child = i == 0 ? leaf_b : leaf_a;
    lib.cell(mid_b).add_reference(r);
  }
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = mid_a;
  r.cols = n;
  r.rows = n;
  r.col_step = {40000, 0};
  r.row_step = {0, 40000};
  lib.cell(top).add_reference(r);
  r.child = mid_b;
  r.trans = CTrans{Point{0, static_cast<Coord>(40000u * n)}, 0.0, 1.0, false};
  lib.cell(top).add_reference(r);
  return lib;
}

Library flat_cells(std::uint32_t count) {
  Library lib("I1C");
  Rng rng(47);
  const CellId top = lib.add_cell("TOP");
  for (std::uint32_t i = 0; i < count; ++i) {
    const CellId c = lib.add_cell("C" + std::to_string(i));
    fill_macro(lib.cell(c), rng, 24, 4);
    Reference r;
    r.child = c;
    r.trans = CTrans{Point{static_cast<Coord>((i % 16) * 20000),
                           static_cast<Coord>((i / 16) * 20000)},
                     0.0, 1.0, false};
    lib.cell(top).add_reference(r);
  }
  return lib;
}

struct IngestCase {
  std::string scenario;
  std::size_t cells = 0;
  std::size_t shots = 0;
  std::size_t window = 0;
  std::size_t peak_resident = 0;
  std::size_t cell_parses = 0;
  std::size_t reloads = 0;
  double streamed_ms = 0.0;
  double inram_ms = 0.0;
  double shots_per_sec = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

IngestCase run_case(const std::string& scenario, const Library& lib,
                    std::size_t window) {
  const std::string path = artifact_path("bench_ingest.oas");
  write_oas(lib, path);

  FractureOptions fopt;
  fopt.max_shot_size = 2000;

  // In-RAM reference: whole-file read + flatten + fracture.
  auto t0 = std::chrono::steady_clock::now();
  const Library loaded = read_layout(path);
  const FractureResult reference =
      fracture(loaded.flatten(*loaded.find_cell("TOP"), kMetal), fopt);
  const double inram_ms = ms_since(t0);

  // Streamed: bounded window, geometry never materialized.
  IngestOptions iopt;
  iopt.layer = kMetal;
  iopt.window = window;
  t0 = std::chrono::steady_clock::now();
  const auto stream = open_layout_stream(path);
  const StreamFractureResult streamed = stream_fracture(*stream, iopt, fopt);
  const double streamed_ms = ms_since(t0);

  IngestCase c;
  c.scenario = scenario;
  c.cells = streamed.ingest.cells;
  c.shots = streamed.fracture.shots.size();
  c.window = window;
  c.peak_resident = streamed.ingest.peak_resident;
  c.cell_parses = streamed.ingest.cell_parses;
  c.reloads = streamed.ingest.reloads;
  c.streamed_ms = streamed_ms;
  c.inram_ms = inram_ms;
  c.shots_per_sec = streamed_ms > 0 ? 1000.0 * double(c.shots) / streamed_ms : 0.0;
  c.speedup = streamed_ms > 0 ? inram_ms / streamed_ms : 0.0;
  c.identical = streamed.fracture.shots == reference.shots;
  return c;
}

void write_bench_json(const std::vector<IngestCase>& cases) {
  std::ofstream out("BENCH_ingest.json");
  out << "{\n  \"bench\": \"ingest\",\n";
  out << "  \"workload\": \"streamed OASIS -> fracture with a bounded "
         "resident-cell window vs whole-library in-RAM prep "
         "(layout/stream.h)\",\n";
  out << "  \"cases\": [";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const IngestCase& c = cases[i];
    out << (i ? "," : "") << "\n    {\"scenario\": \"" << c.scenario << "\""
        << ", \"shots\": " << c.shots << ", \"cells\": " << c.cells
        << ", \"window\": " << c.window
        << ",\n     \"peak_resident_cells\": " << c.peak_resident
        << ", \"cell_parses\": " << c.cell_parses << ", \"reloads\": " << c.reloads
        << ",\n     \"streamed_ms\": " << c.streamed_ms
        << ", \"inram_ms\": " << c.inram_ms
        << ", \"ingest_shots_per_sec\": " << c.shots_per_sec
        << ",\n     \"streamed_vs_inram_speedup\": " << c.speedup
        << ", \"bitwise_identical\": " << (c.identical ? 1 : 0) << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "usage: bench_ingest [--quick]\n";
      return 2;
    }
  }

  std::vector<IngestCase> cases;
  cases.push_back(run_case("macro_array", macro_array(quick ? 6 : 16), 4));
  cases.push_back(run_case("deep_reuse", deep_reuse(quick ? 3 : 8), 1));
  cases.push_back(run_case("flat_cells", flat_cells(quick ? 24 : 128), 1));

  Table t("I1: streamed OASIS ingestion vs in-RAM prep");
  t.columns({"scenario", "cells", "shots", "window", "peak", "reloads",
             "streamed ms", "in-RAM ms", "identical"});
  bool all_identical = true;
  for (const IngestCase& c : cases) {
    t.row(c.scenario, c.cells, c.shots, c.window, c.peak_resident, c.reloads,
          fixed(c.streamed_ms, 1), fixed(c.inram_ms, 1), c.identical ? "yes" : "NO");
    all_identical = all_identical && c.identical;
  }
  t.print();

  write_bench_json(cases);
  std::cout << "wrote BENCH_ingest.json\n";
  if (!all_identical) {
    std::cerr << "bench_ingest: streamed shots diverged from the in-RAM path\n";
    return 1;
  }
  return 0;
}
