// F1 + F2 — Proximity effect and its correction.
//
// F1 (figure/series): exposure profile across a dense 0.5 µm 1:1 grating
// next to an isolated 0.5 µm line, uncorrected vs. iterative PEC vs. the
// cheap density PEC. Expected shape: uncorrected dense interior sits near
// 1.0 while the isolated line only reaches ~1/(1+eta) = 0.59; after PEC
// both representative points sit at the target within a few percent.
// F2 (figure/series): max in-pattern exposure error vs. iteration —
// geometric decay.
// Ablation (DESIGN.md decision 4): iterative shape PEC vs. density PEC in
// accuracy and runtime.
#include <chrono>
#include <iostream>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "pec/correction.h"
#include "sim/exposure_sim.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

int main() {
  const Coord w = 500;
  const Coord pitch = 1000;
  const Coord len = 40000;
  PolygonSet pattern = line_space_array({0, 0}, w, pitch, len, 21);
  pattern.insert(Box{40000, 0, 40000 + w, len});  // isolated line

  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  const ShotList raw = fracture(pattern).shots;

  // --- Corrections (timed for the ablation). ---
  PecOptions popt;
  popt.max_iterations = 10;
  popt.tolerance = 0.005;
  auto t0 = std::chrono::steady_clock::now();
  const PecResult iterative = correct_proximity(raw, psf, popt);
  const double iterative_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  const PecResult density = density_pec(raw, psf, popt);
  const double density_ms = ms_since(t0);

  // --- F1: profiles. ---
  const Raster e_raw = simulate_exposure(raw, psf, {.pixel = 25});
  const Raster e_it = simulate_exposure(iterative.shots, psf, {.pixel = 25});
  const Raster e_den = simulate_exposure(density.shots, psf, {.pixel = 25});

  const Point a{-1500, len / 2};
  const Point b{42500, len / 2};
  CsvWriter csv("bench_f1_profiles.csv");
  csv.header({"x_nm", "uncorrected", "iterative_pec", "density_pec"});
  const auto p0 = profile_along(e_raw, a, b, 1761);
  const auto p1 = profile_along(e_it, a, b, 1761);
  const auto p2 = profile_along(e_den, a, b, 1761);
  for (std::size_t i = 0; i < p0.size(); ++i) {
    const double x = a.x + (double(b.x) - a.x) * double(i) / (p0.size() - 1);
    csv.row(x, p0[i], p1[i], p2[i]);
  }

  const auto sample = [&](const Raster& m, Coord x) {
    return profile_along(m, Point{x, len / 2}, Point{x + 1, len / 2}, 2)[0];
  };
  Table f1("F1: exposure at representative points (0.5um lines, eta=0.7)");
  f1.columns({"case", "dense line center", "dense space center", "iso line center"});
  f1.row("uncorrected", fixed(sample(e_raw, 10250), 3), fixed(sample(e_raw, 10750), 3),
         fixed(sample(e_raw, 40250), 3));
  f1.row("iterative PEC", fixed(sample(e_it, 10250), 3), fixed(sample(e_it, 10750), 3),
         fixed(sample(e_it, 40250), 3));
  f1.row("density PEC", fixed(sample(e_den, 10250), 3), fixed(sample(e_den, 10750), 3),
         fixed(sample(e_den, 40250), 3));
  f1.print();

  // --- F2: convergence. ---
  Table f2("F2: iterative PEC convergence (max relative exposure error)");
  f2.columns({"iteration", "max error"});
  CsvWriter conv("bench_f2_convergence.csv");
  conv.header({"iteration", "max_error"});
  for (std::size_t i = 0; i < iterative.max_error_history.size(); ++i) {
    f2.row(i, fixed(iterative.max_error_history[i], 4));
    conv.row(i, iterative.max_error_history[i]);
  }
  f2.print();

  // --- Ablation: shape PEC vs density PEC. ---
  Table ab("Ablation: iterative shape PEC vs. geometry-density PEC");
  ab.columns({"method", "final max error", "runtime ms"});
  ab.row("iterative (10 it, tol 0.5%)", fixed(iterative.final_max_error, 4),
         fixed(iterative_ms, 1));
  ab.row("density formula (1 pass)", fixed(density.final_max_error, 4),
         fixed(density_ms, 1));
  ab.print();

  // Dose-class quantization sweep: how many machine dose classes are enough?
  Table q("Dose quantization: residual error vs. dose classes");
  q.columns({"classes", "final max error"});
  for (const int classes : {2, 4, 8, 16, 32, 0}) {
    PecOptions o = popt;
    o.dose_classes = classes;
    const PecResult r = correct_proximity(raw, psf, o);
    q.row(classes == 0 ? "continuous" : std::to_string(classes),
          fixed(r.final_max_error, 4));
  }
  q.print();

  std::cout << "\nwrote bench_f1_profiles.csv, bench_f2_convergence.csv\n";
  return 0;
}
