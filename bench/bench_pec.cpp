// F1 + F2 — Proximity effect and its correction.
//
// F1 (figure/series): exposure profile across a dense 0.5 µm 1:1 grating
// next to an isolated 0.5 µm line, uncorrected vs. iterative PEC vs. the
// cheap density PEC. Expected shape: uncorrected dense interior sits near
// 1.0 while the isolated line only reaches ~1/(1+eta) = 0.59; after PEC
// both representative points sit at the target within a few percent.
// F2 (figure/series): max in-pattern exposure error vs. iteration —
// geometric decay.
// Ablation (DESIGN.md decision 4): iterative shape PEC vs. density PEC in
// accuracy and runtime.
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "util/artifacts.h"
#include "seed_pec_reference.h"

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "pec/correction.h"
#include "pec/sharded.h"
#include "sim/exposure_sim.h"
#include "util/csv.h"
#include "util/subprocess.h"
#include "util/fft.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace ebl;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

// --- Scaling section: throughput of the full iterative PEC engine. ---
//
// Runs the complete 10-iteration correct_proximity on checkerboard layouts
// of growing shot count and writes BENCH_pec.json so future PRs can track
// shots/sec and ms/iteration. For the smaller cases the frozen seed engine
// (bench/seed_pec_reference.h: vector-of-vectors bins, per-query alloc +
// sort, full re-rasterization every iteration, checked serial blur) is timed
// too, giving an in-tree speedup reference against the starting point.
struct ScalingRow {
  std::size_t shots = 0;
  int iterations = 0;
  double total_ms = 0.0;
  double baseline_ms = -1.0;  // < 0: baseline not run at this size
  BlurPerf blur;              // full-vs-delta refresh split of the solve
};

ShotList checkerboard_shots(std::size_t target_shots) {
  const Coord cell = 2000;
  const Coord side =
      static_cast<Coord>(cell * std::ceil(std::sqrt(2.0 * static_cast<double>(target_shots))));
  PolygonSet pattern = checkerboard(Box{0, 0, side, side}, cell);
  return fracture(pattern, {.max_shot_size = cell}).shots;
}

std::vector<ScalingRow> run_scaling(const Psf& psf, bool quick) {
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{10000}
            : std::vector<std::size_t>{10000, 100000, 500000};
  PecOptions popt;
  popt.max_iterations = 10;
  popt.tolerance = 0.0;  // fixed work: always run all iterations

  std::vector<ScalingRow> rows;
  for (const std::size_t target : sizes) {
    const ShotList shots = checkerboard_shots(target);
    ScalingRow row;
    row.shots = shots.size();
    row.iterations = popt.max_iterations;

    auto t0 = std::chrono::steady_clock::now();
    const PecResult r = correct_proximity(shots, psf, popt);
    row.total_ms = ms_since(t0);
    row.blur = r.blur;

    if (shots.size() <= 100352) {  // seed engine is ~15x slower; cap its cost
      t0 = std::chrono::steady_clock::now();
      const PecResult b = seedref::seed_correct_proximity(shots, psf, popt);
      row.baseline_ms = ms_since(t0);
      (void)b;
    }
    rows.push_back(row);
    std::cerr << "scaling: " << row.shots << " shots done\n";
  }
  return rows;
}

// --- Blur-backend section: separable vs FFT long-range refresh. ---
//
// The triple-Gaussian PSF puts two terms (gamma, beta) on the shared
// long-range map, so the iterative corrector re-blurs the accumulated splat
// map with two kernels every iteration — the workload the FFT backend
// exists for: one forward transform of the map, one spectral multiply +
// inverse per term. Each case times set_doses refreshes on one evaluator
// under both backends (the splat cache and map are shared, so the timed
// difference is purely the convolution engine), checks the backends agree
// to 1e-6 at every shot centroid, and records which backend kAuto picks.
struct BlurRow {
  std::size_t shots = 0;
  double pixels_per_sigma = 0.0;
  Coord map_pixel = 0;
  double accumulate_ms = 0.0;  // splat gather per refresh (backend-independent)
  double direct_ms = 0.0;      // per-refresh blur, separable backend
  double fft_ms = 0.0;         // per-refresh blur, FFT backend
  double max_dev = 0.0;        // max |direct - fft| over all centroids
  bool auto_picks_fft = false;
};

std::vector<BlurRow> run_blur_backends(const Psf& psf, bool quick) {
  const std::size_t target = quick ? 10000 : 100000;
  const ShotList shots = checkerboard_shots(target);
  const std::vector<double> pps_values =
      quick ? std::vector<double>{4.0} : std::vector<double>{4.0, 5.0};

  double min_long_sigma = 0.0;
  for (const PsfTerm& t : psf.terms()) {
    if (t.sigma >= ExposureOptions{}.long_range_threshold &&
        (min_long_sigma == 0.0 || t.sigma < min_long_sigma)) {
      min_long_sigma = t.sigma;
    }
  }

  std::vector<BlurRow> rows;
  for (const double pps : pps_values) {
    ExposureOptions opt;
    opt.pixels_per_sigma = pps;
    opt.blur_backend = BlurBackend::kDirect;
    ExposureEvaluator eval(shots, psf, opt);

    BlurRow row;
    row.shots = shots.size();
    row.pixels_per_sigma = pps;
    row.map_pixel = std::max<Coord>(1, static_cast<Coord>(min_long_sigma / pps));

    // Doses perturbed per refresh so every set_doses does real work.
    const int refreshes = 2;
    auto doses_for = [&](int it) {
      std::vector<double> d(shots.size());
      for (std::size_t i = 0; i < d.size(); ++i)
        d[i] = 1.0 + 0.02 * static_cast<double>((i * 131 + std::size_t(it) * 17) % 101);
      return d;
    };

    BlurPerf mark = eval.blur_perf();
    for (int it = 0; it < refreshes; ++it) eval.set_doses(doses_for(it));
    row.direct_ms = (eval.blur_perf().blur_ms - mark.blur_ms) / refreshes;
    row.accumulate_ms =
        (eval.blur_perf().accumulate_ms - mark.accumulate_ms) / refreshes;
    const std::vector<double> direct_e = eval.exposures_at_centroids();

    // Same evaluator, same doses, same accumulated map — only the
    // convolution engine changes.
    eval.set_blur_backend(BlurBackend::kFft);
    const std::vector<double> fft_e = eval.exposures_at_centroids();
    for (std::size_t i = 0; i < fft_e.size(); ++i)
      row.max_dev = std::max(row.max_dev, std::abs(fft_e[i] - direct_e[i]));

    mark = eval.blur_perf();
    for (int it = 0; it < refreshes; ++it) eval.set_doses(doses_for(it));
    row.fft_ms = (eval.blur_perf().blur_ms - mark.blur_ms) / refreshes;

    eval.set_blur_backend(BlurBackend::kAuto);
    row.auto_picks_fft = eval.blur_backend() == BlurBackend::kFft;
    rows.push_back(row);
    std::cerr << "blur backends: pps " << pps << " done\n";
  }
  return rows;
}

// --- Padded-size sweep: power-of-two vs mixed-radix FFT plans. ---
//
// The FFT convolver pads the map to the next 5-smooth size (2^a 3^b 5^c)
// instead of the next power of two. This sweep times one registered
// convolve (load + spectral multiply + inverse) of the same kernel on both
// plans for representative long-range map shapes: the mixed-radix plan at
// the map's natural size, and the same engine forced onto the power-of-two
// grid it used to pad to (a power of two is itself 5-smooth, so growing the
// logical map until the snug plan lands on the old pow2 size reproduces the
// old padding exactly).
struct PadRow {
  int nx = 0, ny = 0, radius = 0;
  std::size_t fast_px = 0, fast_py = 0;   // mixed-radix (5-smooth) plan
  std::size_t pow2_px = 0, pow2_py = 0;   // legacy power-of-two plan
  double fast_ms = 0.0, pow2_ms = 0.0;    // best-of-3 registered convolve
};

std::vector<PadRow> run_pad_sweep(bool quick) {
  // Map shapes chosen to land just past a power of two — the regime the
  // mixed-radix plan exists for (1030 pads to 1080 instead of 2048).
  std::vector<std::pair<int, int>> dims = {{1030, 1030}};
  if (!quick) {
    dims.push_back({1300, 1100});
    dims.push_back({2100, 2100});
  }
  const std::vector<double> taps = gaussian_kernel_taps(8.0);
  const int r = static_cast<int>(taps.size()) - 1;

  std::vector<PadRow> rows;
  for (const auto& [nx, ny] : dims) {
    PadRow row;
    row.nx = nx;
    row.ny = ny;
    row.radius = r;

    const auto time_plan = [&](int lx, int ly, std::size_t* px, std::size_t* py) {
      FftConvolver conv(lx, ly, r);
      const int id = conv.add_kernel(taps);
      std::vector<double> src(static_cast<std::size_t>(lx) * ly);
      for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<double>(i % 97) / 97.0;
      std::vector<double> dst(src.size());
      double* out = dst.data();
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        conv.load(src.data());
        conv.convolve_registered({id}, {out});
        const double ms = ms_since(t0);
        if (rep == 0 || ms < best) best = ms;
      }
      *px = conv.padded_x();
      *py = conv.padded_y();
      return best;
    };

    row.fast_ms = time_plan(nx, ny, &row.fast_px, &row.fast_py);
    // Grow the logical map until the snug plan is the legacy pow2 grid.
    const int pow2_nx = static_cast<int>(fft_next_pow2(nx + r)) - r;
    const int pow2_ny = static_cast<int>(fft_next_pow2(ny + r)) - r;
    row.pow2_ms = time_plan(pow2_nx, pow2_ny, &row.pow2_px, &row.pow2_py);
    rows.push_back(row);
  }
  return rows;
}

// --- Sharded section: tiled concurrent correction vs the global oracle. ---
//
// Runs the full corrector twice on a pad-and-island workload under the
// triple-Gaussian PSF: once monolithic (shard_size = 0, the oracle) and
// once sharded at default_shard_size with halo exchange. The workload is a
// grid of 20 µm pads with isolated 1 µm islands in the gaps — the classic
// proximity motif, with a ~40% uncorrected iso-dense error, so both solvers
// must genuinely iterate (the uniform checkerboard of the scaling section
// converges immediately and would only measure construction overhead).
// Both dose sets are then measured on ONE global evaluator — same raster,
// same grid — so the recorded errors are directly comparable; the dose
// delta is the sharding cost in dose space. The speedup column is what the
// sharded pipeline buys at the recorded thread count: even single-threaded
// it now beats the global solve — FFT-snug shards waste no transform
// padding, the density warm start turns round 1 into one verified Jacobi
// step per shard, resident evaluators carry the geometry caches across
// exchange rounds, and deferred verification lets a round publish its
// update and have the next round certify it — with concurrency across
// shards stacking on top on multicore hosts.
struct ShardedRow {
  std::size_t shots = 0;
  Coord shard_size = 0;
  int shards = 0;
  int rounds = 0;
  double global_ms = 0.0;
  double sharded_ms = 0.0;
  // Distributed section: the same sharded solve farmed over pec_worker
  // processes (src/pec/wire.h jobs over pipes). Workers = 0 when the worker
  // binary was not found next to this bench. The doses must be
  // bitwise-identical to the in-process sharded solve — that flag is the
  // acceptance gate, the speedup is what N processes buy at this host's
  // core count (≈1x minus wire overhead on a single core).
  int dist_workers = 0;
  double dist_ms = -1.0;
  bool dist_bitwise = false;
  // Fault-recovery case: the identical distributed solve re-run with an
  // injected crash plan (EBL_FAULT_PLAN), so the supervisor must detect the
  // deaths, respawn workers, and reassign their jobs mid-round. The doses
  // must STILL be bitwise-identical, and the recovered run's overhead over
  // the fault-free distributed run is the price of supervision under fire.
  std::string fault_plan;
  double fault_ms = -1.0;
  int fault_restarts = 0;
  int fault_reassigned = 0;
  bool fault_degraded = false;
  bool fault_bitwise = false;
  // PEC-as-a-service case: the identical solve again, but over the TCP
  // transport — pec_worker daemons on loopback instead of forked pipe
  // workers. The overhead ratio against the pipe run prices the sockets,
  // session handshake, and heartbeats; bitwise identity stays the gate.
  int tcp_workers = 0;
  double tcp_ms = -1.0;
  bool tcp_bitwise = false;
  double global_err = 0.0;       // global doses, global evaluator
  double sharded_err = 0.0;      // sharded doses, same global evaluator
  double max_rel_dose_delta = 0.0;
  int resident_shards = 0;       // evaluators resident when the solve ended
  int evictions = 0;
  std::vector<double> round_ms;  // per-exchange-round wall clock
  double measure_ms = -1.0;      // final measurement pass (< 0: none needed)
  BlurPerf global_blur;          // refresh split of the two solves
  BlurPerf sharded_blur;
};

// A pec_worker TCP daemon on an ephemeral loopback port; the real port is
// parsed from the "pec_worker: listening on N" line it prints to stdout.
// Spawned with --fault "" so an ambient EBL_FAULT_PLAN cannot leak in.
struct TcpDaemon {
  Subprocess proc;
  std::uint16_t port = 0;
};

TcpDaemon spawn_tcp_daemon() {
  TcpDaemon d;
  d.proc = Subprocess::spawn(
      {default_pec_worker_path(), "--listen", "127.0.0.1:0", "--fault", ""});
  std::string line;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    char c = 0;
    if (!read_exact(d.proc.stdout_fd(), &c, 1, deadline))
      throw DataError("pec_worker daemon exited before announcing a port");
    if (c == '\n') break;
    line.push_back(c);
  }
  const std::size_t at = line.find_last_of(' ');
  const int port = at == std::string::npos ? 0 : std::atoi(line.c_str() + at + 1);
  if (port <= 0 || port > 65535)
    throw DataError("pec_worker daemon announced a bad port: " + line);
  d.port = static_cast<std::uint16_t>(port);
  return d;
}

ShotList pad_island_shots(std::size_t target_shots) {
  // 24 µm tile: a 20 µm pad plus an isolated 1 µm island in the gap. At the
  // 2 µm aperture a tile fractures into ~101 shots.
  const int per_side =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(double(target_shots) / 101.0))));
  PolygonSet s;
  for (int ty = 0; ty < per_side; ++ty) {
    for (int tx = 0; tx < per_side; ++tx) {
      const Coord x = Coord(tx) * 24000;
      const Coord y = Coord(ty) * 24000;
      s.insert(Box{x, y, x + 20000, y + 20000});
      s.insert(Box{x + 21500, y + 9500, x + 22500, y + 10500});
    }
  }
  return fracture(s, {.max_shot_size = 2000}).shots;
}

ShardedRow run_sharded(const Psf& psf, bool quick) {
  const ShotList shots = pad_island_shots(quick ? 10000 : 100000);
  PecOptions popt;
  popt.max_iterations = 10;
  popt.tolerance = 0.01;

  ShardedRow row;
  row.shots = shots.size();

  auto t0 = std::chrono::steady_clock::now();
  const PecResult global = correct_proximity(shots, psf, popt);
  row.global_ms = ms_since(t0);
  row.global_blur = global.blur;
  std::cerr << "sharded section: global solve done\n";

  PecOptions sopt = popt;
  // FFT-snug sizing: shards grown from the 64-sigma default until their
  // long-range maps fill the power-of-two FFT grid they would pad to anyway.
  sopt.shard_size = default_shard_size(psf, sopt);
  row.shard_size = sopt.shard_size;
  t0 = std::chrono::steady_clock::now();
  const PecResult sharded = correct_proximity(shots, psf, sopt);
  row.sharded_ms = ms_since(t0);
  row.shards = sharded.shards;
  row.rounds = sharded.rounds;
  row.resident_shards = sharded.resident_shards;
  row.evictions = sharded.shard_evictions;
  row.round_ms = sharded.round_ms;
  row.measure_ms = sharded.measure_ms;
  row.sharded_blur = sharded.blur;
  std::cerr << "sharded section: " << sharded.shards << "-shard solve done\n";

  // Distributed: identical jobs, out-of-process workers.
  if (::access(default_pec_worker_path().c_str(), X_OK) == 0) {
    PecOptions dopt = sopt;
    dopt.worker_count = 2;
    t0 = std::chrono::steady_clock::now();
    const PecResult dist = correct_proximity(shots, psf, dopt);
    row.dist_ms = ms_since(t0);
    row.dist_workers = dist.workers;
    row.dist_bitwise = dist.shots.size() == sharded.shots.size();
    for (std::size_t i = 0; row.dist_bitwise && i < shots.size(); ++i)
      row.dist_bitwise = dist.shots[i].dose == sharded.shots[i].dose;
    std::cerr << "sharded section: " << dist.workers << "-worker distributed solve "
              << (row.dist_bitwise ? "bitwise-identical" : "DOSE MISMATCH") << "\n";

    // Fault recovery: each worker incarnation crashes after serving one
    // sweep's worth of jobs, so every worker suffers a real mid-solve death
    // (multi-shard runs) while respawned incarnations live long enough that
    // the measured overhead is recovery, not perpetual cold-pool rebuilds.
    PecOptions fopt = dopt;
    fopt.worker_max_restarts = 32;
    row.fault_plan = "crash-after=" + std::to_string(std::max(2, sharded.shards));
    ::setenv("EBL_FAULT_PLAN", row.fault_plan.c_str(), 1);
    t0 = std::chrono::steady_clock::now();
    const PecResult faulted = correct_proximity(shots, psf, fopt);
    row.fault_ms = ms_since(t0);
    ::unsetenv("EBL_FAULT_PLAN");
    row.fault_restarts = faulted.worker_restarts;
    row.fault_reassigned = faulted.reassigned_jobs;
    row.fault_degraded = faulted.degraded_to_inprocess;
    row.fault_bitwise = faulted.shots.size() == sharded.shots.size();
    for (std::size_t i = 0; row.fault_bitwise && i < shots.size(); ++i)
      row.fault_bitwise = faulted.shots[i].dose == sharded.shots[i].dose;
    std::cerr << "sharded section: fault-recovery solve (" << row.fault_plan
              << ") survived " << row.fault_restarts << " restart(s), "
              << (row.fault_bitwise ? "bitwise-identical" : "DOSE MISMATCH")
              << "\n";

    // PEC as a service: two loopback daemons instead of two forked pipe
    // workers, same jobs. A daemon failure only skips this case — the rest
    // of the bench (and its committed baselines) must not depend on TCP.
    try {
      TcpDaemon da = spawn_tcp_daemon();
      TcpDaemon db = spawn_tcp_daemon();
      PecOptions topt = sopt;
      topt.worker_hosts = "127.0.0.1:" + std::to_string(da.port) +
                          ",127.0.0.1:" + std::to_string(db.port);
      t0 = std::chrono::steady_clock::now();
      const PecResult tcp = correct_proximity(shots, psf, topt);
      row.tcp_ms = ms_since(t0);
      row.tcp_workers = tcp.workers;
      row.tcp_bitwise = tcp.shots.size() == sharded.shots.size();
      for (std::size_t i = 0; row.tcp_bitwise && i < shots.size(); ++i)
        row.tcp_bitwise = tcp.shots[i].dose == sharded.shots[i].dose;
      ::kill(da.proc.pid(), SIGTERM);
      ::kill(db.proc.pid(), SIGTERM);
      da.proc.wait();
      db.proc.wait();
      std::cerr << "sharded section: " << tcp.workers << "-daemon TCP solve "
                << (row.tcp_bitwise ? "bitwise-identical" : "DOSE MISMATCH")
                << "\n";
    } catch (const std::exception& e) {
      std::cerr << "sharded section: TCP daemon case skipped (" << e.what()
                << ")\n";
    }
  } else {
    std::cerr << "sharded section: pec_worker not found, distributed run skipped\n";
  }

  ExposureEvaluator eval(global.shots, psf, popt.exposure);
  for (double e : eval.exposures_at_centroids())
    row.global_err = std::max(row.global_err, std::abs(e / popt.target - 1.0));
  std::vector<double> sharded_doses(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) {
    sharded_doses[i] = sharded.shots[i].dose;
    row.max_rel_dose_delta =
        std::max(row.max_rel_dose_delta,
                 std::abs(sharded.shots[i].dose - global.shots[i].dose) /
                     global.shots[i].dose);
  }
  eval.set_doses(sharded_doses);
  for (double e : eval.exposures_at_centroids())
    row.sharded_err = std::max(row.sharded_err, std::abs(e / popt.target - 1.0));
  return row;
}

void write_blur_perf(std::ofstream& out, const BlurPerf& p) {
  out << "{\"full_refreshes\": " << p.refreshes
      << ", \"delta_refreshes\": " << p.delta_refreshes
      << ", \"skipped_refreshes\": " << p.skipped_refreshes
      << ", \"shots_delta_updated\": " << p.shots_updated
      << ", \"accumulate_ms\": " << p.accumulate_ms
      << ", \"delta_accumulate_ms\": " << p.delta_accumulate_ms
      << ", \"blur_ms\": " << p.blur_ms
      << ", \"windowed_blurs\": " << p.windowed_blurs
      << ", \"windowed_blur_ms\": " << p.windowed_blur_ms << "}";
}

void write_bench_json(const std::vector<ScalingRow>& rows,
                      const std::vector<BlurRow>& blur,
                      const std::vector<PadRow>& pads, const ShardedRow& sharded,
                      const Psf& psf, const Psf& blur_psf) {
  std::ofstream out("BENCH_pec.json");
  out << "{\n  \"bench\": \"pec_scaling\",\n";
  out << "  \"workload\": \"checkerboard, 2um cells, 50% density\",\n";
  out << "  \"psf\": {\"alpha\": " << psf.min_sigma() << ", \"beta\": " << psf.max_sigma()
      << "},\n";
  out << "  \"threads\": " << resolve_threads(0) << ",\n";
  out << "  \"cases\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    const double ms_per_it = r.total_ms / r.iterations;
    const double shots_per_sec =
        1000.0 * static_cast<double>(r.shots) * r.iterations / r.total_ms;
    out << (i ? "," : "") << "\n    {\"shots\": " << r.shots
        << ", \"iterations\": " << r.iterations << ", \"total_ms\": " << r.total_ms
        << ", \"ms_per_iteration\": " << ms_per_it
        << ", \"shots_per_sec\": " << shots_per_sec;
    if (r.baseline_ms >= 0.0) {
      out << ", \"seed_path_total_ms\": " << r.baseline_ms
          << ", \"speedup_vs_seed_path\": " << r.baseline_ms / r.total_ms;
    }
    out << ", \"refresh_perf\": ";
    write_blur_perf(out, r.blur);
    out << "}";
  }
  out << "\n  ],\n";
  out << "  \"blur_backends\": {\n";
  out << "    \"workload\": \"triple-Gaussian long-range refresh (gamma + beta on"
         " one shared map)\",\n";
  out << "    \"psf\": {\"alpha\": " << blur_psf.min_sigma()
      << ", \"beta\": " << blur_psf.max_sigma() << ", \"terms\": "
      << blur_psf.terms().size() << "},\n";
  out << "    \"cases\": [";
  for (std::size_t i = 0; i < blur.size(); ++i) {
    const BlurRow& r = blur[i];
    out << (i ? "," : "") << "\n      {\"shots\": " << r.shots
        << ", \"pixels_per_sigma\": " << r.pixels_per_sigma
        << ", \"map_pixel_dbu\": " << r.map_pixel
        << ", \"accumulate_ms_per_iteration\": " << r.accumulate_ms
        << ", \"blur_ms_per_iteration_direct\": " << r.direct_ms
        << ", \"blur_ms_per_iteration_fft\": " << r.fft_ms
        << ", \"fft_blur_speedup\": " << r.direct_ms / r.fft_ms
        << ", \"auto_picks\": \"" << (r.auto_picks_fft ? "fft" : "direct")
        << "\", \"max_abs_deviation\": " << r.max_dev << "}";
  }
  out << "\n    ],\n";
  out << "    \"padded_size_sweep\": [";
  for (std::size_t i = 0; i < pads.size(); ++i) {
    const PadRow& r = pads[i];
    out << (i ? "," : "") << "\n      {\"map\": [" << r.nx << ", " << r.ny
        << "], \"kernel_radius_px\": " << r.radius << ", \"mixed_radix_plan\": ["
        << r.fast_px << ", " << r.fast_py << "], \"pow2_plan\": [" << r.pow2_px
        << ", " << r.pow2_py << "], \"mixed_radix_ms\": " << r.fast_ms
        << ", \"pow2_ms\": " << r.pow2_ms
        << ", \"mixed_radix_speedup\": " << r.pow2_ms / r.fast_ms << "}";
  }
  out << "\n    ]\n  },\n";
  out << "  \"sharded\": {\n";
  out << "    \"workload\": \"pad+island grid (20um pads, isolated 1um islands),"
         " triple-Gaussian full correction, sharded (FFT-snug shards, density"
         " warm start, resident evaluator pool) vs global oracle (errors"
         " measured on one shared global evaluator)\",\n";
  out << "    \"cases\": [\n";
  out << "      {\"shots\": " << sharded.shots
      << ", \"shard_size_dbu\": " << sharded.shard_size
      << ", \"shards\": " << sharded.shards << ", \"rounds\": " << sharded.rounds
      << ", \"global_total_ms\": " << sharded.global_ms
      << ", \"sharded_total_ms\": " << sharded.sharded_ms
      << ", \"sharded_vs_global_speedup\": " << sharded.global_ms / sharded.sharded_ms
      << ", \"global_max_error\": " << sharded.global_err
      << ", \"sharded_max_error\": " << sharded.sharded_err
      << ", \"max_rel_dose_delta\": " << sharded.max_rel_dose_delta
      << ",\n       \"resident_shards\": " << sharded.resident_shards
      << ", \"evictions\": " << sharded.evictions << ", \"round_ms\": [";
  for (std::size_t i = 0; i < sharded.round_ms.size(); ++i) {
    out << (i ? ", " : "") << sharded.round_ms[i];
  }
  out << "]";
  // The -1 "no measurement pass ran" sentinel is in-process bookkeeping, not
  // a measurement — leaving it out beats publishing a negative wall-clock.
  if (sharded.measure_ms >= 0.0) out << ", \"measure_ms\": " << sharded.measure_ms;
  out << ",\n       \"distributed_workers\": " << sharded.dist_workers
      << ", \"distributed_total_ms\": " << sharded.dist_ms
      << ", \"distributed_vs_inprocess_speedup\": "
      << (sharded.dist_ms > 0 ? sharded.sharded_ms / sharded.dist_ms : 0.0)
      << ", \"distributed_bitwise_identical\": "
      << (sharded.dist_bitwise ? "true" : "false");
  if (sharded.fault_ms >= 0.0) {
    out << ",\n       \"fault_recovery\": {\"fault_plan\": \"" << sharded.fault_plan
        << "\", \"total_ms\": " << sharded.fault_ms
        << ", \"overhead_vs_fault_free\": "
        << (sharded.dist_ms > 0
                ? (sharded.fault_ms - sharded.dist_ms) / sharded.dist_ms
                : 0.0)
        << ", \"worker_restarts\": " << sharded.fault_restarts
        << ", \"reassigned_jobs\": " << sharded.fault_reassigned
        << ", \"degraded_to_inprocess\": "
        << (sharded.fault_degraded ? "true" : "false")
        << ", \"bitwise_identical\": "
        << (sharded.fault_bitwise ? "true" : "false") << "}";
  }
  // Guard-neutral on purpose: wall clocks are machine-bound and the
  // overhead ratio mixes transport stacks, so none of these names contain
  // "speedup"/"improvement" — the regression guard ignores them while the
  // trajectory still records what the TCP hop costs over pipes.
  if (sharded.tcp_ms >= 0.0) {
    out << ",\n       \"distributed_tcp\": {\"workers\": " << sharded.tcp_workers
        << ", \"tcp_total_ms\": " << sharded.tcp_ms
        << ", \"pipe_total_ms\": " << sharded.dist_ms
        << ", \"tcp_overhead_ratio\": "
        << (sharded.dist_ms > 0 ? sharded.tcp_ms / sharded.dist_ms : 0.0)
        << ", \"bitwise_identical\": "
        << (sharded.tcp_bitwise ? "true" : "false") << "}";
  }
  out << ",\n       \"global_refresh_perf\": ";
  write_blur_perf(out, sharded.global_blur);
  out << ",\n       \"sharded_refresh_perf\": ";
  write_blur_perf(out, sharded.sharded_blur);
  out << "}\n";
  out << "    ]\n  }\n}\n";
}

void print_sharded(const ShardedRow& sharded) {
  Table sh("Sharded PEC: tiled concurrent correction vs the global oracle");
  sh.columns({"shots", "shards", "rounds", "resident", "global ms", "sharded ms",
              "speedup", "global err", "sharded err", "max dose delta"});
  sh.row(sharded.shots, sharded.shards, sharded.rounds, sharded.resident_shards,
         fixed(sharded.global_ms, 1), fixed(sharded.sharded_ms, 1),
         fixed(sharded.global_ms / sharded.sharded_ms, 2) + "x",
         fixed(sharded.global_err, 4), fixed(sharded.sharded_err, 4),
         fixed(sharded.max_rel_dose_delta, 4));
  sh.print();

  if (sharded.dist_workers > 0) {
    Table ds("Distributed sharded PEC: pec_worker processes vs in-process");
    ds.columns({"workers", "in-process ms", "distributed ms", "speedup",
                "doses bitwise-identical"});
    ds.row(sharded.dist_workers, fixed(sharded.sharded_ms, 1),
           fixed(sharded.dist_ms, 1),
           fixed(sharded.sharded_ms / sharded.dist_ms, 2) + "x",
           sharded.dist_bitwise ? "yes" : "NO");
    ds.print();
  }

  if (sharded.tcp_ms >= 0) {
    Table tt("PEC as a service: TCP worker daemons vs forked pipe workers");
    tt.columns({"workers", "pipe ms", "tcp ms", "tcp overhead",
                "doses bitwise-identical"});
    tt.row(sharded.tcp_workers, fixed(sharded.dist_ms, 1),
           fixed(sharded.tcp_ms, 1),
           fixed(100.0 * (sharded.tcp_ms - sharded.dist_ms) / sharded.dist_ms, 1) + "%",
           sharded.tcp_bitwise ? "yes" : "NO");
    tt.print();
  }

  if (sharded.fault_ms >= 0) {
    Table fr("Fault recovery: distributed solve under injected worker crashes (" +
             sharded.fault_plan + ")");
    fr.columns({"fault-free ms", "recovered ms", "overhead", "restarts",
                "reassigned jobs", "degraded", "doses bitwise-identical"});
    fr.row(fixed(sharded.dist_ms, 1), fixed(sharded.fault_ms, 1),
           fixed(100.0 * (sharded.fault_ms - sharded.dist_ms) / sharded.dist_ms, 1) + "%",
           sharded.fault_restarts, sharded.fault_reassigned,
           sharded.fault_degraded ? "yes" : "no",
           sharded.fault_bitwise ? "yes" : "NO");
    fr.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  // --sharded-only re-runs just the sharded/distributed/fault section and
  // prints its tables without rewriting BENCH_pec.json. The section is the
  // longest and the most sensitive to machine load, so an A/B of a sharding
  // change wants a probe that skips the unrelated half of the suite.
  if (argc > 1 && std::strcmp(argv[1], "--sharded-only") == 0) {
    const Psf blur_psf = Psf::triple_gaussian(50.0, 3000.0, 600.0, 0.7, 0.3);
    print_sharded(run_sharded(blur_psf, false));
    return 0;
  }

  const Psf scaling_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  const std::vector<ScalingRow> scaling = run_scaling(scaling_psf, quick);
  Table sc("Scaling: full 10-iteration correct_proximity throughput");
  sc.columns({"shots", "total ms", "ms/iteration", "shots/sec", "seed-path ms", "speedup"});
  for (const ScalingRow& r : scaling) {
    sc.row(r.shots, fixed(r.total_ms, 1), fixed(r.total_ms / r.iterations, 2),
           fixed(1000.0 * double(r.shots) * r.iterations / r.total_ms, 0),
           r.baseline_ms >= 0 ? fixed(r.baseline_ms, 1) : std::string("-"),
           r.baseline_ms >= 0 ? fixed(r.baseline_ms / r.total_ms, 2) : std::string("-"));
  }
  sc.print();

  const Psf blur_psf = Psf::triple_gaussian(50.0, 3000.0, 600.0, 0.7, 0.3);
  const std::vector<BlurRow> blur_rows = run_blur_backends(blur_psf, quick);
  Table bb("Blur backends: per-iteration long-range refresh (triple Gaussian)");
  bb.columns({"shots", "px/sigma", "accumulate ms", "direct ms", "fft ms",
              "fft speedup", "auto picks", "max deviation"});
  for (const BlurRow& r : blur_rows) {
    bb.row(r.shots, fixed(r.pixels_per_sigma, 0), fixed(r.accumulate_ms, 1),
           fixed(r.direct_ms, 1), fixed(r.fft_ms, 1),
           fixed(r.direct_ms / r.fft_ms, 2), r.auto_picks_fft ? "fft" : "direct",
           r.max_dev);
  }
  bb.print();

  const std::vector<PadRow> pad_rows = run_pad_sweep(quick);
  Table ps("Padded FFT plans: mixed-radix (5-smooth) vs power-of-two");
  ps.columns({"map", "radius", "mixed-radix plan", "pow2 plan", "mixed ms",
              "pow2 ms", "speedup"});
  for (const PadRow& r : pad_rows) {
    ps.row(std::to_string(r.nx) + "x" + std::to_string(r.ny), r.radius,
           std::to_string(r.fast_px) + "x" + std::to_string(r.fast_py),
           std::to_string(r.pow2_px) + "x" + std::to_string(r.pow2_py),
           fixed(r.fast_ms, 2), fixed(r.pow2_ms, 2),
           fixed(r.pow2_ms / r.fast_ms, 2) + "x");
  }
  ps.print();

  const ShardedRow sharded = run_sharded(blur_psf, quick);
  print_sharded(sharded);

  write_bench_json(scaling, blur_rows, pad_rows, sharded, scaling_psf, blur_psf);
  std::cout << "wrote BENCH_pec.json\n";
  if (quick) return 0;
  const Coord w = 500;
  const Coord pitch = 1000;
  const Coord len = 40000;
  PolygonSet pattern = line_space_array({0, 0}, w, pitch, len, 21);
  pattern.insert(Box{40000, 0, 40000 + w, len});  // isolated line

  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  const ShotList raw = fracture(pattern).shots;

  // --- Corrections (timed for the ablation). ---
  PecOptions popt;
  popt.max_iterations = 10;
  popt.tolerance = 0.005;
  auto t0 = std::chrono::steady_clock::now();
  const PecResult iterative = correct_proximity(raw, psf, popt);
  const double iterative_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  const PecResult density = density_pec(raw, psf, popt);
  const double density_ms = ms_since(t0);

  // --- F1: profiles. ---
  const Raster e_raw = simulate_exposure(raw, psf, {.pixel = 25});
  const Raster e_it = simulate_exposure(iterative.shots, psf, {.pixel = 25});
  const Raster e_den = simulate_exposure(density.shots, psf, {.pixel = 25});

  const Point a{-1500, len / 2};
  const Point b{42500, len / 2};
  CsvWriter csv(artifact_path("bench_f1_profiles.csv"));
  csv.header({"x_nm", "uncorrected", "iterative_pec", "density_pec"});
  const auto p0 = profile_along(e_raw, a, b, 1761);
  const auto p1 = profile_along(e_it, a, b, 1761);
  const auto p2 = profile_along(e_den, a, b, 1761);
  for (std::size_t i = 0; i < p0.size(); ++i) {
    const double x = a.x + (double(b.x) - a.x) * double(i) / (p0.size() - 1);
    csv.row(x, p0[i], p1[i], p2[i]);
  }

  const auto sample = [&](const Raster& m, Coord x) {
    return profile_along(m, Point{x, len / 2}, Point{x + 1, len / 2}, 2)[0];
  };
  Table f1("F1: exposure at representative points (0.5um lines, eta=0.7)");
  f1.columns({"case", "dense line center", "dense space center", "iso line center"});
  f1.row("uncorrected", fixed(sample(e_raw, 10250), 3), fixed(sample(e_raw, 10750), 3),
         fixed(sample(e_raw, 40250), 3));
  f1.row("iterative PEC", fixed(sample(e_it, 10250), 3), fixed(sample(e_it, 10750), 3),
         fixed(sample(e_it, 40250), 3));
  f1.row("density PEC", fixed(sample(e_den, 10250), 3), fixed(sample(e_den, 10750), 3),
         fixed(sample(e_den, 40250), 3));
  f1.print();

  // --- F2: convergence. ---
  Table f2("F2: iterative PEC convergence (max relative exposure error)");
  f2.columns({"iteration", "max error"});
  CsvWriter conv(artifact_path("bench_f2_convergence.csv"));
  conv.header({"iteration", "max_error"});
  for (std::size_t i = 0; i < iterative.max_error_history.size(); ++i) {
    f2.row(i, fixed(iterative.max_error_history[i], 4));
    conv.row(i, iterative.max_error_history[i]);
  }
  f2.print();

  // --- Ablation: shape PEC vs density PEC. ---
  Table ab("Ablation: iterative shape PEC vs. geometry-density PEC");
  ab.columns({"method", "final max error", "runtime ms"});
  ab.row("iterative (10 it, tol 0.5%)", fixed(iterative.final_max_error, 4),
         fixed(iterative_ms, 1));
  ab.row("density formula (1 pass)", fixed(density.final_max_error, 4),
         fixed(density_ms, 1));
  ab.print();

  // Dose-class quantization sweep: how many machine dose classes are enough?
  Table q("Dose quantization: residual error vs. dose classes");
  q.columns({"classes", "final max error"});
  for (const int classes : {2, 4, 8, 16, 32, 0}) {
    PecOptions o = popt;
    o.dose_classes = classes;
    const PecResult r = correct_proximity(raw, psf, o);
    q.row(classes == 0 ? "continuous" : std::to_string(classes),
          fixed(r.final_max_error, 4));
  }
  q.print();

  std::cout << "\nwrote bench_f1_profiles.csv, bench_f2_convergence.csv\n";
  return 0;
}
