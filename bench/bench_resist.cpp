// T3 — Resist operating points.
//
// Table of dose-to-gel (onset), print threshold (t = 0.5), dose-to-full
// (saturation), and dose latitude ratio for a family of contrast resists,
// plus the ideal threshold resist. Expected shape: latitude (saturation /
// onset) = 10^(1/gamma) shrinks monotonically as contrast rises.
#include <cmath>
#include <iostream>

#include "util/artifacts.h"
#include "sim/resist.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

int main() {
  Table t("T3: resist operating points (exposure relative to unit-dose bulk)");
  t.columns({"resist", "gamma", "onset E0", "print (t=0.5)", "full E100",
             "latitude E100/E0"});
  CsvWriter csv(artifact_path("bench_t3_resists.csv"));
  csv.header({"gamma", "onset", "print", "full", "latitude"});

  for (const double gamma : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const ContrastResist r(gamma, 0.4);
    t.row("contrast", fixed(gamma, 1), fixed(r.onset(), 3), fixed(r.print_threshold(), 3),
          fixed(r.saturation(), 3), fixed(r.saturation() / r.onset(), 3));
    csv.row(gamma, r.onset(), r.print_threshold(), r.saturation(),
            r.saturation() / r.onset());
  }
  const ThresholdResist ideal(0.5);
  t.row("threshold (ideal)", "inf", fixed(0.5, 3), fixed(ideal.print_threshold(), 3),
        fixed(0.5, 3), fixed(1.0, 3));
  t.print();

  // Full contrast curves as series.
  CsvWriter curves(artifact_path("bench_t3_curves.csv"));
  curves.header({"exposure", "t_gamma_0.5", "t_gamma_1", "t_gamma_2", "t_gamma_4"});
  for (double e = 0.1; e <= 5.0; e *= 1.05) {
    curves.row(e, ContrastResist(0.5, 0.4).thickness(e),
               ContrastResist(1.0, 0.4).thickness(e),
               ContrastResist(2.0, 0.4).thickness(e),
               ContrastResist(4.0, 0.4).thickness(e));
  }
  std::cout << "\nwrote bench_t3_resists.csv, bench_t3_curves.csv\n";
  return 0;
}
