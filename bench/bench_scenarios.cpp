// Scenario-matrix tracker: machine-realistic end-to-end write flows scored
// as printed edge-placement error (sim/scenarios.h).
//
// Every scenario runs the full data-prep pipeline under one realistic
// variation (dose classes, multi-pass grayscale, write ordering, field
// distortion, sharded PEC) and records EPE p50/p99/max of the uncorrected
// vs the corrected write, plus the machine-stage metrics the scenario
// exercises. BENCH_scenarios.json is the breadth ledger the CI trajectory
// guard watches: the epe_after_* columns are quality (lower is better,
// compared absolutely), the *_improvement columns are ratios (higher is
// better).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/scenarios.h"
#include "util/parallel.h"
#include "util/table.h"

using namespace ebl;

namespace {

double improvement(double before, double after) {
  return before / std::max(after, 1e-6);
}

void write_bench_json(const std::vector<ScenarioResult>& results) {
  std::ofstream out("BENCH_scenarios.json");
  out << "{\n  \"bench\": \"scenario_matrix\",\n";
  out << "  \"workload\": \"machine-realistic end-to-end write flows, "
         "EPE-scored before vs after correction (sim/scenarios.h)\",\n";
  out << "  \"threads\": " << resolve_threads(0) << ",\n";
  out << "  \"cases\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    out << (i ? "," : "") << "\n    {\"scenario\": \"" << r.name << "\""
        << ", \"shots\": " << r.shots
        << ", \"pec_iterations\": " << r.pec_iterations
        << ",\n     \"epe_before_p50\": " << r.epe_before.p50
        << ", \"epe_before_p99\": " << r.epe_before.p99
        << ", \"epe_before_max\": " << r.epe_before.max
        << ",\n     \"epe_after_p50\": " << r.epe_after.p50
        << ", \"epe_after_p99\": " << r.epe_after.p99
        << ", \"epe_after_max\": " << r.epe_after.max
        << ",\n     \"epe_p50_improvement\": "
        << improvement(r.epe_before.p50, r.epe_after.p50)
        << ", \"epe_p99_improvement\": "
        << improvement(r.epe_before.p99, r.epe_after.p99)
        << ",\n     \"epe_samples\": " << r.epe_after.samples
        << ", \"epe_missing_before\": " << r.epe_before.missing
        << ", \"epe_missing_after\": " << r.epe_after.missing
        << ", \"prep_ms\": " << r.prep_ms << ", \"score_ms\": " << r.score_ms;
    if (r.pec_shards > 0) out << ",\n     \"pec_shards\": " << r.pec_shards;
    if (r.dose_classes_used > 0)
      out << ",\n     \"dose_classes_used\": " << r.dose_classes_used;
    if (r.travel_ordered >= 0.0) {
      out << ",\n     \"travel_unordered_dbu\": " << r.travel_unordered
          << ", \"travel_ordered_dbu\": " << r.travel_ordered
          << ", \"travel_improvement\": "
          << improvement(r.travel_unordered, r.travel_ordered)
          << ", \"settle_unordered_s\": " << r.settle_unordered_s
          << ", \"settle_ordered_s\": " << r.settle_ordered_s;
    }
    if (r.stitch_calibrated >= 0.0) {
      out << ",\n     \"stitch_uncalibrated_dbu\": " << r.stitch_uncalibrated
          << ", \"stitch_calibrated_dbu\": " << r.stitch_calibrated;
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --quick is accepted for CLI symmetry with the other benches; the matrix
  // is already sized to finish in seconds, so both modes run everything —
  // which also keeps the guard's case identities matched to the committed
  // baseline.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") != 0) {
      std::cerr << "usage: bench_scenarios [--quick]\n";
      return 2;
    }
  }

  const std::vector<ScenarioResult> results = run_scenario_matrix({});

  Table t("scenario matrix: printed |EPE| before vs after correction (dbu)");
  t.columns({"scenario", "shots", "p50 pre", "p50 post", "p99 pre", "p99 post",
             "max post", "prep ms", "score ms"});
  for (const ScenarioResult& r : results) {
    t.row(r.name, r.shots, fixed(r.epe_before.p50, 1), fixed(r.epe_after.p50, 1),
          fixed(r.epe_before.p99, 1), fixed(r.epe_after.p99, 1),
          fixed(r.epe_after.max, 1), fixed(r.prep_ms, 0), fixed(r.score_ms, 0));
  }
  t.print();

  for (const ScenarioResult& r : results) {
    if (r.travel_ordered >= 0.0) {
      std::cout << r.name << ": serpentine travel "
                << fixed(r.travel_unordered / 1000.0, 0) << " -> "
                << fixed(r.travel_ordered / 1000.0, 0) << " um, settle "
                << fixed(r.settle_unordered_s, 4) << " -> "
                << fixed(r.settle_ordered_s, 4) << " s\n";
    }
    if (r.stitch_calibrated >= 0.0) {
      std::cout << r.name << ": stitching error "
                << fixed(r.stitch_uncalibrated, 1) << " -> "
                << fixed(r.stitch_calibrated, 1) << " dbu after calibration\n";
    }
    if (r.dose_classes_used > 0) {
      std::cout << r.name << ": " << r.dose_classes_used
                << " machine dose classes in use\n";
    }
  }

  write_bench_json(results);
  std::cout << "wrote BENCH_scenarios.json\n";
  return 0;
}
