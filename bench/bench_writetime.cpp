// T2 + F5 — Writer comparison and the throughput crossover.
//
// T2 (table): write time of one 1 mm field at three pattern densities for
// raster, vector and VSB machines (with per-component breakdown).
// F5 (figure/series): write time vs. density 1..80% for the three machines.
// Expected shape: raster flat (density-independent), vector and VSB rising
// with density — so the curves CROSS: raster wins dense chips, vector/VSB
// win sparse ones. VSB sits below vector everywhere the average figure is
// much larger than the Gaussian pixel.
#include <iostream>

#include "util/artifacts.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "machine/ordering.h"
#include "machine/writer.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"

using namespace ebl;

namespace {

ShotList make_chip(double density, std::uint64_t seed) {
  Rng rng(seed);
  // One 1 mm x 1 mm field of mixed-size features.
  const PolygonSet s =
      random_manhattan(rng, Box{0, 0, 1000000, 1000000}, density, 1000, 25000);
  FractureOptions opt;
  opt.max_shot_size = 2000;  // 2 µm VSB aperture
  return fracture(s, opt).shots;
}

void table_t2() {
  const RasterScanWriter raster;
  const VectorScanWriter vector_w;
  const VsbWriter vsb;

  Table t("T2: write time for one 1x1 mm field (seconds)");
  t.columns({"density", "machine", "beam", "overhead", "stage", "total"});
  for (const double density : {0.05, 0.20, 0.50}) {
    const ShotList shots = make_chip(density, 21);
    const WriteJob job = make_write_job(shots, Box{0, 0, 1000000, 1000000});
    for (const WriterModel* m :
         std::initializer_list<const WriterModel*>{&raster, &vector_w, &vsb}) {
      const WriteTime wt = m->write_time(job);
      t.row(fixed(density * 100, 0) + "%", m->name(), fixed(wt.exposure_s, 3),
            fixed(wt.overhead_s, 3), fixed(wt.stage_s, 3), fixed(wt.total(), 3));
    }
  }
  t.print();
}

void figure_f5() {
  const RasterScanWriter raster;
  const VectorScanWriter vector_w;
  const VsbWriter vsb;

  Table t("F5: write time vs. pattern density (1x1 mm field, seconds)");
  t.columns({"density %", "raster", "vector", "vsb"});
  CsvWriter csv(artifact_path("bench_f5_crossover.csv"));
  csv.header({"density", "raster_s", "vector_s", "vsb_s"});
  double crossover = -1.0;
  double prev_gap = 0.0;
  for (const double density : {0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50, 0.65, 0.80}) {
    const ShotList shots = make_chip(density, 33);
    const WriteJob job = make_write_job(shots, Box{0, 0, 1000000, 1000000});
    const double tr = raster.write_time(job).total();
    const double tv = vector_w.write_time(job).total();
    const double ts = vsb.write_time(job).total();
    t.row(fixed(density * 100, 0), fixed(tr, 3), fixed(tv, 3), fixed(ts, 3));
    csv.row(density, tr, tv, ts);
    const double gap = tv - tr;
    if (crossover < 0 && prev_gap < 0 && gap > 0) crossover = density;
    prev_gap = gap;
  }
  t.print();
  if (crossover > 0) {
    std::cout << "vector/raster crossover near density " << fixed(crossover * 100, 0)
              << "% — raster wins denser patterns, vector wins sparser ones\n";
  }
}

void ordering_ablation() {
  // Vector-scan deflection travel: fracture order vs. serpentine vs.
  // greedy nearest-neighbor (1 µs/µm settle, 0.1 µs floor).
  const ShotList base = make_chip(0.10, 77);
  ShotList serp = base;
  order_serpentine(serp, 50000);
  ShotList nn = base;
  order_nearest_neighbor(nn);

  Table t("Ablation: vector-scan shot ordering (10% density, 1mm field)");
  t.columns({"order", "travel (mm)", "settle time (s)"});
  for (const auto& [name, shots] :
       std::initializer_list<std::pair<const char*, const ShotList*>>{
           {"fracture order", &base}, {"serpentine", &serp}, {"nearest-neighbor", &nn}}) {
    t.row(name, fixed(total_travel(*shots) / 1e6, 2),
          fixed(deflection_settle_time(*shots, 1e-6, 1e-7), 3));
  }
  t.print();
}

}  // namespace

int main() {
  table_t2();
  figure_f5();
  ordering_ablation();
  std::cout << "\nwrote bench_f5_crossover.csv\n";
  return 0;
}
