// Frozen copy of the original (seed) PEC exposure engine, kept verbatim as
// the benchmark baseline so BENCH_pec.json can report the speedup of the
// current engine against the algorithm the repository started from:
//   - spatial hash as vector-of-vectors bins sized to the analytic cutoff,
//   - per-query neighbor gathering with a heap-allocated candidate list,
//     sort, and unique,
//   - full geometry re-rasterization of every shot on every dose update,
//   - bounds-checked single-threaded separable blur,
//   - a second evaluator rebuilt from scratch for the final error pass.
// Do not "fix" or optimize this file; it is a measurement fixture, not
// production code. The production engine lives in src/pec/.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "fracture/shot.h"
#include "geom/raster.h"
#include "pec/correction.h"
#include "pec/exposure.h"
#include "pec/psf.h"

namespace ebl::seedref {

inline void seed_gaussian_blur(Raster& raster, double sigma_dbu) {
  const double sigma_px = sigma_dbu / raster.pixel_size();
  const int radius = std::max(1, static_cast<int>(std::ceil(4.0 * sigma_px)));
  std::vector<double> kernel(static_cast<std::size_t>(radius) + 1);
  double norm = 0.0;
  for (int i = 0; i <= radius; ++i) {
    kernel[static_cast<std::size_t>(i)] = std::exp(-(double(i) * i) / (sigma_px * sigma_px));
    norm += (i == 0 ? 1.0 : 2.0) * kernel[static_cast<std::size_t>(i)];
  }
  for (double& k : kernel) k /= norm;

  const int nx = raster.width();
  const int ny = raster.height();
  std::vector<double> tmp(static_cast<std::size_t>(nx) * ny, 0.0);

  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      double acc = raster.at(x, y) * kernel[0];
      for (int k = 1; k <= radius; ++k) {
        if (x - k >= 0) acc += raster.at(x - k, y) * kernel[static_cast<std::size_t>(k)];
        if (x + k < nx) acc += raster.at(x + k, y) * kernel[static_cast<std::size_t>(k)];
      }
      tmp[static_cast<std::size_t>(y) * nx + x] = acc;
    }
  }
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      double acc = tmp[static_cast<std::size_t>(y) * nx + x] * kernel[0];
      for (int k = 1; k <= radius; ++k) {
        if (y - k >= 0) acc += tmp[static_cast<std::size_t>(y - k) * nx + x] *
                               kernel[static_cast<std::size_t>(k)];
        if (y + k < ny) acc += tmp[static_cast<std::size_t>(y + k) * nx + x] *
                               kernel[static_cast<std::size_t>(k)];
      }
      raster.at(x, y) = acc;
    }
  }
}

class SeedExposureEvaluator {
 public:
  SeedExposureEvaluator(ShotList shots, const Psf& psf, ExposureOptions options = {})
      : shots_(std::move(shots)), opt_(options) {
    for (const PsfTerm& t : psf.terms()) {
      (t.sigma >= opt_.long_range_threshold ? long_terms_ : short_terms_).push_back(t);
    }
    double max_short = 0.0;
    for (const PsfTerm& t : short_terms_) max_short = std::max(max_short, t.sigma);
    cutoff_ = opt_.cutoff_sigmas * max_short;

    Box frame;
    for (const Shot& s : shots_) frame += s.shape.bbox();
    grid_origin_ = frame.lo;
    cell_ = std::max<Coord>(1, static_cast<Coord>(std::max(cutoff_, 64.0)));
    gx_ = static_cast<int>(frame.width() / cell_) + 1;
    gy_ = static_cast<int>(frame.height() / cell_) + 1;
    bins_.assign(static_cast<std::size_t>(gx_) * gy_, {});
    for (std::uint32_t i = 0; i < shots_.size(); ++i) {
      const Box bb = shots_[i].shape.bbox();
      const int x0 = static_cast<int>((Coord64(bb.lo.x) - grid_origin_.x) / cell_);
      const int x1 = static_cast<int>((Coord64(bb.hi.x) - grid_origin_.x) / cell_);
      const int y0 = static_cast<int>((Coord64(bb.lo.y) - grid_origin_.y) / cell_);
      const int y1 = static_cast<int>((Coord64(bb.hi.y) - grid_origin_.y) / cell_);
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          bins_[static_cast<std::size_t>(y) * gx_ + x].push_back(i);
        }
      }
    }
    rebuild_long_range();
  }

  const ShotList& shots() const { return shots_; }

  void set_doses(const std::vector<double>& doses) {
    for (std::size_t i = 0; i < doses.size(); ++i) shots_[i].dose = doses[i];
    rebuild_long_range();
  }

  double exposure_at(double px, double py) const {
    double e = 0.0;
    if (!short_terms_.empty()) {
      const int cx = static_cast<int>((px - grid_origin_.x) / cell_);
      const int cy = static_cast<int>((py - grid_origin_.y) / cell_);
      const int reach = static_cast<int>(std::ceil(cutoff_ / cell_)) + 1;
      std::vector<std::uint32_t> near;
      for (int y = std::max(0, cy - reach); y <= std::min(gy_ - 1, cy + reach); ++y) {
        for (int x = std::max(0, cx - reach); x <= std::min(gx_ - 1, cx + reach); ++x) {
          const auto& bin = bins_[static_cast<std::size_t>(y) * gx_ + x];
          near.insert(near.end(), bin.begin(), bin.end());
        }
      }
      std::sort(near.begin(), near.end());
      near.erase(std::unique(near.begin(), near.end()), near.end());
      for (const std::uint32_t idx : near) {
        const Shot& s = shots_[idx];
        const Box bb = s.shape.bbox();
        const double dx = std::max({double(bb.lo.x) - px, px - double(bb.hi.x), 0.0});
        const double dy = std::max({double(bb.lo.y) - py, py - double(bb.hi.y), 0.0});
        if (dx * dx + dy * dy > cutoff_ * cutoff_) continue;
        for (const PsfTerm& term : short_terms_) {
          e += s.dose * term_exposure_trapezoid(term, s.shape, px, py);
        }
      }
    }
    for (const LongMap& lm : long_maps_) {
      const Raster& r = *lm.map;
      const double fx = (px - r.origin().x) / r.pixel_size() - 0.5;
      const double fy = (py - r.origin().y) / r.pixel_size() - 0.5;
      const int ix = static_cast<int>(std::floor(fx));
      const int iy = static_cast<int>(std::floor(fy));
      const double tx = fx - ix;
      const double ty = fy - iy;
      auto sample = [&](int x, int y) -> double {
        if (x < 0 || y < 0 || x >= r.width() || y >= r.height()) return 0.0;
        return r.at(x, y);
      };
      const double v = (1 - tx) * (1 - ty) * sample(ix, iy) +
                       tx * (1 - ty) * sample(ix + 1, iy) +
                       (1 - tx) * ty * sample(ix, iy + 1) +
                       tx * ty * sample(ix + 1, iy + 1);
      e += lm.term.weight * v;
    }
    return e;
  }

  std::pair<double, double> centroid(std::size_t i) const {
    const Trapezoid& t = shots_[i].shape;
    const double w0 = static_cast<double>(t.xr0) - t.xl0;
    const double w1 = static_cast<double>(t.xr1) - t.xl1;
    const double m0 = 0.5 * (static_cast<double>(t.xr0) + t.xl0);
    const double m1 = 0.5 * (static_cast<double>(t.xr1) + t.xl1);
    const double denom = w0 + w1;
    if (denom <= 0) return {m0, 0.5 * (double(t.y0) + t.y1)};
    const double cx = (m0 * (2 * w0 + w1) + m1 * (w0 + 2 * w1)) / (3.0 * denom);
    const double cy =
        t.y0 + (static_cast<double>(t.y1) - t.y0) * (w0 + 2 * w1) / (3.0 * denom);
    return {cx, cy};
  }

  std::vector<double> exposures_at_centroids() const {
    std::vector<double> out(shots_.size());
    for (std::size_t i = 0; i < shots_.size(); ++i) {
      const auto [cx, cy] = centroid(i);
      out[i] = exposure_at(cx, cy);
    }
    return out;
  }

 private:
  void rebuild_long_range() {
    long_maps_.clear();
    if (long_terms_.empty()) return;
    Box frame;
    for (const Shot& s : shots_) frame += s.shape.bbox();
    for (const PsfTerm& term : long_terms_) {
      const Coord margin = static_cast<Coord>(std::ceil(4.0 * term.sigma));
      const Box padded = frame.bloated(margin);
      const Coord pixel =
          std::max<Coord>(1, static_cast<Coord>(term.sigma / opt_.pixels_per_sigma));
      auto raster = std::make_unique<Raster>(padded, pixel);
      for (const Shot& s : shots_) raster->add_coverage(s.shape, s.dose);
      seed_gaussian_blur(*raster, term.sigma);
      long_maps_.push_back(LongMap{term, std::move(raster)});
    }
  }

  ShotList shots_;
  std::vector<PsfTerm> short_terms_;
  std::vector<PsfTerm> long_terms_;
  ExposureOptions opt_;
  Coord cell_ = 1;
  Point grid_origin_{0, 0};
  int gx_ = 0, gy_ = 0;
  std::vector<std::vector<std::uint32_t>> bins_;
  double cutoff_ = 0.0;
  struct LongMap {
    PsfTerm term;
    std::unique_ptr<Raster> map;
  };
  std::vector<LongMap> long_maps_;
};

/// The seed correct_proximity loop verbatim (including the from-scratch
/// final-error evaluator).
inline PecResult seed_correct_proximity(const ShotList& shots, const Psf& psf,
                                        const PecOptions& options) {
  SeedExposureEvaluator eval(shots, psf, options.exposure);
  std::vector<double> doses(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) doses[i] = shots[i].dose;

  PecResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const std::vector<double> e = eval.exposures_at_centroids();
    double max_err = 0.0;
    for (double ei : e) max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
    result.max_error_history.push_back(max_err);
    result.iterations = iter;
    if (max_err < options.tolerance) break;

    for (std::size_t i = 0; i < doses.size(); ++i) {
      const double ratio = options.target / std::max(e[i], 1e-9);
      doses[i] = std::clamp(doses[i] * std::pow(ratio, options.damping),
                            options.min_dose, options.max_dose);
    }
    eval.set_doses(doses);
  }

  result.shots = eval.shots();
  if (options.dose_classes > 0) quantize_doses(result.shots, options.dose_classes);

  SeedExposureEvaluator final_eval(result.shots, psf, options.exposure);
  double max_err = 0.0;
  for (double ei : final_eval.exposures_at_centroids())
    max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
  result.final_max_error = max_err;
  return result;
}

}  // namespace ebl::seedref
