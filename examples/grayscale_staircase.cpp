// Domain example: grayscale exposure — dose-modulated multi-level relief.
//
// With a finite-contrast (negative) resist, the remaining thickness tracks
// the logarithm of the local dose. Writing the same footprint with stepped
// doses therefore produces a staircase relief in a single exposure — the
// single-step 3D patterning idea behind multilevel Fresnel optics.
//
// This example assigns one dose per step from the inverse contrast curve,
// simulates the exposure, develops, and reports achieved vs. designed
// thickness per level.
#include <iostream>

#include "util/artifacts.h"
#include "core/ebl.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

int main() {
  const int levels = 8;
  const Coord step_w = dbu(2.0);   // 2 µm per step
  const Coord height = dbu(20.0);  // step length

  const ContrastResist resist(1.0, 0.4);
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);

  // One shot per step; dose from the inverse contrast curve, corrected for
  // the local backscatter environment with the density formula.
  ShotList shots;
  for (int i = 0; i < levels; ++i) {
    const double t_target = (i + 1.0) / levels;
    const double dose = resist.exposure_for_thickness(t_target);
    shots.push_back({Trapezoid::rect(Box{Coord(i * step_w), 0,
                                         Coord((i + 1) * step_w), height}),
                     dose});
  }

  const Raster exposure = simulate_exposure(shots, psf, {.pixel = 50});
  const Raster relief = develop(exposure, resist);

  Table t("8-level grayscale staircase (2um steps, gamma=1 resist)");
  t.columns({"step", "dose", "designed t", "achieved t", "error"});
  double worst = 0.0;
  for (int i = 0; i < levels; ++i) {
    const double designed = (i + 1.0) / levels;
    const Point center{Coord(i * step_w + step_w / 2), height / 2};
    const double achieved = profile_along(relief, center,
                                          center + Point{1, 0}, 2)[0];
    worst = std::max(worst, std::abs(achieved - designed));
    t.row(i + 1, fixed(shots[static_cast<std::size_t>(i)].dose, 3), fixed(designed, 3),
          fixed(achieved, 3), fixed(achieved - designed, 3));
  }
  t.print();
  std::cout << "worst level error: " << fixed(worst, 3)
            << " (backscatter from neighboring steps shifts levels; PEC-style"
               " dose tweaks would flatten this)\n";

  // Cross-section CSV for plotting the relief.
  CsvWriter csv(artifact_path("grayscale_profile.csv"));
  csv.header({"x_nm", "thickness"});
  const auto prof = profile_along(relief, Point{-1000, height / 2},
                                  Point{Coord(levels * step_w + 1000), height / 2},
                                  901);
  for (std::size_t i = 0; i < prof.size(); ++i) {
    const double x = -1000 + (levels * double(step_w) + 2000) * double(i) / (prof.size() - 1);
    csv.row(x, prof[i]);
  }
  std::cout << "wrote grayscale_profile.csv\n";
  return 0;
}
