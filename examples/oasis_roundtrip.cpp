// OASIS round trip + streamed data prep, end to end.
//
// The walkthrough docs/examples.md narrates:
//   1. build a hierarchical pattern (a macro arrayed under a top cell),
//   2. write it to OASIS,
//   3. re-read it through the streaming LayoutStream with a small
//      resident-cell window,
//   4. run a full streamed PEC job straight off the file
//      (run_data_prep(PrepOptions) with input_path set),
//   5. prove the streamed shots are bitwise-identical to flattening the
//      whole library in RAM first.
//
// Run from anywhere; files are written to the current directory (or
// $EBL_ARTIFACT_DIR when set).
#include <iostream>

#include "core/ebl.h"
#include "util/artifacts.h"
#include "util/table.h"

using namespace ebl;

int main() {
  // --- 1. A hierarchical test pattern. ---
  Library lib("OASDEMO");
  const LayerKey metal{1, 0};
  const CellId macro = lib.add_cell("MACRO");
  {
    Cell& c = lib.cell(macro);
    c.add_shape(metal, Box{0, 0, dbu(3.0), dbu(0.8)});
    c.add_shape(metal, Box{0, 0, dbu(0.8), dbu(3.0)});
    c.add_shape(metal, SimplePolygon{{{dbu(1.5), dbu(1.5)},
                                      {dbu(3.0), dbu(1.5)},
                                      {dbu(1.5), dbu(3.0)}}});
  }
  const CellId top = lib.add_cell("TOP");
  Reference array;
  array.child = macro;
  array.cols = 5;
  array.rows = 5;
  array.col_step = {dbu(5.0), 0};
  array.row_step = {0, dbu(5.0)};
  lib.cell(top).add_reference(array);

  // --- 2. Write OASIS (and GDSII, for the conversion demo). ---
  const std::string oas_path = artifact_path("oasis_roundtrip.oas");
  const std::string gds_path = artifact_path("oasis_roundtrip.gds");
  write_oas(lib, oas_path);
  write_gds(lib, gds_path);
  std::cout << "wrote " << oas_path << " and " << gds_path << "\n";

  // --- 3. Stream the OASIS file cell by cell. ---
  const auto stream = open_layout_stream(oas_path);
  StreamCell cell;
  std::cout << "streaming " << oas_path << " (dbu = "
            << stream->dbu_in_microns() << " um):\n";
  while (stream->next(cell)) {
    std::cout << "  cell " << cell.name << ": " << cell.shape_count
              << " shapes, " << cell.refs.size() << " refs\n";
  }

  // --- 4. A full streamed PEC job straight off the file. ---
  PrepOptions opt;
  opt.input_path = oas_path;
  opt.ingest.layer = metal;
  opt.ingest.window = 2;  // at most 2 parsed cells resident at any moment
  opt.fracture.max_shot_size = dbu(2.0);
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 6;
  const PrepResult streamed = run_data_prep(opt);

  // --- 5. The in-RAM reference path: same file, whole library. ---
  const Library loaded = read_layout(oas_path);
  PrepOptions ram_opt = opt;
  ram_opt.input_path.clear();
  const PrepResult in_ram =
      run_data_prep(loaded, *loaded.find_cell("TOP"), metal, ram_opt);

  const bool identical = streamed.shots == in_ram.shots;

  Table t("streamed OASIS prep vs in-RAM reference");
  t.columns({"metric", "value"});
  t.row("cells in file", streamed.ingest->cells);
  t.row("instances visited", streamed.ingest->placements);
  t.row("polygons streamed", streamed.ingest->polygons);
  t.row("peak resident cells", streamed.ingest->peak_resident);
  t.row("cell reloads", streamed.ingest->reloads);
  t.row("shots", streamed.shots.size());
  t.row("PEC error after", fixed(*streamed.pec_final_error, 3));
  t.row("bitwise identical", identical ? "yes" : "NO");
  t.print();

  return identical ? 0 : 1;
}
