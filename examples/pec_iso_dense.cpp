// Domain example: the iso-dense proximity problem and its correction.
//
// A dense 1:1 line/space grating next to an isolated line of the same width
// receives very different backscatter. This example prints the exposure
// profile across both before and after PEC, plus the printed CD at a fixed
// resist threshold — the numbers behind the classic proximity-effect
// figure.
//
// The simulate_exposure calls raster at 25 nm (alpha/2), so the 3 um
// backscatter kernel spans ~480 pixels: SimOptions::blur_backend defaults
// to kAuto, which routes such wide kernels through the FFT convolution
// engine (src/util/fft.h) — same result, far less time.
#include <iostream>

#include "util/artifacts.h"
#include "core/ebl.h"
#include "util/csv.h"
#include "util/table.h"

using namespace ebl;

int main() {
  const Coord w = 500;      // 0.5 µm lines
  const Coord pitch = 1000; // 1:1 duty
  const Coord len = 40000;  // 40 µm long

  PolygonSet pattern = line_space_array({0, 0}, w, pitch, len, 21);
  pattern.insert(Box{40000, 0, 40000 + w, len});  // isolated line 19 µm away

  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  const ShotList uncorrected = fracture(pattern).shots;

  PecOptions popt;
  popt.max_iterations = 8;
  popt.tolerance = 0.01;
  const PecResult pec = correct_proximity(uncorrected, psf, popt);

  // Profiles across the grating center and the isolated line.
  const Point a{-1500, len / 2};
  const Point b{42500, len / 2};
  const Raster before = simulate_exposure(uncorrected, psf, {.pixel = 25});
  const Raster after = simulate_exposure(pec.shots, psf, {.pixel = 25});

  const auto report = [&](const char* what, const Raster& map) {
    // Center of the middle dense line vs. center of the iso line.
    const double dense = profile_along(map, Point{10250, len / 2},
                                       Point{10251, len / 2}, 2)[0];
    const double iso = profile_along(map, Point{40250, len / 2},
                                     Point{40251, len / 2}, 2)[0];
    const double level = 0.42;  // fixed resist threshold
    // Window straddles exactly one grating line (line 10 spans 10000..10500;
    // neighbors end at 9500 and start at 11000).
    const auto cd_dense =
        measure_cd(map, level, Point{9750, len / 2}, Point{10750, len / 2}, 801);
    const auto cd_iso =
        measure_cd(map, level, Point{39500, len / 2}, Point{41500, len / 2}, 801);
    std::cout << what << ": dense-center E=" << fixed(dense, 3)
              << "  iso-center E=" << fixed(iso, 3)
              << "  CD dense=" << (cd_dense ? fixed(*cd_dense, 0) : "n/a")
              << "nm  CD iso=" << (cd_iso ? fixed(*cd_iso, 0) : "n/a")
              << "nm  bias=" << ((cd_dense && cd_iso) ? fixed(*cd_dense - *cd_iso, 0) : "n/a")
              << "nm\n";
  };

  std::cout << "0.5um lines, eta=0.7, beta=3um; threshold resist @0.42\n";
  report("uncorrected", before);
  report("corrected  ", after);

  std::cout << "\nPEC convergence (max exposure error per iteration):\n";
  for (std::size_t i = 0; i < pec.max_error_history.size(); ++i)
    std::cout << "  iter " << i << ": " << fixed(pec.max_error_history[i], 4) << '\n';

  // Dump the full profile as CSV for plotting.
  CsvWriter csv(artifact_path("pec_profile.csv"));
  csv.header({"x_nm", "exposure_uncorrected", "exposure_corrected"});
  const auto p0 = profile_along(before, a, b, 1761);
  const auto p1 = profile_along(after, a, b, 1761);
  for (std::size_t i = 0; i < p0.size(); ++i) {
    const double x = a.x + (double(b.x) - a.x) * double(i) / (p0.size() - 1);
    csv.row(x, p0[i], p1[i]);
  }
  std::cout << "\nwrote pec_profile.csv (" << p0.size() << " samples)\n";
  return 0;
}
