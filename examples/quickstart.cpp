// Quickstart: the complete data-prep flow in ~60 lines.
//
// Builds a small hierarchical layout, writes it to GDSII, reads it back,
// runs merge -> fracture -> PEC -> field partition, prints the statistics
// and write-time estimates, and emits the machine shot records (EBF).
//
// Worker threads: the PEC stage parallelizes via PrepOptions::threads
// (0 = auto: the EBL_THREADS environment variable, then hardware
// concurrency). Results are bit-identical for any thread count.
//
// Run from anywhere; files are written to the current directory.
#include <iostream>

#include "util/artifacts.h"
#include "core/ebl.h"
#include "util/table.h"

using namespace ebl;

int main() {
  // --- 1. Build a layout: a macro cell arrayed 4x4 under a top cell. ---
  Library lib("QUICKSTART");
  const CellId macro = lib.add_cell("MACRO");
  const LayerKey metal{1, 0};
  {
    Cell& c = lib.cell(macro);
    c.add_shape(metal, Box{0, 0, dbu(4.0), dbu(1.0)});               // bar
    c.add_shape(metal, Box{0, 0, dbu(1.0), dbu(4.0)});               // bar
    c.add_shape(metal, SimplePolygon{{{dbu(2.0), dbu(2.0)},          // 45° wedge
                                      {dbu(4.0), dbu(2.0)},
                                      {dbu(2.0), dbu(4.0)}}});
  }
  const CellId top = lib.add_cell("TOP");
  Reference array;
  array.child = macro;
  array.cols = 4;
  array.rows = 4;
  array.col_step = {dbu(6.0), 0};
  array.row_step = {0, dbu(6.0)};
  lib.cell(top).add_reference(array);

  // --- 2. GDSII round trip (the CAD interchange step). ---
  write_gds(lib, artifact_path("quickstart.gds"));
  const Library loaded = read_gds(artifact_path("quickstart.gds"));
  std::cout << "wrote and re-read quickstart.gds: " << loaded.cell_count()
            << " cells\n";

  // --- 3. Data prep: fracture + PEC + fields + timing. ---
  PrepOptions opt;
  opt.fracture.max_shot_size = dbu(2.0);            // 2 µm VSB aperture
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);  // alpha/beta/eta
  opt.pec.max_iterations = 6;
  opt.field_size = dbu(15.0);

  const PrepResult r =
      run_data_prep(loaded, *loaded.find_cell("TOP"), metal, opt);

  Table t("quickstart data-prep summary");
  t.columns({"metric", "value"});
  t.row("figures", r.fracture.figures);
  t.row("shots", r.fracture.shots);
  t.row("rect shots", r.fracture.rectangles);
  t.row("exposed area (um^2)", fixed(r.fracture.area / 1e6, 2));
  t.row("fields", r.fields.size());
  t.row("boundary straddlers", r.boundary_straddlers);
  t.row("PEC error before", fixed(*r.pec_uncorrected_error, 3));
  t.row("PEC error after", fixed(*r.pec_final_error, 3));
  for (const MachineEstimate& e : r.estimates)
    t.row("write time " + e.machine + " (s)", fixed(e.time.total(), 3));
  t.print();

  // --- 4. Machine shot records. ---
  EbfFile ebf;
  ebf.shots = r.shots;
  write_ebf(ebf, artifact_path("quickstart.ebf"));
  std::cout << "wrote quickstart.ebf with " << ebf.shots.size() << " shots\n";
  return 0;
}
