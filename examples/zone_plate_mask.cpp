// Domain example: preparing a Fresnel zone plate mask for e-beam writing.
//
// Zone plates are the classic curved e-beam workload: concentric rings whose
// width shrinks toward the rim, stressing curve flattening, all-angle
// fracturing and dose correction. This example generates a plate
// (f = 150 µm at 532 nm — visible-light microfocus), fractures it with a
// VSB aperture limit, corrects proximity, and reports figure statistics and
// write times per machine.
#include <iostream>

#include "util/artifacts.h"
#include "core/ebl.h"
#include "util/table.h"

using namespace ebl;

int main() {
  const double focal = dbu(150.0);   // 150 µm in dbu
  const double lambda = 0.532 * 1000;  // 532 nm in dbu
  const int zones = 24;

  const PolygonSet plate = zone_plate({0, 0}, focal, lambda, zones, 2.0);
  std::cout << "zone plate: " << zones << " opaque zones, "
            << plate.vertex_count() << " vertices, outer radius "
            << microns(plate.bbox().hi.x) << " um\n";

  // Outermost zone width decides the sliver threshold to watch.
  PrepOptions opt;
  opt.fracture.max_shot_size = dbu(2.0);
  opt.fracture.sliver_threshold = 50;  // 50 nm
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 5;
  opt.pec.tolerance = 0.02;

  const PrepResult r = run_data_prep(plate, opt);

  Table t("zone plate data prep (f=150um @ 532nm, 24 zones)");
  t.columns({"metric", "value"});
  t.row("pattern area (um^2)", fixed(plate.area() / 1e6, 1));
  t.row("figures", r.fracture.figures);
  t.row("shots (2um aperture)", r.fracture.shots);
  t.row("triangle shots", r.fracture.triangles);
  t.row("slivers (<50nm)", r.fracture.slivers);
  t.row("PEC error before", fixed(*r.pec_uncorrected_error, 3));
  t.row("PEC error after", fixed(*r.pec_final_error, 3));
  for (const MachineEstimate& e : r.estimates)
    t.row("write time " + e.machine + " (s)", fixed(e.time.total(), 3));
  t.print();

  // Dose histogram: inner zones sit in a denser environment and need less
  // dose than the isolated rim zones.
  Table h("corrected dose by radius");
  h.columns({"radius band (um)", "mean dose"});
  const int bands = 6;
  const double r_max = plate.bbox().hi.x;
  std::vector<double> sum(bands, 0.0);
  std::vector<int> cnt(bands, 0);
  for (const Shot& s : r.shots) {
    const Box bb = s.shape.bbox();
    const double rr = std::hypot(double(bb.center().x), double(bb.center().y));
    const int b = std::min(bands - 1, static_cast<int>(rr / r_max * bands));
    sum[b] += s.dose;
    cnt[b] += 1;
  }
  for (int b = 0; b < bands; ++b) {
    if (!cnt[b]) continue;
    h.row(fixed(microns(static_cast<Coord64>(b * r_max / bands)), 1) + " - " +
              fixed(microns(static_cast<Coord64>((b + 1) * r_max / bands)), 1),
          fixed(sum[b] / cnt[b], 3));
  }
  h.print();

  EbfFile ebf;
  ebf.shots = r.shots;
  write_ebf(ebf, artifact_path("zone_plate.ebf"));
  std::cout << "wrote zone_plate.ebf (" << ebf.shots.size() << " shots)\n";
  return 0;
}
