#!/usr/bin/env python3
"""Bench-trajectory guard: compare a fresh BENCH_*.json against the committed
baseline and fail on a large throughput regression.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.30]
                              [--absolute]

Design (what makes this noise-tolerant enough for CI):

  * Cases are matched across the two files by their identity keys (shots,
    shard_size_dbu, pixels_per_sigma, ...), found anywhere in the JSON tree.
    A quick run produces smaller cases than the committed full-run baseline,
    so typically only a subset matches — unmatched cases are reported and
    skipped, never failed.
  * By default only *dimensionless ratio* metrics are compared (any metric
    whose name contains "speedup" or "improvement"). Those are measured
    same-host, same-binary within one bench run, so they transfer between
    the committed baseline's machine and the CI runner; absolute shots/sec
    or wall-clock numbers do not, and comparing them across hosts would be
    pure noise. --absolute additionally compares *_per_sec (higher is
    better) metrics — useful locally on the machine the baseline was
    recorded on.
  * Quality metrics are machine-independent, so they are always compared
    absolutely: EPE percentiles (epe_*_p50/p99/max from BENCH_scenarios.json,
    lower is better) fail when the fresh value exceeds the baseline by more
    than --tolerance *and* by more than a 2 dbu absolute floor (sub-pixel
    wobble on near-zero values is not a regression).
  * A throughput metric fails only when it drops by more than --tolerance
    (default 30%) relative to the baseline. Improvements and small wobbles
    pass.

Exit status: 0 = no regression (including "nothing comparable"), 1 = at
least one metric regressed, 2 = bad invocation / unreadable input.

CI wires this after the bench smoke steps and skips it when the PR carries
the `skip-bench-guard` label (see .github/workflows/ci.yml).
"""

import argparse
import json
import sys

# Keys that *identify* a case rather than measure it. Two dicts with equal
# values for every identity key they share (and at least one such key) are
# the same case in both files.
IDENTITY_KEYS = (
    "scenario",
    "shots",
    "iterations",
    "field_size_dbu",
    "shard_size_dbu",
    "pixels_per_sigma",
    "map_pixel_dbu",
    "extent_dbu",
    "distributed_workers",
    "threads",
)


def derive_blur_fractions(node, metrics):
    """Synthesizes blur_ms as a fraction of the case's end-to-end wall clock
    from the nested refresh-perf blocks. The fraction is dimensionless within
    one run, so it transfers across hosts like the speedup ratios — it guards
    the long-range blur's share of the solve, which the FFT/windowed-blur
    work exists to shrink."""
    for perf_key, total_key, name in (
        ("refresh_perf", "total_ms", "blur_fraction_of_total"),
        ("sharded_refresh_perf", "sharded_total_ms",
         "sharded_blur_fraction_of_total"),
        ("global_refresh_perf", "global_total_ms",
         "global_blur_fraction_of_total"),
    ):
        perf = node.get(perf_key)
        total = node.get(total_key)
        if (isinstance(perf, dict) and isinstance(total, (int, float))
                and not isinstance(total, bool) and total > 0):
            blur = perf.get("blur_ms")
            if isinstance(blur, (int, float)) and not isinstance(blur, bool):
                metrics[name] = float(blur) / float(total)


def collect_cases(node, path=""):
    """Yields (section_path, identity_tuple, metrics_dict) for every dict in
    the tree that carries at least one identity key."""
    if isinstance(node, dict):
        identity = tuple(
            sorted((k, node[k]) for k in IDENTITY_KEYS if k in node and
                   not isinstance(node[k], (dict, list)))
        )
        if identity:
            metrics = {
                k: v
                for k, v in node.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
                and k not in IDENTITY_KEYS
            }
            derive_blur_fractions(node, metrics)
            yield (path, identity, metrics)
        for key, value in node.items():
            yield from collect_cases(value, f"{path}/{key}")
    elif isinstance(node, list):
        for item in node:
            yield from collect_cases(item, path)


# Quality never shrinks across hosts: any EPE percentile is compared on
# every run. Values below this floor are within raster interpolation noise.
EPE_ABS_FLOOR_DBU = 2.0


def comparable_metrics(metrics, absolute):
    """Higher-is-better metrics worth guarding. Ratio metrics (name contains
    'speedup' or 'improvement') always; absolute throughput on request."""
    names = [k for k in metrics if "speedup" in k or "improvement" in k]
    if absolute:
        names += [k for k in metrics if k.endswith("_per_sec")]
    return names


# Blur-share wobble below this many percentage points of the total wall
# clock is scheduler noise, not a regression (mirrors EPE_ABS_FLOOR_DBU).
BLUR_FRACTION_ABS_FLOOR = 0.05


def blur_fraction_metrics(metrics):
    """Lower-is-better blur-share metrics synthesized by
    derive_blur_fractions."""
    return [k for k in metrics if k.endswith("blur_fraction_of_total")]


def quality_metrics(metrics):
    """Lower-is-better printed-quality metrics (EPE percentiles in dbu).
    The *_improvement ratios are handled above as higher-is-better."""
    return [
        k for k in metrics
        if k.startswith("epe_") and "improvement" not in k
        and ("_p50" in k or "_p99" in k or "_max" in k)
    ]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="maximum tolerated relative drop (default 0.30)")
    ap.add_argument("--absolute", action="store_true",
                    help="also compare *_per_sec metrics (same-host runs only)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot load input: {e}", file=sys.stderr)
        return 2

    base_cases = {(p, i): m for p, i, m in collect_cases(baseline)}
    fresh_cases = list(collect_cases(fresh))
    if not fresh_cases:
        print(f"check_bench_regression: no cases found in {args.fresh}",
              file=sys.stderr)
        return 2

    compared = 0
    regressions = []
    for path, identity, metrics in fresh_cases:
        base = base_cases.get((path, identity))
        ident = ", ".join(f"{k}={v}" for k, v in identity)
        if base is None:
            print(f"  [skip] {path} ({ident}): no matching baseline case")
            continue
        for name in comparable_metrics(metrics, args.absolute):
            if name not in base or not isinstance(base[name], (int, float)):
                continue
            old, new = float(base[name]), float(metrics[name])
            if old <= 0:
                continue  # placeholder (e.g. skipped distributed section)
            compared += 1
            drop = 1.0 - new / old
            status = "FAIL" if drop > args.tolerance else "ok"
            print(f"  [{status}] {path} ({ident}) {name}: "
                  f"{old:.3g} -> {new:.3g} ({-drop:+.1%})")
            if drop > args.tolerance:
                regressions.append((path, ident, name, old, new))
        for name in blur_fraction_metrics(metrics):
            if name not in base or not isinstance(base[name], (int, float)):
                continue
            old, new = float(base[name]), float(metrics[name])
            compared += 1
            grew = (new - old) / old if old > 0 else 0.0
            worse = new > old + BLUR_FRACTION_ABS_FLOOR and (
                old <= 0 or grew > args.tolerance)
            status = "FAIL" if worse else "ok"
            print(f"  [{status}] {path} ({ident}) {name}: "
                  f"{old:.1%} -> {new:.1%} of total")
            if worse:
                regressions.append((path, ident, name, old, new))
        for name in quality_metrics(metrics):
            if name not in base or not isinstance(base[name], (int, float)):
                continue
            old, new = float(base[name]), float(metrics[name])
            compared += 1
            grew = (new - old) / old if old > 0 else 0.0
            worse = new > old + EPE_ABS_FLOOR_DBU and (
                old <= 0 or grew > args.tolerance)
            status = "FAIL" if worse else "ok"
            print(f"  [{status}] {path} ({ident}) {name}: "
                  f"{old:.3g} -> {new:.3g} dbu")
            if worse:
                regressions.append((path, ident, name, old, new))

    print(f"check_bench_regression: {compared} metric(s) compared, "
          f"{len(regressions)} regression(s) beyond "
          f"{args.tolerance:.0%} ({args.baseline} vs {args.fresh})")
    if regressions:
        print("Throughput or printed quality regressed. If this change "
              "intentionally trades speed (or the runner was just noisy), "
              "re-run or apply the skip-bench-guard label.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
