#!/usr/bin/env bash
# Fails when README.md or docs/ reference repo files that do not exist.
#
# Two kinds of references are checked, from the repository root:
#   - markdown links with a relative target:          [text](docs/foo.md)
#   - backticked repo paths under a known top-level:  `src/pec/exposure.h`
# External links (scheme://...) and anchors are ignored. Backticked paths
# may carry a trailing ":line" or be a directory.
set -u
cd "$(dirname "$0")/.."

fail=0

# check <doc> <ref> [relative-to-doc]
# Markdown link targets resolve relative to the containing document;
# backticked repo paths are always relative to the repository root.
check() {
  local doc="$1" ref="$2" rel="${3:-}"
  # Strip anchors and trailing :line suffixes.
  local path="${ref%%#*}"
  path="${path%%:*}"
  [ -z "$path" ] && return
  if [ -n "$rel" ] && [ "${path#/}" = "$path" ]; then
    path="$(dirname "$doc")/$path"
  fi
  if [ ! -e "$path" ]; then
    echo "BROKEN: $doc -> $ref"
    fail=1
  fi
}

docs=$(ls README.md 2>/dev/null; find docs -name '*.md' 2>/dev/null)
if [ -z "$docs" ]; then
  echo "no documentation files found"
  exit 1
fi

for doc in $docs; do
  # Markdown links: capture the (target), keep only relative file targets.
  while IFS= read -r ref; do
    case "$ref" in
      *://*|mailto:*|\#*) continue ;;
    esac
    check "$doc" "$ref" doc-relative
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')

  # Backticked repo paths: `src/...`, `docs/...`, etc. (must contain a /).
  while IFS= read -r ref; do
    check "$doc" "$ref"
  done < <(grep -oE '`(src|docs|examples|tests|bench|scripts|tools|\.github)/[^`]+`' "$doc" \
           | tr -d '`')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK"
