// Umbrella header: the complete public API of the ebl toolkit.
//
// Layering (each header usable on its own):
//   geom     — integer geometry kernel: points, polygons, booleans,
//              trapezoids, sizing, curves, rasterization
//   layout   — hierarchical cell database + GDSII/OASIS I/O + streaming
//              cell-at-a-time ingestion
//   fracture — polygon -> machine-shot decomposition + EBF records
//   pec      — point-spread functions, exposure evaluation, dose correction
//   sim      — resist models, exposure simulation, contours, CD metrics,
//              EPE scoring, and the machine-realistic scenario matrix
//   machine  — writer timing models, field partitioning, distortion
//   core     — workload generators and the end-to-end data-prep pipeline
#pragma once

#include "core/hierarchy.h"
#include "core/job.h"
#include "core/patterns.h"
#include "fracture/ebf.h"
#include "fracture/fracture.h"
#include "geom/boolean.h"
#include "geom/curves.h"
#include "geom/polygon_set.h"
#include "geom/sizing.h"
#include "layout/gdsii.h"
#include "layout/library.h"
#include "layout/oasis.h"
#include "layout/stream.h"
#include "machine/distortion.h"
#include "machine/field.h"
#include "machine/ordering.h"
#include "machine/writer.h"
#include "pec/correction.h"
#include "pec/exposure.h"
#include "pec/psf.h"
#include "pec/sharded.h"
#include "sim/epe.h"
#include "sim/exposure_sim.h"
#include "sim/resist.h"
#include "sim/scenarios.h"
