#include "core/hierarchy.h"

#include <algorithm>
#include <map>

#include "util/contracts.h"

namespace ebl {
namespace {

// Orientation classes: does the transform swap x and y?
bool swaps_axes(const Trans& t) { return t.rot90() % 2 == 1; }

}  // namespace

Trapezoid transform_trapezoid_noswap(const Trapezoid& t, const Trans& trans) {
  expects(!swaps_axes(trans), "transform_trapezoid_noswap: axis-swapping transform");
  // Map the four corner points; the result is again a horizontal trapezoid,
  // possibly with top/bottom or left/right exchanged.
  const Point bl = trans(Point{t.xl0, t.y0});
  const Point br = trans(Point{t.xr0, t.y0});
  const Point tl = trans(Point{t.xl1, t.y1});
  const Point tr = trans(Point{t.xr1, t.y1});
  // bl/br share one y, tl/tr the other.
  Coord by = bl.y;
  Coord ty = tl.y;
  Coord bxl = std::min(bl.x, br.x);
  Coord bxr = std::max(bl.x, br.x);
  Coord txl = std::min(tl.x, tr.x);
  Coord txr = std::max(tl.x, tr.x);
  if (by > ty) {
    std::swap(by, ty);
    std::swap(bxl, txl);
    std::swap(bxr, txr);
  }
  return Trapezoid{by, ty, bxl, bxr, txl, txr};
}

HierPrepResult run_hier_prep(const Library& lib, CellId top, LayerKey layer,
                             const FractureOptions& options) {
  lib.validate();
  HierPrepResult result;

  // Cache: (cell id, swapped?) -> fractured local shots.
  std::map<std::pair<std::uint32_t, bool>, ShotList> cache;

  const auto local_shots = [&](CellId id, bool swapped) -> const ShotList& {
    const auto key = std::make_pair(id.value, swapped);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;

    PolygonSet local;
    for (const Polygon& p : lib.cell(id).shapes_on(layer)) {
      // For the swapped class, pre-rotate by 90° so instance transforms
      // reduce to the non-swapping group.
      local.insert(swapped ? p.transformed(Trans{Point{0, 0}, Orient::r90}) : p);
    }
    ShotList shots;
    if (!local.empty()) {
      shots = fracture(local, options).shots;
      ++result.stats.cells_fractured;
    }
    return cache.emplace(key, std::move(shots)).first->second;
  };

  lib.each_instance(top, [&](CellId id, const CTrans& ctrans) {
    ++result.stats.instances;
    if (lib.cell(id).shapes_on(layer).empty()) return;

    if (!ctrans.is_orthogonal()) {
      // Fallback: flatten this instance alone.
      ++result.stats.fallback_instances;
      PolygonSet inst;
      for (const Polygon& p : lib.cell(id).shapes_on(layer))
        inst.insert(p.transformed(ctrans));
      for (Shot& s : fracture(inst, options).shots)
        result.shots.push_back(std::move(s));
      return;
    }

    const Trans trans = ctrans.to_trans();
    const bool swapped = swaps_axes(trans);
    // Residual transform applied to the cached (possibly pre-rotated) shots:
    // trans = residual * r90^(swapped), so residual = trans * r90^-1.
    const Trans residual =
        swapped ? trans * Trans{Point{0, 0}, Orient::r270} : trans;
    ensures(residual.rot90() % 2 == 0, "hier prep: residual must not swap axes");

    for (const Shot& s : local_shots(id, swapped)) {
      result.shots.push_back(
          Shot{transform_trapezoid_noswap(s.shape, residual), s.dose});
    }
  });

  result.stats.shots = result.shots.size();
  result.stats.area = shot_area(result.shots);
  return result;
}

}  // namespace ebl
