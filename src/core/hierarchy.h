// Hierarchical data preparation.
//
// Flattening an arrayed layout multiplies the fracture work by the instance
// count. The 1979-era answer (and still BEAMER's) is to fracture each cell
// ONCE and replicate the resulting shots under the instance transforms.
// This module implements that cell-cached prep for orthogonal instance
// transforms (the overwhelmingly common case); instances with arbitrary
// rotation or magnification fall back to per-instance flattening.
//
// Limitation (documented): per-shot PEC doses depend on the *global*
// neighborhood, so hierarchical prep emits unit doses; run
// correct_proximity() on the flat result afterwards when PEC is needed.
#pragma once

#include "fracture/fracture.h"
#include "layout/library.h"

namespace ebl {

struct HierPrepStats {
  std::size_t cells_fractured = 0;   ///< distinct (cell, orientation-class) fractures
  std::size_t instances = 0;         ///< expanded instances visited
  std::size_t fallback_instances = 0;///< non-orthogonal instances re-fractured
  std::size_t shots = 0;
  double area = 0.0;                 ///< dbu²
};

struct HierPrepResult {
  ShotList shots;
  HierPrepStats stats;
};

/// Fractures @p layer under @p top cell-by-cell with per-cell caching and
/// instances the shots. Geometrically equivalent to
/// fracture(lib.flatten(top, layer)) up to cell-boundary merging: shapes
/// that ABUT ACROSS cell boundaries are not merged (each cell fractures its
/// own geometry), which is the standard hierarchical-prep trade-off.
HierPrepResult run_hier_prep(const Library& lib, CellId top, LayerKey layer,
                             const FractureOptions& options = {});

/// Transforms a trapezoid by an orthogonal transform whose orientation does
/// not swap the x/y axes (r0, r180, m0, m180). Exposed for testing.
Trapezoid transform_trapezoid_noswap(const Trapezoid& t, const Trans& trans);

}  // namespace ebl
