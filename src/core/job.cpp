#include "core/job.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "pec/exposure.h"
#include "util/contracts.h"

namespace ebl {

const WriteTime& PrepResult::time_for(const std::string& machine) const {
  for (const MachineEstimate& e : estimates) {
    if (e.machine == machine) return e.time;
  }
  throw ContractViolation("no estimate for machine " + machine);
}

namespace {

/// Shared stage driver: @p front is the geometry-producing first stage
/// ("fracture" for in-RAM input, "ingest" for streamed file input); the
/// remaining stages are identical. @p epe_target is the flattened geometry
/// the optional epe stage scores against — for streamed jobs the front
/// stage fills it, which is safe because stages run in order.
PrepResult run_pipeline(const PrepOptions& options, const char* front_name,
                        const std::function<void(PrepResult&)>& front,
                        const PolygonSet& epe_target) {
  PrepResult result;

  // Thread precedence: an explicit per-stage knob wins, then the
  // pipeline-wide PrepOptions::threads, then EBL_THREADS / hardware
  // concurrency (the 0 = auto path inside resolve_threads).
  PecOptions pec_opt = options.pec;
  if (pec_opt.exposure.threads == 0) pec_opt.exposure.threads = options.threads;

  // The pipeline is an explicit stage list: each stage is enabled by the
  // options it consumes and its wall-clock lands in stage_times, so callers
  // see where a prep job spends its time without instrumenting anything.
  struct Stage {
    const char* name;
    bool enabled;
    std::function<void()> run;
  };
  const Stage stages[] = {
      {front_name, true, [&] { front(result); }},
      // Uncorrected-error measurement. Needs a whole-pattern evaluator, so
      // it only runs for the global solve; sharded jobs exist precisely to
      // avoid that O(pattern) footprint.
      {"pec_baseline", options.pec_psf.has_value() && options.pec.shard_size == 0,
       [&] {
         ExposureEvaluator eval(result.shots, *options.pec_psf, pec_opt.exposure);
         double uncorrected = 0.0;
         for (double e : eval.exposures_at_centroids())
           uncorrected = std::max(uncorrected, std::abs(e / pec_opt.target - 1.0));
         result.pec_uncorrected_error = uncorrected;
       }},
      {"pec", options.pec_psf.has_value(),
       [&] {
         PecResult pec = correct_proximity(result.shots, *options.pec_psf, pec_opt);
         result.shots = std::move(pec.shots);
         result.pec_final_error = pec.final_max_error;
         result.pec_iterations = pec.iterations;
         result.pec_shards = pec.shards;
         result.pec_workers = pec.workers;
         result.pec_worker_restarts = pec.worker_restarts;
         result.pec_reassigned_jobs = pec.reassigned_jobs;
         result.pec_degraded_to_inprocess = pec.degraded_to_inprocess;
         // Sharded solves report per-round wall clock; surface each round
         // (and the final measurement pass, when one ran) as its own stage
         // so the halo-exchange cost is visible in profiles. These land
         // before the enclosing "pec" stage's own entry, in execution order.
         for (std::size_t r = 0; r < pec.round_ms.size(); ++r) {
           result.stage_times.push_back(
               {"pec_round_" + std::to_string(r + 1), pec.round_ms[r]});
         }
         if (pec.measure_ms >= 0.0) {
           result.stage_times.push_back({"pec_measure", pec.measure_ms});
         }
       }},
      {"field_partition", options.field_size > 0,
       [&] {
         FieldPartition part = partition_fields_counted(
             result.shots, options.field_size, options.threads);
         result.boundary_straddlers = part.straddlers;
         result.fields = std::move(part.fields);
         // Field clipping may split shots; the flat shot list follows the
         // fields so downstream consumers see exactly what the machine will
         // flash.
         ShotList flat;
         for (const FieldJob& f : result.fields)
           flat.insert(flat.end(), f.shots.begin(), f.shots.end());
         result.shots = std::move(flat);
       }},
      {"write_time", true,
       [&] {
         const WriteJob job = make_write_job(result.shots);
         result.estimates.push_back(
             {"raster", RasterScanWriter(options.raster).write_time(job)});
         result.estimates.push_back(
             {"vector", VectorScanWriter(options.vector_scan).write_time(job)});
         result.estimates.push_back({"vsb", VsbWriter(options.vsb).write_time(job)});
       }},
      // Closed-loop verification: score where the final doses actually put
      // the printed edges, against the geometry the job started from.
      {"epe", options.epe.has_value() && options.pec_psf.has_value(),
       [&] {
         EpeOptions score = options.epe->score;
         if (score.sim.threads == 0) score.sim.threads = options.threads;
         result.epe = measure_epe(result.shots, *options.pec_psf, epe_target,
                                  options.epe->print_level, score);
       }},
  };

  for (const Stage& stage : stages) {
    if (!stage.enabled) continue;
    const auto t0 = std::chrono::steady_clock::now();
    stage.run();
    result.stage_times.push_back(
        {stage.name, std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count()});
  }
  return result;
}

}  // namespace

PrepResult run_data_prep(const PolygonSet& geometry, const PrepOptions& options) {
  expects(!geometry.empty(), "run_data_prep: empty geometry");
  return run_pipeline(
      options, "fracture",
      [&](PrepResult& result) {
        FractureResult frac = fracture(geometry, options.fracture);
        result.fracture = frac.stats;
        result.shots = std::move(frac.shots);
      },
      geometry);
}

PrepResult run_data_prep(const Library& lib, CellId top, LayerKey layer,
                         const PrepOptions& options) {
  lib.validate();
  return run_data_prep(lib.flatten(top, layer), options);
}

PrepResult run_data_prep(const PrepOptions& options) {
  expects(!options.input_path.empty(), "run_data_prep: input_path not set");
  const auto stream = open_layout_stream(options.input_path);
  // The epe stage needs the flattened target geometry; collect it during
  // ingest only when that stage will actually run, preserving the O(window)
  // footprint otherwise.
  PolygonSet collected;
  PolygonSet* collect =
      options.epe.has_value() && options.pec_psf.has_value() ? &collected : nullptr;
  return run_pipeline(
      options, "ingest",
      [&, collect](PrepResult& result) {
        StreamFractureResult r =
            stream_fracture(*stream, options.ingest, options.fracture, collect);
        if (r.ingest.polygons == 0)
          throw DataError("run_data_prep: no geometry on the requested layer in " +
                          options.input_path);
        result.fracture = r.fracture.stats;
        result.shots = std::move(r.fracture.shots);
        result.ingest = r.ingest;
      },
      collected);
}

}  // namespace ebl
