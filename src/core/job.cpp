#include "core/job.h"

#include <algorithm>

#include "pec/exposure.h"
#include "util/contracts.h"

namespace ebl {

const WriteTime& PrepResult::time_for(const std::string& machine) const {
  for (const MachineEstimate& e : estimates) {
    if (e.machine == machine) return e.time;
  }
  throw ContractViolation("no estimate for machine " + machine);
}

PrepResult run_data_prep(const PolygonSet& geometry, const PrepOptions& options) {
  expects(!geometry.empty(), "run_data_prep: empty geometry");

  PrepResult result;

  // 1. Fracture the merged region into machine figures.
  FractureResult frac = fracture(geometry, options.fracture);
  result.fracture = frac.stats;
  result.shots = std::move(frac.shots);

  // 2. Proximity-effect correction (optional).
  if (options.pec_psf) {
    // Thread precedence: an explicit per-stage knob wins, then the
    // pipeline-wide PrepOptions::threads, then EBL_THREADS / hardware
    // concurrency (the 0 = auto path inside resolve_threads).
    PecOptions pec_opt = options.pec;
    if (pec_opt.exposure.threads == 0) pec_opt.exposure.threads = options.threads;
    {
      ExposureEvaluator eval(result.shots, *options.pec_psf, pec_opt.exposure);
      double uncorrected = 0.0;
      for (double e : eval.exposures_at_centroids())
        uncorrected = std::max(uncorrected, std::abs(e / pec_opt.target - 1.0));
      result.pec_uncorrected_error = uncorrected;
    }
    PecResult pec = correct_proximity(result.shots, *options.pec_psf, pec_opt);
    result.shots = std::move(pec.shots);
    result.pec_final_error = pec.final_max_error;
    result.pec_iterations = pec.iterations;
  }

  // 3. Field partitioning (optional).
  if (options.field_size > 0) {
    result.boundary_straddlers = count_boundary_straddlers(result.shots, options.field_size);
    result.fields = partition_fields(result.shots, options.field_size);
    // Field clipping may split shots; the flat shot list follows the fields
    // so downstream consumers see exactly what the machine will flash.
    ShotList flat;
    for (const FieldJob& f : result.fields)
      flat.insert(flat.end(), f.shots.begin(), f.shots.end());
    result.shots = std::move(flat);
  }

  // 4. Write-time estimates on all machine models.
  const WriteJob job = make_write_job(result.shots);
  result.estimates.push_back({"raster", RasterScanWriter(options.raster).write_time(job)});
  result.estimates.push_back(
      {"vector", VectorScanWriter(options.vector_scan).write_time(job)});
  result.estimates.push_back({"vsb", VsbWriter(options.vsb).write_time(job)});
  return result;
}

PrepResult run_data_prep(const Library& lib, CellId top, LayerKey layer,
                         const PrepOptions& options) {
  lib.validate();
  return run_data_prep(lib.flatten(top, layer), options);
}

}  // namespace ebl
