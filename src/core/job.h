// The end-to-end data-preparation pipeline:
//   layout geometry -> merge/booleans -> fracture -> (PEC) -> field
//   partition -> shot records + write-time estimates.
// This is the top-level API a downstream user drives; each stage is also
// available individually through the per-module headers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fracture/fracture.h"
#include "layout/library.h"
#include "layout/stream.h"
#include "machine/field.h"
#include "machine/writer.h"
#include "pec/correction.h"
#include "sim/epe.h"

namespace ebl {

/// Optional printed-result verification: simulate the final shot list with
/// the PEC PSF and score edge-placement error against the input geometry
/// (see sim/epe.h). This is the closed-loop quality stat — what the doses
/// actually print — as opposed to the dose-space pec_final_error.
struct PrepEpeOptions {
  /// Exposure level treated as the print threshold (use
  /// ResistModel::print_threshold() for a calibrated resist).
  double print_level = 0.5;

  /// Probe/simulation knobs. score.sim.threads == 0 inherits
  /// PrepOptions::threads.
  EpeOptions score;
};

struct PrepOptions {
  FractureOptions fracture;

  /// Worker threads for every parallel stage the pipeline runs (today: the
  /// PEC exposure evaluator). Follows the codebase-wide precedence: a
  /// per-stage knob set explicitly (pec.exposure.threads != 0) wins over
  /// this value; 0 here defers to the EBL_THREADS environment variable and
  /// then to hardware concurrency. Results are identical for any value.
  int threads = 0;

  /// Proximity correction: when set, the iterative corrector runs with this
  /// PSF after fracturing.
  std::optional<Psf> pec_psf;
  PecOptions pec;

  /// When > 0, shots are partitioned into exposure fields of this size.
  Coord field_size = 0;

  /// When set (and pec_psf is set), the pipeline ends with an "epe" stage
  /// scoring the final shots' printed edges against the input geometry;
  /// the result lands in PrepResult::epe.
  std::optional<PrepEpeOptions> epe;

  /// Machine models to estimate write time for (all three by default).
  RasterScanParams raster;
  VectorScanParams vector_scan;
  VsbParams vsb;

  /// Streamed file input, used by run_data_prep(const PrepOptions&): the
  /// layout at this path (.gds / .gdsii / .oas / .oasis, dispatched by
  /// extension) is ingested cell by cell and fractured without ever
  /// materializing the library in RAM. `ingest` picks the top cell, the
  /// layer, and the resident-cell window (see layout/stream.h).
  std::string input_path;
  IngestOptions ingest;
};

struct MachineEstimate {
  std::string machine;
  WriteTime time;
};

/// Wall-clock of one executed pipeline stage (see PrepResult::stage_times).
struct StageTime {
  std::string name;
  double ms = 0.0;
};

struct PrepResult {
  ShotList shots;                   ///< final dosed shots (all fields)
  FractureStats fracture;
  std::vector<FieldJob> fields;     ///< empty when field_size == 0
  std::size_t boundary_straddlers = 0;

  /// PEC summary (present when pec_psf was set). pec_uncorrected_error is
  /// measured by the optional pec_baseline stage, which needs a whole-
  /// pattern evaluator and therefore only runs for the global solve
  /// (pec.shard_size == 0) — sharded jobs skip it, that O(pattern) footprint
  /// being exactly what sharding avoids.
  std::optional<double> pec_final_error;
  std::optional<double> pec_uncorrected_error;
  int pec_iterations = 0;
  int pec_shards = 0;   ///< shard count of the sharded solve (0 = global)
  int pec_workers = 0;  ///< worker processes of the distributed solve
                        ///< (pec.worker_count > 0); 0 = in-process

  /// Distributed-solve fault accounting (all zero/false on a fault-free or
  /// in-process run): workers respawned, shard jobs re-enqueued after a
  /// worker failure, and whether restart exhaustion forced part of the solve
  /// back in-process. Recovery replays identical jobs, so nonzero values
  /// flag operational trouble — never a difference in the doses.
  int pec_worker_restarts = 0;
  int pec_reassigned_jobs = 0;
  bool pec_degraded_to_inprocess = false;

  std::vector<MachineEstimate> estimates;

  /// Printed edge-placement error of the final shot list (present when
  /// PrepOptions::epe and pec_psf were both set).
  std::optional<EpeStats> epe;

  /// Streaming-ingestion counters (present for file-input jobs run through
  /// run_data_prep(const PrepOptions&)).
  std::optional<IngestStats> ingest;

  /// Wall-clock per executed stage, in execution order. Stage names:
  /// "fracture", "pec_baseline" (global PEC only), "pec", "field_partition",
  /// "write_time", "epe" (when PrepOptions::epe is set); disabled stages are
  /// absent. File-input jobs replace "fracture" with "ingest", which covers
  /// the fused stream-and-fracture front end. Sharded PEC jobs additionally
  /// record one "pec_round_N" entry per halo-exchange round plus
  /// "pec_measure" when a final measurement pass ran — sub-stages of "pec",
  /// listed just before it — so the exchange cost is visible in profiles.
  std::vector<StageTime> stage_times;

  const WriteTime& time_for(const std::string& machine) const;
};

/// Runs the pipeline on explicit geometry.
PrepResult run_data_prep(const PolygonSet& geometry, const PrepOptions& options = {});

/// Runs the pipeline on one layer of a hierarchical layout (flattens first).
PrepResult run_data_prep(const Library& lib, CellId top, LayerKey layer,
                         const PrepOptions& options = {});

/// Runs the pipeline on a layout file (options.input_path must be set):
/// cells stream through the bounded window straight into fracture, so peak
/// memory is O(window) cells plus the shot list — never the flat geometry.
/// The shots are bitwise-identical to flattening the same file in RAM.
PrepResult run_data_prep(const PrepOptions& options);

}  // namespace ebl
