#include "core/patterns.h"

#include <algorithm>
#include <cmath>

#include "geom/curves.h"
#include "util/contracts.h"

namespace ebl {
namespace {

Coord log_uniform(Rng& rng, Coord lo, Coord hi) {
  const double v = std::exp(rng.uniform_real(std::log(double(lo)), std::log(double(hi))));
  return std::clamp(static_cast<Coord>(std::lround(v)), lo, hi);
}

}  // namespace

PolygonSet random_manhattan(Rng& rng, const Box& frame, double density, Coord min_size,
                            Coord max_size) {
  expects(!frame.empty(), "random_manhattan: empty frame");
  expects(density > 0 && density <= 1.0, "random_manhattan: density in (0,1]");
  expects(min_size > 0 && max_size >= min_size, "random_manhattan: bad sizes");
  const double target = density * static_cast<double>(frame.area());
  PolygonSet out;
  double placed = 0.0;
  while (placed < target) {
    const Coord w = log_uniform(rng, min_size, max_size);
    const Coord h = log_uniform(rng, min_size, max_size);
    const Coord x = static_cast<Coord>(rng.uniform(frame.lo.x, frame.hi.x - w));
    const Coord y = static_cast<Coord>(rng.uniform(frame.lo.y, frame.hi.y - h));
    out.insert(Box{x, y, static_cast<Coord>(x + w), static_cast<Coord>(y + h)});
    placed += static_cast<double>(w) * h;
  }
  return out;
}

PolygonSet random_triangles(Rng& rng, const Box& frame, double density, Coord min_size,
                            Coord max_size) {
  expects(!frame.empty(), "random_triangles: empty frame");
  expects(density > 0 && density <= 1.0, "random_triangles: density in (0,1]");
  const double target = density * static_cast<double>(frame.area());
  PolygonSet out;
  double placed = 0.0;
  while (placed < target) {
    const Coord s = log_uniform(rng, min_size, max_size);
    const Coord x = static_cast<Coord>(rng.uniform(frame.lo.x, frame.hi.x - s));
    const Coord y = static_cast<Coord>(rng.uniform(frame.lo.y, frame.hi.y - s));
    const Point a{x, y};
    const Point b = a + Point{static_cast<Coord>(rng.uniform(1, s)),
                              static_cast<Coord>(rng.uniform(0, s))};
    const Point c = a + Point{static_cast<Coord>(rng.uniform(0, s)),
                              static_cast<Coord>(rng.uniform(1, s))};
    if (cross(a, b, c) == 0) continue;
    const SimplePolygon tri{{a, b, c}};
    placed += tri.area();
    out.insert(tri);
  }
  return out;
}

PolygonSet line_space_array(Point origin, Coord width, Coord pitch, Coord length,
                            int count) {
  expects(width > 0 && pitch >= width && length > 0 && count > 0,
          "line_space_array: bad parameters");
  PolygonSet out;
  for (int i = 0; i < count; ++i) {
    const Coord x = static_cast<Coord>(origin.x + Coord64(i) * pitch);
    out.insert(Box{x, origin.y, static_cast<Coord>(x + width),
                   static_cast<Coord>(origin.y + length)});
  }
  return out;
}

PolygonSet staircase(Point origin, Coord step_w, Coord step_h, int levels) {
  expects(step_w > 0 && step_h > 0 && levels > 0, "staircase: bad parameters");
  PolygonSet out;
  // A staircase profile: step i spans full height below level i.
  for (int i = 0; i < levels; ++i) {
    const Coord x = static_cast<Coord>(origin.x + Coord64(i) * step_w);
    out.insert(Box{x, origin.y, static_cast<Coord>(x + step_w),
                   static_cast<Coord>(origin.y + Coord64(i + 1) * step_h)});
  }
  return out;
}

PolygonSet zone_plate(Point center, double focal_length, double wavelength, int zones,
                      double tolerance) {
  expects(focal_length > 0 && wavelength > 0 && zones > 0, "zone_plate: bad parameters");
  PolygonSet out;
  const auto radius = [&](int n) {
    return std::sqrt(n * wavelength * focal_length +
                     0.25 * n * n * wavelength * wavelength);
  };
  for (int z = 0; z < zones; ++z) {
    // Opaque zones: n = 2z+1 .. 2z+2 (odd-to-even annuli).
    const auto r_in = static_cast<Coord>(std::lround(radius(2 * z + 1)));
    const auto r_out = static_cast<Coord>(std::lround(radius(2 * z + 2)));
    if (r_out <= r_in) continue;
    out.insert(ring(center, r_in, r_out, tolerance));
  }
  return out;
}

PolygonSet checkerboard(const Box& frame, Coord cell) {
  expects(!frame.empty() && cell > 0, "checkerboard: bad parameters");
  PolygonSet out;
  for (Coord64 y = frame.lo.y; y < frame.hi.y; y += cell) {
    for (Coord64 x = frame.lo.x; x < frame.hi.x; x += cell) {
      const bool odd = (((x - frame.lo.x) / cell) + ((y - frame.lo.y) / cell)) % 2;
      if (odd) continue;
      out.insert(Box{static_cast<Coord>(x), static_cast<Coord>(y),
                     static_cast<Coord>(std::min<Coord64>(x + cell, frame.hi.x)),
                     static_cast<Coord>(std::min<Coord64>(y + cell, frame.hi.y))});
    }
  }
  return out;
}

PolygonSet comb(Point origin, Coord finger_w, Coord finger_gap, Coord finger_len,
                int fingers) {
  expects(finger_w > 0 && finger_gap > 0 && finger_len > 0 && fingers > 0,
          "comb: bad parameters");
  PolygonSet out;
  const Coord pitch = static_cast<Coord>(finger_w + finger_gap);
  // Spine.
  out.insert(Box{origin.x, origin.y,
                 static_cast<Coord>(origin.x + Coord64(fingers) * pitch),
                 static_cast<Coord>(origin.y + finger_w)});
  for (int i = 0; i < fingers; ++i) {
    const Coord x = static_cast<Coord>(origin.x + Coord64(i) * pitch);
    out.insert(Box{x, origin.y, static_cast<Coord>(x + finger_w),
                   static_cast<Coord>(origin.y + finger_w + finger_len)});
  }
  return out;
}

}  // namespace ebl
