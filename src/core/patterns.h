// Deterministic workload generators.
//
// Substitutes for the authors' benchmark layouts: each generator exposes the
// controlled parameter the experiments sweep (density, vertex count, pitch,
// zone count) and is reproducible from a seed.
#pragma once

#include <cstdint>

#include "geom/polygon_set.h"
#include "util/rng.h"

namespace ebl {

/// Random axis-parallel rectangles in @p frame with total target density
/// (fraction of frame area, before merging). Sizes are log-uniform between
/// @p min_size and @p max_size dbu.
PolygonSet random_manhattan(Rng& rng, const Box& frame, double density,
                            Coord min_size, Coord max_size);

/// Random triangles (all-angle soup), same density convention.
PolygonSet random_triangles(Rng& rng, const Box& frame, double density,
                            Coord min_size, Coord max_size);

/// count vertical lines of @p width at @p pitch, of length @p length,
/// starting at @p origin (a 1:1 line/space grating when width = pitch/2).
PolygonSet line_space_array(Point origin, Coord width, Coord pitch, Coord length,
                            int count);

/// Staircase of @p levels steps, each @p step_w wide and @p step_h tall
/// (the grayscale test structure).
PolygonSet staircase(Point origin, Coord step_w, Coord step_h, int levels);

/// Fresnel zone plate: opaque (exposed) even zones. Zone radii
/// r_n = sqrt(n * lambda * f + (n lambda / 2)^2), n = 1 .. 2*zones.
/// All lengths in dbu.
PolygonSet zone_plate(Point center, double focal_length, double wavelength,
                      int zones, double tolerance = 2.0);

/// Checkerboard of @p cell-sized squares covering @p frame (density 50%).
PolygonSet checkerboard(const Box& frame, Coord cell);

/// A comb/serpentine test macro (dense long features, fracture stress).
PolygonSet comb(Point origin, Coord finger_w, Coord finger_gap, Coord finger_len,
                int fingers);

}  // namespace ebl
