#include "fracture/ebf.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace ebl {

void write_ebf(const EbfFile& file, std::ostream& os) {
  os << "EBF1\n";
  os << "units nm\n";
  if (file.field) {
    os << "field " << file.field->width() << ' ' << file.field->height() << '\n';
  }
  os.precision(12);
  for (const Shot& s : file.shots) {
    const Trapezoid& t = s.shape;
    os << "shot " << t.y0 << ' ' << t.y1 << ' ' << t.xl0 << ' ' << t.xr0 << ' '
       << t.xl1 << ' ' << t.xr1 << ' ' << s.dose << '\n';
  }
  os << "end\n";
}

void write_ebf(const EbfFile& file, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw DataError("cannot open for writing: " + path);
  write_ebf(file, os);
  if (!os) throw DataError("write failed: " + path);
}

EbfFile read_ebf(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "EBF1") throw DataError("EBF: bad magic");
  EbfFile file;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "units") {
      std::string u;
      ls >> u;
      if (u != "nm") throw DataError("EBF: unsupported units " + u);
    } else if (kw == "field") {
      Coord64 w = 0;
      Coord64 h = 0;
      if (!(ls >> w >> h) || w <= 0 || h <= 0) throw DataError("EBF: bad field line");
      file.field = Box{0, 0, static_cast<Coord>(w), static_cast<Coord>(h)};
    } else if (kw == "shot") {
      Trapezoid t;
      double dose = 1.0;
      if (!(ls >> t.y0 >> t.y1 >> t.xl0 >> t.xr0 >> t.xl1 >> t.xr1 >> dose))
        throw DataError("EBF: bad shot line: " + line);
      if (!t.valid()) throw DataError("EBF: invalid shot geometry: " + line);
      if (dose < 0) throw DataError("EBF: negative dose");
      file.shots.push_back(Shot{t, dose});
    } else if (kw == "end") {
      saw_end = true;
      break;
    } else {
      throw DataError("EBF: unknown keyword " + kw);
    }
  }
  if (!saw_end) throw DataError("EBF: missing end marker");
  return file;
}

EbfFile read_ebf(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw DataError("cannot open for reading: " + path);
  return read_ebf(is);
}

}  // namespace ebl
