// EBF — a documented, minimal shot-record exchange format.
//
// Substitute for the proprietary pattern-generator tape formats of the era
// (MEBES, EL-1): the information content is identical — a flat list of
// trapezoid flashes with relative dose, plus the field size header.
//
// Format (text, line oriented):
//   EBF1
//   units nm
//   field <width> <height>          # optional, dbu
//   shot <y0> <y1> <xl0> <xr0> <xl1> <xr1> <dose>
//   ...
//   end
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "fracture/shot.h"
#include "geom/box.h"

namespace ebl {

struct EbfFile {
  std::optional<Box> field;  ///< exposure field frame, if recorded
  ShotList shots;
};

void write_ebf(const EbfFile& file, std::ostream& os);
void write_ebf(const EbfFile& file, const std::string& path);

/// Throws DataError on malformed input.
EbfFile read_ebf(std::istream& is);
EbfFile read_ebf(const std::string& path);

}  // namespace ebl
