#include "fracture/fracture.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace ebl {

double shot_area(const ShotList& shots) {
  double a = 0.0;
  for (const Shot& s : shots) a += s.shape.area();
  return a;
}

double shot_charge_area(const ShotList& shots) {
  double a = 0.0;
  for (const Shot& s : shots) a += s.shape.area() * s.dose;
  return a;
}

namespace {

// x of the left/right side at height y (exact rational rounded to grid).
Coord side_x_at(Coord y, Coord y0, Coord y1, Coord xa, Coord xb) {
  const Coord64 den = Coord64(y1) - y0;
  const Wide num = Wide(Coord64(xa)) * den + Wide(Coord64(xb) - xa) * (Coord64(y) - y0);
  const Wide half = den / 2;
  if (num >= 0) return static_cast<Coord>((num + half) / den);
  return static_cast<Coord>(-(((-num) + half) / den));
}

// Splits t into horizontal slices of height <= max_h.
void split_y(const Trapezoid& t, Coord max_h, std::vector<Trapezoid>& out) {
  const Coord64 h = Coord64(t.y1) - t.y0;
  if (h <= max_h) {
    out.push_back(t);
    return;
  }
  const auto slices = static_cast<Coord64>((h + max_h - 1) / max_h);
  Coord prev_y = t.y0;
  Coord prev_xl = t.xl0;
  Coord prev_xr = t.xr0;
  for (Coord64 i = 1; i <= slices; ++i) {
    const Coord y = i == slices
                        ? t.y1
                        : static_cast<Coord>(t.y0 + h * i / slices);
    const Coord xl = (y == t.y1) ? t.xl1 : side_x_at(y, t.y0, t.y1, t.xl0, t.xl1);
    const Coord xr = (y == t.y1) ? t.xr1 : side_x_at(y, t.y0, t.y1, t.xr0, t.xr1);
    const Trapezoid slice{prev_y, y, prev_xl, prev_xr, xl, xr};
    if (slice.valid()) out.push_back(slice);
    prev_y = y;
    prev_xl = xl;
    prev_xr = xr;
  }
}

// Clips t to the vertical strip [x0, x1]; pieces remain trapezoids by
// splitting at the heights where the slanted sides cross the strip edges.
void clip_strip(const Trapezoid& t, Coord x0, Coord x1, std::vector<Trapezoid>& out) {
  // Heights where a side crosses x0 or x1 (rounded to grid).
  std::vector<Coord> ys{t.y0, t.y1};
  const auto add_crossing = [&](Coord xa, Coord xb, Coord xc) {
    // side runs from (xa, y0) to (xb, y1); crossing with x = xc.
    if ((xa < xc && xb < xc) || (xa > xc && xb > xc) || xa == xb) return;
    const Coord64 den = Coord64(xb) - xa;
    const Wide num = Wide(Coord64(t.y0)) * den + Wide(Coord64(t.y1) - t.y0) * (Coord64(xc) - xa);
    const Wide half = (den > 0 ? den : -den) / 2;
    Coord64 y;
    if (den > 0) {
      y = num >= 0 ? static_cast<Coord64>((num + half) / den)
                   : -static_cast<Coord64>(((-num) + half) / den);
    } else {
      const Wide nnum = -num;
      const Coord64 nden = -den;
      y = nnum >= 0 ? static_cast<Coord64>((nnum + half) / nden)
                    : -static_cast<Coord64>(((-nnum) + half) / nden);
    }
    if (y > t.y0 && y < t.y1) ys.push_back(static_cast<Coord>(y));
  };
  add_crossing(t.xl0, t.xl1, x0);
  add_crossing(t.xl0, t.xl1, x1);
  add_crossing(t.xr0, t.xr1, x0);
  add_crossing(t.xr0, t.xr1, x1);
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
    const Coord ya = ys[i];
    const Coord yb = ys[i + 1];
    const Coord xla = std::clamp(side_x_at(ya, t.y0, t.y1, t.xl0, t.xl1), x0, x1);
    const Coord xlb = std::clamp(side_x_at(yb, t.y0, t.y1, t.xl0, t.xl1), x0, x1);
    const Coord xra = std::clamp(side_x_at(ya, t.y0, t.y1, t.xr0, t.xr1), x0, x1);
    const Coord xrb = std::clamp(side_x_at(yb, t.y0, t.y1, t.xr0, t.xr1), x0, x1);
    const Trapezoid piece{ya, yb, xla, xra, xlb, xrb};
    if (piece.valid()) out.push_back(piece);
  }
}

}  // namespace

std::vector<Trapezoid> split_to_max_size(const Trapezoid& t, Coord max_size) {
  expects(max_size > 0, "split_to_max_size: max_size must be positive");
  std::vector<Trapezoid> y_slices;
  split_y(t, max_size, y_slices);

  std::vector<Trapezoid> out;
  for (const Trapezoid& slice : y_slices) {
    const Box bb = slice.bbox();
    const Coord64 w = bb.width();
    if (w <= max_size) {
      out.push_back(slice);
      continue;
    }
    const auto cols = static_cast<Coord64>((w + max_size - 1) / max_size);
    for (Coord64 c = 0; c < cols; ++c) {
      const Coord xa = static_cast<Coord>(bb.lo.x + w * c / cols);
      const Coord xb = static_cast<Coord>(bb.lo.x + w * (c + 1) / cols);
      clip_strip(slice, xa, xb, out);
    }
  }
  return out;
}

std::vector<Trapezoid> clip_trapezoid(const Trapezoid& t, const Box& box) {
  std::vector<Trapezoid> out;
  if (box.empty() || !t.valid() || !t.bbox().touches(box)) return out;
  // Clamp in y first (trivial), then clip the x strip.
  const Coord y0 = std::max(t.y0, box.lo.y);
  const Coord y1 = std::min(t.y1, box.hi.y);
  if (y1 <= y0) return out;
  const Trapezoid ycut{y0, y1, side_x_at(y0, t.y0, t.y1, t.xl0, t.xl1),
                       side_x_at(y0, t.y0, t.y1, t.xr0, t.xr1),
                       side_x_at(y1, t.y0, t.y1, t.xl0, t.xl1),
                       side_x_at(y1, t.y0, t.y1, t.xr0, t.xr1)};
  if (!ycut.valid()) return out;
  clip_strip(ycut, box.lo.x, box.hi.x, out);
  return out;
}

FractureResult fracture(const std::vector<Trapezoid>& traps, const FractureOptions& options) {
  FractureResult result;
  result.stats.figures = traps.size();

  for (const Trapezoid& t : traps) {
    std::vector<Trapezoid> pieces;
    if (options.max_shot_size > 0) {
      pieces = split_to_max_size(t, options.max_shot_size);
    } else {
      pieces.push_back(t);
    }
    for (const Trapezoid& p : pieces) {
      if (!p.valid()) continue;
      result.shots.push_back(Shot{p, 1.0});
      if (p.is_rect()) ++result.stats.rectangles;
      else if (p.is_triangle()) ++result.stats.triangles;
      if (options.sliver_threshold > 0) {
        const Box bb = p.bbox();
        const Coord64 min_dim = std::min(bb.width(), bb.height());
        if (min_dim < options.sliver_threshold) ++result.stats.slivers;
      }
      result.stats.area += p.area();
    }
  }
  result.stats.shots = result.shots.size();
  return result;
}

FractureResult fracture(const PolygonSet& set, const FractureOptions& options) {
  if (options.strategy == FractureStrategy::rectangles) {
    for (const Polygon& p : set.polygons()) {
      if (!p.outer().is_rectilinear())
        throw DataError("fracture: rectangles strategy requires rectilinear input");
      for (const auto& h : p.holes()) {
        if (!h.is_rectilinear())
          throw DataError("fracture: rectangles strategy requires rectilinear input");
      }
    }
  }
  const bool merge = options.strategy != FractureStrategy::bands;
  return fracture(set.trapezoids(merge), options);
}

}  // namespace ebl
