// Pattern fracturing: polygons -> machine trapezoids/rectangles.
//
// This is the central CAD step of the 1979 e-beam flow: hierarchical CAD
// polygons must be decomposed into the figures the pattern generator can
// flash. The decomposition quality is measured by figure count (write time)
// and sliver count (figures thinner than the resist/beam can resolve, which
// cause CD errors).
#pragma once

#include <cstdint>

#include "fracture/shot.h"
#include "geom/polygon_set.h"

namespace ebl {

/// Decomposition strategy.
enum class FractureStrategy : std::uint8_t {
  bands,         ///< raw scanline bands (one trapezoid per band interval)
  merged_traps,  ///< bands with vertically-collinear trapezoids fused (default)
  rectangles,    ///< rectangles only; requires rectilinear input
};

struct FractureOptions {
  FractureStrategy strategy = FractureStrategy::merged_traps;

  /// Maximum shot edge length in dbu (VSB aperture limit); 0 = unlimited.
  /// Figures larger than this are split into a grid of shots.
  Coord max_shot_size = 0;

  /// Figures with a dimension below this count as slivers in the stats.
  Coord sliver_threshold = 0;
};

struct FractureStats {
  std::size_t figures = 0;     ///< figures before shot-size splitting
  std::size_t shots = 0;       ///< shots after splitting
  std::size_t rectangles = 0;  ///< of the shots
  std::size_t triangles = 0;   ///< of the shots (one degenerate side)
  std::size_t slivers = 0;     ///< shots with a dimension < sliver_threshold
  double area = 0.0;           ///< total shot area, dbu²
};

struct FractureResult {
  ShotList shots;
  FractureStats stats;
};

/// Fractures the merged region of @p set into shots.
/// Throws DataError when strategy == rectangles and the input is not
/// rectilinear.
FractureResult fracture(const PolygonSet& set, const FractureOptions& options = {});

/// Fractures an already-decomposed trapezoid list (splitting + stats only).
FractureResult fracture(const std::vector<Trapezoid>& traps,
                        const FractureOptions& options = {});

/// Splits one trapezoid into shots no larger than @p max_size in either
/// dimension. Vertical cuts through slanted sides introduce sub-bands so
/// every piece remains a horizontal trapezoid. Exposed for testing.
std::vector<Trapezoid> split_to_max_size(const Trapezoid& t, Coord max_size);

/// Clips a trapezoid to a box; pieces remain horizontal trapezoids (the
/// vertical cuts split sub-bands where slanted sides cross the box edges).
/// Used by field partitioning for shots straddling field boundaries.
std::vector<Trapezoid> clip_trapezoid(const Trapezoid& t, const Box& box);

}  // namespace ebl
