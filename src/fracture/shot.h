// Machine shots: the primitive an e-beam pattern generator exposes.
#pragma once

#include <ostream>
#include <vector>

#include "geom/trapezoid.h"

namespace ebl {

/// One exposure figure with its relative dose (1.0 = nominal base dose).
/// Raster machines ignore per-shot dose granularity; vector and VSB
/// machines apply it per flash (this is where PEC output lands).
struct Shot {
  Trapezoid shape;
  double dose = 1.0;

  friend bool operator==(const Shot&, const Shot&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Shot& s) {
    return os << s.shape << " dose " << s.dose;
  }
};

using ShotList = std::vector<Shot>;

/// Total exposed area of a shot list in dbu².
double shot_area(const ShotList& shots);

/// Dose-weighted area (proportional to total delivered charge).
double shot_charge_area(const ShotList& shots);

}  // namespace ebl
