#include "geom/boolean.h"

#include <algorithm>
#include <map>

#include "geom/edge.h"
#include "util/contracts.h"

namespace ebl {
namespace {

// Rounds num/den to the nearest integer (ties away from zero); den > 0.
Coord64 round_div(Wide num, Wide den) {
  const Wide half = den / 2;
  if (num >= 0) return static_cast<Coord64>((num + half) / den);
  return static_cast<Coord64>(-(((-num) + half) / den));
}

// Exact x of the segment's supporting line at height y, as num/den with
// den = hi.y - lo.y > 0. Requires lo.y <= y <= hi.y.
struct RatX {
  Wide num;
  Coord64 den;
};

}  // namespace

void BooleanEngine::add_contour(const SimplePolygon& poly, int group, bool as_given) {
  if (poly.size() < 3) return;
  // Orientation: solid contours must be CCW so winding is +1 inside.
  const bool reverse = !as_given && !poly.is_ccw();
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    Point a = poly[i];
    Point b = poly[(i + 1) % n];
    if (reverse) std::swap(a, b);
    if (a.y == b.y) continue;  // horizontal edges carry no winding
    Seg s;
    if (a.y < b.y) {
      s = {a, b, +1, static_cast<std::int8_t>(group)};
    } else {
      s = {b, a, -1, static_cast<std::int8_t>(group)};
    }
    segs_.push_back(s);
  }
}

void BooleanEngine::add(const SimplePolygon& poly, int group) {
  add_contour(poly, group, /*as_given=*/false);
}

void BooleanEngine::add(const Polygon& poly, int group) {
  // Polygon normalizes outer to CCW and holes to CW on construction.
  add_contour(poly.outer(), group, /*as_given=*/true);
  for (const auto& h : poly.holes()) add_contour(h, group, /*as_given=*/true);
}

void BooleanEngine::add_raw(const SimplePolygon& contour, int group) {
  add_contour(contour, group, /*as_given=*/true);
}

void BooleanEngine::add(const Box& box, int group) {
  if (box.empty()) return;
  add(SimplePolygon::rect(box), group);
}

void BooleanEngine::add(const Trapezoid& trap, int group) {
  if (!trap.valid()) return;
  add(trap.to_polygon(), group);
}

std::vector<BooleanEngine::Seg> BooleanEngine::split_segments() const {
  std::vector<Seg> segs = segs_;
  stats_ = BooleanStats{};
  stats_.input_edges = segs.size();

  constexpr int kMaxRounds = 32;
  for (int round = 0; round < kMaxRounds; ++round) {
    stats_.split_rounds = static_cast<std::size_t>(round);
    // Sweep & prune on y: sort by lo.y, pair up while y-ranges overlap.
    std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
      if (a.lo.y != b.lo.y) return a.lo.y < b.lo.y;
      return a.lo.x < b.lo.x;
    });

    std::vector<std::vector<Point>> cuts(segs.size());
    bool any_cut = false;

    auto note_cut = [&](std::size_t idx, Point p) {
      const Seg& s = segs[idx];
      if (p.y <= s.lo.y || p.y >= s.hi.y) return;  // must split strictly inside in y
      cuts[idx].push_back(p);
      any_cut = true;
    };

    for (std::size_t i = 0; i < segs.size(); ++i) {
      const Edge ei{segs[i].lo, segs[i].hi};
      const Box bi = ei.bbox();
      for (std::size_t j = i + 1; j < segs.size(); ++j) {
        if (segs[j].lo.y > segs[i].hi.y) break;  // sorted by lo.y
        const Edge ej{segs[j].lo, segs[j].hi};
        if (!bi.touches(ej.bbox())) continue;
        switch (classify_intersection(ei, ej)) {
          case SegCross::none:
            break;
          case SegCross::proper: {
            const Point p = intersection_point(ei, ej);
            note_cut(i, p);
            note_cut(j, p);
            break;
          }
          case SegCross::touch: {
            // T-junction: split the segment whose interior is touched.
            if (ei.contains(ej.a)) note_cut(i, ej.a);
            if (ei.contains(ej.b)) note_cut(i, ej.b);
            if (ej.contains(ei.a)) note_cut(j, ei.a);
            if (ej.contains(ei.b)) note_cut(j, ei.b);
            break;
          }
          case SegCross::overlap: {
            note_cut(i, ej.a);
            note_cut(i, ej.b);
            note_cut(j, ei.a);
            note_cut(j, ei.b);
            break;
          }
        }
      }
    }

    if (!any_cut) {
      stats_.split_edges = segs.size();
      return segs;
    }

    std::vector<Seg> next;
    next.reserve(segs.size() + 16);
    for (std::size_t i = 0; i < segs.size(); ++i) {
      if (cuts[i].empty()) {
        next.push_back(segs[i]);
        continue;
      }
      auto& cs = cuts[i];
      std::sort(cs.begin(), cs.end(),
                [](Point a, Point b) { return a.y != b.y ? a.y < b.y : a.x < b.x; });
      cs.erase(std::unique(cs.begin(), cs.end()), cs.end());
      Point prev = segs[i].lo;
      for (Point c : cs) {
        if (c.y > prev.y) next.push_back({prev, c, segs[i].weight, segs[i].group});
        if (c.y >= prev.y) prev = c;  // horizontal residue is dropped
      }
      if (segs[i].hi.y > prev.y)
        next.push_back({prev, segs[i].hi, segs[i].weight, segs[i].group});
    }
    segs = std::move(next);
  }
  throw DataError("BooleanEngine: edge splitting did not reach a fixpoint");
}

std::vector<Band> BooleanEngine::bands(BoolOp op) const {
  std::vector<Seg> segs = split_segments();
  if (segs.empty()) return {};

  // Collect event ys (every segment endpoint).
  std::vector<Coord> ys;
  ys.reserve(segs.size() * 2);
  for (const Seg& s : segs) {
    ys.push_back(s.lo.y);
    ys.push_back(s.hi.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Segments sorted by lo.y for incremental activation.
  std::sort(segs.begin(), segs.end(), [](const Seg& a, const Seg& b) {
    return a.lo.y < b.lo.y;
  });

  const auto inside = [op](int wa, int wb) {
    const bool a = wa != 0;
    const bool b = wb != 0;
    switch (op) {
      case BoolOp::Or: return a || b;
      case BoolOp::And: return a && b;
      case BoolOp::Sub: return a && !b;
      case BoolOp::Xor: return a != b;
    }
    return false;
  };

  // Exact x at y as a rational with positive denominator.
  const auto rat_x = [](const Seg& s, Coord y) -> RatX {
    const Coord64 den = Coord64(s.hi.y) - s.lo.y;  // > 0
    const Wide num = Wide(Coord64(s.lo.x)) * den +
                     Wide(Coord64(s.hi.x) - s.lo.x) * (Coord64(y) - s.lo.y);
    return {num, den};
  };
  const auto rat_cmp = [](const RatX& a, const RatX& b) -> int {
    const Wide lhs = a.num * b.den;
    const Wide rhs = b.num * a.den;
    return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  };

  std::vector<Band> result;
  std::vector<std::size_t> active;   // indices into segs
  std::size_t next_seg = 0;

  for (std::size_t bi = 0; bi + 1 < ys.size(); ++bi) {
    const Coord y0 = ys[bi];
    const Coord y1 = ys[bi + 1];

    // Activate segments starting at y0; retire segments ending at or below y0.
    while (next_seg < segs.size() && segs[next_seg].lo.y <= y0) {
      active.push_back(next_seg);
      ++next_seg;
    }
    std::erase_if(active, [&](std::size_t i) { return segs[i].hi.y <= y0; });
    if (active.empty()) continue;

    // Exact order by (x@y0, x@y1): crossings were removed, so this is a
    // consistent total order within the band.
    struct Entry {
      std::size_t seg;
      RatX x0, x1;
    };
    std::vector<Entry> order;
    order.reserve(active.size());
    for (std::size_t i : active) order.push_back({i, rat_x(segs[i], y0), rat_x(segs[i], y1)});
    std::sort(order.begin(), order.end(), [&](const Entry& a, const Entry& b) {
      if (const int c = rat_cmp(a.x0, b.x0); c != 0) return c < 0;
      if (const int c = rat_cmp(a.x1, b.x1); c != 0) return c < 0;
      return a.seg < b.seg;  // coincident segments: deterministic tie-break
    });

    Band band;
    band.y0 = y0;
    band.y1 = y1;

    int wa = 0;
    int wb = 0;
    BandInterval cur{};
    for (const Entry& e : order) {
      const Seg& s = segs[e.seg];
      const bool was_inside = inside(wa, wb);
      if (s.group == 0) wa += s.weight; else wb += s.weight;
      const bool now_inside = inside(wa, wb);
      if (!was_inside && now_inside) {
        cur.xl0 = static_cast<Coord>(round_div(e.x0.num, e.x0.den));
        cur.xl1 = static_cast<Coord>(round_div(e.x1.num, e.x1.den));
        cur.left_seg = static_cast<std::int32_t>(e.seg);
      } else if (was_inside && !now_inside) {
        cur.xr0 = static_cast<Coord>(round_div(e.x0.num, e.x0.den));
        cur.xr1 = static_cast<Coord>(round_div(e.x1.num, e.x1.den));
        cur.right_seg = static_cast<std::int32_t>(e.seg);
        band.intervals.push_back(cur);
      }
    }
    ensures(wa == 0 && wb == 0, "winding must return to zero at band end");

    // Coalesce intervals that the grid cannot keep apart:
    //  - zero-gap at both ends (they form one figure);
    //  - strict overlap at either end. Strict overlaps arise from residual
    //    sub-band crossings: when an intersection point rounds onto a
    //    segment endpoint's y, the crossing cannot be split on the grid and
    //    the two inside intervals interleave. The union of such intervals is
    //    connected almost everywhere in the band, so merging is the
    //    area-faithful repair (error is a sub-dbu-height sliver).
    std::vector<BandInterval> merged;
    for (const BandInterval& iv : band.intervals) {
      if (iv.xl0 == iv.xr0 && iv.xl1 == iv.xr1) continue;  // measure-zero sliver
      if (!merged.empty()) {
        BandInterval& prev = merged.back();
        const bool touch_both = prev.xr0 >= iv.xl0 && prev.xr1 >= iv.xl1;
        const bool overlap_any = prev.xr0 > iv.xl0 || prev.xr1 > iv.xl1;
        if (touch_both || overlap_any) {
          prev.xr0 = std::max(prev.xr0, iv.xr0);
          prev.xr1 = std::max(prev.xr1, iv.xr1);
          prev.right_seg = -1;  // repaired boundary: no single support segment
          continue;
        }
      }
      merged.push_back(iv);
    }
    band.intervals = std::move(merged);

    if (!band.intervals.empty()) {
      stats_.intervals += band.intervals.size();
      result.push_back(std::move(band));
    }
  }
  stats_.bands = result.size();
  return result;
}

std::vector<Trapezoid> band_trapezoids(const std::vector<Band>& bands) {
  std::vector<Trapezoid> traps;
  for (const Band& b : bands) {
    for (const BandInterval& iv : b.intervals) {
      const Trapezoid t{b.y0, b.y1, iv.xl0, iv.xr0, iv.xl1, iv.xr1};
      if (t.valid()) traps.push_back(t);
    }
  }
  return traps;
}

std::vector<Trapezoid> merge_trapezoids_vertically(const std::vector<Band>& bands) {
  // Growable trapezoids carry the supporting-segment ids of their sides so
  // a band split by a foreign event y can be reunited exactly: when the ids
  // match, the rounded intermediate boundary is dropped and the merged
  // trapezoid interpolates straight between its (exact) extreme sides.
  struct Growing {
    Trapezoid t;
    std::int32_t left_seg;
    std::int32_t right_seg;
  };
  std::vector<Trapezoid> done;
  std::vector<Growing> grow;

  const auto collinear_sides = [](const Trapezoid& a, const Trapezoid& b) {
    // a on bottom, b on top; shares a.y1 == b.y0, a.xl1 == b.xl0, a.xr1 == b.xr0.
    // Sides stay straight iff slopes match exactly in grid coordinates.
    const Coord64 ha = Coord64(a.y1) - a.y0;
    const Coord64 hb = Coord64(b.y1) - b.y0;
    const bool left = Wide(Coord64(a.xl1) - a.xl0) * hb == Wide(Coord64(b.xl1) - b.xl0) * ha;
    const bool right = Wide(Coord64(a.xr1) - a.xr0) * hb == Wide(Coord64(b.xr1) - b.xr0) * ha;
    return left && right;
  };

  for (const Band& band : bands) {
    std::vector<Growing> next_grow;
    std::vector<bool> used(band.intervals.size(), false);
    for (const Growing& g : grow) {
      bool extended = false;
      if (g.t.y1 == band.y0) {
        for (std::size_t i = 0; i < band.intervals.size(); ++i) {
          if (used[i]) continue;
          const BandInterval& iv = band.intervals[i];
          const bool same_segs = g.left_seg >= 0 && g.left_seg == iv.left_seg &&
                                 g.right_seg >= 0 && g.right_seg == iv.right_seg;
          if (!same_segs) {
            if (iv.xl0 != g.t.xl1 || iv.xr0 != g.t.xr1) continue;
            const Trapezoid cand{band.y0, band.y1, iv.xl0, iv.xr0, iv.xl1, iv.xr1};
            if (!collinear_sides(g.t, cand)) continue;
          } else {
            // Same supporting segments: the boundary must be contiguous in
            // rounded space too (it is, both bands rounded the same
            // rational), but intervals in the same band could reuse a
            // segment after a coalescing repair — keep the contiguity check.
            if (iv.xl0 != g.t.xl1 || iv.xr0 != g.t.xr1) continue;
          }
          next_grow.push_back(
              Growing{Trapezoid{g.t.y0, band.y1, g.t.xl0, g.t.xr0, iv.xl1, iv.xr1},
                      same_segs ? g.left_seg : -1, same_segs ? g.right_seg : -1});
          used[i] = true;
          extended = true;
          break;
        }
      }
      if (!extended) done.push_back(g.t);
    }
    for (std::size_t i = 0; i < band.intervals.size(); ++i) {
      if (used[i]) continue;
      const BandInterval& iv = band.intervals[i];
      const Trapezoid t{band.y0, band.y1, iv.xl0, iv.xr0, iv.xl1, iv.xr1};
      if (t.valid()) next_grow.push_back(Growing{t, iv.left_seg, iv.right_seg});
    }
    grow = std::move(next_grow);
  }
  for (const Growing& g : grow) done.push_back(g.t);
  return done;
}

std::vector<Trapezoid> BooleanEngine::trapezoids(BoolOp op, bool merge_vertical) const {
  const std::vector<Band> bs = bands(op);
  return merge_vertical ? merge_trapezoids_vertically(bs) : band_trapezoids(bs);
}

std::vector<Polygon> BooleanEngine::polygons(BoolOp op) const {
  return stitch_bands(bands(op));
}

}  // namespace ebl
