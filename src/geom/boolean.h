// Scanline boolean engine on integer polygons.
//
// The engine implements AND / OR / XOR / ANDNOT between two groups of
// polygons using a band-decomposition scanline:
//
//   1. Polygon edges are collected as weighted segments (weight encodes the
//      original direction so winding numbers are exact; horizontal edges only
//      contribute scanline events).
//   2. Segments are split at all mutual crossings and T-junctions with exact
//      integer predicates; intersection points are rounded to the database
//      grid and splitting is iterated to a fixpoint (grid snapping).
//   3. A sweep over the y-event bands orders the (now crossing-free) segments
//      exactly by rational x and accumulates per-group winding numbers.
//      Maximal inside intervals become horizontal trapezoids.
//
// The native output is a set of trapezoid bands — the primitive e-beam
// machine formats want anyway. Polygon reconstruction (boundary stitching)
// is layered on top in stitch.cpp.
//
// All comparisons in steps 2 and 3 are exact (int128); the only rounding is
// the snap of derived coordinates to the integer grid, which is the standard
// EDA convention ("all geometry is on the database grid", <= 1 dbu error).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/polygon.h"
#include "geom/trapezoid.h"

namespace ebl {

/// Boolean operation between group 0 (A) and group 1 (B).
/// The inside rule per group is nonzero winding.
enum class BoolOp : std::uint8_t {
  Or,      ///< A ∪ B (also used as the single-set merge)
  And,     ///< A ∩ B
  Sub,     ///< A \ B
  Xor,     ///< (A \ B) ∪ (B \ A)
};

/// One maximal inside interval of a band, with integer (grid-snapped)
/// x-coordinates at the band bottom (y0) and top (y1).
struct BandInterval {
  Coord xl0, xr0;  ///< left/right x at band bottom
  Coord xl1, xr1;  ///< left/right x at band top
  /// Supporting (split-)segment ids of the left/right boundary within one
  /// engine run; -1 when unknown. Used by the vertical merge to reunite
  /// trapezoids that a foreign event y split, which removes the grid
  /// rounding of the intermediate boundary.
  std::int32_t left_seg = -1;
  std::int32_t right_seg = -1;
};

/// One horizontal band of the decomposition.
struct Band {
  Coord y0, y1;
  std::vector<BandInterval> intervals;  ///< sorted left to right, disjoint
};

/// Statistics of one engine run, for the T4 benchmark.
struct BooleanStats {
  std::size_t input_edges = 0;      ///< non-horizontal segments collected
  std::size_t split_edges = 0;      ///< segments after crossing subdivision
  std::size_t split_rounds = 0;     ///< fixpoint iterations needed
  std::size_t bands = 0;            ///< scanline bands produced
  std::size_t intervals = 0;        ///< inside intervals (= raw trapezoids)
};

/// Two-group polygon boolean engine. Add geometry, then query one result.
/// Querying does not consume the inputs; several ops may be queried.
class BooleanEngine {
 public:
  /// Adds a simple contour. Orientation is normalized to CCW, so every
  /// SimplePolygon added this way is solid; use add(const Polygon&) for
  /// holes.
  void add(const SimplePolygon& poly, int group = 0);

  /// Adds a polygon with holes (outer CCW, holes CW — normalized by
  /// Polygon itself).
  void add(const Polygon& poly, int group = 0);

  void add(const Box& box, int group = 0);

  void add(const Trapezoid& trap, int group = 0);

  /// Adds a contour preserving its given orientation (CCW adds +1 winding
  /// inside, CW adds -1). Needed by sizing, where offset contours may invert
  /// and the inverted orientation must cancel rather than be re-normalized.
  void add_raw(const SimplePolygon& contour, int group = 0);

  /// Runs the sweep and returns the band decomposition of the result.
  std::vector<Band> bands(BoolOp op) const;

  /// Result as trapezoids. With @p merge_vertical, collinear trapezoids in
  /// adjacent bands are fused (fewer figures — the fracture optimization
  /// measured in bench_fracture).
  std::vector<Trapezoid> trapezoids(BoolOp op, bool merge_vertical = true) const;

  /// Result as polygons with holes (boundary stitching over the bands).
  std::vector<Polygon> polygons(BoolOp op) const;

  /// Stats of the most recent bands()/trapezoids()/polygons() call.
  const BooleanStats& stats() const { return stats_; }

  bool empty() const { return segs_.empty(); }

 private:
  struct Seg {
    Point lo, hi;        // lo.y < hi.y
    std::int8_t weight;  // +1 original edge pointed up, -1 down
    std::int8_t group;   // 0 = A, 1 = B
  };

  void add_contour(const SimplePolygon& poly, int group, bool as_given);

  std::vector<Seg> split_segments() const;

  std::vector<Seg> segs_;
  mutable BooleanStats stats_;
};

/// Merges vertically adjacent collinear trapezoids in a band list.
/// Exposed for fracture-strategy experiments.
std::vector<Trapezoid> merge_trapezoids_vertically(const std::vector<Band>& bands);

/// Flat list of per-band trapezoids without vertical merging.
std::vector<Trapezoid> band_trapezoids(const std::vector<Band>& bands);

/// Reconstructs polygons-with-holes from a band decomposition.
/// Defined in stitch.cpp.
std::vector<Polygon> stitch_bands(const std::vector<Band>& bands);

}  // namespace ebl
