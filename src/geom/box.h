// Axis-aligned bounding box with an explicit empty state.
#pragma once

#include <algorithm>
#include <limits>
#include <ostream>

#include "geom/point.h"

namespace ebl {

/// Closed axis-aligned rectangle [lo.x,hi.x] × [lo.y,hi.y].
/// Default-constructed boxes are empty; operator+= grows to enclose.
struct Box {
  Point lo{std::numeric_limits<Coord>::max(), std::numeric_limits<Coord>::max()};
  Point hi{std::numeric_limits<Coord>::min(), std::numeric_limits<Coord>::min()};

  constexpr Box() = default;
  constexpr Box(Point a, Point b)
      : lo{std::min(a.x, b.x), std::min(a.y, b.y)},
        hi{std::max(a.x, b.x), std::max(a.y, b.y)} {}
  constexpr Box(Coord x0, Coord y0, Coord x1, Coord y1) : Box(Point{x0, y0}, Point{x1, y1}) {}

  constexpr bool empty() const { return lo.x > hi.x || lo.y > hi.y; }
  constexpr Coord64 width() const { return empty() ? 0 : Coord64(hi.x) - lo.x; }
  constexpr Coord64 height() const { return empty() ? 0 : Coord64(hi.y) - lo.y; }
  constexpr Wide area() const { return Wide(width()) * height(); }
  constexpr Point center() const {
    return {static_cast<Coord>((Coord64(lo.x) + hi.x) / 2),
            static_cast<Coord>((Coord64(lo.y) + hi.y) / 2)};
  }

  /// Grows to enclose @p p.
  constexpr Box& operator+=(Point p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    return *this;
  }

  /// Grows to enclose @p other.
  constexpr Box& operator+=(const Box& other) {
    if (other.empty()) return *this;
    *this += other.lo;
    *this += other.hi;
    return *this;
  }

  constexpr bool contains(Point p) const {
    return !empty() && p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  constexpr bool contains(const Box& b) const {
    return !b.empty() && contains(b.lo) && contains(b.hi);
  }

  /// True when the closed boxes share at least one point.
  constexpr bool touches(const Box& b) const {
    return !empty() && !b.empty() && lo.x <= b.hi.x && b.lo.x <= hi.x &&
           lo.y <= b.hi.y && b.lo.y <= hi.y;
  }

  /// Intersection; empty box when disjoint.
  constexpr Box operator&(const Box& b) const {
    if (!touches(b)) return Box{};
    Box r;
    r.lo = {std::max(lo.x, b.lo.x), std::max(lo.y, b.lo.y)};
    r.hi = {std::min(hi.x, b.hi.x), std::min(hi.y, b.hi.y)};
    return r;
  }

  /// Box grown by @p margin on all sides (clamped to coordinate range).
  constexpr Box bloated(Coord margin) const {
    if (empty()) return *this;
    Box r = *this;
    r.lo.x = static_cast<Coord>(std::max<Coord64>(Coord64(lo.x) - margin,
                                                  std::numeric_limits<Coord>::min()));
    r.lo.y = static_cast<Coord>(std::max<Coord64>(Coord64(lo.y) - margin,
                                                  std::numeric_limits<Coord>::min()));
    r.hi.x = static_cast<Coord>(std::min<Coord64>(Coord64(hi.x) + margin,
                                                  std::numeric_limits<Coord>::max()));
    r.hi.y = static_cast<Coord>(std::min<Coord64>(Coord64(hi.y) + margin,
                                                  std::numeric_limits<Coord>::max()));
    return r;
  }

  friend constexpr bool operator==(const Box&, const Box&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    if (b.empty()) return os << "[empty]";
    return os << '[' << b.lo << ".." << b.hi << ']';
  }
};

}  // namespace ebl
