// Coordinate types for the integer geometry kernel.
//
// All layout geometry lives on an integer database grid (GDSII convention,
// typically 1 dbu = 1 nm). Coordinates are 32-bit; differences and doubled
// areas need 64 bits; cross products of 64-bit differences need 128 bits.
// Using exact integer arithmetic everywhere makes the boolean/fracture
// engines robust — there is no epsilon tuning anywhere in the kernel.
#pragma once

#include <cstdint>

namespace ebl {

/// Database-unit coordinate (signed 32-bit, GDSII compatible).
using Coord = std::int32_t;

/// 64-bit intermediate for coordinate differences and products.
using Coord64 = std::int64_t;

/// 128-bit intermediate for cross products of 64-bit values.
using Wide = __int128;

/// Doubled polygon areas (shoelace sums) in dbu².
using Area2 = Wide;

/// Database units per micron used throughout examples/benches (1 dbu = 1 nm).
inline constexpr double kDbuPerMicron = 1000.0;

/// Converts microns to database units (rounds to nearest).
constexpr Coord dbu(double microns) {
  const double v = microns * kDbuPerMicron;
  return static_cast<Coord>(v >= 0 ? v + 0.5 : v - 0.5);
}

/// Converts database units to microns.
constexpr double microns(Coord64 c) { return static_cast<double>(c) / kDbuPerMicron; }

}  // namespace ebl
