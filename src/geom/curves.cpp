#include "geom/curves.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contracts.h"

namespace ebl {
namespace {

Point on_circle(Point c, double r, double angle) {
  return {static_cast<Coord>(c.x + std::lround(r * std::cos(angle))),
          static_cast<Coord>(c.y + std::lround(r * std::sin(angle)))};
}

}  // namespace

int circle_segments(double radius, double tolerance) {
  expects(radius > 0, "circle_segments: radius must be positive");
  expects(tolerance > 0, "circle_segments: tolerance must be positive");
  if (tolerance >= radius) return 8;
  const double theta = 2.0 * std::acos(1.0 - tolerance / radius);
  const int n = static_cast<int>(std::ceil(2.0 * std::numbers::pi / theta));
  return std::max(n, 8);
}

SimplePolygon circle(Point center, Coord radius, double tolerance) {
  expects(radius > 0, "circle: radius must be positive");
  const int n = circle_segments(radius, tolerance);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi * i / n;
    pts.push_back(on_circle(center, radius, a));
  }
  return SimplePolygon{std::move(pts)}.normalized();
}

Polygon ring(Point center, Coord r_in, Coord r_out, double tolerance) {
  expects(r_in > 0 && r_out > r_in, "ring: requires 0 < r_in < r_out");
  SimplePolygon outer = circle(center, r_out, tolerance);
  SimplePolygon inner = circle(center, r_in, tolerance);
  return Polygon{std::move(outer), {inner.reversed()}};
}

SimplePolygon ring_sector(Point center, Coord r_in, Coord r_out, double a0, double a1,
                          double tolerance) {
  expects(r_out > 0 && r_in >= 0 && r_out > r_in, "ring_sector: bad radii");
  expects(a1 > a0 && a1 - a0 <= 2.0 * std::numbers::pi + 1e-12, "ring_sector: bad angles");
  const int n_full = circle_segments(r_out, tolerance);
  const int n = std::max(2, static_cast<int>(std::ceil(n_full * (a1 - a0) /
                                                       (2.0 * std::numbers::pi))));
  std::vector<Point> pts;
  // Outer arc CCW.
  for (int i = 0; i <= n; ++i)
    pts.push_back(on_circle(center, r_out, a0 + (a1 - a0) * i / n));
  if (r_in > 0) {
    // Inner arc back (CW in angle).
    for (int i = n; i >= 0; --i)
      pts.push_back(on_circle(center, r_in, a0 + (a1 - a0) * i / n));
  } else {
    pts.push_back(center);
  }
  return SimplePolygon{std::move(pts)}.normalized();
}

SimplePolygon regular_polygon(Point center, Coord radius, int n, double phase) {
  expects(n >= 3, "regular_polygon: n >= 3");
  expects(radius > 0, "regular_polygon: radius must be positive");
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pts.push_back(on_circle(center, radius, phase + 2.0 * std::numbers::pi * i / n));
  return SimplePolygon{std::move(pts)}.normalized();
}

}  // namespace ebl
