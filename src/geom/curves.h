// Flattening of curved shapes to grid polygons.
//
// E-beam layouts contain circles, rings (Fresnel-zone-plate zones!), and arc
// sectors; machines only understand polygons/trapezoids, so curves are
// flattened with a sagitta (chord deviation) tolerance.
#pragma once

#include "geom/polygon.h"

namespace ebl {

/// Number of chord segments needed so a circle of @p radius dbu deviates
/// from its chords by at most @p tolerance dbu. At least 8.
int circle_segments(double radius, double tolerance);

/// Closed CCW polygon approximating a circle.
/// @p tolerance is the maximum chord sagitta in dbu.
SimplePolygon circle(Point center, Coord radius, double tolerance = 1.0);

/// Annulus (ring) r_in < r_out as a polygon with a hole.
/// Precondition: 0 < r_in < r_out.
Polygon ring(Point center, Coord r_in, Coord r_out, double tolerance = 1.0);

/// Pie/arc sector of the annulus between angles a0 and a1 (radians, CCW,
/// a1 > a0, a1 - a0 <= 2*pi). r_in may be 0 (pie slice).
SimplePolygon ring_sector(Point center, Coord r_in, Coord r_out, double a0, double a1,
                          double tolerance = 1.0);

/// Regular n-gon inscribed in the circle of @p radius (vertex at angle
/// @p phase).
SimplePolygon regular_polygon(Point center, Coord radius, int n, double phase = 0.0);

}  // namespace ebl
