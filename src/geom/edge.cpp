#include "geom/edge.h"

#include <algorithm>

#include "util/contracts.h"

namespace ebl {
namespace {

// Projects collinear point p onto the parameter axis of e (the dominant
// coordinate), so collinear overlap reduces to 1-D interval arithmetic.
Coord64 axis_value(const Edge& e, Point p) {
  const bool use_x = std::abs(Coord64(e.b.x) - e.a.x) >= std::abs(Coord64(e.b.y) - e.a.y);
  return use_x ? p.x : p.y;
}

}  // namespace

SegCross classify_intersection(const Edge& e, const Edge& f) {
  if (!e.bbox().touches(f.bbox())) return SegCross::none;

  const int d1 = e.side_of(f.a);
  const int d2 = e.side_of(f.b);
  const int d3 = f.side_of(e.a);
  const int d4 = f.side_of(e.b);

  if (d1 == 0 && d2 == 0) {
    // Collinear. Order both on the dominant axis of e.
    Coord64 e0 = axis_value(e, e.a), e1 = axis_value(e, e.b);
    Coord64 f0 = axis_value(e, f.a), f1 = axis_value(e, f.b);
    if (e0 > e1) std::swap(e0, e1);
    if (f0 > f1) std::swap(f0, f1);
    const Coord64 lo = std::max(e0, f0);
    const Coord64 hi = std::min(e1, f1);
    if (lo > hi) return SegCross::none;
    if (lo == hi) return SegCross::touch;
    return SegCross::overlap;
  }

  if (d1 * d2 < 0 && d3 * d4 < 0) return SegCross::proper;

  // Touch: an endpoint of one lies on the other (closed segments).
  if ((d1 == 0 && e.contains(f.a)) || (d2 == 0 && e.contains(f.b)) ||
      (d3 == 0 && f.contains(e.a)) || (d4 == 0 && f.contains(e.b)))
    return SegCross::touch;

  return SegCross::none;
}

Point intersection_point(const Edge& e, const Edge& f) {
  // Solve e.a + t * (e.b - e.a) = f.a + u * (f.b - f.a) with exact integers,
  // then round the rational result to the nearest grid point.
  const Coord64 rx = Coord64(e.b.x) - e.a.x;
  const Coord64 ry = Coord64(e.b.y) - e.a.y;
  const Coord64 sx = Coord64(f.b.x) - f.a.x;
  const Coord64 sy = Coord64(f.b.y) - f.a.y;
  const Wide denom = Wide(rx) * sy - Wide(ry) * sx;
  expects(denom != 0, "intersection_point on parallel segments");

  const Coord64 qpx = Coord64(f.a.x) - e.a.x;
  const Coord64 qpy = Coord64(f.a.y) - e.a.y;
  const Wide t_num = Wide(qpx) * sy - Wide(qpy) * sx;

  // x = e.a.x + t*rx with t = t_num/denom — round to nearest, ties away from 0.
  auto round_div = [](Wide num, Wide den) -> Coord64 {
    if (den < 0) { num = -num; den = -den; }
    const Wide half = den / 2;
    if (num >= 0) return static_cast<Coord64>((num + half) / den);
    return static_cast<Coord64>(-(((-num) + half) / den));
  };

  const Coord64 x = e.a.x + round_div(t_num * rx, denom);
  const Coord64 y = e.a.y + round_div(t_num * ry, denom);
  return {static_cast<Coord>(x), static_cast<Coord>(y)};
}

std::pair<Point, Point> overlap_span(const Edge& e, const Edge& f) {
  Point pts[4] = {e.a, e.b, f.a, f.b};
  // Sort along the dominant axis of e; the middle two bound the overlap.
  std::sort(pts, pts + 4, [&](Point a, Point b) {
    const Coord64 va = axis_value(e, a);
    const Coord64 vb = axis_value(e, b);
    if (va != vb) return va < vb;
    return a < b;
  });
  return {pts[1], pts[2]};
}

}  // namespace ebl
