// Directed line segments with exact intersection predicates.
#pragma once

#include <optional>
#include <ostream>

#include "geom/box.h"
#include "geom/point.h"

namespace ebl {

/// Directed segment from a to b.
struct Edge {
  Point a;
  Point b;

  constexpr Edge() = default;
  constexpr Edge(Point pa, Point pb) : a(pa), b(pb) {}

  constexpr bool degenerate() const { return a == b; }
  constexpr bool horizontal() const { return a.y == b.y; }
  constexpr bool vertical() const { return a.x == b.x; }
  constexpr Edge reversed() const { return {b, a}; }
  constexpr Box bbox() const { return Box{a, b}; }

  /// Exact side test: >0 when p is left of the directed edge, <0 right,
  /// 0 collinear.
  constexpr int side_of(Point p) const { return sign(cross(a, b, p)); }

  /// True when p lies on the closed segment.
  constexpr bool contains(Point p) const {
    if (side_of(p) != 0) return false;
    return bbox().contains(p);
  }

  friend constexpr bool operator==(const Edge&, const Edge&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Edge& e) {
    return os << e.a << "->" << e.b;
  }
};

/// How two segments intersect.
enum class SegCross {
  none,        ///< disjoint
  proper,      ///< cross at a single interior point of both
  touch,       ///< share a single point that is an endpoint of at least one
  overlap,     ///< collinear with a shared sub-segment
};

/// Exact classification of the intersection of closed segments.
SegCross classify_intersection(const Edge& e, const Edge& f);

/// Intersection point of two properly crossing (or touching) non-collinear
/// segments, rounded to the nearest database grid point.
/// Precondition: classify_intersection(e, f) is proper or touch, and the
/// segments are not collinear.
Point intersection_point(const Edge& e, const Edge& f);

/// For collinear overlapping segments, the endpoints of the shared
/// sub-segment (ordered). Precondition: classification is overlap.
std::pair<Point, Point> overlap_span(const Edge& e, const Edge& f);

}  // namespace ebl
