// Integer point/vector type with exact predicates.
#pragma once

#include <compare>
#include <cstdlib>
#include <functional>
#include <ostream>

#include "geom/coord.h"

namespace ebl {

/// A point (or displacement vector) on the database grid.
struct Point {
  Coord x = 0;
  Coord y = 0;

  constexpr Point() = default;
  constexpr Point(Coord px, Coord py) : x(px), y(py) {}

  friend constexpr Point operator+(Point a, Point b) {
    return {static_cast<Coord>(a.x + b.x), static_cast<Coord>(a.y + b.y)};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {static_cast<Coord>(a.x - b.x), static_cast<Coord>(a.y - b.y)};
  }
  constexpr Point operator-() const {
    return {static_cast<Coord>(-x), static_cast<Coord>(-y)};
  }
  friend constexpr bool operator==(Point a, Point b) = default;
  /// Lexicographic (y, then x) — the scanline order.
  friend constexpr auto operator<=>(Point a, Point b) {
    if (auto c = a.y <=> b.y; c != 0) return c;
    return a.x <=> b.x;
  }

  friend std::ostream& operator<<(std::ostream& os, Point p) {
    return os << '(' << p.x << ',' << p.y << ')';
  }
};

/// Exact cross product (b-a) × (c-a). Sign gives orientation:
/// >0 left turn (CCW), <0 right turn, 0 collinear.
constexpr Wide cross(Point a, Point b, Point c) {
  const Coord64 abx = Coord64(b.x) - a.x;
  const Coord64 aby = Coord64(b.y) - a.y;
  const Coord64 acx = Coord64(c.x) - a.x;
  const Coord64 acy = Coord64(c.y) - a.y;
  return Wide(abx) * acy - Wide(aby) * acx;
}

/// Exact dot product (b-a) · (c-a).
constexpr Wide dot(Point a, Point b, Point c) {
  const Coord64 abx = Coord64(b.x) - a.x;
  const Coord64 aby = Coord64(b.y) - a.y;
  const Coord64 acx = Coord64(c.x) - a.x;
  const Coord64 acy = Coord64(c.y) - a.y;
  return Wide(abx) * acx + Wide(aby) * acy;
}

/// -1 / 0 / +1 sign of a wide integer.
constexpr int sign(Wide v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

/// Squared Euclidean distance (exact, 64-bit safe for full coord range).
constexpr Wide distance2(Point a, Point b) {
  const Coord64 dx = Coord64(a.x) - b.x;
  const Coord64 dy = Coord64(a.y) - b.y;
  return Wide(dx) * dx + Wide(dy) * dy;
}

/// Manhattan distance.
constexpr Coord64 manhattan(Point a, Point b) {
  const Coord64 dx = Coord64(a.x) - b.x;
  const Coord64 dy = Coord64(a.y) - b.y;
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

struct PointHash {
  std::size_t operator()(Point p) const {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x)) << 32) |
        static_cast<std::uint32_t>(p.y);
    // splitmix64 finalizer
    std::uint64_t z = k + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace ebl
