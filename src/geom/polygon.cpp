#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace ebl {

SimplePolygon::SimplePolygon(std::vector<Point> points) : pts_(std::move(points)) {}

SimplePolygon SimplePolygon::rect(const Box& b) {
  expects(!b.empty(), "SimplePolygon::rect on empty box");
  return SimplePolygon{{{b.lo.x, b.lo.y}, {b.hi.x, b.lo.y}, {b.hi.x, b.hi.y}, {b.lo.x, b.hi.y}}};
}

Box SimplePolygon::bbox() const {
  Box b;
  for (Point p : pts_) b += p;
  return b;
}

Area2 SimplePolygon::doubled_signed_area() const {
  if (pts_.size() < 3) return 0;
  Area2 sum = 0;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    const Point a = pts_[i];
    const Point b = pts_[(i + 1) % pts_.size()];
    sum += Wide(Coord64(a.x)) * b.y - Wide(Coord64(b.x)) * a.y;
  }
  return sum;
}

double SimplePolygon::area() const {
  Area2 a2 = doubled_signed_area();
  if (a2 < 0) a2 = -a2;
  return static_cast<double>(a2) / 2.0;
}

double SimplePolygon::perimeter() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < pts_.size(); ++i)
    sum += std::sqrt(static_cast<double>(distance2(pts_[i], pts_[(i + 1) % pts_.size()])));
  return sum;
}

bool SimplePolygon::is_rectilinear() const {
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    const Edge e = edge(i);
    if (!e.horizontal() && !e.vertical()) return false;
  }
  return true;
}

bool SimplePolygon::contains(Point p) const {
  if (pts_.size() < 3) return false;
  int winding = 0;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    const Point a = pts_[i];
    const Point b = pts_[(i + 1) % pts_.size()];
    if (Edge{a, b}.contains(p)) return true;  // boundary counts as inside
    if (a.y <= p.y) {
      if (b.y > p.y && cross(a, b, p) > 0) ++winding;
    } else {
      if (b.y <= p.y && cross(a, b, p) < 0) --winding;
    }
  }
  return winding != 0;
}

SimplePolygon SimplePolygon::normalized() const {
  // Drop consecutive duplicates and collinear midpoints.
  std::vector<Point> clean;
  clean.reserve(pts_.size());
  const std::size_t n = pts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point prev = pts_[(i + n - 1) % n];
    const Point cur = pts_[i];
    const Point next = pts_[(i + 1) % n];
    if (cur == prev) continue;
    if (cross(prev, cur, next) == 0 && dot(cur, prev, next) < 0) continue;  // straight through
    clean.push_back(cur);
  }
  // A second pass can be needed when removals create new collinearity.
  bool changed = true;
  while (changed && clean.size() >= 3) {
    changed = false;
    std::vector<Point> next_pass;
    const std::size_t m = clean.size();
    for (std::size_t i = 0; i < m; ++i) {
      const Point prev = clean[(i + m - 1) % m];
      const Point cur = clean[i];
      const Point next = clean[(i + 1) % m];
      if (cur == prev || (cross(prev, cur, next) == 0 && dot(cur, prev, next) <= 0)) {
        changed = true;
        continue;
      }
      next_pass.push_back(cur);
    }
    clean = std::move(next_pass);
  }
  if (clean.size() < 3) return SimplePolygon{};

  SimplePolygon result{std::move(clean)};
  if (!result.is_ccw()) result = result.reversed();

  // Rotate so the smallest vertex is first.
  auto& v = result.pts_;
  const auto smallest = std::min_element(v.begin(), v.end());
  std::rotate(v.begin(), smallest, v.end());
  return result;
}

SimplePolygon SimplePolygon::reversed() const {
  std::vector<Point> r(pts_.rbegin(), pts_.rend());
  return SimplePolygon{std::move(r)};
}

SimplePolygon SimplePolygon::transformed(const Trans& t) const {
  std::vector<Point> r;
  r.reserve(pts_.size());
  for (Point p : pts_) r.push_back(t(p));
  return SimplePolygon{std::move(r)};
}

SimplePolygon SimplePolygon::transformed(const CTrans& t) const {
  std::vector<Point> r;
  r.reserve(pts_.size());
  for (Point p : pts_) r.push_back(t(p));
  return SimplePolygon{std::move(r)};
}

std::ostream& operator<<(std::ostream& os, const SimplePolygon& p) {
  os << "poly{";
  for (std::size_t i = 0; i < p.pts_.size(); ++i) {
    if (i) os << ' ';
    os << p.pts_[i];
  }
  return os << '}';
}

Polygon::Polygon(SimplePolygon outer, std::vector<SimplePolygon> holes)
    : outer_(std::move(outer)), holes_(std::move(holes)) {
  if (!outer_.empty() && !outer_.is_ccw()) outer_ = outer_.reversed();
  for (auto& h : holes_) {
    if (!h.empty() && h.is_ccw()) h = h.reversed();
  }
}

Area2 Polygon::doubled_area() const {
  Area2 a = outer_.doubled_signed_area();  // positive (CCW)
  for (const auto& h : holes_) a += h.doubled_signed_area();  // negative (CW)
  return a;
}

double Polygon::area() const { return static_cast<double>(doubled_area()) / 2.0; }

std::size_t Polygon::vertex_count() const {
  std::size_t n = outer_.size();
  for (const auto& h : holes_) n += h.size();
  return n;
}

bool Polygon::contains(Point p) const {
  if (!outer_.contains(p)) return false;
  for (const auto& h : holes_) {
    // Inside a hole (but not on its boundary) means outside the polygon.
    bool on_boundary = false;
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (h.edge(i).contains(p)) { on_boundary = true; break; }
    }
    if (!on_boundary && h.contains(p)) return false;
  }
  return true;
}

Polygon Polygon::transformed(const Trans& t) const {
  std::vector<SimplePolygon> hs;
  hs.reserve(holes_.size());
  for (const auto& h : holes_) hs.push_back(h.transformed(t));
  return Polygon{outer_.transformed(t), std::move(hs)};
}

Polygon Polygon::transformed(const CTrans& t) const {
  std::vector<SimplePolygon> hs;
  hs.reserve(holes_.size());
  for (const auto& h : holes_) hs.push_back(h.transformed(t));
  return Polygon{outer_.transformed(t), std::move(hs)};
}

std::ostream& operator<<(std::ostream& os, const Polygon& p) {
  os << p.outer_;
  for (const auto& h : p.holes_) os << " hole:" << h;
  return os;
}

}  // namespace ebl
