// Simple polygons and polygons-with-holes on the database grid.
#pragma once

#include <ostream>
#include <span>
#include <vector>

#include "geom/box.h"
#include "geom/edge.h"
#include "geom/point.h"
#include "geom/transform.h"

namespace ebl {

/// A simple (non-self-intersecting by convention) closed polygon.
/// The contour is stored without a repeated closing point.
/// Orientation is free; normalized() makes it counter-clockwise.
class SimplePolygon {
 public:
  SimplePolygon() = default;
  explicit SimplePolygon(std::vector<Point> points);

  /// Axis-aligned rectangle helper.
  static SimplePolygon rect(const Box& b);
  static SimplePolygon rect(Coord x0, Coord y0, Coord x1, Coord y1) {
    return rect(Box{x0, y0, x1, y1});
  }

  std::span<const Point> points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }
  Point operator[](std::size_t i) const { return pts_[i]; }

  /// Edge i runs from vertex i to vertex (i+1) mod n.
  Edge edge(std::size_t i) const {
    return {pts_[i], pts_[(i + 1) % pts_.size()]};
  }

  Box bbox() const;

  /// Doubled signed area (shoelace); positive for CCW contours. Exact.
  Area2 doubled_signed_area() const;

  /// |area| in dbu² as double (may lose precision beyond 2^53 dbu²).
  double area() const;

  /// True when the contour is counter-clockwise (positive area).
  bool is_ccw() const { return doubled_signed_area() > 0; }

  /// Perimeter length in dbu.
  double perimeter() const;

  /// True for axis-parallel contours.
  bool is_rectilinear() const;

  /// Winding-number point test (exact). Points on the boundary are inside.
  bool contains(Point p) const;

  /// Copy with duplicate/collinear vertices removed, oriented CCW, and
  /// rotated so the lexicographically smallest vertex comes first.
  /// Canonical form: equal regions compare equal.
  SimplePolygon normalized() const;

  /// Copy with reversed orientation.
  SimplePolygon reversed() const;

  SimplePolygon transformed(const Trans& t) const;
  SimplePolygon transformed(const CTrans& t) const;

  friend bool operator==(const SimplePolygon&, const SimplePolygon&) = default;

  friend std::ostream& operator<<(std::ostream& os, const SimplePolygon& p);

 private:
  std::vector<Point> pts_;
};

/// Polygon with holes: one CCW outer contour plus CW hole contours.
/// (Orientations are normalized on construction.)
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(SimplePolygon outer, std::vector<SimplePolygon> holes = {});
  static Polygon rect(const Box& b) { return Polygon{SimplePolygon::rect(b)}; }

  const SimplePolygon& outer() const { return outer_; }
  std::span<const SimplePolygon> holes() const { return holes_; }
  bool empty() const { return outer_.empty(); }

  Box bbox() const { return outer_.bbox(); }

  /// Exact doubled area: outer minus holes.
  Area2 doubled_area() const;
  double area() const;

  /// Total vertex count across all contours.
  std::size_t vertex_count() const;

  /// Point test honoring holes (boundary points count as inside the
  /// contour that owns them).
  bool contains(Point p) const;

  Polygon transformed(const Trans& t) const;
  Polygon transformed(const CTrans& t) const;

  friend bool operator==(const Polygon&, const Polygon&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Polygon& p);

 private:
  SimplePolygon outer_;
  std::vector<SimplePolygon> holes_;
};

}  // namespace ebl
