#include "geom/polygon_set.h"

#include <algorithm>

#include "geom/sizing.h"
#include "util/contracts.h"

namespace ebl {

PolygonSet PolygonSet::from_simple(const std::vector<SimplePolygon>& contours) {
  PolygonSet s;
  for (const auto& c : contours) s.insert(c);
  return s;
}

void PolygonSet::insert(const PolygonSet& other) {
  polys_.insert(polys_.end(), other.polys_.begin(), other.polys_.end());
}

Box PolygonSet::bbox() const {
  Box b;
  for (const auto& p : polys_) b += p.bbox();
  return b;
}

std::size_t PolygonSet::vertex_count() const {
  std::size_t n = 0;
  for (const auto& p : polys_) n += p.vertex_count();
  return n;
}

double PolygonSet::raw_area() const {
  double a = 0.0;
  for (const auto& p : polys_) a += p.area();
  return a;
}

double PolygonSet::area() const {
  if (polys_.empty()) return 0.0;
  BooleanEngine eng;
  for (const auto& p : polys_) eng.add(p, 0);
  double a = 0.0;
  for (const Band& b : eng.bands(BoolOp::Or)) {
    for (const BandInterval& iv : b.intervals) {
      const Trapezoid t{b.y0, b.y1, iv.xl0, iv.xr0, iv.xl1, iv.xr1};
      a += t.area();
    }
  }
  return a;
}

bool PolygonSet::contains(Point p) const {
  return std::any_of(polys_.begin(), polys_.end(),
                     [&](const Polygon& poly) { return poly.contains(p); });
}

PolygonSet PolygonSet::merged() const {
  if (polys_.empty()) return {};
  BooleanEngine eng;
  for (const auto& p : polys_) eng.add(p, 0);
  return PolygonSet{eng.polygons(BoolOp::Or)};
}

PolygonSet PolygonSet::binary(const PolygonSet& other, BoolOp op) const {
  BooleanEngine eng;
  for (const auto& p : polys_) eng.add(p, 0);
  for (const auto& p : other.polys_) eng.add(p, 1);
  return PolygonSet{eng.polygons(op)};
}

PolygonSet PolygonSet::united(const PolygonSet& other) const {
  return binary(other, BoolOp::Or);
}
PolygonSet PolygonSet::intersected(const PolygonSet& other) const {
  return binary(other, BoolOp::And);
}
PolygonSet PolygonSet::subtracted(const PolygonSet& other) const {
  return binary(other, BoolOp::Sub);
}
PolygonSet PolygonSet::xored(const PolygonSet& other) const {
  return binary(other, BoolOp::Xor);
}

PolygonSet PolygonSet::sized(Coord delta) const { return size_polygons(*this, delta); }

std::vector<Band> PolygonSet::bands() const {
  BooleanEngine eng;
  for (const auto& p : polys_) eng.add(p, 0);
  return eng.bands(BoolOp::Or);
}

std::vector<Trapezoid> PolygonSet::trapezoids(bool merge_vertical) const {
  BooleanEngine eng;
  for (const auto& p : polys_) eng.add(p, 0);
  return eng.trapezoids(BoolOp::Or, merge_vertical);
}

PolygonSet PolygonSet::transformed(const Trans& t) const {
  std::vector<Polygon> r;
  r.reserve(polys_.size());
  for (const auto& p : polys_) r.push_back(p.transformed(t));
  return PolygonSet{std::move(r)};
}

}  // namespace ebl
