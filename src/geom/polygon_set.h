// PolygonSet — the workhorse region type of the data-prep flow.
//
// A PolygonSet is a collection of polygons interpreted as a point set (the
// union of its members, by nonzero winding). Boolean operators, sizing and
// fracturing all work on PolygonSets; results are returned as new sets.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "geom/boolean.h"
#include "geom/polygon.h"
#include "geom/trapezoid.h"

namespace ebl {

class PolygonSet {
 public:
  PolygonSet() = default;
  explicit PolygonSet(std::vector<Polygon> polys) : polys_(std::move(polys)) {}
  PolygonSet(std::initializer_list<Polygon> polys) : polys_(polys) {}
  static PolygonSet from_simple(const std::vector<SimplePolygon>& contours);

  void insert(Polygon p) { polys_.push_back(std::move(p)); }
  void insert(const SimplePolygon& p) { polys_.emplace_back(p); }
  void insert(const Box& b) { polys_.push_back(Polygon::rect(b)); }
  void insert(const Trapezoid& t) { polys_.emplace_back(t.to_polygon()); }
  void insert(const PolygonSet& other);

  std::span<const Polygon> polygons() const { return polys_; }
  bool empty() const { return polys_.empty(); }
  std::size_t size() const { return polys_.size(); }

  Box bbox() const;

  /// Total vertex count over all members.
  std::size_t vertex_count() const;

  /// Exact area of the merged point set (overlaps counted once).
  double area() const;

  /// Sum of member areas (overlaps counted multiply) — cheap, no merge.
  double raw_area() const;

  /// Point test against the merged region.
  bool contains(Point p) const;

  /// Canonical merged form (union of members, overlaps dissolved).
  PolygonSet merged() const;

  PolygonSet united(const PolygonSet& other) const;
  PolygonSet intersected(const PolygonSet& other) const;
  PolygonSet subtracted(const PolygonSet& other) const;
  PolygonSet xored(const PolygonSet& other) const;

  /// Isotropic sizing by @p delta dbu (positive grows, negative shrinks).
  /// Self-intersections of the offset contours are resolved by a merge.
  PolygonSet sized(Coord delta) const;

  /// Band decomposition of the merged region.
  std::vector<Band> bands() const;

  /// Trapezoid decomposition (the fracture primitive).
  std::vector<Trapezoid> trapezoids(bool merge_vertical = true) const;

  PolygonSet transformed(const Trans& t) const;

 private:
  PolygonSet binary(const PolygonSet& other, BoolOp op) const;

  std::vector<Polygon> polys_;
};

}  // namespace ebl
