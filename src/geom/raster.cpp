#include "geom/raster.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace ebl {
namespace {

struct DPt {
  double x, y;
};

// Sutherland–Hodgman clip of a convex polygon against an axis-aligned
// half-plane. keep(p) must be convex-friendly (half-plane predicate).
template <typename Keep, typename Intersect>
void clip_halfplane(std::vector<DPt>& poly, std::vector<DPt>& scratch, Keep keep,
                    Intersect intersect) {
  scratch.clear();
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const DPt a = poly[i];
    const DPt b = poly[(i + 1) % n];
    const bool ka = keep(a);
    const bool kb = keep(b);
    if (ka) scratch.push_back(a);
    if (ka != kb) scratch.push_back(intersect(a, b));
  }
  poly.swap(scratch);
}

double shoelace(const std::vector<DPt>& poly) {
  double s = 0.0;
  const std::size_t n = poly.size();
  for (std::size_t i = 0; i < n; ++i) {
    const DPt a = poly[i];
    const DPt b = poly[(i + 1) % n];
    s += a.x * b.y - b.x * a.y;
  }
  return 0.5 * s;
}

}  // namespace

Raster::Raster(const Box& frame, Coord pixel_size) : pix_(pixel_size) {
  expects(pixel_size > 0, "Raster: pixel size must be positive");
  expects(!frame.empty(), "Raster: frame must be non-empty");
  origin_ = frame.lo;
  nx_ = static_cast<int>((frame.width() + pixel_size - 1) / pixel_size);
  ny_ = static_cast<int>((frame.height() + pixel_size - 1) / pixel_size);
  nx_ = std::max(nx_, 1);
  ny_ = std::max(ny_, 1);
  data_.assign(static_cast<std::size_t>(nx_) * ny_, 0.0);
}

double& Raster::at(int ix, int iy) {
  expects(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_, "Raster::at out of range");
  return data_[static_cast<std::size_t>(iy) * nx_ + ix];
}

double Raster::at(int ix, int iy) const {
  expects(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_, "Raster::at out of range");
  return data_[static_cast<std::size_t>(iy) * nx_ + ix];
}

Point Raster::center(int ix, int iy) const {
  return {static_cast<Coord>(origin_.x + Coord64(ix) * pix_ + pix_ / 2),
          static_cast<Coord>(origin_.y + Coord64(iy) * pix_ + pix_ / 2)};
}

std::pair<int, int> Raster::index_of(Point p) const {
  auto clamp = [](Coord64 v, int hi) {
    return static_cast<int>(std::clamp<Coord64>(v, 0, hi - 1));
  };
  const Coord64 ix = (Coord64(p.x) - origin_.x) / pix_;
  const Coord64 iy = (Coord64(p.y) - origin_.y) / pix_;
  return {clamp(ix, nx_), clamp(iy, ny_)};
}

namespace {

// Shared clip core of add_coverage/visit_coverage: emit(ix, iy, fraction) for
// every overlapped pixel. Templated on the sink so the hot accumulation path
// keeps a direct call.
template <typename Emit>
void visit_coverage_impl(const Trapezoid& t, Point origin, Coord pix, int nx, int ny,
                         Emit&& emit) {
  if (!t.valid()) return;
  const Box bb = t.bbox();
  const double inv_area = 1.0 / (static_cast<double>(pix) * pix);

  const Coord64 gx0 = std::max<Coord64>((Coord64(bb.lo.x) - origin.x) / pix, 0);
  const Coord64 gy0 = std::max<Coord64>((Coord64(bb.lo.y) - origin.y) / pix, 0);
  const Coord64 gx1 = std::min<Coord64>((Coord64(bb.hi.x) - origin.x) / pix, nx - 1);
  const Coord64 gy1 = std::min<Coord64>((Coord64(bb.hi.y) - origin.y) / pix, ny - 1);
  if (gx0 > gx1 || gy0 > gy1) return;

  if (t.is_rect()) {
    // Axis-aligned fast path: coverage separates into a column overlap times
    // a row overlap, so each pixel costs two subtractions and a multiply
    // instead of a four-halfplane clip plus shoelace. The overlap widths are
    // differences of exactly-representable coordinates clamped to one pixel,
    // so the fraction is the exact covered area. This is the hot path of the
    // PEC splat-cache build (shots are overwhelmingly rectangles).
    static thread_local std::vector<double> colw_storage;
    std::vector<double>& colw = colw_storage;
    colw.resize(static_cast<std::size_t>(gx1 - gx0 + 1));
    for (Coord64 ix = gx0; ix <= gx1; ++ix) {
      const double px0 = static_cast<double>(origin.x) + static_cast<double>(ix) * pix;
      colw[static_cast<std::size_t>(ix - gx0)] =
          std::min(px0 + pix, double(t.xr0)) - std::max(px0, double(t.xl0));
    }
    for (Coord64 iy = gy0; iy <= gy1; ++iy) {
      const double py0 = static_cast<double>(origin.y) + static_cast<double>(iy) * pix;
      const double wy = std::min(py0 + pix, double(t.y1)) - std::max(py0, double(t.y0));
      if (wy <= 0.0) continue;
      for (Coord64 ix = gx0; ix <= gx1; ++ix) {
        const double wx = colw[static_cast<std::size_t>(ix - gx0)];
        if (wx <= 0.0) continue;
        emit(static_cast<int>(ix), static_cast<int>(iy), wx * wy * inv_area);
      }
    }
    return;
  }

  std::vector<DPt> poly;
  std::vector<DPt> scratch;
  for (Coord64 iy = gy0; iy <= gy1; ++iy) {
    const double py0 = static_cast<double>(origin.y) + static_cast<double>(iy) * pix;
    const double py1 = py0 + pix;
    for (Coord64 ix = gx0; ix <= gx1; ++ix) {
      const double px0 = static_cast<double>(origin.x) + static_cast<double>(ix) * pix;
      const double px1 = px0 + pix;

      poly.clear();
      poly.push_back({double(t.xl0), double(t.y0)});
      if (t.xr0 != t.xl0) poly.push_back({double(t.xr0), double(t.y0)});
      poly.push_back({double(t.xr1), double(t.y1)});
      if (t.xl1 != t.xr1) poly.push_back({double(t.xl1), double(t.y1)});

      clip_halfplane(poly, scratch, [&](DPt p) { return p.x >= px0; },
                     [&](DPt a, DPt b) {
                       const double s = (px0 - a.x) / (b.x - a.x);
                       return DPt{px0, a.y + s * (b.y - a.y)};
                     });
      if (poly.empty()) continue;
      clip_halfplane(poly, scratch, [&](DPt p) { return p.x <= px1; },
                     [&](DPt a, DPt b) {
                       const double s = (px1 - a.x) / (b.x - a.x);
                       return DPt{px1, a.y + s * (b.y - a.y)};
                     });
      if (poly.empty()) continue;
      clip_halfplane(poly, scratch, [&](DPt p) { return p.y >= py0; },
                     [&](DPt a, DPt b) {
                       const double s = (py0 - a.y) / (b.y - a.y);
                       return DPt{a.x + s * (b.x - a.x), py0};
                     });
      if (poly.empty()) continue;
      clip_halfplane(poly, scratch, [&](DPt p) { return p.y <= py1; },
                     [&](DPt a, DPt b) {
                       const double s = (py1 - a.y) / (b.y - a.y);
                       return DPt{a.x + s * (b.x - a.x), py1};
                     });
      if (poly.size() < 3) continue;

      const double covered = std::abs(shoelace(poly));
      if (covered <= 0.0) continue;
      emit(static_cast<int>(ix), static_cast<int>(iy), covered * inv_area);
    }
  }
}

}  // namespace

void Raster::add_coverage(const Trapezoid& t, double weight) {
  visit_coverage_impl(t, origin_, pix_, nx_, ny_, [&](int ix, int iy, double frac) {
    data_[static_cast<std::size_t>(iy) * nx_ + static_cast<std::size_t>(ix)] +=
        weight * frac;
  });
}

void Raster::visit_coverage(const Trapezoid& t,
                            const std::function<void(int, int, double)>& emit) const {
  visit_coverage_impl(t, origin_, pix_, nx_, ny_, emit);
}

double Raster::sample(double x, double y) const {
  const double fx = (x - origin_.x) / pix_ - 0.5;
  const double fy = (y - origin_.y) / pix_ - 0.5;
  const int ix = static_cast<int>(std::floor(fx));
  const int iy = static_cast<int>(std::floor(fy));
  const double tx = fx - ix;
  const double ty = fy - iy;
  auto value = [&](int px, int py) -> double {
    if (px < 0 || py < 0 || px >= nx_ || py >= ny_) return 0.0;
    return data_[static_cast<std::size_t>(py) * nx_ + px];
  };
  return (1 - tx) * (1 - ty) * value(ix, iy) + tx * (1 - ty) * value(ix + 1, iy) +
         (1 - tx) * ty * value(ix, iy + 1) + tx * ty * value(ix + 1, iy + 1);
}

void Raster::add_coverage(const std::vector<Trapezoid>& traps, double weight) {
  for (const auto& t : traps) add_coverage(t, weight);
}

double Raster::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Raster::max_value() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, v);
  return m;
}

}  // namespace ebl
