// Area-coverage rasterization of trapezoids onto a pixel grid.
//
// Used by the grid-based PEC style and the exposure simulator: each pixel
// accumulates the exact covered-area fraction of the geometry (anti-aliased
// coverage, not point sampling), so downstream dose integrals conserve area.
#pragma once

#include <functional>
#include <vector>

#include "geom/box.h"
#include "geom/trapezoid.h"

namespace ebl {

/// Dense raster of doubles over a pixel grid aligned to the database grid.
class Raster {
 public:
  /// Grid covering @p frame with square pixels of @p pixel_size dbu.
  /// The frame is expanded to a whole number of pixels.
  Raster(const Box& frame, Coord pixel_size);

  int width() const { return nx_; }
  int height() const { return ny_; }
  Coord pixel_size() const { return pix_; }
  Point origin() const { return origin_; }

  double& at(int ix, int iy);
  double at(int ix, int iy) const;

  /// Pixel center in dbu.
  Point center(int ix, int iy) const;

  /// Pixel index containing the dbu point (clamped to the grid).
  std::pair<int, int> index_of(Point p) const;

  /// Bilinear interpolation of the pixel grid at a dbu point (pixel values
  /// are taken at pixel centers); pixels outside the grid contribute 0, so
  /// sampling anywhere is safe.
  double sample(double x, double y) const;

  /// Accumulates weight * (covered area fraction) of the trapezoid into every
  /// pixel it overlaps. Coverage is exact (convex clip + shoelace).
  void add_coverage(const Trapezoid& t, double weight = 1.0);

  /// Adds coverage for a whole list.
  void add_coverage(const std::vector<Trapezoid>& traps, double weight = 1.0);

  /// Invokes emit(ix, iy, covered_area_fraction) for every pixel the
  /// trapezoid overlaps, without mutating the raster — the primitive behind
  /// add_coverage, exposed so callers can cache a shape's sparse footprint
  /// (e.g. the PEC splat cache) instead of re-clipping every accumulation.
  void visit_coverage(const Trapezoid& t,
                      const std::function<void(int, int, double)>& emit) const;

  /// Sum of all pixel values.
  double sum() const;

  /// Maximum pixel value.
  double max_value() const;

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

 private:
  Point origin_;  // dbu coordinate of the lower-left corner of pixel (0,0)
  Coord pix_;
  int nx_, ny_;
  std::vector<double> data_;
};

}  // namespace ebl
