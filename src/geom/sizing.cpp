#include "geom/sizing.h"

#include <cmath>
#include <optional>

#include "geom/polygon_set.h"
#include "util/contracts.h"

namespace ebl {
namespace {

struct DVec {
  double x, y;
};

// Intersection of two lines given in point+direction form (doubles).
std::optional<DVec> line_intersection(DVec p1, DVec d1, DVec p2, DVec d2) {
  const double denom = d1.x * d2.y - d1.y * d2.x;
  if (std::abs(denom) < 1e-12) return std::nullopt;
  const double t = ((p2.x - p1.x) * d2.y - (p2.y - p1.y) * d2.x) / denom;
  return DVec{p1.x + t * d1.x, p1.y + t * d1.y};
}

Point round_point(DVec v) {
  return {static_cast<Coord>(std::lround(v.x)), static_cast<Coord>(std::lround(v.y))};
}

// Offsets one contour to the right of its traversal direction by delta
// (delta > 0). For CCW outer contours this grows the solid; for CW hole
// contours it shrinks the hole — i.e. it always grows the region.
//
// Each input edge contributes its translated segment explicitly; corners that
// open a gap on the offset side (left turns) are closed with a miter point
// (beveled past the miter limit), corners that overlap (right turns) connect
// directly and the overlap cancels by winding. Emitting the translated edges
// (not just miter vertices) is what makes fully-inverted contours cancel
// instead of re-appearing point-reflected.
SimplePolygon offset_contour(const SimplePolygon& c, double delta, double miter_limit) {
  const std::size_t n = c.size();
  std::vector<Point> out;
  out.reserve(2 * n + 4);
  for (std::size_t i = 0; i < n; ++i) {
    const Point prev = c[(i + n - 1) % n];
    const Point cur = c[i];
    const Point next = c[(i + 1) % n];
    if (cur == next) continue;

    const DVec d1{double(cur.x) - prev.x, double(cur.y) - prev.y};
    const DVec d2{double(next.x) - cur.x, double(next.y) - cur.y};
    const double l1 = std::hypot(d1.x, d1.y);
    const double l2 = std::hypot(d2.x, d2.y);
    if (l2 == 0.0) continue;
    // Right normals scaled by delta.
    const DVec n2{d2.y / l2 * delta, -d2.x / l2 * delta};
    const DVec start{cur.x + n2.x, cur.y + n2.y};  // start of offset edge cur->next

    if (l1 > 0.0) {
      const DVec n1{d1.y / l1 * delta, -d1.x / l1 * delta};
      const DVec end{cur.x + n1.x, cur.y + n1.y};  // end of offset edge prev->cur
      // Gap on the offset (right) side opens when the contour turns left.
      const double turn = d1.x * d2.y - d1.y * d2.x;
      const bool gap = delta > 0 ? turn > 0 : turn < 0;
      if (gap) {
        const auto miter = line_intersection(end, d1, start, d2);
        if (miter) {
          const double mx = miter->x - cur.x;
          const double my = miter->y - cur.y;
          if (std::hypot(mx, my) <= miter_limit * std::abs(delta) + 0.5)
            out.push_back(round_point(*miter));
          // else: bevel — the straight end->start connection suffices.
        }
      }
    }
    // The translated edge cur->next.
    out.push_back(round_point(start));
    out.push_back(round_point({next.x + n2.x, next.y + n2.y}));
  }
  return SimplePolygon{std::move(out)};
}

PolygonSet grow(const PolygonSet& set, Coord delta, double miter_limit) {
  // Polygon guarantees outer CCW / holes CW; offsetting to the right of the
  // traversal direction grows the solid on both kinds of contour. Offsets are
  // added with their raw orientation: a hole contour that inverts because the
  // grow distance exceeds the hole size flips to CCW and its winding then
  // fills the hole instead of resurrecting a phantom one.
  BooleanEngine eng;
  for (const Polygon& p : set.polygons()) {
    eng.add_raw(offset_contour(p.outer(), delta, miter_limit), 0);
    for (const auto& h : p.holes()) eng.add_raw(offset_contour(h, delta, miter_limit), 0);
  }
  return PolygonSet{eng.polygons(BoolOp::Or)};
}

}  // namespace

PolygonSet size_polygons(const PolygonSet& set, Coord delta, double miter_limit) {
  if (set.empty() || delta == 0) return set.merged();
  if (delta > 0) return grow(set, delta, miter_limit);

  // Shrink via complement: frame \ grow(frame \ set).
  const Coord d = static_cast<Coord>(-delta);
  const Box frame = set.bbox().bloated(static_cast<Coord>(Coord64(d) * 4 + 64));
  PolygonSet frame_set;
  frame_set.insert(frame);
  const PolygonSet complement = frame_set.subtracted(set);
  const PolygonSet grown = grow(complement, d, miter_limit);
  return frame_set.subtracted(grown);
}

}  // namespace ebl
