// Isotropic polygon sizing (grow/shrink) with miter joins.
#pragma once

#include "geom/coord.h"

namespace ebl {

class PolygonSet;

/// Returns @p set grown (delta > 0) or shrunk (delta < 0) by |delta| dbu.
///
/// Growing offsets every contour edge outward and resolves the
/// self-intersections of the offset contours with a merge. Shrinking is
/// computed as the complement of growing the complement, which is robust
/// against contours that invert when the shape is narrower than 2*|delta|
/// (such parts vanish, as they should).
///
/// Joins are mitered and capped at @p miter_limit times |delta| (beveled
/// beyond that), matching typical mask data prep behaviour.
PolygonSet size_polygons(const PolygonSet& set, Coord delta, double miter_limit = 2.0);

}  // namespace ebl
