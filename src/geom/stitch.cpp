// Polygon reconstruction from a band decomposition.
//
// Every boundary edge of the result region is emitted as a directed segment
// with the region interior on its LEFT:
//   - interval left sides run downward, right sides run upward;
//   - horizontal boundaries are recovered by a 1-D XOR between the top
//     intervals of the band below and the bottom intervals of the band above
//     at each event y (pieces covered on the upper side run right, pieces
//     covered on the lower side run left).
// The directed edges then decompose uniquely into boundary cycles; cycles are
// traced with an exact angular "sharpest clockwise turn" rule so touching
// corners resolve into simple loops. CCW cycles are outer contours, CW
// cycles are holes; holes attach to the smallest enclosing outer contour.
#include <algorithm>
#include <map>
#include <unordered_map>

#include "geom/boolean.h"
#include "util/contracts.h"

namespace ebl {
namespace {

struct Dir {
  Coord64 dx;
  Coord64 dy;
};

Wide dcross(Dir a, Dir b) { return Wide(a.dx) * b.dy - Wide(a.dy) * b.dx; }

bool same_dir(Dir a, Dir b) {
  return dcross(a, b) == 0 && Wide(a.dx) * b.dx + Wide(a.dy) * b.dy > 0;
}

// Rank of direction d in a clockwise sweep that starts just after the
// reference direction r. Lower rank = encountered earlier. Exact.
// Order: strictly-clockwise half (cross(r,d) < 0), then -r, then the
// counter-clockwise half, then r itself.
struct CwFromRef {
  Dir r;
  // Returns true when a comes strictly before b in the clockwise sweep.
  bool operator()(Dir a, Dir b) const {
    const int ga = group(a);
    const int gb = group(b);
    if (ga != gb) return ga < gb;
    if (ga == 1 || ga == 3) return false;  // -r / r classes are single points
    return dcross(a, b) < 0;
  }
  int group(Dir d) const {
    if (same_dir(d, r)) return 3;
    const Wide c = dcross(r, d);
    if (c < 0) return 0;
    if (c == 0) return 1;  // opposite of r
    return 2;
  }
};

struct DirEdge {
  Point a, b;
};

}  // namespace

std::vector<Polygon> stitch_bands(const std::vector<Band>& bands) {
  if (bands.empty()) return {};

  std::vector<DirEdge> edges;

  // Side pieces.
  for (const Band& band : bands) {
    for (const BandInterval& iv : band.intervals) {
      edges.push_back({{iv.xl1, band.y1}, {iv.xl0, band.y0}});  // left side, down
      edges.push_back({{iv.xr0, band.y0}, {iv.xr1, band.y1}});  // right side, up
    }
  }

  // Horizontal pieces: 1-D XOR of coverage below vs. above each event y.
  struct XEvent {
    Coord x;
    int below;  // +1/-1
    int above;
  };
  std::map<Coord, std::vector<XEvent>> per_y;
  for (const Band& band : bands) {
    for (const BandInterval& iv : band.intervals) {
      if (iv.xr1 > iv.xl1) {  // top side of this band covers y = band.y1 from below
        per_y[band.y1].push_back({iv.xl1, +1, 0});
        per_y[band.y1].push_back({iv.xr1, -1, 0});
      }
      if (iv.xr0 > iv.xl0) {  // bottom side covers y = band.y0 from above
        per_y[band.y0].push_back({iv.xl0, 0, +1});
        per_y[band.y0].push_back({iv.xr0, 0, -1});
      }
    }
  }
  for (auto& [y, events] : per_y) {
    std::sort(events.begin(), events.end(),
              [](const XEvent& a, const XEvent& b) { return a.x < b.x; });
    int cb = 0;
    int ca = 0;
    Coord prev_x = 0;
    bool have_prev = false;
    std::size_t i = 0;
    while (i < events.size()) {
      const Coord x = events[i].x;
      if (have_prev && x > prev_x) {
        const bool below_in = cb > 0;
        const bool above_in = ca > 0;
        if (above_in && !below_in) edges.push_back({{prev_x, y}, {x, y}});  // bottom, right
        if (below_in && !above_in) edges.push_back({{x, y}, {prev_x, y}});  // top, left
      }
      while (i < events.size() && events[i].x == x) {
        cb += events[i].below;
        ca += events[i].above;
        ++i;
      }
      prev_x = x;
      have_prev = true;
    }
  }

  // Group directed edges by origin.
  std::unordered_map<Point, std::vector<std::size_t>, PointHash> out;
  out.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) out[edges[i].a].push_back(i);

  const auto dir_of = [&](std::size_t e) -> Dir {
    return {Coord64(edges[e].b.x) - edges[e].a.x, Coord64(edges[e].b.y) - edges[e].a.y};
  };

  std::vector<char> used(edges.size(), 0);
  std::vector<SimplePolygon> outers;
  std::vector<SimplePolygon> holes;

  for (std::size_t start = 0; start < edges.size(); ++start) {
    if (used[start]) continue;
    std::vector<Point> loop;
    std::size_t cur = start;
    // Trace until we are about to re-use the starting edge.
    for (std::size_t guard = 0; guard <= edges.size(); ++guard) {
      used[cur] = 1;
      loop.push_back(edges[cur].a);
      const Point v = edges[cur].b;
      const Dir din = dir_of(cur);
      const Dir rev{-din.dx, -din.dy};
      auto it = out.find(v);
      if (it == out.end()) throw DataError("stitch: dangling boundary edge");
      // Sharpest clockwise turn from the reversed incoming direction.
      // Candidates: all unused outgoing edges, plus the start edge (taking
      // it closes the loop). The face structure guarantees the sharpest
      // clockwise turn is the correct continuation even at touch vertices.
      const CwFromRef cw{rev};
      std::size_t best = SIZE_MAX;
      for (std::size_t cand : it->second) {
        if (used[cand] && cand != start) continue;
        if (best == SIZE_MAX || cw(dir_of(cand), dir_of(best))) best = cand;
      }
      if (best == SIZE_MAX) throw DataError("stitch: boundary walk has no continuation");
      if (best == start) break;  // loop closed
      cur = best;
    }

    SimplePolygon contour{std::move(loop)};
    const Area2 a2 = contour.doubled_signed_area();
    if (a2 == 0) continue;  // degenerate filament from grid snapping
    if (a2 > 0) {
      outers.push_back(contour.normalized());
    } else {
      holes.push_back(contour.normalized());  // normalized() flips to CCW; flip back later
    }
  }

  // Assign holes to the smallest enclosing outer contour.
  std::vector<Polygon> result;
  std::vector<std::vector<SimplePolygon>> hole_sets(outers.size());
  for (const auto& h : holes) {
    const Point probe = h.empty() ? Point{} : h[0];
    std::size_t best = SIZE_MAX;
    double best_area = 0.0;
    for (std::size_t i = 0; i < outers.size(); ++i) {
      if (!outers[i].bbox().contains(h.bbox())) continue;
      if (!outers[i].contains(probe)) continue;
      const double area = outers[i].area();
      if (best == SIZE_MAX || area < best_area) {
        best = i;
        best_area = area;
      }
    }
    if (best == SIZE_MAX) throw DataError("stitch: hole without enclosing contour");
    hole_sets[best].push_back(h.reversed());  // holes are CW
  }

  result.reserve(outers.size());
  for (std::size_t i = 0; i < outers.size(); ++i)
    result.emplace_back(std::move(outers[i]), std::move(hole_sets[i]));
  return result;
}

}  // namespace ebl
