// Layout transforms.
//
// Trans is the exact, closed-under-composition group used for cell
// references: translation + one of 8 orthogonal orientations (4 rotations ×
// optional mirror), as in GDSII/OASIS databases. CTrans adds arbitrary
// magnification/rotation in double precision for GDSII SREF records that use
// MAG/ANGLE; applying it rounds back to the database grid.
#pragma once

#include <array>
#include <cmath>
#include <ostream>

#include "geom/box.h"
#include "geom/point.h"
#include "util/contracts.h"

namespace ebl {

/// The 8 orthogonal orientations: rN = rotate N degrees CCW;
/// mN = mirror about the x axis, then rotate N degrees CCW.
enum class Orient : std::uint8_t { r0, r90, r180, r270, m0, m90, m180, m270 };

/// Exact orthogonal transform: p -> rotate/mirror(p) + disp.
class Trans {
 public:
  constexpr Trans() = default;
  constexpr explicit Trans(Point displacement, Orient o = Orient::r0)
      : disp_(displacement), orient_(o) {}

  constexpr Point disp() const { return disp_; }
  constexpr Orient orient() const { return orient_; }
  constexpr bool mirrored() const { return static_cast<int>(orient_) >= 4; }
  /// CCW rotation in units of 90 degrees (0..3), applied after mirroring.
  constexpr int rot90() const { return static_cast<int>(orient_) % 4; }

  constexpr Point operator()(Point p) const {
    Coord64 x = p.x;
    Coord64 y = p.y;
    if (mirrored()) y = -y;
    switch (rot90()) {
      case 0: break;
      case 1: { const Coord64 t = x; x = -y; y = t; break; }
      case 2: x = -x; y = -y; break;
      case 3: { const Coord64 t = x; x = y; y = -t; break; }
    }
    return {static_cast<Coord>(x + disp_.x), static_cast<Coord>(y + disp_.y)};
  }

  Box operator()(const Box& b) const {
    if (b.empty()) return b;
    Box r;
    r += (*this)(b.lo);
    r += (*this)(b.hi);
    r += (*this)(Point{b.lo.x, b.hi.y});
    r += (*this)(Point{b.hi.x, b.lo.y});
    return r;
  }

  /// Composition: (a * b)(p) == a(b(p)).
  friend constexpr Trans operator*(const Trans& a, const Trans& b) {
    // Orientation composition table is derived from the group structure:
    // both factors act as (mirror?, rot); mirror conjugates rotations.
    const int am = a.mirrored() ? 1 : 0;
    const int bm = b.mirrored() ? 1 : 0;
    const int ar = a.rot90();
    const int br = b.rot90();
    const int rm = am ^ bm;
    // a(b(p)) = Ra Ma Rb Mb p ; Ma Rb = R(-b) Ma  =>  rot = ar + (am ? -br : br)
    const int rr = ((ar + (am ? (4 - br) : br)) % 4 + 4) % 4;
    const auto orient = static_cast<Orient>(rm * 4 + rr);
    Trans r;
    r.orient_ = orient;
    r.disp_ = a(b.disp_);
    return r;
  }

  /// Inverse transform: inverted()(operator()(p)) == p.
  constexpr Trans inverted() const {
    // Inverse orientation: for pure rotation rN -> r(4-N); mirrored
    // orientations are involutions composed with rotation: (M R)^-1 = R^-1 M
    // = M R (since M R M = R^-1)... compute via search for exactness.
    for (int o = 0; o < 8; ++o) {
      const Trans cand{Point{0, 0}, static_cast<Orient>(o)};
      const Trans self{Point{0, 0}, orient_};
      const Trans prod = cand * self;
      if (prod.orient_ == Orient::r0) {
        Trans r;
        r.orient_ = static_cast<Orient>(o);
        const Point d = r(disp_);
        r.disp_ = {static_cast<Coord>(-d.x), static_cast<Coord>(-d.y)};
        return r;
      }
    }
    return Trans{};  // unreachable
  }

  friend constexpr bool operator==(const Trans&, const Trans&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Trans& t) {
    static constexpr std::array<const char*, 8> names = {
        "r0", "r90", "r180", "r270", "m0", "m90", "m180", "m270"};
    return os << names[static_cast<int>(t.orient_)] << ' ' << t.disp_;
  }

 private:
  Point disp_{0, 0};
  Orient orient_ = Orient::r0;
};

/// General transform with magnification and arbitrary angle (degrees CCW),
/// mirror about x applied first. Needed for full GDSII SREF semantics.
/// Application rounds to the database grid.
class CTrans {
 public:
  CTrans() = default;
  CTrans(Point displacement, double angle_degrees, double magnification, bool mirror)
      : disp_(displacement), angle_(angle_degrees), mag_(magnification), mirror_(mirror) {
    expects(magnification > 0, "CTrans magnification must be positive");
  }
  /// Promotes an exact orthogonal transform.
  explicit CTrans(const Trans& t)
      : disp_(t.disp()), angle_(90.0 * t.rot90()), mag_(1.0), mirror_(t.mirrored()) {}

  Point disp() const { return disp_; }
  double angle() const { return angle_; }
  double mag() const { return mag_; }
  bool mirror() const { return mirror_; }

  /// True when the transform is exactly representable as a Trans.
  bool is_orthogonal() const {
    if (mag_ != 1.0) return false;
    const double a = std::fmod(std::fmod(angle_, 360.0) + 360.0, 360.0);
    return a == 0.0 || a == 90.0 || a == 180.0 || a == 270.0;
  }

  /// Exact counterpart; precondition: is_orthogonal().
  Trans to_trans() const {
    expects(is_orthogonal(), "CTrans::to_trans on non-orthogonal transform");
    const double a = std::fmod(std::fmod(angle_, 360.0) + 360.0, 360.0);
    const int rot = static_cast<int>(a / 90.0 + 0.5) % 4;
    return Trans{disp_, static_cast<Orient>((mirror_ ? 4 : 0) + rot)};
  }

  Point operator()(Point p) const {
    double x = p.x;
    double y = p.y;
    if (mirror_) y = -y;
    const double rad = angle_ * 0.017453292519943295;
    const double c = std::cos(rad);
    const double s = std::sin(rad);
    const double rx = mag_ * (x * c - y * s);
    const double ry = mag_ * (x * s + y * c);
    return {static_cast<Coord>(std::lround(rx)) + disp_.x,
            static_cast<Coord>(std::lround(ry)) + disp_.y};
  }

  /// Composition: (a * b)(p) == a(b(p)) up to grid rounding.
  friend CTrans operator*(const CTrans& a, const CTrans& b) {
    CTrans r;
    r.mirror_ = a.mirror_ != b.mirror_;
    r.angle_ = a.mirror_ ? a.angle_ - b.angle_ : a.angle_ + b.angle_;
    r.mag_ = a.mag_ * b.mag_;
    r.disp_ = a(b.disp_);
    return r;
  }

 private:
  Point disp_{0, 0};
  double angle_ = 0.0;
  double mag_ = 1.0;
  bool mirror_ = false;
};

}  // namespace ebl
