// Horizontal trapezoids — the native primitive of e-beam pattern generators.
//
// A trapezoid has two horizontal sides at y0 < y1 and two straight (possibly
// slanted) sides. Degenerate forms (triangles: one horizontal side of zero
// length) are allowed; that is what machine formats accept as well.
#pragma once

#include <ostream>

#include "geom/box.h"
#include "geom/polygon.h"

namespace ebl {

/// Horizontal trapezoid: bottom side [xl0,xr0] at y0, top side [xl1,xr1] at y1.
struct Trapezoid {
  Coord y0 = 0, y1 = 0;    ///< bottom / top y (y0 < y1 for non-degenerate)
  Coord xl0 = 0, xr0 = 0;  ///< bottom-left / bottom-right x
  Coord xl1 = 0, xr1 = 0;  ///< top-left / top-right x

  constexpr Trapezoid() = default;
  constexpr Trapezoid(Coord by, Coord ty, Coord bl, Coord br, Coord tl, Coord tr)
      : y0(by), y1(ty), xl0(bl), xr0(br), xl1(tl), xr1(tr) {}

  /// Axis-aligned rectangle as a trapezoid.
  static constexpr Trapezoid rect(const Box& b) {
    return {b.lo.y, b.hi.y, b.lo.x, b.hi.x, b.lo.x, b.hi.x};
  }

  constexpr bool valid() const {
    return y1 > y0 && xr0 >= xl0 && xr1 >= xl1 && (xr0 > xl0 || xr1 > xl1);
  }

  constexpr bool is_rect() const { return xl0 == xl1 && xr0 == xr1; }

  constexpr bool is_triangle() const { return xl0 == xr0 || xl1 == xr1; }

  /// Exact doubled area = (bottom width + top width) * height.
  constexpr Area2 doubled_area() const {
    return (Wide(Coord64(xr0) - xl0) + (Coord64(xr1) - xl1)) * (Coord64(y1) - y0);
  }

  double area() const { return static_cast<double>(doubled_area()) / 2.0; }

  constexpr Box bbox() const {
    Box b;
    b += Point{xl0, y0};
    b += Point{xr0, y0};
    b += Point{xl1, y1};
    b += Point{xr1, y1};
    return b;
  }

  /// CCW polygon contour (degenerate sides collapsed).
  SimplePolygon to_polygon() const {
    std::vector<Point> pts;
    pts.push_back({xl0, y0});
    if (xr0 != xl0) pts.push_back({xr0, y0});
    pts.push_back({xr1, y1});
    if (xl1 != xr1) pts.push_back({xl1, y1});
    return SimplePolygon{std::move(pts)};
  }

  /// Exact point test (closed region).
  bool contains(Point p) const {
    if (p.y < y0 || p.y > y1) return false;
    const Coord64 h = Coord64(y1) - y0;
    const Coord64 dy = Coord64(p.y) - y0;
    // left boundary x(p.y) <= p.x :  xl0*h + (xl1-xl0)*dy <= p.x*h
    const Wide left = Wide(Coord64(xl0)) * h + Wide(Coord64(xl1) - xl0) * dy;
    const Wide right = Wide(Coord64(xr0)) * h + Wide(Coord64(xr1) - xr0) * dy;
    const Wide px = Wide(Coord64(p.x)) * h;
    return left <= px && px <= right;
  }

  friend constexpr bool operator==(const Trapezoid&, const Trapezoid&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Trapezoid& t) {
    return os << "trap{y " << t.y0 << ".." << t.y1 << " bot[" << t.xl0 << ',' << t.xr0
              << "] top[" << t.xl1 << ',' << t.xr1 << "]}";
  }
};

}  // namespace ebl
