#include "layout/cell.h"

namespace ebl {

const std::vector<Polygon>& Cell::shapes_on(LayerKey layer) const {
  static const std::vector<Polygon> kEmpty;
  const auto it = shapes_.find(layer);
  return it == shapes_.end() ? kEmpty : it->second;
}

std::vector<LayerKey> Cell::layers() const {
  std::vector<LayerKey> out;
  out.reserve(shapes_.size());
  for (const auto& [key, polys] : shapes_) {
    if (!polys.empty()) out.push_back(key);
  }
  return out;
}

std::size_t Cell::local_shape_count() const {
  std::size_t n = 0;
  for (const auto& [key, polys] : shapes_) n += polys.size();
  return n;
}

Box Cell::local_bbox() const {
  Box b;
  for (const auto& [key, polys] : shapes_) {
    for (const auto& p : polys) b += p.bbox();
  }
  return b;
}

}  // namespace ebl
