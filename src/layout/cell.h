// Cells: named containers of per-layer geometry and references to other
// cells (the hierarchical mask-data model of the 1979 flow).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geom/polygon.h"
#include "geom/transform.h"
#include "layout/layer.h"

namespace ebl {

/// Opaque cell handle within a Library.
struct CellId {
  std::uint32_t value = 0;
  friend constexpr bool operator==(CellId, CellId) = default;
  friend constexpr auto operator<=>(CellId, CellId) = default;
};

/// A placement of a child cell: single instance or a regular array.
/// The array places cols x rows copies stepped by col_step / row_step
/// (applied in the parent's coordinate system, after @p trans orientation —
/// GDSII AREF semantics).
struct Reference {
  CellId child;
  CTrans trans;
  std::uint32_t cols = 1;
  std::uint32_t rows = 1;
  Point col_step{0, 0};
  Point row_step{0, 0};

  bool is_array() const { return cols > 1 || rows > 1; }
  std::uint64_t instance_count() const {
    return static_cast<std::uint64_t>(cols) * rows;
  }
};

/// One cell: geometry per layer plus child references.
class Cell {
 public:
  explicit Cell(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_shape(LayerKey layer, Polygon poly) {
    shapes_[layer].push_back(std::move(poly));
  }
  void add_shape(LayerKey layer, const SimplePolygon& poly) {
    shapes_[layer].emplace_back(poly);
  }
  void add_shape(LayerKey layer, const Box& box) {
    shapes_[layer].push_back(Polygon::rect(box));
  }

  void add_reference(Reference ref) { refs_.push_back(ref); }

  const std::map<LayerKey, std::vector<Polygon>>& shapes() const { return shapes_; }
  const std::vector<Polygon>& shapes_on(LayerKey layer) const;
  const std::vector<Reference>& references() const { return refs_; }

  /// Layers that have at least one shape in this cell (not descendants).
  std::vector<LayerKey> layers() const;

  /// Shape count in this cell only.
  std::size_t local_shape_count() const;

  /// Bounding box of local shapes only (no descendants).
  Box local_bbox() const;

 private:
  std::string name_;
  std::map<LayerKey, std::vector<Polygon>> shapes_;
  std::vector<Reference> refs_;
};

}  // namespace ebl
