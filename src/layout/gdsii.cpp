#include "layout/gdsii.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "util/contracts.h"

namespace ebl {
namespace {

// Record types (record_type << 8 | data_type).
enum : std::uint16_t {
  kHeader = 0x0002,
  kBgnLib = 0x0102,
  kLibName = 0x0206,
  kUnits = 0x0305,
  kEndLib = 0x0400,
  kBgnStr = 0x0502,
  kStrName = 0x0606,
  kEndStr = 0x0700,
  kBoundary = 0x0800,
  kPath = 0x0900,
  kSref = 0x0A00,
  kAref = 0x0B00,
  kText = 0x0C00,
  kLayer = 0x0D02,
  kDatatype = 0x0E02,
  kWidth = 0x0F03,
  kXy = 0x1003,
  kEndEl = 0x1100,
  kSname = 0x1206,
  kColRow = 0x1302,
  kNode = 0x1500,
  kBoxEl = 0x2D00,
  kStrans = 0x1A01,
  kMag = 0x1B05,
  kAngle = 0x1C05,
};

class RecordWriter {
 public:
  explicit RecordWriter(std::ostream& os) : os_(os) {}

  void record(std::uint16_t type, const std::vector<std::uint8_t>& payload = {}) {
    const std::size_t len = payload.size() + 4;
    expects(len <= 0xFFFF, "GDS record too long");
    put16(static_cast<std::uint16_t>(len));
    put16(type);
    os_.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }

  static void push16(std::vector<std::uint8_t>& v, std::uint16_t x) {
    v.push_back(static_cast<std::uint8_t>(x >> 8));
    v.push_back(static_cast<std::uint8_t>(x));
  }
  static void push32(std::vector<std::uint8_t>& v, std::uint32_t x) {
    v.push_back(static_cast<std::uint8_t>(x >> 24));
    v.push_back(static_cast<std::uint8_t>(x >> 16));
    v.push_back(static_cast<std::uint8_t>(x >> 8));
    v.push_back(static_cast<std::uint8_t>(x));
  }
  static void push64(std::vector<std::uint8_t>& v, std::uint64_t x) {
    for (int s = 56; s >= 0; s -= 8) v.push_back(static_cast<std::uint8_t>(x >> s));
  }
  static void push_string(std::vector<std::uint8_t>& v, const std::string& s) {
    for (char c : s) v.push_back(static_cast<std::uint8_t>(c));
    if (v.size() % 2) v.push_back(0);  // pad to even length
  }

 private:
  void put16(std::uint16_t x) {
    const char b[2] = {static_cast<char>(x >> 8), static_cast<char>(x)};
    os_.write(b, 2);
  }
  std::ostream& os_;
};

class RecordReader {
 public:
  explicit RecordReader(std::istream& is) : is_(is) {}

  /// Reads the next record; returns false at a clean EOF.
  bool next() {
    std::uint8_t head[4];
    is_.read(reinterpret_cast<char*>(head), 4);
    if (is_.gcount() == 0) return false;
    if (is_.gcount() != 4) throw DataError("GDS: truncated record header");
    const std::uint16_t len = static_cast<std::uint16_t>((head[0] << 8) | head[1]);
    type_ = static_cast<std::uint16_t>((head[2] << 8) | head[3]);
    if (len < 4) {
      // Some writers emit a null word as padding at EOF.
      if (len == 0 && type_ == 0) return false;
      throw DataError("GDS: record length < 4");
    }
    payload_.resize(len - 4u);
    if (!payload_.empty()) {
      is_.read(reinterpret_cast<char*>(payload_.data()),
               static_cast<std::streamsize>(payload_.size()));
      if (static_cast<std::size_t>(is_.gcount()) != payload_.size())
        throw DataError("GDS: truncated record payload");
    }
    return true;
  }

  std::uint16_t type() const { return type_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  std::uint16_t u16(std::size_t offset) const {
    expects(offset + 2 <= payload_.size(), "GDS: u16 out of record");
    return static_cast<std::uint16_t>((payload_[offset] << 8) | payload_[offset + 1]);
  }
  std::int16_t i16(std::size_t offset) const {
    return static_cast<std::int16_t>(u16(offset));
  }
  std::int32_t i32(std::size_t offset) const {
    expects(offset + 4 <= payload_.size(), "GDS: i32 out of record");
    return static_cast<std::int32_t>((std::uint32_t(payload_[offset]) << 24) |
                                     (std::uint32_t(payload_[offset + 1]) << 16) |
                                     (std::uint32_t(payload_[offset + 2]) << 8) |
                                     std::uint32_t(payload_[offset + 3]));
  }
  std::uint64_t u64(std::size_t offset) const {
    expects(offset + 8 <= payload_.size(), "GDS: u64 out of record");
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | payload_[offset + static_cast<std::size_t>(i)];
    return x;
  }
  std::string str() const {
    std::string s(payload_.begin(), payload_.end());
    while (!s.empty() && s.back() == '\0') s.pop_back();
    return s;
  }

 private:
  std::istream& is_;
  std::uint16_t type_ = 0;
  std::vector<std::uint8_t> payload_;
};

std::vector<std::uint8_t> i16_payload(std::int16_t v) {
  std::vector<std::uint8_t> p;
  RecordWriter::push16(p, static_cast<std::uint16_t>(v));
  return p;
}

// Zero-filled 12-word BGNLIB/BGNSTR timestamp payload (dates are irrelevant
// for data prep and zero keeps output byte-reproducible).
std::vector<std::uint8_t> timestamp_payload() {
  return std::vector<std::uint8_t>(24, 0);
}

void write_xy(RecordWriter& w, const SimplePolygon& contour) {
  std::vector<std::uint8_t> p;
  for (const Point pt : contour.points()) {
    RecordWriter::push32(p, static_cast<std::uint32_t>(pt.x));
    RecordWriter::push32(p, static_cast<std::uint32_t>(pt.y));
  }
  // GDSII closes boundaries explicitly by repeating the first point.
  if (!contour.empty()) {
    RecordWriter::push32(p, static_cast<std::uint32_t>(contour[0].x));
    RecordWriter::push32(p, static_cast<std::uint32_t>(contour[0].y));
  }
  w.record(kXy, p);
}

void write_boundary(RecordWriter& w, LayerKey layer, const SimplePolygon& contour) {
  w.record(kBoundary);
  w.record(kLayer, i16_payload(layer.layer));
  w.record(kDatatype, i16_payload(layer.datatype));
  write_xy(w, contour);
  w.record(kEndEl);
}

void write_transform(RecordWriter& w, const CTrans& t) {
  const bool need_strans = t.mirror() || t.mag() != 1.0 || t.angle() != 0.0;
  if (!need_strans) return;
  std::vector<std::uint8_t> flags;
  RecordWriter::push16(flags, t.mirror() ? 0x8000 : 0x0000);
  w.record(kStrans, flags);
  if (t.mag() != 1.0) {
    std::vector<std::uint8_t> p;
    RecordWriter::push64(p, gds_detail::to_gds_real(t.mag()));
    w.record(kMag, p);
  }
  if (t.angle() != 0.0) {
    std::vector<std::uint8_t> p;
    RecordWriter::push64(p, gds_detail::to_gds_real(t.angle()));
    w.record(kAngle, p);
  }
}

}  // namespace

namespace gds_detail {

std::uint64_t to_gds_real(double value) {
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ull << 63;
    value = -value;
  }
  // Normalize mantissa into [1/16, 1) with base-16 exponent.
  int exponent = 0;
  while (value >= 1.0) {
    value /= 16.0;
    ++exponent;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exponent;
  }
  const auto mantissa = static_cast<std::uint64_t>(std::ldexp(value, 56));
  return sign | (static_cast<std::uint64_t>(exponent + 64) << 56) |
         (mantissa & 0x00FFFFFFFFFFFFFFull);
}

double from_gds_real(std::uint64_t bits) {
  if (bits == 0) return 0.0;
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const auto mantissa = static_cast<double>(bits & 0x00FFFFFFFFFFFFFFull);
  double value = std::ldexp(mantissa, -56) * std::pow(16.0, exponent);
  return negative ? -value : value;
}

}  // namespace gds_detail

void write_gds(const Library& lib, std::ostream& os) {
  RecordWriter w(os);
  w.record(kHeader, i16_payload(600));  // stream version 6
  w.record(kBgnLib, timestamp_payload());
  {
    std::vector<std::uint8_t> p;
    RecordWriter::push_string(p, lib.name());
    w.record(kLibName, p);
  }
  {
    // UNITS: size of one dbu in user units (user unit = 1 µm), then in
    // meters.
    std::vector<std::uint8_t> p;
    RecordWriter::push64(p, gds_detail::to_gds_real(lib.dbu_in_microns()));
    RecordWriter::push64(p, gds_detail::to_gds_real(lib.dbu_in_microns() * 1e-6));
    w.record(kUnits, p);
  }

  for (std::size_t i = 0; i < lib.cell_count(); ++i) {
    const Cell& c = lib.cell(CellId{static_cast<std::uint32_t>(i)});
    expects(c.name().size() <= 126, "GDS: cell name too long");
    w.record(kBgnStr, timestamp_payload());
    {
      std::vector<std::uint8_t> p;
      RecordWriter::push_string(p, c.name());
      w.record(kStrName, p);
    }
    for (const auto& [layer, polys] : c.shapes()) {
      for (const Polygon& poly : polys) {
        write_boundary(w, layer, poly.outer());
        // GDSII has no hole concept: holes are written as separate
        // boundaries on the same layer; the reader re-merges by winding
        // when it runs booleans. (Keyholing is not needed for data prep.)
        for (const auto& hole : poly.holes()) write_boundary(w, layer, hole);
      }
    }
    for (const Reference& r : c.references()) {
      const Cell& child = lib.cell(r.child);
      if (r.is_array()) {
        w.record(kAref);
        std::vector<std::uint8_t> p;
        RecordWriter::push_string(p, child.name());
        w.record(kSname, p);
        write_transform(w, r.trans);
        p.clear();
        RecordWriter::push16(p, static_cast<std::uint16_t>(r.cols));
        RecordWriter::push16(p, static_cast<std::uint16_t>(r.rows));
        w.record(kColRow, p);
        p.clear();
        const Point o = r.trans.disp();
        const Point pc{static_cast<Coord>(o.x + Coord64(r.col_step.x) * r.cols),
                       static_cast<Coord>(o.y + Coord64(r.col_step.y) * r.cols)};
        const Point pr{static_cast<Coord>(o.x + Coord64(r.row_step.x) * r.rows),
                       static_cast<Coord>(o.y + Coord64(r.row_step.y) * r.rows)};
        for (const Point pt : {o, pc, pr}) {
          RecordWriter::push32(p, static_cast<std::uint32_t>(pt.x));
          RecordWriter::push32(p, static_cast<std::uint32_t>(pt.y));
        }
        w.record(kXy, p);
        w.record(kEndEl);
      } else {
        w.record(kSref);
        std::vector<std::uint8_t> p;
        RecordWriter::push_string(p, child.name());
        w.record(kSname, p);
        write_transform(w, r.trans);
        p.clear();
        RecordWriter::push32(p, static_cast<std::uint32_t>(r.trans.disp().x));
        RecordWriter::push32(p, static_cast<std::uint32_t>(r.trans.disp().y));
        w.record(kXy, p);
        w.record(kEndEl);
      }
    }
    w.record(kEndStr);
  }
  w.record(kEndLib);
}

void write_gds(const Library& lib, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw DataError("cannot open for writing: " + path);
  write_gds(lib, os);
  if (!os) throw DataError("write failed: " + path);
}

Library read_gds(std::istream& is, GdsReadReport* report) {
  RecordReader r(is);
  GdsReadReport rep;

  if (!r.next() || r.type() != kHeader) throw DataError("GDS: missing HEADER");
  if (!r.next() || r.type() != kBgnLib) throw DataError("GDS: missing BGNLIB");
  std::string libname = "LIB";
  double dbu_um = 0.001;

  // Pending references by child name (children may appear later in the file).
  struct PendingRef {
    CellId parent;
    std::string child;
    Reference ref;
  };
  std::vector<PendingRef> pending;

  // First pass structures inline; resolve names at the end.
  std::optional<Library> lib;
  auto ensure_lib = [&]() -> Library& {
    if (!lib) lib.emplace(libname, dbu_um);
    return *lib;
  };

  std::optional<CellId> current;
  bool done = false;
  while (!done && r.next()) {
    switch (r.type()) {
      case kLibName:
        libname = r.str();
        break;
      case kUnits: {
        dbu_um = gds_detail::from_gds_real(r.u64(0));
        if (dbu_um <= 0) throw DataError("GDS: invalid UNITS");
        break;
      }
      case kBgnStr: {
        current.reset();
        break;
      }
      case kStrName: {
        Library& l = ensure_lib();
        const std::string name = r.str();
        const auto existing = l.find_cell(name);
        current = existing ? *existing : l.add_cell(name);
        ++rep.structures;
        break;
      }
      case kEndStr:
        current.reset();
        break;
      case kBoundary: {
        if (!current) throw DataError("GDS: BOUNDARY outside structure");
        LayerKey layer{};
        std::vector<Point> pts;
        while (r.next() && r.type() != kEndEl) {
          if (r.type() == kLayer) layer.layer = r.i16(0);
          else if (r.type() == kDatatype) layer.datatype = r.i16(0);
          else if (r.type() == kXy) {
            const std::size_t n = r.payload().size() / 8;
            for (std::size_t i = 0; i < n; ++i) {
              pts.push_back({static_cast<Coord>(r.i32(i * 8)),
                             static_cast<Coord>(r.i32(i * 8 + 4))});
            }
          }
        }
        if (pts.size() >= 4 && pts.front() == pts.back()) pts.pop_back();
        if (pts.size() >= 3) {
          ensure_lib().cell(*current).add_shape(layer, SimplePolygon{std::move(pts)});
          ++rep.boundaries;
        }
        break;
      }
      case kSref:
      case kAref: {
        if (!current) throw DataError("GDS: reference outside structure");
        const bool is_aref = r.type() == kAref;
        std::string child;
        bool mirror = false;
        double mag = 1.0;
        double angle = 0.0;
        std::uint16_t cols = 1;
        std::uint16_t rows = 1;
        std::vector<Point> xy;
        while (r.next() && r.type() != kEndEl) {
          if (r.type() == kSname) child = r.str();
          else if (r.type() == kStrans) mirror = (r.u16(0) & 0x8000) != 0;
          else if (r.type() == kMag) mag = gds_detail::from_gds_real(r.u64(0));
          else if (r.type() == kAngle) angle = gds_detail::from_gds_real(r.u64(0));
          else if (r.type() == kColRow) {
            cols = r.u16(0);
            rows = r.u16(2);
          } else if (r.type() == kXy) {
            const std::size_t n = r.payload().size() / 8;
            for (std::size_t i = 0; i < n; ++i) {
              xy.push_back({static_cast<Coord>(r.i32(i * 8)),
                            static_cast<Coord>(r.i32(i * 8 + 4))});
            }
          }
        }
        if (child.empty() || xy.empty()) throw DataError("GDS: incomplete reference");
        Reference ref;
        ref.trans = CTrans{xy[0], angle, mag, mirror};
        if (is_aref) {
          if (xy.size() != 3 || cols == 0 || rows == 0)
            throw DataError("GDS: malformed AREF");
          ref.cols = cols;
          ref.rows = rows;
          ref.col_step = {static_cast<Coord>((Coord64(xy[1].x) - xy[0].x) / cols),
                          static_cast<Coord>((Coord64(xy[1].y) - xy[0].y) / cols)};
          ref.row_step = {static_cast<Coord>((Coord64(xy[2].x) - xy[0].x) / rows),
                          static_cast<Coord>((Coord64(xy[2].y) - xy[0].y) / rows)};
          ++rep.arefs;
        } else {
          ++rep.srefs;
        }
        pending.push_back({*current, child, ref});
        break;
      }
      case kPath:
      case kText:
      case kNode:
      case kBoxEl: {
        ++rep.skipped_elements;
        while (r.next() && r.type() != kEndEl) {
        }
        break;
      }
      case kEndLib:
        done = true;
        break;
      default:
        break;  // unknown record: skip
    }
  }
  if (!done) throw DataError("GDS: missing ENDLIB");

  Library& l = ensure_lib();
  for (auto& p : pending) {
    const auto child = l.find_cell(p.child);
    if (!child) throw DataError("GDS: reference to undefined structure " + p.child);
    p.ref.child = *child;
    l.cell(p.parent).add_reference(p.ref);
  }
  l.validate();
  if (report) *report = rep;
  return std::move(*lib);
}

Library read_gds(const std::string& path, GdsReadReport* report) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw DataError("cannot open for reading: " + path);
  return read_gds(is, report);
}

}  // namespace ebl
