#include "layout/gdsii.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "layout/stream.h"
#include "util/contracts.h"

namespace ebl {
namespace {

// Record types (record_type << 8 | data_type).
enum : std::uint16_t {
  kHeader = 0x0002,
  kBgnLib = 0x0102,
  kLibName = 0x0206,
  kUnits = 0x0305,
  kEndLib = 0x0400,
  kBgnStr = 0x0502,
  kStrName = 0x0606,
  kEndStr = 0x0700,
  kBoundary = 0x0800,
  kPath = 0x0900,
  kSref = 0x0A00,
  kAref = 0x0B00,
  kText = 0x0C00,
  kLayer = 0x0D02,
  kDatatype = 0x0E02,
  kWidth = 0x0F03,
  kXy = 0x1003,
  kEndEl = 0x1100,
  kSname = 0x1206,
  kColRow = 0x1302,
  kNode = 0x1500,
  kBoxEl = 0x2D00,
  kStrans = 0x1A01,
  kMag = 0x1B05,
  kAngle = 0x1C05,
};

class RecordWriter {
 public:
  explicit RecordWriter(std::ostream& os) : os_(os) {}

  void record(std::uint16_t type, const std::vector<std::uint8_t>& payload = {}) {
    const std::size_t len = payload.size() + 4;
    expects(len <= 0xFFFF, "GDS record too long");
    put16(static_cast<std::uint16_t>(len));
    put16(type);
    os_.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }

  static void push16(std::vector<std::uint8_t>& v, std::uint16_t x) {
    v.push_back(static_cast<std::uint8_t>(x >> 8));
    v.push_back(static_cast<std::uint8_t>(x));
  }
  static void push32(std::vector<std::uint8_t>& v, std::uint32_t x) {
    v.push_back(static_cast<std::uint8_t>(x >> 24));
    v.push_back(static_cast<std::uint8_t>(x >> 16));
    v.push_back(static_cast<std::uint8_t>(x >> 8));
    v.push_back(static_cast<std::uint8_t>(x));
  }
  static void push64(std::vector<std::uint8_t>& v, std::uint64_t x) {
    for (int s = 56; s >= 0; s -= 8) v.push_back(static_cast<std::uint8_t>(x >> s));
  }
  static void push_string(std::vector<std::uint8_t>& v, const std::string& s) {
    for (char c : s) v.push_back(static_cast<std::uint8_t>(c));
    if (v.size() % 2) v.push_back(0);  // pad to even length
  }

 private:
  void put16(std::uint16_t x) {
    const char b[2] = {static_cast<char>(x >> 8), static_cast<char>(x)};
    os_.write(b, 2);
  }
  std::ostream& os_;
};

class RecordReader {
 public:
  explicit RecordReader(std::istream& is) : is_(is) {}

  /// Reads the next record; returns false at a clean EOF. Tracks absolute
  /// byte offsets so every DataError names where the corruption is.
  bool next() {
    record_off_ = off_;
    std::uint8_t head[4];
    is_.read(reinterpret_cast<char*>(head), 4);
    if (is_.gcount() == 0) return false;
    if (is_.gcount() != 4)
      throw DataError("GDS: truncated record header at byte " + std::to_string(record_off_));
    off_ += 4;
    const std::uint16_t len = static_cast<std::uint16_t>((head[0] << 8) | head[1]);
    type_ = static_cast<std::uint16_t>((head[2] << 8) | head[3]);
    if (len < 4) {
      // Some writers emit a null word as padding at EOF.
      if (len == 0 && type_ == 0) return false;
      throw DataError("GDS: record length < 4 at byte " + std::to_string(record_off_));
    }
    payload_.resize(len - 4u);
    if (!payload_.empty()) {
      is_.read(reinterpret_cast<char*>(payload_.data()),
               static_cast<std::streamsize>(payload_.size()));
      if (static_cast<std::size_t>(is_.gcount()) != payload_.size())
        throw DataError("GDS: truncated record payload at byte " + std::to_string(record_off_));
      off_ += payload_.size();
    }
    return true;
  }

  /// Absolute offset of the first header byte of the current record.
  std::uint64_t record_offset() const { return record_off_; }

  /// Repositions to a previously recorded record offset (structures are
  /// self-contained, so BGNSTR offsets are safe re-parse points).
  void seek(std::uint64_t off) {
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(off));
    if (!is_) throw DataError("GDS: seek to byte " + std::to_string(off) + " failed");
    off_ = off;
    record_off_ = off;
  }

  std::uint16_t type() const { return type_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  std::uint16_t u16(std::size_t offset) const {
    expects(offset + 2 <= payload_.size(), "GDS: u16 out of record");
    return static_cast<std::uint16_t>((payload_[offset] << 8) | payload_[offset + 1]);
  }
  std::int16_t i16(std::size_t offset) const {
    return static_cast<std::int16_t>(u16(offset));
  }
  std::int32_t i32(std::size_t offset) const {
    expects(offset + 4 <= payload_.size(), "GDS: i32 out of record");
    return static_cast<std::int32_t>((std::uint32_t(payload_[offset]) << 24) |
                                     (std::uint32_t(payload_[offset + 1]) << 16) |
                                     (std::uint32_t(payload_[offset + 2]) << 8) |
                                     std::uint32_t(payload_[offset + 3]));
  }
  std::uint64_t u64(std::size_t offset) const {
    expects(offset + 8 <= payload_.size(), "GDS: u64 out of record");
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | payload_[offset + static_cast<std::size_t>(i)];
    return x;
  }
  std::string str() const {
    std::string s(payload_.begin(), payload_.end());
    while (!s.empty() && s.back() == '\0') s.pop_back();
    return s;
  }

 private:
  std::istream& is_;
  std::uint16_t type_ = 0;
  std::vector<std::uint8_t> payload_;
  std::uint64_t off_ = 0;
  std::uint64_t record_off_ = 0;
};

std::vector<std::uint8_t> i16_payload(std::int16_t v) {
  std::vector<std::uint8_t> p;
  RecordWriter::push16(p, static_cast<std::uint16_t>(v));
  return p;
}

// Zero-filled 12-word BGNLIB/BGNSTR timestamp payload (dates are irrelevant
// for data prep and zero keeps output byte-reproducible).
std::vector<std::uint8_t> timestamp_payload() {
  return std::vector<std::uint8_t>(24, 0);
}

void write_xy(RecordWriter& w, const SimplePolygon& contour) {
  std::vector<std::uint8_t> p;
  for (const Point pt : contour.points()) {
    RecordWriter::push32(p, static_cast<std::uint32_t>(pt.x));
    RecordWriter::push32(p, static_cast<std::uint32_t>(pt.y));
  }
  // GDSII closes boundaries explicitly by repeating the first point.
  if (!contour.empty()) {
    RecordWriter::push32(p, static_cast<std::uint32_t>(contour[0].x));
    RecordWriter::push32(p, static_cast<std::uint32_t>(contour[0].y));
  }
  w.record(kXy, p);
}

void write_boundary(RecordWriter& w, LayerKey layer, const SimplePolygon& contour) {
  w.record(kBoundary);
  w.record(kLayer, i16_payload(layer.layer));
  w.record(kDatatype, i16_payload(layer.datatype));
  write_xy(w, contour);
  w.record(kEndEl);
}

void write_transform(RecordWriter& w, const CTrans& t) {
  const bool need_strans = t.mirror() || t.mag() != 1.0 || t.angle() != 0.0;
  if (!need_strans) return;
  std::vector<std::uint8_t> flags;
  RecordWriter::push16(flags, t.mirror() ? 0x8000 : 0x0000);
  w.record(kStrans, flags);
  if (t.mag() != 1.0) {
    std::vector<std::uint8_t> p;
    RecordWriter::push64(p, gds_detail::to_gds_real(t.mag()));
    w.record(kMag, p);
  }
  if (t.angle() != 0.0) {
    std::vector<std::uint8_t> p;
    RecordWriter::push64(p, gds_detail::to_gds_real(t.angle()));
    w.record(kAngle, p);
  }
}

/// LayoutStream over a GDSII byte source. The header (records up to the
/// first BGNSTR) is parsed eagerly; next() then yields one structure per
/// call. BGNSTR offsets are recorded so read_cell() can re-parse any seen
/// structure via seek — GDS structures are self-contained, making them safe
/// re-parse points.
class GdsCellStream final : public LayoutStream {
 public:
  GdsCellStream(std::unique_ptr<std::istream> owned, std::istream& is)
      : owned_(std::move(owned)), r_(is) {
    if (!r_.next() || r_.type() != kHeader) throw DataError("GDS: missing HEADER record");
    if (!r_.next() || r_.type() != kBgnLib) throw DataError("GDS: missing BGNLIB record");
    for (;;) {
      if (!r_.next()) throw DataError("GDS: missing ENDLIB at byte " + offset_str());
      if (r_.type() == kLibName) {
        name_ = r_.str();
      } else if (r_.type() == kUnits) {
        dbu_um_ = gds_detail::from_gds_real(r_.u64(0));
        if (dbu_um_ <= 0) throw DataError("GDS: invalid UNITS at byte " + offset_str());
      } else if (r_.type() == kBgnStr || r_.type() == kEndLib) {
        data_start_ = r_.record_offset();
        have_record_ = true;
        break;
      }
      // other header records (timestamps, attributes): skip
    }
  }

  const std::string& library_name() const override { return name_; }
  double dbu_in_microns() const override { return dbu_um_; }
  const GdsReadReport& report() const { return rep_; }

  bool next(StreamCell& out, bool with_geometry) override {
    if (pass_done_) return false;
    for (;;) {
      if (!have_record_ && !r_.next())
        throw DataError("GDS: missing ENDLIB at byte " + offset_str());
      have_record_ = false;
      switch (r_.type()) {
        case kEndLib:
          pass_done_ = true;
          return false;
        case kBgnStr:
          offsets_.push_back(r_.record_offset());
          parse_structure(out, with_geometry);
          return true;
        case kBoundary:
        case kSref:
        case kAref:
          throw DataError("GDS: element outside structure at byte " + offset_str());
        default:
          break;  // unknown top-level record: skip
      }
    }
  }

  void rewind() override {
    r_.seek(data_start_);
    have_record_ = false;
    offsets_.clear();
    pass_done_ = false;
  }

  std::size_t cells_seen() const override { return offsets_.size(); }

  StreamCell read_cell(std::size_t index, bool with_geometry) override {
    expects(index < offsets_.size(), "LayoutStream::read_cell index out of range");
    r_.seek(offsets_[index]);
    have_record_ = false;
    ensures(r_.next() && r_.type() == kBgnStr, "GDS: structure vanished on re-read");
    StreamCell out;
    parse_structure(out, with_geometry);  // report counters re-count on re-parse
    return out;
  }

 private:
  std::string offset_str() const { return std::to_string(r_.record_offset()); }

  void parse_structure(StreamCell& out, bool with_geometry) {
    out = StreamCell{};
    bool named = false;
    for (;;) {
      if (!r_.next()) throw DataError("GDS: missing ENDSTR at byte " + offset_str());
      switch (r_.type()) {
        case kStrName:
          out.name = r_.str();
          named = true;
          ++rep_.structures;
          break;
        case kEndStr:
          if (!named)
            throw DataError("GDS: structure without STRNAME at byte " + offset_str());
          return;
        case kBoundary:
          if (!named)
            throw DataError("GDS: BOUNDARY outside structure at byte " + offset_str());
          parse_boundary(out, with_geometry);
          break;
        case kSref:
        case kAref:
          if (!named)
            throw DataError("GDS: reference outside structure at byte " + offset_str());
          parse_reference(out, r_.type() == kAref);
          break;
        case kPath:
        case kText:
        case kNode:
        case kBoxEl:
          ++rep_.skipped_elements;
          while (r_.next() && r_.type() != kEndEl) {
          }
          break;
        case kBgnStr:
        case kEndLib:
          throw DataError("GDS: missing ENDSTR at byte " + offset_str());
        default:
          break;  // unknown element record: skip
      }
    }
  }

  void parse_boundary(StreamCell& out, bool with_geometry) {
    LayerKey layer{};
    std::vector<Point> pts;
    while (r_.next() && r_.type() != kEndEl) {
      if (r_.type() == kLayer) layer.layer = r_.i16(0);
      else if (r_.type() == kDatatype) layer.datatype = r_.i16(0);
      else if (r_.type() == kXy) {
        const std::size_t n = r_.payload().size() / 8;
        for (std::size_t i = 0; i < n; ++i) {
          pts.push_back({static_cast<Coord>(r_.i32(i * 8)),
                         static_cast<Coord>(r_.i32(i * 8 + 4))});
        }
      }
    }
    if (pts.size() >= 4 && pts.front() == pts.back()) pts.pop_back();
    if (pts.size() >= 3) {
      ++rep_.boundaries;
      ++out.shape_count;
      if (with_geometry) out.shapes[layer].emplace_back(SimplePolygon{std::move(pts)});
    }
  }

  void parse_reference(StreamCell& out, bool is_aref) {
    const std::uint64_t ref_off = r_.record_offset();
    std::string child;
    bool mirror = false;
    double mag = 1.0;
    double angle = 0.0;
    std::uint16_t cols = 1;
    std::uint16_t rows = 1;
    std::vector<Point> xy;
    while (r_.next() && r_.type() != kEndEl) {
      if (r_.type() == kSname) child = r_.str();
      else if (r_.type() == kStrans) mirror = (r_.u16(0) & 0x8000) != 0;
      else if (r_.type() == kMag) mag = gds_detail::from_gds_real(r_.u64(0));
      else if (r_.type() == kAngle) angle = gds_detail::from_gds_real(r_.u64(0));
      else if (r_.type() == kColRow) {
        cols = r_.u16(0);
        rows = r_.u16(2);
      } else if (r_.type() == kXy) {
        const std::size_t n = r_.payload().size() / 8;
        for (std::size_t i = 0; i < n; ++i) {
          xy.push_back({static_cast<Coord>(r_.i32(i * 8)),
                        static_cast<Coord>(r_.i32(i * 8 + 4))});
        }
      }
    }
    if (child.empty() || xy.empty())
      throw DataError("GDS: incomplete reference at byte " + std::to_string(ref_off));
    StreamRef ref;
    ref.child = std::move(child);
    ref.trans = CTrans{xy[0], angle, mag, mirror};
    if (is_aref) {
      if (xy.size() != 3 || cols == 0 || rows == 0)
        throw DataError("GDS: malformed AREF at byte " + std::to_string(ref_off));
      ref.cols = cols;
      ref.rows = rows;
      ref.col_step = {static_cast<Coord>((Coord64(xy[1].x) - xy[0].x) / cols),
                      static_cast<Coord>((Coord64(xy[1].y) - xy[0].y) / cols)};
      ref.row_step = {static_cast<Coord>((Coord64(xy[2].x) - xy[0].x) / rows),
                      static_cast<Coord>((Coord64(xy[2].y) - xy[0].y) / rows)};
      ++rep_.arefs;
    } else {
      ++rep_.srefs;
    }
    out.refs.push_back(std::move(ref));
  }

  std::unique_ptr<std::istream> owned_;
  RecordReader r_;
  std::string name_ = "LIB";
  double dbu_um_ = 0.001;
  std::uint64_t data_start_ = 0;
  bool have_record_ = false;
  bool pass_done_ = false;
  std::vector<std::uint64_t> offsets_;
  GdsReadReport rep_;
};

}  // namespace

namespace gds_detail {

std::uint64_t to_gds_real(double value) {
  if (value == 0.0) return 0;
  std::uint64_t sign = 0;
  if (value < 0) {
    sign = 1ull << 63;
    value = -value;
  }
  // Normalize mantissa into [1/16, 1) with base-16 exponent.
  int exponent = 0;
  while (value >= 1.0) {
    value /= 16.0;
    ++exponent;
  }
  while (value < 1.0 / 16.0) {
    value *= 16.0;
    --exponent;
  }
  const auto mantissa = static_cast<std::uint64_t>(std::ldexp(value, 56));
  return sign | (static_cast<std::uint64_t>(exponent + 64) << 56) |
         (mantissa & 0x00FFFFFFFFFFFFFFull);
}

double from_gds_real(std::uint64_t bits) {
  if (bits == 0) return 0.0;
  const bool negative = (bits >> 63) != 0;
  const int exponent = static_cast<int>((bits >> 56) & 0x7F) - 64;
  const auto mantissa = static_cast<double>(bits & 0x00FFFFFFFFFFFFFFull);
  double value = std::ldexp(mantissa, -56) * std::pow(16.0, exponent);
  return negative ? -value : value;
}

}  // namespace gds_detail

void write_gds(const Library& lib, std::ostream& os) {
  RecordWriter w(os);
  w.record(kHeader, i16_payload(600));  // stream version 6
  w.record(kBgnLib, timestamp_payload());
  {
    std::vector<std::uint8_t> p;
    RecordWriter::push_string(p, lib.name());
    w.record(kLibName, p);
  }
  {
    // UNITS: size of one dbu in user units (user unit = 1 µm), then in
    // meters.
    std::vector<std::uint8_t> p;
    RecordWriter::push64(p, gds_detail::to_gds_real(lib.dbu_in_microns()));
    RecordWriter::push64(p, gds_detail::to_gds_real(lib.dbu_in_microns() * 1e-6));
    w.record(kUnits, p);
  }

  for (std::size_t i = 0; i < lib.cell_count(); ++i) {
    const Cell& c = lib.cell(CellId{static_cast<std::uint32_t>(i)});
    expects(c.name().size() <= 126, "GDS: cell name too long");
    w.record(kBgnStr, timestamp_payload());
    {
      std::vector<std::uint8_t> p;
      RecordWriter::push_string(p, c.name());
      w.record(kStrName, p);
    }
    for (const auto& [layer, polys] : c.shapes()) {
      for (const Polygon& poly : polys) {
        write_boundary(w, layer, poly.outer());
        // GDSII has no hole concept: holes are written as separate
        // boundaries on the same layer; the reader re-merges by winding
        // when it runs booleans. (Keyholing is not needed for data prep.)
        for (const auto& hole : poly.holes()) write_boundary(w, layer, hole);
      }
    }
    for (const Reference& r : c.references()) {
      const Cell& child = lib.cell(r.child);
      if (r.is_array()) {
        w.record(kAref);
        std::vector<std::uint8_t> p;
        RecordWriter::push_string(p, child.name());
        w.record(kSname, p);
        write_transform(w, r.trans);
        p.clear();
        RecordWriter::push16(p, static_cast<std::uint16_t>(r.cols));
        RecordWriter::push16(p, static_cast<std::uint16_t>(r.rows));
        w.record(kColRow, p);
        p.clear();
        const Point o = r.trans.disp();
        const Point pc{static_cast<Coord>(o.x + Coord64(r.col_step.x) * r.cols),
                       static_cast<Coord>(o.y + Coord64(r.col_step.y) * r.cols)};
        const Point pr{static_cast<Coord>(o.x + Coord64(r.row_step.x) * r.rows),
                       static_cast<Coord>(o.y + Coord64(r.row_step.y) * r.rows)};
        for (const Point pt : {o, pc, pr}) {
          RecordWriter::push32(p, static_cast<std::uint32_t>(pt.x));
          RecordWriter::push32(p, static_cast<std::uint32_t>(pt.y));
        }
        w.record(kXy, p);
        w.record(kEndEl);
      } else {
        w.record(kSref);
        std::vector<std::uint8_t> p;
        RecordWriter::push_string(p, child.name());
        w.record(kSname, p);
        write_transform(w, r.trans);
        p.clear();
        RecordWriter::push32(p, static_cast<std::uint32_t>(r.trans.disp().x));
        RecordWriter::push32(p, static_cast<std::uint32_t>(r.trans.disp().y));
        w.record(kXy, p);
        w.record(kEndEl);
      }
    }
    w.record(kEndStr);
  }
  w.record(kEndLib);
}

void write_gds(const Library& lib, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw DataError("cannot open for writing: " + path);
  write_gds(lib, os);
  if (!os) throw DataError("write failed: " + path);
}

Library read_gds(std::istream& is, GdsReadReport* report) {
  // Whole-library reads are a thin shell over the streaming parser: drain
  // every structure, then resolve names. Duplicate STRNAME structures merge
  // into one cell, preserving file order of shapes and references.
  GdsCellStream stream(nullptr, is);
  std::vector<StreamCell> cells;
  {
    StreamCell c;
    while (stream.next(c, true)) cells.push_back(std::move(c));
  }
  Library lib(stream.library_name(), stream.dbu_in_microns());
  std::vector<CellId> ids(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto existing = lib.find_cell(cells[i].name);
    ids[i] = existing ? *existing : lib.add_cell(cells[i].name);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cell& cell = lib.cell(ids[i]);
    for (auto& [layer, polys] : cells[i].shapes)
      for (Polygon& poly : polys) cell.add_shape(layer, std::move(poly));
    for (const StreamRef& sr : cells[i].refs) {
      const auto child = lib.find_cell(sr.child);
      if (!child) throw DataError("GDS: reference to undefined structure " + sr.child);
      Reference ref;
      ref.child = *child;
      ref.trans = sr.trans;
      ref.cols = sr.cols;
      ref.rows = sr.rows;
      ref.col_step = sr.col_step;
      ref.row_step = sr.row_step;
      cell.add_reference(ref);
    }
  }
  lib.validate();
  if (report) *report = stream.report();
  return lib;
}

Library read_gds(const std::string& path, GdsReadReport* report) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw DataError("cannot open for reading: " + path);
  return read_gds(is, report);
}

std::unique_ptr<LayoutStream> open_gds_stream(std::unique_ptr<std::istream> is) {
  expects(is != nullptr, "open_gds_stream: null stream");
  std::istream& ref = *is;
  return std::make_unique<GdsCellStream>(std::move(is), ref);
}

std::unique_ptr<LayoutStream> open_gds_stream(const std::string& path) {
  auto is = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*is) throw DataError("cannot open for reading: " + path);
  return open_gds_stream(std::move(is));
}

}  // namespace ebl
