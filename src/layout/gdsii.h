// GDSII stream format reader/writer.
//
// Supports the element set an e-beam data-prep flow needs: BOUNDARY,
// SREF, AREF (with STRANS/MAG/ANGLE), multiple structures, big-endian
// records, and 8-byte excess-64 floating point for UNITS/MAG/ANGLE.
// PATH/TEXT/NODE/BOX elements are skipped on read (with a counter), never
// written. This mirrors what 1979-era pattern-generation tapes carried:
// polygon geometry plus hierarchy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "layout/library.h"

namespace ebl {

/// Result counters from a GDSII read.
struct GdsReadReport {
  std::size_t structures = 0;
  std::size_t boundaries = 0;
  std::size_t srefs = 0;
  std::size_t arefs = 0;
  std::size_t skipped_elements = 0;  ///< PATH/TEXT/NODE/BOX
};

/// Writes @p lib to @p path. Throws DataError on I/O failure or on cell
/// names longer than GDSII permits (32 chars by the strict spec; this
/// writer allows up to 126 and pads to even length).
void write_gds(const Library& lib, const std::string& path);
void write_gds(const Library& lib, std::ostream& os);

/// Reads a GDSII file into a new Library. Unknown records are skipped;
/// structural errors (truncated records, missing ENDLIB, forward references
/// to undefined structures) throw DataError.
Library read_gds(const std::string& path, GdsReadReport* report = nullptr);
Library read_gds(std::istream& is, GdsReadReport* report = nullptr);

namespace gds_detail {

/// Converts to/from the GDSII 8-byte excess-64 base-16 real format.
/// Exposed for unit testing.
std::uint64_t to_gds_real(double value);
double from_gds_real(std::uint64_t bits);

}  // namespace gds_detail

}  // namespace ebl
