// Layer/datatype addressing (GDSII convention).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace ebl {

/// A GDSII layer-datatype pair. Exposure layers, dose layers, and derived
/// layers are all addressed this way.
struct LayerKey {
  std::int16_t layer = 0;
  std::int16_t datatype = 0;

  friend constexpr bool operator==(LayerKey, LayerKey) = default;
  friend constexpr auto operator<=>(LayerKey a, LayerKey b) {
    if (auto c = a.layer <=> b.layer; c != 0) return c;
    return a.datatype <=> b.datatype;
  }

  friend std::ostream& operator<<(std::ostream& os, LayerKey k) {
    return os << k.layer << '/' << k.datatype;
  }
};

struct LayerKeyHash {
  std::size_t operator()(LayerKey k) const {
    return std::hash<std::uint32_t>{}(
        (static_cast<std::uint32_t>(static_cast<std::uint16_t>(k.layer)) << 16) |
        static_cast<std::uint16_t>(k.datatype));
  }
};

}  // namespace ebl
