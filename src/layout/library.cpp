#include "layout/library.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/contracts.h"

namespace ebl {

Library::Library(std::string name, double dbu_in_microns)
    : name_(std::move(name)), dbu_um_(dbu_in_microns) {
  expects(dbu_in_microns > 0, "Library: dbu must be positive");
}

CellId Library::add_cell(const std::string& cell_name) {
  expects(!cell_name.empty(), "Library::add_cell: empty name");
  if (find_cell(cell_name)) throw DataError("duplicate cell name: " + cell_name);
  cells_.emplace_back(cell_name);
  bbox_cache_.emplace_back();
  return CellId{static_cast<std::uint32_t>(cells_.size() - 1)};
}

std::optional<CellId> Library::find_cell(const std::string& cell_name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name() == cell_name) return CellId{static_cast<std::uint32_t>(i)};
  }
  return std::nullopt;
}

void Library::check_id(CellId id) const {
  expects(id.value < cells_.size(), "Library: invalid CellId");
}

Cell& Library::cell(CellId id) {
  check_id(id);
  bbox_cache_[id.value].reset();  // mutation invalidates the cache
  return cells_[id.value];
}

const Cell& Library::cell(CellId id) const {
  check_id(id);
  return cells_[id.value];
}

std::vector<CellId> Library::top_cells() const {
  std::vector<bool> referenced(cells_.size(), false);
  for (const Cell& c : cells_) {
    for (const Reference& r : c.references()) {
      if (r.child.value < cells_.size()) referenced[r.child.value] = true;
    }
  }
  std::vector<CellId> tops;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!referenced[i]) tops.push_back(CellId{static_cast<std::uint32_t>(i)});
  }
  return tops;
}

void Library::validate() const {
  // DFS cycle detection with colors: 0 = new, 1 = on stack, 2 = done.
  std::vector<int> color(cells_.size(), 0);
  std::function<void(std::size_t)> dfs = [&](std::size_t i) {
    color[i] = 1;
    for (const Reference& r : cells_[i].references()) {
      if (r.child.value >= cells_.size())
        throw DataError("dangling cell reference in " + cells_[i].name());
      if (color[r.child.value] == 1)
        throw DataError("reference cycle through cell " + cells_[r.child.value].name());
      if (color[r.child.value] == 0) dfs(r.child.value);
    }
    color[i] = 2;
  };
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (color[i] == 0) dfs(i);
  }
}

void Library::each_instance(
    CellId top, const std::function<void(CellId, const CTrans&)>& visit) const {
  check_id(top);
  // Depth guard doubles as cheap cycle protection during traversal.
  constexpr int kMaxDepth = 64;
  std::function<void(CellId, const CTrans&, int)> walk = [&](CellId id, const CTrans& t,
                                                             int depth) {
    if (depth > kMaxDepth)
      throw DataError("hierarchy deeper than " + std::to_string(kMaxDepth) +
                      " (cycle?) under " + cells_[top.value].name());
    visit(id, t);
    for (const Reference& r : cells_[id.value].references()) {
      check_id(r.child);
      for (std::uint32_t row = 0; row < r.rows; ++row) {
        for (std::uint32_t col = 0; col < r.cols; ++col) {
          // GDSII AREF: steps displace in parent coordinates.
          const Point shift{
              static_cast<Coord>(Coord64(r.col_step.x) * col + Coord64(r.row_step.x) * row),
              static_cast<Coord>(Coord64(r.col_step.y) * col + Coord64(r.row_step.y) * row)};
          const CTrans placed =
              CTrans{r.trans.disp() + shift, r.trans.angle(), r.trans.mag(),
                     r.trans.mirror()};
          walk(r.child, t * placed, depth + 1);
        }
      }
    }
  };
  walk(top, CTrans{}, 0);
}

PolygonSet Library::flatten(CellId top, LayerKey layer) const {
  PolygonSet out;
  each_instance(top, [&](CellId id, const CTrans& t) {
    for (const Polygon& p : cells_[id.value].shapes_on(layer)) {
      out.insert(p.transformed(t));
    }
  });
  return out;
}

std::vector<LayerKey> Library::layers_under(CellId top) const {
  std::set<LayerKey> keys;
  each_instance(top, [&](CellId id, const CTrans&) {
    for (LayerKey k : cells_[id.value].layers()) keys.insert(k);
  });
  return {keys.begin(), keys.end()};
}

Box Library::bbox(CellId top) const {
  check_id(top);
  if (bbox_cache_[top.value]) return *bbox_cache_[top.value];
  Box b = cells_[top.value].local_bbox();
  for (const Reference& r : cells_[top.value].references()) {
    check_id(r.child);
    const Box child_box = bbox(r.child);
    if (child_box.empty()) continue;
    // Array steps are linear, so the union over the grid equals the union
    // over the four corner instances.
    const std::uint32_t corner_cols[2] = {0, r.cols - 1};
    const std::uint32_t corner_rows[2] = {0, r.rows - 1};
    for (std::uint32_t row : corner_rows) {
      for (std::uint32_t col : corner_cols) {
        const Point shift{
            static_cast<Coord>(Coord64(r.col_step.x) * col + Coord64(r.row_step.x) * row),
            static_cast<Coord>(Coord64(r.col_step.y) * col + Coord64(r.row_step.y) * row)};
        const CTrans placed = CTrans{r.trans.disp() + shift, r.trans.angle(),
                                     r.trans.mag(), r.trans.mirror()};
        // Transform the child's box corners (conservative for rotations).
        Box tb;
        tb += placed(child_box.lo);
        tb += placed(child_box.hi);
        tb += placed(Point{child_box.lo.x, child_box.hi.y});
        tb += placed(Point{child_box.hi.x, child_box.lo.y});
        b += tb;
      }
    }
  }
  bbox_cache_[top.value] = b;
  return b;
}

LibraryStats Library::stats(CellId top) const {
  LibraryStats s;
  s.cells = cells_.size();
  for (const Cell& c : cells_) {
    s.local_shapes += c.local_shape_count();
    s.references += c.references().size();
  }
  each_instance(top, [&](CellId id, const CTrans&) {
    s.flat_instances += 1;
    s.flat_shapes += cells_[id.value].local_shape_count();
  });
  s.flat_instances -= 1;  // do not count the top cell itself
  return s;
}

}  // namespace ebl
