// The layout library: owns cells, resolves hierarchy, flattens geometry.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "geom/polygon_set.h"
#include "layout/cell.h"

namespace ebl {

/// Aggregate hierarchy statistics (see Library::stats).
struct LibraryStats {
  std::size_t cells = 0;
  std::size_t local_shapes = 0;        ///< shapes stored across all cells
  std::size_t references = 0;          ///< reference records (arrays count once)
  std::uint64_t flat_instances = 0;    ///< expanded instances under the top cell
  std::uint64_t flat_shapes = 0;       ///< expanded shapes under the top cell
};

/// A GDSII-style library: a set of named cells with hierarchy.
///
/// Database units are fixed at 1 dbu = @p dbu_in_microns µm (default 1 nm).
/// The hierarchy must be acyclic; validate() checks and flattening throws on
/// cycles.
class Library {
 public:
  explicit Library(std::string name, double dbu_in_microns = 0.001);

  const std::string& name() const { return name_; }
  double dbu_in_microns() const { return dbu_um_; }

  /// Creates a new empty cell; names must be unique.
  CellId add_cell(const std::string& cell_name);

  std::optional<CellId> find_cell(const std::string& cell_name) const;

  Cell& cell(CellId id);
  const Cell& cell(CellId id) const;
  std::size_t cell_count() const { return cells_.size(); }

  /// Cells not referenced by any other cell.
  std::vector<CellId> top_cells() const;

  /// Throws DataError if the hierarchy contains a reference cycle or a
  /// dangling CellId.
  void validate() const;

  /// Visits every expanded instance (including array elements) beneath
  /// @p top depth-first, with the accumulated parent-to-root transform.
  /// The visitor is called for @p top itself with the identity transform.
  void each_instance(CellId top,
                     const std::function<void(CellId, const CTrans&)>& visit) const;

  /// All shapes of @p layer beneath @p top, transformed to top coordinates.
  PolygonSet flatten(CellId top, LayerKey layer) const;

  /// All layers used anywhere beneath @p top.
  std::vector<LayerKey> layers_under(CellId top) const;

  /// Bounding box over all layers beneath @p top (cached per cell).
  Box bbox(CellId top) const;

  LibraryStats stats(CellId top) const;

 private:
  void check_id(CellId id) const;

  std::string name_;
  double dbu_um_;
  std::vector<Cell> cells_;
  mutable std::vector<std::optional<Box>> bbox_cache_;
};

}  // namespace ebl
