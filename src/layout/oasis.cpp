#include "layout/oasis.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "layout/stream.h"
#include "util/contracts.h"

namespace ebl {
namespace {

constexpr char kMagic[] = "%SEMI-OASIS\r\n";
constexpr std::size_t kMagicLen = 13;

// Record ids (SEMI P39 table 6). Odd/even pairs differ in how names are
// numbered (implicit counter vs. explicit reference number) or, for CELL,
// whether the cell is addressed by refnum (13) or name (14).
enum RecordId : std::uint8_t {
  kPad = 0,
  kStart = 1,
  kEnd = 2,
  kCellnameImplicit = 3,
  kCellnameExplicit = 4,
  kTextstringImplicit = 5,
  kTextstringExplicit = 6,
  kPropnameImplicit = 7,
  kPropnameExplicit = 8,
  kPropstringImplicit = 9,
  kPropstringExplicit = 10,
  kLayernameGeometry = 11,
  kLayernameText = 12,
  kCellRefnum = 13,
  kCellName = 14,
  kXyAbsolute = 15,
  kXyRelative = 16,
  kPlacement = 17,
  kPlacementTransform = 18,
  kText = 19,
  kRectangle = 20,
  kPolygon = 21,
  kPath = 22,
  kTrapezoidAB = 23,
  kTrapezoidA = 24,
  kTrapezoidB = 25,
  kCtrapezoid = 26,
  kCircle = 27,
  kProperty = 28,
  kPropertyRepeat = 29,
  kXnameImplicit = 30,
  kXnameExplicit = 31,
  kXelement = 32,
  kXgeometry = 33,
  kCblock = 34,
};

const char* record_name(unsigned id) {
  switch (id) {
    case kCtrapezoid: return "CTRAPEZOID";
    case kCircle: return "CIRCLE";
    case kXnameImplicit:
    case kXnameExplicit: return "XNAME";
    case kXelement: return "XELEMENT";
    case kXgeometry: return "XGEOMETRY";
    case kCblock: return "CBLOCK";
    default: return "record";
  }
}

/// Sanity bound against hostile length operands (strings, repetition dims).
constexpr std::uint64_t kMaxStringLen = 64ull << 20;
constexpr std::uint64_t kMaxRepetitionCount = 1ull << 24;

}  // namespace

namespace oasis_detail {

Cursor::Cursor(std::istream& is, std::uint64_t offset) : is_(is), off_(offset) {}

void Cursor::fail(const std::string& what) const {
  throw DataError("OASIS: " + what + " at byte " + std::to_string(off_));
}

bool Cursor::at_eof() {
  return is_.peek() == std::char_traits<char>::eof();
}

std::uint8_t Cursor::byte() {
  const int c = is_.get();
  if (c == std::char_traits<char>::eof()) fail("unexpected end of file");
  ++off_;
  return static_cast<std::uint8_t>(c);
}

std::uint64_t Cursor::read_uint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = byte();
    const std::uint64_t bits = b & 0x7Fu;
    if (shift == 63 && bits > 1) fail("unsigned integer overflows 64 bits");
    if (shift > 63) fail("unsigned integer overflows 64 bits");
    v |= bits << shift;
    if (!(b & 0x80u)) return v;
    shift += 7;
  }
}

std::int64_t Cursor::read_sint() {
  const std::uint64_t u = read_uint();
  const std::uint64_t mag = u >> 1;
  if (u & 1) {
    if (mag > 0x8000000000000000ull - 1) fail("signed integer overflows 64 bits");
    return -static_cast<std::int64_t>(mag);
  }
  return static_cast<std::int64_t>(mag);
}

double Cursor::read_real() {
  const std::uint64_t type = read_uint();
  double v = 0.0;
  switch (type) {
    case 0: v = static_cast<double>(read_uint()); break;
    case 1: v = -static_cast<double>(read_uint()); break;
    case 2:
    case 3: {
      const std::uint64_t d = read_uint();
      if (d == 0) fail("real with zero denominator");
      v = 1.0 / static_cast<double>(d);
      if (type == 3) v = -v;
      break;
    }
    case 4:
    case 5: {
      const std::uint64_t a = read_uint();
      const std::uint64_t b = read_uint();
      if (b == 0) fail("real with zero denominator");
      v = static_cast<double>(a) / static_cast<double>(b);
      if (type == 5) v = -v;
      break;
    }
    case 6: {
      std::uint8_t raw[4];
      for (auto& r : raw) r = byte();
      float f = 0;
      static_assert(sizeof(f) == 4);
      std::memcpy(&f, raw, 4);  // little-endian per spec; matches host
      v = f;
      break;
    }
    case 7: {
      std::uint8_t raw[8];
      for (auto& r : raw) r = byte();
      static_assert(sizeof(v) == 8);
      std::memcpy(&v, raw, 8);
      break;
    }
    default:
      fail("invalid real type " + std::to_string(type));
  }
  if (!std::isfinite(v)) fail("non-finite real value");
  return v;
}

std::string Cursor::read_string(bool printable) {
  const std::uint64_t len = read_uint();
  if (len > kMaxStringLen) fail("string length " + std::to_string(len) + " exceeds sanity bound");
  if (printable && len == 0) fail("empty n-string");
  std::string s(static_cast<std::size_t>(len), '\0');
  if (len) {
    is_.read(s.data(), static_cast<std::streamsize>(len));
    if (static_cast<std::uint64_t>(is_.gcount()) != len) fail("truncated string");
    off_ += len;
  }
  if (printable) {
    for (const char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (u < 0x21 || u > 0x7E) fail("non-printable character in n-string");
    }
  }
  return s;
}

Coord Cursor::read_coord() {
  const std::int64_t v = read_sint();
  if (v < std::numeric_limits<Coord>::min() || v > std::numeric_limits<Coord>::max())
    fail("coordinate overflows the 32-bit database grid");
  return static_cast<Coord>(v);
}

Coord Cursor::read_ucoord() {
  const std::uint64_t v = read_uint();
  if (v > static_cast<std::uint64_t>(std::numeric_limits<Coord>::max()))
    fail("coordinate overflows the 32-bit database grid");
  return static_cast<Coord>(v);
}

void write_uint(std::ostream& os, std::uint64_t v) {
  do {
    std::uint8_t b = v & 0x7Fu;
    v >>= 7;
    if (v) b |= 0x80u;
    os.put(static_cast<char>(b));
  } while (v);
}

void write_sint(std::ostream& os, std::int64_t v) {
  const bool neg = v < 0;
  const auto mag = neg ? static_cast<std::uint64_t>(-(v + 1)) + 1 : static_cast<std::uint64_t>(v);
  expects(mag < (1ull << 62), "OASIS sint magnitude out of range");
  write_uint(os, (mag << 1) | (neg ? 1u : 0u));
}

void write_real(std::ostream& os, double v) {
  if (std::floor(v) == v && std::abs(v) < 9.0e18) {
    // Exact whole number: type 0 (positive) / 1 (negative).
    write_uint(os, v < 0 ? 1 : 0);
    write_uint(os, static_cast<std::uint64_t>(std::abs(v)));
    return;
  }
  write_uint(os, 7);  // IEEE float64, little-endian: exact for any double
  std::uint8_t raw[8];
  std::memcpy(raw, &v, 8);
  for (const std::uint8_t b : raw) os.put(static_cast<char>(b));
}

void write_string(std::ostream& os, const std::string& s) {
  write_uint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::size_t uint_length(std::uint64_t v) {
  std::size_t n = 0;
  do {
    ++n;
    v >>= 7;
  } while (v);
  return n;
}

}  // namespace oasis_detail

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

using oasis_detail::write_sint;
using oasis_detail::write_string;
using oasis_detail::write_uint;

bool is_n_string(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x21 || u > 0x7E) return false;
  }
  return true;
}

std::uint64_t layer_operand(std::int16_t v, const char* what) {
  if (v < 0) throw DataError(std::string("OASIS: negative ") + what + " not representable");
  return static_cast<std::uint64_t>(v);
}

/// Writes a g-delta in form 2 (explicit x with sign, then y as sint) — one
/// form for every vector keeps the encoder trivially correct.
void write_gdelta(std::ostream& os, Point d) {
  const bool neg = d.x < 0;
  const auto mag = static_cast<std::uint64_t>(neg ? -Coord64(d.x) : Coord64(d.x));
  write_uint(os, (mag << 2) | (neg ? 2u : 0u) | 1u);
  write_sint(os, d.y);
}

bool horizontal(Point d) { return d.y == 0; }

/// True when the contour is closed Manhattan with strictly alternating
/// horizontal/vertical edges — encodable as a type 0/1 point list.
bool manhattan_alternating(std::span<const Point> pts) {
  const std::size_t n = pts.size();
  if (n < 4 || n % 2 != 0) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = pts[i];
    const Point b = pts[(i + 1) % n];
    const Point d = b - a;
    if ((d.x == 0) == (d.y == 0)) return false;  // zero-length or diagonal
    const Point c = pts[(i + 2) % n];
    const Point e = c - b;
    if (horizontal(d) == horizontal(e)) return false;
  }
  return true;
}

/// Point list for a POLYGON record: vertex 0 becomes the record's (x,y); the
/// remaining vertices are deltas. Type 0/1 when Manhattan-alternating (the
/// last two edges are implicit), type 4 g-deltas otherwise (the closing edge
/// is implicit).
void write_polygon_point_list(std::ostream& os, std::span<const Point> pts) {
  const std::size_t n = pts.size();
  if (manhattan_alternating(pts)) {
    const Point first = pts[1] - pts[0];
    write_uint(os, horizontal(first) ? 0 : 1);
    write_uint(os, n - 2);
    for (std::size_t i = 0; i + 2 < n; ++i) {
      const Point d = pts[i + 1] - pts[i];
      write_sint(os, horizontal(d) ? d.x : d.y);
    }
    return;
  }
  write_uint(os, 4);
  write_uint(os, n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) write_gdelta(os, pts[i + 1] - pts[i]);
}

/// Per-cell writer modal state; mirrors the reader so layer/datatype/width/
/// height repeats compress away (and the modal machinery gets exercised on
/// every round-trip).
struct WriterModal {
  std::optional<std::int16_t> layer;
  std::optional<std::int16_t> datatype;
  std::optional<Coord> width;
  std::optional<Coord> height;
};

class OasisFileWriter {
 public:
  explicit OasisFileWriter(std::ostream& os) : os_(os) {}

  void begin(double dbu_in_microns) {
    os_.write(kMagic, static_cast<std::streamsize>(kMagicLen));
    os_.put(static_cast<char>(kStart));
    write_string(os_, "1.0");
    expects(dbu_in_microns > 0, "OASIS: dbu must be positive");
    oasis_detail::write_real(os_, 1.0 / dbu_in_microns);  // grid steps per micron
    write_uint(os_, 0);                                   // table offsets in START...
    for (int i = 0; i < 12; ++i) write_uint(os_, 0);      // ...all absent
  }

  void begin_cell(const std::string& name) {
    if (!is_n_string(name))
      throw DataError("OASIS: cell name is not a valid n-string: \"" + name + "\"");
    os_.put(static_cast<char>(kCellName));
    write_string(os_, name);
    modal_ = {};
  }

  void rectangle(LayerKey lk, const Box& b) {
    std::uint8_t info = 0x10 | 0x08;  // X Y always explicit
    const auto w = static_cast<Coord>(b.width());
    const auto h = static_cast<Coord>(b.height());
    const bool wl = modal_.layer != lk.layer;
    const bool wd = modal_.datatype != lk.datatype;
    const bool ww = modal_.width != w;
    const bool wh = modal_.height != h;
    if (ww) info |= 0x40;
    if (wh) info |= 0x20;
    if (wd) info |= 0x02;
    if (wl) info |= 0x01;
    os_.put(static_cast<char>(kRectangle));
    os_.put(static_cast<char>(info));
    if (wl) write_uint(os_, layer_operand(lk.layer, "layer"));
    if (wd) write_uint(os_, layer_operand(lk.datatype, "datatype"));
    if (ww) write_uint(os_, static_cast<std::uint64_t>(w));
    if (wh) write_uint(os_, static_cast<std::uint64_t>(h));
    write_sint(os_, b.lo.x);
    write_sint(os_, b.lo.y);
    modal_.layer = lk.layer;
    modal_.datatype = lk.datatype;
    modal_.width = w;
    modal_.height = h;
  }

  void polygon(LayerKey lk, const SimplePolygon& contour) {
    expects(contour.size() >= 3, "OASIS: polygon needs at least 3 vertices");
    std::uint8_t info = 0x20 | 0x10 | 0x08;  // P X Y
    const bool wl = modal_.layer != lk.layer;
    const bool wd = modal_.datatype != lk.datatype;
    if (wd) info |= 0x02;
    if (wl) info |= 0x01;
    os_.put(static_cast<char>(kPolygon));
    os_.put(static_cast<char>(info));
    if (wl) write_uint(os_, layer_operand(lk.layer, "layer"));
    if (wd) write_uint(os_, layer_operand(lk.datatype, "datatype"));
    write_polygon_point_list(os_, contour.points());
    write_sint(os_, contour[0].x);
    write_sint(os_, contour[0].y);
    modal_.layer = lk.layer;
    modal_.datatype = lk.datatype;
  }

  void placement(const std::string& child, const Reference& r) {
    if (!is_n_string(child))
      throw DataError("OASIS: cell name is not a valid n-string: \"" + child + "\"");
    const CTrans& t = r.trans;
    const bool rep = r.is_array();
    if (t.is_orthogonal()) {
      const Trans exact = t.to_trans();
      std::uint8_t info = 0x80 | 0x20 | 0x10;  // C(name) X Y
      if (rep) info |= 0x08;
      info |= static_cast<std::uint8_t>(exact.rot90() << 1);
      if (t.mirror()) info |= 0x01;
      os_.put(static_cast<char>(kPlacement));
      os_.put(static_cast<char>(info));
      write_string(os_, child);
    } else {
      std::uint8_t info = 0x80 | 0x20 | 0x10;
      if (rep) info |= 0x08;
      if (t.mag() != 1.0) info |= 0x04;
      if (t.angle() != 0.0) info |= 0x02;
      if (t.mirror()) info |= 0x01;
      os_.put(static_cast<char>(kPlacementTransform));
      os_.put(static_cast<char>(info));
      write_string(os_, child);
      if (t.mag() != 1.0) oasis_detail::write_real(os_, t.mag());
      if (t.angle() != 0.0) oasis_detail::write_real(os_, t.angle());
    }
    write_sint(os_, t.disp().x);
    write_sint(os_, t.disp().y);
    if (rep) write_repetition(r);
  }

  void end() {
    os_.put(static_cast<char>(kEnd));
    // END records are exactly 256 bytes: 1 id + 2 length prefix + 252 pad +
    // 1 validation scheme (0 = none).
    write_string(os_, std::string(252, '\0'));
    write_uint(os_, 0);
  }

 private:
  void write_repetition(const Reference& r) {
    const bool x_axis = r.col_step.y == 0 && r.col_step.x >= 0;
    const bool y_axis = r.row_step.x == 0 && r.row_step.y >= 0;
    if (r.cols > 1 && r.rows > 1 && x_axis && y_axis) {
      write_uint(os_, 1);  // NxM axis-aligned matrix
      write_uint(os_, r.cols - 2);
      write_uint(os_, r.rows - 2);
      write_uint(os_, static_cast<std::uint64_t>(r.col_step.x));
      write_uint(os_, static_cast<std::uint64_t>(r.row_step.y));
    } else if (r.rows == 1 && r.cols > 1 && x_axis) {
      write_uint(os_, 2);  // x row
      write_uint(os_, r.cols - 2);
      write_uint(os_, static_cast<std::uint64_t>(r.col_step.x));
    } else if (r.cols == 1 && r.rows > 1 && y_axis) {
      write_uint(os_, 3);  // y column
      write_uint(os_, r.rows - 2);
      write_uint(os_, static_cast<std::uint64_t>(r.row_step.y));
    } else if (r.cols > 1 && r.rows > 1) {
      write_uint(os_, 8);  // 2D with arbitrary displacement vectors
      write_uint(os_, r.cols - 2);
      write_uint(os_, r.rows - 2);
      write_gdelta(os_, r.col_step);
      write_gdelta(os_, r.row_step);
    } else {
      write_uint(os_, 9);  // 1D with arbitrary displacement vector
      const bool along_cols = r.cols > 1;
      write_uint(os_, (along_cols ? r.cols : r.rows) - 2);
      write_gdelta(os_, along_cols ? r.col_step : r.row_step);
    }
  }

  std::ostream& os_;
  WriterModal modal_;
};

void write_contour(OasisFileWriter& w, LayerKey lk, const SimplePolygon& contour) {
  if (contour.empty()) return;
  const Box b = contour.bbox();
  if (contour == SimplePolygon::rect(b))
    w.rectangle(lk, b);
  else
    w.polygon(lk, contour);
}

}  // namespace

void write_oas(const Library& lib, std::ostream& os) {
  OasisFileWriter w(os);
  w.begin(lib.dbu_in_microns());
  for (std::size_t i = 0; i < lib.cell_count(); ++i) {
    const Cell& c = lib.cell(CellId{static_cast<std::uint32_t>(i)});
    w.begin_cell(c.name());
    for (const auto& [layer, polys] : c.shapes()) {
      for (const Polygon& poly : polys) {
        write_contour(w, layer, poly.outer());
        // As in the GDSII writer, holes become separate contours on the same
        // layer; downstream booleans re-merge by winding.
        for (const auto& hole : poly.holes()) write_contour(w, layer, hole);
      }
    }
    for (const Reference& r : c.references()) w.placement(lib.cell(r.child).name(), r);
  }
  w.end();
}

void write_oas(const Library& lib, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw DataError("cannot open for writing: " + path);
  write_oas(lib, os);
  if (!os) throw DataError("write failed: " + path);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

using oasis_detail::Cursor;

/// A parsed repetition: either a regular cols x rows grid or an explicit
/// offset list (always starting at {0,0}).
struct Repetition {
  bool regular = true;
  std::uint32_t cols = 1;
  std::uint32_t rows = 1;
  Point col_step{0, 0};
  Point row_step{0, 0};
  std::vector<Point> offsets;
};

/// Modal variables (SEMI P39 §10). All reset at every CELL record; positions
/// reset to 0, everything else to "undefined" (use-before-set is a
/// DataError).
struct Modal {
  bool xy_relative = false;
  Coord64 placement_x = 0, placement_y = 0;
  Coord64 geometry_x = 0, geometry_y = 0;
  Coord64 text_x = 0, text_y = 0;
  std::optional<std::int16_t> layer, datatype;
  std::optional<std::int16_t> textlayer, texttype;
  std::optional<Coord> geometry_w, geometry_h;
  std::optional<Coord> path_halfwidth;
  std::optional<Coord> path_start_ext, path_end_ext;
  std::optional<std::vector<Point>> polygon_points;
  std::optional<std::vector<Point>> path_points;
  std::optional<Repetition> repetition;
  std::optional<std::string> placement_name;
  std::optional<std::uint64_t> placement_refnum;
  bool placement_set = false;
  bool text_string_set = false;
  bool prop_name_set = false;
  bool prop_values_set = false;
};

class OasisParser {
 public:
  explicit OasisParser(std::istream& is) : is_(is), cur_(is) {
    parse_header();
    data_start_ = cur_.offset();
  }

  double dbu_in_microns() const { return dbu_um_; }
  std::uint64_t data_start() const { return data_start_; }
  std::uint64_t last_cell_offset() const { return last_cell_offset_; }
  const OasisReadReport& report() const { return rep_; }

  std::string name_of(std::uint64_t refnum) const {
    const auto it = cellnames_.find(refnum);
    if (it == cellnames_.end())
      throw DataError("OASIS: unresolved cellname reference " + std::to_string(refnum));
    return it->second;
  }

  /// Repositions to a previously recorded record offset (CELL records are
  /// safe re-parse points: all modal state resets there).
  void seek(std::uint64_t offset) {
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(offset));
    if (!is_) throw DataError("OASIS: seek to byte " + std::to_string(offset) + " failed");
    cur_.set_offset(offset);
    pending_.reset();
  }

  /// Forgets the name tables so a rescan from data_start() rebuilds them.
  void reset_tables() {
    cellnames_.clear();
    next_auto_refnum_ = 0;
    cellname_mode_ = NameMode::kUnknown;
    rep_ = {};
  }

  /// Parses up to and including the next CELL's contents; false once END has
  /// been consumed and validated.
  bool next_cell(StreamCell& out, bool with_geometry) {
    out = StreamCell{};
    for (;;) {
      std::uint64_t id_off;
      std::uint64_t id;
      if (pending_) {
        id = pending_->first;
        id_off = pending_->second;
        pending_.reset();
      } else {
        if (cur_.at_eof()) cur_.fail("end of file without END record");
        id_off = cur_.offset();
        id = cur_.read_uint();
      }
      switch (id) {
        case kPad:
          continue;
        case kEnd:
          parse_end(id_off);
          return false;
        case kCellRefnum:
        case kCellName:
          last_cell_offset_ = id_off;
          parse_cell(id, out, with_geometry);
          return true;
        default:
          top_level(id, id_off);
          continue;
      }
    }
  }

 private:
  enum class NameMode { kUnknown, kImplicit, kExplicit };

  void parse_header() {
    char magic[kMagicLen];
    is_.read(magic, static_cast<std::streamsize>(kMagicLen));
    if (static_cast<std::size_t>(is_.gcount()) != kMagicLen ||
        std::memcmp(magic, kMagic, kMagicLen) != 0)
      throw DataError("OASIS: bad magic bytes (not an OASIS file)");
    cur_.set_offset(kMagicLen);
    if (cur_.read_uint() != kStart) cur_.fail("expected START record after magic");
    const std::string version = cur_.read_string();
    if (version != "1.0") cur_.fail("unsupported OASIS version \"" + version + "\"");
    const double unit = cur_.read_real();
    if (unit <= 0) cur_.fail("non-positive unit (grid steps per micron)");
    dbu_um_ = 1.0 / unit;
    const std::uint64_t offset_flag = cur_.read_uint();
    if (offset_flag == 0) {
      for (int i = 0; i < 12; ++i) cur_.read_uint();  // table offsets (unused)
    } else if (offset_flag == 1) {
      table_offsets_in_end_ = true;
    } else {
      cur_.fail("invalid table offset-flag " + std::to_string(offset_flag));
    }
  }

  void parse_end(std::uint64_t id_off) {
    if (table_offsets_in_end_)
      for (int i = 0; i < 12; ++i) cur_.read_uint();
    cur_.read_string();  // padding
    const std::uint64_t scheme = cur_.read_uint();
    if (scheme > 2) cur_.fail("invalid validation scheme " + std::to_string(scheme));
    if (scheme != 0)
      for (int i = 0; i < 4; ++i) cur_.byte();  // crc32 / checksum32 (not verified)
    const std::uint64_t size = cur_.offset() - id_off;
    if (size != 256)
      cur_.fail("END record must be exactly 256 bytes, got " + std::to_string(size));
    if (!cur_.at_eof()) cur_.fail("trailing bytes after END record");
  }

  [[noreturn]] void unsupported(std::uint64_t id, std::uint64_t off) {
    if (id > kCblock)
      throw DataError("OASIS: unknown record id " + std::to_string(id) + " at byte " +
                      std::to_string(off));
    throw DataError("OASIS: unsupported record " + std::string(record_name(unsigned(id))) +
                    " (" + std::to_string(id) + ") at byte " + std::to_string(off) +
                    " — OASIS records carry no length prefix, so an undecodable record "
                    "cannot be skipped");
  }

  void top_level(std::uint64_t id, std::uint64_t id_off) {
    switch (id) {
      case kCellnameImplicit:
      case kCellnameExplicit: {
        const std::string name = cur_.read_string(true);
        std::uint64_t refnum;
        if (id == kCellnameExplicit) {
          set_cellname_mode(NameMode::kExplicit);
          refnum = cur_.read_uint();
        } else {
          set_cellname_mode(NameMode::kImplicit);
          refnum = next_auto_refnum_++;
        }
        const auto [it, inserted] = cellnames_.emplace(refnum, name);
        if (!inserted && it->second != name)
          cur_.fail("duplicate CELLNAME reference number " + std::to_string(refnum));
        break;
      }
      case kTextstringImplicit:
      case kTextstringExplicit:
      case kPropnameImplicit:
      case kPropnameExplicit:
      case kPropstringImplicit:
      case kPropstringExplicit:
        cur_.read_string(id == kPropnameImplicit || id == kPropnameExplicit);
        if (id % 2 == 0) cur_.read_uint();  // explicit reference number
        ++rep_.skipped;
        break;
      case kLayernameGeometry:
      case kLayernameText:
        cur_.read_string();
        read_interval();
        read_interval();
        ++rep_.skipped;
        break;
      case kProperty:
        parse_property();
        break;
      case kPropertyRepeat:
        if (!modal_.prop_name_set) cur_.fail("PROPERTY repeat with no previous property");
        ++rep_.skipped;
        break;
      default:
        if (id >= kXyAbsolute && id <= kTrapezoidB)
          cur_.fail("element record " + std::to_string(id) + " outside a cell");
        unsupported(id, id_off);
    }
  }

  void parse_cell(std::uint64_t id, StreamCell& out, bool with_geometry) {
    modal_ = Modal{};
    if (id == kCellRefnum) {
      out.refnum = cur_.read_uint();
      const auto it = cellnames_.find(out.refnum);
      if (it != cellnames_.end()) out.name = it->second;
    } else {
      out.name = cur_.read_string(true);
    }
    ++rep_.cells;
    for (;;) {
      if (cur_.at_eof()) cur_.fail("end of file inside a cell (missing END record)");
      const std::uint64_t off = cur_.offset();
      const std::uint64_t rid = cur_.read_uint();
      switch (rid) {
        case kPad:
          break;
        case kXyAbsolute:
          modal_.xy_relative = false;
          break;
        case kXyRelative:
          modal_.xy_relative = true;
          break;
        case kPlacement:
        case kPlacementTransform:
          parse_placement(rid, out);
          break;
        case kText:
          parse_text();
          break;
        case kRectangle:
          parse_rectangle(out, with_geometry);
          break;
        case kPolygon:
          parse_polygon(out, with_geometry);
          break;
        case kPath:
          parse_path(out, with_geometry);
          break;
        case kTrapezoidAB:
        case kTrapezoidA:
        case kTrapezoidB:
          parse_trapezoid(rid);
          break;
        case kProperty:
          parse_property();
          break;
        case kPropertyRepeat:
          if (!modal_.prop_name_set) cur_.fail("PROPERTY repeat with no previous property");
          ++rep_.skipped;
          break;
        case kEnd:
        case kCellRefnum:
        case kCellName:
        case kCellnameImplicit:
        case kCellnameExplicit:
        case kTextstringImplicit:
        case kTextstringExplicit:
        case kPropnameImplicit:
        case kPropnameExplicit:
        case kPropstringImplicit:
        case kPropstringExplicit:
        case kLayernameGeometry:
        case kLayernameText:
          pending_ = {rid, off};  // cell boundary: hand back to next_cell()
          return;
        default:
          unsupported(rid, off);
      }
    }
  }

  // -- operand helpers ------------------------------------------------------

  void set_cellname_mode(NameMode m) {
    if (cellname_mode_ == NameMode::kUnknown) cellname_mode_ = m;
    else if (cellname_mode_ != m)
      cur_.fail("mixed implicit and explicit CELLNAME numbering");
  }

  std::int16_t read_layer_operand(const char* what) {
    const std::uint64_t v = cur_.read_uint();
    if (v > 32767)
      cur_.fail(std::string(what) + " " + std::to_string(v) + " exceeds the 16-bit layer space");
    return static_cast<std::int16_t>(v);
  }

  Coord checked_coord(Coord64 v) {
    if (v < std::numeric_limits<Coord>::min() || v > std::numeric_limits<Coord>::max())
      cur_.fail("coordinate overflows the 32-bit database grid");
    return static_cast<Coord>(v);
  }

  Coord checked_round(double v) {
    if (!(std::abs(v) <= 2147483646.0)) cur_.fail("coordinate overflows the 32-bit database grid");
    return static_cast<Coord>(std::lround(v));
  }

  void update_xy(Coord64& v, bool present) {
    if (!present) return;
    const std::int64_t d = cur_.read_sint();
    v = modal_.xy_relative ? v + d : d;
  }

  Point read_gdelta() {
    const std::uint64_t u = cur_.read_uint();
    if ((u & 1) == 0) {
      const unsigned dir = (u >> 1) & 7;
      const std::uint64_t mag = u >> 4;
      if (mag > static_cast<std::uint64_t>(std::numeric_limits<Coord>::max()))
        cur_.fail("coordinate overflows the 32-bit database grid");
      const auto m = static_cast<Coord>(mag);
      static constexpr int kDx[8] = {1, 0, -1, 0, 1, -1, -1, 1};
      static constexpr int kDy[8] = {0, 1, 0, -1, 1, 1, -1, -1};
      return {static_cast<Coord>(m * kDx[dir]), static_cast<Coord>(m * kDy[dir])};
    }
    const std::uint64_t mag = u >> 2;
    if (mag > static_cast<std::uint64_t>(std::numeric_limits<Coord>::max()))
      cur_.fail("coordinate overflows the 32-bit database grid");
    const Coord x = (u & 2) ? -static_cast<Coord>(mag) : static_cast<Coord>(mag);
    return {x, cur_.read_coord()};
  }

  Repetition read_repetition() {
    const std::uint64_t type = cur_.read_uint();
    if (type == 0) {
      if (!modal_.repetition) cur_.fail("repetition reuse before any repetition was set");
      return *modal_.repetition;
    }
    Repetition r;
    const auto dim = [&](const char* what) -> std::uint32_t {
      const std::uint64_t n = cur_.read_uint();
      if (n + 2 > kMaxRepetitionCount)
        cur_.fail(std::string(what) + " repetition dimension " + std::to_string(n) + " too large");
      return static_cast<std::uint32_t>(n + 2);
    };
    const auto grid_mult = [&]() -> Coord64 {
      const std::uint64_t g = cur_.read_uint();
      if (g > static_cast<std::uint64_t>(std::numeric_limits<Coord>::max()))
        cur_.fail("repetition grid overflows the 32-bit database grid");
      return static_cast<Coord64>(g);
    };
    switch (type) {
      case 1:
        r.cols = dim("x");
        r.rows = dim("y");
        r.col_step = {cur_.read_ucoord(), 0};
        r.row_step = {0, cur_.read_ucoord()};
        break;
      case 2:
        r.cols = dim("x");
        r.col_step = {cur_.read_ucoord(), 0};
        break;
      case 3:
        r.rows = dim("y");
        r.row_step = {0, cur_.read_ucoord()};
        break;
      case 4:
      case 5:
      case 6:
      case 7: {
        const bool x_axis = type <= 5;
        const std::uint32_t n = dim(x_axis ? "x" : "y");
        const Coord64 grid = (type == 5 || type == 7) ? grid_mult() : 1;
        r.regular = false;
        r.offsets.push_back({0, 0});
        Coord64 acc = 0;
        for (std::uint32_t i = 0; i + 1 < n; ++i) {
          const std::uint64_t s = cur_.read_uint();
          if (s > static_cast<std::uint64_t>(std::numeric_limits<Coord>::max()))
            cur_.fail("coordinate overflows the 32-bit database grid");
          acc += static_cast<Coord64>(s) * grid;
          const Coord c = checked_coord(acc);
          r.offsets.push_back(x_axis ? Point{c, 0} : Point{0, c});
        }
        break;
      }
      case 8:
        r.cols = dim("x");
        r.rows = dim("y");
        r.col_step = read_gdelta();
        r.row_step = read_gdelta();
        break;
      case 9:
        r.cols = dim("x");
        r.col_step = read_gdelta();
        break;
      case 10:
      case 11: {
        const std::uint32_t n = dim("offset-list");
        const Coord64 grid = type == 11 ? grid_mult() : 1;
        r.regular = false;
        r.offsets.push_back({0, 0});
        Coord64 ax = 0, ay = 0;
        for (std::uint32_t i = 0; i + 1 < n; ++i) {
          const Point d = read_gdelta();
          ax += Coord64(d.x) * grid;
          ay += Coord64(d.y) * grid;
          r.offsets.push_back({checked_coord(ax), checked_coord(ay)});
        }
        break;
      }
      default:
        cur_.fail("invalid repetition type " + std::to_string(type));
    }
    modal_.repetition = r;
    return r;
  }

  /// Decodes a point list into vertices relative to the record position
  /// (first vertex {0,0}). For polygons, type 0/1 lists gain the implicit
  /// closing vertex; types 2-5 close implicitly edge-to-first.
  std::vector<Point> read_point_list(bool for_polygon) {
    const std::uint64_t type = cur_.read_uint();
    const std::uint64_t n = cur_.read_uint();
    if (n > kMaxRepetitionCount) cur_.fail("point list too long");
    if (n == 0) cur_.fail("empty point list");
    std::vector<Point> pts;
    pts.reserve(static_cast<std::size_t>(n) + 2);
    pts.push_back({0, 0});
    Coord64 cx = 0, cy = 0;
    const auto push = [&] { pts.push_back({checked_coord(cx), checked_coord(cy)}); };
    switch (type) {
      case 0:
      case 1: {
        if (for_polygon && (n < 2 || n % 2 != 0))
          cur_.fail("type " + std::to_string(type) +
                    " polygon point list needs an even delta count >= 2");
        bool horiz = type == 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::int64_t d = cur_.read_sint();
          if (d == 0) cur_.fail("zero-length 1-delta in point list");
          if (horiz) cx += d; else cy += d;
          push();
          horiz = !horiz;
        }
        if (for_polygon) {
          // Two implicit closing edges: the next (horizontal or vertical)
          // edge runs to the implicit vertex, the final edge back to {0,0}.
          if (horiz) cx = 0; else cy = 0;
          if ((cx == 0 && cy == 0) || (pts.back() == Point{checked_coord(cx), checked_coord(cy)}))
            cur_.fail("degenerate implicit closing vertex in point list");
          push();
        }
        break;
      }
      case 2:
      case 3: {
        const unsigned dir_bits = type == 2 ? 3u : 7u;
        const unsigned shift = type == 2 ? 2u : 3u;
        static constexpr int kDx[8] = {1, 0, -1, 0, 1, -1, -1, 1};
        static constexpr int kDy[8] = {0, 1, 0, -1, 1, 1, -1, -1};
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint64_t u = cur_.read_uint();
          const unsigned dir = static_cast<unsigned>(u & dir_bits);
          const std::uint64_t mag = u >> shift;
          if (mag > static_cast<std::uint64_t>(std::numeric_limits<Coord>::max()))
            cur_.fail("coordinate overflows the 32-bit database grid");
          cx += static_cast<Coord64>(mag) * kDx[dir];
          cy += static_cast<Coord64>(mag) * kDy[dir];
          push();
        }
        break;
      }
      case 4: {
        for (std::uint64_t i = 0; i < n; ++i) {
          const Point d = read_gdelta();
          cx += d.x;
          cy += d.y;
          push();
        }
        break;
      }
      case 5: {
        Coord64 lx = 0, ly = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          const Point g = read_gdelta();
          lx += g.x;
          ly += g.y;
          cx += lx;
          cy += ly;
          push();
        }
        break;
      }
      default:
        cur_.fail("invalid point list type " + std::to_string(type));
    }
    if (for_polygon && pts.size() < 3) cur_.fail("polygon with fewer than 3 vertices");
    return pts;
  }

  template <class Fn>
  void for_each_offset(const std::optional<Repetition>& rep, Fn&& fn) {
    if (!rep) {
      fn(Point{0, 0});
      return;
    }
    if (!rep->regular) {
      for (const Point o : rep->offsets) fn(o);
      return;
    }
    const std::uint64_t total = std::uint64_t(rep->cols) * rep->rows;
    if (total > kMaxRepetitionCount) cur_.fail("geometry repetition too large");
    for (std::uint32_t row = 0; row < rep->rows; ++row)
      for (std::uint32_t col = 0; col < rep->cols; ++col)
        fn(Point{checked_coord(Coord64(rep->col_step.x) * col + Coord64(rep->row_step.x) * row),
                 checked_coord(Coord64(rep->col_step.y) * col + Coord64(rep->row_step.y) * row)});
  }

  void require(bool set, const char* what) {
    if (!set) cur_.fail(std::string(what) + " uses a modal variable before any was set");
  }

  // -- element records ------------------------------------------------------

  void parse_placement(std::uint64_t id, StreamCell& out) {
    const std::uint8_t info = cur_.byte();
    const bool has_cell = info & 0x80, by_refnum = info & 0x40;
    const bool has_x = info & 0x20, has_y = info & 0x10, has_rep = info & 0x08;
    if (has_cell) {
      if (by_refnum) {
        modal_.placement_refnum = cur_.read_uint();
        modal_.placement_name.reset();
      } else {
        modal_.placement_name = cur_.read_string(true);
        modal_.placement_refnum.reset();
      }
      modal_.placement_set = true;
    } else {
      require(modal_.placement_set, "PLACEMENT");
    }
    double mag = 1.0;
    double angle = 0.0;
    const bool mirror = info & 0x01;
    if (id == kPlacement) {
      angle = 90.0 * ((info >> 1) & 3);
    } else {
      if (info & 0x04) {
        mag = cur_.read_real();
        if (mag <= 0) cur_.fail("non-positive placement magnification");
      }
      if (info & 0x02) angle = cur_.read_real();
    }
    update_xy(modal_.placement_x, has_x);
    update_xy(modal_.placement_y, has_y);
    std::optional<Repetition> rep;
    if (has_rep) rep = read_repetition();
    ++rep_.placements;

    StreamRef ref;
    if (modal_.placement_name) ref.child = *modal_.placement_name;
    else ref.child_refnum = *modal_.placement_refnum;
    const auto place = [&](Point off) {
      StreamRef r = ref;
      r.trans = CTrans{{checked_coord(modal_.placement_x + off.x),
                        checked_coord(modal_.placement_y + off.y)},
                       angle, mag, mirror};
      out.refs.push_back(std::move(r));
    };
    if (rep && rep->regular) {
      ref.cols = rep->cols;
      ref.rows = rep->rows;
      ref.col_step = rep->col_step;
      ref.row_step = rep->row_step;
      place({0, 0});
    } else if (rep) {
      for (const Point o : rep->offsets) place(o);
    } else {
      place({0, 0});
    }
  }

  void parse_text() {
    const std::uint8_t info = cur_.byte();
    const bool has_str = info & 0x40, by_refnum = info & 0x20;
    if (has_str) {
      if (by_refnum) cur_.read_uint();
      else cur_.read_string();
      modal_.text_string_set = true;
    } else {
      require(modal_.text_string_set, "TEXT");
    }
    if (info & 0x01) modal_.textlayer = read_layer_operand("textlayer");
    if (info & 0x02) modal_.texttype = read_layer_operand("texttype");
    update_xy(modal_.text_x, info & 0x10);
    update_xy(modal_.text_y, info & 0x08);
    if (info & 0x04) read_repetition();
    require(modal_.textlayer.has_value(), "TEXT");
    require(modal_.texttype.has_value(), "TEXT");
    ++rep_.skipped;
  }

  void parse_rectangle(StreamCell& out, bool with_geometry) {
    const std::uint8_t info = cur_.byte();
    const bool square = info & 0x80;
    if (square && (info & 0x20)) cur_.fail("RECTANGLE with both S and H bits set");
    if (info & 0x01) modal_.layer = read_layer_operand("layer");
    if (info & 0x02) modal_.datatype = read_layer_operand("datatype");
    if (info & 0x40) modal_.geometry_w = cur_.read_ucoord();
    if (info & 0x20) modal_.geometry_h = cur_.read_ucoord();
    if (square) {
      require(modal_.geometry_w.has_value(), "RECTANGLE");
      modal_.geometry_h = modal_.geometry_w;
    }
    update_xy(modal_.geometry_x, info & 0x10);
    update_xy(modal_.geometry_y, info & 0x08);
    std::optional<Repetition> rep;
    if (info & 0x04) rep = read_repetition();
    require(modal_.layer.has_value(), "RECTANGLE");
    require(modal_.datatype.has_value(), "RECTANGLE");
    require(modal_.geometry_w.has_value(), "RECTANGLE");
    require(modal_.geometry_h.has_value(), "RECTANGLE");
    ++rep_.rectangles;
    const LayerKey lk{*modal_.layer, *modal_.datatype};
    const Coord w = *modal_.geometry_w;
    const Coord h = *modal_.geometry_h;
    for_each_offset(rep, [&](Point off) {
      const Coord x0 = checked_coord(modal_.geometry_x + off.x);
      const Coord y0 = checked_coord(modal_.geometry_y + off.y);
      const Coord x1 = checked_coord(Coord64(x0) + w);
      const Coord y1 = checked_coord(Coord64(y0) + h);
      ++out.shape_count;
      if (with_geometry) out.shapes[lk].push_back(Polygon::rect(Box{x0, y0, x1, y1}));
    });
  }

  void parse_polygon(StreamCell& out, bool with_geometry) {
    const std::uint8_t info = cur_.byte();
    if (info & 0xC0) cur_.fail("invalid POLYGON info byte");
    if (info & 0x01) modal_.layer = read_layer_operand("layer");
    if (info & 0x02) modal_.datatype = read_layer_operand("datatype");
    if (info & 0x20) modal_.polygon_points = read_point_list(true);
    update_xy(modal_.geometry_x, info & 0x10);
    update_xy(modal_.geometry_y, info & 0x08);
    std::optional<Repetition> rep;
    if (info & 0x04) rep = read_repetition();
    require(modal_.layer.has_value(), "POLYGON");
    require(modal_.datatype.has_value(), "POLYGON");
    require(modal_.polygon_points.has_value(), "POLYGON");
    ++rep_.polygons;
    const LayerKey lk{*modal_.layer, *modal_.datatype};
    const std::vector<Point>& rel = *modal_.polygon_points;
    for_each_offset(rep, [&](Point off) {
      ++out.shape_count;
      if (!with_geometry) return;
      std::vector<Point> pts;
      pts.reserve(rel.size());
      for (const Point v : rel)
        pts.push_back({checked_coord(modal_.geometry_x + off.x + v.x),
                       checked_coord(modal_.geometry_y + off.y + v.y)});
      out.shapes[lk].emplace_back(SimplePolygon{std::move(pts)});
    });
  }

  void parse_path(StreamCell& out, bool with_geometry) {
    const std::uint8_t info = cur_.byte();
    if (info & 0x01) modal_.layer = read_layer_operand("layer");
    if (info & 0x02) modal_.datatype = read_layer_operand("datatype");
    if (info & 0x40) modal_.path_halfwidth = cur_.read_ucoord();
    if (info & 0x80) {
      const std::uint64_t scheme = cur_.read_uint();
      if (scheme > 15) cur_.fail("invalid path extension scheme " + std::to_string(scheme));
      const auto ext = [&](unsigned bits, std::optional<Coord>& slot, const char* side) {
        switch (bits) {
          case 0: break;  // keep modal
          case 1: slot = 0; break;
          case 2:
            if (!modal_.path_halfwidth)
              cur_.fail(std::string("halfwidth ") + side +
                        " extension before any halfwidth was set");
            slot = *modal_.path_halfwidth;
            break;
          case 3: slot = cur_.read_coord(); break;
        }
      };
      ext((scheme >> 2) & 3, modal_.path_start_ext, "start");
      ext(scheme & 3, modal_.path_end_ext, "end");
    }
    if (info & 0x20) modal_.path_points = read_point_list(false);
    update_xy(modal_.geometry_x, info & 0x10);
    update_xy(modal_.geometry_y, info & 0x08);
    std::optional<Repetition> rep;
    if (info & 0x04) rep = read_repetition();
    require(modal_.layer.has_value(), "PATH");
    require(modal_.datatype.has_value(), "PATH");
    require(modal_.path_halfwidth.has_value(), "PATH");
    require(modal_.path_start_ext.has_value(), "PATH");
    require(modal_.path_end_ext.has_value(), "PATH");
    require(modal_.path_points.has_value(), "PATH");
    ++rep_.paths;
    const LayerKey lk{*modal_.layer, *modal_.datatype};
    const double hw = *modal_.path_halfwidth;
    const double es = *modal_.path_start_ext;
    const double ee = *modal_.path_end_ext;
    const std::vector<Point>& rel = *modal_.path_points;
    for_each_offset(rep, [&](Point off) {
      for (std::size_t s = 0; s + 1 < rel.size(); ++s) {
        const double ax = double(modal_.geometry_x + off.x) + rel[s].x;
        const double ay = double(modal_.geometry_y + off.y) + rel[s].y;
        const double bx = double(modal_.geometry_x + off.x) + rel[s + 1].x;
        const double by = double(modal_.geometry_y + off.y) + rel[s + 1].y;
        const double dx = bx - ax, dy = by - ay;
        const double len = std::hypot(dx, dy);
        if (len == 0.0) cur_.fail("zero-length path segment");
        const double ux = dx / len, uy = dy / len;   // along the segment
        const double nx = -uy, ny = ux;              // left normal
        const double s0 = s == 0 ? es : 0.0;
        const double e0 = s + 2 == rel.size() ? ee : 0.0;
        ++out.shape_count;
        if (!with_geometry) continue;
        std::vector<Point> quad{
            {checked_round(ax - ux * s0 - nx * hw), checked_round(ay - uy * s0 - ny * hw)},
            {checked_round(bx + ux * e0 - nx * hw), checked_round(by + uy * e0 - ny * hw)},
            {checked_round(bx + ux * e0 + nx * hw), checked_round(by + uy * e0 + ny * hw)},
            {checked_round(ax - ux * s0 + nx * hw), checked_round(ay - uy * s0 + ny * hw)}};
        out.shapes[lk].emplace_back(SimplePolygon{std::move(quad)});
      }
    });
  }

  void parse_trapezoid(std::uint64_t id) {
    const std::uint8_t info = cur_.byte();
    if (info & 0x01) modal_.layer = read_layer_operand("layer");
    if (info & 0x02) modal_.datatype = read_layer_operand("datatype");
    if (info & 0x40) modal_.geometry_w = cur_.read_ucoord();
    if (info & 0x20) modal_.geometry_h = cur_.read_ucoord();
    if (id != kTrapezoidB) cur_.read_sint();  // delta-a (1-delta)
    if (id != kTrapezoidA) cur_.read_sint();  // delta-b (1-delta)
    update_xy(modal_.geometry_x, info & 0x10);
    update_xy(modal_.geometry_y, info & 0x08);
    if (info & 0x04) read_repetition();
    require(modal_.layer.has_value(), "TRAPEZOID");
    require(modal_.datatype.has_value(), "TRAPEZOID");
    require(modal_.geometry_w.has_value(), "TRAPEZOID");
    require(modal_.geometry_h.has_value(), "TRAPEZOID");
    // Operands are fully validated to keep the stream position and modal
    // state exact, but the geometry itself is dropped (reported via the
    // trapezoids counter) — see docs/formats.md.
    ++rep_.trapezoids;
  }

  void parse_property() {
    const std::uint8_t info = cur_.byte();
    if (info & 0x04) {
      if (info & 0x02) cur_.read_uint();
      else cur_.read_string(true);
      modal_.prop_name_set = true;
    } else {
      require(modal_.prop_name_set, "PROPERTY");
    }
    if (!(info & 0x08)) {
      std::uint64_t count = info >> 4;
      if (count == 15) count = cur_.read_uint();
      if (count > kMaxRepetitionCount) cur_.fail("property value list too long");
      for (std::uint64_t i = 0; i < count; ++i) read_property_value();
      modal_.prop_values_set = true;
    } else {
      require(modal_.prop_values_set, "PROPERTY");
    }
    ++rep_.skipped;
  }

  void read_property_value() {
    const std::uint64_t kind = cur_.read_uint();
    switch (kind) {
      case 0: case 1: cur_.read_uint(); break;
      case 2: case 3: {
        if (cur_.read_uint() == 0) cur_.fail("real with zero denominator");
        break;
      }
      case 4: case 5: {
        cur_.read_uint();
        if (cur_.read_uint() == 0) cur_.fail("real with zero denominator");
        break;
      }
      case 6: for (int i = 0; i < 4; ++i) cur_.byte(); break;
      case 7: for (int i = 0; i < 8; ++i) cur_.byte(); break;
      case 8: cur_.read_uint(); break;
      case 9: cur_.read_sint(); break;
      case 10: case 11: cur_.read_string(); break;
      case 12: cur_.read_string(true); break;
      case 13: case 14: case 15: cur_.read_uint(); break;
      default: cur_.fail("invalid property value type " + std::to_string(kind));
    }
  }

  void read_interval() {
    const std::uint64_t type = cur_.read_uint();
    switch (type) {
      case 0: break;
      case 1: case 2: case 3: cur_.read_uint(); break;
      case 4: cur_.read_uint(); cur_.read_uint(); break;
      default: cur_.fail("invalid layer interval type " + std::to_string(type));
    }
  }

  std::istream& is_;
  Cursor cur_;
  double dbu_um_ = 0.001;
  bool table_offsets_in_end_ = false;
  std::uint64_t data_start_ = 0;
  std::uint64_t last_cell_offset_ = 0;
  std::optional<std::pair<std::uint64_t, std::uint64_t>> pending_;  // (id, offset)
  Modal modal_;
  std::map<std::uint64_t, std::string> cellnames_;
  std::uint64_t next_auto_refnum_ = 0;
  NameMode cellname_mode_ = NameMode::kUnknown;
  OasisReadReport rep_;
};

/// LayoutStream over an OASIS byte source: forward iteration plus seek-based
/// re-reads of already-seen cells (CELL records reset all modal state, so a
/// recorded record offset is a safe re-parse point).
class OasisCellStream final : public LayoutStream {
 public:
  explicit OasisCellStream(std::unique_ptr<std::istream> is)
      : owned_(std::move(is)), parser_(*owned_) {}

  const std::string& library_name() const override { return name_; }
  double dbu_in_microns() const override { return parser_.dbu_in_microns(); }

  bool next(StreamCell& out, bool with_geometry) override {
    if (pass_done_) return false;
    if (!parser_.next_cell(out, with_geometry)) {
      pass_done_ = true;
      names_complete_ = true;
      return false;
    }
    offsets_.push_back(parser_.last_cell_offset());
    if (out.name.empty() && out.refnum != kNoRefnum && names_complete_)
      out.name = parser_.name_of(out.refnum);
    return true;
  }

  void rewind() override {
    parser_.seek(parser_.data_start());
    parser_.reset_tables();
    offsets_.clear();
    pass_done_ = false;
    names_complete_ = false;
  }

  std::size_t cells_seen() const override { return offsets_.size(); }

  StreamCell read_cell(std::size_t index, bool with_geometry) override {
    expects(index < offsets_.size(), "LayoutStream::read_cell index out of range");
    parser_.seek(offsets_[index]);
    StreamCell c;
    const bool ok = parser_.next_cell(c, with_geometry);
    ensures(ok, "LayoutStream::read_cell: cell vanished on re-read");
    if (c.name.empty() && c.refnum != kNoRefnum && names_complete_)
      c.name = parser_.name_of(c.refnum);
    return c;
  }

  std::string name_of(std::uint64_t refnum) const override { return parser_.name_of(refnum); }

 private:
  std::unique_ptr<std::istream> owned_;
  OasisParser parser_;
  std::string name_ = "OASIS";
  std::vector<std::uint64_t> offsets_;
  bool pass_done_ = false;
  bool names_complete_ = false;
};

}  // namespace

Library read_oas(std::istream& is, OasisReadReport* report) {
  OasisParser p(is);
  std::vector<StreamCell> cells;
  {
    StreamCell c;
    while (p.next_cell(c, true)) cells.push_back(std::move(c));
  }
  Library lib("OASIS", p.dbu_in_microns());
  std::vector<CellId> ids(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string name = cells[i].name.empty() ? p.name_of(cells[i].refnum) : cells[i].name;
    const auto existing = lib.find_cell(name);
    ids[i] = existing ? *existing : lib.add_cell(name);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Cell& cell = lib.cell(ids[i]);
    for (auto& [lk, polys] : cells[i].shapes)
      for (Polygon& poly : polys) cell.add_shape(lk, std::move(poly));
    for (const StreamRef& sr : cells[i].refs) {
      const std::string child = sr.child.empty() ? p.name_of(sr.child_refnum) : sr.child;
      const auto cid = lib.find_cell(child);
      if (!cid) throw DataError("OASIS: placement of undefined cell \"" + child + "\"");
      Reference r;
      r.child = *cid;
      r.trans = sr.trans;
      r.cols = sr.cols;
      r.rows = sr.rows;
      r.col_step = sr.col_step;
      r.row_step = sr.row_step;
      cell.add_reference(r);
    }
  }
  lib.validate();
  if (report) *report = p.report();
  return lib;
}

Library read_oas(const std::string& path, OasisReadReport* report) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw DataError("cannot open for reading: " + path);
  return read_oas(is, report);
}

std::unique_ptr<LayoutStream> open_oas_stream(std::unique_ptr<std::istream> is) {
  expects(is != nullptr, "open_oas_stream: null stream");
  return std::make_unique<OasisCellStream>(std::move(is));
}

std::unique_ptr<LayoutStream> open_oas_stream(const std::string& path) {
  auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*f) throw DataError("cannot open for reading: " + path);
  return open_oas_stream(std::move(f));
}

}  // namespace ebl
