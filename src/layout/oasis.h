// OASIS (SEMI P39) stream format reader/writer.
//
// OASIS is the compressed successor to GDSII: variable-length integer
// operands, modal variables that carry state between records, and implicit
// record lengths. This implementation covers the record set real foundry
// interchange needs — CELL / CELLNAME / PLACEMENT (both forms) / RECTANGLE /
// POLYGON / PATH — plus TEXT, PROPERTY, and TRAPEZOID records (operands
// fully parsed and validated, geometry not imported) and every repetition
// type (0-11). CBLOCK
// compression, CTRAPEZOID, CIRCLE, and X* extension records are rejected
// with a DataError naming the record: OASIS has no record length prefix, so
// a record that cannot be decoded cannot be skipped either (see
// docs/formats.md for the full support matrix).
//
// Validation is strict in the style of pec/wire.cpp: truncation, operand
// overflow, out-of-grid coordinates, unset modal variables, and malformed
// structure all throw DataError carrying the absolute byte offset.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "layout/library.h"

namespace ebl {

/// Result counters from an OASIS read.
struct OasisReadReport {
  std::size_t cells = 0;
  std::size_t rectangles = 0;
  std::size_t polygons = 0;
  std::size_t paths = 0;        ///< PATH records (converted to segment quads)
  std::size_t trapezoids = 0;   ///< TRAPEZOID records (parsed, geometry dropped)
  std::size_t placements = 0;   ///< placement records (arrays count once)
  std::size_t skipped = 0;      ///< TEXT / PROPERTY / name-table records
};

/// Writes @p lib to @p path / @p os. Geometry becomes RECTANGLE records when
/// a contour is an axis-aligned rectangle in canonical vertex order and
/// POLYGON records otherwise (1-delta Manhattan point lists when the contour
/// alternates horizontal/vertical, g-delta lists for the general case).
/// Holes are written as separate polygons on the same layer, mirroring the
/// GDSII writer. Throws DataError on I/O failure or unrepresentable values
/// (cell names that are not printable OASIS n-strings, layer numbers beyond
/// int16).
void write_oas(const Library& lib, const std::string& path);
void write_oas(const Library& lib, std::ostream& os);

/// Reads an OASIS file into a new Library. Structural errors throw DataError
/// with the byte offset of the offending operand. The library is named
/// "OASIS" (the format has no library-name record).
Library read_oas(const std::string& path, OasisReadReport* report = nullptr);
Library read_oas(std::istream& is, OasisReadReport* report = nullptr);

namespace oasis_detail {

/// Byte cursor over an istream tracking the absolute offset for error
/// messages. All read_* methods throw DataError("OASIS: ... at byte N") on
/// truncation or malformed operands. Exposed for unit testing the operand
/// codecs against hand-built byte sequences.
class Cursor {
 public:
  explicit Cursor(std::istream& is, std::uint64_t offset = 0);

  std::uint64_t offset() const { return off_; }
  void set_offset(std::uint64_t off) { off_ = off; }

  /// True when the stream is positioned at end-of-file (peeks).
  bool at_eof();

  std::uint8_t byte();
  /// Unsigned-integer: base-128 little-endian varint, at most 64 bits.
  std::uint64_t read_uint();
  /// Signed-integer: varint with the sign in the low bit of the encoding.
  std::int64_t read_sint();
  /// Real: type byte 0-7 (whole / reciprocal / ratio / float32 / float64).
  double read_real();
  /// Length-prefixed byte string. @p printable demands 0x21..0x7E only
  /// (OASIS n-string, used for cell names).
  std::string read_string(bool printable = false);
  /// Signed coordinate that must fit the 32-bit database grid.
  Coord read_coord();
  /// Unsigned operand that must fit a positive 32-bit coordinate.
  Coord read_ucoord();

  [[noreturn]] void fail(const std::string& what) const;

 private:
  std::istream& is_;
  std::uint64_t off_;
};

void write_uint(std::ostream& os, std::uint64_t v);
void write_sint(std::ostream& os, std::int64_t v);
/// Writes type 0/1 (whole number) when exact, type 7 (float64) otherwise.
void write_real(std::ostream& os, double v);
void write_string(std::ostream& os, const std::string& s);

/// Encoded byte length of write_uint(v) (for END-record padding math).
std::size_t uint_length(std::uint64_t v);

}  // namespace oasis_detail

}  // namespace ebl
