#include "layout/stream.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <list>
#include <map>

#include "geom/boolean.h"
#include "layout/gdsii.h"
#include "layout/oasis.h"
#include "util/contracts.h"

namespace ebl {

const std::vector<Polygon>& StreamCell::shapes_on(LayerKey layer) const {
  static const std::vector<Polygon> kEmpty;
  const auto it = shapes.find(layer);
  return it == shapes.end() ? kEmpty : it->second;
}

std::string LayoutStream::name_of(std::uint64_t) const {
  throw DataError("layout stream has no refnum name table");
}

namespace {

enum class LayoutFormat { gds, oas };

/// Extension dispatch shared by open_layout_stream / read_layout /
/// write_layout. Case-insensitive; throws for anything unrecognized.
LayoutFormat format_of(const std::string& path) {
  const auto dot = path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  for (char& c : ext) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (ext == "gds" || ext == "gdsii") return LayoutFormat::gds;
  if (ext == "oas" || ext == "oasis") return LayoutFormat::oas;
  throw DataError("unsupported layout extension: " + path);
}

/// The merged-by-name cell directory built by the skim pass. GDSII permits
/// duplicate STRNAME structures and read_gds merges them; the streaming
/// walk reproduces that by treating every file cell with the same name as
/// one logical cell (shapes emitted piece by piece in file order, reference
/// lists concatenated in file order — exactly the merged-cell order).
struct DirEntry {
  std::string name;
  std::vector<std::size_t> pieces;      ///< file-cell indices, file order
  std::vector<StreamRef> refs;          ///< merged references, file order
  std::vector<std::size_t> ref_child;   ///< directory index per reference
  std::size_t shape_count = 0;          ///< over all pieces, all layers
  bool referenced = false;
};

/// LRU cache of parsed file cells. Holding at most @p window cells is the
/// whole point of the streaming path: everything else is O(cells) names and
/// edges, never geometry.
class CellCache {
 public:
  CellCache(LayoutStream& stream, std::size_t window, IngestStats& stats)
      : stream_(stream), window_(window), stats_(stats) {}

  const StreamCell& fetch(std::size_t file_index) {
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->first == file_index) {
        lru_.splice(lru_.begin(), lru_, it);  // touch
        return lru_.front().second;
      }
    }
    // Evict before parsing so the bound holds at every instant — the new
    // cell must never coexist with a full window.
    if (lru_.size() >= window_) lru_.pop_back();
    if (file_index < parsed_.size() && parsed_[file_index]) ++stats_.reloads;
    if (file_index >= parsed_.size()) parsed_.resize(file_index + 1, false);
    parsed_[file_index] = true;
    ++stats_.cell_parses;
    lru_.emplace_front(file_index, stream_.read_cell(file_index, true));
    stats_.peak_resident = std::max(stats_.peak_resident, lru_.size());
    return lru_.front().second;
  }

 private:
  LayoutStream& stream_;
  std::size_t window_;
  IngestStats& stats_;
  std::list<std::pair<std::size_t, StreamCell>> lru_;
  std::vector<bool> parsed_;
};

}  // namespace

IngestStats stream_layer(LayoutStream& stream, const IngestOptions& options,
                         const std::function<void(const Polygon&)>& emit) {
  expects(options.window >= 1, "stream_layer: window must be at least 1");

  // Pass 1 — directory skim. Geometry operands are decoded and validated
  // but not stored; what survives is the cell table, byte offsets (inside
  // the stream), and the reference graph.
  stream.rewind();
  std::vector<StreamCell> skims;
  {
    StreamCell c;
    while (stream.next(c, false)) skims.push_back(std::move(c));
  }

  // Resolve refnum-addressed cells and references (OASIS name tables may
  // follow the cells that use them; after the pass the table is complete).
  for (StreamCell& c : skims) {
    if (c.name.empty()) c.name = stream.name_of(c.refnum);
    for (StreamRef& r : c.refs) {
      if (r.child.empty()) r.child = stream.name_of(r.child_refnum);
    }
  }

  // Merge file cells into the by-name directory.
  std::vector<DirEntry> dir;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < skims.size(); ++i) {
    const auto [it, fresh] = index_of.emplace(skims[i].name, dir.size());
    if (fresh) {
      dir.emplace_back();
      dir.back().name = skims[i].name;
    }
    DirEntry& e = dir[it->second];
    e.pieces.push_back(i);
    e.shape_count += skims[i].shape_count;
    for (StreamRef& r : skims[i].refs) e.refs.push_back(std::move(r));
  }
  for (DirEntry& e : dir) {
    for (const StreamRef& r : e.refs) {
      const auto it = index_of.find(r.child);
      if (it == index_of.end())
        throw DataError("layout stream: reference to undefined cell " + r.child);
      e.ref_child.push_back(it->second);
      dir[it->second].referenced = true;
    }
  }
  if (dir.empty()) throw DataError("layout stream: file has no cells");

  // Validate the hierarchy (cycles, depth) before any geometry is emitted,
  // mirroring Library::validate + the each_instance depth guard.
  constexpr int kMaxDepth = 64;
  {
    std::vector<int> color(dir.size(), 0);  // 0 new, 1 on stack, 2 done
    std::function<void(std::size_t, int)> dfs = [&](std::size_t i, int depth) {
      if (depth > kMaxDepth)
        throw DataError("layout stream: hierarchy deeper than " +
                        std::to_string(kMaxDepth) + " under cell " + dir[i].name);
      color[i] = 1;
      for (const std::size_t child : dir[i].ref_child) {
        if (color[child] == 1)
          throw DataError("layout stream: reference cycle through cell " +
                          dir[child].name);
        if (color[child] != 2) dfs(child, depth + 1);
      }
      color[i] = 2;
    };
    for (std::size_t i = 0; i < dir.size(); ++i) {
      if (color[i] == 0) dfs(i, 0);
    }
  }

  // Pick the top cell.
  std::size_t top = 0;
  if (!options.top.empty()) {
    const auto it = index_of.find(options.top);
    if (it == index_of.end())
      throw DataError("layout stream: top cell not found: " + options.top);
    top = it->second;
  } else {
    std::size_t found = 0;
    for (std::size_t i = 0; i < dir.size(); ++i) {
      if (!dir[i].referenced) {
        top = i;
        ++found;
      }
    }
    if (found == 0)
      throw DataError("layout stream: no unreferenced cell to use as top");
    if (found > 1)
      throw DataError("layout stream: several unreferenced cells; pass an "
                      "explicit top");
  }

  // Pass 2 — depth-first flatten through the bounded cell window. The
  // visit order is exactly Library::each_instance: a cell's own shapes
  // first (pieces in file order), then its references in order, arrays
  // rows-outer / cols-inner, child transform composed as t * placed.
  IngestStats stats;
  stats.cells = skims.size();
  CellCache cache(stream, options.window, stats);
  std::function<void(std::size_t, const CTrans&, int)> walk =
      [&](std::size_t i, const CTrans& t, int depth) {
        if (depth > kMaxDepth)
          throw DataError("layout stream: hierarchy deeper than " +
                          std::to_string(kMaxDepth) + " under cell " + dir[i].name);
        ++stats.placements;
        const DirEntry& e = dir[i];
        if (e.shape_count > 0) {
          for (const std::size_t fi : e.pieces) {
            if (skims[fi].shape_count == 0) continue;  // nothing to parse
            const StreamCell& cell = cache.fetch(fi);
            for (const Polygon& p : cell.shapes_on(options.layer)) {
              ++stats.polygons;
              emit(p.transformed(t));
            }
          }
        }
        for (std::size_t r = 0; r < e.refs.size(); ++r) {
          const StreamRef& ref = e.refs[r];
          for (std::uint32_t row = 0; row < ref.rows; ++row) {
            for (std::uint32_t col = 0; col < ref.cols; ++col) {
              const Point shift{static_cast<Coord>(Coord64(ref.col_step.x) * col +
                                                   Coord64(ref.row_step.x) * row),
                                static_cast<Coord>(Coord64(ref.col_step.y) * col +
                                                   Coord64(ref.row_step.y) * row)};
              const CTrans placed{ref.trans.disp() + shift, ref.trans.angle(),
                                  ref.trans.mag(), ref.trans.mirror()};
              walk(e.ref_child[r], t * placed, depth + 1);
            }
          }
        }
      };
  walk(top, CTrans{}, 0);
  return stats;
}

StreamFractureResult stream_fracture(LayoutStream& stream,
                                     const IngestOptions& options,
                                     const FractureOptions& fracture_options,
                                     PolygonSet* collect) {
  // Mirror fracture(PolygonSet): same rectilinearity contract, same engine,
  // same add order — so the trapezoids (and therefore the shots) come out
  // bitwise-identical to the in-RAM path.
  BooleanEngine eng;
  const bool want_rect = fracture_options.strategy == FractureStrategy::rectangles;
  const IngestStats ingest =
      stream_layer(stream, options, [&](const Polygon& p) {
        if (want_rect) {
          if (!p.outer().is_rectilinear())
            throw DataError("fracture: rectangles strategy requires rectilinear input");
          for (const auto& h : p.holes()) {
            if (!h.is_rectilinear())
              throw DataError("fracture: rectangles strategy requires rectilinear input");
          }
        }
        eng.add(p, 0);
        if (collect) collect->insert(p);
      });
  const bool merge = fracture_options.strategy != FractureStrategy::bands;
  StreamFractureResult out;
  out.fracture = fracture(eng.trapezoids(BoolOp::Or, merge), fracture_options);
  out.ingest = ingest;
  return out;
}

std::unique_ptr<LayoutStream> open_layout_stream(const std::string& path) {
  switch (format_of(path)) {
    case LayoutFormat::gds:
      return open_gds_stream(path);
    case LayoutFormat::oas:
      return open_oas_stream(path);
  }
  throw DataError("unsupported layout extension: " + path);  // unreachable
}

Library read_layout(const std::string& path) {
  switch (format_of(path)) {
    case LayoutFormat::gds:
      return read_gds(path);
    case LayoutFormat::oas:
      return read_oas(path);
  }
  throw DataError("unsupported layout extension: " + path);  // unreachable
}

void write_layout(const Library& lib, const std::string& path) {
  switch (format_of(path)) {
    case LayoutFormat::gds:
      write_gds(lib, path);
      return;
    case LayoutFormat::oas:
      write_oas(lib, path);
      return;
  }
}

}  // namespace ebl
