// Streaming layout ingestion: cell-at-a-time parsing with a bounded
// resident-cell window.
//
// The classic path (read_gds / read_oas) materializes a whole Library before
// anything downstream runs — untenable for multi-GB reticle files. The
// LayoutStream API parses one cell at a time from a seekable byte source;
// the ingestor below drives it in two passes:
//
//   1. Directory pass: every cell is skimmed (geometry decoded but not
//      stored) to learn the cell table, the reference graph, and each
//      cell's byte offset. Memory: O(cells) names + edges, no geometry.
//   2. Flatten pass: a depth-first walk over the instance tree — the exact
//      order of Library::each_instance — re-parses cells on demand through
//      an LRU cache holding at most `window` parsed cells. Each visited
//      instance emits its transformed polygons immediately, so geometry
//      flows straight into fracture (or any consumer) without a flat
//      in-RAM shot list ever existing.
//
// Peak resident parsed-cell count is bounded by the window (asserted in
// tests/layout_stream_test.cpp); emitted polygon order is identical to
// Library::flatten, which makes streamed fracture bitwise-identical to the
// in-RAM path.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fracture/fracture.h"
#include "layout/cell.h"
#include "layout/library.h"

namespace ebl {

/// Reference-number sentinel: "this cell/ref is addressed by name".
inline constexpr std::uint64_t kNoRefnum = ~std::uint64_t{0};

/// A placement parsed from the stream. The child is addressed by name when
/// the format carries one inline; OASIS CELLNAME reference numbers resolve
/// through LayoutStream::name_of once the directory pass reaches the END
/// record (the name table may follow the cells that use it).
struct StreamRef {
  std::string child;                    ///< empty while only refnum is known
  std::uint64_t child_refnum = kNoRefnum;
  CTrans trans;
  std::uint32_t cols = 1;
  std::uint32_t rows = 1;
  Point col_step{0, 0};
  Point row_step{0, 0};

  bool is_array() const { return cols > 1 || rows > 1; }
};

/// One parsed cell. In skim mode (next(..., with_geometry=false)) shapes
/// stays empty but shape_count still reports how many polygons the cell
/// carries; refs are always populated.
struct StreamCell {
  std::string name;                     ///< empty while only refnum is known
  std::uint64_t refnum = kNoRefnum;
  std::map<LayerKey, std::vector<Polygon>> shapes;
  std::vector<StreamRef> refs;
  std::size_t shape_count = 0;

  const std::vector<Polygon>& shapes_on(LayerKey layer) const;
};

/// Forward cell reader with random re-read access over a seekable stream.
/// Implemented by the GDSII and OASIS parsers (layout/gdsii.cpp,
/// layout/oasis.cpp); both throw DataError with byte offsets on malformed
/// input.
class LayoutStream {
 public:
  virtual ~LayoutStream() = default;

  virtual const std::string& library_name() const = 0;
  virtual double dbu_in_microns() const = 0;

  /// Parses the next cell in file order; returns false once the end-of-
  /// layout record has been consumed. @p with_geometry = false skims:
  /// geometry operands are decoded (and validated) but not stored.
  virtual bool next(StreamCell& out, bool with_geometry = true) = 0;

  /// Restarts next() iteration from the first cell.
  virtual void rewind() = 0;

  /// Cells encountered so far (file order indices 0..cells_seen()-1).
  virtual std::size_t cells_seen() const = 0;

  /// Re-parses cell @p index (must have been seen). Seeks; does not disturb
  /// the next() position of a *finished* pass, but interleaving read_cell
  /// with an unfinished next() pass is a contract violation.
  virtual StreamCell read_cell(std::size_t index, bool with_geometry = true) = 0;

  /// Resolves an OASIS cellname reference number. Valid once a full pass
  /// has consumed the END record. GDSII streams never produce refnums.
  virtual std::string name_of(std::uint64_t refnum) const;
};

/// Opens @p path as a layout stream by extension: .gds/.gdsii -> GDSII,
/// .oas/.oasis -> OASIS (case-insensitive). Throws DataError for anything
/// else ("unsupported layout extension").
std::unique_ptr<LayoutStream> open_layout_stream(const std::string& path);

/// Format-specific factories (implemented in layout/gdsii.cpp and
/// layout/oasis.cpp). The unique_ptr<istream> overloads take ownership of an
/// arbitrary seekable stream — handy for in-memory stringstream tests.
std::unique_ptr<LayoutStream> open_gds_stream(const std::string& path);
std::unique_ptr<LayoutStream> open_gds_stream(std::unique_ptr<std::istream> is);
std::unique_ptr<LayoutStream> open_oas_stream(const std::string& path);
std::unique_ptr<LayoutStream> open_oas_stream(std::unique_ptr<std::istream> is);

/// Reads a whole library through the streaming parser (extension dispatch
/// as open_layout_stream). Equivalent to read_gds / read_oas.
Library read_layout(const std::string& path);

/// Writes @p lib by extension (write_gds / write_oas).
void write_layout(const Library& lib, const std::string& path);

/// Streaming-ingestion knobs.
struct IngestOptions {
  /// Top cell name; empty auto-detects the unique unreferenced cell (throws
  /// DataError when the file has none or several).
  std::string top;

  /// Layer to flatten.
  LayerKey layer;

  /// Maximum simultaneously resident parsed cells during the flatten pass
  /// (the read-ahead window). Cells evicted from the window are re-parsed
  /// from their byte offset when revisited.
  std::size_t window = 16;
};

/// Streaming-ingestion counters (PrepResult::ingest surfaces these).
struct IngestStats {
  std::size_t cells = 0;          ///< cells in the file
  std::size_t placements = 0;     ///< expanded instances visited (incl. top)
  std::size_t polygons = 0;       ///< polygons emitted on the target layer
  std::size_t peak_resident = 0;  ///< max parsed cells held at once (<= window)
  std::size_t cell_parses = 0;    ///< geometry parse events in the flatten pass
  std::size_t reloads = 0;        ///< parses beyond the first per cell (evictions paid)
};

/// Flattens one layer of the streamed layout depth-first, emitting every
/// polygon transformed to top coordinates — the streaming counterpart of
/// Library::flatten with identical emission order. The directory pass
/// validates the hierarchy (undefined references, cycles, depth) before any
/// geometry is emitted.
IngestStats stream_layer(LayoutStream& stream, const IngestOptions& options,
                         const std::function<void(const Polygon&)>& emit);

struct StreamFractureResult {
  FractureResult fracture;
  IngestStats ingest;
};

/// Streams one layer directly into the boolean/fracture engine: polygons are
/// added to the scanline merge as they are emitted and never stored as a
/// PolygonSet. The resulting shots are bitwise-identical to
/// fracture(lib.flatten(top, layer), options) on the same file.
/// @p collect, when non-null, additionally accumulates the flattened
/// geometry (used by the pipeline's EPE stage, which needs the target).
StreamFractureResult stream_fracture(LayoutStream& stream,
                                     const IngestOptions& options,
                                     const FractureOptions& fracture_options,
                                     PolygonSet* collect = nullptr);

}  // namespace ebl
