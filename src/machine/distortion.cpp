#include "machine/distortion.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace ebl {

std::pair<double, double> DeflectionDistortion::displacement(double u, double v) const {
  const double r2 = u * u + v * v;
  const double dx = offset_x + scale_x * u - rotation * v + pincushion * u * r2 / 2.0;
  const double dy = offset_y + scale_y * v + rotation * u + pincushion * v * r2 / 2.0;
  return {dx, dy};
}

double max_stitching_error(const DeflectionDistortion& d, int samples) {
  expects(samples >= 2, "max_stitching_error: need >= 2 samples");
  double worst = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double v = -1.0 + 2.0 * i / (samples - 1);
    // Right edge of field A (u=+1) butts left edge of field B (u=-1).
    const auto [ax, ay] = d.displacement(1.0, v);
    const auto [bx, by] = d.displacement(-1.0, v);
    worst = std::max(worst, std::hypot(ax - bx, ay - by));
    // Top edge (v=+1) butts bottom edge (v=-1) of the field above.
    const auto [cx, cy] = d.displacement(v, 1.0);
    const auto [dx2, dy2] = d.displacement(v, -1.0);
    worst = std::max(worst, std::hypot(cx - dx2, cy - dy2));
  }
  return worst;
}

DeflectionDistortion calibrate_affine(const DeflectionDistortion& d, int n,
                                      double noise_dbu, std::uint64_t seed) {
  expects(n >= 2, "calibrate_affine: need >= 2x2 marks");
  Rng rng(seed);

  // Model dx = a0 + a1 u + a2 v, dy = b0 + b1 u + b2 v; normal equations
  // with the design matrix [1, u, v].
  double m[3][3] = {};
  double rx[3] = {};
  double ry[3] = {};
  for (int iy = 0; iy < n; ++iy) {
    for (int ix = 0; ix < n; ++ix) {
      const double u = -1.0 + 2.0 * ix / (n - 1);
      const double v = -1.0 + 2.0 * iy / (n - 1);
      auto [dx, dy] = d.displacement(u, v);
      if (noise_dbu > 0) {
        dx += noise_dbu * rng.normal();
        dy += noise_dbu * rng.normal();
      }
      const double phi[3] = {1.0, u, v};
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) m[a][b] += phi[a] * phi[b];
        rx[a] += phi[a] * dx;
        ry[a] += phi[a] * dy;
      }
    }
  }

  // Solve the two 3x3 systems by Gaussian elimination with partial pivoting.
  const auto solve3 = [](double a[3][3], double r[3], double out[3]) {
    double aug[3][4];
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) aug[i][j] = a[i][j];
      aug[i][3] = r[i];
    }
    for (int col = 0; col < 3; ++col) {
      int pivot = col;
      for (int row = col + 1; row < 3; ++row) {
        if (std::abs(aug[row][col]) > std::abs(aug[pivot][col])) pivot = row;
      }
      std::swap(aug[col], aug[pivot]);
      ensures(std::abs(aug[col][col]) > 1e-12, "calibrate: singular normal matrix");
      for (int row = 0; row < 3; ++row) {
        if (row == col) continue;
        const double f = aug[row][col] / aug[col][col];
        for (int j = col; j < 4; ++j) aug[row][j] -= f * aug[col][j];
      }
    }
    for (int i = 0; i < 3; ++i) out[i] = aug[i][3] / aug[i][i];
  };

  double cx[3];
  double cy[3];
  double mx[3][3];
  double my[3][3];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      mx[i][j] = m[i][j];
      my[i][j] = m[i][j];
    }
  }
  solve3(mx, rx, cx);
  solve3(my, ry, cy);

  // Fitted affine: dx ~ cx0 + cx1 u + cx2 v ; dy ~ cy0 + cy1 u + cy2 v.
  // The machine applies the inverse of the fit; the residual keeps the
  // original nonlinearity minus the absorbed affine component.
  DeflectionDistortion residual = d;
  residual.offset_x -= cx[0];
  residual.offset_y -= cy[0];
  residual.scale_x -= cx[1];
  residual.scale_y -= cy[2];
  // rotation appears as -rot in dx/dv and +rot in dy/du; average the two
  // estimates.
  residual.rotation -= 0.5 * (cy[1] - cx[2]);
  return residual;
}

void apply_distortion(ShotList& shots, const Box& field,
                      const DeflectionDistortion& d, double sign) {
  expects(!field.empty() && field.width() > 0 && field.height() > 0,
          "apply_distortion: field frame must have positive extent");
  const double cx = 0.5 * (static_cast<double>(field.lo.x) + field.hi.x);
  const double cy = 0.5 * (static_cast<double>(field.lo.y) + field.hi.y);
  const double hx = 0.5 * static_cast<double>(field.width());
  const double hy = 0.5 * static_cast<double>(field.height());
  for (Shot& s : shots) {
    const Box bb = s.shape.bbox();
    const double px = 0.5 * (static_cast<double>(bb.lo.x) + bb.hi.x);
    const double py = 0.5 * (static_cast<double>(bb.lo.y) + bb.hi.y);
    const auto [dx, dy] = d.displacement((px - cx) / hx, (py - cy) / hy);
    const Coord ix = static_cast<Coord>(std::llround(sign * dx));
    const Coord iy = static_cast<Coord>(std::llround(sign * dy));
    if (ix == 0 && iy == 0) continue;
    s.shape.y0 += iy;
    s.shape.y1 += iy;
    s.shape.xl0 += ix;
    s.shape.xr0 += ix;
    s.shape.xl1 += ix;
    s.shape.xr1 += ix;
  }
}

}  // namespace ebl
