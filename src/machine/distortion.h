// Deflection distortion and field-stitching error.
//
// Electromagnetic deflection is not perfectly linear over the field: gain
// (scale) error, axis rotation, and third-order pincushion bow the written
// grid. When adjacent fields butt, the placement mismatch across the shared
// edge is the stitching error. Machines calibrate the linear part against
// registration marks; the pincushion residual is what remains.
#pragma once

#include <utility>

#include "fracture/shot.h"
#include "geom/box.h"

namespace ebl {

/// Displacement model over normalized field coordinates (u, v) in [-1, 1]²
/// (u = 1 is the +x field edge). Units of the returned displacement: dbu.
struct DeflectionDistortion {
  double scale_x = 0.0;     ///< x gain error, dbu at the field edge
  double scale_y = 0.0;     ///< y gain error, dbu at the field edge
  double rotation = 0.0;    ///< rotation, dbu of skew at the field edge
  double pincushion = 0.0;  ///< 3rd-order radial term, dbu at the corner
  double offset_x = 0.0;    ///< constant placement offset, dbu
  double offset_y = 0.0;

  /// Displacement (dx, dy) at normalized position (u, v).
  std::pair<double, double> displacement(double u, double v) const;
};

/// Maximum butting mismatch (dbu) across the shared edge of two adjacent
/// fields that both exhibit @p d, sampled at @p samples points along the
/// edge. Both x-butting and y-butting edges are checked.
double max_stitching_error(const DeflectionDistortion& d, int samples = 33);

/// Least-squares fit of the affine part (offset + scale + rotation) of @p d
/// from an n x n grid of simulated registration-mark measurements with
/// optional Gaussian measurement noise (dbu, reproducible via @p seed).
/// Returns the residual distortion after subtracting the fit (affine terms
/// near zero, pincushion untouched).
DeflectionDistortion calibrate_affine(const DeflectionDistortion& d, int n = 5,
                                      double noise_dbu = 0.0,
                                      std::uint64_t seed = 42);

/// Translates every shot by the model displacement at its centroid, rounded
/// to the database grid, with @p field mapping to normalized [-1, 1]²
/// coordinates. sign = +1 applies the distortion (what the column does to
/// the written pattern); sign = -1 applies it as a pre-compensating
/// correction. An all-zero model is a bitwise no-op for either sign.
/// Centroids outside the field extrapolate the model smoothly, so clipped
/// straddlers at the frame are handled.
void apply_distortion(ShotList& shots, const Box& field,
                      const DeflectionDistortion& d, double sign = 1.0);

}  // namespace ebl
