#include "machine/field.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "fracture/fracture.h"
#include "util/contracts.h"
#include "util/gridkeys.h"
#include "util/parallel.h"

namespace ebl {
namespace {

Box pattern_bbox(const ShotList& shots) {
  Box b;
  for (const Shot& s : shots) b += s.shape.bbox();
  return b;
}

/// Per-shot inclusive field-index range, all in 64-bit (indices are relative
/// to the pattern bbox corner, so they are non-negative and fit 32 bits even
/// for full-Coord-range extents).
struct FieldRange {
  Coord64 fx0, fx1, fy0, fy1;
  bool straddles() const { return fx0 != fx1 || fy0 != fy1; }
};

FieldRange field_range(const Box& sb, Point anchor, Coord field_size) {
  return {(Coord64(sb.lo.x) - anchor.x) / field_size,
          (Coord64(sb.hi.x) - anchor.x) / field_size,
          (Coord64(sb.lo.y) - anchor.y) / field_size,
          (Coord64(sb.hi.y) - anchor.y) / field_size};
}

/// Field frame computed in Coord64 end to end and only narrowed after
/// clamping to the coordinate range. The clamp is lossless for clipping:
/// shots live inside the Coord range, so a frame edge past it cuts nothing.
/// (The previous implementation narrowed anchor + (fx + 1) * field_size with
/// a bare static_cast<Coord>, which silently wrapped for extents near the
/// 32-bit edge.)
Box field_frame(Point anchor, Coord64 fx, Coord64 fy, Coord field_size) {
  const auto clamp_coord = [](Coord64 v) {
    return static_cast<Coord>(
        std::clamp<Coord64>(v, std::numeric_limits<Coord>::min(),
                            std::numeric_limits<Coord>::max()));
  };
  const Coord64 x0 = Coord64(anchor.x) + fx * field_size;
  const Coord64 y0 = Coord64(anchor.y) + fy * field_size;
  return Box{clamp_coord(x0), clamp_coord(y0), clamp_coord(x0 + field_size),
             clamp_coord(y0 + field_size)};
}

}  // namespace

FieldPartition partition_fields_counted(const ShotList& shots, Coord field_size,
                                        int threads) {
  expects(field_size > 0, "partition_fields: field size must be positive");
  FieldPartition out;
  const Box bb = pattern_bbox(shots);
  if (bb.empty()) return out;

  // Pass 1 (parallel): every shot's field-index range — the one bbox sweep
  // both the partitioner and the straddler count consume.
  const std::size_t n = shots.size();
  std::vector<FieldRange> ranges(n);
  parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          ranges[i] = field_range(shots[i].shape.bbox(), bb.lo, field_size);
      },
      threads);

  // Pass 2: straddlers, per-shot incidence offsets, and the occupied-field
  // key set (moved into the slot map, no copy). Each incidence then resolves
  // to its slot exactly once, shot-parallel, recomputing its key from the
  // retained ranges; the CSR count and fill passes run on resolved slots,
  // with shots visited in index order so every field's list ascends.
  std::vector<std::uint32_t> inc_start(n + 1, 0);
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < n; ++i) {
    const FieldRange& r = ranges[i];
    out.straddlers += r.straddles() ? 1 : 0;
    for (Coord64 fy = r.fy0; fy <= r.fy1; ++fy)
      for (Coord64 fx = r.fx0; fx <= r.fx1; ++fx) keys.push_back(pack_grid_key(fx, fy));
    inc_start[i + 1] = static_cast<std::uint32_t>(keys.size());
  }
  const std::size_t total = keys.size();
  const GridKeySlots slots(std::move(keys));
  const std::size_t nf = slots.size();
  std::vector<std::uint32_t> inc_slot(total);
  std::vector<std::uint32_t> inc_shot(total);
  parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const FieldRange& r = ranges[i];
          std::uint32_t k = inc_start[i];
          for (Coord64 fy = r.fy0; fy <= r.fy1; ++fy) {
            for (Coord64 fx = r.fx0; fx <= r.fx1; ++fx) {
              inc_slot[k] = static_cast<std::uint32_t>(slots.slot_of(pack_grid_key(fx, fy)));
              inc_shot[k] = static_cast<std::uint32_t>(i);
              ++k;
            }
          }
        }
      },
      threads);

  std::vector<std::uint32_t> start(nf + 1, 0);
  for (const std::uint32_t slot : inc_slot) ++start[slot + 1];
  for (std::size_t f = 1; f <= nf; ++f) start[f] += start[f - 1];
  std::vector<std::uint32_t> items(total);
  {
    std::vector<std::uint32_t> cursor(start.begin(), start.end() - 1);
    for (std::size_t k = 0; k < total; ++k) items[cursor[inc_slot[k]]++] = inc_shot[k];
  }

  // Pass 3 (parallel fill): each field clips its incident shots in ascending
  // shot order — disjoint outputs, so the partition is thread-count
  // independent.
  out.fields.resize(nf);
  parallel_for(
      nf,
      [&](std::size_t f0, std::size_t f1) {
        for (std::size_t f = f0; f < f1; ++f) {
          const Coord64 fx = grid_key_x(slots.key(f));
          const Coord64 fy = grid_key_y(slots.key(f));
          FieldJob& job = out.fields[f];
          job.field = field_frame(bb.lo, fx, fy, field_size);
          for (std::uint32_t k = start[f]; k < start[f + 1]; ++k) {
            const Shot& s = shots[items[k]];
            for (const Trapezoid& piece : clip_trapezoid(s.shape, job.field))
              job.shots.push_back(Shot{piece, s.dose});
          }
        }
      },
      threads);

  // A shot's bbox may graze a field its shape never enters (slanted sides):
  // such fields end up empty and are dropped, like the map-based
  // implementation dropped them by never inserting.
  out.fields.erase(std::remove_if(out.fields.begin(), out.fields.end(),
                                  [](const FieldJob& j) { return j.shots.empty(); }),
                   out.fields.end());
  return out;
}

std::vector<FieldJob> partition_fields(const ShotList& shots, Coord field_size) {
  return partition_fields_counted(shots, field_size).fields;
}

std::size_t count_boundary_straddlers(const ShotList& shots, Coord field_size) {
  expects(field_size > 0, "count_boundary_straddlers: field size must be positive");
  const Box bb = pattern_bbox(shots);
  std::size_t straddlers = 0;
  for (const Shot& s : shots) {
    straddlers +=
        field_range(s.shape.bbox(), bb.lo, field_size).straddles() ? 1 : 0;
  }
  return straddlers;
}

}  // namespace ebl
