#include "machine/field.h"

#include <map>

#include "fracture/fracture.h"
#include "util/contracts.h"

namespace ebl {
namespace {

Box pattern_bbox(const ShotList& shots) {
  Box b;
  for (const Shot& s : shots) b += s.shape.bbox();
  return b;
}

}  // namespace

std::vector<FieldJob> partition_fields(const ShotList& shots, Coord field_size) {
  expects(field_size > 0, "partition_fields: field size must be positive");
  const Box bb = pattern_bbox(shots);
  if (bb.empty()) return {};

  std::map<std::pair<Coord64, Coord64>, FieldJob> fields;
  for (const Shot& s : shots) {
    const Box sb = s.shape.bbox();
    const Coord64 fx0 = (Coord64(sb.lo.x) - bb.lo.x) / field_size;
    const Coord64 fx1 = (Coord64(sb.hi.x) - bb.lo.x) / field_size;
    const Coord64 fy0 = (Coord64(sb.lo.y) - bb.lo.y) / field_size;
    const Coord64 fy1 = (Coord64(sb.hi.y) - bb.lo.y) / field_size;
    for (Coord64 fy = fy0; fy <= fy1; ++fy) {
      for (Coord64 fx = fx0; fx <= fx1; ++fx) {
        const Box frame{static_cast<Coord>(bb.lo.x + fx * field_size),
                        static_cast<Coord>(bb.lo.y + fy * field_size),
                        static_cast<Coord>(bb.lo.x + (fx + 1) * field_size),
                        static_cast<Coord>(bb.lo.y + (fy + 1) * field_size)};
        for (const Trapezoid& piece : clip_trapezoid(s.shape, frame)) {
          auto& job = fields[{fx, fy}];
          job.field = frame;
          job.shots.push_back(Shot{piece, s.dose});
        }
      }
    }
  }

  std::vector<FieldJob> out;
  out.reserve(fields.size());
  for (auto& [key, job] : fields) out.push_back(std::move(job));
  return out;
}

std::size_t count_boundary_straddlers(const ShotList& shots, Coord field_size) {
  expects(field_size > 0, "count_boundary_straddlers: field size must be positive");
  const Box bb = pattern_bbox(shots);
  std::size_t n = 0;
  for (const Shot& s : shots) {
    const Box sb = s.shape.bbox();
    const Coord64 fx0 = (Coord64(sb.lo.x) - bb.lo.x) / field_size;
    const Coord64 fx1 = (Coord64(sb.hi.x) - bb.lo.x) / field_size;
    const Coord64 fy0 = (Coord64(sb.lo.y) - bb.lo.y) / field_size;
    const Coord64 fy1 = (Coord64(sb.hi.y) - bb.lo.y) / field_size;
    if (fx0 != fx1 || fy0 != fy1) ++n;
  }
  return n;
}

}  // namespace ebl
