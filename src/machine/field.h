// Exposure-field partitioning.
//
// Deflection reaches only a limited field; larger patterns are written as a
// grid of fields with stage moves in between. Shots straddling a boundary
// are clipped into per-field pieces (this is where stitching errors bite).
//
// The partitioner is a two-pass bucket build: one parallel pass computes
// every shot's field-index range in 64-bit (field frames are kept in Coord64
// until the final clip, so extents near — or, relative to a field origin,
// beyond — the 32-bit edge never wrap), a count/prefix-sum/fill pass buckets
// the (shot, field) incidences per occupied field, and a parallel fill pass
// clips each field's shots independently. Fields come out sorted by (row,
// column) and each field's pieces follow ascending shot order, so the result
// is identical for any thread count.
#pragma once

#include <vector>

#include "fracture/shot.h"
#include "geom/box.h"

namespace ebl {

struct FieldJob {
  Box field;       ///< field frame in pattern coordinates
  ShotList shots;  ///< shots clipped into the field
};

/// Fields plus the straddler count, produced from one shared pass over the
/// shot bboxes (partitioning and straddler counting need the same per-shot
/// field-index ranges).
struct FieldPartition {
  std::vector<FieldJob> fields;  ///< non-empty fields, sorted by (row, col)
  std::size_t straddlers = 0;    ///< shots cut by field boundaries
};

/// Splits @p shots over a regular grid of @p field_size x @p field_size
/// fields anchored at the pattern bbox lower-left corner, and counts
/// boundary straddlers along the way. Empty fields are omitted. Shot doses
/// carry over to the clipped pieces. Per-field clipping runs on the thread
/// pool (threads: 0 = auto); the result is identical for any thread count.
FieldPartition partition_fields_counted(const ShotList& shots, Coord field_size,
                                        int threads = 0);

/// Convenience wrapper returning the fields only.
std::vector<FieldJob> partition_fields(const ShotList& shots, Coord field_size);

/// Count of shots that were cut by field boundaries (each straddler counted
/// once, however many pieces it produced).
std::size_t count_boundary_straddlers(const ShotList& shots, Coord field_size);

}  // namespace ebl
