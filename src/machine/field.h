// Exposure-field partitioning.
//
// Deflection reaches only a limited field; larger patterns are written as a
// grid of fields with stage moves in between. Shots straddling a boundary
// are clipped into per-field pieces (this is where stitching errors bite).
#pragma once

#include <vector>

#include "fracture/shot.h"
#include "geom/box.h"

namespace ebl {

struct FieldJob {
  Box field;       ///< field frame in pattern coordinates
  ShotList shots;  ///< shots clipped into the field
};

/// Splits @p shots over a regular grid of @p field_size x @p field_size
/// fields anchored at the pattern bbox lower-left corner. Empty fields are
/// omitted. Shot doses carry over to the clipped pieces.
std::vector<FieldJob> partition_fields(const ShotList& shots, Coord field_size);

/// Count of shots that were cut by field boundaries (each straddler counted
/// once, however many pieces it produced).
std::size_t count_boundary_straddlers(const ShotList& shots, Coord field_size);

}  // namespace ebl
