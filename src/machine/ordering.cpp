#include "machine/ordering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.h"

namespace ebl {
namespace {

std::pair<double, double> centroid_of(const Trapezoid& t) {
  return {0.25 * (double(t.xl0) + t.xr0 + t.xl1 + t.xr1),
          0.5 * (double(t.y0) + t.y1)};
}

}  // namespace

double total_travel(const ShotList& shots) {
  double sum = 0.0;
  for (std::size_t i = 1; i < shots.size(); ++i) {
    const auto [ax, ay] = centroid_of(shots[i - 1].shape);
    const auto [bx, by] = centroid_of(shots[i].shape);
    sum += std::hypot(bx - ax, by - ay);
  }
  return sum;
}

void order_serpentine(ShotList& shots, Coord swath_height) {
  expects(swath_height > 0, "order_serpentine: swath height must be positive");
  std::stable_sort(shots.begin(), shots.end(), [&](const Shot& a, const Shot& b) {
    const auto [ax, ay] = centroid_of(a.shape);
    const auto [bx, by] = centroid_of(b.shape);
    const auto swath_a = static_cast<Coord64>(std::floor(ay / swath_height));
    const auto swath_b = static_cast<Coord64>(std::floor(by / swath_height));
    if (swath_a != swath_b) return swath_a < swath_b;
    // Alternate sweep direction per swath.
    const bool reverse = (swath_a % 2) != 0;
    return reverse ? ax > bx : ax < bx;
  });
}

void order_nearest_neighbor(ShotList& shots) {
  if (shots.size() < 3) return;
  const std::size_t n = shots.size();

  // Bucket grid over centroids.
  double min_x = std::numeric_limits<double>::max();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  std::vector<std::pair<double, double>> c(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = centroid_of(shots[i].shape);
    min_x = std::min(min_x, c[i].first);
    max_x = std::max(max_x, c[i].first);
    min_y = std::min(min_y, c[i].second);
    max_y = std::max(max_y, c[i].second);
  }
  const int grid = std::max(1, static_cast<int>(std::sqrt(double(n) / 2.0)));
  const double cw = std::max((max_x - min_x) / grid, 1.0);
  const double ch = std::max((max_y - min_y) / grid, 1.0);
  std::vector<std::vector<std::uint32_t>> cells(static_cast<std::size_t>(grid) * grid);
  const auto cell_of = [&](double x, double y) {
    const int cx = std::clamp(static_cast<int>((x - min_x) / cw), 0, grid - 1);
    const int cy = std::clamp(static_cast<int>((y - min_y) / ch), 0, grid - 1);
    return static_cast<std::size_t>(cy) * grid + cx;
  };
  for (std::uint32_t i = 0; i < n; ++i) cells[cell_of(c[i].first, c[i].second)].push_back(i);

  std::vector<char> used(n, 0);
  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::uint32_t cur = 0;
  used[0] = 1;
  order.push_back(0);

  for (std::size_t step = 1; step < n; ++step) {
    const auto [px, py] = c[cur];
    const int ccx = std::clamp(static_cast<int>((px - min_x) / cw), 0, grid - 1);
    const int ccy = std::clamp(static_cast<int>((py - min_y) / ch), 0, grid - 1);
    std::uint32_t best = UINT32_MAX;
    double best_d = std::numeric_limits<double>::max();
    // Expand ring by ring until a candidate is found and the ring distance
    // exceeds the best candidate distance.
    for (int ring = 0; ring < 2 * grid; ++ring) {
      if (best != UINT32_MAX) {
        const double ring_d = (ring - 1) * std::min(cw, ch);
        if (ring_d > 0 && ring_d * ring_d > best_d) break;
      }
      bool any_cell = false;
      for (int dy = -ring; dy <= ring; ++dy) {
        for (int dx = -ring; dx <= ring; ++dx) {
          if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring only
          const int x = ccx + dx;
          const int y = ccy + dy;
          if (x < 0 || y < 0 || x >= grid || y >= grid) continue;
          any_cell = true;
          for (const std::uint32_t i : cells[static_cast<std::size_t>(y) * grid + x]) {
            if (used[i]) continue;
            const double ddx = c[i].first - px;
            const double ddy = c[i].second - py;
            const double d = ddx * ddx + ddy * ddy;
            if (d < best_d) {
              best_d = d;
              best = i;
            }
          }
        }
      }
      if (!any_cell && ring >= grid) break;
    }
    ensures(best != UINT32_MAX, "nearest-neighbor ordering lost a shot");
    used[best] = 1;
    order.push_back(best);
    cur = best;
  }

  ShotList reordered;
  reordered.reserve(n);
  for (const std::uint32_t i : order) reordered.push_back(shots[i]);
  shots = std::move(reordered);
}

double deflection_settle_time(const ShotList& shots, double settle_s_per_um,
                              double floor_s_per_figure) {
  return total_travel(shots) / 1000.0 * settle_s_per_um +
         static_cast<double>(shots.size()) * floor_s_per_figure;
}

}  // namespace ebl
