// Shot-ordering optimization for vector-scan writers.
//
// A vector machine pays deflection settling proportional to the jump length
// between consecutive figures. Data-prep therefore orders shots to keep
// jumps short. Two classic orders:
//   - serpentine: sort into horizontal swaths, alternating sweep direction;
//   - greedy nearest-neighbor within a bucket grid.
// Both are O(n log n)-ish and reduce total deflection travel by large
// factors on scattered data.
#pragma once

#include "fracture/shot.h"

namespace ebl {

/// Total centroid-to-centroid travel of the shot order, in dbu.
double total_travel(const ShotList& shots);

/// Reorders shots into a serpentine swath order (swath height in dbu).
void order_serpentine(ShotList& shots, Coord swath_height);

/// Reorders shots greedily: repeatedly jump to the nearest unvisited shot
/// (bucketed search). Better travel than serpentine on clustered data,
/// slower to compute.
void order_nearest_neighbor(ShotList& shots);

/// Vector-scan settle model: time = settle_per_um * travel_um summed over
/// jumps, plus a fixed floor per figure. Complements the constant-settle
/// model in writer.h for ordering studies.
double deflection_settle_time(const ShotList& shots, double settle_s_per_um,
                              double floor_s_per_figure);

}  // namespace ebl
