#include "machine/writer.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace ebl {
namespace {

constexpr double kNm2ToCm2 = 1e-14;
constexpr double kNaToA = 1e-9;
constexpr double kUcToC = 1e-6;

// Seconds to deliver dose D (µC/cm²) to one pixel of side p (nm) with beam
// current I (nA).
double dose_limited_pixel_time(double dose_uc_cm2, double pixel_nm, double current_na) {
  const double area_cm2 = pixel_nm * pixel_nm * kNm2ToCm2;
  return dose_uc_cm2 * kUcToC * area_cm2 / (current_na * kNaToA);
}

}  // namespace

WriteJob make_write_job(const ShotList& shots, const Box& extent) {
  WriteJob job;
  job.extent = extent;
  for (const Shot& s : shots) {
    if (extent.empty()) job.extent += s.shape.bbox();
    const double a = s.shape.area();
    job.exposed_area += a;
    job.charge_area += a * s.dose;
  }
  job.figures = shots.size();
  return job;
}

RasterScanWriter::RasterScanWriter(RasterScanParams params) : p_(params) {
  expects(p_.pixel_nm > 0 && p_.max_pixel_rate_hz > 0, "raster: bad params");
  expects(p_.beam_current_na > 0 && p_.base_dose_uc_cm2 > 0, "raster: bad params");
}

double RasterScanWriter::pixel_rate_hz() const {
  const double dose_rate =
      1.0 / dose_limited_pixel_time(p_.base_dose_uc_cm2, p_.pixel_nm, p_.beam_current_na);
  return std::min(p_.max_pixel_rate_hz, dose_rate);
}

WriteTime RasterScanWriter::write_time(const WriteJob& job) const {
  WriteTime t;
  if (job.extent.empty()) return t;
  // Every address pixel of the frame is clocked, exposed or not.
  const double frame_pixels =
      static_cast<double>(job.extent.width()) * static_cast<double>(job.extent.height()) /
      (p_.pixel_nm * p_.pixel_nm);
  t.exposure_s = frame_pixels / pixel_rate_hz();
  const double stripes =
      std::ceil(static_cast<double>(job.extent.height()) / p_.stripe_height_nm);
  t.stage_s = stripes * p_.stripe_turnaround_s;
  return t;
}

VectorScanWriter::VectorScanWriter(VectorScanParams params) : p_(params) {
  expects(p_.pixel_nm > 0 && p_.max_pixel_rate_hz > 0, "vector: bad params");
  expects(p_.beam_current_na > 0 && p_.base_dose_uc_cm2 > 0, "vector: bad params");
}

double VectorScanWriter::pixel_rate_hz() const {
  const double dose_rate =
      1.0 / dose_limited_pixel_time(p_.base_dose_uc_cm2, p_.pixel_nm, p_.beam_current_na);
  return std::min(p_.max_pixel_rate_hz, dose_rate);
}

WriteTime VectorScanWriter::write_time(const WriteJob& job) const {
  WriteTime t;
  if (job.extent.empty()) return t;
  // Only exposed pixels are visited; dose-weighted area pays proportionally
  // more beam time (per-figure dose scaling slows the clock locally).
  const double exposed_pixels = job.charge_area / (p_.pixel_nm * p_.pixel_nm);
  t.exposure_s = exposed_pixels / pixel_rate_hz();
  t.overhead_s = static_cast<double>(job.figures) * p_.figure_settle_s;
  const double fields_x =
      std::ceil(static_cast<double>(job.extent.width()) / p_.field_size_nm);
  const double fields_y =
      std::ceil(static_cast<double>(job.extent.height()) / p_.field_size_nm);
  t.stage_s = fields_x * fields_y * p_.stage_move_s;
  return t;
}

VsbWriter::VsbWriter(VsbParams params) : p_(params) {
  expects(p_.current_density_a_cm2 > 0 && p_.base_dose_uc_cm2 > 0, "vsb: bad params");
}

double VsbWriter::flash_time_s(double relative_dose) const {
  const double t = relative_dose * p_.base_dose_uc_cm2 * kUcToC / p_.current_density_a_cm2;
  return std::max(t, p_.min_flash_s);
}

WriteTime VsbWriter::write_time(const WriteJob& job) const {
  WriteTime t;
  if (job.extent.empty()) return t;
  // Flash time is independent of shot area: dose / current density. The
  // mean relative dose is charge_area / exposed_area.
  const double mean_dose =
      job.exposed_area > 0 ? job.charge_area / job.exposed_area : 1.0;
  t.exposure_s = static_cast<double>(job.figures) * flash_time_s(mean_dose);
  t.overhead_s = static_cast<double>(job.figures) * p_.shot_overhead_s;
  const double fields_x =
      std::ceil(static_cast<double>(job.extent.width()) / p_.field_size_nm);
  const double fields_y =
      std::ceil(static_cast<double>(job.extent.height()) / p_.field_size_nm);
  t.stage_s = fields_x * fields_y * p_.stage_move_s;
  return t;
}

}  // namespace ebl
