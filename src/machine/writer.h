// E-beam writer timing models.
//
// The three machine architectures the 1979 tutorial compares:
//  - Raster scan (MEBES style): the beam sweeps EVERY address pixel of the
//    frame at a fixed clock, blanked over unexposed area. Write time is
//    pattern-independent for a given frame.
//  - Vector scan (Gaussian beam): the beam visits only the exposed figures
//    pixel by pixel, paying a settling time per figure.
//  - Variable-shaped beam (VSB): one flash exposes a whole trapezoid shot;
//    flash time is dose/current-density, so write time scales with shot
//    count, not area.
//
// Units: lengths in dbu (1 nm), currents in nA, current density in A/cm²,
// dose in µC/cm², times in seconds.
#pragma once

#include <memory>
#include <string>

#include "fracture/shot.h"
#include "geom/box.h"

namespace ebl {

/// Aggregate workload description handed to a writer model.
struct WriteJob {
  Box extent;                  ///< frame that must be covered, dbu
  double exposed_area = 0.0;   ///< dbu²
  double charge_area = 0.0;    ///< dose-weighted area, dbu² (PEC raises this)
  std::size_t figures = 0;     ///< shot/figure count
};

/// Builds a WriteJob from a shot list (extent = shot bbox unless given).
WriteJob make_write_job(const ShotList& shots, const Box& extent = {});

/// Decomposed write-time estimate.
struct WriteTime {
  double exposure_s = 0.0;  ///< beam-on (or clocked-pixel) time
  double overhead_s = 0.0;  ///< figure settling / shot overhead
  double stage_s = 0.0;     ///< stage movement / stripe turnaround
  double total() const { return exposure_s + overhead_s + stage_s; }
};

/// Common interface so benches can sweep machines uniformly.
class WriterModel {
 public:
  virtual ~WriterModel() = default;
  virtual std::string name() const = 0;
  virtual WriteTime write_time(const WriteJob& job) const = 0;
};

/// Raster-scan machine (MEBES-like).
struct RasterScanParams {
  double pixel_nm = 100.0;           ///< address structure
  double max_pixel_rate_hz = 40e6;   ///< blanker clock ceiling
  double beam_current_na = 400.0;
  double base_dose_uc_cm2 = 1.0;
  double stripe_height_nm = 65536.0; ///< one stage stripe
  double stripe_turnaround_s = 0.05;
};

class RasterScanWriter final : public WriterModel {
 public:
  explicit RasterScanWriter(RasterScanParams params = {});
  std::string name() const override { return "raster"; }
  WriteTime write_time(const WriteJob& job) const override;
  /// Effective pixel rate: dose-limited or clock-limited.
  double pixel_rate_hz() const;

 private:
  RasterScanParams p_;
};

/// Vector-scan Gaussian-beam machine.
struct VectorScanParams {
  double pixel_nm = 50.0;
  double max_pixel_rate_hz = 20e6;
  double beam_current_na = 100.0;
  double base_dose_uc_cm2 = 1.0;
  double figure_settle_s = 5e-6;     ///< deflector settling per figure
  double field_size_nm = 1.0e6;      ///< deflection field
  double stage_move_s = 0.2;         ///< per field
};

class VectorScanWriter final : public WriterModel {
 public:
  explicit VectorScanWriter(VectorScanParams params = {});
  std::string name() const override { return "vector"; }
  WriteTime write_time(const WriteJob& job) const override;
  double pixel_rate_hz() const;

 private:
  VectorScanParams p_;
};

/// Variable-shaped-beam machine.
struct VsbParams {
  double current_density_a_cm2 = 20.0;
  double base_dose_uc_cm2 = 2.0;
  double shot_overhead_s = 0.5e-6;   ///< blanking + shaping per shot
  double min_flash_s = 0.1e-6;
  double field_size_nm = 0.5e6;
  double stage_move_s = 0.05;
};

class VsbWriter final : public WriterModel {
 public:
  explicit VsbWriter(VsbParams params = {});
  std::string name() const override { return "vsb"; }
  WriteTime write_time(const WriteJob& job) const override;
  /// Flash time for a relative dose (dose 1.0 = base dose).
  double flash_time_s(double relative_dose) const;

 private:
  VsbParams p_;
};

}  // namespace ebl
