#include "pec/correction.h"

#include <algorithm>
#include <cmath>

#include "geom/raster.h"
#include "pec/sharded.h"
#include "util/contracts.h"

namespace ebl {

PecResult correct_proximity(const ShotList& shots, const Psf& psf,
                            const PecOptions& options) {
  expects(!shots.empty(), "correct_proximity: empty shot list");
  expects(options.target > 0, "correct_proximity: target must be positive");
  expects(options.max_iterations > 0, "correct_proximity: need >= 1 iteration");

  // shard_size > 0 selects the sharded pipeline: per-shard memory, shards
  // corrected concurrently, cross-shard coupling via halo-exchange rounds.
  // worker_count > 0 implies sharding (the distributed entry fills in the
  // default shard size) — silently running monolithic in-process despite a
  // requested worker pool would be a footgun.
  if (options.worker_count > 0 || !options.worker_hosts.empty())
    return correct_proximity_distributed(shots, psf, options);
  if (options.shard_size > 0) return correct_proximity_sharded(shots, psf, options);

  // The corrector only ever samples shot centroids, so the long-range maps
  // can drop their off-pattern sampling margin (see map_margin_sigmas).
  ExposureOptions eopt = options.exposure;
  eopt.map_margin_sigmas = 0.0;
  ExposureEvaluator eval(shots, psf, eopt);
  std::vector<double> doses(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) doses[i] = shots[i].dose;

  // Iteration-aware update schedule (delta mode only): shots already within
  // update_tol of target are left untouched this iteration. The bar is loose
  // while the sweep error is large — shots that start on target (uniform
  // interiors) freeze immediately — and tightens to the convergence
  // tolerance as the solve approaches it, so the final iterations touch only
  // the shots still moving and the evaluator's delta path does the rest.
  // The stopping criterion is measured over every shot regardless, so
  // converged accuracy is exactly the non-scheduled corrector's.
  const bool delta_mode = eopt.delta_threshold > 0;
  PecResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    const std::vector<double> e = eval.exposures_at_centroids();
    double max_err = 0.0;
    for (double ei : e) max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
    result.max_error_history.push_back(max_err);
    result.iterations = iter;
    if (max_err < options.tolerance) break;

    // Floor well below the stopping tolerance so frozen shots cannot pile up
    // just under it and dominate the converged error.
    const double update_tol =
        jacobi_update_tolerance(delta_mode, options.tolerance, max_err);
    for (std::size_t i = 0; i < doses.size(); ++i) {
      doses[i] = jacobi_updated_dose(doses[i], e[i], update_tol, options);
    }
    eval.set_doses(doses);
  }

  result.shots = eval.shots();
  if (options.dose_classes > 0) quantize_doses(result.shots, options.dose_classes);

  // Final error with the delivered (possibly quantized) doses, reusing the
  // evaluator's cached neighbor grid and splat footprints (geometry is
  // unchanged; only doses may have moved under quantization).
  std::vector<double> final_doses(result.shots.size());
  bool doses_changed = false;
  for (std::size_t i = 0; i < result.shots.size(); ++i) {
    final_doses[i] = result.shots[i].dose;
    doses_changed |= final_doses[i] != eval.shots()[i].dose;
  }
  if (doses_changed) eval.set_doses(final_doses);
  double max_err = 0.0;
  for (double ei : eval.exposures_at_centroids())
    max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
  result.final_max_error = max_err;
  result.blur = eval.blur_perf();
  return result;
}

PecResult density_pec(const ShotList& shots, const Psf& psf, const PecOptions& options) {
  expects(!shots.empty(), "density_pec: empty shot list");

  // eta = backscattered fraction / forward fraction, taking the
  // longest-range term as "backscatter" (shared with the sharded warm
  // start — see backscatter_eta).
  double max_sigma = 0.0;
  for (const PsfTerm& t : psf.terms()) max_sigma = std::max(max_sigma, t.sigma);
  const double eta = backscatter_eta(psf);

  // Blurred pattern density at the backscatter range.
  Box frame;
  for (const Shot& s : shots) frame += s.shape.bbox();
  const Coord margin = static_cast<Coord>(std::ceil(4.0 * max_sigma));
  const Coord pixel = std::max<Coord>(1, static_cast<Coord>(max_sigma / 4.0));
  Raster density(frame.bloated(margin), pixel);
  for (const Shot& s : shots) density.add_coverage(s.shape, 1.0);
  // Backend-dispatched: the density map is one blur at sigma/4 pixels, so
  // kAuto stays on the separable passes unless the caller picked finer
  // pixels (via exposure.blur_backend = kFft the spectral path is forced).
  gaussian_blur(density, max_sigma, options.exposure.blur_backend,
                options.exposure.threads);

  PecResult result;
  result.shots = shots;
  for (Shot& s : result.shots) {
    const Trapezoid& t = s.shape;
    const double cx = 0.25 * (double(t.xl0) + t.xr0 + t.xl1 + t.xr1);
    const double cy = 0.5 * (double(t.y0) + t.y1);
    // Bilinear sample with out-of-grid pixels contributing 0: centroids of
    // edge shots can land a pixel outside the padded frame, where nearest-
    // pixel indexing would read a clamped (wrong) border value.
    const double u = std::clamp(density.sample(cx, cy), 0.0, 1.0);
    const double dose = (1.0 + 2.0 * eta) / (1.0 + 2.0 * eta * u);
    s.dose = std::clamp(dose * options.target, options.min_dose, options.max_dose);
  }
  if (options.dose_classes > 0) quantize_doses(result.shots, options.dose_classes);

  ExposureEvaluator eval(result.shots, psf, options.exposure);
  double max_err = 0.0;
  for (double ei : eval.exposures_at_centroids())
    max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
  result.final_max_error = max_err;
  result.iterations = 1;
  result.max_error_history.push_back(max_err);
  return result;
}

int quantize_doses(ShotList& shots, int classes) {
  expects(classes >= 1, "quantize_doses: classes must be >= 1");
  if (shots.empty()) return 0;
  double lo = shots.front().dose;
  double hi = lo;
  for (const Shot& s : shots) {
    lo = std::min(lo, s.dose);
    hi = std::max(hi, s.dose);
  }
  if (hi <= lo) return 1;
  if (classes == 1) {
    // One machine class: the range midpoint minimizes the worst-case snap
    // error (collapsing to the minimum would halve every hot dose).
    const double mid = lo + 0.5 * (hi - lo);
    for (Shot& s : shots) s.dose = mid;
    return 1;
  }
  std::vector<bool> used(static_cast<std::size_t>(classes), false);
  for (Shot& s : shots) {
    const double f = (s.dose - lo) / (hi - lo);
    // Class edges sit halfway between levels; a dose exactly on an edge
    // ties to the HIGHER class (lround rounds half away from zero and
    // f >= 0 here), so boundary doses never lose exposure to the snap.
    int k = static_cast<int>(std::lround(f * (classes - 1)));
    k = std::clamp(k, 0, classes - 1);
    s.dose = lo + (hi - lo) * k / (classes - 1);
    used[static_cast<std::size_t>(k)] = true;
  }
  return static_cast<int>(std::count(used.begin(), used.end(), true));
}

}  // namespace ebl
