// Proximity-effect correction by dose modulation.
//
// Two correctors:
//  - correct_proximity: the self-consistent iterative scheme (per-shot dose,
//    Jacobi iteration on representative points). This is the accurate,
//    shape-based method.
//  - density_pec: the cheap geometry-density method: dose from the local
//    backscatter-blurred pattern density via the closed-form equalization
//    formula d(u) = (1 + 2 eta) / (1 + 2 eta u). One raster, no iteration.
//
// Both can quantize the continuous dose into a fixed number of machine dose
// classes.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "fracture/shot.h"
#include "pec/exposure.h"
#include "pec/psf.h"

namespace ebl {

struct PecOptions {
  int max_iterations = 10;

  /// Stop when the max relative exposure error at representative points
  /// drops below this.
  double tolerance = 0.01;

  /// Target in-pattern exposure (relative to unit-dose infinite pattern).
  double target = 1.0;

  /// Jacobi damping factor (1 = undamped).
  double damping = 1.0;

  /// Dose clamp (machines have a finite dose range).
  double min_dose = 0.1;
  double max_dose = 8.0;

  /// If > 0, final doses snap to this many discrete classes spanning
  /// [min observed, max observed] (machine dose-class granularity).
  int dose_classes = 0;

  /// Side of the square PEC shards in dbu. 0 (the default) keeps the
  /// monolithic global solve — the oracle the sharded pipeline is validated
  /// against. When > 0, correct_proximity dispatches to the sharded pipeline
  /// (src/pec/sharded.h): per-shard memory is O(shard), shards run
  /// concurrently, and patterns beyond the global evaluator's reach (10M+
  /// shots, >2^31-dbu extents) become correctable. Pick a multiple of the
  /// widest PSF sigma — default_shard_size(psf) gives a good value.
  Coord shard_size = 0;

  /// Halo width around each shard, in units of the widest PSF sigma: shots
  /// within halo_factor * max_sigma of a shard's frame join it as frozen-
  /// dose ghosts. 4 matches the kernel truncation (contributions beyond
  /// 4 sigma are below ~1e-6 of a term's weight), so the per-shard solve
  /// sees everything the global solve sees to that accuracy.
  double halo_factor = 4.0;

  /// Extra halo-exchange rounds after the first per-shard correction pass:
  /// each round re-publishes every shard's boundary doses and re-corrects
  /// with the neighbors' fresh values. Rounds after the first start from
  /// near-converged doses and exit in O(1) iterations; a round that changes
  /// no dose certifies cross-shard convergence and stops early.
  int exchange_rounds = 2;

  /// Sharded solves only: initialize every dose from the closed-form
  /// density-PEC formula (computed per shard on a coarse backscatter-range
  /// raster, O(shard) memory) before the first correction round. The halo
  /// scheme freezes ghost doses for a whole round, so its round-1 error is
  /// exactly how wrong those frozen doses are: warm-starting from the
  /// density formula puts ghosts within a few percent of their final values
  /// instead of at the raw input doses, which both shrinks the round-1
  /// Jacobi work and leaves far less cross-shard residual for the exchange
  /// rounds. Accuracy is unaffected — the same per-shard tolerance is
  /// enforced on the same evaluators. Ignored when the layout degenerates to
  /// a single shard (no halos to stabilize, and the monolithic solve is the
  /// bitwise reference for that case).
  bool density_warm_start = true;

  /// Sharded solves only: how many per-shard evaluators may stay resident
  /// across halo-exchange rounds. A resident shard re-enters a round through
  /// an exact dose refresh (ExposureEvaluator::set_background_doses) that
  /// reuses its neighbor grid, splat clipping, and FFT plan — the expensive,
  /// geometry-only construction work — instead of rebuilding them. Over
  /// budget, the least-recently-run shards fall back to transient mode
  /// (evict-LRU); because the refresh is exact, residency never changes a
  /// bit of the result, only the wall clock. 0 disables the pool (every
  /// shard run rebuilds its evaluator, the pre-pool behavior).
  int resident_shard_budget = 64;

  /// When > 0, shard jobs of every halo-exchange round are farmed over this
  /// many out-of-process workers (tools/pec_worker, spawned from
  /// worker_path) instead of the in-process thread pool. Implies sharding:
  /// with shard_size still 0, correct_proximity routes through
  /// correct_proximity_distributed, which fills in default_shard_size. Jobs
  /// and results cross in the versioned binary wire format (src/pec/wire.h,
  /// bit-exact doses), shards stick to workers so the workers' resident
  /// evaluator pools keep hitting, and results are bitwise-identical to the
  /// in-process sharded solve — worker_count = 0 (the default) IS that
  /// in-process engine, the oracle the distributed path is validated
  /// against. More workers than shards is clamped to the shard count.
  int worker_count = 0;

  /// Worker binary for worker_count > 0. Empty (the default) resolves via
  /// default_pec_worker_path(): $EBL_PEC_WORKER, else "pec_worker" next to
  /// the current executable.
  std::string worker_path;

  /// PEC-as-a-service: comma-separated "host:port" addresses of already
  /// running `pec_worker --listen` daemons. Non-empty switches the
  /// distributed solve from fork/exec pipe workers to the TCP transport —
  /// one supervisor slot per address (a daemon serves sessions
  /// sequentially, so never point two slots at the same daemon;
  /// worker_count is ignored in this mode). Each connection re-handshakes
  /// the driver session (wire::Hello), so a daemon keeps its evaluator pool
  /// warm across reconnects; per-job sequence numbers make reconnect replay
  /// idempotent. Connect/heartbeat deadlines come from
  /// $EBL_CONNECT_TIMEOUT_MS (default 5000) and $EBL_HEARTBEAT_MS (default
  /// 2000); a refused or dropped connection consumes the slot's
  /// worker_max_restarts budget exactly like a crashed pipe worker, after
  /// which jobs reassign to live slots or degrade to in-process — and every
  /// path stays bitwise-identical to the in-process engine.
  std::string worker_hosts;

  /// Distributed solves only: base per-job deadline in milliseconds. A worker
  /// that has not produced a job's result frame this long after the job was
  /// sent (scaled up for large shards) is declared hung, killed, and its
  /// unfinished jobs are reassigned — the supervisor's only defense against a
  /// worker that wedges without exiting. 0 (the default) resolves to
  /// $EBL_WORKER_TIMEOUT_MS, else 60000; < 0 disables deadlines entirely
  /// (crashed workers are still detected via EOF on their result pipe).
  double worker_timeout_ms = 0.0;

  /// Distributed solves only: how many times each worker slot may be
  /// respawned after a crash, hang, or corrupt result frame before the slot
  /// is abandoned. When every slot is dead and out of budget, the round
  /// degrades to solving the remaining jobs in-process (bitwise-identical,
  /// just slower) instead of failing the solve.
  int worker_max_restarts = 2;

  ExposureOptions exposure;
};

struct PecResult {
  ShotList shots;                        ///< same geometry, corrected doses
  /// Global solve: max |E/target - 1| per Jacobi iteration. Sharded solve:
  /// the cross-shard error entering each exchange round, then the final
  /// measured error.
  std::vector<double> max_error_history;
  int iterations = 0;
  double final_max_error = 0.0;
  int shards = 0;  ///< sharded pipeline shard count (0 = monolithic solve)
  int rounds = 0;  ///< sharded: correction rounds run (incl. the first pass)

  /// Sharded: wall-clock of each correction round, in round order (the
  /// pipeline surfaces these as pec_round_N stage times).
  std::vector<double> round_ms;
  /// Sharded: wall-clock of the final measurement-only pass; < 0 when the
  /// last round certified convergence and no extra pass was needed.
  double measure_ms = -1.0;
  int resident_shards = 0;  ///< evaluators resident when the solve finished
  int shard_evictions = 0;  ///< resident evaluators dropped to fit the budget
  /// Worker processes the distributed solve ran on (0 = in-process). The
  /// resident/eviction counters above then aggregate the workers' own pools.
  int workers = 0;

  /// Distributed: worker processes respawned after a crash, hang, or corrupt
  /// result frame. 0 on a fault-free run.
  int worker_restarts = 0;
  /// Distributed: shard jobs that had to be re-enqueued (to a respawned or
  /// surviving worker, or solved in-process) because their worker failed.
  /// Recovery replays the identical job against the identical round snapshot,
  /// so reassignment never changes a bit of the result.
  int reassigned_jobs = 0;
  /// Distributed: true when restart budgets ran out and at least part of a
  /// round fell back to solving jobs in-process.
  bool degraded_to_inprocess = false;

  /// Aggregated long-range refresh accounting across every evaluator the
  /// solve used (the one global evaluator, or all shard evaluators summed in
  /// slot order) — how much work the delta path absorbed.
  BlurPerf blur;
};

/// Iterative self-consistent dose correction. The exposure at each shot's
/// centroid is driven to options.target by multiplicative Jacobi updates:
///   d_i <- d_i * (target / E_i)^damping
/// With options.shard_size > 0 the solve runs on the sharded pipeline
/// (src/pec/sharded.h): the pattern is tiled into square shards corrected
/// concurrently with frozen-dose halo ghosts and a few halo-exchange rounds.
PecResult correct_proximity(const ShotList& shots, const Psf& psf,
                            const PecOptions& options = {});

/// The per-iteration freeze bar of the delta-mode update schedule: shots
/// whose relative error is below it are left untouched this iteration —
/// loose while the sweep error is large, tightening to a quarter of the
/// stopping tolerance at convergence (so frozen shots cannot pile up just
/// under the tolerance and dominate the converged error). 0 in oracle mode:
/// every shot updates every iteration.
inline double jacobi_update_tolerance(bool delta_mode, double tolerance,
                                      double max_err) {
  return delta_mode ? std::max(0.25 * tolerance, 0.1 * max_err) : 0.0;
}

/// One Jacobi dose update step, shared by the monolithic corrector and the
/// per-shard solver so the sharded pipeline's single-shard degenerate case
/// stays bitwise-identical to the monolithic solve by construction.
inline double jacobi_updated_dose(double dose, double exposure, double update_tol,
                                  const PecOptions& options) {
  if (update_tol > 0 &&
      std::abs(exposure / options.target - 1.0) < update_tol) {
    return dose;  // frozen this iteration (see jacobi_update_tolerance)
  }
  const double ratio = options.target / std::max(exposure, 1e-9);
  return std::clamp(dose * std::pow(ratio, options.damping), options.min_dose,
                    options.max_dose);
}

/// Geometry-density PEC: one blurred-coverage raster at the backscatter
/// range; each shot's dose is d(u) = (1 + 2 eta) / (1 + 2 eta u(centroid)),
/// where u is the blurred local density. @p eta is inferred from the PSF
/// (weight ratio of the longest-range term to the rest).
PecResult density_pec(const ShotList& shots, const Psf& psf,
                      const PecOptions& options = {});

/// Snaps doses to @p classes equally-spaced discrete values spanning the
/// observed [min, max] dose range (a machine dose table). Returns the
/// number of distinct values used. Contract details: a dose exactly on a
/// class edge ties to the higher class; classes == 1 snaps everything to
/// the range midpoint; a constant dose list is left unchanged.
int quantize_doses(ShotList& shots, int classes);

}  // namespace ebl
