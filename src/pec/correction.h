// Proximity-effect correction by dose modulation.
//
// Two correctors:
//  - correct_proximity: the self-consistent iterative scheme (per-shot dose,
//    Jacobi iteration on representative points). This is the accurate,
//    shape-based method.
//  - density_pec: the cheap geometry-density method: dose from the local
//    backscatter-blurred pattern density via the closed-form equalization
//    formula d(u) = (1 + 2 eta) / (1 + 2 eta u). One raster, no iteration.
//
// Both can quantize the continuous dose into a fixed number of machine dose
// classes.
#pragma once

#include <vector>

#include "fracture/shot.h"
#include "pec/exposure.h"
#include "pec/psf.h"

namespace ebl {

struct PecOptions {
  int max_iterations = 10;

  /// Stop when the max relative exposure error at representative points
  /// drops below this.
  double tolerance = 0.01;

  /// Target in-pattern exposure (relative to unit-dose infinite pattern).
  double target = 1.0;

  /// Jacobi damping factor (1 = undamped).
  double damping = 1.0;

  /// Dose clamp (machines have a finite dose range).
  double min_dose = 0.1;
  double max_dose = 8.0;

  /// If > 0, final doses snap to this many discrete classes spanning
  /// [min observed, max observed] (machine dose-class granularity).
  int dose_classes = 0;

  /// Side of the square PEC shards in dbu. 0 (the default) keeps the
  /// monolithic global solve — the oracle the sharded pipeline is validated
  /// against. When > 0, correct_proximity dispatches to the sharded pipeline
  /// (src/pec/sharded.h): per-shard memory is O(shard), shards run
  /// concurrently, and patterns beyond the global evaluator's reach (10M+
  /// shots, >2^31-dbu extents) become correctable. Pick a multiple of the
  /// widest PSF sigma — default_shard_size(psf) gives a good value.
  Coord shard_size = 0;

  /// Halo width around each shard, in units of the widest PSF sigma: shots
  /// within halo_factor * max_sigma of a shard's frame join it as frozen-
  /// dose ghosts. 4 matches the kernel truncation (contributions beyond
  /// 4 sigma are below ~1e-6 of a term's weight), so the per-shard solve
  /// sees everything the global solve sees to that accuracy.
  double halo_factor = 4.0;

  /// Extra halo-exchange rounds after the first per-shard correction pass:
  /// each round re-publishes every shard's boundary doses and re-corrects
  /// with the neighbors' fresh values. Rounds after the first start from
  /// near-converged doses and exit in O(1) iterations; a round that changes
  /// no dose certifies cross-shard convergence and stops early.
  int exchange_rounds = 2;

  ExposureOptions exposure;
};

struct PecResult {
  ShotList shots;                        ///< same geometry, corrected doses
  /// Global solve: max |E/target - 1| per Jacobi iteration. Sharded solve:
  /// the cross-shard error entering each exchange round, then the final
  /// measured error.
  std::vector<double> max_error_history;
  int iterations = 0;
  double final_max_error = 0.0;
  int shards = 0;  ///< sharded pipeline shard count (0 = monolithic solve)
  int rounds = 0;  ///< sharded: correction rounds run (incl. the first pass)
};

/// Iterative self-consistent dose correction. The exposure at each shot's
/// centroid is driven to options.target by multiplicative Jacobi updates:
///   d_i <- d_i * (target / E_i)^damping
/// With options.shard_size > 0 the solve runs on the sharded pipeline
/// (src/pec/sharded.h): the pattern is tiled into square shards corrected
/// concurrently with frozen-dose halo ghosts and a few halo-exchange rounds.
PecResult correct_proximity(const ShotList& shots, const Psf& psf,
                            const PecOptions& options = {});

/// Geometry-density PEC: one blurred-coverage raster at the backscatter
/// range; each shot's dose is d(u) = (1 + 2 eta) / (1 + 2 eta u(centroid)),
/// where u is the blurred local density. @p eta is inferred from the PSF
/// (weight ratio of the longest-range term to the rest).
PecResult density_pec(const ShotList& shots, const Psf& psf,
                      const PecOptions& options = {});

/// Snaps doses to @p classes discrete values spanning [min_dose, max_dose]
/// of the observed range. Returns the number of distinct values used.
int quantize_doses(ShotList& shots, int classes);

}  // namespace ebl
