// Proximity-effect correction by dose modulation.
//
// Two correctors:
//  - correct_proximity: the self-consistent iterative scheme (per-shot dose,
//    Jacobi iteration on representative points). This is the accurate,
//    shape-based method.
//  - density_pec: the cheap geometry-density method: dose from the local
//    backscatter-blurred pattern density via the closed-form equalization
//    formula d(u) = (1 + 2 eta) / (1 + 2 eta u). One raster, no iteration.
//
// Both can quantize the continuous dose into a fixed number of machine dose
// classes.
#pragma once

#include <vector>

#include "fracture/shot.h"
#include "pec/exposure.h"
#include "pec/psf.h"

namespace ebl {

struct PecOptions {
  int max_iterations = 10;

  /// Stop when the max relative exposure error at representative points
  /// drops below this.
  double tolerance = 0.01;

  /// Target in-pattern exposure (relative to unit-dose infinite pattern).
  double target = 1.0;

  /// Jacobi damping factor (1 = undamped).
  double damping = 1.0;

  /// Dose clamp (machines have a finite dose range).
  double min_dose = 0.1;
  double max_dose = 8.0;

  /// If > 0, final doses snap to this many discrete classes spanning
  /// [min observed, max observed] (machine dose-class granularity).
  int dose_classes = 0;

  ExposureOptions exposure;
};

struct PecResult {
  ShotList shots;                        ///< same geometry, corrected doses
  std::vector<double> max_error_history; ///< max |E/target - 1| per iteration
  int iterations = 0;
  double final_max_error = 0.0;
};

/// Iterative self-consistent dose correction. The exposure at each shot's
/// centroid is driven to options.target by multiplicative Jacobi updates:
///   d_i <- d_i * (target / E_i)^damping
PecResult correct_proximity(const ShotList& shots, const Psf& psf,
                            const PecOptions& options = {});

/// Geometry-density PEC: one blurred-coverage raster at the backscatter
/// range; each shot's dose is d(u) = (1 + 2 eta) / (1 + 2 eta u(centroid)),
/// where u is the blurred local density. @p eta is inferred from the PSF
/// (weight ratio of the longest-range term to the rest).
PecResult density_pec(const ShotList& shots, const Psf& psf,
                      const PecOptions& options = {});

/// Snaps doses to @p classes discrete values spanning [min_dose, max_dose]
/// of the observed range. Returns the number of distinct values used.
int quantize_doses(ShotList& shots, int classes);

}  // namespace ebl
