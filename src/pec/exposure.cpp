#include "pec/exposure.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>

#include "util/contracts.h"
#include "util/parallel.h"
#include "util/vecmath.h"

namespace ebl {

namespace {

// Re-anchor cadence of the delta path: after this many consecutive delta
// refreshes the next update re-gathers in full, bounding the accumulated
// rounding drift (each delta scatter perturbs a pixel by ~1e-16 of its
// value, so even 64 updates stay orders of magnitude below 1e-12).
constexpr int kDeltaReanchor = 64;

// Epoch-stamped visited marks for duplicate rejection in neighbor queries
// (a shot's bbox spans several grid cells, so it appears in several bins).
// Thread-local so concurrent queries share nothing; bumping the epoch
// invalidates all marks in O(1), so steady-state queries never allocate.
struct VisitScratch {
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
};
thread_local VisitScratch t_visit;

// Prepares the thread-local visit marks for a fresh query over @p n shots
// and returns the epoch to stamp with — the one duplicate-rejection
// preamble every grid walk shares.
std::uint32_t begin_visit_epoch(std::size_t n) {
  VisitScratch& vs = t_visit;
  if (vs.stamp.size() < n) {
    vs.stamp.assign(n, 0);
    vs.epoch = 0;
  }
  if (++vs.epoch == 0) {  // epoch wrapped: all marks are stale anyway
    std::fill(vs.stamp.begin(), vs.stamp.end(), 0);
    vs.epoch = 1;
  }
  return vs.epoch;
}

// Scratch for the batched short-range path: erf arguments for one query are
// packed contiguously (4 per rectangle integral), evaluated in one
// erf_batch call, then combined in emission order. Thread-local so the
// parallel sweep shares nothing; batch composition depends only on the
// query, so results are bit-identical for any thread count.
struct ShortScratch {
  std::vector<double> args;
  std::vector<double> erfs;
  std::vector<double> wgt;
};
thread_local ShortScratch t_short;

// Emits the rectangle integrals of one (term, shape) pair as packed erf
// arguments plus a combined weight. Mirrors term_exposure_trapezoid exactly:
// rectangles are exact, slanted sides are sliced into strips no taller than
// sigma/2 with the same strip arithmetic, so the batched sum equals the
// scalar path up to the erf implementation and summation grouping.
void emit_term_rects(const PsfTerm& term, const Trapezoid& t, double px, double py,
                     double scale, std::vector<double>& args,
                     std::vector<double>& wgt) {
  const double inv_s = 1.0 / term.sigma;
  const double w = scale * term.weight * 0.25;
  if (t.is_rect()) {
    args.push_back((t.xl0 - px) * inv_s);
    args.push_back((t.xr0 - px) * inv_s);
    args.push_back((t.y0 - py) * inv_s);
    args.push_back((t.y1 - py) * inv_s);
    wgt.push_back(w);
    return;
  }
  const double height = static_cast<double>(t.y1) - t.y0;
  const double max_slice = std::max(term.sigma * 0.5, 1.0);
  const int slices = std::max(1, static_cast<int>(std::ceil(height / max_slice)));
  const double inv_h = 1.0 / height;
  for (int i = 0; i < slices; ++i) {
    const double ya = t.y0 + height * i / slices;
    const double yb = t.y0 + height * (i + 1) / slices;
    const double ym = 0.5 * (ya + yb);
    const double fl = (ym - t.y0) * inv_h;
    const double xl = t.xl0 + (t.xl1 - t.xl0) * fl;
    const double xr = t.xr0 + (t.xr1 - t.xr0) * fl;
    if (xr <= xl) continue;
    args.push_back((xl - px) * inv_s);
    args.push_back((xr - px) * inv_s);
    args.push_back((ya - py) * inv_s);
    args.push_back((yb - py) * inv_s);
    wgt.push_back(w);
  }
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

// Flop models for the backend choice. The direct separable blur's contiguous
// mul-adds vectorize a little better than the strided FFT passes, so FFT
// must be modestly cheaper in flops before it wins on the clock; the factor
// below absorbs that measured steady-state throughput gap (calibrated on
// 2k..8k-pixel maps with 16..100-pixel kernel radii, where it reproduces the
// measured crossover on every probed case — e.g. flop ratio 1.27 ran at
// 0.96x, ratio 2.1 at 1.9x).
constexpr double kFftWinFactor = 1.4;

// Tile side of the windowed-blur touch mask (pixels). Small enough that a
// ring of boundary movers resolves into thin edge rectangles instead of one
// map-sized blob, large enough that the mask and the per-rectangle overhead
// stay negligible against the blur itself.
constexpr int kBlurTilePx = 32;

double direct_blur_flops(std::size_t npx, std::size_t radius) {
  // Two passes of a (2 radius + 1)-tap kernel.
  return static_cast<double>(npx) * (8.0 * static_cast<double>(radius) + 2.0);
}

// Raw-buffer core of separable_blur, so the windowed delta-blur can run the
// identical passes on an extracted sub-window (identical per-pixel tap order
// and edge-skip conditions are what make the windowed patch bit-exact).
void separable_blur_buf(double* src, int nx, int ny, const std::vector<double>& taps,
                        int threads) {
  const int radius = static_cast<int>(taps.size()) - 1;

  // Scratch for the intermediate image, reused across calls (the PEC loop
  // blurs the same-sized raster every iteration). Bound through a local
  // reference: the pass lambdas must all use the *caller's* instance, and a
  // thread_local name inside a lambda would resolve per executing thread.
  static thread_local std::vector<double> tmp_storage;
  std::vector<double>& tmp = tmp_storage;
  // Size-only resize: the horizontal pass overwrites every element before
  // anything reads it, so no zero-fill is needed.
  tmp.resize(static_cast<std::size_t>(nx) * ny);

  // Each pass parallelizes over output rows; a row is produced by one chunk
  // in a fixed sequential tap order, so the result is bit-identical for any
  // thread count. Out-of-range taps are skipped (no edge renormalization),
  // matching the documented truncated-kernel semantics.
  const double k0 = taps[0];

  // Horizontal pass: tmp row <- kernel * src row.
  parallel_for(
      static_cast<std::size_t>(ny),
      [&](std::size_t y0, std::size_t y1) {
        for (std::size_t y = y0; y < y1; ++y) {
          const double* in = &src[y * nx];
          double* out = &tmp[y * nx];
          for (int x = 0; x < nx; ++x) out[x] = k0 * in[x];
          for (int k = 1; k <= radius; ++k) {
            const double wk = taps[static_cast<std::size_t>(k)];
            for (int x = k; x < nx; ++x) out[x] += wk * in[x - k];
            const int lim = nx - k;
            for (int x = 0; x < lim; ++x) out[x] += wk * in[x + k];
          }
        }
      },
      threads);

  // Vertical pass: src row <- kernel * tmp column neighborhood, streamed row
  // by row so every inner loop walks contiguous memory.
  parallel_for(
      static_cast<std::size_t>(ny),
      [&](std::size_t y0, std::size_t y1) {
        for (std::size_t y = y0; y < y1; ++y) {
          const double* c = &tmp[y * nx];
          double* out = &src[y * nx];
          for (int x = 0; x < nx; ++x) out[x] = k0 * c[x];
          for (int k = 1; k <= radius; ++k) {
            const double wk = taps[static_cast<std::size_t>(k)];
            if (static_cast<std::int64_t>(y) - k >= 0) {
              const double* a = &tmp[(y - k) * nx];
              for (int x = 0; x < nx; ++x) out[x] += wk * a[x];
            }
            if (y + k < static_cast<std::size_t>(ny)) {
              const double* b = &tmp[(y + k) * nx];
              for (int x = 0; x < nx; ++x) out[x] += wk * b[x];
            }
          }
        }
      },
      threads);
}

}  // namespace

bool fft_blur_wins(int nx, int ny, const std::vector<std::size_t>& radii) {
  const std::size_t npx = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  double direct = 0.0;
  std::size_t rmax = 1;
  for (const std::size_t r : radii) {
    direct += direct_blur_flops(npx, r);
    rmax = std::max(rmax, r);
  }
  // One shared forward transform, one inverse plus spectral multiply per
  // kernel.
  const double fft =
      (1.0 + static_cast<double>(radii.size())) *
          FftConvolver::transform_cost(nx, ny, static_cast<int>(rmax)) +
      10.0 * static_cast<double>(npx) * static_cast<double>(radii.size());
  return direct > kFftWinFactor * fft;
}

std::vector<double> gaussian_kernel_taps(double sigma_px) {
  expects(sigma_px > 0, "gaussian_kernel_taps: sigma must be positive");
  const int radius = std::max(1, static_cast<int>(std::ceil(4.0 * sigma_px)));
  std::vector<double> taps(static_cast<std::size_t>(radius) + 1);
  double norm = 0.0;
  for (int i = 0; i <= radius; ++i) {
    // Gaussian with variance sigma^2/2 per axis: exp(-x^2/sigma^2) matches
    // the PSF convention exp(-r^2/sigma^2).
    taps[static_cast<std::size_t>(i)] = std::exp(-(double(i) * i) / (sigma_px * sigma_px));
    norm += (i == 0 ? 1.0 : 2.0) * taps[static_cast<std::size_t>(i)];
  }
  for (double& t : taps) t /= norm;
  return taps;
}

void separable_blur(Raster& raster, const std::vector<double>& taps, int threads) {
  expects(!taps.empty(), "separable_blur: empty kernel");
  separable_blur_buf(raster.data().data(), raster.width(), raster.height(), taps,
                     threads);
}

void gaussian_blur(Raster& raster, double sigma_dbu, int threads) {
  expects(sigma_dbu > 0, "gaussian_blur: sigma must be positive");
  separable_blur(raster, gaussian_kernel_taps(sigma_dbu / raster.pixel_size()),
                 threads);
}

void fft_gaussian_blur(Raster& raster, double sigma_dbu, int threads) {
  expects(sigma_dbu > 0, "fft_gaussian_blur: sigma must be positive");
  const std::vector<double> taps =
      gaussian_kernel_taps(sigma_dbu / raster.pixel_size());
  FftConvolver conv(raster.width(), raster.height(),
                    static_cast<int>(taps.size()) - 1, threads);
  conv.load(raster.data().data());
  conv.convolve(taps, raster.data().data());
}

void gaussian_blur(Raster& raster, double sigma_dbu, BlurBackend backend,
                   int threads) {
  expects(sigma_dbu > 0, "gaussian_blur: sigma must be positive");
  const std::vector<double> taps =
      gaussian_kernel_taps(sigma_dbu / raster.pixel_size());
  const bool fft =
      backend == BlurBackend::kFft ||
      (backend == BlurBackend::kAuto &&
       fft_blur_wins(raster.width(), raster.height(), {taps.size() - 1}));
  if (fft) {
    FftConvolver conv(raster.width(), raster.height(),
                      static_cast<int>(taps.size()) - 1, threads);
    conv.load(raster.data().data());
    conv.convolve(taps, raster.data().data());
  } else {
    separable_blur(raster, taps, threads);
  }
}

ExposureEvaluator::ExposureEvaluator(ShotList shots, const Psf& psf,
                                     ExposureOptions options)
    : ExposureEvaluator(std::move(shots), 0, psf, options) {}

ExposureEvaluator::ExposureEvaluator(ShotList shots, std::size_t active_count,
                                     const Psf& psf, ExposureOptions options)
    : shots_(std::move(shots)), opt_(options) {
  expects(!shots_.empty(), "ExposureEvaluator: empty shot list");
  expects(active_count <= shots_.size(),
          "ExposureEvaluator: active count exceeds shot count");
  active_ = active_count == 0 ? shots_.size() : active_count;
  for (const PsfTerm& t : psf.terms()) {
    (t.sigma >= opt_.long_range_threshold ? long_terms_ : short_terms_).push_back(t);
  }

  // All-long PSFs (pure raster evaluation) need no neighbor structure at
  // all: skip grid construction entirely.
  if (!short_terms_.empty()) build_grid();
  build_long_range();

  // Active-centroid cache: the sweep and the delta scatter both query these
  // points every iteration.
  cx_.resize(active_);
  cy_.resize(active_);
  parallel_for(
      active_,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const auto [x, y] = centroid(i);
          cx_[i] = x;
          cy_[i] = y;
        }
      },
      opt_.threads);
}

void ExposureEvaluator::build_grid() {
  double max_short = 0.0;
  for (const PsfTerm& t : short_terms_) max_short = std::max(max_short, t.sigma);
  cutoff_ = opt_.cutoff_sigmas * max_short;

  Box frame;
  double avg_w = 0.0, avg_h = 0.0;
  for (const Shot& s : shots_) {
    const Box bb = s.shape.bbox();
    frame += bb;
    avg_w += static_cast<double>(bb.width());
    avg_h += static_cast<double>(bb.height());
  }
  avg_w /= static_cast<double>(shots_.size());
  avg_h /= static_cast<double>(shots_.size());
  grid_origin_ = frame.lo;

  // Cell sized to the larger of the query reach and the typical shot, so a
  // shot lands in O(1) cells and a query scans O(1) cells; then coarsened
  // until the bin count is at most ~2 per shot (sparse giant extents).
  double cell = std::max({cutoff_, avg_w, avg_h, 64.0});
  const double max_extent =
      std::max<double>({static_cast<double>(frame.width()),
                        static_cast<double>(frame.height()), 1.0});
  for (;;) {
    const double bins = (static_cast<double>(frame.width()) / cell + 1) *
                        (static_cast<double>(frame.height()) / cell + 1);
    if (bins <= 2.0 * static_cast<double>(shots_.size()) + 64.0 || cell >= max_extent)
      break;
    cell *= 2.0;
  }
  cell_ = static_cast<Coord>(std::min(cell, 2.0e9));

  gx_ = static_cast<int>(frame.width() / cell_) + 1;
  gy_ = static_cast<int>(frame.height() / cell_) + 1;
  const std::size_t ncells = static_cast<std::size_t>(gx_) * gy_;

  // CSR build: count cell occupancies, prefix-sum, then fill. Shots are
  // visited in index order, so every bin lists its shots ascending — queries
  // therefore sum candidates in a fixed order for any thread count.
  grid_start_.assign(ncells + 1, 0);
  auto cell_range = [&](const Box& bb, int& x0, int& x1, int& y0, int& y1) {
    x0 = static_cast<int>((Coord64(bb.lo.x) - grid_origin_.x) / cell_);
    x1 = static_cast<int>((Coord64(bb.hi.x) - grid_origin_.x) / cell_);
    y0 = static_cast<int>((Coord64(bb.lo.y) - grid_origin_.y) / cell_);
    y1 = static_cast<int>((Coord64(bb.hi.y) - grid_origin_.y) / cell_);
  };
  for (const Shot& s : shots_) {
    int x0, x1, y0, y1;
    cell_range(s.shape.bbox(), x0, x1, y0, y1);
    for (int y = y0; y <= y1; ++y)
      for (int x = x0; x <= x1; ++x)
        ++grid_start_[static_cast<std::size_t>(y) * gx_ + x + 1];
  }
  for (std::size_t c = 1; c <= ncells; ++c) grid_start_[c] += grid_start_[c - 1];
  grid_items_.resize(grid_start_[ncells]);
  std::vector<std::uint32_t> cursor(grid_start_.begin(), grid_start_.end() - 1);
  for (std::uint32_t i = 0; i < shots_.size(); ++i) {
    int x0, x1, y0, y1;
    cell_range(shots_[i].shape.bbox(), x0, x1, y0, y1);
    for (int y = y0; y <= y1; ++y)
      for (int x = x0; x <= x1; ++x)
        grid_items_[cursor[static_cast<std::size_t>(y) * gx_ + x]++] = i;
  }
}

void ExposureEvaluator::build_long_range() {
  term_maps_.clear();
  long_base_.reset();
  ghost_base_.reset();
  convolver_.reset();
  term_kernel_ids_.clear();
  win_conv_.reset();
  win_ids_.clear();
  shot_start_.clear();
  shot_px_.clear();
  shot_frac_.clear();
  if (long_terms_.empty()) return;

  Box frame;
  for (const Shot& s : shots_) frame += s.shape.bbox();

  // One shared base raster: pixel resolves the finest long-range term, the
  // frame extends past the pattern by the widest term's kernel support.
  double sigma_min = long_terms_.front().sigma;
  double sigma_max = sigma_min;
  for (const PsfTerm& t : long_terms_) {
    sigma_min = std::min(sigma_min, t.sigma);
    sigma_max = std::max(sigma_max, t.sigma);
  }
  const Coord pixel =
      std::max<Coord>(1, static_cast<Coord>(sigma_min / opt_.pixels_per_sigma));
  // Margin per map_margin_sigmas, but never below 2 pixels: edge centroids
  // need one in-grid bilinear neighbor, and the blur needs no margin at all
  // (zero padding is exact when every source lies on the map).
  const Coord margin = std::max<Coord>(
      2 * pixel,
      static_cast<Coord>(std::ceil(opt_.map_margin_sigmas * sigma_max)));
  const Box padded = frame.bloated(margin);
  long_base_ = std::make_unique<Raster>(padded, pixel);

  std::vector<std::size_t> radii;
  max_radius_ = 0;
  for (const PsfTerm& term : long_terms_) {
    TermMap tm{term, gaussian_kernel_taps(term.sigma / static_cast<double>(pixel)),
               std::make_unique<Raster>(padded, pixel)};
    radii.push_back(tm.taps.size() - 1);
    max_radius_ = std::max(max_radius_, static_cast<int>(tm.taps.size()) - 1);
    term_maps_.push_back(std::move(tm));
  }
  use_fft_ = opt_.blur_backend == BlurBackend::kFft ||
             (opt_.blur_backend == BlurBackend::kAuto &&
              fft_blur_wins(long_base_->width(), long_base_->height(), radii));

  if (opt_.splat_cache) {
    // Clip every shot against the shared grid once, then transpose the
    // splats to a pixel-major CSR so re-accumulation is a flat weighted
    // gather. The clipping (exact convex clip + shoelace per footprint) is
    // the expensive part, so it runs on the thread pool: each chunk of shots
    // emits into its own buffers, and the chunks — contiguous, disjoint
    // index ranges — are concatenated in ascending-range order afterwards.
    // That reproduces the serial emission order exactly for any thread count
    // or chunk decomposition, so the cache (and everything derived from it)
    // stays bit-identical.
    const Raster& r = *long_base_;
    const int nx = r.width();
    const std::size_t npx = static_cast<std::size_t>(nx) * r.height();
    struct SplatChunk {
      std::size_t begin = 0;
      std::vector<std::uint32_t> px;
      std::vector<std::uint32_t> shot;
      std::vector<float> frac;
    };
    // Only active shots enter the cache: background doses are frozen, so
    // their contribution is rasterized once (rebuild_ghost_base below) and
    // cache memory plus the per-iteration gather stay O(active).
    std::vector<SplatChunk> chunks;
    std::mutex chunks_mutex;
    parallel_for(
        active_,
        [&](std::size_t b, std::size_t e) {
          SplatChunk c;
          c.begin = b;
          for (std::uint32_t i = static_cast<std::uint32_t>(b); i < e; ++i) {
            r.visit_coverage(shots_[i].shape, [&](int ix, int iy, double frac) {
              c.px.push_back(static_cast<std::uint32_t>(iy) * nx + ix);
              c.shot.push_back(i);
              c.frac.push_back(static_cast<float>(frac));
            });
          }
          std::lock_guard<std::mutex> lock(chunks_mutex);
          chunks.push_back(std::move(c));
        },
        opt_.threads);
    std::sort(chunks.begin(), chunks.end(),
              [](const SplatChunk& a, const SplatChunk& b) { return a.begin < b.begin; });
    // Transpose straight out of the chunk buffers — walking them in
    // ascending-range order IS the serial emission order, so no intermediate
    // concatenated copy is needed and peak memory matches the serial build.
    std::size_t total = 0;
    for (const SplatChunk& c : chunks) total += c.px.size();
    px_start_.assign(npx + 1, 0);
    for (const SplatChunk& c : chunks)
      for (const std::uint32_t p : c.px) ++px_start_[p + 1];
    for (std::size_t p = 1; p <= npx; ++p) px_start_[p] += px_start_[p - 1];
    px_shot_.resize(total);
    px_frac_.resize(total);
    std::vector<std::uint32_t> cursor(px_start_.begin(), px_start_.end() - 1);
    for (const SplatChunk& c : chunks) {
      for (std::size_t k = 0; k < c.px.size(); ++k) {
        const std::uint32_t slot = cursor[c.px[k]]++;
        px_shot_[slot] = c.shot[k];
        px_frac_[slot] = c.frac[k];
      }
    }
    // Shot-major view for the delta path: the chunk emission stream already
    // visits shots in ascending order with each shot's pixels contiguous, so
    // plain concatenation plus a per-shot offset table IS the shot-major
    // CSR, sharing the exact same fraction values as the pixel-major one.
    shot_start_.assign(active_ + 1, 0);
    for (const SplatChunk& c : chunks)
      for (const std::uint32_t s : c.shot) ++shot_start_[s + 1];
    for (std::size_t s = 1; s <= active_; ++s) shot_start_[s] += shot_start_[s - 1];
    shot_px_.reserve(total);
    shot_frac_.reserve(total);
    for (const SplatChunk& c : chunks) {
      shot_px_.insert(shot_px_.end(), c.px.begin(), c.px.end());
      shot_frac_.insert(shot_frac_.end(), c.frac.begin(), c.frac.end());
    }
    if (active_ < shots_.size()) rebuild_ghost_base();
  }
  accumulate_long_range();
}

void ExposureEvaluator::rebuild_ghost_base() {
  // Same frame and pixel as the base map (copy, then overwrite the data).
  if (!ghost_base_) ghost_base_ = std::make_unique<Raster>(*long_base_);
  std::vector<double>& bg = ghost_base_->data();
  std::fill(bg.begin(), bg.end(), 0.0);
  for (std::size_t i = active_; i < shots_.size(); ++i)
    ghost_base_->add_coverage(shots_[i].shape, shots_[i].dose);
}

void ExposureEvaluator::accumulate_long_range() {
  if (!long_base_) return;
  const auto t0 = std::chrono::steady_clock::now();

  // Doses copied to a dense array so the per-pixel gather walks 8-byte
  // strides instead of whole Shot records (the cache only references active
  // shots, the prefix of the list).
  std::vector<double> doses(active_);
  for (std::size_t i = 0; i < active_; ++i) doses[i] = shots_[i].dose;

  std::vector<double>& data = long_base_->data();
  if (opt_.splat_cache) {
    // Pixel-parallel: each pixel sums its cached splats in ascending cache
    // order, on top of the frozen background coverage — independent outputs,
    // so identical for any thread count.
    const double* bg = ghost_base_ ? ghost_base_->data().data() : nullptr;
    parallel_for(
        data.size(),
        [&](std::size_t p0, std::size_t p1) {
          for (std::size_t p = p0; p < p1; ++p) {
            double acc = bg ? bg[p] : 0.0;
            const std::uint32_t b = px_start_[p];
            const std::uint32_t e = px_start_[p + 1];
            for (std::uint32_t k = b; k < e; ++k) {
              acc += static_cast<double>(px_frac_[k]) * doses[px_shot_[k]];
            }
            data[p] = acc;
          }
        },
        opt_.threads);
  } else {
    std::fill(data.begin(), data.end(), 0.0);
    for (const Shot& s : shots_) long_base_->add_coverage(s.shape, s.dose);
  }
  perf_.accumulate_ms += ms_since(t0);
  // A full gather restores the base map to exactly what a fresh evaluator
  // would compute, and the full blur below re-derives every term map from
  // it — the evaluator is globally exact again, so the delta-scatter dirty
  // set restarts empty.
  clear_dirty();

  blur_long_range();
  ++perf_.refreshes;
}

void ExposureEvaluator::blur_long_range() {
  if (!long_base_) return;
  const auto t0 = std::chrono::steady_clock::now();
  if (use_fft_) {
    // One forward transform of the accumulated base map serves every term.
    // The term kernels are fixed for the evaluator's lifetime, so they
    // register with the plan once — their spectra are cached there — and one
    // batched call applies all of them to the single cached forward
    // transform (one load of each transformed column, one fused multiply and
    // inverse per term).
    if (!convolver_) {
      convolver_ = std::make_unique<FftConvolver>(
          long_base_->width(), long_base_->height(), max_radius_, opt_.threads);
      term_kernel_ids_.clear();
      for (const TermMap& tm : term_maps_)
        term_kernel_ids_.push_back(convolver_->add_kernel(tm.taps));
    }
    convolver_->load(long_base_->data().data());
    std::vector<double*> outs;
    outs.reserve(term_maps_.size());
    for (TermMap& tm : term_maps_) outs.push_back(tm.map->data().data());
    convolver_->convolve_registered(term_kernel_ids_, outs);
  } else {
    for (TermMap& tm : term_maps_) {
      tm.map->data() = long_base_->data();  // same size: no allocation
      separable_blur(*tm.map, tm.taps, opt_.threads);
    }
  }
  // A full blur freshens every term-map pixel, so pending windowed-blur
  // marks are moot.
  clear_blur_tiles();
  perf_.blur_ms += ms_since(t0);
}

bool ExposureEvaluator::blur_long_range_windowed(bool allow_fft) {
  if (!long_base_ || term_maps_.empty() || tiles_marked_ == 0) return false;
  const int nx = long_base_->width();
  const int ny = long_base_->height();
  const int r = max_radius_;
  const std::size_t npx = static_cast<std::size_t>(nx) * ny;
  const std::size_t nterm = term_maps_.size();

  // Merge the marked tiles into patch rectangles P: horizontal runs of
  // adjacent tiles per tile row, coalesced with the rectangle directly
  // above when the column span matches. The marks already carry the
  // kernel-support dilation (see mark_blur_tiles_region), so each
  // rectangle covers every output pixel its touched region can change —
  // padded out to tile granularity, which only over-patches (over-patched
  // pixels recompute to their existing full-blur values).
  struct Rect {
    int tx0, tx1, ty0, ty1;  // tile coords, inclusive
    bool use_fft;
  };
  std::vector<Rect> rects;
  std::vector<std::size_t> prev_open, open;
  for (int ty = 0; ty < tile_ny_; ++ty) {
    open.clear();
    const std::uint8_t* row =
        blur_tiles_.data() + static_cast<std::size_t>(ty) * tile_nx_;
    for (int tx = 0; tx < tile_nx_;) {
      if (!row[tx]) {
        ++tx;
        continue;
      }
      int te = tx;
      while (te + 1 < tile_nx_ && row[te + 1]) ++te;
      std::size_t merged = rects.size();
      for (const std::size_t idx : prev_open) {
        if (rects[idx].tx0 == tx && rects[idx].tx1 == te) {
          merged = idx;
          break;
        }
      }
      if (merged < rects.size()) {
        rects[merged].ty1 = ty;
      } else {
        rects.push_back({tx, te, ty, ty, false});
      }
      open.push_back(merged);
      tx = te + 1;
    }
    std::swap(prev_open, open);
  }

  // Flop-model crossover in the units of fft_blur_wins (direct-pass flops;
  // kFftWinFactor folds the measured direct-vs-FFT throughput gap). Each
  // window W = dilate(P, r) pays extract + patch traffic on top; the
  // decision is global — either every rectangle patches, or the caller
  // runs one full blur.
  const auto rect_window = [&](const Rect& rc, int& wx0, int& wy0, int& wx,
                               int& wy) {
    const int px0 = rc.tx0 * kBlurTilePx;
    const int py0 = rc.ty0 * kBlurTilePx;
    const int px1 = std::min(nx - 1, (rc.tx1 + 1) * kBlurTilePx - 1);
    const int py1 = std::min(ny - 1, (rc.ty1 + 1) * kBlurTilePx - 1);
    wx0 = std::max(0, px0 - r);
    wy0 = std::max(0, py0 - r);
    wx = std::min(nx - 1, px1 + r) - wx0 + 1;
    wy = std::min(ny - 1, py1 + r) - wy0 + 1;
  };
  double full_direct = 0.0;
  for (const TermMap& tm : term_maps_)
    full_direct += direct_blur_flops(npx, tm.taps.size() - 1);
  const double nt = static_cast<double>(nterm);
  const double full_fft =
      kFftWinFactor * ((1.0 + nt) * FftConvolver::transform_cost(nx, ny, r) +
                       10.0 * static_cast<double>(npx) * nt);
  const double full_time = use_fft_ ? full_fft : full_direct;
  double win_time = 0.0;
  for (Rect& rc : rects) {
    int wx0, wy0, wx, wy;
    rect_window(rc, wx0, wy0, wx, wy);
    const std::size_t wpx = static_cast<std::size_t>(wx) * wy;
    double win_direct = 0.0;
    for (const TermMap& tm : term_maps_)
      win_direct += direct_blur_flops(wpx, tm.taps.size() - 1);
    const double win_fft =
        kFftWinFactor * ((1.0 + nt) * FftConvolver::transform_cost(wx, wy, r) +
                         10.0 * static_cast<double>(wpx) * nt);
    rc.use_fft = allow_fft && win_fft < win_direct;
    win_time +=
        (rc.use_fft ? win_fft : win_direct) + 6.0 * static_cast<double>(wpx);
    if (win_time >= full_time) return false;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const double* base = long_base_->data().data();
  for (const Rect& rc : rects) {
    const int px0 = rc.tx0 * kBlurTilePx;
    const int py0 = rc.ty0 * kBlurTilePx;
    const int px1 = std::min(nx - 1, (rc.tx1 + 1) * kBlurTilePx - 1);
    const int py1 = std::min(ny - 1, (rc.ty1 + 1) * kBlurTilePx - 1);
    int wx0, wy0, wx, wy;
    rect_window(rc, wx0, wy0, wx, wy);
    const std::size_t wpx = static_cast<std::size_t>(wx) * wy;
    // Extract W from the base map. W edges clip only where the map edge
    // does, so the separable passes' edge-skip conditions coincide with
    // the full-map blur's and the patched values come out bit-identical.
    win_src_.resize(wpx);
    for (int y = 0; y < wy; ++y) {
      std::copy_n(base + static_cast<std::size_t>(wy0 + y) * nx + wx0, wx,
                  win_src_.data() + static_cast<std::size_t>(y) * wx);
    }
    win_out_.resize(nterm);
    if (rc.use_fft) {
      // Snug sub-plan over W with the term kernels registered; rebuilt only
      // when the window size changes (steady delta trajectories reuse it).
      if (!win_conv_ || win_conv_->nx() != wx || win_conv_->ny() != wy) {
        win_conv_ = std::make_unique<FftConvolver>(wx, wy, r, opt_.threads);
        win_ids_.clear();
        for (const TermMap& tm : term_maps_)
          win_ids_.push_back(win_conv_->add_kernel(tm.taps));
      }
      win_conv_->load(win_src_.data());
      std::vector<double*> outs;
      outs.reserve(nterm);
      for (std::size_t t = 0; t < nterm; ++t) {
        win_out_[t].resize(wpx);
        outs.push_back(win_out_[t].data());
      }
      win_conv_->convolve_registered(win_ids_, outs);
    } else {
      for (std::size_t t = 0; t < nterm; ++t) {
        win_out_[t] = win_src_;
        separable_blur_buf(win_out_[t].data(), wx, wy, term_maps_[t].taps,
                           opt_.threads);
      }
    }
    // Patch P into each term map in place (rectangles are disjoint by
    // construction: each marked tile lands in exactly one run).
    const int cw = px1 - px0 + 1;
    for (std::size_t t = 0; t < nterm; ++t) {
      double* dst = term_maps_[t].map->data().data();
      const double* src = win_out_[t].data();
      for (int y = py0; y <= py1; ++y) {
        std::copy_n(src + static_cast<std::size_t>(y - wy0) * wx + (px0 - wx0),
                    cw, dst + static_cast<std::size_t>(y) * nx + px0);
      }
    }
  }
  clear_blur_tiles();
  const double dt = ms_since(t0);
  perf_.blur_ms += dt;
  perf_.windowed_blur_ms += dt;
  ++perf_.windowed_blurs;
  return true;
}

void ExposureEvaluator::mark_blur_tiles_region(int ax, int ay, int bx, int by) {
  const int nx = long_base_->width();
  const int ny = long_base_->height();
  const int tnx = (nx + kBlurTilePx - 1) / kBlurTilePx;
  const int tny = (ny + kBlurTilePx - 1) / kBlurTilePx;
  if (tile_nx_ != tnx || tile_ny_ != tny) {
    tile_nx_ = tnx;
    tile_ny_ = tny;
    blur_tiles_.assign(static_cast<std::size_t>(tnx) * tny, 0);
    tiles_marked_ = 0;
  }
  const int r = max_radius_;
  const int tx0 = std::max(0, ax - r) / kBlurTilePx;
  const int ty0 = std::max(0, ay - r) / kBlurTilePx;
  const int tx1 = std::min(nx - 1, bx + r) / kBlurTilePx;
  const int ty1 = std::min(ny - 1, by + r) / kBlurTilePx;
  for (int ty = ty0; ty <= ty1; ++ty) {
    std::uint8_t* row =
        blur_tiles_.data() + static_cast<std::size_t>(ty) * tile_nx_;
    for (int tx = tx0; tx <= tx1; ++tx) {
      if (!row[tx]) {
        row[tx] = 1;
        ++tiles_marked_;
      }
    }
  }
}

void ExposureEvaluator::mark_blur_tiles(const Box& bb) {
  const auto [ax, ay] = long_base_->index_of(bb.lo);
  const auto [bx, by] = long_base_->index_of(bb.hi);
  mark_blur_tiles_region(ax, ay, bx, by);
}

void ExposureEvaluator::clear_blur_tiles() {
  if (tiles_marked_ == 0) return;
  std::fill(blur_tiles_.begin(), blur_tiles_.end(), 0);
  tiles_marked_ = 0;
}

void ExposureEvaluator::mark_dirty(std::uint32_t p) {
  if (dirty_overflow_) return;
  if (dirty_mask_.empty()) dirty_mask_.assign(long_base_->data().size(), 0);
  if (dirty_mask_[p]) return;
  dirty_mask_[p] = 1;
  dirty_px_.push_back(p);
  // Past half the map the exact background refresh cannot beat the full
  // rebuild anyway; stop recording and let it take the full path.
  if (dirty_px_.size() * 2 > dirty_mask_.size()) dirty_overflow_ = true;
}

void ExposureEvaluator::clear_dirty() {
  if (dirty_overflow_) {
    std::fill(dirty_mask_.begin(), dirty_mask_.end(), 0);
  } else {
    for (const std::uint32_t p : dirty_px_) dirty_mask_[p] = 0;
  }
  dirty_px_.clear();
  dirty_overflow_ = false;
}

bool ExposureEvaluator::delta_capable() const {
  // Short-only PSFs delta-update through the centroid cache alone; with
  // long-range terms the shot-major splat view must exist (splat cache on).
  if (long_terms_.empty()) return true;
  return opt_.splat_cache && !shot_start_.empty();
}

void ExposureEvaluator::apply_full(const double* doses, std::size_t begin,
                                   std::size_t end) {
  // The oracle path: apply every requested dose (deferred remainders
  // included) and re-derive all cached state from scratch — bit-identical to
  // a fresh evaluator at these doses, and to the pre-delta engine.
  for (std::size_t i = begin; i < end; ++i) shots_[i].dose = doses[i - begin];
  if (ghost_base_ && end > active_) rebuild_ghost_base();
  accumulate_long_range();
  short_cache_valid_ = false;
  delta_streak_ = 0;
}

void ExposureEvaluator::apply_delta(const double* doses, std::size_t begin,
                                    std::size_t end) {
  (void)end;
  const auto t0 = std::chrono::steady_clock::now();
  const bool have_maps = long_base_ != nullptr;
  double* base = have_maps ? long_base_->data().data() : nullptr;
  double* bg = ghost_base_ ? ghost_base_->data().data() : nullptr;
  const bool shorts = short_cache_valid_ && !short_terms_.empty();
  // Dirty-pixel tracking (split evaluators only): every base pixel a scatter
  // perturbs is recorded so the next exact background refresh can restore
  // global bitwise freshness by recomputing just those pixels.
  const bool track = have_maps && ghost_base_ != nullptr;
  for (const std::uint32_t j : moved_scratch_) {
    const double d_new = doses[j - begin];
    const double delta = d_new - shots_[j].dose;
    shots_[j].dose = d_new;
    if (have_maps) {
      if (j < active_) {
        // Cached splats re-weighted by the dose delta, straight into the
        // shared base map.
        for (std::uint32_t k = shot_start_[j]; k < shot_start_[j + 1]; ++k) {
          base[shot_px_[k]] += delta * static_cast<double>(shot_frac_[k]);
          if (track) mark_dirty(shot_px_[k]);
        }
      } else {
        // Moved ghost: its coverage is not cached (background memory stays
        // O(active)), so delta-rasterize it into both the frozen ghost map
        // and the base map.
        long_base_->visit_coverage(shots_[j].shape, [&](int ix, int iy, double frac) {
          const std::uint32_t p =
              static_cast<std::uint32_t>(iy) * long_base_->width() + ix;
          bg[p] += delta * frac;
          base[p] += delta * frac;
          if (track) mark_dirty(p);
        });
      }
      // The shape bbox covers the splat footprint by construction; its
      // tiles feed the windowed blur below.
      mark_blur_tiles(shots_[j].shape.bbox());
    }
    if (shorts) scatter_short_delta(j, delta);
  }
  perf_.delta_accumulate_ms += ms_since(t0);
  perf_.shots_updated += static_cast<long long>(moved_scratch_.size());
  ++perf_.delta_refreshes;
  ++delta_streak_;
  // Windowed delta-blur: when the touched tiles (plus kernel support) merge
  // into rectangles small against the map, re-derive the term maps only
  // there and patch in place; the flop model falls back to the full blur
  // otherwise. The FFT sub-plans agree with the full blur to rounding,
  // which the delta path's <= 1e-12 contract (re-anchored every
  // kDeltaReanchor refreshes) absorbs.
  if (have_maps && !blur_long_range_windowed(/*allow_fft=*/true)) {
    blur_long_range();
  }
}

void ExposureEvaluator::update_doses(const double* doses, std::size_t begin,
                                     std::size_t end, bool include_background) {
  (void)include_background;
  if (opt_.delta_threshold <= 0 || !delta_capable()) {
    apply_full(doses, begin, end);
    return;
  }
  // Moved set: shots whose requested dose drifted beyond the threshold from
  // the applied one. Sub-threshold requests are deferred (the applied dose
  // keeps its value), so a slowly creeping dose is applied once its
  // accumulated drift crosses the threshold — the evaluator never deviates
  // from the requests by more than delta_threshold relative.
  moved_scratch_.clear();
  const double theta = opt_.delta_threshold;
  for (std::size_t i = begin; i < end; ++i) {
    const double d_new = doses[i - begin];
    const double d_old = shots_[i].dose;
    if (d_new == d_old) continue;
    if (std::abs(d_new - d_old) > theta * std::max(std::abs(d_old), 1e-12))
      moved_scratch_.push_back(static_cast<std::uint32_t>(i));
  }
  if (moved_scratch_.empty()) {
    // Nothing moved beyond the threshold: maps and caches are already
    // current to within the documented bound — not even the blur reruns.
    ++perf_.skipped_refreshes;
    return;
  }
  // The delta path wins while the movers are a minority; past half the range
  // (or the re-anchor cadence) the full gather is both cheaper and exact.
  const bool engage = moved_scratch_.size() * 2 <= (end - begin) &&
                      delta_streak_ < kDeltaReanchor;
  if (engage) {
    apply_delta(doses, begin, end);
  } else {
    apply_full(doses, begin, end);
  }
}

void ExposureEvaluator::set_doses(const std::vector<double>& doses) {
  expects(doses.size() == shots_.size(), "set_doses: size mismatch");
  update_doses(doses.data(), 0, shots_.size(), active_ < shots_.size());
}

void ExposureEvaluator::set_active_doses(const std::vector<double>& doses) {
  expects(doses.size() == active_, "set_active_doses: size mismatch");
  update_doses(doses.data(), 0, active_, false);
}

void ExposureEvaluator::reset_doses(const std::vector<double>& doses) {
  expects(doses.size() == shots_.size(), "reset_doses: size mismatch");
  // Exact by design, like set_background_doses: after this call the
  // evaluator is bit-identical to one freshly constructed at these doses.
  // The delta route applies every changed dose verbatim (exact inequality,
  // no threshold deferral — reset semantics) and restores exactness by
  // recomputing just the moved footprints plus the delta-scatter dirty set.
  // This is the resident shard's re-entry after an optimistic exit: near
  // convergence only a minority of doses survived the last unverified
  // update, so the full rebuild would mostly recompute unchanged pixels.
  const bool deltaable = opt_.delta_threshold > 0 && delta_capable() &&
                         long_base_ != nullptr && ghost_base_ != nullptr &&
                         !dirty_overflow_;
  if (!deltaable) {
    apply_full(doses.data(), 0, shots_.size());
    return;
  }
  moved_scratch_.clear();  // ghost-relative indices
  std::vector<std::uint32_t> moved_active;
  for (std::size_t i = 0; i < active_; ++i) {
    if (doses[i] != shots_[i].dose)
      moved_active.push_back(static_cast<std::uint32_t>(i));
  }
  for (std::size_t k = active_; k < shots_.size(); ++k) {
    if (doses[k] != shots_[k].dose)
      moved_scratch_.push_back(static_cast<std::uint32_t>(k - active_));
  }
  if (moved_active.empty() && moved_scratch_.empty() && dirty_px_.empty()) {
    short_cache_valid_ = false;
    delta_streak_ = 0;
    ++perf_.skipped_refreshes;
    return;
  }
  for (const std::uint32_t i : moved_active) shots_[i].dose = doses[i];
  for (const std::uint32_t k : moved_scratch_)
    shots_[active_ + k].dose = doses[active_ + k];
  exact_delta_refresh(moved_active, moved_scratch_);
}

void ExposureEvaluator::set_background_doses(const std::vector<double>& doses) {
  expects(doses.size() == shots_.size() - active_,
          "set_background_doses: size mismatch");
  if (doses.empty()) return;
  // Exact by design (see the header): after this call the evaluator is
  // bit-identical to one freshly constructed at the same doses. The delta
  // route below gets there without the full rebuild: the only pixels whose
  // state can deviate from a fresh construction are those delta scatters
  // have touched since the last full gather (tracked in dirty_px_) plus the
  // changed ghosts' footprints, and recomputing exactly those with the
  // full-gather arithmetic (same ascending-order sums) restores global
  // exactness at O(touched) cost. Deviations are *exact* inequality, not
  // delta_threshold — deferring a changed ghost would break the bitwise
  // equivalence the sharded corrector builds on.
  const bool deltaable = opt_.delta_threshold > 0 && delta_capable() &&
                         long_base_ != nullptr && ghost_base_ != nullptr &&
                         !dirty_overflow_;
  if (!deltaable) {
    for (std::size_t i = 0; i < doses.size(); ++i)
      shots_[active_ + i].dose = doses[i];
    if (ghost_base_) rebuild_ghost_base();
    accumulate_long_range();
    short_cache_valid_ = false;
    delta_streak_ = 0;
    return;
  }
  moved_scratch_.clear();
  for (std::size_t k = 0; k < doses.size(); ++k) {
    if (doses[k] != shots_[active_ + k].dose)
      moved_scratch_.push_back(static_cast<std::uint32_t>(k));
  }
  if (moved_scratch_.empty() && dirty_px_.empty()) {
    // Nothing changed since the last globally exact state. Only the
    // incrementally patched short-range cache could deviate from a fresh
    // recomputation, so drop just that and skip accumulate + blur entirely.
    short_cache_valid_ = false;
    delta_streak_ = 0;
    ++perf_.skipped_refreshes;
    return;
  }
  for (const std::uint32_t k : moved_scratch_)
    shots_[active_ + k].dose = doses[k];
  exact_delta_refresh({}, moved_scratch_);
}

void ExposureEvaluator::exact_delta_refresh(
    const std::vector<std::uint32_t>& moved_active,
    const std::vector<std::uint32_t>& moved_ghost) {
  const auto t0 = std::chrono::steady_clock::now();
  const int nx = long_base_->width();
  const std::size_t npx = long_base_->data().size();
  // Cheap touched-size bound before any footprint walk: active footprints
  // are known from the splat CSR, moved-ghost footprints bounded by their
  // clipped bbox pixel areas. Past half the map the dirty recompute cannot
  // beat the full rebuild — bail without marking a single pixel (the round
  // after a warm-start correction moves nearly every halo ghost, and the
  // wasted walk used to cost real, uncounted time there).
  std::size_t touched_bound = dirty_px_.size();
  for (const std::uint32_t i : moved_active)
    touched_bound += shot_start_[i + 1] - shot_start_[i];
  for (const std::uint32_t k : moved_ghost) {
    const Box bb = shots_[active_ + k].shape.bbox();
    const auto [ax, ay] = long_base_->index_of(bb.lo);
    const auto [bx, by] = long_base_->index_of(bb.hi);
    touched_bound += static_cast<std::size_t>(bx - ax + 1) * (by - ay + 1);
  }
  bool full = touched_bound * 2 > npx;
  if (!full) {
    // Mark the moved shots' footprints dirty (their coverage contribution
    // moved) on top of whatever earlier delta scatters already recorded.
    for (const std::uint32_t i : moved_active) {
      if (dirty_overflow_) break;
      for (std::uint32_t k = shot_start_[i]; k < shot_start_[i + 1]; ++k)
        mark_dirty(shot_px_[k]);
    }
    for (const std::uint32_t k : moved_ghost) {
      if (dirty_overflow_) break;
      long_base_->visit_coverage(
          shots_[active_ + k].shape, [&](int ix, int iy, double) {
            mark_dirty(static_cast<std::uint32_t>(iy) * nx + ix);
          });
    }
    full = dirty_overflow_;
  }
  // Changed-ghost coverage: re-raster the frozen map from scratch — the
  // identical serial accumulation a fresh construction runs, so it is
  // bitwise fresh, and the full path below needs it just the same. Moved
  // actives never touch the frozen ghost map.
  if (!moved_ghost.empty()) rebuild_ghost_base();
  if (full) {
    // The touched set is (or grew) past half the map: finish through the
    // full rebuild (doses are already applied; accumulate clears the dirty
    // set).
    accumulate_long_range();
    short_cache_valid_ = false;
    delta_streak_ = 0;
    return;
  }
  const double* bg = ghost_base_->data().data();
  // Base recompute on every dirty pixel with the exact gather arithmetic
  // (independent outputs: deterministic for any thread count).
  std::vector<double> adose(active_);
  for (std::size_t i = 0; i < active_; ++i) adose[i] = shots_[i].dose;
  double* base = long_base_->data().data();
  parallel_for(
      dirty_px_.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const std::uint32_t p = dirty_px_[i];
          double acc = bg[p];
          for (std::uint32_t k = px_start_[p]; k < px_start_[p + 1]; ++k)
            acc += static_cast<double>(px_frac_[k]) * adose[px_shot_[k]];
          base[p] = acc;
        }
      },
      opt_.threads);
  perf_.delta_accumulate_ms += ms_since(t0);
  perf_.shots_updated +=
      static_cast<long long>(moved_active.size() + moved_ghost.size());
  ++perf_.delta_refreshes;
  // Blur. Under FFT the full-map blur of the now bitwise-fresh base is
  // itself bitwise what a fresh evaluator computes. Under direct, a
  // windowed blur over the dirty tiles is bit-exact (see
  // blur_long_range_windowed; allow_fft=false keeps it that way) — pixels
  // outside them already hold full-blur values because their entire kernel
  // support is clean. The base changed at exactly the dirty pixels (the
  // recompute may shift low bits even where a prior windowed patch ran),
  // so the tiles to patch derive from the dirty set, not just this call's
  // movers.
  if (use_fft_) {
    blur_long_range();
  } else {
    const int nx = long_base_->width();
    for (const std::uint32_t p : dirty_px_) {
      const int x = static_cast<int>(p) % nx;
      const int y = static_cast<int>(p) / nx;
      mark_blur_tiles_region(x, y, x, y);
    }
    if (!blur_long_range_windowed(/*allow_fft=*/false)) blur_long_range();
  }
  clear_dirty();
  short_cache_valid_ = false;
  delta_streak_ = 0;
}

void ExposureEvaluator::set_blur_backend(BlurBackend backend) {
  opt_.blur_backend = backend;
  if (long_terms_.empty()) return;
  std::vector<std::size_t> radii;
  for (const TermMap& tm : term_maps_) radii.push_back(tm.taps.size() - 1);
  const bool fft = backend == BlurBackend::kFft ||
                   (backend == BlurBackend::kAuto &&
                    fft_blur_wins(long_base_->width(), long_base_->height(), radii));
  if (fft == use_fft_) return;
  use_fft_ = fft;
  blur_long_range();
}

BlurBackend ExposureEvaluator::blur_backend() const {
  if (long_terms_.empty()) return BlurBackend::kDirect;
  return use_fft_ ? BlurBackend::kFft : BlurBackend::kDirect;
}

std::pair<double, double> ExposureEvaluator::centroid(std::size_t i) const {
  expects(i < shots_.size(), "centroid: index out of range");
  const Trapezoid& t = shots_[i].shape;
  // Trapezoid centroid: weighted average of the two horizontal sides.
  const double w0 = static_cast<double>(t.xr0) - t.xl0;
  const double w1 = static_cast<double>(t.xr1) - t.xl1;
  const double m0 = 0.5 * (static_cast<double>(t.xr0) + t.xl0);
  const double m1 = 0.5 * (static_cast<double>(t.xr1) + t.xl1);
  const double denom = w0 + w1;
  if (denom <= 0) return {m0, 0.5 * (double(t.y0) + t.y1)};
  const double cx = (m0 * (2 * w0 + w1) + m1 * (w0 + 2 * w1)) / (3.0 * denom);
  const double cy =
      t.y0 + (static_cast<double>(t.y1) - t.y0) * (w0 + 2 * w1) / (3.0 * denom);
  return {cx, cy};
}

template <typename Fn>
void ExposureEvaluator::visit_short_neighbors(double px, double py, Fn&& fn) const {
  const std::uint32_t epoch = begin_visit_epoch(shots_.size());
  VisitScratch& vs = t_visit;
  const int cx = static_cast<int>(std::floor((px - grid_origin_.x) / cell_));
  const int cy = static_cast<int>(std::floor((py - grid_origin_.y) / cell_));
  const int reach = static_cast<int>(std::ceil(cutoff_ / cell_)) + 1;
  const double cut2 = cutoff_ * cutoff_;
  for (int y = std::max(0, cy - reach); y <= std::min(gy_ - 1, cy + reach); ++y) {
    for (int x = std::max(0, cx - reach); x <= std::min(gx_ - 1, cx + reach); ++x) {
      const std::size_t c = static_cast<std::size_t>(y) * gx_ + x;
      for (std::uint32_t k = grid_start_[c]; k < grid_start_[c + 1]; ++k) {
        const std::uint32_t idx = grid_items_[k];
        if (vs.stamp[idx] == epoch) continue;  // already seen via another cell
        vs.stamp[idx] = epoch;
        const Box bb = shots_[idx].shape.bbox();
        // Cheap reject by bbox distance vs cutoff.
        const double dx = std::max({double(bb.lo.x) - px, px - double(bb.hi.x), 0.0});
        const double dy = std::max({double(bb.lo.y) - py, py - double(bb.hi.y), 0.0});
        if (dx * dx + dy * dy > cut2) continue;
        fn(idx);
      }
    }
  }
}

double ExposureEvaluator::exposure_at(double px, double py) const {
  double e = 0.0;

  if (!short_terms_.empty()) {
    visit_short_neighbors(px, py, [&](std::uint32_t idx) {
      const Shot& s = shots_[idx];
      for (const PsfTerm& term : short_terms_) {
        e += s.dose * term_exposure_trapezoid(term, s.shape, px, py);
      }
    });
  }

  for (const TermMap& tm : term_maps_) {
    // Raster value is mean dose-weighted coverage per pixel; after the
    // normalized blur it is the long-range exposure directly (term weight
    // folded here).
    e += tm.term.weight * tm.map->sample(px, py);
  }
  return e;
}

void ExposureEvaluator::eval_erf(const double* x, double* y, std::size_t n) const {
  if (opt_.fast_erf) {
    erf_batch(x, y, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) y[i] = std::erf(x[i]);
  }
}

double ExposureEvaluator::short_exposure_batched(double px, double py) const {
  // The exposure_at neighbor walk, but the erf evaluations of the whole
  // query are packed into one batch. Shots are accepted in cell-scan order
  // and combined in emission order, so the sum is a deterministic function
  // of the query alone.
  ShortScratch& sc = t_short;
  sc.args.clear();
  sc.wgt.clear();

  visit_short_neighbors(px, py, [&](std::uint32_t idx) {
    const Shot& s = shots_[idx];
    for (const PsfTerm& term : short_terms_) {
      emit_term_rects(term, s.shape, px, py, s.dose, sc.args, sc.wgt);
    }
  });

  sc.erfs.resize(sc.args.size());
  eval_erf(sc.args.data(), sc.erfs.data(), sc.args.size());
  double e = 0.0;
  for (std::size_t r = 0; r < sc.wgt.size(); ++r) {
    e += sc.wgt[r] * (sc.erfs[4 * r + 1] - sc.erfs[4 * r]) *
         (sc.erfs[4 * r + 3] - sc.erfs[4 * r + 2]);
  }
  return e;
}

double ExposureEvaluator::short_kernel_batched(const Trapezoid& shape, double px,
                                               double py) const {
  // Unit-dose short-range kernel of one shape at one point — the delta
  // increment the scatter multiplies by the dose change. Shares the batched
  // rectangle pipeline with the sweep.
  ShortScratch& sc = t_short;
  sc.args.clear();
  sc.wgt.clear();
  for (const PsfTerm& term : short_terms_) {
    emit_term_rects(term, shape, px, py, 1.0, sc.args, sc.wgt);
  }
  sc.erfs.resize(sc.args.size());
  eval_erf(sc.args.data(), sc.erfs.data(), sc.args.size());
  double e = 0.0;
  for (std::size_t r = 0; r < sc.wgt.size(); ++r) {
    e += sc.wgt[r] * (sc.erfs[4 * r + 1] - sc.erfs[4 * r]) *
         (sc.erfs[4 * r + 3] - sc.erfs[4 * r + 2]);
  }
  return e;
}

void ExposureEvaluator::scatter_short_delta(std::uint32_t shot, double delta) {
  // Update the cached short-range sums of every active centroid within the
  // cutoff of the moved shot. The inclusion test (centroid-to-bbox distance
  // against the cutoff) is exactly the sweep's, so the cache stays a
  // faithful incremental image of the full recomputation.
  const Box bb = shots_[shot].shape.bbox();
  const std::uint32_t epoch = begin_visit_epoch(shots_.size());
  VisitScratch& vs = t_visit;
  const double cut2 = cutoff_ * cutoff_;
  const int x0 = std::max(
      0, static_cast<int>(std::floor((bb.lo.x - cutoff_ - grid_origin_.x) / cell_)));
  const int x1 = std::min(
      gx_ - 1,
      static_cast<int>(std::floor((bb.hi.x + cutoff_ - grid_origin_.x) / cell_)));
  const int y0 = std::max(
      0, static_cast<int>(std::floor((bb.lo.y - cutoff_ - grid_origin_.y) / cell_)));
  const int y1 = std::min(
      gy_ - 1,
      static_cast<int>(std::floor((bb.hi.y + cutoff_ - grid_origin_.y) / cell_)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const std::size_t c = static_cast<std::size_t>(y) * gx_ + x;
      for (std::uint32_t k = grid_start_[c]; k < grid_start_[c + 1]; ++k) {
        const std::uint32_t idx = grid_items_[k];
        if (vs.stamp[idx] == epoch) continue;
        vs.stamp[idx] = epoch;
        if (idx >= active_) continue;  // only active centroids are cached
        const double px = cx_[idx];
        const double py = cy_[idx];
        const double dx = std::max({double(bb.lo.x) - px, px - double(bb.hi.x), 0.0});
        const double dy = std::max({double(bb.lo.y) - py, py - double(bb.hi.y), 0.0});
        if (dx * dx + dy * dy > cut2) continue;
        short_cache_[idx] += delta * short_kernel_batched(shots_[shot].shape, px, py);
      }
    }
  }
}

void ExposureEvaluator::refresh_short_cache() const {
  short_cache_.resize(active_);
  parallel_for(
      active_,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          short_cache_[i] = short_exposure_batched(cx_[i], cy_[i]);
      },
      opt_.threads);
  short_cache_valid_ = true;
}

std::vector<double> ExposureEvaluator::exposures_at_centroids() const {
  std::vector<double> out(active_);
  const bool shorts = !short_terms_.empty();
  if (shorts && !short_cache_valid_) refresh_short_cache();
  parallel_for(
      active_,
      [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          double e = shorts ? short_cache_[i] : 0.0;
          for (const TermMap& tm : term_maps_) {
            e += tm.term.weight * tm.map->sample(cx_[i], cy_[i]);
          }
          out[i] = e;
        }
      },
      opt_.threads);
  return out;
}

}  // namespace ebl
