// Exposure evaluation: deposited energy at arbitrary points for a dosed
// shot list under a sum-of-Gaussians PSF.
//
// Two-scale strategy (the same split commercial PEC engines use):
//   - short-range terms (forward scattering, sigma comparable to feature
//     size) are summed analytically over neighbor shots within a cutoff,
//     found through a flat CSR spatial grid;
//   - long-range terms (backscattering, sigma >> feature size) are evaluated
//     on a coarse raster: dose-weighted coverage, separable Gaussian
//     convolution, bilinear interpolation at the query point.
// The split keeps evaluation O(neighbors) per point instead of O(shots),
// with error bounded by the raster pixel (<= sigma/4) and the cutoff_sigmas
// truncation (< 1e-6 of the term weight at the default 4 sigma).
//
// Throughput design (the PEC inner loop calls this millions of times):
//   - Neighbor queries are zero-allocation: the grid is a flat CSR layout
//     (offsets + packed shot indices) and duplicate candidates (a shot's bbox
//     spans several cells) are rejected with epoch-stamped visited marks in a
//     thread-local scratch — no per-query vector, sort, or unique.
//   - Each shot's sparse raster footprint (pixel, coverage-fraction) is
//     computed once at construction and cached in a pixel-major CSR
//     ("splat cache"); set_doses then re-accumulates every long-range map as
//     a dose-weighted sum of cached splats instead of re-clipping trapezoid
//     geometry — only the Gaussian blur is recomputed per iteration.
//   - exposures_at_centroids, splat re-accumulation, and both blur passes
//     run on the util/parallel.h thread pool. Results are bit-identical for
//     any thread count: work is only ever split over disjoint output
//     elements, each of which is computed in a fixed sequential order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fracture/shot.h"
#include "geom/raster.h"
#include "pec/psf.h"

namespace ebl {

struct ExposureOptions {
  /// Terms with sigma >= this many dbu go to the raster path; others are
  /// analytic. The default sends everything below 400 dbu to the analytic
  /// path. Lowering it trades accuracy (raster error ~ pixel/sigma) for
  /// speed on mid-range terms.
  double long_range_threshold = 400.0;

  /// Raster pixel = sigma / this factor (accuracy/speed knob). Larger means
  /// finer long-range maps: cost scales quadratically, error falls roughly
  /// quadratically.
  double pixels_per_sigma = 4.0;

  /// Analytic neighbor cutoff in sigmas. 4 keeps the truncation error below
  /// ~1e-6 of each short term's weight; raise it when validating against
  /// brute-force references at tighter tolerances.
  double cutoff_sigmas = 4.0;

  /// Worker threads for centroid sweeps, splat re-accumulation, and the blur
  /// passes. 0 = auto: the EBL_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency(). Results are identical for any
  /// value (see the header comment).
  int threads = 0;

  /// Cache per-shot sparse raster footprints at construction so dose updates
  /// only re-weight cached splats (memory ~ a few pixels per shot per
  /// long-range term). Disable to fall back to re-rasterizing the geometry
  /// on every set_doses — only useful for benchmarking the cache itself.
  bool splat_cache = true;
};

/// Evaluates exposure for a fixed shot geometry; per-shot doses can be
/// updated cheaply (cached splats are re-weighted, the neighbor structure is
/// reused, only the long-range blur is recomputed). Query points may be
/// anywhere. Queries are thread-safe and allocation-free after construction.
class ExposureEvaluator {
 public:
  ExposureEvaluator(ShotList shots, const Psf& psf, ExposureOptions options = {});

  const ShotList& shots() const { return shots_; }

  /// Replaces all doses (size must match) and refreshes cached maps.
  void set_doses(const std::vector<double>& doses);

  /// Exposure at a point (energy density relative to unit-dose infinite
  /// pattern = 1).
  double exposure_at(double px, double py) const;
  double exposure_at(Point p) const { return exposure_at(p.x, p.y); }

  /// Exposures at every shot's representative point (centroid). Runs on the
  /// thread pool; output is identical for any thread count.
  std::vector<double> exposures_at_centroids() const;

  /// Representative (centroid) point of shot i.
  std::pair<double, double> centroid(std::size_t i) const;

 private:
  void build_grid();
  void build_long_range();
  void accumulate_long_range();

  ShotList shots_;
  std::vector<PsfTerm> short_terms_;
  std::vector<PsfTerm> long_terms_;
  ExposureOptions opt_;

  // Flat CSR spatial grid over shot bboxes for the analytic path: shots of
  // cell (x, y) are grid_items_[grid_start_[y * gx_ + x] ..
  // grid_start_[y * gx_ + x + 1]). Empty when there are no short terms.
  Coord cell_ = 1;
  Point grid_origin_{0, 0};
  int gx_ = 0, gy_ = 0;
  std::vector<std::uint32_t> grid_start_;
  std::vector<std::uint32_t> grid_items_;
  double cutoff_ = 0.0;

  // One convolved raster per long-range term, plus the pixel-major splat
  // cache that rebuilds it: pixel p's accumulated (pre-blur) value is
  // sum over k in [px_start[p], px_start[p]+1) of px_frac[k] *
  // dose[px_shot[k]], always summed in ascending-k order for determinism.
  struct LongMap {
    PsfTerm term;
    std::unique_ptr<Raster> map;
    std::vector<std::uint32_t> px_start;
    std::vector<std::uint32_t> px_shot;
    std::vector<float> px_frac;
  };
  std::vector<LongMap> long_maps_;
};

/// Separable Gaussian blur of a raster (kernel truncated at 4 sigma), with
/// sigma given in dbu. The raster is interpreted as coverage-per-pixel; the
/// result is the normalized convolution such that an all-ones raster stays
/// all-ones in the interior. Row/column passes run on the thread pool
/// (threads: 0 = auto, see ExposureOptions::threads); output is identical
/// for any thread count.
void gaussian_blur(Raster& raster, double sigma_dbu, int threads = 0);

}  // namespace ebl
