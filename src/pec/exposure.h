// Exposure evaluation: deposited energy at arbitrary points for a dosed
// shot list under a sum-of-Gaussians PSF.
//
// Two-scale strategy (the same split commercial PEC engines use):
//   - short-range terms (forward scattering, sigma comparable to feature
//     size) are summed analytically over neighbor shots within a cutoff,
//     found through a flat CSR spatial grid;
//   - long-range terms (backscattering, sigma >> feature size) are evaluated
//     on a coarse raster: dose-weighted coverage, Gaussian convolution,
//     bilinear interpolation at the query point.
// The split keeps evaluation O(neighbors) per point instead of O(shots),
// with error bounded by the raster pixel (<= sigma/4) and the cutoff_sigmas
// truncation (< 1e-6 of the term weight at the default 4 sigma).
//
// Throughput design (the PEC inner loop calls this millions of times):
//   - Neighbor queries are zero-allocation: the grid is a flat CSR layout
//     (offsets + packed shot indices) and duplicate candidates (a shot's bbox
//     spans several cells) are rejected with epoch-stamped visited marks in a
//     thread-local scratch — no per-query vector, sort, or unique.
//   - All long-range terms share ONE base raster (pixel from the finest long
//     term, frame padded for the widest). Each shot's sparse footprint on it
//     (pixel, coverage-fraction) is computed once at construction and cached
//     in a pixel-major CSR ("splat cache"); set_doses re-accumulates the base
//     map as a dose-weighted sum of cached splats, then derives every term's
//     blurred map from that single accumulation.
//   - The per-term blur runs on one of two backends (BlurBackend): the
//     separable sliding-window kernel, or spectral multiplication through a
//     util/fft.h FftConvolver planned once at construction — the base map is
//     forward-transformed once per iteration and every term's truncated
//     kernel spectrum is applied to that single spectrum. Both backends
//     compute the *same* truncated normalized kernel, so they agree to
//     floating-point rounding; kAuto picks per construction by a flop model.
//   - Dose updates are incremental (ExposureOptions::delta_threshold): the
//     evaluator tracks per-shot dose deltas, and when only a minority of
//     doses moved it re-weights just those shots' cached splats into the
//     base map and patches the cached per-centroid short-range sums —
//     O(moved) instead of O(everything) — with sub-threshold updates
//     deferred entirely. Only the long-range blur still runs at full cost.
//   - The centroid sweep's erf evaluations are batched through the
//     vectorized polynomial in util/vecmath.h (4-wide AVX2 + FMA, ~4x libm;
//     see ExposureOptions::fast_erf).
//   - exposures_at_centroids, splat re-accumulation, and both blur backends
//     run on the util/parallel.h thread pool. Results are bit-identical for
//     any thread count: work is only ever split over disjoint output
//     elements, each of which is computed in a fixed sequential order, and
//     delta scatters run serially in shot order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fracture/shot.h"
#include "geom/raster.h"
#include "pec/psf.h"
#include "util/fft.h"

namespace ebl {

/// How rasters get convolved with the long-range Gaussians.
enum class BlurBackend {
  kAuto,    ///< flop-model choice: FFT when the kernel width makes it a win
  kDirect,  ///< separable sliding-window passes (fast for narrow kernels)
  kFft,     ///< padded real FFT + kernel spectra (width-independent cost)
};

struct ExposureOptions {
  /// Terms with sigma >= this many dbu go to the raster path; others are
  /// analytic. The default sends everything below 400 dbu to the analytic
  /// path. Lowering it trades accuracy (raster error ~ pixel/sigma) for
  /// speed on mid-range terms.
  double long_range_threshold = 400.0;

  /// Raster pixel = (finest long-range sigma) / this factor (accuracy/speed
  /// knob). Larger means finer long-range maps: cost scales quadratically,
  /// error falls roughly quadratically. Wide kernels on fine maps are where
  /// the FFT backend pays off.
  double pixels_per_sigma = 4.0;

  /// Analytic neighbor cutoff in sigmas. 4 keeps the truncation error below
  /// ~1e-6 of each short term's weight; raise it when validating against
  /// brute-force references at tighter tolerances.
  double cutoff_sigmas = 4.0;

  /// How far the long-range maps extend past the shot bbox, in units of the
  /// widest long sigma (clamped to >= 2 pixels). The blur itself is exact
  /// anywhere on the map — every source is on it — so the margin only buys
  /// correct *sampling* beyond the pattern (the backscatter tail a simulator
  /// probes). Queries at shot centroids never leave the bbox: the correctors
  /// set this to 0 and shed the dead border pixels, which is a big deal for
  /// sharded solves where the border would otherwise rival the shard.
  double map_margin_sigmas = 4.0;

  /// Worker threads for centroid sweeps, splat re-accumulation, and the blur
  /// passes. 0 = auto: the EBL_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency(). Results are identical for any
  /// value (see the header comment).
  int threads = 0;

  /// Cache per-shot sparse raster footprints at construction so dose updates
  /// only re-weight cached splats (memory ~ a few pixels per shot per
  /// long-range term). Disable to fall back to re-rasterizing the geometry
  /// on every set_doses — only useful for benchmarking the cache itself.
  bool splat_cache = true;

  /// Long-range blur backend. kAuto compares the flop model of the separable
  /// kernel against the padded-FFT plan and keeps the cheaper one; results
  /// are backend-independent to floating-point rounding either way.
  BlurBackend blur_backend = BlurBackend::kAuto;

  /// Incremental dose-delta updates. After a few Jacobi sweeps most doses
  /// move by far less than the correction tolerance; re-gathering every splat
  /// (and re-summing every analytic neighbor term) for updates that moved
  /// almost nothing is where the iterative corrector used to spend its tail.
  /// When > 0, set_doses / set_active_doses compare each requested dose with
  /// the one currently applied:
  ///   - a shot whose relative change is at most delta_threshold is
  ///     *deferred*: its applied dose keeps its old value until the
  ///     accumulated request drifts past the threshold (or the next full
  ///     refresh applies everything), so the evaluator's state deviates from
  ///     the requested doses by at most delta_threshold relative — far below
  ///     the correction tolerance at the default;
  ///   - when the moved shots are a minority (at most half of the updated
  ///     range), only *their* contributions are re-applied: cached splats are
  ///     re-weighted by the dose delta directly into the shared base map
  ///     (O(moved x footprint) instead of the full O(pixels + splats)
  ///     gather), and the cached per-centroid short-range sums are updated
  ///     the same way. The long-range blur still reruns on the updated map.
  /// Every kDeltaReanchor-th delta refresh re-gathers in full to keep the
  /// ~1e-16-per-update rounding drift bounded (well under 1e-12 in
  /// practice). 0 disables the path entirely: every update re-applies every
  /// dose through the full gather, bit-identical to the pre-delta engine —
  /// that is the oracle the equivalence tests compare against.
  double delta_threshold = 1e-4;

  /// Evaluate the centroid sweep's error functions with the vectorized
  /// polynomial in util/vecmath.h (|error| <= 2e-7, ~4x libm throughput on
  /// AVX2) instead of libm's erf. The analytic path already truncates at
  /// cutoff_sigmas (~1e-6 of a term weight), so the approximation does not
  /// change the documented accuracy; exposure_at (the arbitrary-point API)
  /// always uses libm. Disable for erf-exact sweeps.
  bool fast_erf = true;
};

/// Wall-clock accounting of the long-range refresh, for benchmarks and the
/// auto-backend calibration. Times accumulate across set_doses calls.
struct BlurPerf {
  double accumulate_ms = 0.0;  ///< full splat gathers / re-rasterizations
  double blur_ms = 0.0;        ///< per-term convolutions (either backend)
  int refreshes = 0;           ///< completed *full* long-range refreshes

  // Delta-path accounting (see ExposureOptions::delta_threshold).
  double delta_accumulate_ms = 0.0;  ///< delta scatters (splats + short sums)
  int delta_refreshes = 0;           ///< refreshes served by the delta path
  int skipped_refreshes = 0;  ///< set_* calls where no dose moved at all
  long long shots_updated = 0;  ///< shots re-weighted across delta refreshes

  // Windowed delta-blur accounting: delta refreshes whose long-range blur
  // ran on a sub-window around the touched region instead of the full map
  // (see ExposureOptions::delta_threshold and docs/architecture.md). The
  // time is a subset of blur_ms.
  int windowed_blurs = 0;         ///< blurs served by the windowed path
  double windowed_blur_ms = 0.0;  ///< time inside those windowed blurs

  /// Fold another evaluator's counters into this one (sharded solves
  /// aggregate their per-shard evaluators; summation order is the caller's).
  void merge(const BlurPerf& o) {
    accumulate_ms += o.accumulate_ms;
    blur_ms += o.blur_ms;
    refreshes += o.refreshes;
    delta_accumulate_ms += o.delta_accumulate_ms;
    delta_refreshes += o.delta_refreshes;
    skipped_refreshes += o.skipped_refreshes;
    shots_updated += o.shots_updated;
    windowed_blurs += o.windowed_blurs;
    windowed_blur_ms += o.windowed_blur_ms;
  }
};

/// Evaluates exposure for a fixed shot geometry; per-shot doses can be
/// updated cheaply (cached splats are re-weighted, the neighbor structure is
/// reused, only the long-range blur is recomputed). Query points may be
/// anywhere. Queries are thread-safe and allocation-free after construction.
///
/// Active/background split: the shot list may carry a trailing block of
/// *background* shots (ghosts from neighboring PEC shards). Background shots
/// contribute exposure like active ones — they live in the neighbor grid and
/// their dose-weighted coverage lands on the long-range maps — but they take
/// no dose updates and exposures_at_centroids skips them. Because their
/// doses are frozen, they stay out of the splat cache: a frozen background
/// map holds their coverage (at double precision — agreement with an
/// all-active evaluator is to float-cache precision) and both cache memory
/// and the per-iteration gather are O(active). This is how the sharded
/// corrector freezes halo doses without a second evaluator or copied
/// geometry.
class ExposureEvaluator {
 public:
  ExposureEvaluator(ShotList shots, const Psf& psf, ExposureOptions options = {});

  /// Split construction: the first @p active_count shots are active, the
  /// rest are frozen-dose background (see the class comment). An
  /// @p active_count of 0 means "all shots active" (same as the plain
  /// constructor).
  ExposureEvaluator(ShotList shots, std::size_t active_count, const Psf& psf,
                    ExposureOptions options = {});

  const ShotList& shots() const { return shots_; }

  /// Number of active (dose-updatable) shots; equals shots().size() unless
  /// the split constructor was used.
  std::size_t active_count() const { return active_; }

  /// Replaces all doses — active and background (size must match
  /// shots().size()) — and refreshes cached maps.
  void set_doses(const std::vector<double>& doses);

  /// Replaces the active doses only (size must match active_count());
  /// background doses stay frozen. Refreshes cached maps.
  void set_active_doses(const std::vector<double>& doses);

  /// Replaces every dose (active and background) through the exact
  /// full-refresh path, regardless of delta_threshold: all requested doses
  /// are applied, the frozen ghost map and base map are rebuilt, and the
  /// short-range cache is invalidated — the evaluator afterwards is
  /// bit-identical to one freshly constructed at these doses. The sharded
  /// corrector uses this to re-enter a resident shard whose own doses it
  /// cannot prove current (see set_background_doses for the ghost-only
  /// variant).
  void reset_doses(const std::vector<double>& doses);

  /// Replaces the background (ghost) doses only (size must match
  /// shots().size() - active_count()); active doses stay as applied. This is
  /// the halo-exchange entry point for a resident shard evaluator: the
  /// refresh is *exact* — frozen ghost map re-rasterized, base map fully
  /// re-gathered, short-range cache invalidated — so the evaluator's state
  /// afterwards is bit-identical to a freshly constructed evaluator at the
  /// same doses, while the expensive geometry caches (neighbor grid, splat
  /// clipping, kernel taps, FFT plan) are reused. That equivalence is what
  /// lets the sharded corrector evict and rebuild pool entries without
  /// changing a single bit of the result.
  void set_background_doses(const std::vector<double>& doses);

  /// Switches the long-range blur backend and re-derives the blurred maps
  /// from the current doses (the accumulated base map is reused). Lets
  /// benchmarks compare backends on one evaluator instead of paying the
  /// splat cache twice.
  void set_blur_backend(BlurBackend backend);

  /// Backend in effect after resolution (never kAuto). kDirect when there
  /// are no long-range terms.
  BlurBackend blur_backend() const;

  /// Exposure at a point (energy density relative to unit-dose infinite
  /// pattern = 1).
  double exposure_at(double px, double py) const;
  double exposure_at(Point p) const { return exposure_at(p.x, p.y); }

  /// Exposures at every *active* shot's representative point (centroid).
  /// Runs on the thread pool; output is identical for any thread count.
  /// The short-range (analytic) part of the sweep is cached per centroid and
  /// kept current by the delta path, so sweeps after a small dose update
  /// cost the long-map samples plus the moved shots' neighborhoods only.
  /// The cache refresh mutates internal state: concurrent sweep calls on one
  /// evaluator are not supported (point queries via exposure_at remain
  /// thread-safe).
  std::vector<double> exposures_at_centroids() const;

  /// Representative (centroid) point of shot i.
  std::pair<double, double> centroid(std::size_t i) const;

  /// Cumulative long-range refresh timings (see BlurPerf).
  const BlurPerf& blur_perf() const { return perf_; }

 private:
  void build_grid();
  void build_long_range();
  void rebuild_ghost_base();
  void accumulate_long_range();
  void blur_long_range();
  // Windowed blur: merges the marked blur tiles (see mark_blur_tiles) into
  // patch rectangles and re-derives every term map only on those, each from
  // its own support window W = dilate(P, r), when the summed flop model says
  // the windows beat one full-map blur. Patching per rectangle instead of
  // one union bbox lets spatially scattered movers (a ring of boundary
  // shots, a handful of islands) window — their union bbox would cover the
  // whole map. Under the direct backend the patched values are
  // bit-identical to a full-map separable blur (each window carries its
  // patch's entire kernel support, and clipped window edges coincide with
  // map edges); allow_fft additionally permits a snug FFT sub-plan per
  // window, which agrees to rounding only — callers that must stay bitwise
  // pass false. Returns false (and blurs nothing) when the windows would
  // not win; the caller then runs blur_long_range(), which also clears the
  // tile marks.
  bool blur_long_range_windowed(bool allow_fft);

  // Delta-path internals (see ExposureOptions::delta_threshold).
  bool delta_capable() const;
  // Shared exact-delta core of reset_doses / set_background_doses: with the
  // moved doses already applied to shots_, restores the evaluator to the
  // bitwise state of a fresh construction at O(touched + ghost re-raster)
  // cost. Marks the moved shots' footprints (actives via the splat CSR,
  // ghosts via coverage re-visits) plus every pixel earlier delta scatters
  // perturbed as dirty, re-rasters the frozen ghost map when ghosts moved,
  // recomputes the dirty pixels with the full-gather arithmetic, then
  // re-blurs (windowed-direct when bit-exact and cheaper, full otherwise).
  // Falls back to the full rebuild when the touched set outgrows half the
  // map — pre-estimated from footprint sizes before any marking.
  // @p moved_ghost holds ghost-relative indices (0 = shots_[active_]).
  void exact_delta_refresh(const std::vector<std::uint32_t>& moved_active,
                           const std::vector<std::uint32_t>& moved_ghost);
  void update_doses(const double* doses, std::size_t begin, std::size_t end,
                    bool include_background);
  void apply_full(const double* doses, std::size_t begin, std::size_t end);
  void apply_delta(const double* doses, std::size_t begin, std::size_t end);
  void scatter_short_delta(std::uint32_t shot, double delta);
  void refresh_short_cache() const;
  // Shared neighbor walk of the analytic path: epoch-deduped grid scan
  // around (px, py) with the cutoff bbox-distance reject, invoking
  // fn(shot_index) for every accepted shot in deterministic cell-scan
  // order. Both the scalar point query and the batched sweep go through it,
  // so their inclusion semantics cannot drift apart.
  template <typename Fn>
  void visit_short_neighbors(double px, double py, Fn&& fn) const;
  double short_exposure_batched(double px, double py) const;
  double short_kernel_batched(const Trapezoid& shape, double px, double py) const;
  void eval_erf(const double* x, double* y, std::size_t n) const;

  ShotList shots_;
  std::size_t active_ = 0;  ///< shots_[0..active_) take dose updates
  std::vector<PsfTerm> short_terms_;
  std::vector<PsfTerm> long_terms_;
  ExposureOptions opt_;

  // Flat CSR spatial grid over shot bboxes for the analytic path: shots of
  // cell (x, y) are grid_items_[grid_start_[y * gx_ + x] ..
  // grid_start_[y * gx_ + x + 1]). Empty when there are no short terms.
  Coord cell_ = 1;
  Point grid_origin_{0, 0};
  int gx_ = 0, gy_ = 0;
  std::vector<std::uint32_t> grid_start_;
  std::vector<std::uint32_t> grid_items_;
  double cutoff_ = 0.0;

  // Long-range state: one shared accumulated (pre-blur) base map plus the
  // pixel-major splat cache that rebuilds it — pixel p's value is
  // sum over k in [px_start[p], px_start[p]+1) of px_frac[k] *
  // dose[px_shot[k]], always summed in ascending-k order for determinism —
  // and one blurred raster per long-range term, derived from the base.
  struct TermMap {
    PsfTerm term;
    std::vector<double> taps;  ///< truncated normalized kernel, both backends
    std::unique_ptr<Raster> map;
  };
  // Background (frozen-dose) shots are not in the splat cache: their
  // dose-weighted coverage is rasterized once into ghost_base_ and added on
  // top of the active gather, so cache memory and the per-iteration gather
  // are O(active shots). Rebuilt only by set_doses (which may move
  // background doses); null when every shot is active.
  std::unique_ptr<Raster> long_base_;
  std::unique_ptr<Raster> ghost_base_;
  std::vector<std::uint32_t> px_start_;
  std::vector<std::uint32_t> px_shot_;
  std::vector<float> px_frac_;
  // Shot-major view of the same splats (shot j's footprint is
  // shot_px_/shot_frac_[shot_start_[j] .. shot_start_[j+1])): the delta path
  // scatters a moved shot's dose change straight into the base map through
  // it. Built from the same emission stream as the pixel-major CSR, so the
  // fractions are bit-identical between the two views.
  std::vector<std::uint32_t> shot_start_;
  std::vector<std::uint32_t> shot_px_;
  std::vector<float> shot_frac_;
  std::vector<TermMap> term_maps_;
  bool use_fft_ = false;
  int max_radius_ = 0;
  std::unique_ptr<FftConvolver> convolver_;  // created lazily on first FFT use
  std::vector<int> term_kernel_ids_;  // registered kernel slot per term map
  BlurPerf perf_;

  // Windowed-blur scratch (see blur_long_range_windowed): extracted window,
  // per-term outputs, and a lazily planned snug FFT sub-plan with the term
  // kernels registered (rebuilt when the window size changes).
  std::vector<double> win_src_;
  std::vector<std::vector<double>> win_out_;
  std::unique_ptr<FftConvolver> win_conv_;
  std::vector<int> win_ids_;

  // Dirty-pixel tracking for exact background refreshes: every base-map
  // pixel a delta scatter has touched since the last full gather (the last
  // point where the whole evaluator state was bitwise that of a fresh
  // construction). set_background_doses re-derives exactly these pixels
  // (plus changed-ghost footprints) with full-gather arithmetic, which
  // restores global bitwise freshness at O(touched) cost. Tracked only for
  // split evaluators (ghost_base_ set); overflow past half the map flips
  // dirty_overflow_ and routes the next refresh through the full path.
  std::vector<std::uint8_t> dirty_mask_;
  std::vector<std::uint32_t> dirty_px_;
  bool dirty_overflow_ = false;
  void mark_dirty(std::uint32_t p);
  void clear_dirty();

  // Tile-granular touch mask feeding the windowed blur: the map is carved
  // into fixed-size tiles, and the delta paths mark every tile intersecting
  // a moved footprint's patch region (the footprint dilated by the widest
  // kernel support). blur_long_range_windowed consumes and the next full
  // blur resets the marks.
  int tile_nx_ = 0, tile_ny_ = 0;
  std::vector<std::uint8_t> blur_tiles_;
  int tiles_marked_ = 0;
  void mark_blur_tiles_region(int ax, int ay, int bx, int by);
  void mark_blur_tiles(const Box& bb);
  void clear_blur_tiles();

  // Active-centroid cache (query points of the sweep) and the cached
  // short-range analytic sums at them. The cache is rebuilt on the next
  // sweep after any full refresh and kept current by delta scatters
  // otherwise; mutable because the sweep (const) owns the lazy rebuild.
  std::vector<double> cx_, cy_;
  mutable std::vector<double> short_cache_;
  mutable bool short_cache_valid_ = false;
  int delta_streak_ = 0;  ///< delta refreshes since the last full gather
  std::vector<std::uint32_t> moved_scratch_;
};

/// Separable Gaussian blur of a raster (kernel truncated at 4 sigma), with
/// sigma given in dbu. The raster is interpreted as coverage-per-pixel; the
/// result is the normalized convolution such that an all-ones raster stays
/// all-ones in the interior. Row/column passes run on the thread pool
/// (threads: 0 = auto, see ExposureOptions::threads); output is identical
/// for any thread count.
void gaussian_blur(Raster& raster, double sigma_dbu, int threads = 0);

/// The same blur computed by spectral multiplication: a padded real FFT of
/// the raster times the exact spectrum of the same truncated kernel. Agrees
/// with gaussian_blur to floating-point rounding (well below 1e-6) for any
/// sigma and raster size; cost is independent of sigma. Plans ad hoc — hold
/// an FftConvolver instead when blurring the same-sized raster repeatedly.
void fft_gaussian_blur(Raster& raster, double sigma_dbu, int threads = 0);

/// Backend-dispatched blur: kDirect and kFft call the functions above;
/// kAuto picks by the same flop model the evaluator uses.
void gaussian_blur(Raster& raster, double sigma_dbu, BlurBackend backend,
                   int threads = 0);

/// The discrete blur kernel both backends share: taps[j] is the normalized
/// weight at +-j pixels, truncated at radius max(1, ceil(4 sigma_px)),
/// following the PSF convention exp(-x^2 / sigma^2).
std::vector<double> gaussian_kernel_taps(double sigma_px);

/// The flop-model decision behind BlurBackend::kAuto: true when spectral
/// convolution of an nx-by-ny raster with one kernel per entry of radii
/// (sharing a single forward transform) beats running the separable passes
/// for each, including the measured direct-vs-FFT throughput gap.
bool fft_blur_wins(int nx, int ny, const std::vector<std::size_t>& radii);

/// Separable symmetric convolution of the raster with explicit taps
/// (taps[0] center), zero boundaries, in place. The primitive behind
/// gaussian_blur, exposed for tests and custom kernels.
void separable_blur(Raster& raster, const std::vector<double>& taps,
                    int threads = 0);

}  // namespace ebl
