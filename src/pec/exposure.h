// Exposure evaluation: deposited energy at arbitrary points for a dosed
// shot list under a sum-of-Gaussians PSF.
//
// Two-scale strategy (the same split commercial PEC engines use):
//   - short-range terms (forward scattering, sigma comparable to feature
//     size) are summed analytically over neighbor shots within a cutoff,
//     found through a uniform spatial hash;
//   - long-range terms (backscattering, sigma >> feature size) are evaluated
//     on a coarse raster: dose-weighted coverage, separable Gaussian
//     convolution, bilinear interpolation at the query point.
// The split keeps evaluation O(neighbors) per point instead of O(shots),
// with error bounded by the raster pixel (<= sigma/4) and the 4-sigma
// cutoff (< 1e-6 of the term weight).
#pragma once

#include <memory>
#include <vector>

#include "fracture/shot.h"
#include "geom/raster.h"
#include "pec/psf.h"

namespace ebl {

struct ExposureOptions {
  /// Terms with sigma >= this many dbu go to the raster path; others are
  /// analytic. 0 = auto (raster for sigma > 16 pixels worth of shots...);
  /// the default sends everything below 400 dbu to the analytic path.
  double long_range_threshold = 400.0;

  /// Raster pixel = sigma / this factor (accuracy/speed knob).
  double pixels_per_sigma = 4.0;

  /// Analytic neighbor cutoff in sigmas.
  double cutoff_sigmas = 4.0;
};

/// Evaluates exposure for a fixed shot geometry; per-shot doses can be
/// updated cheaply-ish (the long-range raster is rebuilt, the neighbor
/// structure is reused). Query points may be anywhere.
class ExposureEvaluator {
 public:
  ExposureEvaluator(ShotList shots, const Psf& psf, ExposureOptions options = {});

  const ShotList& shots() const { return shots_; }

  /// Replaces all doses (size must match) and refreshes cached maps.
  void set_doses(const std::vector<double>& doses);

  /// Exposure at a point (energy density relative to unit-dose infinite
  /// pattern = 1).
  double exposure_at(double px, double py) const;
  double exposure_at(Point p) const { return exposure_at(p.x, p.y); }

  /// Exposures at every shot's representative point (centroid).
  std::vector<double> exposures_at_centroids() const;

  /// Representative (centroid) point of shot i.
  std::pair<double, double> centroid(std::size_t i) const;

 private:
  void rebuild_long_range();

  ShotList shots_;
  std::vector<PsfTerm> short_terms_;
  std::vector<PsfTerm> long_terms_;
  ExposureOptions opt_;

  // Spatial hash over shot bboxes for the analytic path.
  Coord cell_ = 1;
  Point grid_origin_{0, 0};
  int gx_ = 0, gy_ = 0;
  std::vector<std::vector<std::uint32_t>> bins_;
  double cutoff_ = 0.0;

  // One convolved raster per long-range term.
  struct LongMap {
    PsfTerm term;
    std::unique_ptr<Raster> map;
  };
  std::vector<LongMap> long_maps_;
};

/// Separable Gaussian blur of a raster (kernel truncated at 4 sigma), with
/// sigma given in dbu. The raster is interpreted as coverage-per-pixel; the
/// result is the normalized convolution such that an all-ones raster stays
/// all-ones in the interior.
void gaussian_blur(Raster& raster, double sigma_dbu);

}  // namespace ebl
