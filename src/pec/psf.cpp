#include "pec/psf.h"

#include <cmath>
#include <numbers>

#include "util/contracts.h"

namespace ebl {

Psf::Psf(std::vector<PsfTerm> terms) : terms_(std::move(terms)) {
  double sum = 0.0;
  for (const PsfTerm& t : terms_) {
    expects(t.sigma > 0, "Psf: sigma must be positive");
    expects(t.weight > 0, "Psf: weight must be positive");
    sum += t.weight;
  }
  // Normalize defensively; factory methods already pass normalized weights.
  for (PsfTerm& t : terms_) t.weight /= sum;
}

Psf Psf::single_gaussian(double sigma) { return Psf{{{1.0, sigma}}}; }

Psf Psf::double_gaussian(double alpha, double beta, double eta) {
  expects(eta >= 0, "Psf: eta must be non-negative");
  const double wf = 1.0 / (1.0 + eta);
  return Psf{{{wf, alpha}, {eta * wf, beta}}};
}

Psf Psf::triple_gaussian(double alpha, double beta, double gamma, double eta,
                         double nu) {
  expects(eta >= 0 && nu >= 0, "Psf: ratios must be non-negative");
  const double w = 1.0 / (1.0 + eta + nu);
  return Psf{{{w, alpha}, {eta * w, beta}, {nu * w, gamma}}};
}

Psf Psf::from_terms(std::vector<PsfTerm> terms) {
  expects(!terms.empty(), "Psf: need at least one term");
  // Bypass the normalizing constructor: the terms are the verbatim output of
  // another Psf's terms() (see the header comment), and renormalizing would
  // move each weight by an ulp when their sum is not exactly representable
  // as 1.0.
  Psf psf{{{1.0, 1.0}}};
  for (const PsfTerm& t : terms) {
    expects(t.sigma > 0, "Psf: sigma must be positive");
    expects(t.weight > 0, "Psf: weight must be positive");
  }
  psf.terms_ = std::move(terms);
  return psf;
}

double Psf::value(double r) const {
  double v = 0.0;
  for (const PsfTerm& t : terms_) {
    const double s2 = t.sigma * t.sigma;
    v += t.weight / (std::numbers::pi * s2) * std::exp(-r * r / s2);
  }
  return v;
}

double Psf::min_sigma() const {
  double m = terms_.front().sigma;
  for (const PsfTerm& t : terms_) m = std::min(m, t.sigma);
  return m;
}

double Psf::max_sigma() const {
  double m = terms_.front().sigma;
  for (const PsfTerm& t : terms_) m = std::max(m, t.sigma);
  return m;
}

double term_exposure_rect(const PsfTerm& term, double x0, double x1, double y0,
                          double y1, double px, double py) {
  // Integral of (1/(pi s^2)) exp(-((x-px)^2+(y-py)^2)/s^2) over the rect:
  // product of 1-D factors 0.5 (erf((hi-p)/s) - erf((lo-p)/s)).
  const double inv_s = 1.0 / term.sigma;
  const double fx = 0.5 * (std::erf((x1 - px) * inv_s) - std::erf((x0 - px) * inv_s));
  const double fy = 0.5 * (std::erf((y1 - py) * inv_s) - std::erf((y0 - py) * inv_s));
  return term.weight * fx * fy;
}

double term_exposure_trapezoid(const PsfTerm& term, const Trapezoid& t, double px,
                               double py) {
  if (t.is_rect()) {
    return term_exposure_rect(term, t.xl0, t.xr0, t.y0, t.y1, px, py);
  }
  const double height = static_cast<double>(t.y1) - t.y0;
  const double max_slice = std::max(term.sigma * 0.5, 1.0);
  const int slices = std::max(1, static_cast<int>(std::ceil(height / max_slice)));
  const double inv_h = 1.0 / height;
  double sum = 0.0;
  for (int i = 0; i < slices; ++i) {
    const double ya = t.y0 + height * i / slices;
    const double yb = t.y0 + height * (i + 1) / slices;
    const double ym = 0.5 * (ya + yb);
    const double fl = (ym - t.y0) * inv_h;
    const double xl = t.xl0 + (t.xl1 - t.xl0) * fl;
    const double xr = t.xr0 + (t.xr1 - t.xr0) * fl;
    if (xr <= xl) continue;
    sum += term_exposure_rect(term, xl, xr, ya, yb, px, py);
  }
  return sum;
}

double exposure_trapezoid(const Psf& psf, const Trapezoid& t, double px, double py) {
  double sum = 0.0;
  for (const PsfTerm& term : psf.terms()) {
    sum += term_exposure_trapezoid(term, t, px, py);
  }
  return sum;
}

double backscatter_eta(const Psf& psf) {
  double max_sigma = 0.0;
  for (const PsfTerm& t : psf.terms()) max_sigma = std::max(max_sigma, t.sigma);
  double wb = 0.0;
  double wf = 0.0;
  for (const PsfTerm& t : psf.terms()) (t.sigma == max_sigma ? wb : wf) += t.weight;
  return wf > 0 ? wb / wf : 0.0;
}

}  // namespace ebl
