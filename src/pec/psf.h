// Point-spread functions for electron scattering in resist.
//
// The classic proximity model (Chang 1975, used by every PEC tool since) is
// a sum of Gaussians:
//
//   f(r) = 1/(pi (1+eta)) [ 1/a^2 exp(-r^2/a^2) + eta/b^2 exp(-r^2/b^2) ]
//
// with a (alpha) the forward-scattering range, b (beta) the backscattering
// range and eta the backscattered-to-forward energy ratio. f integrates to 1
// over the plane, so a uniform unit-dose pattern of infinite extent produces
// exposure exactly 1. All lengths are in dbu (1 nm by default).
#pragma once

#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/trapezoid.h"

namespace ebl {

/// One Gaussian term: weight * (1 / (pi sigma^2)) exp(-r^2 / sigma^2).
struct PsfTerm {
  double weight;  ///< fraction of deposited energy in this term
  double sigma;   ///< range in dbu
};

/// Sum-of-Gaussians point spread function; weights sum to 1.
class Psf {
 public:
  /// Single Gaussian (useful for tests and beam-blur-only studies).
  static Psf single_gaussian(double sigma);

  /// The standard double Gaussian with forward range @p alpha, backscatter
  /// range @p beta, and ratio @p eta.
  static Psf double_gaussian(double alpha, double beta, double eta);

  /// Triple Gaussian: adds a mid-range term @p gamma with ratio @p nu
  /// (fast-secondary-electron tail; used for high-accuracy PEC).
  static Psf triple_gaussian(double alpha, double beta, double gamma, double eta,
                             double nu);

  /// Reconstructs a PSF from explicit, already-normalized terms WITHOUT
  /// renormalizing them — the deserialization entry point of the shard-job
  /// wire format (src/pec/wire.h), where re-dividing by a weight sum that is
  /// not exactly 1.0 would perturb the weights by an ulp and break the
  /// bitwise identity between a remote and an in-process shard solve.
  /// Weights and sigmas must be positive; weights should sum to ~1 (as
  /// terms() of any constructed Psf do).
  static Psf from_terms(std::vector<PsfTerm> terms);

  std::span<const PsfTerm> terms() const { return terms_; }

  /// Density value at radius r (energy per unit area for unit dose).
  double value(double r) const;

  double min_sigma() const;
  double max_sigma() const;

 private:
  explicit Psf(std::vector<PsfTerm> terms);
  std::vector<PsfTerm> terms_;
};

/// Exposure contribution at point (px, py) of a unit-dose axis-aligned
/// rectangle [x0,x1]x[y0,y1] under one Gaussian term — exact (erf product).
double term_exposure_rect(const PsfTerm& term, double x0, double x1, double y0,
                          double y1, double px, double py);

/// Exposure contribution of a unit-dose trapezoid under one term. Slanted
/// sides are handled by slicing into horizontal strips no taller than
/// sigma/2 (error << 1% of the contribution); rectangles are exact.
double term_exposure_trapezoid(const PsfTerm& term, const Trapezoid& t, double px,
                               double py);

/// Full-PSF exposure at @p p of a unit-dose trapezoid.
double exposure_trapezoid(const Psf& psf, const Trapezoid& t, double px, double py);

/// Backscattered-to-forward energy ratio implied by the PSF, taking the
/// longest-range term as "backscatter" — the eta of the closed-form density
/// correction d(u) = (1 + 2 eta) / (1 + 2 eta u). Shared by density_pec and
/// the sharded corrector's warm start.
double backscatter_eta(const Psf& psf);

}  // namespace ebl
