#include "pec/sharded.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>

#include <unistd.h>

#include "geom/raster.h"
#include "pec/exposure.h"
#include "pec/supervisor.h"
#include "pec/transport.h"
#include "pec/wire.h"
#include "util/contracts.h"
#include "util/net.h"
#include "util/fft.h"
#include "util/gridkeys.h"
#include "util/parallel.h"
#include "util/subprocess.h"

namespace ebl {
namespace {

Coord64 div_floor(Coord64 a, Coord64 b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

// Shard indices are relative to the pattern bbox corner — the packed-key /
// occupied-slot machinery is util/gridkeys.h, shared with the field
// partitioner. Only occupied shards (>= 1 owned shot) materialize, so
// sparse giant extents never allocate a dense shard grid.
struct ShardLayout {
  Box bbox;
  Coord shard = 0;
  Coord64 halo = 0;
  std::size_t count = 0;  ///< occupied shards
  // CSR shard -> owned shot indices (ascending within a shard) and
  // shard -> halo ghost indices, both filled in shot-index order so every
  // list is deterministic.
  std::vector<std::uint32_t> active_start, active_items;
  std::vector<std::uint32_t> ghost_start, ghost_items;
};

ShardLayout build_layout(const ShotList& shots, Coord shard, double halo_dbu,
                         int threads) {
  ShardLayout L;
  L.shard = shard;
  L.halo = static_cast<Coord64>(std::ceil(halo_dbu));
  for (const Shot& s : shots) L.bbox += s.shape.bbox();
  const Coord64 nsx = L.bbox.width() / shard + 1;
  const Coord64 nsy = L.bbox.height() / shard + 1;

  // Owner shard of every shot: the shard containing its bbox center (center
  // coordinates never leave the bbox, so relative indices are >= 0).
  const std::size_t n = shots.size();
  std::vector<std::uint64_t> owner(n);
  parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const Box sb = shots[i].shape.bbox();
          const Coord64 cx = (Coord64(sb.lo.x) + sb.hi.x) / 2;
          const Coord64 cy = (Coord64(sb.lo.y) + sb.hi.y) / 2;
          owner[i] =
              pack_grid_key((cx - L.bbox.lo.x) / shard, (cy - L.bbox.lo.y) / shard);
        }
      },
      threads);

  const GridKeySlots slots(owner);
  const std::size_t ns = slots.size();
  L.count = ns;

  // Each owner key resolves to its slot once; the CSR count and fill passes
  // run on the resolved slots, in shot-index order.
  std::vector<std::uint32_t> owner_slot(n);
  parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          owner_slot[i] = static_cast<std::uint32_t>(slots.slot_of(owner[i]));
      },
      threads);

  L.active_start.assign(ns + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++L.active_start[owner_slot[i] + 1];
  for (std::size_t s = 1; s <= ns; ++s) L.active_start[s] += L.active_start[s - 1];
  L.active_items.resize(n);
  {
    std::vector<std::uint32_t> cursor(L.active_start.begin(), L.active_start.end() - 1);
    for (std::uint32_t i = 0; i < n; ++i) L.active_items[cursor[owner_slot[i]]++] = i;
  }

  // Ghost incidences: a shot joins every *other* occupied shard whose frame
  // its halo-bloated bbox overlaps. One pass over the geometry collects
  // (slot, shot) pairs — interior shots (bloated bbox inside the owner
  // shard) take the early-out, boundary shots touch at most a handful of
  // neighbor shards — then a count/prefix/fill turns them into the CSR.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ghost_inc;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Box sb = shots[i].shape.bbox();
    const Coord64 sx0 = std::clamp<Coord64>(
        div_floor(Coord64(sb.lo.x) - L.halo - L.bbox.lo.x, shard), 0, nsx - 1);
    const Coord64 sx1 = std::clamp<Coord64>(
        div_floor(Coord64(sb.hi.x) + L.halo - L.bbox.lo.x, shard), 0, nsx - 1);
    const Coord64 sy0 = std::clamp<Coord64>(
        div_floor(Coord64(sb.lo.y) - L.halo - L.bbox.lo.y, shard), 0, nsy - 1);
    const Coord64 sy1 = std::clamp<Coord64>(
        div_floor(Coord64(sb.hi.y) + L.halo - L.bbox.lo.y, shard), 0, nsy - 1);
    if (sx0 == sx1 && sy0 == sy1) continue;  // interior: owner shard only
    for (Coord64 sy = sy0; sy <= sy1; ++sy) {
      for (Coord64 sx = sx0; sx <= sx1; ++sx) {
        const std::uint64_t key = pack_grid_key(sx, sy);
        if (key == owner[i]) continue;
        const std::size_t slot = slots.slot_of(key);
        if (slot < ns)
          ghost_inc.emplace_back(static_cast<std::uint32_t>(slot), i);
      }
    }
  }
  L.ghost_start.assign(ns + 1, 0);
  for (const auto& [slot, shot] : ghost_inc) ++L.ghost_start[slot + 1];
  for (std::size_t s = 1; s <= ns; ++s) L.ghost_start[s] += L.ghost_start[s - 1];
  L.ghost_items.resize(ghost_inc.size());
  {
    std::vector<std::uint32_t> cursor(L.ghost_start.begin(), L.ghost_start.end() - 1);
    for (const auto& [slot, shot] : ghost_inc) L.ghost_items[cursor[slot]++] = shot;
  }
  return L;
}

struct ShardOutcome {
  double entry_error = 0.0;  ///< max error at round entry (fresh ghost doses)
  double exit_error = 0.0;   ///< max error at the last evaluation of the run
  int iterations = 0;        ///< Jacobi update steps run this round
  bool updated = false;      ///< any dose actually changed this round
  bool optimistic = false;   ///< exited after an update it did not re-verify
  BlurPerf perf;             ///< this run's evaluator refresh accounting
};

BlurPerf perf_since(const BlurPerf& now, const BlurPerf& then) {
  BlurPerf d = now;
  d.accumulate_ms -= then.accumulate_ms;
  d.blur_ms -= then.blur_ms;
  d.refreshes -= then.refreshes;
  d.delta_accumulate_ms -= then.delta_accumulate_ms;
  d.delta_refreshes -= then.delta_refreshes;
  d.skipped_refreshes -= then.skipped_refreshes;
  d.shots_updated -= then.shots_updated;
  d.windowed_blurs -= then.windowed_blurs;
  d.windowed_blur_ms -= then.windowed_blur_ms;
  return d;
}

// Per-shard optimistic exit: with exchange rounds still ahead, a shard whose
// error is already within this factor of tolerance publishes its next Jacobi
// update *without* paying the refresh + sweep to verify it — the following
// round (which re-runs the shard, its own doses being unverified) or the
// final measurement pass performs the check. Convergence certification is
// untouched: only a full round in which no shard changes a dose settles the
// solve, and such a round has verified every shard against the final doses.
constexpr double kOptimisticExitFactor = 20.0;

// Shards solve past the caller's tolerance so that cross-shard residuals
// (the halo doses a shard could not see moving) do not push the globally
// measured error back over it, and so the sharded dose field stays within
// the tolerance of the monolithic solve's in dose space. A single-shard
// layout has no such residual and keeps the exact tolerance — that
// degenerate case must stay bitwise-identical to the monolithic solve.
constexpr double kShardToleranceSlack = 0.5;

// The wire-format job for one shard of one round — the single description
// both execution paths consume (in-process via solve_shard_job directly,
// distributed via a pec_worker process that calls the same function).
// Active and ghost lists carry the published doses of the round snapshot.
wire::ShardJob make_job(const ShotList& shots, const Psf& psf,
                        const PecOptions& options, const ShardLayout& L,
                        std::size_t slot, const std::vector<double>& doses,
                        bool correct, double tol, bool allow_optimistic,
                        bool reset_all, bool pooled, std::uint64_t session_id) {
  const std::uint32_t* active = L.active_items.data() + L.active_start[slot];
  const std::size_t na = L.active_start[slot + 1] - L.active_start[slot];
  const std::uint32_t* ghosts = L.ghost_items.data() + L.ghost_start[slot];
  const std::size_t ng = L.ghost_start[slot + 1] - L.ghost_start[slot];

  wire::ShardJob job;
  job.session_id = session_id;
  job.shard_key = slot;  // slots are dense and stable for the whole session
  job.correct = correct;
  job.allow_optimistic = allow_optimistic;
  job.reset_all = reset_all;
  job.pooled = pooled;
  job.tolerance = tol;
  job.psf_terms.assign(psf.terms().begin(), psf.terms().end());
  job.options = options;
  job.active.reserve(na);
  for (std::size_t k = 0; k < na; ++k)
    job.active.push_back(Shot{shots[active[k]].shape, doses[active[k]]});
  job.ghosts.reserve(ng);
  for (std::size_t k = 0; k < ng; ++k)
    job.ghosts.push_back(Shot{shots[ghosts[k]].shape, doses[ghosts[k]]});
  return job;
}

// Folds one shard's result into the round state. Each slot writes only its
// own shots' doses/flags, so concurrent application over distinct slots is
// deterministic.
ShardOutcome apply_result(const ShardLayout& L, std::size_t slot,
                          const wire::ShardResult& r, std::vector<double>* next,
                          std::vector<std::uint8_t>* changed) {
  const std::uint32_t* active = L.active_items.data() + L.active_start[slot];
  const std::size_t na = L.active_start[slot + 1] - L.active_start[slot];
  ensures(r.doses.size() == na && r.changed.size() == na,
          "sharded: shard result size mismatch");
  ShardOutcome out;
  out.entry_error = r.entry_error;
  out.exit_error = r.exit_error;
  out.iterations = r.iterations;
  out.updated = r.updated;
  out.optimistic = r.optimistic;
  out.perf = r.perf;
  for (std::size_t k = 0; k < na; ++k) {
    if (next) (*next)[active[k]] = r.doses[k];
    if (changed && r.changed[k]) (*changed)[active[k]] = 1;
  }
  return out;
}

// One shard's solve for one round, executed in-process: job construction +
// the shared solver + result application. Kept as a thin composition so the
// in-process sweep and a remote worker run literally the same arithmetic.
ShardOutcome run_shard(const ShotList& shots, const Psf& psf,
                       const PecOptions& options, const ShardLayout& L,
                       std::size_t slot, const std::vector<double>& doses,
                       std::vector<double>* next, std::vector<std::uint8_t>* changed,
                       bool correct, double tol, bool allow_optimistic, bool reset_all,
                       std::unique_ptr<ExposureEvaluator>* pool_slot, bool pooled) {
  const wire::ShardJob job = make_job(shots, psf, options, L, slot, doses, correct,
                                      tol, allow_optimistic, reset_all, pooled, 0);
  const wire::ShardResult r = solve_shard_job(job, pool_slot);
  return apply_result(L, slot, r, next, changed);
}

// Density-formula warm start: every shot's initial dose from the closed-form
// equalization d(u) = (1 + 2 eta) / (1 + 2 eta u), with u the local
// backscatter-blurred pattern density computed per shard on a coarse raster
// over shard + halo (O(shard) memory, halo = kernel truncation, so the local
// density equals the global one to the same 1e-6 the halo scheme already
// accepts). Each shard writes only its own shots' doses, so the sweep is
// deterministic for any thread count.
void density_warm_start(const ShotList& shots, const Psf& psf,
                        const PecOptions& options, const ShardLayout& L,
                        std::vector<double>* doses) {
  const double eta = backscatter_eta(psf);
  const double max_sigma = psf.max_sigma();
  const Coord pixel = std::max<Coord>(1, static_cast<Coord>(max_sigma / 4.0));
  const Coord margin = static_cast<Coord>(std::ceil(4.0 * max_sigma));
  parallel_for(
      L.count,
      [&](std::size_t s0, std::size_t s1) {
        for (std::size_t slot = s0; slot < s1; ++slot) {
          const std::uint32_t* active = L.active_items.data() + L.active_start[slot];
          const std::size_t na = L.active_start[slot + 1] - L.active_start[slot];
          const std::uint32_t* ghosts = L.ghost_items.data() + L.ghost_start[slot];
          const std::size_t ng = L.ghost_start[slot + 1] - L.ghost_start[slot];
          Box frame;
          for (std::size_t k = 0; k < na; ++k)
            frame += shots[active[k]].shape.bbox();
          for (std::size_t k = 0; k < ng; ++k)
            frame += shots[ghosts[k]].shape.bbox();
          Raster density(frame.bloated(margin), pixel);
          for (std::size_t k = 0; k < na; ++k)
            density.add_coverage(shots[active[k]].shape, 1.0);
          for (std::size_t k = 0; k < ng; ++k)
            density.add_coverage(shots[ghosts[k]].shape, 1.0);
          gaussian_blur(density, max_sigma, options.exposure.blur_backend,
                        options.exposure.threads);
          for (std::size_t k = 0; k < na; ++k) {
            const Trapezoid& t = shots[active[k]].shape;
            const double cx = 0.25 * (double(t.xl0) + t.xr0 + t.xl1 + t.xr1);
            const double cy = 0.5 * (double(t.y0) + t.y1);
            const double u = std::clamp(density.sample(cx, cy), 0.0, 1.0);
            const double dose = (1.0 + 2.0 * eta) / (1.0 + 2.0 * eta * u);
            (*doses)[active[k]] =
                std::clamp(dose * options.target, options.min_dose, options.max_dose);
          }
        }
      },
      options.exposure.threads);
}

// One round sweep (or the final measurement pass) over the run set. The two
// implementations must be result-equivalent; the in-process one is the
// oracle the distributed one is pinned against (bitwise, see the tests).
struct SweepCtx {
  bool correct = true;
  double tol = 0.0;
  bool allow_optimistic = false;
  bool force_reset = false;  ///< post-quantization measurement: reset every shard
  int round = 0;             ///< recency stamp for the in-process pool
  const std::vector<std::uint8_t>* will_run = nullptr;
  const std::vector<std::uint8_t>* self_dirty = nullptr;
  const std::vector<double>* doses = nullptr;
  std::vector<double>* next = nullptr;            ///< null in measurement pass
  std::vector<std::uint8_t>* changed = nullptr;   ///< null in measurement pass
  std::vector<ShardOutcome>* outcomes = nullptr;  ///< ran slots only
};

class ShardRunner {
 public:
  virtual ~ShardRunner() = default;
  virtual void sweep(const SweepCtx& ctx) = 0;
  /// Fills the runner-specific PecResult fields (residency, evictions,
  /// workers) and performs orderly teardown. Called once, on success.
  virtual void finish(PecResult* result) = 0;
};

// The single-process execution path: shards of a sweep run concurrently on
// the thread pool, sharing a driver-side resident evaluator pool.
class InProcessRunner : public ShardRunner {
 public:
  InProcessRunner(const ShotList& shots, const Psf& psf, const PecOptions& options,
                  const ShardLayout& L)
      : shots_(shots), psf_(psf), options_(options), L_(L) {
    pooled_ = options.resident_shard_budget > 0;
    budget_ = pooled_ ? static_cast<std::size_t>(options.resident_shard_budget) : 0;
    pool_.resize(pooled_ ? L.count : 0);
    last_used_.assign(pooled_ ? L.count : 0, -1);
    grant_.assign(L.count, 0);
  }

  void sweep(const SweepCtx& ctx) override {
    const std::vector<std::uint8_t>& will_run = *ctx.will_run;
    const std::vector<std::uint8_t>& self_dirty = *ctx.self_dirty;
    plan_residency(will_run);
    parallel_for(
        L_.count,
        [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s) {
            if (!will_run[s]) continue;
            auto* slot = pooled_ && (pool_[s] || grant_[s]) ? &pool_[s] : nullptr;
            (*ctx.outcomes)[s] = run_shard(
                shots_, psf_, options_, L_, s, *ctx.doses, ctx.next, ctx.changed,
                ctx.correct, ctx.tol, ctx.allow_optimistic,
                /*reset_all=*/self_dirty[s] != 0 || ctx.force_reset, slot, pooled_);
          }
        },
        options_.exposure.threads);
    // Correction rounds stamp recency for the LRU planner; the measurement
    // pass does not (nothing re-enters after it).
    if (ctx.correct && pooled_) {
      for (std::size_t s = 0; s < L_.count; ++s) {
        if (will_run[s] && pool_[s]) last_used_[s] = ctx.round;
      }
    }
  }

  void finish(PecResult* result) override {
    if (pooled_) {
      for (const auto& p : pool_) result->resident_shards += p != nullptr;
    }
    result->shard_evictions = evictions_;
  }

 private:
  // Resident evaluator pool: one slot per shard, filled up to the budget.
  // Grants and evictions are planned serially before each sweep from the
  // sweep's deterministic run set, so the pool contents never depend on
  // thread scheduling — and since resident re-entry is exact (see
  // solve_shard_job), they could not change results even if they did.
  void plan_residency(const std::vector<std::uint8_t>& will_run) {
    if (!pooled_) return;
    const std::size_t ns = L_.count;
    std::fill(grant_.begin(), grant_.end(), 0);
    std::size_t resident = 0;
    for (std::size_t s = 0; s < ns; ++s) resident += pool_[s] != nullptr;
    for (std::size_t s = 0; s < ns; ++s) {
      if (!will_run[s] || pool_[s]) continue;
      if (resident < budget_) {
        grant_[s] = 1;
        ++resident;
        continue;
      }
      // Evict the least-recently-run resident that is idle this round
      // (ties: highest slot), then grant its place.
      std::size_t victim = ns;
      for (std::size_t v = 0; v < ns; ++v) {
        if (!pool_[v] || will_run[v]) continue;
        if (victim == ns || last_used_[v] < last_used_[victim] ||
            (last_used_[v] == last_used_[victim] && v > victim)) {
          victim = v;
        }
      }
      if (victim == ns) break;  // every resident runs this round: rest transient
      pool_[victim].reset();
      ++evictions_;
      grant_[s] = 1;
    }
  }

  const ShotList& shots_;
  const Psf& psf_;
  const PecOptions& options_;
  const ShardLayout& L_;
  bool pooled_ = false;
  std::size_t budget_ = 0;
  std::vector<std::unique_ptr<ExposureEvaluator>> pool_;
  std::vector<int> last_used_;
  std::vector<std::uint8_t> grant_;
  int evictions_ = 0;
};

// The multi-process execution path: a supervised pool of worker channels
// (pec/supervisor.h + pec/transport.h) — fork/exec pec_worker children
// framed over stdin/stdout, or, with options.worker_hosts set, TCP sessions
// on already-running `pec_worker --listen` daemons (PEC as a service).
// Shards stick to workers (slot mod W) so each worker's resident evaluator
// pool keeps hitting across halo-exchange rounds — the
// set_background_doses refresh protocol, spoken over the wire. The
// supervisor owns liveness: per-job deadlines, crash/disconnect detection,
// bounded restart/reconnect, reassignment of a failed worker's jobs within
// the round, and — when every slot is gone — finishing the round
// in-process. Recovery never changes a bit: every path replays the
// identical pure job (TCP replays deduplicated daemon-side by job seq), and
// results land in disjoint per-slot cells regardless of which worker (or no
// worker) produced them.
class DistributedRunner : public ShardRunner {
 public:
  DistributedRunner(const ShotList& shots, const Psf& psf, const PecOptions& options,
                    const ShardLayout& L)
      : shots_(shots), psf_(psf), options_(options), L_(L) {
    const bool tcp = !options.worker_hosts.empty();
    std::vector<net::HostPort> hosts;
    std::string path;
    if (tcp) {
      // One supervisor slot per daemon address (a daemon serves sessions
      // sequentially, so more slots than daemons would serialize, and
      // worker_count is ignored); clamped to the shard count like the pipe
      // pool is.
      for (std::size_t start = 0; start <= options.worker_hosts.size();) {
        const std::size_t comma = options.worker_hosts.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? options.worker_hosts.size() : comma;
        if (end > start)
          hosts.push_back(
              net::parse_host_port(options.worker_hosts.substr(start, end - start)));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (hosts.empty())
        throw DataError("sharded PEC: worker_hosts lists no addresses");
      workers_n_ = std::max(
          1, std::min<int>(static_cast<int>(hosts.size()), static_cast<int>(L.count)));
      hosts.resize(static_cast<std::size_t>(workers_n_));
    } else {
      workers_n_ = std::max(1, std::min<int>(options.worker_count,
                                             static_cast<int>(L.count)));
      path = options.worker_path.empty() ? default_pec_worker_path()
                                         : options.worker_path;
      if (::access(path.c_str(), X_OK) != 0)
        throw DataError("sharded PEC: pec_worker binary not executable: " + path);
    }

    // One driver process + N workers share the machine: each worker gets an
    // equal slice of the resolved thread budget (>= 1). Thread count never
    // changes results, only scheduling. (TCP daemons size their own threads;
    // this slice only governs the degraded in-process fallback's share.)
    wopt_ = options;
    wopt_.exposure.threads =
        std::max(1, resolve_threads(options.exposure.threads) / workers_n_);

    // Session tag: workers drop stale resident evaluators if a long-lived
    // worker ever sees jobs from two solves — which is exactly what a TCP
    // daemon is for, so the tag must be unique across driver processes. A
    // reconnecting transport re-sends the SAME tag, keeping the daemon's
    // pool warm across connection faults.
    static std::atomic<std::uint64_t> counter{0};
    session_ = (static_cast<std::uint64_t>(::getpid()) << 32) | ++counter;

    SupervisorConfig cfg;
    cfg.factory = tcp ? make_tcp_transport_factory(std::move(hosts), session_)
                      : make_pipe_transport_factory({path});
    cfg.sequence_jobs = tcp;
    cfg.workers = workers_n_;
    cfg.timeout_ms = options.worker_timeout_ms;
    cfg.max_restarts = options.worker_max_restarts;
    cfg.fallback_threads = options.exposure.threads;
    supervisor_ = std::make_unique<WorkerSupervisor>(std::move(cfg));
    worker_resident_.assign(static_cast<std::size_t>(workers_n_), 0);
    worker_evictions_.assign(static_cast<std::size_t>(workers_n_), 0);
  }

  ~DistributedRunner() override {
    // Error-path teardown; finish() already shut the pool down on success.
    if (supervisor_) supervisor_->terminate_all();
  }

  void sweep(const SweepCtx& ctx) override {
    const std::vector<std::uint8_t>& will_run = *ctx.will_run;
    const std::vector<std::uint8_t>& self_dirty = *ctx.self_dirty;
    std::vector<std::size_t> slots;
    for (std::size_t s = 0; s < L_.count; ++s)
      if (will_run[s]) slots.push_back(s);
    if (slots.empty()) return;

    supervisor_->run_batch(
        slots.size(),
        // Sticky deterministic assignment: shard slot -> worker slot % W
        // (the supervisor redeals jobs of dead slots).
        [&](std::size_t i) { return slots[i]; },
        // Jobs are pure functions of the round-start snapshot, so a retry
        // rebuilds the identical bytes — which is why recovery is bitwise
        // invisible.
        [&](std::size_t i) {
          const std::size_t s = slots[i];
          return make_job(shots_, psf_, wopt_, L_, s, *ctx.doses, ctx.correct,
                          ctx.tol, ctx.allow_optimistic,
                          /*reset_all=*/self_dirty[s] != 0 || ctx.force_reset,
                          wopt_.resident_shard_budget > 0, session_);
        },
        // Results apply into per-slot cells (disjoint across concurrent
        // readers, so no synchronization). A wrong-shard result throws,
        // which the supervisor treats as a worker fault.
        [&](std::size_t i, int w, const wire::ShardResult& r) {
          const std::size_t s = slots[i];
          if (r.shard_key != s)
            throw DataError("sharded PEC: result for the wrong shard");
          (*ctx.outcomes)[s] = apply_result(L_, s, r, ctx.next, ctx.changed);
          if (w >= 0) {
            worker_resident_[static_cast<std::size_t>(w)] = r.pool_resident;
            worker_evictions_[static_cast<std::size_t>(w)] = r.pool_evictions;
          }
        });
  }

  void finish(PecResult* result) override {
    result->workers = workers_n_;
    for (const std::uint32_t r : worker_resident_)
      result->resident_shards += static_cast<int>(r);
    for (const std::uint32_t e : worker_evictions_)
      result->shard_evictions += static_cast<int>(e);
    const SupervisorStats& st = supervisor_->stats();
    result->worker_restarts = st.restarts;
    result->reassigned_jobs = st.reassigned_jobs;
    result->degraded_to_inprocess = st.degraded_to_inprocess;
    // Orderly shutdown. Every applied result was CRC-verified on arrival, so
    // a worker that exits dirty *after* its last result is a diagnostic (the
    // supervisor logs it), not a reason to fail a finished solve.
    supervisor_->shutdown();
    supervisor_.reset();
  }

 private:
  const ShotList& shots_;
  const Psf& psf_;
  const PecOptions& options_;
  const ShardLayout& L_;
  PecOptions wopt_;  ///< options as sent to workers (per-worker threads)
  int workers_n_ = 0;
  std::uint64_t session_ = 0;
  std::unique_ptr<WorkerSupervisor> supervisor_;
  std::vector<std::uint32_t> worker_resident_;
  std::vector<std::uint32_t> worker_evictions_;
};

// True when any *ghost* dose the shard sees carries a change flag from the
// previous round. Own-dose changes never dirty a shard: only the shard
// itself writes them, and its exit error was measured after its last write.
// Clean shards skip the round — nothing they evaluate against moved, so the
// stored error is still exact — which is what makes late exchange rounds
// cost only the remaining boundary activity.
bool ghosts_dirty(const ShardLayout& L, std::size_t slot,
                  const std::vector<std::uint8_t>& flags) {
  for (std::uint32_t k = L.ghost_start[slot]; k < L.ghost_start[slot + 1]; ++k)
    if (flags[L.ghost_items[k]]) return true;
  return false;
}

}  // namespace

wire::ShardResult solve_shard_job(const wire::ShardJob& job,
                                  std::unique_ptr<ExposureEvaluator>* pool_slot) {
  const auto t0 = std::chrono::steady_clock::now();
  const Psf psf = Psf::from_terms(job.psf_terms);
  const PecOptions& options = job.options;
  const std::size_t na = job.active.size();
  const std::size_t ng = job.ghosts.size();
  expects(na > 0, "solve_shard_job: shard without active shots");

  ExposureEvaluator* eval = nullptr;
  std::unique_ptr<ExposureEvaluator> transient;
  BlurPerf perf0;
  if (pool_slot && *pool_slot) {
    // Resident re-entry: reuse the geometry caches, reset the dose state
    // exactly. Ghost doses always come in fresh; the shard's own doses are
    // re-applied too when they are not known to match the evaluator
    // (optimistic exit last round, or post-quantization measurement).
    eval = pool_slot->get();
    perf0 = eval->blur_perf();
    if (job.reset_all) {
      std::vector<double> all(na + ng);
      for (std::size_t k = 0; k < na; ++k) all[k] = job.active[k].dose;
      for (std::size_t k = 0; k < ng; ++k) all[na + k] = job.ghosts[k].dose;
      eval->reset_doses(all);
    } else {
      std::vector<double> bg(ng);
      for (std::size_t k = 0; k < ng; ++k) bg[k] = job.ghosts[k].dose;
      eval->set_background_doses(bg);
    }
  } else {
    ShotList local;
    local.reserve(na + ng);
    local.insert(local.end(), job.active.begin(), job.active.end());
    local.insert(local.end(), job.ghosts.begin(), job.ghosts.end());
    // Centroid queries never leave the shard bbox, so the local long-range
    // map drops its off-pattern sampling margin — on small shards the dead
    // border would otherwise rival the shard itself. Without the resident
    // pool, measurement-only runs also skip the splat cache (one direct
    // rasterization instead of a cache that would never be re-weighted);
    // with it they keep the cache so a pooled and an unpooled measurement
    // run the same arithmetic.
    ExposureOptions eopt = options.exposure;
    eopt.map_margin_sigmas = 0.0;
    if (!job.correct && !job.pooled) eopt.splat_cache = false;
    transient = std::make_unique<ExposureEvaluator>(std::move(local), na, psf, eopt);
    eval = transient.get();
    if (pool_slot) *pool_slot = std::move(transient);  // granted residency
  }

  std::vector<double> d(na);
  for (std::size_t k = 0; k < na; ++k) d[k] = job.active[k].dose;

  const bool delta_mode = options.exposure.delta_threshold > 0;
  wire::ShardResult out;
  out.shard_key = job.shard_key;
  for (int iter = 0;; ++iter) {
    const std::vector<double> e = eval->exposures_at_centroids();
    double max_err = 0.0;
    for (double ei : e) max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
    if (iter == 0) out.entry_error = max_err;
    out.exit_error = max_err;
    if (max_err < job.tolerance || !job.correct || iter >= options.max_iterations)
      break;
    const double update_tol =
        jacobi_update_tolerance(delta_mode, job.tolerance, max_err);
    for (std::size_t k = 0; k < na; ++k) {
      d[k] = jacobi_updated_dose(d[k], e[k], update_tol, options);
    }
    out.iterations = iter + 1;
    if (job.allow_optimistic && job.tolerance > 0 &&
        max_err <= kOptimisticExitFactor * job.tolerance) {
      out.optimistic = true;
      break;
    }
    eval->set_active_doses(d);
  }
  // Exact per-shot change flags: a clamped dose can survive an update step
  // unchanged, and only real changes should dirty the neighbors. Published
  // doses are the evaluator's applied ones (see the function comment) so a
  // resident evaluator re-entering through set_background_doses is exactly
  // at the published state.
  out.doses.resize(na);
  out.changed.assign(na, 0);
  for (std::size_t k = 0; k < na; ++k) {
    const double dk = out.optimistic ? d[k] : eval->shots()[k].dose;
    out.doses[k] = dk;
    if (dk != job.active[k].dose) {
      out.updated = true;
      out.changed[k] = 1;
    }
  }
  out.perf = perf_since(eval->blur_perf(), perf0);
  out.solve_ms = ms_since(t0);
  return out;
}

std::string default_pec_worker_path() {
  if (const char* env = std::getenv("EBL_PEC_WORKER"); env && env[0] != '\0')
    return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    const std::string self(buf);
    const std::size_t slash = self.rfind('/');
    if (slash != std::string::npos)
      return self.substr(0, slash + 1) + "pec_worker";
  }
  return "pec_worker";  // fall back to PATH resolution
}

Coord default_shard_size(const Psf& psf) {
  return std::max<Coord>(1, static_cast<Coord>(64.0 * psf.max_sigma()));
}

Coord default_shard_size(const Psf& psf, const PecOptions& options) {
  const Coord base = default_shard_size(psf);
  double sigma_min_long = 0.0;
  for (const PsfTerm& t : psf.terms()) {
    if (t.sigma >= options.exposure.long_range_threshold &&
        (sigma_min_long == 0.0 || t.sigma < sigma_min_long)) {
      sigma_min_long = t.sigma;
    }
  }
  if (sigma_min_long == 0.0) return base;  // all-short PSF: nothing to pad

  // Reproduce the evaluator's map sizing: pixel from the finest long term,
  // kernel radius from the widest, margin-0 maps (2 px each side), plus
  // slack for shot bboxes overhanging the shard + halo frame. The FFT pads
  // to the next power of two past map + radius; size the shard so an
  // interior shard's map fills that grid instead of wasting up to 4x the
  // padded area on it.
  const Coord pixel = std::max<Coord>(
      1, static_cast<Coord>(sigma_min_long / options.exposure.pixels_per_sigma));
  const int radius = std::max(
      1, static_cast<int>(std::ceil(4.0 * psf.max_sigma() / double(pixel))));
  const Coord64 halo =
      static_cast<Coord64>(std::ceil(options.halo_factor * psf.max_sigma()));
  constexpr Coord64 kSlackPx = 48;  // sampling margin + shot-overhang allowance
  const double base_side =
      double(base + 2 * halo) / double(pixel) + double(radius) + double(kSlackPx);
  // Keep the pow2 growth policy even though the mixed-radix planner accepts
  // any even 5-smooth size: shrinking shards to the nearest fast size yields
  // more shards, and the extra per-shard refresh/halo overhead costs more
  // than the snugger transforms save. A power of two is itself 5-smooth, so
  // the plan stays snug on this grid.
  std::size_t padded = fft_next_pow2(static_cast<std::size_t>(std::ceil(base_side)));
  for (;;) {
    const Coord64 snug =
        (Coord64(padded) - radius - kSlackPx) * pixel - 2 * halo;
    if (snug >= base) return static_cast<Coord>(std::min<Coord64>(snug, 2000000000));
    padded *= 2;
  }
}

PecResult correct_proximity_sharded(const ShotList& shots, const Psf& psf,
                                    const PecOptions& options) {
  expects(!shots.empty(), "correct_proximity_sharded: empty shot list");
  expects(options.shard_size > 0, "correct_proximity_sharded: shard_size must be > 0");
  expects(options.target > 0, "correct_proximity_sharded: target must be positive");
  expects(options.max_iterations > 0,
          "correct_proximity_sharded: need >= 1 iteration");
  expects(options.halo_factor >= 0,
          "correct_proximity_sharded: halo_factor must be >= 0");

  const ShardLayout L = build_layout(shots, options.shard_size,
                                     options.halo_factor * psf.max_sigma(),
                                     options.exposure.threads);
  const std::size_t ns = L.count;

  std::vector<double> doses(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) doses[i] = shots[i].dose;

  // Warm start (multi-shard only: the single-shard degenerate case is the
  // bitwise reference against the monolithic solve, and has no frozen halos
  // for the warm start to stabilize).
  if (options.density_warm_start && ns > 1) {
    density_warm_start(shots, psf, options, L, &doses);
  }
  std::vector<double> next = doses;

  PecResult result;
  result.shards = static_cast<int>(ns);

  // Execution backend: the thread pool, or (worker_count > 0) a pool of
  // pec_worker processes speaking the wire format. Both run solve_shard_job
  // on identical jobs, so the choice cannot change a bit of the result.
  std::unique_ptr<ShardRunner> runner;
  if (options.worker_count > 0 || !options.worker_hosts.empty()) {
    runner = std::make_unique<DistributedRunner>(shots, psf, options, L);
  } else {
    runner = std::make_unique<InProcessRunner>(shots, psf, options, L);
  }

  // Correction rounds: every shard solves against the round-start snapshot
  // (Jacobi across shards, so the outcome is independent of execution
  // order), then the snapshot advances. Each outcome lands in its own slot,
  // so the concurrent sweep is deterministic for any thread or worker
  // count. Rounds after the first are lazy: a shard re-runs only if one of
  // its ghost doses changed in the previous round (see ghosts_dirty) or its
  // own last update went unverified (optimistic exit), so late rounds cost
  // what the remaining boundary activity costs, not a full re-solve.
  std::vector<ShardOutcome> outcomes(ns);
  std::vector<double> exit_err(ns, 0.0);
  std::vector<std::uint8_t> changed_prev(shots.size(), 1);
  std::vector<std::uint8_t> changed_cur(shots.size(), 0);
  std::vector<std::uint8_t> will_run(ns, 0);
  std::vector<std::uint8_t> self_dirty(ns, 0);
  const double shard_tol =
      ns > 1 ? kShardToleranceSlack * options.tolerance : options.tolerance;
  const int max_rounds = 1 + std::max(0, options.exchange_rounds);
  bool settled = false;  // a round ran and changed nothing
  int total_iterations = 0;
  for (int round = 0; round < max_rounds; ++round) {
    const auto round_t0 = std::chrono::steady_clock::now();
    next = doses;  // skipped shards keep their slots verbatim
    std::fill(changed_cur.begin(), changed_cur.end(), 0);
    for (std::size_t s = 0; s < ns; ++s) {
      will_run[s] =
          round == 0 || self_dirty[s] || ghosts_dirty(L, s, changed_prev);
      if (!will_run[s])
        outcomes[s] = ShardOutcome{exit_err[s], exit_err[s], 0, false, false, {}};
    }
    SweepCtx ctx;
    ctx.correct = true;
    ctx.tol = shard_tol;
    // Optimistic exits are only worth taking while a later round (or the
    // measurement pass) is there to verify them.
    ctx.allow_optimistic = ns > 1;
    ctx.round = round;
    ctx.will_run = &will_run;
    ctx.self_dirty = &self_dirty;
    ctx.doses = &doses;
    ctx.next = &next;
    ctx.changed = &changed_cur;
    ctx.outcomes = &outcomes;
    runner->sweep(ctx);
    std::swap(doses, next);  // publish: halos see fresh doses next round
    std::swap(changed_prev, changed_cur);
    result.rounds = round + 1;

    double round_err = 0.0;
    int round_iters = 0;
    bool any_update = false;
    for (std::size_t s = 0; s < ns; ++s) {
      const ShardOutcome& o = outcomes[s];
      round_err = std::max(round_err, o.entry_error);
      round_iters = std::max(round_iters, o.iterations);
      any_update |= o.updated;
      if (will_run[s]) {
        exit_err[s] = o.exit_error;
        self_dirty[s] = o.optimistic ? 1 : 0;
      }
      result.blur.merge(o.perf);
    }
    result.max_error_history.push_back(round_err);
    total_iterations += round_iters;
    result.round_ms.push_back(ms_since(round_t0));
    if (!any_update) {
      // Every shard met tolerance against its neighbors' published doses
      // without moving: cross-shard convergence is certified.
      settled = true;
      break;
    }
    if (ns == 1) break;  // no cross-shard coupling: one pass is the full solve
  }
  result.iterations = total_iterations;

  result.shots = shots;
  for (std::size_t i = 0; i < shots.size(); ++i) result.shots[i].dose = doses[i];
  bool doses_moved = false;
  if (options.dose_classes > 0) {
    quantize_doses(result.shots, options.dose_classes);
    for (std::size_t i = 0; i < shots.size(); ++i) {
      doses_moved |= result.shots[i].dose != doses[i];
      doses[i] = result.shots[i].dose;
    }
  }

  if (settled && !doses_moved) {
    // The last round measured every shard at the final doses already.
    result.final_max_error = result.max_error_history.back();
  } else {
    // Measurement-only pass with the delivered doses everywhere, halos
    // included — comparable to the global corrector's final error up to the
    // halo truncation. Shards whose visible doses did not change since their
    // last (verified) evaluation reuse that still-exact error; quantization
    // moves doses globally and forces a full re-measure.
    const auto measure_t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < ns; ++s) {
      will_run[s] = doses_moved || self_dirty[s] || ghosts_dirty(L, s, changed_prev);
      if (!will_run[s])
        outcomes[s] = ShardOutcome{exit_err[s], exit_err[s], 0, false, false, {}};
    }
    SweepCtx ctx;
    ctx.correct = false;
    ctx.tol = shard_tol;
    ctx.allow_optimistic = false;
    ctx.force_reset = doses_moved;
    ctx.round = result.rounds;
    ctx.will_run = &will_run;
    ctx.self_dirty = &self_dirty;
    ctx.doses = &doses;
    ctx.next = nullptr;
    ctx.changed = nullptr;
    ctx.outcomes = &outcomes;
    runner->sweep(ctx);
    double final_err = 0.0;
    for (std::size_t s = 0; s < ns; ++s) {
      final_err = std::max(final_err, outcomes[s].entry_error);
      result.blur.merge(outcomes[s].perf);
    }
    result.final_max_error = final_err;
    result.max_error_history.push_back(final_err);
    result.measure_ms = ms_since(measure_t0);
  }
  runner->finish(&result);
  return result;
}

PecResult correct_proximity_distributed(const ShotList& shots, const Psf& psf,
                                        const PecOptions& options) {
  expects(options.worker_count > 0 || !options.worker_hosts.empty(),
          "correct_proximity_distributed: need worker_count > 0 or "
          "worker_hosts");
  PecOptions opt = options;
  if (opt.shard_size == 0) opt.shard_size = default_shard_size(psf, opt);
  return correct_proximity_sharded(shots, psf, opt);
}

}  // namespace ebl
