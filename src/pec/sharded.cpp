#include "pec/sharded.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "pec/exposure.h"
#include "util/contracts.h"
#include "util/gridkeys.h"
#include "util/parallel.h"

namespace ebl {
namespace {

Coord64 div_floor(Coord64 a, Coord64 b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

// Shard indices are relative to the pattern bbox corner — the packed-key /
// occupied-slot machinery is util/gridkeys.h, shared with the field
// partitioner. Only occupied shards (>= 1 owned shot) materialize, so
// sparse giant extents never allocate a dense shard grid.
struct ShardLayout {
  Box bbox;
  Coord shard = 0;
  Coord64 halo = 0;
  std::size_t count = 0;  ///< occupied shards
  // CSR shard -> owned shot indices (ascending within a shard) and
  // shard -> halo ghost indices, both filled in shot-index order so every
  // list is deterministic.
  std::vector<std::uint32_t> active_start, active_items;
  std::vector<std::uint32_t> ghost_start, ghost_items;
};

ShardLayout build_layout(const ShotList& shots, Coord shard, double halo_dbu,
                         int threads) {
  ShardLayout L;
  L.shard = shard;
  L.halo = static_cast<Coord64>(std::ceil(halo_dbu));
  for (const Shot& s : shots) L.bbox += s.shape.bbox();
  const Coord64 nsx = L.bbox.width() / shard + 1;
  const Coord64 nsy = L.bbox.height() / shard + 1;

  // Owner shard of every shot: the shard containing its bbox center (center
  // coordinates never leave the bbox, so relative indices are >= 0).
  const std::size_t n = shots.size();
  std::vector<std::uint64_t> owner(n);
  parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          const Box sb = shots[i].shape.bbox();
          const Coord64 cx = (Coord64(sb.lo.x) + sb.hi.x) / 2;
          const Coord64 cy = (Coord64(sb.lo.y) + sb.hi.y) / 2;
          owner[i] =
              pack_grid_key((cx - L.bbox.lo.x) / shard, (cy - L.bbox.lo.y) / shard);
        }
      },
      threads);

  const GridKeySlots slots(owner);
  const std::size_t ns = slots.size();
  L.count = ns;

  // Each owner key resolves to its slot once; the CSR count and fill passes
  // run on the resolved slots, in shot-index order.
  std::vector<std::uint32_t> owner_slot(n);
  parallel_for(
      n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
          owner_slot[i] = static_cast<std::uint32_t>(slots.slot_of(owner[i]));
      },
      threads);

  L.active_start.assign(ns + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++L.active_start[owner_slot[i] + 1];
  for (std::size_t s = 1; s <= ns; ++s) L.active_start[s] += L.active_start[s - 1];
  L.active_items.resize(n);
  {
    std::vector<std::uint32_t> cursor(L.active_start.begin(), L.active_start.end() - 1);
    for (std::uint32_t i = 0; i < n; ++i) L.active_items[cursor[owner_slot[i]]++] = i;
  }

  // Ghost incidences: a shot joins every *other* occupied shard whose frame
  // its halo-bloated bbox overlaps. One pass over the geometry collects
  // (slot, shot) pairs — interior shots (bloated bbox inside the owner
  // shard) take the early-out, boundary shots touch at most a handful of
  // neighbor shards — then a count/prefix/fill turns them into the CSR.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ghost_inc;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Box sb = shots[i].shape.bbox();
    const Coord64 sx0 = std::clamp<Coord64>(
        div_floor(Coord64(sb.lo.x) - L.halo - L.bbox.lo.x, shard), 0, nsx - 1);
    const Coord64 sx1 = std::clamp<Coord64>(
        div_floor(Coord64(sb.hi.x) + L.halo - L.bbox.lo.x, shard), 0, nsx - 1);
    const Coord64 sy0 = std::clamp<Coord64>(
        div_floor(Coord64(sb.lo.y) - L.halo - L.bbox.lo.y, shard), 0, nsy - 1);
    const Coord64 sy1 = std::clamp<Coord64>(
        div_floor(Coord64(sb.hi.y) + L.halo - L.bbox.lo.y, shard), 0, nsy - 1);
    if (sx0 == sx1 && sy0 == sy1) continue;  // interior: owner shard only
    for (Coord64 sy = sy0; sy <= sy1; ++sy) {
      for (Coord64 sx = sx0; sx <= sx1; ++sx) {
        const std::uint64_t key = pack_grid_key(sx, sy);
        if (key == owner[i]) continue;
        const std::size_t slot = slots.slot_of(key);
        if (slot < ns)
          ghost_inc.emplace_back(static_cast<std::uint32_t>(slot), i);
      }
    }
  }
  L.ghost_start.assign(ns + 1, 0);
  for (const auto& [slot, shot] : ghost_inc) ++L.ghost_start[slot + 1];
  for (std::size_t s = 1; s <= ns; ++s) L.ghost_start[s] += L.ghost_start[s - 1];
  L.ghost_items.resize(ghost_inc.size());
  {
    std::vector<std::uint32_t> cursor(L.ghost_start.begin(), L.ghost_start.end() - 1);
    for (const auto& [slot, shot] : ghost_inc) L.ghost_items[cursor[slot]++] = shot;
  }
  return L;
}

struct ShardOutcome {
  double entry_error = 0.0;  ///< max error at round entry (fresh ghost doses)
  double exit_error = 0.0;   ///< max error at the last evaluation of the run
  int iterations = 0;        ///< Jacobi update steps run this round
  bool updated = false;      ///< any dose actually changed this round
};

// One shard's solve for one round: build the local evaluator (owned shots
// active, ghosts background at their published doses), run the same Jacobi
// update the global corrector uses, and write the new doses to *next. With
// correct == false only the entry error is measured (the verification
// pass). The evaluator lives for the duration of the call, so memory in
// flight is O(concurrent shards * shard size).
ShardOutcome run_shard(const ShotList& shots, const Psf& psf,
                       const PecOptions& options, const ShardLayout& L,
                       std::size_t slot, const std::vector<double>& doses,
                       std::vector<double>* next, std::vector<std::uint8_t>* changed,
                       bool correct) {
  const std::uint32_t* active = L.active_items.data() + L.active_start[slot];
  const std::size_t na = L.active_start[slot + 1] - L.active_start[slot];
  const std::uint32_t* ghosts = L.ghost_items.data() + L.ghost_start[slot];
  const std::size_t ng = L.ghost_start[slot + 1] - L.ghost_start[slot];

  ShotList local;
  local.reserve(na + ng);
  for (std::size_t k = 0; k < na; ++k)
    local.push_back(Shot{shots[active[k]].shape, doses[active[k]]});
  for (std::size_t k = 0; k < ng; ++k)
    local.push_back(Shot{shots[ghosts[k]].shape, doses[ghosts[k]]});
  // Centroid queries never leave the shard bbox, so the local long-range map
  // drops its off-pattern sampling margin — on small shards the dead border
  // would otherwise rival the shard itself. Measurement-only runs sweep the
  // centroids exactly once, so they also skip the splat cache (one direct
  // rasterization instead of a cache build that would never be re-weighted).
  ExposureOptions eopt = options.exposure;
  eopt.map_margin_sigmas = 0.0;
  if (!correct) eopt.splat_cache = false;
  ExposureEvaluator eval(std::move(local), na, psf, eopt);

  std::vector<double> d(na);
  for (std::size_t k = 0; k < na; ++k) d[k] = doses[active[k]];

  ShardOutcome out;
  for (int iter = 0;; ++iter) {
    const std::vector<double> e = eval.exposures_at_centroids();
    double max_err = 0.0;
    for (double ei : e) max_err = std::max(max_err, std::abs(ei / options.target - 1.0));
    if (iter == 0) out.entry_error = max_err;
    out.exit_error = max_err;
    if (max_err < options.tolerance || !correct || iter >= options.max_iterations)
      break;
    for (std::size_t k = 0; k < na; ++k) {
      const double ratio = options.target / std::max(e[k], 1e-9);
      d[k] = std::clamp(d[k] * std::pow(ratio, options.damping), options.min_dose,
                        options.max_dose);
    }
    out.iterations = iter + 1;
    eval.set_active_doses(d);
  }
  // Exact per-shot change flags: a clamped dose can survive an update step
  // unchanged, and only real changes should dirty the neighbors.
  for (std::size_t k = 0; k < na; ++k) {
    const bool moved = d[k] != doses[active[k]];
    out.updated |= moved;
    if (next) (*next)[active[k]] = d[k];
    if (changed && moved) (*changed)[active[k]] = 1;
  }
  return out;
}

// True when any *ghost* dose the shard sees carries a change flag from the
// previous round. Own-dose changes never dirty a shard: only the shard
// itself writes them, and its exit error was measured after its last write.
// Clean shards skip the round — nothing they evaluate against moved, so the
// stored error is still exact — which is what makes late exchange rounds
// cost only the remaining boundary activity.
bool ghosts_dirty(const ShardLayout& L, std::size_t slot,
                  const std::vector<std::uint8_t>& flags) {
  for (std::uint32_t k = L.ghost_start[slot]; k < L.ghost_start[slot + 1]; ++k)
    if (flags[L.ghost_items[k]]) return true;
  return false;
}

}  // namespace

Coord default_shard_size(const Psf& psf) {
  return std::max<Coord>(1, static_cast<Coord>(64.0 * psf.max_sigma()));
}

PecResult correct_proximity_sharded(const ShotList& shots, const Psf& psf,
                                    const PecOptions& options) {
  expects(!shots.empty(), "correct_proximity_sharded: empty shot list");
  expects(options.shard_size > 0, "correct_proximity_sharded: shard_size must be > 0");
  expects(options.target > 0, "correct_proximity_sharded: target must be positive");
  expects(options.max_iterations > 0,
          "correct_proximity_sharded: need >= 1 iteration");
  expects(options.halo_factor >= 0,
          "correct_proximity_sharded: halo_factor must be >= 0");

  const ShardLayout L = build_layout(shots, options.shard_size,
                                     options.halo_factor * psf.max_sigma(),
                                     options.exposure.threads);
  const std::size_t ns = L.count;

  std::vector<double> doses(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) doses[i] = shots[i].dose;
  std::vector<double> next = doses;

  PecResult result;
  result.shards = static_cast<int>(ns);

  // Correction rounds: every shard solves against the round-start snapshot
  // (Jacobi across shards, so the outcome is independent of execution
  // order), then the snapshot advances. Each outcome lands in its own slot,
  // so the parallel sweep is deterministic for any thread count. Rounds
  // after the first are lazy: a shard re-runs only if one of its ghost
  // doses changed in the previous round (see ghosts_dirty), so late rounds
  // cost what the remaining boundary activity costs, not a full re-solve.
  std::vector<ShardOutcome> outcomes(ns);
  std::vector<double> exit_err(ns, 0.0);
  std::vector<std::uint8_t> changed_prev(shots.size(), 1);
  std::vector<std::uint8_t> changed_cur(shots.size(), 0);
  const int max_rounds = 1 + std::max(0, options.exchange_rounds);
  bool settled = false;  // a round ran and changed nothing
  int total_iterations = 0;
  for (int round = 0; round < max_rounds; ++round) {
    next = doses;  // skipped shards keep their slots verbatim
    std::fill(changed_cur.begin(), changed_cur.end(), 0);
    parallel_for(
        ns,
        [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s) {
            if (round > 0 && !ghosts_dirty(L, s, changed_prev)) {
              outcomes[s] = ShardOutcome{exit_err[s], exit_err[s], 0, false};
              continue;
            }
            outcomes[s] =
                run_shard(shots, psf, options, L, s, doses, &next, &changed_cur, true);
            exit_err[s] = outcomes[s].exit_error;
          }
        },
        options.exposure.threads);
    std::swap(doses, next);  // publish: halos see fresh doses next round
    std::swap(changed_prev, changed_cur);
    result.rounds = round + 1;

    double round_err = 0.0;
    int round_iters = 0;
    bool any_update = false;
    for (const ShardOutcome& o : outcomes) {
      round_err = std::max(round_err, o.entry_error);
      round_iters = std::max(round_iters, o.iterations);
      any_update |= o.updated;
    }
    result.max_error_history.push_back(round_err);
    total_iterations += round_iters;
    if (!any_update) {
      // Every shard met tolerance against its neighbors' published doses
      // without moving: cross-shard convergence is certified.
      settled = true;
      break;
    }
    if (ns == 1) break;  // no cross-shard coupling: one pass is the full solve
  }
  result.iterations = total_iterations;

  result.shots = shots;
  for (std::size_t i = 0; i < shots.size(); ++i) result.shots[i].dose = doses[i];
  bool doses_moved = false;
  if (options.dose_classes > 0) {
    quantize_doses(result.shots, options.dose_classes);
    for (std::size_t i = 0; i < shots.size(); ++i) {
      doses_moved |= result.shots[i].dose != doses[i];
      doses[i] = result.shots[i].dose;
    }
  }

  if (settled && !doses_moved) {
    // The last round measured every shard at the final doses already.
    result.final_max_error = result.max_error_history.back();
  } else {
    // Measurement-only pass with the delivered doses everywhere, halos
    // included — comparable to the global corrector's final error up to the
    // halo truncation. Shards whose visible doses did not change since their
    // last evaluation reuse that (still exact) error; quantization moves
    // doses globally and forces a full re-measure.
    parallel_for(
        ns,
        [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s) {
            if (!doses_moved && !ghosts_dirty(L, s, changed_prev)) {
              outcomes[s] = ShardOutcome{exit_err[s], exit_err[s], 0, false};
              continue;
            }
            outcomes[s] =
                run_shard(shots, psf, options, L, s, doses, nullptr, nullptr, false);
          }
        },
        options.exposure.threads);
    double final_err = 0.0;
    for (const ShardOutcome& o : outcomes)
      final_err = std::max(final_err, o.entry_error);
    result.final_max_error = final_err;
    result.max_error_history.push_back(final_err);
  }
  return result;
}

}  // namespace ebl
