// Sharded proximity-effect correction: tile the pattern, correct per shard,
// exchange halos.
//
// The monolithic corrector (correct_proximity with shard_size == 0) holds
// the whole pattern in one evaluator — one neighbor grid, one splat cache,
// one long-range map — so memory and wall-clock are O(whole pattern). The
// 1979 machines never worked that way: large patterns are written as a grid
// of deflection fields with stage moves between them, and correction can be
// tiled the same way.
//
// The sharded pipeline partitions shots into square shards (side =
// PecOptions::shard_size, anchored at the pattern bbox corner, keyed by
// 64-bit shard indices so >2^31-dbu extents are fine). Each shard owns the
// shots whose bbox center falls inside its frame and additionally sees a
// *halo* of ghost shots from neighboring shards — every shot within
// halo_factor * max_sigma of the frame. A shard solve is the ordinary
// iterative Jacobi correction over its own shots with the ghosts
// contributing exposure at frozen doses (the evaluator's active/background
// split); per-shard memory is O(shard + halo), so patterns far beyond the
// global evaluator's reach fit.
//
// Shards run concurrently on the thread pool. Cross-shard coupling — a
// shard's correction changes the backscatter its neighbors see — is driven
// below tolerance by a small number of halo-exchange rounds: after every
// shard corrected, boundary doses are re-published and each shard re-checks
// (and, if needed, re-corrects) against the neighbors' fresh values. Rounds
// after the first start from near-converged doses and typically exit after
// one error check; a round in which no shard changed any dose certifies that
// every shard meets tolerance with its neighbors' *final* doses, and the
// loop stops early. Results are bit-identical for any thread count: each
// shard writes only its own shots' doses, and all shards of a round read the
// same published snapshot.
#pragma once

#include "pec/correction.h"

namespace ebl {

/// A good shard side for a PSF: 64x the widest sigma. Large enough that the
/// halo (4 sigma on each side) stays a modest fraction of the shard, small
/// enough that tens of shards exist on mm-scale patterns for the concurrent
/// solve to spread across cores.
Coord default_shard_size(const Psf& psf);

/// FFT-snug refinement of the default: the per-shard blur pads its map to
/// the next power of two past map + kernel radius, so a shard sized just
/// under that boundary blurs no faster than one that fills it — the padding
/// is pure waste. This overload grows the 64-sigma default until the
/// resulting long-range map (shard + halos + sampling margin + kernel
/// support, at the options' pixel) lands just inside its power-of-two grid:
/// fewer shards, each amortizing the same padded transform, with the halo a
/// smaller fraction of each. Falls back to the plain default for all-short
/// PSFs (no long-range map to pad).
Coord default_shard_size(const Psf& psf, const PecOptions& options);

/// Sharded iterative correction (see the file comment). Requires
/// options.shard_size > 0; correct_proximity forwards here when it is.
/// The returned final_max_error is measured with every shard's *final*
/// doses in the halos, so it is comparable to the global corrector's figure
/// up to the halo truncation (< 1e-6 of a term weight at halo_factor = 4).
PecResult correct_proximity_sharded(const ShotList& shots, const Psf& psf,
                                    const PecOptions& options);

}  // namespace ebl
