// Sharded proximity-effect correction: tile the pattern, correct per shard,
// exchange halos.
//
// The monolithic corrector (correct_proximity with shard_size == 0) holds
// the whole pattern in one evaluator — one neighbor grid, one splat cache,
// one long-range map — so memory and wall-clock are O(whole pattern). The
// 1979 machines never worked that way: large patterns are written as a grid
// of deflection fields with stage moves between them, and correction can be
// tiled the same way.
//
// The sharded pipeline partitions shots into square shards (side =
// PecOptions::shard_size, anchored at the pattern bbox corner, keyed by
// 64-bit shard indices so >2^31-dbu extents are fine). Each shard owns the
// shots whose bbox center falls inside its frame and additionally sees a
// *halo* of ghost shots from neighboring shards — every shot within
// halo_factor * max_sigma of the frame. A shard solve is the ordinary
// iterative Jacobi correction over its own shots with the ghosts
// contributing exposure at frozen doses (the evaluator's active/background
// split); per-shard memory is O(shard + halo), so patterns far beyond the
// global evaluator's reach fit.
//
// Shards run concurrently on the thread pool. Cross-shard coupling — a
// shard's correction changes the backscatter its neighbors see — is driven
// below tolerance by a small number of halo-exchange rounds: after every
// shard corrected, boundary doses are re-published and each shard re-checks
// (and, if needed, re-corrects) against the neighbors' fresh values. Rounds
// after the first start from near-converged doses and typically exit after
// one error check; a round in which no shard changed any dose certifies that
// every shard meets tolerance with its neighbors' *final* doses, and the
// loop stops early. Results are bit-identical for any thread count: each
// shard writes only its own shots' doses, and all shards of a round read the
// same published snapshot.
// Out-of-process execution (PecOptions::worker_count > 0): shard solves are
// identical, self-contained jobs, so the driver can farm each round's run
// set over a pool of worker *processes* instead of pool threads. Jobs and
// results cross process boundaries in the versioned binary wire format of
// src/pec/wire.h (bit-exact doses), workers (tools/pec_worker.cpp) keep
// their own resident evaluator pools and re-enter shards through the exact
// set_background_doses / reset_doses refresh protocol, and the driver
// certifies convergence exactly as in-process — so the distributed solve is
// bitwise-identical to the single-process sharded solve, and worker_count
// = 0 keeps today's in-process engine as the oracle.
#pragma once

#include <memory>

#include "pec/correction.h"

namespace ebl {

class ExposureEvaluator;
namespace wire {
struct ShardJob;
struct ShardResult;
}  // namespace wire

/// A good shard side for a PSF: 64x the widest sigma. Large enough that the
/// halo (4 sigma on each side) stays a modest fraction of the shard, small
/// enough that tens of shards exist on mm-scale patterns for the concurrent
/// solve to spread across cores.
Coord default_shard_size(const Psf& psf);

/// FFT-snug refinement of the default: the per-shard blur pads its map to
/// the next power of two past map + kernel radius, so a shard sized just
/// under that boundary blurs no faster than one that fills it — the padding
/// is pure waste. This overload grows the 64-sigma default until the
/// resulting long-range map (shard + halos + sampling margin + kernel
/// support, at the options' pixel) lands just inside its power-of-two grid:
/// fewer shards, each amortizing the same padded transform, with the halo a
/// smaller fraction of each. Falls back to the plain default for all-short
/// PSFs (no long-range map to pad).
Coord default_shard_size(const Psf& psf, const PecOptions& options);

/// Sharded iterative correction (see the file comment). Requires
/// options.shard_size > 0; correct_proximity forwards here when it is.
/// The returned final_max_error is measured with every shard's *final*
/// doses in the halos, so it is comparable to the global corrector's figure
/// up to the halo truncation (< 1e-6 of a term weight at halo_factor = 4).
PecResult correct_proximity_sharded(const ShotList& shots, const Psf& psf,
                                    const PecOptions& options);

/// Multi-process sharded correction: requires options.worker_count > 0 and
/// fills in default_shard_size when shard_size is 0. Spawns the worker pool,
/// farms each halo-exchange round's shard jobs over it, and produces doses
/// bitwise-identical to the in-process sharded solve at the same shard
/// layout. correct_proximity_sharded forwards here implicitly whenever
/// worker_count > 0.
PecResult correct_proximity_distributed(const ShotList& shots, const Psf& psf,
                                        const PecOptions& options);

/// One shard solve from its wire-format job description — THE per-shard
/// solver: the in-process round sweep, the distributed driver (via a
/// worker), and tools/pec_worker.cpp all execute shard work through this
/// single function, which is what makes remote execution bitwise-identical
/// to in-process execution by construction.
///
/// @p pool_slot: null for a transient solve. Non-null with an evaluator
/// inside = resident re-entry — the evaluator must hold this shard's
/// geometry, and is refreshed through reset_doses (job.reset_all) or
/// set_background_doses, both exact. Non-null and empty = residency grant:
/// the freshly built evaluator is parked there for the next entry.
wire::ShardResult solve_shard_job(const wire::ShardJob& job,
                                  std::unique_ptr<ExposureEvaluator>* pool_slot);

/// The pec_worker binary the distributed driver spawns when
/// PecOptions::worker_path is empty: $EBL_PEC_WORKER when set, else
/// "pec_worker" next to the current executable (where the build puts it).
std::string default_pec_worker_path();

}  // namespace ebl
