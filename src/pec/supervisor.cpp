#include "pec/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include <signal.h>

#include "pec/sharded.h"
#include "pec/wire.h"
#include "util/contracts.h"
#include "util/parallel.h"

namespace ebl {
namespace {

using clock_t_ = std::chrono::steady_clock;

clock_t_::time_point deadline_after(clock_t_::time_point from, double ms) {
  if (ms <= 0) return clock_t_::time_point::max();
  return from + std::chrono::duration_cast<clock_t_::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

double resolve_worker_timeout_ms(double option_value) {
  if (option_value != 0.0) return option_value;
  if (const char* env = std::getenv("EBL_WORKER_TIMEOUT_MS")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0') return v;
  }
  return 60000.0;
}

// Per-worker, per-attempt shared state between the writer thread, the reader
// thread, and the post-join accounting. `sent` is the release/acquire
// handoff: the writer publishes sent_at[k] and timeout_ms[k] before bumping
// it, so the reader may read both for any k < sent without locks.
struct WorkerSupervisor::Attempt {
  std::vector<std::size_t> jobs;  ///< batch job indices, send order
  std::atomic<std::size_t> sent{0};
  std::atomic<bool> failed{false};
  std::vector<clock_t_::time_point> sent_at;
  std::vector<double> timeout_ms;
  std::mutex mu;
  std::string error;  ///< first failure wins; guarded by mu

  explicit Attempt(std::vector<std::size_t> j)
      : jobs(std::move(j)), sent_at(jobs.size()), timeout_ms(jobs.size(), 0.0) {}

  void fail(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    if (!failed.exchange(true)) error = what;
  }

  std::string first_error() {
    std::lock_guard<std::mutex> lock(mu);
    return error;
  }
};

WorkerSupervisor::WorkerSupervisor(SupervisorConfig config)
    : argv_(std::move(config.argv)),
      timeout_ms_(resolve_worker_timeout_ms(config.timeout_ms)),
      max_restarts_(std::max(0, config.max_restarts)),
      fallback_threads_(config.fallback_threads) {
  expects(!argv_.empty(), "WorkerSupervisor: empty worker argv");
  expects(config.workers > 0, "WorkerSupervisor: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(config.workers));
  for (int i = 0; i < config.workers; ++i)
    workers_.push_back(Subprocess::spawn(argv_));
  alive_.assign(workers_.size(), 1);
  restarts_used_.assign(workers_.size(), 0);
}

WorkerSupervisor::~WorkerSupervisor() { terminate_all(); }

double WorkerSupervisor::timeout_for_ms(std::size_t job_shots) const {
  if (timeout_ms_ <= 0) return 0.0;  // deadlines disabled
  return timeout_ms_ * (1.0 + static_cast<double>(job_shots) / 50000.0);
}

std::size_t WorkerSupervisor::live_count() const {
  std::size_t n = 0;
  for (const std::uint8_t a : alive_) n += a;
  return n;
}

void WorkerSupervisor::probe_liveness() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!alive_[w]) continue;
    if (const std::optional<int> status = workers_[w].try_wait()) {
      ++stats_.failures;
      handle_failure(w, "worker exited between batches (status " +
                            std::to_string(*status) + ")");
    }
  }
}

void WorkerSupervisor::handle_failure(std::size_t w, const std::string& error) {
  std::fprintf(stderr,
               "sharded PEC: worker %zu failed (%s); restarts used %d/%d\n", w,
               error.c_str(), restarts_used_[w], max_restarts_);
  // Reap whatever is left of the process. terminate() is a no-op when the
  // failure path (or try_wait) already reaped it.
  workers_[w].terminate();
  if (restarts_used_[w] >= max_restarts_) {
    alive_[w] = 0;
    return;
  }
  // Exponential backoff before the respawn: a worker dying instantly (bad
  // node, OOM loop) must not turn the supervisor into a fork bomb.
  const int shift = std::min(restarts_used_[w], 7);
  std::this_thread::sleep_for(std::chrono::milliseconds(
      std::min<long>(10L << shift, 1000L)));
  try {
    workers_[w] = Subprocess::spawn(argv_);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sharded PEC: respawn of worker %zu failed (%s)\n", w,
                 e.what());
    alive_[w] = 0;
    return;
  }
  ++restarts_used_[w];
  ++stats_.restarts;
}

void WorkerSupervisor::run_batch(std::size_t n, const Prefer& prefer,
                                 const MakeJob& make_job, const Apply& apply) {
  const std::size_t nw = workers_.size();
  std::vector<std::uint8_t> done(n, 0);
  std::vector<std::size_t> remaining;
  remaining.reserve(n);
  for (std::size_t i = 0; i < n; ++i) remaining.push_back(i);

  while (!remaining.empty()) {
    if (!degraded_) probe_liveness();
    if (degraded_ || live_count() == 0) {
      // Out of workers: finish the round on the driver's own threads. The
      // jobs are the same pure jobs — slower, never different.
      if (!degraded_) {
        degraded_ = true;
        stats_.degraded_to_inprocess = true;
        std::fprintf(stderr,
                     "sharded PEC: no live workers left; degrading %zu "
                     "job(s) to in-process solves\n",
                     remaining.size());
      }
      parallel_for(
          remaining.size(),
          [&](std::size_t i0, std::size_t i1) {
            for (std::size_t k = i0; k < i1; ++k) {
              const std::size_t i = remaining[k];
              const wire::ShardJob job = make_job(i);
              apply(i, -1, solve_shard_job(job, nullptr));
              done[i] = 1;
            }
          },
          fallback_threads_);
      return;
    }

    // Deal the remaining jobs: sticky preferred slot when it is live, else
    // round-robin over the live slots in job order (deterministic — though
    // determinism of the *doses* never depends on placement).
    std::vector<std::size_t> live_slots;
    for (std::size_t w = 0; w < nw; ++w)
      if (alive_[w]) live_slots.push_back(w);
    std::vector<std::vector<std::size_t>> batch(nw);
    std::size_t rr = 0;
    for (const std::size_t i : remaining) {
      std::size_t w = prefer(i) % nw;
      if (!alive_[w]) w = live_slots[rr++ % live_slots.size()];
      batch[w].push_back(i);
    }

    // One writer + one reader thread per busy worker, exactly as the
    // fault-oblivious driver ran them — results stream while later jobs
    // serialize — but with every read under a deadline and every exception
    // absorbed into the attempt instead of thrown through a running thread.
    std::vector<std::unique_ptr<Attempt>> attempts(nw);
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < nw; ++w) {
      if (batch[w].empty()) continue;
      attempts[w] = std::make_unique<Attempt>(std::move(batch[w]));
      Attempt& at = *attempts[w];
      Subprocess& proc = workers_[w];

      threads.emplace_back([&at, &proc, &make_job, this] {
        try {
          for (std::size_t k = 0; k < at.jobs.size(); ++k) {
            if (at.failed.load(std::memory_order_acquire)) break;
            const wire::ShardJob job = make_job(at.jobs[k]);
            at.timeout_ms[k] =
                timeout_for_ms(job.active.size() + job.ghosts.size());
            at.sent_at[k] = clock_t_::now();
            wire::write_frame(proc.stdin_fd(), wire::MsgType::kShardJob,
                              wire::encode(job));
            at.sent.store(k + 1, std::memory_order_release);
          }
        } catch (const std::exception& e) {
          at.fail(std::string("sending a job: ") + e.what());
          // Unblock the paired reader: EOF on stdin makes a healthy worker
          // finish its queue and exit, which EOFs its stdout.
          proc.close_stdin();
        }
      });

      threads.emplace_back([&at, &proc, &apply, &done, w, this] {
        try {
          // `progress` is when this worker last gave evidence of life: the
          // attempt start, then each result. Job k's processing cannot begin
          // before both its send completed and job k-1's result came back,
          // so its deadline runs from whichever is later.
          clock_t_::time_point progress = clock_t_::now();
          for (std::size_t k = 0; k < at.jobs.size(); ++k) {
            while (at.sent.load(std::memory_order_acquire) <= k) {
              if (at.failed.load(std::memory_order_acquire)) return;
              if (timeout_ms_ > 0 &&
                  clock_t_::now() > deadline_after(progress, timeout_ms_))
                throw TimeoutError(
                    "worker stopped accepting jobs (stdin pipe stalled)");
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            const auto deadline = deadline_after(
                std::max(progress, at.sent_at[k]), at.timeout_ms[k]);
            wire::Frame frame;
            if (!wire::read_frame(proc.stdout_fd(), &frame, deadline))
              throw DataError("worker exited mid-round");
            if (frame.type != wire::MsgType::kShardResult)
              throw DataError("expected a shard result frame");
            const wire::ShardResult r = wire::decode_shard_result(frame.payload);
            apply(at.jobs[k], static_cast<int>(w), r);
            done[at.jobs[k]] = 1;
            progress = clock_t_::now();
          }
        } catch (const std::exception& e) {
          at.fail(std::string("reading a result: ") + e.what());
          // Unblock the paired writer: killing the worker closes its end of
          // the stdin pipe, so a writer blocked on a full pipe gets EPIPE.
          // Reap + fd teardown stay with the post-join failure path (no
          // cross-thread fd races).
          if (proc.pid() > 0) ::kill(proc.pid(), SIGKILL);
        }
      });
    }
    for (std::thread& t : threads) t.join();

    for (std::size_t w = 0; w < nw; ++w) {
      if (!attempts[w] || !attempts[w]->failed.load()) continue;
      ++stats_.failures;
      int lost = 0;
      for (const std::size_t i : attempts[w]->jobs) lost += done[i] ? 0 : 1;
      stats_.reassigned_jobs += lost;
      handle_failure(w, attempts[w]->first_error());
    }

    std::vector<std::size_t> still;
    for (const std::size_t i : remaining)
      if (!done[i]) still.push_back(i);
    remaining = std::move(still);
  }
}

void WorkerSupervisor::shutdown() {
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (alive_[w]) workers_[w].close_stdin();
  // Bounded drain: a worker that ignores EOF must not stall the solve's
  // epilogue. All results were already delivered and CRC-checked, so a dirty
  // exit here is diagnostic, not a correctness problem — log it and move on.
  const auto deadline = deadline_after(clock_t_::now(), 5000.0);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!alive_[w]) continue;
    std::optional<int> status;
    while (!(status = workers_[w].try_wait()) && clock_t_::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (!status) {
      std::fprintf(stderr,
                   "sharded PEC: worker %zu ignored shutdown; killing it\n", w);
      workers_[w].terminate();
    } else if (*status != 0) {
      std::fprintf(stderr,
                   "sharded PEC: worker %zu exited with status %d at shutdown\n",
                   w, *status);
    }
    alive_[w] = 0;
  }
  workers_.clear();
  alive_.clear();
}

void WorkerSupervisor::terminate_all() {
  for (Subprocess& w : workers_) w.terminate();
  workers_.clear();
  alive_.clear();
}

}  // namespace ebl
