#include "pec/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "pec/sharded.h"
#include "pec/wire.h"
#include "util/contracts.h"
#include "util/parallel.h"

namespace ebl {
namespace {

using clock_t_ = std::chrono::steady_clock;

clock_t_::time_point deadline_after(clock_t_::time_point from, double ms) {
  if (ms <= 0) return clock_t_::time_point::max();
  return from + std::chrono::duration_cast<clock_t_::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

double resolve_worker_timeout_ms(double option_value) {
  if (option_value != 0.0) return option_value;
  if (const char* env = std::getenv("EBL_WORKER_TIMEOUT_MS")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0') return v;
  }
  return 60000.0;
}

// Per-worker, per-attempt shared state between the writer thread, the reader
// thread, and the post-join accounting. `sent` is the release/acquire
// handoff: the writer publishes sent_at[k] and timeout_ms[k] before bumping
// it, so the reader may read both for any k < sent without locks.
struct WorkerSupervisor::Attempt {
  std::vector<std::size_t> jobs;  ///< batch job indices, send order
  std::atomic<std::size_t> sent{0};
  std::atomic<bool> failed{false};
  std::vector<clock_t_::time_point> sent_at;
  std::vector<double> timeout_ms;
  std::mutex mu;
  std::string error;  ///< first failure wins; guarded by mu

  explicit Attempt(std::vector<std::size_t> j)
      : jobs(std::move(j)), sent_at(jobs.size()), timeout_ms(jobs.size(), 0.0) {}

  void fail(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    if (!failed.exchange(true)) error = what;
  }

  std::string first_error() {
    std::lock_guard<std::mutex> lock(mu);
    return error;
  }
};

WorkerSupervisor::WorkerSupervisor(SupervisorConfig config)
    : factory_(std::move(config.factory)),
      timeout_ms_(resolve_worker_timeout_ms(config.timeout_ms)),
      max_restarts_(std::max(0, config.max_restarts)),
      fallback_threads_(config.fallback_threads),
      sequence_jobs_(config.sequence_jobs) {
  expects(static_cast<bool>(factory_), "WorkerSupervisor: no transport factory");
  expects(config.workers > 0, "WorkerSupervisor: need at least one worker");
  transports_.reserve(static_cast<std::size_t>(config.workers));
  for (int i = 0; i < config.workers; ++i)
    transports_.push_back(factory_(static_cast<std::size_t>(i)));
  alive_.assign(transports_.size(), 1);
  restarts_used_.assign(transports_.size(), 0);
}

WorkerSupervisor::~WorkerSupervisor() { terminate_all(); }

double WorkerSupervisor::timeout_for_ms(std::size_t job_shots) const {
  if (timeout_ms_ <= 0) return 0.0;  // deadlines disabled
  return timeout_ms_ * (1.0 + static_cast<double>(job_shots) / 50000.0);
}

std::size_t WorkerSupervisor::live_count() const {
  std::size_t n = 0;
  for (const std::uint8_t a : alive_) n += a;
  return n;
}

void WorkerSupervisor::probe_liveness() {
  for (std::size_t w = 0; w < transports_.size(); ++w) {
    if (!alive_[w]) continue;
    std::string why;
    if (transports_[w]->poll_fault(&why)) {
      ++stats_.failures;
      handle_failure(w, why);
    }
  }
}

void WorkerSupervisor::handle_failure(std::size_t w, const std::string& error) {
  std::fprintf(stderr,
               "sharded PEC: worker slot %zu [%s] failed (%s); restarts used "
               "%d/%d\n",
               w, transports_[w]->describe().c_str(), error.c_str(),
               restarts_used_[w], max_restarts_);
  // Tear the channel down completely (reap the process / close the socket).
  // hard_stop is a no-op on whatever part already died.
  transports_[w]->hard_stop();
  // Rebuild the channel, charging every attempt against the slot's budget —
  // including attempts where the factory itself throws: a refused reconnect
  // to a restarting daemon is a transient fault to retry with backoff, not
  // an instant retirement. Exponential backoff so a worker dying instantly
  // (bad node, OOM loop, dead daemon) cannot turn the supervisor into a
  // fork/connect bomb. The per-attempt cap is tunable via
  // EBL_RECONNECT_BACKOFF_MS (default 1000): chaos tests that inject dozens
  // of transient faults per solve pace recovery in tens of milliseconds,
  // and an operator fronting slow-restarting daemons can stretch it.
  long backoff_cap_ms = 1000;
  if (const char* env = std::getenv("EBL_RECONNECT_BACKOFF_MS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) backoff_cap_ms = v;
  }
  while (restarts_used_[w] < max_restarts_) {
    const int shift = std::min(restarts_used_[w], 7);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<long>(10L << shift, backoff_cap_ms)));
    ++restarts_used_[w];
    try {
      transports_[w] = factory_(w);
      ++stats_.restarts;
      return;
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "sharded PEC: restart %d/%d of worker slot %zu failed "
                   "(%s)\n",
                   restarts_used_[w], max_restarts_, w, e.what());
    }
  }
  alive_[w] = 0;
}

void WorkerSupervisor::run_batch(std::size_t n, const Prefer& prefer,
                                 const MakeJob& make_job, const Apply& apply) {
  const std::size_t nw = transports_.size();
  std::vector<std::uint8_t> done(n, 0);
  std::vector<std::size_t> remaining;
  remaining.reserve(n);
  for (std::size_t i = 0; i < n; ++i) remaining.push_back(i);
  // Sequence numbers are assigned ONCE, at batch entry: a job re-dealt after
  // a fault carries the SAME seq on every delivery attempt, which is what
  // lets a daemon recognize a replay. (The solver never reads seq, so the
  // stamp cannot change a bit of any result.)
  std::vector<std::uint64_t> seqs(n, 0);
  if (sequence_jobs_)
    for (std::size_t i = 0; i < n; ++i) seqs[i] = ++next_seq_;

  while (!remaining.empty()) {
    if (!degraded_) probe_liveness();
    if (degraded_ || live_count() == 0) {
      // Out of workers: finish the round on the driver's own threads. The
      // jobs are the same pure jobs — slower, never different.
      if (!degraded_) {
        degraded_ = true;
        stats_.degraded_to_inprocess = true;
        std::fprintf(stderr,
                     "sharded PEC: no live workers left; degrading %zu "
                     "job(s) to in-process solves\n",
                     remaining.size());
      }
      parallel_for(
          remaining.size(),
          [&](std::size_t i0, std::size_t i1) {
            for (std::size_t k = i0; k < i1; ++k) {
              const std::size_t i = remaining[k];
              const wire::ShardJob job = make_job(i);
              apply(i, -1, solve_shard_job(job, nullptr));
              done[i] = 1;
            }
          },
          fallback_threads_);
      return;
    }

    // Deal the remaining jobs: sticky preferred slot when it is live, else
    // round-robin over the live slots in job order (deterministic — though
    // determinism of the *doses* never depends on placement).
    std::vector<std::size_t> live_slots;
    for (std::size_t w = 0; w < nw; ++w)
      if (alive_[w]) live_slots.push_back(w);
    std::vector<std::vector<std::size_t>> batch(nw);
    std::size_t rr = 0;
    for (const std::size_t i : remaining) {
      std::size_t w = prefer(i) % nw;
      if (!alive_[w]) w = live_slots[rr++ % live_slots.size()];
      batch[w].push_back(i);
    }

    // One writer + one reader thread per busy worker, exactly as the
    // fault-oblivious driver ran them — results stream while later jobs
    // serialize — but with every read under a deadline and every exception
    // absorbed into the attempt instead of thrown through a running thread.
    std::vector<std::unique_ptr<Attempt>> attempts(nw);
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < nw; ++w) {
      if (batch[w].empty()) continue;
      attempts[w] = std::make_unique<Attempt>(std::move(batch[w]));
      Attempt& at = *attempts[w];
      Transport& tr = *transports_[w];

      threads.emplace_back([&at, &tr, &make_job, &seqs, this] {
        try {
          for (std::size_t k = 0; k < at.jobs.size(); ++k) {
            if (at.failed.load(std::memory_order_acquire)) break;
            wire::ShardJob job = make_job(at.jobs[k]);
            job.seq = seqs[at.jobs[k]];
            at.timeout_ms[k] =
                timeout_for_ms(job.active.size() + job.ghosts.size());
            at.sent_at[k] = clock_t_::now();
            tr.send_job(job, deadline_after(at.sent_at[k], at.timeout_ms[k]));
            at.sent.store(k + 1, std::memory_order_release);
          }
        } catch (const std::exception& e) {
          at.fail(std::string("sending a job: ") + e.what());
          // Unblock the paired reader: half-closing the job stream makes a
          // healthy worker finish its queue and end the result stream.
          tr.finish_jobs();
        }
      });

      threads.emplace_back([&at, &tr, &apply, &done, w, this] {
        try {
          // `progress` is when this worker last gave evidence of life: the
          // attempt start, then each result. Job k's processing cannot begin
          // before both its send completed and job k-1's result came back,
          // so its deadline runs from whichever is later.
          clock_t_::time_point progress = clock_t_::now();
          for (std::size_t k = 0; k < at.jobs.size(); ++k) {
            while (at.sent.load(std::memory_order_acquire) <= k) {
              if (at.failed.load(std::memory_order_acquire)) return;
              if (timeout_ms_ > 0 &&
                  clock_t_::now() > deadline_after(progress, timeout_ms_))
                throw TimeoutError(
                    "worker stopped accepting jobs (job stream stalled)");
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
            const auto deadline = deadline_after(
                std::max(progress, at.sent_at[k]), at.timeout_ms[k]);
            wire::Frame frame;
            if (!tr.read_result(&frame, deadline))
              throw DataError("worker ended the result stream mid-round");
            if (frame.type != wire::MsgType::kShardResult)
              throw DataError("expected a shard result frame");
            const wire::ShardResult r = wire::decode_shard_result(frame.payload);
            apply(at.jobs[k], static_cast<int>(w), r);
            done[at.jobs[k]] = 1;
            progress = clock_t_::now();
          }
        } catch (const std::exception& e) {
          at.fail(std::string("reading a result: ") + e.what());
          // Break the paired writer out of a blocked send (pipe: SIGKILL the
          // worker so the pipe EPIPEs; TCP: shut the socket down both ways).
          // Channel teardown stays with the post-join failure path (no
          // cross-thread teardown races).
          tr.unblock_writer();
        }
      });
    }
    for (std::thread& t : threads) t.join();

    for (std::size_t w = 0; w < nw; ++w) {
      if (!attempts[w] || !attempts[w]->failed.load()) continue;
      ++stats_.failures;
      int lost = 0;
      for (const std::size_t i : attempts[w]->jobs) lost += done[i] ? 0 : 1;
      stats_.reassigned_jobs += lost;
      handle_failure(w, attempts[w]->first_error());
    }

    std::vector<std::size_t> still;
    for (const std::size_t i : remaining)
      if (!done[i]) still.push_back(i);
    remaining = std::move(still);
  }
}

void WorkerSupervisor::shutdown() {
  // Two phases: half-close every slot first (so all workers wind down
  // concurrently), then drain each with a shared deadline. A worker that
  // ignores the close must not stall the solve's epilogue — all results were
  // already delivered and CRC-checked, so a dirty end here is diagnostic,
  // not a correctness problem: log it and move on.
  for (std::size_t w = 0; w < transports_.size(); ++w)
    if (alive_[w]) transports_[w]->finish_jobs();
  const auto deadline = deadline_after(clock_t_::now(), 5000.0);
  for (std::size_t w = 0; w < transports_.size(); ++w) {
    if (!alive_[w]) continue;
    const std::string dirty = transports_[w]->drain(deadline);
    if (!dirty.empty())
      std::fprintf(stderr, "sharded PEC: worker slot %zu at shutdown: %s\n", w,
                   dirty.c_str());
    alive_[w] = 0;
  }
  transports_.clear();
  alive_.clear();
}

void WorkerSupervisor::terminate_all() {
  for (std::unique_ptr<Transport>& t : transports_)
    if (t) t->hard_stop();
  transports_.clear();
  alive_.clear();
}

}  // namespace ebl
