// Worker supervision for the distributed sharded-PEC driver: deadlines,
// crash/hang detection, bounded restart, shard-job reassignment, and graceful
// degradation to in-process solving.
//
// The distributed solve's correctness story (src/pec/sharded.h) is that every
// execution path — in-process thread pool, worker process, or retry — runs
// the SAME pure function solve_shard_job on the SAME wire::ShardJob built
// from the round-start snapshot, and each result lands in its own disjoint
// per-shard cells. That makes fault recovery free of correctness risk by
// construction: replaying a job on a respawned worker, a surviving worker, or
// the driver's own threads produces bitwise-identical doses. What the
// supervisor adds is the *liveness* half of the contract:
//
//   - per-job deadlines (wall-clock, scaled by shard size) catch workers that
//     wedge without exiting — the one failure EOF detection cannot see;
//   - WNOHANG liveness probes and EOF-on-result-pipe catch crashes;
//   - CRC/decode failures on a result frame are treated as a worker fault
//     (kill + restart), not a solve abort — a flaky worker must not take the
//     whole solve down;
//   - each worker slot carries a bounded restart budget with exponential
//     backoff; a respawned worker inherits the slot cold (its resident
//     evaluator pool is empty, and a cold solve_shard_job entry rebuilds
//     everything from the job, which is exact);
//   - unfinished jobs of a failed worker are re-enqueued in the same round:
//     first to the respawned worker or the surviving ones, and — once every
//     slot is dead and out of restart budget — to the driver's own threads
//     (degraded_to_inprocess), so restart exhaustion slows the solve down
//     instead of failing it.
//
// The supervisor is transport-blind (src/pec/transport.h): a worker slot is
// whatever its TransportFactory builds — a fork/exec pipe worker or a TCP
// session on a pec_worker daemon. "Restart" means "discard the transport and
// ask the factory again", which is a respawn for pipes and a reconnect (with
// exponential backoff; a refused connection consumes restart budget and is
// retried) for TCP. In sequencing mode every job carries a session-unique
// seq, stable across delivery attempts, so a daemon reached over a flaky
// network deduplicates replayed jobs.
//
// The per-sweep writer/reader thread pair of the pre-supervisor driver is
// preserved (results stream back while later jobs serialize; no pipe-buffer
// deadlock), with the reads made deadline-aware. Thread teardown is
// exception-safe: every attempt joins its threads before the supervisor
// decides anything, so no code path can unwind with a detached writer still
// holding a pipe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pec/transport.h"

namespace ebl {

namespace wire {
struct ShardJob;
struct ShardResult;
}  // namespace wire

/// Resolves PecOptions::worker_timeout_ms to the effective base deadline:
/// > 0 is taken as-is; 0 reads $EBL_WORKER_TIMEOUT_MS, defaulting to 60000;
/// < 0 disables deadlines (returns a negative value).
double resolve_worker_timeout_ms(double option_value);

/// What fault handling did during one solve — folded into PecResult by the
/// distributed runner.
struct SupervisorStats {
  int restarts = 0;         ///< worker processes respawned into their slot
  int failures = 0;         ///< worker faults observed (crash/hang/bad frame)
  int reassigned_jobs = 0;  ///< jobs re-enqueued after their worker failed
  bool degraded_to_inprocess = false;  ///< ran out of workers; solved locally
};

struct SupervisorConfig {
  /// Builds (and rebuilds, after a fault) the channel for each worker slot.
  TransportFactory factory;
  int workers = 1;  ///< pool width (slot count)
  /// Raw PecOptions::worker_timeout_ms — resolved internally via
  /// resolve_worker_timeout_ms.
  double timeout_ms = 0.0;
  int max_restarts = 2;      ///< per-slot restart/reconnect budget
  int fallback_threads = 0;  ///< thread budget for degraded in-process solves
  /// Stamp every job with a session-unique seq, stable across delivery
  /// attempts (TCP daemons deduplicate replays by it). Off for stdio pipe
  /// workers — their transport cannot replay, and jobs stay byte-identical
  /// to the pre-service wire traffic (seq = 0).
  bool sequence_jobs = false;
};

/// A supervised pool of pec_worker processes. run_batch is the whole
/// interface: hand it the round's jobs and it guarantees every one of them is
/// applied exactly once, surviving worker crashes, hangs, and corrupt result
/// frames along the way.
class WorkerSupervisor {
 public:
  /// Builds job @p i. Called once per delivery *attempt* (a reassigned job is
  /// rebuilt, identically — jobs are pure functions of the round snapshot).
  /// Must be callable from worker writer threads and, for distinct jobs,
  /// concurrently.
  using MakeJob = std::function<wire::ShardJob(std::size_t)>;
  /// Consumes job @p i's result. @p worker_slot is the slot that solved it,
  /// or -1 for a degraded in-process solve. Called exactly once per job on
  /// success; may be called concurrently for distinct jobs (results land in
  /// disjoint state). Throwing marks the delivering worker faulty.
  using Apply =
      std::function<void(std::size_t, int worker_slot, const wire::ShardResult&)>;
  /// Preferred (sticky) slot for job @p i, any size_t — taken mod the pool
  /// width. Keeps shard->worker affinity so worker resident-evaluator pools
  /// hit across rounds; a job whose preferred slot is dead is dealt
  /// round-robin to the live ones.
  using Prefer = std::function<std::size_t(std::size_t)>;

  /// Builds the pool (factory once per slot). Throws when an initial build
  /// fails — a pool that never existed is a configuration error, not a fault
  /// to absorb; reconnect/restart resilience starts after construction.
  explicit WorkerSupervisor(SupervisorConfig config);
  ~WorkerSupervisor();  ///< kills and reaps anything still running

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  int workers() const { return static_cast<int>(transports_.size()); }
  const SupervisorStats& stats() const { return stats_; }

  /// Runs jobs 0..n-1 to completion (every job applied exactly once),
  /// restarting / reassigning / degrading as needed. Exceptions thrown by
  /// worker I/O or a worker's Apply are absorbed as worker faults; only
  /// driver-side failures (make_job, a degraded in-process solve, restart
  /// bookkeeping) propagate — and never with an attempt thread still running.
  void run_batch(std::size_t n, const Prefer& prefer, const MakeJob& make_job,
                 const Apply& apply);

  /// Orderly shutdown: finish_jobs every live slot (pipe: EOF the worker's
  /// stdin; TCP: half-close the session), give the pool a few seconds to
  /// drain, hard-stop stragglers. A dirty end after all results were
  /// delivered (and CRC-checked) is logged, not thrown — by then it cannot
  /// have corrupted the solve.
  void shutdown();

  /// Error-path teardown: SIGKILL + reap everything still running.
  void terminate_all();

 private:
  struct Attempt;

  /// Effective deadline for one job: the base timeout grown linearly with the
  /// job's shot count (active + ghosts), so big shards get proportionally
  /// more wall-clock before being declared hung.
  double timeout_for_ms(std::size_t job_shots) const;

  /// poll_fault probe of every live slot (pipe: WNOHANG; TCP: heartbeat
  /// ping/pong); a slot whose channel already died (e.g. crashed or dropped
  /// between rounds) goes through the failure path before any job is dealt
  /// to it.
  void probe_liveness();

  /// Post-attempt accounting for a faulty slot: tear the channel down, then
  /// rebuild it via the factory — with exponential backoff, charging every
  /// attempt (including ones where the factory itself throws, e.g. a
  /// refused reconnect) against the slot's restart budget — or retire the
  /// slot once the budget is spent.
  void handle_failure(std::size_t w, const std::string& error);

  std::size_t live_count() const;

  TransportFactory factory_;
  std::vector<std::unique_ptr<Transport>> transports_;
  std::vector<std::uint8_t> alive_;
  std::vector<int> restarts_used_;
  double timeout_ms_ = 0.0;  ///< resolved base; <= 0 means deadlines disabled
  int max_restarts_ = 0;
  int fallback_threads_ = 0;
  bool sequence_jobs_ = false;
  std::uint64_t next_seq_ = 0;  ///< last seq handed out (session-unique)
  bool degraded_ = false;  ///< latches: once out of workers, stay in-process
  SupervisorStats stats_;
};

}  // namespace ebl
