#include "pec/transport.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include <signal.h>

#include "pec/wire.h"
#include "util/contracts.h"

namespace ebl {
namespace {

using clock_t_ = std::chrono::steady_clock;

double env_ms(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && *end == '\0' && v > 0) return v;
  }
  return fallback;
}

clock_t_::time_point after_ms(double ms) {
  return clock_t_::now() + std::chrono::duration_cast<clock_t_::duration>(
                               std::chrono::duration<double, std::milli>(ms));
}

// The original fork/exec channel, verbatim semantics: frames over the
// child's stdin/stdout, liveness via WNOHANG, unblock via SIGKILL.
class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(const std::vector<std::string>& argv)
      : proc_(Subprocess::spawn(argv)) {}

  void send_job(const wire::ShardJob& job,
                clock_t_::time_point /*deadline*/) override {
    // No send deadline on purpose: a pipe write stalls only when the worker
    // stops reading, and then the paired reader's deadline SIGKILLs it,
    // which surfaces here as EPIPE (see unblock_writer).
    wire::write_frame(proc_.stdin_fd(), wire::MsgType::kShardJob,
                      wire::encode(job));
  }

  bool read_result(wire::Frame* out, clock_t_::time_point deadline) override {
    return wire::read_frame(proc_.stdout_fd(), out, deadline);
  }

  void finish_jobs() override { proc_.close_stdin(); }

  void unblock_writer() override {
    // Killing the worker closes its end of the stdin pipe, so a writer
    // blocked on a full pipe gets EPIPE. Reap + fd teardown stay with the
    // post-join failure path (no cross-thread fd races).
    if (proc_.pid() > 0) ::kill(proc_.pid(), SIGKILL);
  }

  bool poll_fault(std::string* why) override {
    if (const std::optional<int> status = proc_.try_wait()) {
      *why = "worker exited between batches (status " +
             std::to_string(*status) + ")";
      return true;
    }
    return false;
  }

  std::string drain(clock_t_::time_point deadline) override {
    proc_.close_stdin();
    std::optional<int> status;
    while (!(status = proc_.try_wait()) && clock_t_::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    if (!status) {
      proc_.terminate();
      return "ignored shutdown; killed";
    }
    if (*status != 0)
      return "exited with status " + std::to_string(*status) + " at shutdown";
    return {};
  }

  void hard_stop() override { proc_.terminate(); }

  std::string describe() const override {
    return "worker process (pid " + std::to_string(proc_.pid()) + ")";
  }

 private:
  Subprocess proc_;
};

// PEC-as-a-service channel: one connected session on a pec_worker daemon.
// The constructor IS the handshake — a transport that exists is a session
// the daemon acknowledged at our protocol version.
class TcpTransport final : public Transport {
 public:
  TcpTransport(const net::HostPort& addr, std::uint64_t session_id,
               double connect_timeout_ms, double heartbeat_ms)
      : addr_(addr.host + ":" + std::to_string(addr.port)),
        heartbeat_ms_(heartbeat_ms) {
    sock_ = net::TcpSocket::connect(addr.host, addr.port,
                                    after_ms(connect_timeout_ms));
    // Re-handshake the session. The daemon answers with the highest job seq
    // it served for it — after a reconnect that tells the supervisor the
    // truth about the dropped connection, though correctness never depends
    // on it (re-sent jobs are deduplicated daemon-side by seq, and a replay
    // cache miss re-solves the pure job to identical doses anyway).
    const auto deadline = after_ms(heartbeat_ms);
    wire::Hello hello;
    hello.session_id = session_id;
    hello.protocol = wire::kVersion;
    wire::write_frame(sock_.fd(), wire::MsgType::kHello, wire::encode(hello),
                      deadline);
    wire::Frame frame;
    if (!wire::read_frame(sock_.fd(), &frame, deadline))
      throw DataError(addr_ + ": connection closed during handshake");
    if (frame.type != wire::MsgType::kHelloAck)
      throw DataError(addr_ + ": expected a hello ack frame");
    const wire::HelloAck ack = wire::decode_hello_ack(frame.payload);
    if (ack.session_id != session_id)
      throw DataError(addr_ + ": hello ack for the wrong session");
    last_acked_seq_ = ack.last_seq;
  }

  void send_job(const wire::ShardJob& job,
                clock_t_::time_point deadline) override {
    wire::write_frame(sock_.fd(), wire::MsgType::kShardJob, wire::encode(job),
                      deadline);
  }

  bool read_result(wire::Frame* out, clock_t_::time_point deadline) override {
    return wire::read_frame(sock_.fd(), out, deadline);
  }

  void finish_jobs() override { sock_.shutdown_write(); }

  void unblock_writer() override { sock_.shutdown_both(); }

  bool poll_fault(std::string* why) override {
    // Strict request/response on a quiet stream: the echoed token proves the
    // pong answers THIS ping, not a stale frame from a confused peer.
    try {
      const std::uint64_t token = ++ping_token_;
      const auto deadline = after_ms(heartbeat_ms_);
      wire::write_frame(sock_.fd(), wire::MsgType::kPing,
                        wire::encode_token(token), deadline);
      wire::Frame frame;
      if (!wire::read_frame(sock_.fd(), &frame, deadline)) {
        *why = addr_ + ": daemon closed the connection";
        return true;
      }
      if (frame.type != wire::MsgType::kPong ||
          wire::decode_token(frame.payload) != token) {
        *why = addr_ + ": bad pong";
        return true;
      }
      return false;
    } catch (const std::exception& e) {
      *why = addr_ + ": heartbeat failed: " + e.what();
      return true;
    }
  }

  std::string drain(clock_t_::time_point deadline) override {
    // finish_jobs (SHUT_WR) told the daemon the session is over; a healthy
    // daemon ends its side, which reads as clean EOF here. Stray frames are
    // discarded — all results were delivered before drain is called.
    try {
      sock_.shutdown_write();
      wire::Frame frame;
      while (wire::read_frame(sock_.fd(), &frame, deadline)) {
      }
      sock_.close();
      return {};
    } catch (const std::exception& e) {
      sock_.close();
      return std::string("dirty session close: ") + e.what();
    }
  }

  void hard_stop() override { sock_.close(); }

  std::string describe() const override { return "daemon at " + addr_; }

  std::uint64_t last_acked_seq() const { return last_acked_seq_; }

 private:
  net::TcpSocket sock_;
  std::string addr_;
  double heartbeat_ms_ = 0.0;
  std::uint64_t ping_token_ = 0;
  std::uint64_t last_acked_seq_ = 0;
};

}  // namespace

double resolve_heartbeat_ms() { return env_ms("EBL_HEARTBEAT_MS", 2000.0); }

double resolve_connect_timeout_ms() {
  return env_ms("EBL_CONNECT_TIMEOUT_MS", 5000.0);
}

TransportFactory make_pipe_transport_factory(std::vector<std::string> argv) {
  expects(!argv.empty(), "pipe transport factory: empty worker argv");
  return [argv = std::move(argv)](std::size_t /*slot*/) {
    return std::unique_ptr<Transport>(new PipeTransport(argv));
  };
}

TransportFactory make_tcp_transport_factory(std::vector<net::HostPort> hosts,
                                            std::uint64_t session_id) {
  expects(!hosts.empty(), "tcp transport factory: empty daemon address list");
  const double connect_ms = resolve_connect_timeout_ms();
  const double heartbeat_ms = resolve_heartbeat_ms();
  return [hosts = std::move(hosts), session_id, connect_ms,
          heartbeat_ms](std::size_t slot) {
    return std::unique_ptr<Transport>(new TcpTransport(
        hosts[slot % hosts.size()], session_id, connect_ms, heartbeat_ms));
  };
}

}  // namespace ebl
