// The transport seam of the distributed sharded-PEC driver: one interface
// over "a channel that carries shard jobs out and shard results back", with
// two implementations —
//
//   - PipeTransport: fork/exec a pec_worker child and frame over its
//     stdin/stdout pipes (the original, PR-6 shape; bitwise-untouched);
//   - TcpTransport: connect to an already-running `pec_worker --listen`
//     daemon, re-handshake the driver session (wire::Hello/kHelloAck), and
//     frame over the socket — PEC as a service.
//
// The supervisor (src/pec/supervisor.h) is transport-blind: it deals jobs,
// enforces deadlines, and on any fault discards the Transport and asks its
// factory for a fresh one. For pipes that is a respawn; for TCP it is a
// reconnect — and because a reconnecting client re-sends the same session
// tag and the same per-job sequence numbers, a daemon that already solved a
// re-sent job replays the cached result frame instead of solving twice
// (and a cache miss just re-solves the pure job to bitwise-identical doses).
//
// The failure surface is normalized to the pipe transport's: every method
// throws DataError for a broken/corrupt channel and TimeoutError for a
// deadline, so the supervisor's crash/hang/corruption handling needs no
// transport-specific cases.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/net.h"
#include "util/subprocess.h"

namespace ebl {

namespace wire {
struct ShardJob;
struct Frame;
}  // namespace wire

/// $EBL_HEARTBEAT_MS: deadline for the TCP handshake and for each liveness
/// ping (kPing -> kPong round trip on an otherwise quiet stream). Default
/// 2000 ms.
double resolve_heartbeat_ms();
/// $EBL_CONNECT_TIMEOUT_MS: deadline for establishing a TCP connection to a
/// worker daemon. Default 5000 ms.
double resolve_connect_timeout_ms();

/// One supervised worker channel. Thread contract (mirrors the supervisor's
/// writer/reader pair): send_job and finish_jobs belong to the writer
/// thread; read_result to the reader thread; unblock_writer may be called
/// from the reader thread while the writer is mid-send (that is its job);
/// poll_fault / drain / hard_stop only with no attempt threads running.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Serializes and sends one job. @p deadline bounds the send on
  /// deadline-capable channels (TCP: a daemon that stops draining its
  /// receive window is a hung peer); the pipe transport ignores it — a
  /// stalled pipe write is broken by the paired reader's deadline killing
  /// the worker (EPIPE), exactly as before the seam.
  virtual void send_job(const wire::ShardJob& job,
                        std::chrono::steady_clock::time_point deadline) = 0;

  /// Reads the next frame off the result stream. Returns false on clean EOF
  /// at a frame boundary; throws TimeoutError past @p deadline, DataError on
  /// corruption. The caller checks the frame type (a daemon's stream may
  /// legitimately carry kPong frames only via poll_fault, never here).
  virtual bool read_result(wire::Frame* out,
                           std::chrono::steady_clock::time_point deadline) = 0;

  /// Writer-side half-close: no more jobs will be sent. A healthy worker
  /// finishes its queue and ends the stream (pipe: EOF on stdin -> worker
  /// exits; TCP: shutdown(SHUT_WR) -> daemon ends the session). Also the
  /// writer thread's own failure epilogue — it unblocks the paired reader.
  virtual void finish_jobs() = 0;

  /// Reader-side failure epilogue: break a writer blocked mid-send (pipe:
  /// SIGKILL the worker so the pipe EPIPEs; TCP: shutdown both directions).
  /// Safe from the reader thread while the writer is inside send_job.
  virtual void unblock_writer() = 0;

  /// Between-batches liveness probe (the stream must be quiet). Returns true
  /// and fills @p why when the channel is dead: a pipe worker that exited,
  /// a daemon that fails a kPing -> kPong round trip within the heartbeat
  /// deadline. Never throws — a probe failure IS the answer.
  virtual bool poll_fault(std::string* why) = 0;

  /// Orderly shutdown after finish_jobs: give the worker until @p deadline
  /// to end the stream cleanly. Returns an empty string for a clean end, a
  /// diagnostic otherwise (logged, never thrown — all results were already
  /// delivered and CRC-checked by then). The channel is dead afterwards.
  virtual std::string drain(std::chrono::steady_clock::time_point deadline) = 0;

  /// Error-path teardown: kill/close everything immediately.
  virtual void hard_stop() = 0;

  /// Human-readable channel identity for fault logs ("pid 1234",
  /// "daemon at host:9000").
  virtual std::string describe() const = 0;
};

/// Builds the Transport for worker slot @p slot. Called by the supervisor at
/// construction (one per slot) and again on every restart/reconnect; must
/// throw (DataError/TimeoutError) when the channel cannot be established —
/// the supervisor charges the failure against the slot's restart budget and
/// retries with backoff, so a daemon that is briefly unreachable costs
/// budget but not the solve.
using TransportFactory = std::function<std::unique_ptr<Transport>(std::size_t slot)>;

/// Fork/exec transport: every call spawns a fresh @p argv child (cold
/// resident pool — a cold solve_shard_job entry rebuilds everything from the
/// job, which is exact).
TransportFactory make_pipe_transport_factory(std::vector<std::string> argv);

/// PEC-as-a-service transport: slot i connects to hosts[i % hosts.size()]
/// and re-handshakes @p session_id (wire v4 Hello). Point each slot at a
/// distinct daemon — a daemon serves sessions sequentially, so two slots on
/// one address would serialize. Connect/handshake deadlines come from
/// resolve_connect_timeout_ms / resolve_heartbeat_ms, read once here.
TransportFactory make_tcp_transport_factory(std::vector<net::HostPort> hosts,
                                            std::uint64_t session_id);

}  // namespace ebl
