#include "pec/wire.h"

#include <array>
#include <bit>
#include <cstring>
#include <limits>

#include "util/contracts.h"
#include "util/subprocess.h"

namespace ebl::wire {
namespace {

// All wire values are little-endian; on a big-endian host every load and
// store byte-swaps. (The tag in the frame header still catches streams from
// writers that did not follow the convention.)
template <typename T>
T to_wire_order(T v) {
  if constexpr (std::endian::native == std::endian::big) {
    T out;
    auto* src = reinterpret_cast<const unsigned char*>(&v);
    auto* dst = reinterpret_cast<unsigned char*>(&out);
    for (std::size_t i = 0; i < sizeof(T); ++i) dst[i] = src[sizeof(T) - 1 - i];
    return out;
  }
  return v;
}

struct Writer {
  std::string buf;

  void u8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(to_wire_order(v)); }
  void u64(std::uint64_t v) { raw(to_wire_order(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact: the IEEE-754 pattern crosses as an integer.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  template <typename T>
  void raw(T v) {
    char bytes[sizeof(T)];
    std::memcpy(bytes, &v, sizeof(T));
    buf.append(bytes, sizeof(T));
  }
};

struct Reader {
  const char* p;
  const char* end;

  explicit Reader(std::string_view s) : p(s.data()), end(s.data() + s.size()) {}

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n)
      throw DataError("wire: truncated payload");
  }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint32_t u32() { return to_wire_order(raw<std::uint32_t>()); }
  std::uint64_t u64() { return to_wire_order(raw<std::uint64_t>()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw DataError("wire: malformed boolean");
    return v != 0;
  }

  /// An element count about to drive a resize: bounded by the bytes that
  /// could possibly back it, so a corrupted count cannot trigger a huge
  /// allocation before the truncation check fires.
  std::size_t count(std::size_t min_elem_size) {
    const std::uint64_t n = u64();
    if (n > static_cast<std::size_t>(end - p) / min_elem_size)
      throw DataError("wire: element count exceeds payload");
    return static_cast<std::size_t>(n);
  }

  /// @p n raw bytes (length already validated via count()).
  const char* bytes(std::size_t n) {
    need(n);
    const char* at = p;
    p += n;
    return at;
  }

  void finish() const {
    if (p != end) throw DataError("wire: trailing bytes after payload");
  }

  template <typename T>
  T raw() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

// --- field-group codecs (kept in one place so job and result stay in
// lock-step with their decoders; any layout change bumps kVersion) ---

void put_options(Writer& w, const PecOptions& o) {
  w.i32(o.max_iterations);
  w.f64(o.tolerance);
  w.f64(o.target);
  w.f64(o.damping);
  w.f64(o.min_dose);
  w.f64(o.max_dose);
  w.i32(o.dose_classes);
  w.i32(o.shard_size);
  w.f64(o.halo_factor);
  w.i32(o.exchange_rounds);
  w.u8(o.density_warm_start ? 1 : 0);
  w.i32(o.resident_shard_budget);
  w.i32(o.worker_count);
  w.f64(o.worker_timeout_ms);
  w.i32(o.worker_max_restarts);
  w.u64(o.worker_hosts.size());
  w.buf.append(o.worker_hosts);
  const ExposureOptions& e = o.exposure;
  w.f64(e.long_range_threshold);
  w.f64(e.pixels_per_sigma);
  w.f64(e.cutoff_sigmas);
  w.f64(e.map_margin_sigmas);
  w.i32(e.threads);
  w.u8(e.splat_cache ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(e.blur_backend));
  w.f64(e.delta_threshold);
  w.u8(e.fast_erf ? 1 : 0);
}

PecOptions get_options(Reader& r) {
  PecOptions o;
  o.max_iterations = r.i32();
  o.tolerance = r.f64();
  o.target = r.f64();
  o.damping = r.f64();
  o.min_dose = r.f64();
  o.max_dose = r.f64();
  o.dose_classes = r.i32();
  o.shard_size = r.i32();
  o.halo_factor = r.f64();
  o.exchange_rounds = r.i32();
  o.density_warm_start = r.boolean();
  o.resident_shard_budget = r.i32();
  o.worker_count = r.i32();
  o.worker_timeout_ms = r.f64();
  o.worker_max_restarts = r.i32();
  const std::size_t hosts_len = r.count(1);
  o.worker_hosts.assign(r.bytes(hosts_len), hosts_len);
  ExposureOptions& e = o.exposure;
  e.long_range_threshold = r.f64();
  e.pixels_per_sigma = r.f64();
  e.cutoff_sigmas = r.f64();
  e.map_margin_sigmas = r.f64();
  e.threads = r.i32();
  e.splat_cache = r.boolean();
  const std::uint8_t backend = r.u8();
  if (backend > static_cast<std::uint8_t>(BlurBackend::kFft))
    throw DataError("wire: unknown blur backend");
  e.blur_backend = static_cast<BlurBackend>(backend);
  e.delta_threshold = r.f64();
  e.fast_erf = r.boolean();
  return o;
}

void put_shots(Writer& w, const ShotList& shots) {
  w.u64(shots.size());
  for (const Shot& s : shots) {
    w.i32(s.shape.y0);
    w.i32(s.shape.y1);
    w.i32(s.shape.xl0);
    w.i32(s.shape.xr0);
    w.i32(s.shape.xl1);
    w.i32(s.shape.xr1);
    w.f64(s.dose);
  }
}

ShotList get_shots(Reader& r) {
  constexpr std::size_t kShotBytes = 6 * 4 + 8;
  const std::size_t n = r.count(kShotBytes);
  ShotList shots(n);
  for (Shot& s : shots) {
    s.shape.y0 = r.i32();
    s.shape.y1 = r.i32();
    s.shape.xl0 = r.i32();
    s.shape.xr0 = r.i32();
    s.shape.xl1 = r.i32();
    s.shape.xr1 = r.i32();
    s.dose = r.f64();
  }
  return shots;
}

void put_perf(Writer& w, const BlurPerf& p) {
  w.f64(p.accumulate_ms);
  w.f64(p.blur_ms);
  w.i32(p.refreshes);
  w.f64(p.delta_accumulate_ms);
  w.i32(p.delta_refreshes);
  w.i32(p.skipped_refreshes);
  w.i64(p.shots_updated);
  w.i32(p.windowed_blurs);
  w.f64(p.windowed_blur_ms);
}

BlurPerf get_perf(Reader& r) {
  BlurPerf p;
  p.accumulate_ms = r.f64();
  p.blur_ms = r.f64();
  p.refreshes = r.i32();
  p.delta_accumulate_ms = r.f64();
  p.delta_refreshes = r.i32();
  p.skipped_refreshes = r.i32();
  p.shots_updated = r.i64();
  p.windowed_blurs = r.i32();
  p.windowed_blur_ms = r.f64();
  return p;
}

}  // namespace

std::string encode(const ShardJob& job) {
  Writer w;
  w.u64(job.session_id);
  w.u64(job.shard_key);
  w.u64(job.seq);
  w.u8(job.correct ? 1 : 0);
  w.u8(job.allow_optimistic ? 1 : 0);
  w.u8(job.reset_all ? 1 : 0);
  w.u8(job.pooled ? 1 : 0);
  w.f64(job.tolerance);
  w.u32(static_cast<std::uint32_t>(job.psf_terms.size()));
  for (const PsfTerm& t : job.psf_terms) {
    w.f64(t.weight);
    w.f64(t.sigma);
  }
  put_options(w, job.options);
  put_shots(w, job.active);
  put_shots(w, job.ghosts);
  return std::move(w.buf);
}

ShardJob decode_shard_job(std::string_view payload) {
  Reader r(payload);
  ShardJob job;
  job.session_id = r.u64();
  job.shard_key = r.u64();
  job.seq = r.u64();
  job.correct = r.boolean();
  job.allow_optimistic = r.boolean();
  job.reset_all = r.boolean();
  job.pooled = r.boolean();
  job.tolerance = r.f64();
  const std::uint32_t nterms = r.u32();
  if (nterms == 0 || nterms > 64) throw DataError("wire: bad PSF term count");
  job.psf_terms.resize(nterms);
  for (PsfTerm& t : job.psf_terms) {
    t.weight = r.f64();
    t.sigma = r.f64();
  }
  job.options = get_options(r);
  job.active = get_shots(r);
  job.ghosts = get_shots(r);
  r.finish();
  return job;
}

std::string encode(const ShardResult& result) {
  expects(result.changed.size() == result.doses.size(),
          "wire: result changed/doses size mismatch");
  Writer w;
  w.u64(result.shard_key);
  w.f64(result.entry_error);
  w.f64(result.exit_error);
  w.i32(result.iterations);
  w.u8(result.updated ? 1 : 0);
  w.u8(result.optimistic ? 1 : 0);
  put_perf(w, result.perf);
  w.u64(result.doses.size());
  for (const double d : result.doses) w.f64(d);
  for (const std::uint8_t c : result.changed) w.u8(c ? 1 : 0);
  w.u32(result.pool_resident);
  w.u32(result.pool_evictions);
  w.f64(result.solve_ms);
  return std::move(w.buf);
}

ShardResult decode_shard_result(std::string_view payload) {
  Reader r(payload);
  ShardResult result;
  result.shard_key = r.u64();
  result.entry_error = r.f64();
  result.exit_error = r.f64();
  result.iterations = r.i32();
  result.updated = r.boolean();
  result.optimistic = r.boolean();
  result.perf = get_perf(r);
  const std::size_t n = r.count(8);
  result.doses.resize(n);
  for (double& d : result.doses) d = r.f64();
  result.changed.resize(n);
  for (std::uint8_t& c : result.changed) c = r.boolean() ? 1 : 0;
  result.pool_resident = r.u32();
  result.pool_evictions = r.u32();
  result.solve_ms = r.f64();
  r.finish();
  return result;
}

std::string encode(const Hello& hello) {
  Writer w;
  w.u64(hello.session_id);
  w.u32(hello.protocol);
  return std::move(w.buf);
}

Hello decode_hello(std::string_view payload) {
  Reader r(payload);
  Hello h;
  h.session_id = r.u64();
  h.protocol = r.u32();
  r.finish();
  return h;
}

std::string encode(const HelloAck& ack) {
  Writer w;
  w.u64(ack.session_id);
  w.u64(ack.last_seq);
  return std::move(w.buf);
}

HelloAck decode_hello_ack(std::string_view payload) {
  Reader r(payload);
  HelloAck a;
  a.session_id = r.u64();
  a.last_seq = r.u64();
  r.finish();
  return a;
}

std::string encode_token(std::uint64_t token) {
  Writer w;
  w.u64(token);
  return std::move(w.buf);
}

std::uint64_t decode_token(std::string_view payload) {
  Reader r(payload);
  const std::uint64_t token = r.u64();
  r.finish();
  return token;
}

std::string encode_frame_header(MsgType type, std::uint64_t payload_size) {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u32(kEndianTag);
  w.u32(static_cast<std::uint32_t>(type));
  w.u64(payload_size);
  return std::move(w.buf);
}

std::pair<MsgType, std::uint64_t> parse_frame_header(std::string_view header) {
  expects(header.size() == kFrameHeaderSize, "wire: header must be 24 bytes");
  Reader r(header);
  if (r.u32() != kMagic) throw DataError("wire: bad magic (not an EBLW stream)");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw DataError("wire: version mismatch (stream v" + std::to_string(version) +
                    ", reader v" + std::to_string(kVersion) + ")");
  if (r.u32() != kEndianTag)
    throw DataError("wire: endianness mismatch (stream written foreign-endian)");
  const std::uint32_t type = r.u32();
  if (type < static_cast<std::uint32_t>(MsgType::kShardJob) ||
      type > static_cast<std::uint32_t>(MsgType::kPong))
    throw DataError("wire: unknown message type " + std::to_string(type));
  return {static_cast<MsgType>(type), r.u64()};
}

std::uint32_t crc32(std::string_view data) {
  // IEEE 802.3 reflected CRC-32, table computed once. No dependency, ~1 GB/s
  // byte-at-a-time — frame payloads are far smaller than the solves they
  // describe, so the trailer cost is noise.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data)
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_framed(MsgType type, std::string_view payload) {
  std::string msg = encode_frame_header(type, payload.size());
  msg.append(payload);
  Writer trailer;
  trailer.u32(crc32(payload));
  msg.append(trailer.buf);
  return msg;
}

bool read_frame(int fd, Frame* out) {
  return read_frame(fd, out, std::chrono::steady_clock::time_point::max());
}

bool read_frame(int fd, Frame* out,
                std::chrono::steady_clock::time_point deadline) {
  char header[kFrameHeaderSize];
  if (!read_exact(fd, header, sizeof(header), deadline)) return false;  // clean EOF
  const auto [type, size] = parse_frame_header({header, sizeof(header)});
  // Sanity cap well above any real shard job (a 500k-shot shard is ~16 MB):
  // a corrupted length field must fail loudly, not drive a huge allocation.
  if (size > (std::uint64_t{1} << 32))
    throw DataError("wire: implausible payload size " + std::to_string(size));
  out->type = type;
  // Chunked payload read: allocation grows only as bytes actually arrive, so
  // a corrupted length *under* the cap (a single flipped bit can claim
  // gigabytes) costs at most one extra chunk before the short stream is
  // caught — never a multi-GiB up-front resize.
  out->payload.clear();
  constexpr std::uint64_t kChunk = std::uint64_t{4} << 20;
  for (std::uint64_t got = 0; got < size;) {
    const std::uint64_t chunk = std::min(size - got, kChunk);
    out->payload.resize(static_cast<std::size_t>(got + chunk));
    if (!read_exact(fd, out->payload.data() + got,
                    static_cast<std::size_t>(chunk), deadline))
      throw DataError("wire: stream ended inside a payload");
    got += chunk;
  }
  char trailer[4];
  if (!read_exact(fd, trailer, sizeof(trailer), deadline))
    throw DataError("wire: stream ended before the frame checksum");
  Reader r({trailer, sizeof(trailer)});
  if (r.u32() != crc32(out->payload))
    throw DataError("wire: frame checksum mismatch (corrupted payload)");
  return true;
}

void write_frame(int fd, MsgType type, std::string_view payload) {
  const std::string msg = encode_framed(type, payload);
  write_all(fd, msg.data(), msg.size());
}

void write_frame(int fd, MsgType type, std::string_view payload,
                 std::chrono::steady_clock::time_point deadline) {
  const std::string msg = encode_framed(type, payload);
  write_all(fd, msg.data(), msg.size(), deadline);
}

}  // namespace ebl::wire
