// Shard-job wire format: the serialized protocol between the sharded PEC
// driver and out-of-process shard workers (tools/pec_worker.cpp).
//
// A shard solve is already a self-contained job — the shard's own shots, the
// halo ghosts at their frozen published doses, the PSF, and the solve
// options (src/pec/sharded.h). This header pins that job (and its result)
// to a versioned binary encoding so the solve can run in another process,
// or on another machine, and come back *bitwise identical* to the
// in-process run:
//
//   - every double crosses the wire as its raw IEEE-754 bit pattern
//     (std::bit_cast to uint64), so dose and PSF values round-trip exactly —
//     no text formatting, no rounding;
//   - all multi-byte values are little-endian on the wire, with an explicit
//     endianness tag in the frame header so a foreign-endian (or corrupted)
//     stream is rejected instead of silently misread; big-endian hosts
//     byte-swap on the way in and out;
//   - every frame carries a magic, a format version, and the payload length,
//     so version skew and truncated streams fail loudly (DataError) rather
//     than producing garbage doses;
//   - every frame ends in a CRC-32 trailer over the payload, so a corrupted
//     byte anywhere in transit (a flaky pipe, a bad host, a buggy relay) is
//     a DataError at the frame boundary instead of silently wrong doses.
//
// Framing: [magic u32]["EBLW" version u32][endian tag u32][type u32]
// [payload length u64][payload][payload CRC-32 u32]. Encoders produce
// payloads; read_frame / write_frame add and verify the header and trailer.
// A stream is a plain concatenation of frames — a file of jobs is a batch, a
// pipe of jobs is a session.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "pec/correction.h"

namespace ebl::wire {

inline constexpr std::uint32_t kMagic = 0x574C4245;  // "EBLW" little-endian
/// v2: CRC-32 payload trailer appended to every frame. Readers reject skew
/// in both directions — a v1 stream has no trailer and a v1 reader would
/// misparse a v2 stream, so neither may be silently accepted.
/// v3: BlurPerf gained the windowed delta-blur counters (windowed_blurs,
/// windowed_blur_ms), so shard results grew by 12 payload bytes. Same skew
/// rule: a v2 reader would misparse a v3 result and vice versa, so the
/// header version must match exactly.
/// v4: PEC-as-a-service. ShardJob gained the per-job sequence number (seq)
/// that makes reconnect replay idempotent, PecOptions gained worker_hosts,
/// and the session frames arrived: kHello / kHelloAck (per-connection
/// re-handshake of a TCP worker daemon) and kPing / kPong (client-side
/// liveness probes). Exact-match skew rule as ever.
inline constexpr std::uint32_t kVersion = 4;
/// Written as-is by every encoder; a reader that sees its bytes reversed is
/// looking at a stream produced by a writer that did not follow the
/// little-endian convention (or at garbage) and must reject it.
inline constexpr std::uint32_t kEndianTag = 0x01020304;

enum class MsgType : std::uint32_t {
  kShardJob = 1,
  kShardResult = 2,
  /// Session opener on a TCP connection to a pec_worker daemon: the client
  /// announces its session tag and protocol version; the daemon answers
  /// with kHelloAck. A reconnecting client re-sends the same session tag,
  /// so the daemon keeps its warm evaluator pool and its replay cache.
  kHello = 3,
  kHelloAck = 4,
  /// Liveness probe between job batches: the daemon echoes the ping's token
  /// back as a kPong. Strictly request/response on an otherwise quiet
  /// stream, so a pong can never interleave with a result frame.
  kPing = 5,
  kPong = 6,
};

/// One shard solve, fully specified. The driver builds one per shard per
/// halo-exchange round; the flags mirror the in-process run_shard arguments
/// exactly (see src/pec/sharded.cpp) so a worker executes the identical
/// arithmetic.
struct ShardJob {
  /// Driver-session tag: a worker drops its resident evaluator pool when it
  /// changes, so one long-lived worker can serve successive solves (whose
  /// shard keys may collide but whose geometry differs).
  std::uint64_t session_id = 0;
  /// Packed shard grid key (util/gridkeys.h) — the shard's stable identity,
  /// and the worker's resident-pool key.
  std::uint64_t shard_key = 0;
  /// Per-job sequence number, unique within a driver session and stable
  /// across delivery attempts: a job re-sent after a dropped connection
  /// carries the SAME seq, so a daemon that already solved it detects the
  /// duplicate and replays the cached result frame byte-for-byte instead of
  /// solving twice (jobs are pure, so a cache miss re-solves to identical
  /// doses anyway — the cache only saves the work). 0 = unsequenced (stdio
  /// pipe workers, where the transport cannot replay).
  std::uint64_t seq = 0;

  bool correct = true;           ///< false: measurement-only pass
  bool allow_optimistic = false; ///< may publish a final unverified update
  bool reset_all = false;        ///< resident re-entry must re-apply own doses
  bool pooled = true;            ///< driver pools evaluators (splat-cache rule)

  /// Per-shard stopping tolerance (the driver applies its cross-shard slack
  /// before filling this in).
  double tolerance = 0.0;

  /// The PSF's terms, verbatim (reconstructed via Psf::from_terms — no
  /// renormalization, so the worker's PSF is bit-identical).
  std::vector<PsfTerm> psf_terms;

  /// Solve knobs. The worker honors target/damping/clamps/max_iterations and
  /// every ExposureOptions field; resident_shard_budget sizes the worker's
  /// own evaluator pool. worker_count/worker_path are carried for
  /// completeness but ignored by workers (no recursive fan-out).
  PecOptions options;

  ShotList active;  ///< the shard's own shots at their published doses
  ShotList ghosts;  ///< halo ghosts at frozen doses, in driver (CSR) order
};

/// The worker's answer: the solved active doses plus the bookkeeping the
/// driver folds into PecResult. Doses are the evaluator's *applied* doses
/// (or the final unverified update after an optimistic exit) — exactly what
/// the in-process path publishes.
struct ShardResult {
  std::uint64_t shard_key = 0;

  double entry_error = 0.0;  ///< max error at entry (fresh ghost doses)
  double exit_error = 0.0;   ///< max error at the last evaluation
  std::int32_t iterations = 0;
  bool updated = false;     ///< any dose actually changed
  bool optimistic = false;  ///< exited after an update it did not re-verify

  BlurPerf perf;  ///< this run's evaluator refresh accounting

  std::vector<double> doses;          ///< per active shot, job order
  std::vector<std::uint8_t> changed;  ///< per active shot: dose moved

  /// Worker pool snapshot (occupancy after this job / lifetime evictions) —
  /// the driver sums the per-worker values into PecResult.
  std::uint32_t pool_resident = 0;
  std::uint32_t pool_evictions = 0;
  double solve_ms = 0.0;  ///< worker-side wall clock of this job
};

/// The kHello payload: what a client announces when (re)opening a session
/// on a pec_worker daemon.
struct Hello {
  std::uint64_t session_id = 0;
  /// Application-level protocol version (kVersion). The frame header pins it
  /// too, but the handshake states it explicitly so a future proxy that
  /// rewrites frames cannot smuggle a version through.
  std::uint32_t protocol = 0;
};

/// The kHelloAck payload: the daemon's answer, echoing the session and
/// reporting the highest job seq it has served for it — a reconnecting
/// client learns how far the previous connection actually got.
struct HelloAck {
  std::uint64_t session_id = 0;
  std::uint64_t last_seq = 0;
};

/// Encode to a payload (no frame header). Doubles are bit-exact.
std::string encode(const ShardJob& job);
std::string encode(const ShardResult& result);
std::string encode(const Hello& hello);
std::string encode(const HelloAck& ack);
/// The kPing / kPong payload: an opaque token the pong must echo.
std::string encode_token(std::uint64_t token);

/// Decode a payload. Throws DataError on truncation, trailing bytes, or
/// out-of-range enum/count values.
ShardJob decode_shard_job(std::string_view payload);
ShardResult decode_shard_result(std::string_view payload);
Hello decode_hello(std::string_view payload);
HelloAck decode_hello_ack(std::string_view payload);
std::uint64_t decode_token(std::string_view payload);

/// A framed message as read off a stream.
struct Frame {
  MsgType type = MsgType::kShardJob;
  std::string payload;
};

/// The 24-byte frame header for @p payload_size bytes of @p type.
std::string encode_frame_header(MsgType type, std::uint64_t payload_size);

/// Parses a frame header, validating magic, version, and endian tag.
/// @p header must be exactly kFrameHeaderSize bytes. Returns (type,
/// payload size). Throws DataError on any mismatch.
inline constexpr std::size_t kFrameHeaderSize = 24;
std::pair<MsgType, std::uint64_t> parse_frame_header(std::string_view header);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of @p data — the per-frame
/// payload checksum. Exposed so tests and the fault-injection harness can
/// build (or deliberately break) frames by hand.
std::uint32_t crc32(std::string_view data);

/// One fully framed message: header + payload + CRC-32 trailer, as the
/// bytes that write_frame puts on the stream.
std::string encode_framed(MsgType type, std::string_view payload);

/// Reads one frame from @p fd. Returns false on clean EOF at a frame
/// boundary (no bytes read); throws DataError on a truncated header,
/// payload, or trailer, a header that fails validation, or a payload whose
/// CRC-32 does not match the trailer.
bool read_frame(int fd, Frame* out);

/// Deadline-aware read_frame: identical semantics, but throws TimeoutError
/// (util/subprocess.h) once @p deadline passes before the full frame —
/// header, payload, and trailer — has arrived. The worker supervisor's
/// hung-worker detection reads results through this.
bool read_frame(int fd, Frame* out, std::chrono::steady_clock::time_point deadline);

/// Writes one framed message to @p fd (header + payload + CRC trailer,
/// single logical write). Throws DataError on short writes / broken pipes.
void write_frame(int fd, MsgType type, std::string_view payload);

/// Deadline-aware write_frame: throws TimeoutError once @p deadline passes
/// before the peer accepts the whole frame — the send-side half of
/// hung-peer detection on the TCP transport (a daemon that stops draining
/// its receive window must not block the supervisor's writer forever).
void write_frame(int fd, MsgType type, std::string_view payload,
                 std::chrono::steady_clock::time_point deadline);

}  // namespace ebl::wire
