#include "sim/epe.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/contracts.h"

namespace ebl {
namespace {

/// Nearest-rank percentile of a sorted vector (q in (0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return sorted[std::min(n - 1, rank == 0 ? 0 : rank - 1)];
}

/// Signed distance from the probe point to the nearest print_level crossing
/// of the exposure along the outward normal, or nullopt when no crossing
/// lies inside [-window, +window]. Samples the bilinear raster uniformly at
/// ~pixel/2 resolution and locates crossings by linear interpolation.
std::optional<double> probe_crossing(const Raster& exposure, double level,
                                     double px, double py, double nx, double ny,
                                     double window) {
  const double pix = static_cast<double>(exposure.pixel_size());
  int steps = static_cast<int>(std::ceil(4.0 * window / pix));
  steps = std::clamp(steps, 16, 512);
  const double ds = 2.0 * window / steps;

  std::optional<double> best;
  double prev = exposure.sample(px - nx * window, py - ny * window) - level;
  for (int i = 1; i <= steps; ++i) {
    const double s = -window + ds * i;
    const double cur = exposure.sample(px + nx * s, py + ny * s) - level;
    if ((prev <= 0.0 && cur > 0.0) || (prev > 0.0 && cur <= 0.0)) {
      // Crossing in (s - ds, s]: linear interpolation between the samples.
      const double frac = prev / (prev - cur);
      const double at = s - ds + frac * ds;
      if (!best || std::abs(at) < std::abs(*best)) best = at;
      if (best && std::abs(*best) <= ds) break;  // cannot get closer to 0
    }
    prev = cur;
  }
  return best;
}

}  // namespace

void EpeAccumulator::add(double signed_epe, bool missing) {
  values_.push_back(signed_epe);
  if (missing) ++missing_;
}

EpeStats EpeAccumulator::finalize() const {
  EpeStats stats;
  stats.samples = values_.size();
  stats.missing = missing_;
  if (values_.empty()) return stats;
  std::vector<double> abs_vals(values_.size());
  double sum_abs = 0.0, sum_signed = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    abs_vals[i] = std::abs(values_[i]);
    sum_abs += abs_vals[i];
    sum_signed += values_[i];
  }
  std::sort(abs_vals.begin(), abs_vals.end());
  stats.p50 = percentile(abs_vals, 0.50);
  stats.p99 = percentile(abs_vals, 0.99);
  stats.max = abs_vals.back();
  stats.mean_abs = sum_abs / static_cast<double>(values_.size());
  stats.mean_signed = sum_signed / static_cast<double>(values_.size());
  return stats;
}

std::vector<EpeEdge> epe_edges(const PolygonSet& target) {
  std::vector<EpeEdge> edges;
  const PolygonSet merged = target.merged();
  auto add_contour = [&edges](const SimplePolygon& contour) {
    const auto pts = contour.points();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Point a = pts[i];
      const Point b = pts[(i + 1) % pts.size()];
      if (a.x != b.x || a.y != b.y) edges.push_back({a, b});
    }
  };
  for (const Polygon& poly : merged.polygons()) {
    add_contour(poly.outer());  // CCW: material left
    for (const SimplePolygon& hole : poly.holes()) add_contour(hole);  // CW
  }
  return edges;
}

void score_epe(const Raster& exposure, double print_level,
               const std::vector<EpeEdge>& edges, const EpeOptions& options,
               EpeAccumulator& acc) {
  expects(print_level > 0, "score_epe: print_level must be positive");
  expects(options.search_window > 0, "score_epe: search_window must be positive");
  const double pix = static_cast<double>(exposure.pixel_size());
  const double step = options.sample_step > 0
                          ? static_cast<double>(options.sample_step)
                          : 2.0 * pix;
  const double excl = options.corner_exclusion > 0
                          ? static_cast<double>(options.corner_exclusion)
                          : std::max(4.0 * pix, 100.0);
  const double window = static_cast<double>(options.search_window);

  for (const EpeEdge& e : edges) {
    const double ex = static_cast<double>(e.b.x) - e.a.x;
    const double ey = static_cast<double>(e.b.y) - e.a.y;
    const double len = std::hypot(ex, ey);
    if (len <= 0.0) continue;
    const double dx = ex / len, dy = ey / len;
    // Outward normal: right of the travel direction (material is left).
    const double nx = dy, ny = -dx;

    std::vector<double> offsets;
    if (len <= 2.0 * excl + step) {
      offsets.push_back(0.5 * len);  // too short: single midpoint probe
    } else {
      for (double t = excl; t <= len - excl; t += step) offsets.push_back(t);
    }
    for (double t : offsets) {
      const double px = e.a.x + dx * t;
      const double py = e.a.y + dy * t;
      const auto crossing =
          probe_crossing(exposure, print_level, px, py, nx, ny, window);
      if (crossing) {
        acc.add(*crossing, false);
      } else {
        // No printed edge in the window: worst-case penalty with the sign of
        // the failure (all-above = oversize, all-below = undersize).
        const double at_edge = exposure.sample(px, py);
        acc.add(at_edge >= print_level ? window : -window, true);
      }
    }
  }
}

EpeStats score_epe(const Raster& exposure, double print_level,
                   const std::vector<EpeEdge>& edges,
                   const EpeOptions& options) {
  EpeAccumulator acc;
  score_epe(exposure, print_level, edges, options, acc);
  return acc.finalize();
}

EpeStats measure_epe(const ShotList& shots, const Psf& psf,
                     const PolygonSet& target, double print_level,
                     const EpeOptions& options) {
  const Raster exposure = simulate_exposure(shots, psf, options.sim);
  return score_epe(exposure, print_level, epe_edges(target), options);
}

EpeStats measure_epe(const ShotList& shots, const Psf& psf,
                     const PolygonSet& target, const ResistModel& resist,
                     const EpeOptions& options) {
  return measure_epe(shots, psf, target, resist.print_threshold(), options);
}

}  // namespace ebl
