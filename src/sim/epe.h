// Edge-placement error (EPE) scoring of a simulated write.
//
// The quality metric a real tool cares about is not the dose vector but
// where the printed edges land. The scorer simulates the dosed shot list
// (sim/exposure_sim), develops it through a resist threshold, and probes
// the exposure map along the outward normal of every target edge: the
// signed distance from the design edge to the nearest print-threshold
// crossing is that probe's EPE (positive = prints oversize, negative =
// undersize). Per-pattern statistics (p50/p99/max of |EPE|) summarize the
// scenario.
#pragma once

#include <vector>

#include "fracture/shot.h"
#include "geom/polygon_set.h"
#include "geom/raster.h"
#include "pec/psf.h"
#include "sim/exposure_sim.h"
#include "sim/resist.h"

namespace ebl {

/// One target edge to probe. Convention: printed material lies to the LEFT
/// of a -> b, so the outward normal is to the right of the travel
/// direction. CCW outer contours and CW hole contours both satisfy this,
/// which is exactly how Polygon normalizes its contours.
struct EpeEdge {
  Point a;
  Point b;
};

struct EpeOptions {
  /// Probe spacing along each edge, dbu. 0 = auto (2 x raster pixel).
  Coord sample_step = 0;

  /// Half-width of the search window along the normal, dbu: a probe scans
  /// [-window, +window] for the nearest threshold crossing. Probes with no
  /// crossing in the window count as `missing` and score the full window
  /// (a bounded worst-case penalty instead of an unbounded outlier).
  Coord search_window = 800;

  /// Probes closer than this to an edge endpoint are skipped (printed
  /// corners round over ~the forward range, which is contour physics, not
  /// edge displacement). 0 = auto (max(4 x raster pixel, 100 dbu)). Edges
  /// too short for any interior probe get a single midpoint probe.
  Coord corner_exclusion = 0;

  /// Simulation knobs for the measure_epe() convenience entry point.
  SimOptions sim;
};

/// EPE statistics over all probes of a scoring pass. Percentiles and max
/// are of |EPE| (nearest-rank); mean_signed keeps the sign and exposes
/// systematic bias (positive = prints oversize).
struct EpeStats {
  double p50 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean_abs = 0.0;
  double mean_signed = 0.0;
  std::size_t samples = 0;  ///< probes scored (including missing)
  std::size_t missing = 0;  ///< probes with no crossing inside the window
};

/// Accumulates signed EPE probes across scoring calls (e.g. per-level
/// grayscale edges scored at different exposure thresholds) and reduces
/// them to one EpeStats.
class EpeAccumulator {
 public:
  void add(double signed_epe, bool missing);
  EpeStats finalize() const;
  std::size_t samples() const { return values_.size(); }

 private:
  std::vector<double> values_;
  std::size_t missing_ = 0;
};

/// Extracts probe edges from target geometry: every contour edge of the
/// merged region, outer and holes, oriented material-left.
std::vector<EpeEdge> epe_edges(const PolygonSet& target);

/// Scores an already-simulated exposure map against explicit target edges
/// at the given print level. Deterministic and single-threaded (the
/// simulation dominates; scoring is a cheap raster walk).
EpeStats score_epe(const Raster& exposure, double print_level,
                   const std::vector<EpeEdge>& edges,
                   const EpeOptions& options = {});

/// score_epe into an external accumulator (for multi-level scoring).
void score_epe(const Raster& exposure, double print_level,
               const std::vector<EpeEdge>& edges, const EpeOptions& options,
               EpeAccumulator& acc);

/// Convenience: simulate @p shots with @p psf, then score the exposure map
/// against @p target at @p print_level (use ResistModel::print_threshold()
/// or the overload below).
EpeStats measure_epe(const ShotList& shots, const Psf& psf,
                     const PolygonSet& target, double print_level,
                     const EpeOptions& options = {});

/// Same, with the print level taken from the resist model.
EpeStats measure_epe(const ShotList& shots, const Psf& psf,
                     const PolygonSet& target, const ResistModel& resist,
                     const EpeOptions& options = {});

}  // namespace ebl
