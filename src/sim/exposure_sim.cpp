#include "sim/exposure_sim.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "pec/exposure.h"  // blur kernels/backends
#include "util/contracts.h"

namespace ebl {

Raster simulate_exposure(const ShotList& shots, const Psf& psf,
                         const SimOptions& options) {
  expects(!shots.empty(), "simulate_exposure: empty shot list");
  Box frame;
  for (const Shot& s : shots) frame += s.shape.bbox();

  const Coord margin = options.margin > 0
                           ? options.margin
                           : static_cast<Coord>(std::ceil(4.0 * psf.max_sigma()));
  const Coord pixel =
      options.pixel > 0
          ? options.pixel
          : std::max<Coord>(1, static_cast<Coord>(psf.min_sigma() / 2.0));

  Raster base(frame.bloated(margin), pixel);
  for (const Shot& s : shots) base.add_coverage(s.shape, s.dose);

  // One truncated kernel per term; every term convolves the same dose map,
  // so wide terms can share a single forward FFT of it. Both backends use
  // the same taps — the backend choice never moves results beyond rounding.
  const auto terms = psf.terms();
  std::vector<std::vector<double>> taps;
  taps.reserve(terms.size());
  for (const PsfTerm& term : terms) {
    taps.push_back(gaussian_kernel_taps(term.sigma / static_cast<double>(pixel)));
  }

  // Backend per term: kAuto hands the FFT plan the widest kernels for which
  // spectral convolution (with its shared forward transform) beats the
  // separable passes, and keeps the rest direct. Trying the wide-kernel sets
  // largest-first finds the largest set that pays off.
  std::vector<bool> use_fft(terms.size(), options.blur_backend == BlurBackend::kFft);
  if (options.blur_backend == BlurBackend::kAuto && !terms.empty()) {
    std::vector<std::size_t> order(terms.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return taps[a].size() > taps[b].size();
    });
    for (std::size_t k = order.size(); k >= 1; --k) {
      std::vector<std::size_t> radii;
      for (std::size_t i = 0; i < k; ++i) radii.push_back(taps[order[i]].size() - 1);
      if (fft_blur_wins(base.width(), base.height(), radii)) {
        for (std::size_t i = 0; i < k; ++i) use_fft[order[i]] = true;
        break;
      }
    }
  }

  std::unique_ptr<FftConvolver> conv;
  std::size_t max_radius = 0;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    if (use_fft[t]) max_radius = std::max(max_radius, taps[t].size() - 1);
  }
  // All FFT terms go through one registered batch: the shared forward
  // transform is walked once with every term's cached spectrum applied in
  // that single pass (see FftConvolver::convolve_registered).
  std::vector<std::size_t> fft_terms;
  std::vector<std::vector<double>> fft_blurred;
  if (max_radius > 0) {
    conv = std::make_unique<FftConvolver>(base.width(), base.height(),
                                          static_cast<int>(max_radius),
                                          options.threads);
    conv->load(base.data().data());
    std::vector<int> ids;
    std::vector<double*> outs;
    for (std::size_t t = 0; t < terms.size(); ++t) {
      if (!use_fft[t]) continue;
      fft_terms.push_back(t);
      ids.push_back(conv->add_kernel(taps[t]));
    }
    fft_blurred.resize(fft_terms.size());
    for (std::vector<double>& b : fft_blurred) {
      b.resize(base.data().size());
      outs.push_back(b.data());
    }
    conv->convolve_registered(ids, outs);
  }

  Raster result(frame.bloated(margin), pixel);
  Raster blurred = base;  // reused scratch, same geometry for every term
  std::size_t next_fft = 0;
  for (std::size_t t = 0; t < terms.size(); ++t) {
    const double* in = nullptr;
    if (use_fft[t]) {
      in = fft_blurred[next_fft++].data();
    } else {
      blurred.data() = base.data();
      separable_blur(blurred, taps[t], options.threads);
      in = blurred.data().data();
    }
    auto& out = result.data();
    const double w = terms[t].weight;
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += w * in[i];
  }
  return result;
}

Raster develop(const Raster& exposure, const ResistModel& resist) {
  Raster thickness = exposure;
  for (double& v : thickness.data()) v = resist.thickness(v);
  return thickness;
}

namespace {

double bilinear(const Raster& r, double px, double py) {
  const double fx = (px - r.origin().x) / r.pixel_size() - 0.5;
  const double fy = (py - r.origin().y) / r.pixel_size() - 0.5;
  const int ix = static_cast<int>(std::floor(fx));
  const int iy = static_cast<int>(std::floor(fy));
  const double tx = fx - ix;
  const double ty = fy - iy;
  auto sample = [&](int x, int y) -> double {
    x = std::clamp(x, 0, r.width() - 1);
    y = std::clamp(y, 0, r.height() - 1);
    return r.at(x, y);
  };
  return (1 - tx) * (1 - ty) * sample(ix, iy) + tx * (1 - ty) * sample(ix + 1, iy) +
         (1 - tx) * ty * sample(ix, iy + 1) + tx * ty * sample(ix + 1, iy + 1);
}

}  // namespace

std::vector<double> profile_along(const Raster& raster, Point a, Point b, int n) {
  expects(n >= 2, "profile_along: need >= 2 samples");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    const double px = a.x + (static_cast<double>(b.x) - a.x) * t;
    const double py = a.y + (static_cast<double>(b.y) - a.y) * t;
    out[static_cast<std::size_t>(i)] = bilinear(raster, px, py);
  }
  return out;
}

std::vector<double> crossings_along(const Raster& raster, double level, Point a,
                                    Point b, int samples) {
  const std::vector<double> prof = profile_along(raster, level == 0 ? a : a, b, samples);
  const double len = std::sqrt(static_cast<double>(distance2(a, b)));
  std::vector<double> xs;
  for (std::size_t i = 0; i + 1 < prof.size(); ++i) {
    const double v0 = prof[i] - level;
    const double v1 = prof[i + 1] - level;
    if (v0 == 0.0) xs.push_back(len * static_cast<double>(i) / (samples - 1));
    if ((v0 < 0 && v1 > 0) || (v0 > 0 && v1 < 0)) {
      const double f = v0 / (v0 - v1);
      xs.push_back(len * (static_cast<double>(i) + f) / (samples - 1));
    }
  }
  return xs;
}

std::optional<double> measure_cd(const Raster& exposure, double level, Point a,
                                 Point b, int samples) {
  const auto xs = crossings_along(exposure, level, a, b, samples);
  if (xs.size() < 2) return std::nullopt;
  return xs.back() - xs.front();
}

std::vector<ContourLine> extract_contours(const Raster& raster, double level) {
  // Marching squares on cell corners = pixel centers. Each cell contributes
  // 0..2 segments with endpoints interpolated on cell edges; segments are
  // stitched into polylines by matching quantized endpoints.
  const int nx = raster.width();
  const int ny = raster.height();
  if (nx < 2 || ny < 2) return {};

  using Key = std::pair<long long, long long>;
  const auto key_of = [](double x, double y) -> Key {
    return {static_cast<long long>(std::llround(x * 16.0)),
            static_cast<long long>(std::llround(y * 16.0))};
  };

  struct Seg {
    double x0, y0, x1, y1;
    bool used = false;
  };
  std::vector<Seg> segs;
  std::multimap<Key, std::size_t> by_start;

  const double pix = raster.pixel_size();
  const double ox = raster.origin().x + 0.5 * pix;
  const double oy = raster.origin().y + 0.5 * pix;

  const auto interp = [&](double va, double vb) {
    // Position of the crossing between two corner values, in [0,1].
    const double d = vb - va;
    if (d == 0.0) return 0.5;
    return std::clamp((level - va) / d, 0.0, 1.0);
  };

  for (int cy = 0; cy + 1 < ny; ++cy) {
    for (int cx = 0; cx + 1 < nx; ++cx) {
      const double v00 = raster.at(cx, cy);
      const double v10 = raster.at(cx + 1, cy);
      const double v01 = raster.at(cx, cy + 1);
      const double v11 = raster.at(cx + 1, cy + 1);
      int code = 0;
      if (v00 >= level) code |= 1;
      if (v10 >= level) code |= 2;
      if (v11 >= level) code |= 4;
      if (v01 >= level) code |= 8;
      if (code == 0 || code == 15) continue;

      // Edge midpoints with interpolation: bottom, right, top, left.
      const double bx = ox + (cx + interp(v00, v10)) * pix;
      const double by = oy + cy * pix;
      const double rx = ox + (cx + 1) * pix;
      const double ry = oy + (cy + interp(v10, v11)) * pix;
      const double tx = ox + (cx + interp(v01, v11)) * pix;
      const double ty = oy + (cy + 1) * pix;
      const double lx = ox + cx * pix;
      const double ly = oy + (cy + interp(v00, v01)) * pix;

      const auto add = [&](double x0, double y0, double x1, double y1) {
        segs.push_back({x0, y0, x1, y1, false});
      };
      switch (code) {
        case 1: add(lx, ly, bx, by); break;
        case 2: add(bx, by, rx, ry); break;
        case 3: add(lx, ly, rx, ry); break;
        case 4: add(rx, ry, tx, ty); break;
        case 5:  // saddle: resolve by center average
          if (0.25 * (v00 + v10 + v01 + v11) >= level) {
            add(lx, ly, tx, ty);
            add(rx, ry, bx, by);
          } else {
            add(lx, ly, bx, by);
            add(rx, ry, tx, ty);
          }
          break;
        case 6: add(bx, by, tx, ty); break;
        case 7: add(lx, ly, tx, ty); break;
        case 8: add(tx, ty, lx, ly); break;
        case 9: add(tx, ty, bx, by); break;
        case 10:
          if (0.25 * (v00 + v10 + v01 + v11) >= level) {
            add(bx, by, lx, ly);
            add(tx, ty, rx, ry);
          } else {
            add(bx, by, rx, ry);
            add(tx, ty, lx, ly);
          }
          break;
        case 11: add(tx, ty, rx, ry); break;
        case 12: add(rx, ry, lx, ly); break;
        case 13: add(rx, ry, bx, by); break;
        case 14: add(bx, by, lx, ly); break;
        default: break;
      }
    }
  }

  for (std::size_t i = 0; i < segs.size(); ++i) {
    by_start.emplace(key_of(segs[i].x0, segs[i].y0), i);
  }

  std::vector<ContourLine> lines;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].used) continue;
    ContourLine line;
    segs[i].used = true;
    line.push_back({segs[i].x0, segs[i].y0});
    line.push_back({segs[i].x1, segs[i].y1});
    // Extend forward.
    bool extended = true;
    while (extended) {
      extended = false;
      const Key k = key_of(line.back().first, line.back().second);
      auto [lo, hi] = by_start.equal_range(k);
      for (auto it = lo; it != hi; ++it) {
        Seg& s = segs[it->second];
        if (s.used) continue;
        s.used = true;
        line.push_back({s.x1, s.y1});
        extended = true;
        break;
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace ebl
