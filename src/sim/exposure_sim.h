// Full-field exposure simulation: shots -> energy map -> resist profile.
#pragma once

#include <optional>
#include <vector>

#include "fracture/shot.h"
#include "geom/raster.h"
#include "pec/exposure.h"  // BlurBackend, blur primitives
#include "pec/psf.h"
#include "sim/resist.h"

namespace ebl {

struct SimOptions {
  /// Simulation pixel in dbu; must resolve the forward range (<= alpha/2
  /// recommended). 0 = auto (psf.min_sigma() / 2, at least 1).
  Coord pixel = 0;

  /// Extra frame margin in dbu beyond the pattern bbox; 0 = auto
  /// (4 * max sigma).
  Coord margin = 0;

  /// Worker threads for the per-term Gaussian blurs (0 = auto: EBL_THREADS
  /// env var, else hardware concurrency). Output is identical for any value.
  int threads = 0;

  /// Convolution backend for the per-term blurs. The simulator rasters at
  /// the forward-scattering resolution, so backscatter kernels span hundreds
  /// of pixels — exactly where the FFT engine wins: kAuto transforms the
  /// dose map once and applies every wide term's spectrum to it, keeping the
  /// separable passes only for narrow terms. Backend choice moves results by
  /// no more than floating-point rounding.
  BlurBackend blur_backend = BlurBackend::kAuto;
};

/// Energy deposition map of a dosed shot list: coverage rasterization of the
/// dose followed by one separable Gaussian convolution per PSF term.
/// Normalization: infinite unit-dose pattern -> exposure 1.0.
Raster simulate_exposure(const ShotList& shots, const Psf& psf,
                         const SimOptions& options = {});

/// Applies a resist curve pixel-wise: exposure map -> thickness map [0,1].
Raster develop(const Raster& exposure, const ResistModel& resist);

/// Samples the raster along segment a->b (bilinear), returning n values.
std::vector<double> profile_along(const Raster& raster, Point a, Point b, int n);

/// All level-crossing positions (in dbu from a) of the bilinear profile
/// along a->b.
std::vector<double> crossings_along(const Raster& raster, double level, Point a,
                                    Point b, int samples = 512);

/// Critical dimension: distance between the first rising and last falling
/// crossing of @p level along a->b; nullopt when the feature does not print
/// or does not clear.
std::optional<double> measure_cd(const Raster& exposure, double level, Point a,
                                 Point b, int samples = 512);

/// One closed or open develop-contour polyline in dbu coordinates.
using ContourLine = std::vector<std::pair<double, double>>;

/// Marching-squares iso-contours of the raster at @p level, with linear
/// interpolation along cell edges and segment stitching into polylines.
std::vector<ContourLine> extract_contours(const Raster& raster, double level);

}  // namespace ebl
