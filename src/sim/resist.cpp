#include "sim/resist.h"

#include <algorithm>
#include <cmath>

namespace ebl {

double ContrastResist::thickness(double exposure) const {
  if (exposure <= 0) return 0.0;
  return std::clamp(gamma_ * std::log10(exposure / e0_), 0.0, 1.0);
}

double ContrastResist::print_threshold() const {
  // thickness = 0.5 at E = E0 * 10^(0.5/gamma).
  return e0_ * std::pow(10.0, 0.5 / gamma_);
}

double ContrastResist::saturation() const { return e0_ * std::pow(10.0, 1.0 / gamma_); }

double ContrastResist::exposure_for_thickness(double t) const {
  expects(t >= 0.0 && t <= 1.0, "exposure_for_thickness: t in [0,1]");
  return e0_ * std::pow(10.0, t / gamma_);
}

}  // namespace ebl
