// Resist response models.
//
// The data-prep abstraction of resist chemistry: a curve mapping absorbed
// exposure (dose-normalized energy density) to remaining resist thickness
// after development. Two standard models:
//  - ThresholdResist: ideal infinite-contrast step at a dose-to-clear.
//  - ContrastResist: the log-linear contrast curve t = gamma*log10(E/E0)
//    clamped to [0,1] — the model grayscale lithography relies on.
// Both are written for negative resists (exposed material remains, as in
// the classic e-beam flows); positive() flips the sense.
#pragma once

#include <memory>

#include "util/contracts.h"

namespace ebl {

/// Interface: exposure -> remaining relative thickness in [0, 1].
class ResistModel {
 public:
  virtual ~ResistModel() = default;

  /// Remaining thickness fraction after development.
  virtual double thickness(double exposure) const = 0;

  /// Exposure at which thickness crosses 0.5 (the printing threshold used
  /// for CD measurement).
  virtual double print_threshold() const = 0;

  /// True when the given exposure leaves resist (prints, negative sense).
  bool prints(double exposure) const { return thickness(exposure) >= 0.5; }
};

/// Ideal step resist: nothing below threshold, full film at or above.
class ThresholdResist final : public ResistModel {
 public:
  explicit ThresholdResist(double threshold) : threshold_(threshold) {
    expects(threshold > 0, "ThresholdResist: threshold must be positive");
  }
  double thickness(double exposure) const override {
    return exposure >= threshold_ ? 1.0 : 0.0;
  }
  double print_threshold() const override { return threshold_; }

 private:
  double threshold_;
};

/// Log-linear contrast curve: t = clamp(gamma * log10(E / E0), 0, 1).
/// E0 is the dose-to-gel (onset); full thickness at E0 * 10^(1/gamma).
class ContrastResist final : public ResistModel {
 public:
  ContrastResist(double gamma, double onset_exposure)
      : gamma_(gamma), e0_(onset_exposure) {
    expects(gamma > 0, "ContrastResist: gamma must be positive");
    expects(onset_exposure > 0, "ContrastResist: onset must be positive");
  }

  double thickness(double exposure) const override;
  double print_threshold() const override;

  double gamma() const { return gamma_; }
  double onset() const { return e0_; }
  /// Exposure that yields full thickness.
  double saturation() const;

  /// Exposure needed for a given target thickness fraction (inverse curve).
  double exposure_for_thickness(double t) const;

 private:
  double gamma_;
  double e0_;
};

}  // namespace ebl
