#include "sim/scenarios.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <utility>

#include "core/job.h"
#include "core/patterns.h"
#include "fracture/fracture.h"
#include "machine/distortion.h"
#include "machine/field.h"
#include "machine/ordering.h"
#include "pec/correction.h"
#include "sim/resist.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace ebl {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

Psf standard_psf() { return Psf::double_gaussian(50.0, 3000.0, 0.7); }

int distinct_doses(const ShotList& shots) {
  std::set<double> doses;
  for (const Shot& s : shots) doses.insert(s.dose);
  return static_cast<int>(doses.size());
}

EpeStats score_shots(const ShotList& shots, const Psf& psf,
                     const PolygonSet& target, double level, EpeOptions epe,
                     int threads) {
  epe.sim.threads = threads;
  return measure_epe(shots, psf, target, level, epe);
}

/// The standard scenario skeleton: run the full run_data_prep pipeline on
/// @p target, then score the printed result of the nominal (unit-dose
/// fractured) write against the corrected write. A straight edge of a
/// locally uniform unit-dose region prints at exactly half the interior
/// exposure — i.e. correctly — so targets here mix large pads with the
/// isolated/small features whose uncorrected print is genuinely wrong;
/// those are the features PEC exists for, and they dominate the probes.
ScenarioResult pipeline_scenario(const char* name, const char* description,
                                 const PolygonSet& target, PrepOptions prep,
                                 const EpeOptions& epe,
                                 const ScenarioOptions& options) {
  ScenarioResult r;
  r.name = name;
  r.description = description;
  prep.threads = options.threads;
  const Psf psf = *prep.pec_psf;

  const ShotList nominal = fracture(target, prep.fracture).shots;

  auto t0 = Clock::now();
  PrepResult res = run_data_prep(target, prep);
  r.prep_ms = ms_since(t0);
  r.pec_iterations = res.pec_iterations;
  r.pec_shards = res.pec_shards;
  if (prep.pec.dose_classes > 0) r.dose_classes_used = distinct_doses(res.shots);

  t0 = Clock::now();
  r.epe_before = score_shots(nominal, psf, target, 0.5, epe, options.threads);
  r.epe_after = score_shots(res.shots, psf, target, 0.5, epe, options.threads);
  r.score_ms = ms_since(t0);

  r.shots = res.shots.size();
  r.corrected = std::move(res.shots);
  return r;
}

/// 12 µm pad next to a 5x5 grid of isolated 1 µm islands.
PolygonSet pad_and_island_grid() {
  PolygonSet s;
  s.insert(Box{0, 0, 12000, 12000});
  for (int iy = 0; iy < 5; ++iy) {
    for (int ix = 0; ix < 5; ++ix) {
      const Coord x = 16000 + 3000 * ix;
      const Coord y = 3000 * iy;
      s.insert(Box{x, y, x + 1000, y + 1000});
    }
  }
  return s;
}

PrepOptions global_pec_prep() {
  PrepOptions prep;
  prep.fracture.max_shot_size = 2000;
  prep.pec_psf = standard_psf();
  prep.pec.max_iterations = 12;
  prep.pec.tolerance = 0.005;
  return prep;
}

ScenarioResult scenario_iso_dense(const ScenarioOptions& options) {
  EpeOptions epe;
  epe.sim.pixel = 25;
  epe.search_window = 400;
  return pipeline_scenario(
      "iso_dense", "12um pad + 5x5 isolated 1um islands, global PEC",
      pad_and_island_grid(), global_pec_prep(), epe, options);
}

ScenarioResult scenario_grating_isoline(const ScenarioOptions& options) {
  // 25%-density grating (undersizes uncorrected) plus an isolated line.
  PolygonSet target = line_space_array({0, 0}, 300, 1200, 12000, 13);
  target.insert(Box{22000, 0, 22300, 12000});
  EpeOptions epe;
  epe.sim.pixel = 25;
  epe.search_window = 400;
  return pipeline_scenario(
      "grating_isoline", "300nm/1200nm grating + isolated 300nm line, global PEC",
      target, global_pec_prep(), epe, options);
}

ScenarioResult scenario_dose_classes(const ScenarioOptions& options) {
  PrepOptions prep = global_pec_prep();
  prep.pec.dose_classes = 16;
  EpeOptions epe;
  epe.sim.pixel = 25;
  epe.search_window = 400;
  return pipeline_scenario(
      "dose_classes_16",
      "iso_dense flow snapped to a 16-entry machine dose table",
      pad_and_island_grid(), prep, epe, options);
}

ScenarioResult scenario_multipass_grayscale(const ScenarioOptions& options) {
  ScenarioResult r;
  r.name = "multipass_grayscale";
  r.description =
      "8-level staircase, 2-pass write, per-level graded PEC, contrast resist";

  const int levels = 8;
  const int passes = 2;
  const Coord step_w = 2000;
  const Coord height = 16000;
  const Coord tile = 2000;
  const ContrastResist resist(1.0, 0.4);
  const Psf psf = standard_psf();

  // One exposure target per shot from the inverse contrast curve; the
  // designed dose is split evenly over the passes (a second pass averages
  // beam-current drift on real machines; here it exercises dose additivity).
  ShotList shots;
  std::vector<double> targets;
  for (int pass = 0; pass < passes; ++pass) {
    for (int i = 0; i < levels; ++i) {
      const double target = resist.exposure_for_thickness((i + 1.0) / levels);
      for (Coord y = 0; y < height; y += tile) {
        shots.push_back({Trapezoid::rect(Box{i * step_w, y, (i + 1) * step_w,
                                             y + tile}),
                         target / passes});
        targets.push_back(target);
      }
    }
  }
  const ShotList nominal = shots;

  // Graded Jacobi PEC: same update rule as correct_proximity, but with a
  // per-shot exposure target instead of the single global one.
  const auto t0 = Clock::now();
  ExposureOptions eopt;
  eopt.threads = options.threads;
  ExposureEvaluator eval(shots, psf, eopt);
  std::vector<double> doses(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) doses[i] = shots[i].dose;
  int iters = 0;
  for (; iters < 15; ++iters) {
    const std::vector<double> exposures = eval.exposures_at_centroids();
    double err = 0.0;
    for (std::size_t i = 0; i < doses.size(); ++i)
      err = std::max(err, std::abs(exposures[i] / targets[i] - 1.0));
    if (err < 0.01) break;
    for (std::size_t i = 0; i < doses.size(); ++i)
      doses[i] = std::clamp(doses[i] * targets[i] / exposures[i], 0.05, 8.0);
    eval.set_doses(doses);
  }
  r.pec_iterations = iters;
  ShotList corrected = shots;
  for (std::size_t i = 0; i < corrected.size(); ++i) corrected[i].dose = doses[i];
  r.prep_ms = ms_since(t0);

  // Grayscale EPE: each inter-step boundary is a printed edge of the level
  // halfway between the two step thicknesses — score the lateral placement
  // of that exposure contour, one print level per boundary.
  const auto score = [&](const ShotList& list) {
    SimOptions sim;
    sim.pixel = 50;
    sim.threads = options.threads;
    const Raster exposure = simulate_exposure(list, psf, sim);
    EpeOptions epe;
    epe.sample_step = 250;
    epe.search_window = 2500;
    epe.corner_exclusion = 2000;
    EpeAccumulator acc;
    for (int i = 0; i + 1 < levels; ++i) {
      const double level = resist.exposure_for_thickness((i + 1.5) / levels);
      const Coord xb = (i + 1) * step_w;
      // Material-left convention: the thicker (higher-exposure) side is +x.
      const std::vector<EpeEdge> edge{{Point{xb, height}, Point{xb, 0}}};
      score_epe(exposure, level, edge, epe, acc);
    }
    return acc.finalize();
  };
  const auto t1 = Clock::now();
  r.epe_before = score(nominal);
  r.epe_after = score(corrected);
  r.score_ms = ms_since(t1);

  r.shots = corrected.size();
  r.corrected = std::move(corrected);
  return r;
}

ScenarioResult scenario_serpentine_order(const ScenarioOptions& options) {
  Rng rng(11);
  const PolygonSet target =
      random_manhattan(rng, Box{0, 0, 40000, 40000}, 0.08, 600, 3000);
  EpeOptions epe;
  epe.sim.pixel = 50;
  epe.search_window = 400;
  ScenarioResult r = pipeline_scenario(
      "serpentine_order",
      "scattered features, global PEC, serpentine write order + settle model",
      target, global_pec_prep(), epe, options);
  // EPE is order-independent; the machine stage reorders the corrected list
  // and the settle model prices the deflection travel it saves.
  const double settle_per_um = 1e-6;
  const double floor_per_figure = 1e-5;
  r.travel_unordered = total_travel(r.corrected);
  r.settle_unordered_s =
      deflection_settle_time(r.corrected, settle_per_um, floor_per_figure);
  order_serpentine(r.corrected, 4000);
  r.travel_ordered = total_travel(r.corrected);
  r.settle_ordered_s =
      deflection_settle_time(r.corrected, settle_per_um, floor_per_figure);
  return r;
}

ScenarioResult scenario_field_distortion(const ScenarioOptions& options) {
  ScenarioResult r;
  r.name = "field_distortion";
  r.description =
      "2x2 exposure fields, deflection distortion + calibrated affine "
      "correction composed with global PEC";

  PolygonSet target;
  for (int fy = 0; fy < 2; ++fy) {
    for (int fx = 0; fx < 2; ++fx) {
      const Coord ox = 10000 * fx;
      const Coord oy = 10000 * fy;
      target.insert(Box{ox + 500, oy + 500, ox + 4500, oy + 4500});
      for (int iy = 0; iy < 2; ++iy) {
        for (int ix = 0; ix < 2; ++ix) {
          const Coord x = ox + 6000 + 3000 * ix;
          const Coord y = oy + 6000 + 3000 * iy;
          target.insert(Box{x, y, x + 1000, y + 1000});
        }
      }
    }
  }

  const DeflectionDistortion dist{.scale_x = 60.0,
                                  .scale_y = -45.0,
                                  .rotation = 40.0,
                                  .pincushion = 15.0,
                                  .offset_x = 6.0,
                                  .offset_y = -9.0};
  // The machine calibrates the affine part against registration marks (with
  // measurement noise) and pre-compensates it; the pincushion residual and
  // the noise floor are what still lands on the resist.
  const DeflectionDistortion residual = calibrate_affine(dist, 7, 0.25, 99);
  DeflectionDistortion fitted;
  fitted.scale_x = dist.scale_x - residual.scale_x;
  fitted.scale_y = dist.scale_y - residual.scale_y;
  fitted.rotation = dist.rotation - residual.rotation;
  fitted.pincushion = dist.pincushion - residual.pincushion;
  fitted.offset_x = dist.offset_x - residual.offset_x;
  fitted.offset_y = dist.offset_y - residual.offset_y;
  r.stitch_uncalibrated = max_stitching_error(dist);
  r.stitch_calibrated = max_stitching_error(residual);

  const Psf psf = standard_psf();
  PrepOptions prep = global_pec_prep();
  prep.threads = options.threads;
  prep.field_size = 10000;

  const auto write_fields = [&](std::vector<FieldJob> fields, bool correct) {
    ShotList written;
    for (FieldJob& f : fields) {
      if (correct) apply_distortion(f.shots, f.field, fitted, -1.0);
      apply_distortion(f.shots, f.field, dist, 1.0);
      written.insert(written.end(), f.shots.begin(), f.shots.end());
    }
    return written;
  };

  // Uncorrected write: nominal doses, raw column distortion.
  const ShotList nominal = fracture(target, prep.fracture).shots;
  const ShotList nominal_written =
      write_fields(partition_fields(nominal, prep.field_size), false);

  auto t0 = Clock::now();
  PrepResult res = run_data_prep(target, prep);
  ShotList corrected_written = write_fields(std::move(res.fields), true);
  r.prep_ms = ms_since(t0);
  r.pec_iterations = res.pec_iterations;

  EpeOptions epe;
  epe.sim.pixel = 25;
  epe.search_window = 400;
  t0 = Clock::now();
  r.epe_before = score_shots(nominal_written, psf, target, 0.5, epe, options.threads);
  r.epe_after =
      score_shots(corrected_written, psf, target, 0.5, epe, options.threads);
  r.score_ms = ms_since(t0);

  r.shots = corrected_written.size();
  r.corrected = std::move(corrected_written);
  return r;
}

ScenarioResult scenario_sharded_pads(const ScenarioOptions& options) {
  PolygonSet target;
  for (int ty = 0; ty < 3; ++ty) {
    for (int tx = 0; tx < 3; ++tx) {
      const Coord ox = 16000 * tx;
      const Coord oy = 16000 * ty;
      target.insert(Box{ox, oy, ox + 4000, oy + 4000});
      for (int iy = 0; iy < 3; ++iy) {
        for (int ix = 0; ix < 3; ++ix) {
          const Coord x = ox + 6000 + 4000 * ix;
          const Coord y = oy + 6000 + 4000 * iy;
          target.insert(Box{x, y, x + 1000, y + 1000});
        }
      }
    }
  }
  PrepOptions prep = global_pec_prep();
  prep.pec.tolerance = 0.01;
  prep.pec.max_iterations = 10;
  prep.pec.shard_size = 16000;  // 3x3 shards over the 47um extent
  EpeOptions epe;
  epe.sim.pixel = 50;
  epe.search_window = 400;
  return pipeline_scenario(
      "sharded_pads", "3x3 pad+island tiles corrected by the sharded PEC pipeline",
      target, prep, epe, options);
}

using ScenarioFn = ScenarioResult (*)(const ScenarioOptions&);

struct ScenarioEntry {
  const char* name;
  ScenarioFn run;
};

constexpr ScenarioEntry kScenarios[] = {
    {"iso_dense", scenario_iso_dense},
    {"grating_isoline", scenario_grating_isoline},
    {"dose_classes_16", scenario_dose_classes},
    {"multipass_grayscale", scenario_multipass_grayscale},
    {"serpentine_order", scenario_serpentine_order},
    {"field_distortion", scenario_field_distortion},
    {"sharded_pads", scenario_sharded_pads},
};

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioEntry& e : kScenarios) names.emplace_back(e.name);
  return names;
}

ScenarioResult run_scenario(const std::string& name,
                            const ScenarioOptions& options) {
  for (const ScenarioEntry& e : kScenarios) {
    if (name == e.name) return e.run(options);
  }
  throw ContractViolation("run_scenario: unknown scenario " + name);
}

std::vector<ScenarioResult> run_scenario_matrix(const ScenarioOptions& options) {
  std::vector<ScenarioResult> results;
  for (const ScenarioEntry& e : kScenarios) results.push_back(e.run(options));
  return results;
}

}  // namespace ebl
