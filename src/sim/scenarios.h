// Machine-realistic write-flow scenarios scored as printed edge placement.
//
// Each scenario runs an end-to-end data-prep flow (fracture -> PEC ->
// machine stage) under one realistic variation — dose-class quantization,
// multi-pass grayscale, shot ordering, field distortion, sharded PEC — and
// scores the *printed result* twice through the exposure simulator and the
// EPE scorer (sim/epe.h): once for the uncorrected write and once for the
// fully corrected one. The contract every scenario must uphold, pinned by
// tests/scenario_matrix_test.cpp and tracked by bench/bench_scenarios.cpp:
// EPE after correction < EPE before, and the corrected shot list is
// bitwise identical for any thread count.
#pragma once

#include <string>
#include <vector>

#include "fracture/shot.h"
#include "sim/epe.h"

namespace ebl {

struct ScenarioOptions {
  /// Worker threads for the PEC solve and the simulations (0 = auto:
  /// EBL_THREADS, then hardware concurrency). Results are bit-identical
  /// for any value.
  int threads = 0;
};

struct ScenarioResult {
  std::string name;
  std::string description;

  std::size_t shots = 0;       ///< corrected flow's final shot count
  EpeStats epe_before;         ///< uncorrected write (unit/nominal doses)
  EpeStats epe_after;          ///< corrected write (PEC + machine stages)

  double prep_ms = 0.0;        ///< data-prep wall clock (corrected flow)
  double score_ms = 0.0;       ///< simulation + EPE scoring wall clock

  int pec_iterations = 0;
  int pec_shards = 0;          ///< sharded scenarios; 0 = global solve
  int dose_classes_used = 0;   ///< quantized scenarios; 0 = continuous

  /// Ordering scenario: deflection travel (dbu) and settle time (s) of the
  /// pipeline order vs the machine order. Negative = not applicable.
  double travel_unordered = -1.0;
  double travel_ordered = -1.0;
  double settle_unordered_s = -1.0;
  double settle_ordered_s = -1.0;

  /// Distortion scenario: field-stitching error (dbu) before and after
  /// affine calibration. Negative = not applicable.
  double stitch_uncalibrated = -1.0;
  double stitch_calibrated = -1.0;

  /// The corrected, machine-ordered shot list the scenario would hand to
  /// the writer — kept so callers can assert bitwise determinism.
  ShotList corrected;
};

/// Names of all scenarios in the matrix, in run order.
std::vector<std::string> scenario_names();

/// Runs one scenario by name. Throws ContractViolation for unknown names.
ScenarioResult run_scenario(const std::string& name,
                            const ScenarioOptions& options = {});

/// Runs the whole matrix.
std::vector<ScenarioResult> run_scenario_matrix(const ScenarioOptions& options = {});

}  // namespace ebl
