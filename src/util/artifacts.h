// Where benches and examples drop their data artifacts (figure CSVs, EBF /
// GDS outputs). By default they land in the working directory; setting
// EBL_ARTIFACT_DIR routes them elsewhere (CI points it at build/ so repeated
// runs never litter the repo root). Benchmark trajectory files
// (BENCH_*.json) intentionally do NOT use this: they are tracked history and
// belong at the repo root.
#pragma once

#include <cstdlib>
#include <string>

namespace ebl {

/// @p name prefixed with $EBL_ARTIFACT_DIR when set (and non-empty), else
/// unchanged. The directory must already exist; no separators are added
/// beyond one '/'.
inline std::string artifact_path(const std::string& name) {
  const char* dir = std::getenv("EBL_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0') return name;
  std::string path = dir;
  if (path.back() != '/') path += '/';
  return path + name;
}

}  // namespace ebl
