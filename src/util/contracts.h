// Lightweight contract checks in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Violations throw, so tests can assert on them and
// library users get a diagnosable error instead of UB.
#pragma once

#include <stdexcept>
#include <string>

namespace ebl {

/// Thrown when a precondition of a public API is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when input data (files, records) is malformed.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

/// Precondition check: call at entry of public functions.
inline void expects(bool cond, const char* msg) {
  if (!cond) throw ContractViolation(std::string("precondition failed: ") + msg);
}

/// Postcondition / internal invariant check.
inline void ensures(bool cond, const char* msg) {
  if (!cond) throw ContractViolation(std::string("invariant failed: ") + msg);
}

}  // namespace ebl
