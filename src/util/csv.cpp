#include "util/csv.h"

#include "util/contracts.h"

namespace ebl {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw DataError("CsvWriter: cannot open " + path);
}

void CsvWriter::header(const std::vector<std::string>& names) {
  expects(!wrote_header_, "CsvWriter::header called twice");
  wrote_header_ = true;
  write_row(names);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace ebl
