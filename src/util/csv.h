// Small CSV writer used by benches and examples to dump experiment data in a
// form that plotting scripts can consume directly.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ebl {

/// Streams rows of comma-separated values to a file. Values are formatted
/// with operator<<; strings containing commas or quotes are quoted.
class CsvWriter {
 public:
  /// Opens @p path for writing; throws DataError on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row. Call at most once, before any row().
  void header(const std::vector<std::string>& names);

  /// Appends one row; each argument becomes one cell.
  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> v;
    (v.push_back(format(cells)), ...);
    write_row(v);
  }

  void write_row(const std::vector<std::string>& cells);

 private:
  template <typename T>
  static std::string format(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  static std::string escape(const std::string& cell);

  std::ofstream out_;
  bool wrote_header_ = false;
};

}  // namespace ebl
