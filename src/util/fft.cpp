#include "util/fft.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/contracts.h"
#include "util/parallel.h"

namespace ebl {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Radix-3/5 butterfly constants: cos/sin of the fifth roots of unity and
// sin(pi/3). Literal values (17 digits) so the plans carry no libm
// cross-platform wobble.
constexpr double kSin60 = 0.86602540378443865;   // sqrt(3)/2
constexpr double kCos72 = 0.30901699437494742;   // cos(2 pi / 5)
constexpr double kCos144 = -0.80901699437494745; // cos(4 pi / 5)
constexpr double kSin72 = 0.95105651629515353;   // sin(2 pi / 5)
constexpr double kSin144 = 0.58778525229247314;  // sin(4 pi / 5)

}  // namespace

std::size_t fft_next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool fft_is_fast_size(std::size_t n) {
  if (n == 0) return false;
  for (const std::size_t r : {std::size_t{2}, std::size_t{3}, std::size_t{5}})
    while (n % r == 0) n /= r;
  return n == 1;
}

std::size_t fft_next_fast(std::size_t n) {
  if (n <= 1) return 1;
  // The next power of two is always a candidate, and bounds the search: only
  // odd-part factors 3^b * 5^c below it can seed something smaller.
  std::size_t best = fft_next_pow2(n);
  for (std::size_t p5 = 1; p5 < best; p5 *= 5) {
    for (std::size_t p35 = p5; p35 < best; p35 *= 3) {
      std::size_t v = p35;
      while (v < n) v <<= 1;
      best = std::min(best, v);
    }
  }
  return best;
}

std::size_t fft_next_fast_even(std::size_t n) {
  if (n <= 2) return 2;
  std::size_t best = fft_next_pow2(n);
  for (std::size_t p5 = 1; p5 < best; p5 *= 5) {
    for (std::size_t p35 = p5; p35 < best; p35 *= 3) {
      std::size_t v = p35;
      while (v < n) v <<= 1;
      if (v & 1) v <<= 1;  // odd candidate: the family's next even member
      best = std::min(best, v);
    }
  }
  return best;
}

Fft::Fft(std::size_t n) : n_(n) {
  expects(fft_is_fast_size(n), "Fft: size must be of the form 2^a * 3^b * 5^c");

  // Stage order: radix-2 stages first, then 3, then 5. For pure powers of
  // two this reproduces the classic radix-2 schedule (and its bit-reversal
  // permutation) exactly, so pow2 plans compute bit-identical results to the
  // radix-2-only engine this generalizes.
  std::vector<std::uint32_t> factors;
  std::size_t rem = n_;
  for (const std::uint32_t r : {2u, 3u, 5u})
    while (rem % r == 0) {
      factors.push_back(r);
      rem /= r;
    }

  // Digit-reversal permutation, built top-down: the LAST stage (radix r)
  // combines the r sequences decimated by r, so they occupy the r sub-blocks
  // in order, each recursively permuted by the remaining factors.
  perm_.resize(n_);
  struct Frame {
    std::size_t arr, len, src, stride;
    int fi;
  };
  std::vector<Frame> stack;
  stack.push_back({0, n_, 0, 1, static_cast<int>(factors.size()) - 1});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.len == 1) {
      perm_[f.arr] = static_cast<std::uint32_t>(f.src);
      continue;
    }
    const std::size_t r = factors[static_cast<std::size_t>(f.fi)];
    const std::size_t sub = f.len / r;
    for (std::size_t q = 0; q < r; ++q)
      stack.push_back({f.arr + q * sub, sub, f.src + q * f.stride, f.stride * r,
                       f.fi - 1});
  }
  // Pure-radix permutations are involutions (bit reversal being the radix-2
  // case) and permute in place by pair swaps; mixed digit reversals need a
  // gather through scratch.
  perm_is_swap_ = true;
  for (std::size_t i = 0; i < n_; ++i) {
    if (perm_[perm_[i]] != i) {
      perm_is_swap_ = false;
      break;
    }
  }

  // Stage table and packed twiddles: the stage growing sub-transforms from h
  // to m = radix * h stores exp(-2 pi i q j / m), q = 1..radix-1, j < h.
  std::size_t total = 0;
  std::size_t h = 1;
  for (const std::uint32_t r : factors) {
    stages_.push_back({r, h, total});
    total += (r - 1) * h;
    h *= r;
  }
  tw_.resize(total);
  for (const Stage& st : stages_) {
    const std::size_t m = st.h * st.radix;
    for (std::uint32_t q = 1; q < st.radix; ++q) {
      for (std::size_t j = 0; j < st.h; ++j) {
        const double a = -2.0 * kPi * static_cast<double>(q) *
                         static_cast<double>(j) / static_cast<double>(m);
        tw_[st.off + (q - 1) * st.h + j] = {std::cos(a), std::sin(a)};
      }
    }
  }
}

void Fft::transform(std::complex<double>* a, bool inverse) const {
  if (n_ <= 1) return;
  if (perm_is_swap_) {
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t j = perm_[i];
      if (i < j) std::swap(a[i], a[j]);
    }
  } else {
    thread_local std::vector<std::complex<double>> scratch;
    scratch.resize(n_);
    std::memcpy(scratch.data(), a, n_ * sizeof(a[0]));
    for (std::size_t i = 0; i < n_; ++i) a[i] = scratch[perm_[i]];
  }

  // The twiddles' imaginary parts flip sign for the inverse; everything else
  // is identical, so one loop per radix serves both directions.
  const double s = inverse ? -1.0 : 1.0;
  for (const Stage& st : stages_) {
    const std::size_t h = st.h;
    const std::size_t m = h * st.radix;
    const std::complex<double>* w = tw_.data() + st.off;
    switch (st.radix) {
      case 2:
        for (std::size_t k = 0; k < n_; k += m) {
          for (std::size_t j = 0; j < h; ++j) {
            const double wr = w[j].real();
            const double wi = s * w[j].imag();
            std::complex<double>& lo = a[k + j];
            std::complex<double>& hi = a[k + j + h];
            const double tr = hi.real() * wr - hi.imag() * wi;
            const double ti = hi.real() * wi + hi.imag() * wr;
            const double ur = lo.real();
            const double ui = lo.imag();
            lo = {ur + tr, ui + ti};
            hi = {ur - tr, ui - ti};
          }
        }
        break;
      case 3:
        for (std::size_t k = 0; k < n_; k += m) {
          for (std::size_t j = 0; j < h; ++j) {
            const double w1r = w[j].real(), w1i = s * w[j].imag();
            const double w2r = w[h + j].real(), w2i = s * w[h + j].imag();
            const std::complex<double> b1 = a[k + j + h];
            const std::complex<double> b2 = a[k + j + 2 * h];
            const double z1r = b1.real() * w1r - b1.imag() * w1i;
            const double z1i = b1.real() * w1i + b1.imag() * w1r;
            const double z2r = b2.real() * w2r - b2.imag() * w2i;
            const double z2i = b2.real() * w2i + b2.imag() * w2r;
            const double z0r = a[k + j].real();
            const double z0i = a[k + j].imag();
            // X0 = z0 + (z1 + z2); X1,2 = z0 - (z1+z2)/2 -+ i s (sqrt3/2)(z1-z2)
            const double ur = z1r + z2r, ui = z1i + z2i;
            const double vr = z1r - z2r, vi = z1i - z2i;
            const double m1r = z0r - 0.5 * ur, m1i = z0i - 0.5 * ui;
            const double m2r = s * kSin60 * vi, m2i = -s * kSin60 * vr;
            a[k + j] = {z0r + ur, z0i + ui};
            a[k + j + h] = {m1r + m2r, m1i + m2i};
            a[k + j + 2 * h] = {m1r - m2r, m1i - m2i};
          }
        }
        break;
      default:  // radix 5
        for (std::size_t k = 0; k < n_; k += m) {
          for (std::size_t j = 0; j < h; ++j) {
            double zr[5], zi[5];
            zr[0] = a[k + j].real();
            zi[0] = a[k + j].imag();
            for (std::uint32_t q = 1; q < 5; ++q) {
              const std::complex<double> wq = w[(q - 1) * h + j];
              const double wr = wq.real(), wi = s * wq.imag();
              const std::complex<double> b = a[k + j + q * h];
              zr[q] = b.real() * wr - b.imag() * wi;
              zi[q] = b.real() * wi + b.imag() * wr;
            }
            const double t1r = zr[1] + zr[4], t1i = zi[1] + zi[4];
            const double t2r = zr[2] + zr[3], t2i = zi[2] + zi[3];
            const double t3r = zr[1] - zr[4], t3i = zi[1] - zi[4];
            const double t4r = zr[2] - zr[3], t4i = zi[2] - zi[3];
            const double m1r = zr[0] + kCos72 * t1r + kCos144 * t2r;
            const double m1i = zi[0] + kCos72 * t1i + kCos144 * t2i;
            const double m2r = zr[0] + kCos144 * t1r + kCos72 * t2r;
            const double m2i = zi[0] + kCos144 * t1i + kCos72 * t2i;
            const double u1r = kSin72 * t3r + kSin144 * t4r;
            const double u1i = kSin72 * t3i + kSin144 * t4i;
            const double u2r = kSin144 * t3r - kSin72 * t4r;
            const double u2i = kSin144 * t3i - kSin72 * t4i;
            a[k + j] = {zr[0] + t1r + t2r, zi[0] + t1i + t2i};
            // X_q = m -+ i s u: multiplying u by -i s adds (s u_i, -s u_r).
            a[k + j + h] = {m1r + s * u1i, m1i - s * u1r};
            a[k + j + 2 * h] = {m2r + s * u2i, m2i - s * u2r};
            a[k + j + 3 * h] = {m2r - s * u2i, m2i + s * u2r};
            a[k + j + 4 * h] = {m1r - s * u1i, m1i + s * u1r};
          }
        }
        break;
    }
  }
}

RealFft::RealFft(std::size_t n)
    : n_(n),
      half_(n >= 2 && n % 2 == 0 && fft_is_fast_size(n) ? n / 2 : 1) {
  expects(n >= 2 && n % 2 == 0 && fft_is_fast_size(n),
          "RealFft: size must be an even 2^a * 3^b * 5^c >= 2");
  // Untangle twiddles exp(-2 pi i k / n) for the paired bins k = 0 .. n/4.
  w_.resize(n_ / 4 + 1);
  for (std::size_t k = 0; k < w_.size(); ++k) {
    const double a = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n_);
    w_[k] = {std::cos(a), std::sin(a)};
  }
}

void RealFft::forward(const double* in, std::complex<double>* spec) const {
  const std::size_t h = n_ / 2;
  if (h == 1) {
    spec[0] = in[0] + in[1];
    spec[1] = in[0] - in[1];
    return;
  }
  // Pack adjacent real pairs into complex slots and run the half-size FFT.
  for (std::size_t j = 0; j < h; ++j) spec[j] = {in[2 * j], in[2 * j + 1]};
  half_.forward(spec);

  // Untangle: with Ze/Zo the even/odd-sample spectra hidden in Z,
  //   X[k]     = Ze + w^k Zo,
  //   X[h - k] = conj(Ze - w^k Zo),        w^k = exp(-2 pi i k / n).
  // For odd h the loop to k = h/2 (rounded down) still pairs every bin
  // exactly once — there is just no self-paired middle bin.
  const std::complex<double> z0 = spec[0];
  spec[0] = {z0.real() + z0.imag(), 0.0};
  spec[h] = {z0.real() - z0.imag(), 0.0};
  for (std::size_t k = 1; k <= h / 2; ++k) {
    const std::size_t kc = h - k;
    const std::complex<double> zk = spec[k];
    const std::complex<double> zkc = spec[kc];
    const std::complex<double> ze = 0.5 * (zk + std::conj(zkc));
    const std::complex<double> zo_2i = zk - std::conj(zkc);  // 2 i Zo
    const std::complex<double> zo{0.5 * zo_2i.imag(), -0.5 * zo_2i.real()};
    const std::complex<double> t = w_[k] * zo;
    spec[k] = ze + t;
    spec[kc] = std::conj(ze - t);
  }
}

void RealFft::inverse(std::complex<double>* spec, double* out) const {
  const std::size_t h = n_ / 2;
  if (h == 1) {
    out[0] = 0.5 * (spec[0].real() + spec[1].real());
    out[1] = 0.5 * (spec[0].real() - spec[1].real());
    return;
  }
  // Re-tangle the packed half-size spectrum: invert the forward identities
  // (Zo = conj(w^k) (X[k] - conj(X[h-k])) / 2), then one half-size inverse.
  const std::complex<double> x0 = spec[0];
  const std::complex<double> xh = spec[h];
  spec[0] = {0.5 * (x0.real() + xh.real()), 0.5 * (x0.real() - xh.real())};
  for (std::size_t k = 1; k <= h / 2; ++k) {
    const std::size_t kc = h - k;
    const std::complex<double> xk = spec[k];
    const std::complex<double> xkc = spec[kc];
    const std::complex<double> ze = 0.5 * (xk + std::conj(xkc));
    const std::complex<double> wzo = 0.5 * (xk - std::conj(xkc));  // w^k Zo
    const std::complex<double> zo = std::conj(w_[k]) * wzo;
    // Z[k] = Ze + i Zo; Z[h-k] = conj(Ze) + i conj(Zo).
    spec[k] = {ze.real() - zo.imag(), ze.imag() + zo.real()};
    spec[kc] = {ze.real() + zo.imag(), -ze.imag() + zo.real()};
  }
  half_.inverse(spec);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = spec[j].real();
    out[2 * j + 1] = spec[j].imag();
  }
}

FftConvolver::FftConvolver(int nx, int ny, int max_radius, int threads)
    : nx_(nx),
      ny_(ny),
      max_radius_(max_radius),
      threads_(threads),
      px_(fft_next_fast_even(static_cast<std::size_t>(nx) +
                             static_cast<std::size_t>(std::max(1, max_radius)))),
      py_(fft_next_fast(static_cast<std::size_t>(ny) +
                        static_cast<std::size_t>(std::max(1, max_radius)))),
      w_(px_ / 2 + 1),
      row_(px_),  // nx, max_radius >= 1 makes px_ >= 2, as RealFft requires
      col_(py_) {
  expects(nx >= 1 && ny >= 1, "FftConvolver: image must be at least 1x1");
  expects(max_radius >= 1, "FftConvolver: max_radius must be >= 1");
  spec_.resize(w_ * py_);
}

namespace {

/// Rows are processed in blocks so the row-spectrum <-> column-major
/// transposes touch each cache line a handful of times instead of once per
/// element. 32 rows of complex bins keep the block under a few MB for any
/// plan in this codebase.
constexpr std::size_t kRowBlock = 32;

}  // namespace

void FftConvolver::load(const double* img) {
  const std::size_t nblocks =
      (static_cast<std::size_t>(ny_) + kRowBlock - 1) / kRowBlock;

  // Row pass: real FFT of each zero-padded image row, transposed into the
  // column-major spectrum so the column pass walks contiguous memory.
  parallel_for(
      nblocks,
      [&](std::size_t b0, std::size_t b1) {
        thread_local std::vector<double> rowbuf;
        thread_local std::vector<std::complex<double>> blockspec;
        rowbuf.resize(px_);
        blockspec.resize(kRowBlock * w_);
        for (std::size_t b = b0; b < b1; ++b) {
          const std::size_t y0 = b * kRowBlock;
          const std::size_t rows = std::min(kRowBlock, static_cast<std::size_t>(ny_) - y0);
          for (std::size_t r = 0; r < rows; ++r) {
            const double* src = img + (y0 + r) * static_cast<std::size_t>(nx_);
            std::memcpy(rowbuf.data(), src, sizeof(double) * static_cast<std::size_t>(nx_));
            std::fill(rowbuf.begin() + nx_, rowbuf.end(), 0.0);
            row_.forward(rowbuf.data(), blockspec.data() + r * w_);
          }
          for (std::size_t w = 0; w < w_; ++w) {
            std::complex<double>* dst = spec_.data() + w * py_ + y0;
            for (std::size_t r = 0; r < rows; ++r) dst[r] = blockspec[r * w_ + w];
          }
        }
      },
      threads_);

  // Column pass: plain complex FFT down each (contiguous) column; rows past
  // the image are the zero padding.
  parallel_for(
      w_,
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t w = c0; w < c1; ++w) {
          std::complex<double>* col = spec_.data() + w * py_;
          std::fill(col + ny_, col + py_, std::complex<double>{0.0, 0.0});
          col_.forward(col);
        }
      },
      threads_);
}

void FftConvolver::make_spectra(const std::vector<double>& taps,
                                KernelSpec& ks) const {
  // Exact spectra of the truncated symmetric kernel along each padded axis:
  // K[m] = t0 + 2 sum_j t[j] cos(2 pi j m / P). The inverse-transform
  // scaling (1/py for the column FFT, 2/px for the packed row FFT) is folded
  // into kx so the spectral multiply is the only scaled pass.
  const std::size_t radius = taps.size() - 1;
  ks.taps = taps;
  ks.kx.resize(w_);
  ks.ky.resize(py_);
  const double scale =
      1.0 / (static_cast<double>(py_) * (static_cast<double>(px_) / 2.0));
  for (std::size_t m = 0; m < w_; ++m) {
    double v = taps[0];
    for (std::size_t j = 1; j <= radius; ++j) {
      v += 2.0 * taps[j] *
           std::cos(2.0 * kPi * static_cast<double>(j) * static_cast<double>(m) /
                    static_cast<double>(px_));
    }
    ks.kx[m] = v * scale;
  }
  for (std::size_t m = 0; m < py_; ++m) {
    double v = taps[0];
    for (std::size_t j = 1; j <= radius; ++j) {
      v += 2.0 * taps[j] *
           std::cos(2.0 * kPi * static_cast<double>(j) * static_cast<double>(m) /
                    static_cast<double>(py_));
    }
    ks.ky[m] = v;
  }
}

int FftConvolver::add_kernel(const std::vector<double>& taps) {
  expects(!taps.empty(), "FftConvolver::add_kernel: empty kernel");
  expects(static_cast<int>(taps.size()) - 1 <= max_radius_,
          "FftConvolver::add_kernel: kernel wider than the planned max_radius");
  for (std::size_t i = 0; i < kernels_.size(); ++i)
    if (kernels_[i].taps == taps) return static_cast<int>(i);
  KernelSpec ks;
  make_spectra(taps, ks);
  kernels_.push_back(std::move(ks));
  return static_cast<int>(kernels_.size()) - 1;
}

void FftConvolver::apply(const std::vector<const KernelSpec*>& ks,
                         const std::vector<double*>& outs) const {
  const std::size_t nk = ks.size();
  if (work_.size() < nk) work_.resize(nk);
  for (std::size_t n = 0; n < nk; ++n) work_[n].resize(spec_.size());

  // Column pass: one walk over the cached forward transform serves every
  // kernel — the loaded column stays hot while each kernel multiplies it by
  // its separable spectrum and inverse-transforms into its own scratch.
  parallel_for(
      w_,
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t w = c0; w < c1; ++w) {
          const std::complex<double>* src = spec_.data() + w * py_;
          for (std::size_t n = 0; n < nk; ++n) {
            std::complex<double>* dst = work_[n].data() + w * py_;
            const double cw = ks[n]->kx[w];
            const double* ky = ks[n]->ky.data();
            for (std::size_t y = 0; y < py_; ++y) dst[y] = src[y] * (cw * ky[y]);
            col_.inverse(dst);
          }
        }
      },
      threads_);

  // Row pass per kernel: gather each image row's bins back out of the
  // column-major scratch (block-transposed) and real-inverse-transform;
  // rows in the padding are never materialized.
  const std::size_t nblocks =
      (static_cast<std::size_t>(ny_) + kRowBlock - 1) / kRowBlock;
  for (std::size_t n = 0; n < nk; ++n) {
    const std::vector<std::complex<double>>& work = work_[n];
    double* out = outs[n];
    parallel_for(
        nblocks,
        [&](std::size_t b0, std::size_t b1) {
          thread_local std::vector<double> rowbuf;
          thread_local std::vector<std::complex<double>> blockspec;
          rowbuf.resize(px_);
          blockspec.resize(kRowBlock * w_);
          for (std::size_t b = b0; b < b1; ++b) {
            const std::size_t y0 = b * kRowBlock;
            const std::size_t rows =
                std::min(kRowBlock, static_cast<std::size_t>(ny_) - y0);
            for (std::size_t w = 0; w < w_; ++w) {
              const std::complex<double>* src = work.data() + w * py_ + y0;
              for (std::size_t r = 0; r < rows; ++r) blockspec[r * w_ + w] = src[r];
            }
            for (std::size_t r = 0; r < rows; ++r) {
              row_.inverse(blockspec.data() + r * w_, rowbuf.data());
              std::memcpy(out + (y0 + r) * static_cast<std::size_t>(nx_), rowbuf.data(),
                          sizeof(double) * static_cast<std::size_t>(nx_));
            }
          }
        },
        threads_);
  }
}

void FftConvolver::convolve(const std::vector<double>& taps, double* out) const {
  expects(!taps.empty(), "FftConvolver::convolve: empty kernel");
  expects(static_cast<int>(taps.size()) - 1 <= max_radius_,
          "FftConvolver::convolve: kernel wider than the planned max_radius");
  // Registered kernels are served from the plan's spectrum cache; ad-hoc
  // kernels derive their spectra on the spot (same arithmetic either way).
  for (const KernelSpec& ks : kernels_) {
    if (ks.taps == taps) {
      apply({&ks}, {out});
      return;
    }
  }
  KernelSpec ks;
  make_spectra(taps, ks);
  apply({&ks}, {out});
}

void FftConvolver::convolve_registered(const std::vector<int>& ids,
                                       const std::vector<double*>& outs) const {
  expects(ids.size() == outs.size(),
          "FftConvolver::convolve_registered: ids/outs size mismatch");
  if (ids.empty()) return;
  std::vector<const KernelSpec*> ks;
  ks.reserve(ids.size());
  for (const int id : ids) {
    expects(id >= 0 && id < kernel_count(),
            "FftConvolver::convolve_registered: unknown kernel id");
    ks.push_back(&kernels_[static_cast<std::size_t>(id)]);
  }
  apply(ks, outs);
}

double FftConvolver::transform_cost(int nx, int ny, int max_radius) {
  const double px = static_cast<double>(fft_next_fast_even(
      static_cast<std::size_t>(nx) + static_cast<std::size_t>(std::max(1, max_radius))));
  const double py = static_cast<double>(fft_next_fast(
      static_cast<std::size_t>(ny) + static_cast<std::size_t>(std::max(1, max_radius))));
  // ~2.5 flops per point per log2 level for a real-optimized transform
  // (radix-3/5 stages cost slightly more per level, but log2 of the snug
  // mixed-radix size remains the right work proxy).
  return 2.5 * px * py * (std::log2(px) + std::log2(py));
}

}  // namespace ebl
