#include "util/fft.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/contracts.h"
#include "util/parallel.h"

namespace ebl {

namespace {

constexpr double kPi = 3.14159265358979323846;

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

std::size_t fft_next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Fft::Fft(std::size_t n) : n_(n) {
  expects(is_pow2(n), "Fft: size must be a power of two");
  rev_.resize(n_);
  int bits = 0;
  while ((std::size_t{1} << bits) < n_) ++bits;
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t r = 0;
    for (int b = 0; b < bits; ++b) r |= ((i >> b) & 1u) << (bits - 1 - b);
    rev_[i] = static_cast<std::uint32_t>(r);
  }
  // Stage-packed twiddles: the stage of butterfly span m stores the h = m/2
  // factors exp(-2 pi i j / m) at offset h - 1 (offsets 0, 1, 3, 7, ...).
  if (n_ > 1) tw_.resize(n_ - 1);
  for (std::size_t m = 2; m <= n_; m <<= 1) {
    const std::size_t h = m >> 1;
    for (std::size_t j = 0; j < h; ++j) {
      const double a = -2.0 * kPi * static_cast<double>(j) / static_cast<double>(m);
      tw_[h - 1 + j] = {std::cos(a), std::sin(a)};
    }
  }
}

void Fft::transform(std::complex<double>* a, bool inverse) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  // The twiddle's imaginary part flips sign for the inverse; everything else
  // is identical, so one butterfly loop serves both directions.
  const double s = inverse ? -1.0 : 1.0;
  for (std::size_t m = 2; m <= n_; m <<= 1) {
    const std::size_t h = m >> 1;
    const std::complex<double>* w = &tw_[h - 1];
    for (std::size_t k = 0; k < n_; k += m) {
      for (std::size_t j = 0; j < h; ++j) {
        const double wr = w[j].real();
        const double wi = s * w[j].imag();
        std::complex<double>& lo = a[k + j];
        std::complex<double>& hi = a[k + j + h];
        const double tr = hi.real() * wr - hi.imag() * wi;
        const double ti = hi.real() * wi + hi.imag() * wr;
        const double ur = lo.real();
        const double ui = lo.imag();
        lo = {ur + tr, ui + ti};
        hi = {ur - tr, ui - ti};
      }
    }
  }
}

RealFft::RealFft(std::size_t n) : n_(n), half_(is_pow2(n) && n >= 2 ? n / 2 : 1) {
  expects(is_pow2(n) && n >= 2, "RealFft: size must be a power of two >= 2");
  // Untangle twiddles exp(-2 pi i k / n) for the paired bins k = 0 .. n/4.
  w_.resize(n_ / 4 + 1);
  for (std::size_t k = 0; k < w_.size(); ++k) {
    const double a = -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n_);
    w_[k] = {std::cos(a), std::sin(a)};
  }
}

void RealFft::forward(const double* in, std::complex<double>* spec) const {
  const std::size_t h = n_ / 2;
  if (h == 1) {
    spec[0] = in[0] + in[1];
    spec[1] = in[0] - in[1];
    return;
  }
  // Pack adjacent real pairs into complex slots and run the half-size FFT.
  for (std::size_t j = 0; j < h; ++j) spec[j] = {in[2 * j], in[2 * j + 1]};
  half_.forward(spec);

  // Untangle: with Ze/Zo the even/odd-sample spectra hidden in Z,
  //   X[k]     = Ze + w^k Zo,
  //   X[h - k] = conj(Ze - w^k Zo),        w^k = exp(-2 pi i k / n).
  const std::complex<double> z0 = spec[0];
  spec[0] = {z0.real() + z0.imag(), 0.0};
  spec[h] = {z0.real() - z0.imag(), 0.0};
  for (std::size_t k = 1; k <= h / 2; ++k) {
    const std::size_t kc = h - k;
    const std::complex<double> zk = spec[k];
    const std::complex<double> zkc = spec[kc];
    const std::complex<double> ze = 0.5 * (zk + std::conj(zkc));
    const std::complex<double> zo_2i = zk - std::conj(zkc);  // 2 i Zo
    const std::complex<double> zo{0.5 * zo_2i.imag(), -0.5 * zo_2i.real()};
    const std::complex<double> t = w_[k] * zo;
    spec[k] = ze + t;
    spec[kc] = std::conj(ze - t);
  }
}

void RealFft::inverse(std::complex<double>* spec, double* out) const {
  const std::size_t h = n_ / 2;
  if (h == 1) {
    out[0] = 0.5 * (spec[0].real() + spec[1].real());
    out[1] = 0.5 * (spec[0].real() - spec[1].real());
    return;
  }
  // Re-tangle the packed half-size spectrum: invert the forward identities
  // (Zo = conj(w^k) (X[k] - conj(X[h-k])) / 2), then one half-size inverse.
  const std::complex<double> x0 = spec[0];
  const std::complex<double> xh = spec[h];
  spec[0] = {0.5 * (x0.real() + xh.real()), 0.5 * (x0.real() - xh.real())};
  for (std::size_t k = 1; k <= h / 2; ++k) {
    const std::size_t kc = h - k;
    const std::complex<double> xk = spec[k];
    const std::complex<double> xkc = spec[kc];
    const std::complex<double> ze = 0.5 * (xk + std::conj(xkc));
    const std::complex<double> wzo = 0.5 * (xk - std::conj(xkc));  // w^k Zo
    const std::complex<double> zo = std::conj(w_[k]) * wzo;
    // Z[k] = Ze + i Zo; Z[h-k] = conj(Ze) + i conj(Zo).
    spec[k] = {ze.real() - zo.imag(), ze.imag() + zo.real()};
    spec[kc] = {ze.real() + zo.imag(), -ze.imag() + zo.real()};
  }
  half_.inverse(spec);
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = spec[j].real();
    out[2 * j + 1] = spec[j].imag();
  }
}

FftConvolver::FftConvolver(int nx, int ny, int max_radius, int threads)
    : nx_(nx),
      ny_(ny),
      max_radius_(max_radius),
      threads_(threads),
      px_(fft_next_pow2(static_cast<std::size_t>(nx) + static_cast<std::size_t>(std::max(1, max_radius)))),
      py_(fft_next_pow2(static_cast<std::size_t>(ny) + static_cast<std::size_t>(std::max(1, max_radius)))),
      w_(px_ / 2 + 1),
      row_(px_),  // nx, max_radius >= 1 makes px_ >= 2, as RealFft requires
      col_(py_) {
  expects(nx >= 1 && ny >= 1, "FftConvolver: image must be at least 1x1");
  expects(max_radius >= 1, "FftConvolver: max_radius must be >= 1");
  spec_.resize(w_ * py_);
}

namespace {

/// Rows are processed in blocks so the row-spectrum <-> column-major
/// transposes touch each cache line a handful of times instead of once per
/// element. 32 rows of complex bins keep the block under a few MB for any
/// plan in this codebase.
constexpr std::size_t kRowBlock = 32;

}  // namespace

void FftConvolver::load(const double* img) {
  const std::size_t nblocks =
      (static_cast<std::size_t>(ny_) + kRowBlock - 1) / kRowBlock;

  // Row pass: real FFT of each zero-padded image row, transposed into the
  // column-major spectrum so the column pass walks contiguous memory.
  parallel_for(
      nblocks,
      [&](std::size_t b0, std::size_t b1) {
        thread_local std::vector<double> rowbuf;
        thread_local std::vector<std::complex<double>> blockspec;
        rowbuf.resize(px_);
        blockspec.resize(kRowBlock * w_);
        for (std::size_t b = b0; b < b1; ++b) {
          const std::size_t y0 = b * kRowBlock;
          const std::size_t rows = std::min(kRowBlock, static_cast<std::size_t>(ny_) - y0);
          for (std::size_t r = 0; r < rows; ++r) {
            const double* src = img + (y0 + r) * static_cast<std::size_t>(nx_);
            std::memcpy(rowbuf.data(), src, sizeof(double) * static_cast<std::size_t>(nx_));
            std::fill(rowbuf.begin() + nx_, rowbuf.end(), 0.0);
            row_.forward(rowbuf.data(), blockspec.data() + r * w_);
          }
          for (std::size_t w = 0; w < w_; ++w) {
            std::complex<double>* dst = spec_.data() + w * py_ + y0;
            for (std::size_t r = 0; r < rows; ++r) dst[r] = blockspec[r * w_ + w];
          }
        }
      },
      threads_);

  // Column pass: plain complex FFT down each (contiguous) column; rows past
  // the image are the zero padding.
  parallel_for(
      w_,
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t w = c0; w < c1; ++w) {
          std::complex<double>* col = spec_.data() + w * py_;
          std::fill(col + ny_, col + py_, std::complex<double>{0.0, 0.0});
          col_.forward(col);
        }
      },
      threads_);
}

void FftConvolver::convolve(const std::vector<double>& taps, double* out) const {
  expects(!taps.empty(), "FftConvolver::convolve: empty kernel");
  expects(static_cast<int>(taps.size()) - 1 <= max_radius_,
          "FftConvolver::convolve: kernel wider than the planned max_radius");
  work_.resize(spec_.size());

  // Exact spectra of the truncated symmetric kernel along each padded axis:
  // K[m] = t0 + 2 sum_j t[j] cos(2 pi j m / P). The inverse-transform
  // scaling (1/py for the column FFT, 2/px for the packed row FFT) is folded
  // into kx so the spectral multiply is the only scaled pass.
  const std::size_t radius = taps.size() - 1;
  std::vector<double> kx(w_);
  std::vector<double> ky(py_);
  const double scale =
      1.0 / (static_cast<double>(py_) * (static_cast<double>(px_) / 2.0));
  for (std::size_t m = 0; m < w_; ++m) {
    double v = taps[0];
    for (std::size_t j = 1; j <= radius; ++j) {
      v += 2.0 * taps[j] *
           std::cos(2.0 * kPi * static_cast<double>(j) * static_cast<double>(m) /
                    static_cast<double>(px_));
    }
    kx[m] = v * scale;
  }
  for (std::size_t m = 0; m < py_; ++m) {
    double v = taps[0];
    for (std::size_t j = 1; j <= radius; ++j) {
      v += 2.0 * taps[j] *
           std::cos(2.0 * kPi * static_cast<double>(j) * static_cast<double>(m) /
                    static_cast<double>(py_));
    }
    ky[m] = v;
  }

  // Column pass: multiply the cached spectrum by the separable kernel
  // spectrum and inverse-transform each column into the scratch spectrum.
  parallel_for(
      w_,
      [&](std::size_t c0, std::size_t c1) {
        for (std::size_t w = c0; w < c1; ++w) {
          const std::complex<double>* src = spec_.data() + w * py_;
          std::complex<double>* dst = work_.data() + w * py_;
          const double cw = kx[w];
          for (std::size_t y = 0; y < py_; ++y) dst[y] = src[y] * (cw * ky[y]);
          col_.inverse(dst);
        }
      },
      threads_);

  // Row pass: gather each image row's bins back out of the column-major
  // scratch (block-transposed) and real-inverse-transform; rows in the
  // padding are never materialized.
  const std::size_t nblocks =
      (static_cast<std::size_t>(ny_) + kRowBlock - 1) / kRowBlock;
  parallel_for(
      nblocks,
      [&](std::size_t b0, std::size_t b1) {
        thread_local std::vector<double> rowbuf;
        thread_local std::vector<std::complex<double>> blockspec;
        rowbuf.resize(px_);
        blockspec.resize(kRowBlock * w_);
        for (std::size_t b = b0; b < b1; ++b) {
          const std::size_t y0 = b * kRowBlock;
          const std::size_t rows = std::min(kRowBlock, static_cast<std::size_t>(ny_) - y0);
          for (std::size_t w = 0; w < w_; ++w) {
            const std::complex<double>* src = work_.data() + w * py_ + y0;
            for (std::size_t r = 0; r < rows; ++r) blockspec[r * w_ + w] = src[r];
          }
          for (std::size_t r = 0; r < rows; ++r) {
            row_.inverse(blockspec.data() + r * w_, rowbuf.data());
            std::memcpy(out + (y0 + r) * static_cast<std::size_t>(nx_), rowbuf.data(),
                        sizeof(double) * static_cast<std::size_t>(nx_));
          }
        }
      },
      threads_);
}

double FftConvolver::transform_cost(int nx, int ny, int max_radius) {
  const double px = static_cast<double>(
      fft_next_pow2(static_cast<std::size_t>(nx) + static_cast<std::size_t>(std::max(1, max_radius))));
  const double py = static_cast<double>(
      fft_next_pow2(static_cast<std::size_t>(ny) + static_cast<std::size_t>(std::max(1, max_radius))));
  // ~2.5 flops per point per log2 level for a real-optimized transform.
  return 2.5 * px * py * (std::log2(px) + std::log2(py));
}

}  // namespace ebl
