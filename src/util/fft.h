// Dependency-free iterative mixed-radix FFT and a 2D real convolution engine.
//
// Built for the PEC/simulation blur path: a raster is convolved with several
// wide separable kernels per iteration, which is the textbook case for a
// padded real-to-complex FFT — transform the map once, multiply by each
// kernel's spectrum, inverse-transform. Cost is independent of kernel width,
// and the forward transform amortizes over kernels.
//
// Layers (bottom up):
//   - Fft: in-place iterative complex transform for one 5-smooth size
//     (2^a * 3^b * 5^c); the digit-reversal permutation and per-stage
//     twiddles are precomputed at plan time so the hot loop is radix-2/3/5
//     butterflies only. Mixed-radix plans pad far less than power-of-two
//     ones (worst-case zero-padding drops from ~2x to ~1.2x per axis).
//   - RealFft: real-input/real-output transform of even 5-smooth size n via
//     the packed half-size complex FFT (two real samples per complex slot),
//     producing the n/2+1 non-redundant bins.
//   - FftConvolver: a 2D plan for images of one fixed size. Rows are
//     transformed with RealFft and columns with Fft; both passes run on the
//     util/parallel.h thread pool through cache-tiled transposes. Kernels
//     are given as symmetric separable taps (t[0] center, t[j] at offset
//     +-j); their spectra are evaluated as exact cosine sums, so the result
//     equals the direct sliding-window convolution of the *same truncated
//     kernel* to floating-point rounding — not an analytic approximation.
//     Zero padding to the next fast size past the kernel support makes the
//     convolution linear (zero boundaries), never circular. Kernels that
//     recur (the PEC terms, fixed for an evaluator's lifetime) register once
//     via add_kernel(), which caches their axis spectra in the plan;
//     convolve_registered() then applies any set of registered kernels in
//     one pass over the cached forward transform (N fused multiplies and N
//     inverse column transforms per column walk) instead of re-deriving
//     spectra and re-walking the spectrum per kernel.
//
// Determinism: every output element is computed in a fixed sequential order
// by exactly one chunk, so results are bit-identical for any thread count
// (same contract as the rest of the codebase).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ebl {

/// Smallest power of two >= n (n >= 1).
std::size_t fft_next_pow2(std::size_t n);

/// True when n factors completely over {2, 3, 5} (an Fft-supported size).
bool fft_is_fast_size(std::size_t n);

/// Smallest 5-smooth number (2^a * 3^b * 5^c) >= n — the snuggest padded
/// size the mixed-radix engine transforms. Never exceeds fft_next_pow2(n).
std::size_t fft_next_fast(std::size_t n);

/// Smallest *even* 5-smooth number >= n (RealFft packs two samples per
/// complex slot, so row transforms need an even padded size).
std::size_t fft_next_fast_even(std::size_t n);

/// In-place iterative mixed-radix complex FFT plan for one 5-smooth size.
class Fft {
 public:
  explicit Fft(std::size_t n);  ///< n must be 2^a * 3^b * 5^c (>= 1)

  std::size_t size() const { return n_; }

  /// In-place forward DFT: a[k] <- sum_j a[j] exp(-2 pi i j k / n).
  void forward(std::complex<double>* a) const { transform(a, false); }

  /// In-place unscaled inverse: inverse(forward(x)) == n * x. Callers fold
  /// the 1/n into a spectral weight instead of paying an extra pass.
  void inverse(std::complex<double>* a) const { transform(a, true); }

 private:
  void transform(std::complex<double>* a, bool inverse) const;

  // One decimation-in-time stage: h butterflies of the given radix per block
  // of m = radix * h elements, twiddles exp(-2 pi i q j / m) for
  // q = 1..radix-1 packed contiguously at tw_[off + (q-1) * h + j].
  struct Stage {
    std::uint32_t radix;
    std::size_t h;
    std::size_t off;
  };

  std::size_t n_;
  std::vector<std::uint32_t> perm_;       // digit-reversal permutation
  bool perm_is_swap_ = true;              // involution: permute by pair swaps
  std::vector<Stage> stages_;
  std::vector<std::complex<double>> tw_;  // stage-packed forward twiddles
};

/// Real-input FFT of even 5-smooth size n, packed into the half-size complex
/// transform. Spectra hold the n/2+1 non-redundant bins (DC through
/// Nyquist); the upper half is implied by conjugate symmetry.
class RealFft {
 public:
  explicit RealFft(std::size_t n);  ///< n must be even, 5-smooth, >= 2

  std::size_t size() const { return n_; }

  /// spec (n/2+1 bins) <- DFT of in (n reals). spec may not alias in.
  void forward(const double* in, std::complex<double>* spec) const;

  /// out (n reals) <- unscaled inverse of spec; the spec buffer is clobbered.
  /// inverse(forward(x)) == (n/2) * x — see Fft::inverse for the rationale.
  void inverse(std::complex<double>* spec, double* out) const;

 private:
  std::size_t n_;
  Fft half_;
  std::vector<std::complex<double>> w_;  // untangle twiddles exp(-2 pi i k/n)
};

/// 2D linear-convolution engine for repeatedly blurring same-sized real
/// images with symmetric separable kernels. Plan once, then per image:
/// load() computes the padded forward transform; each convolve() multiplies
/// that cached spectrum by a kernel's (exact, separable) spectrum and
/// inverse-transforms. Boundaries are zero-padded (linear convolution with
/// out-of-image taps contributing zero), matching the truncated-kernel
/// semantics of the direct separable blur.
class FftConvolver {
 public:
  /// Plans for nx-by-ny images and kernels of half-width up to max_radius
  /// taps. Padded sizes are the next fast (5-smooth) sizes past
  /// nx + max_radius and ny + max_radius, which is exactly enough to keep
  /// wraparound out of the cropped output.
  FftConvolver(int nx, int ny, int max_radius, int threads = 0);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t padded_x() const { return px_; }
  std::size_t padded_y() const { return py_; }

  /// Caches the forward transform of img (row-major, nx*ny).
  void load(const double* img);

  /// out (row-major, nx*ny) <- loaded image convolved with the separable
  /// symmetric kernel taps[0..r] (applied along both axes). Requires
  /// taps.size() - 1 <= max_radius and a prior load(). out may alias the
  /// loaded image (the spectrum is cached, not the pixels). Not reentrant:
  /// convolve calls on one plan must not run concurrently.
  void convolve(const std::vector<double>& taps, double* out) const;

  /// Registers a kernel with the plan and returns its slot id; the kernel's
  /// exact axis spectra are computed once here and reused by every
  /// convolve_registered() for the plan's lifetime (per-term kernels never
  /// change across PEC iterations, so this hoists the per-call cosine sums
  /// out of the hot loop). Identical taps re-register to the same slot.
  int add_kernel(const std::vector<double>& taps);

  /// Number of registered kernels (slot ids are 0..kernel_count()-1).
  int kernel_count() const { return static_cast<int>(kernels_.size()); }

  /// outs[i] (row-major, nx*ny) <- loaded image convolved with registered
  /// kernel ids[i]. All kernels' spectral multiplies run in one pass over
  /// the cached forward transform: per column walk the transformed map is
  /// loaded once, each kernel contributes one fused multiply and one inverse
  /// column transform, then each kernel gets its row inverse pass. Same
  /// aliasing and reentrancy rules as convolve().
  void convolve_registered(const std::vector<int>& ids,
                           const std::vector<double*>& outs) const;

  /// Flop estimate of one padded forward or inverse transform, for
  /// direct-vs-FFT backend decisions (see fft_blur_wins in pec/exposure.h,
  /// whose throughput calibration lives beside it in pec/exposure.cpp).
  static double transform_cost(int nx, int ny, int max_radius);

 private:
  // Exact truncated-kernel axis spectra (see convolve() in fft.cpp): kx has
  // the w_ row bins with the inverse scaling folded in, ky the py_ column
  // bins.
  struct KernelSpec {
    std::vector<double> taps;
    std::vector<double> kx;
    std::vector<double> ky;
  };

  void make_spectra(const std::vector<double>& taps, KernelSpec& ks) const;
  void apply(const std::vector<const KernelSpec*>& ks,
             const std::vector<double*>& outs) const;

  int nx_, ny_;
  int max_radius_;
  int threads_;
  std::size_t px_, py_;  // padded sizes (5-smooth)
  std::size_t w_;        // px_/2 + 1 non-redundant row bins
  RealFft row_;
  Fft col_;
  std::vector<KernelSpec> kernels_;                 // registered spectra
  std::vector<std::complex<double>> spec_;          // cached spectrum, column-major
  // Scratch spectra (lazy), one per kernel of the largest batch applied.
  mutable std::vector<std::vector<std::complex<double>>> work_;
};

}  // namespace ebl
