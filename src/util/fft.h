// Dependency-free iterative radix-2 FFT and a 2D real convolution engine.
//
// Built for the PEC/simulation blur path: a raster is convolved with several
// wide separable kernels per iteration, which is the textbook case for a
// padded real-to-complex FFT — transform the map once, multiply by each
// kernel's spectrum, inverse-transform. Cost is independent of kernel width,
// and the forward transform amortizes over kernels.
//
// Layers (bottom up):
//   - Fft: in-place iterative radix-2 complex transform for one power-of-two
//     size; bit-reversal and per-stage twiddles are precomputed at plan time
//     so the hot loop is butterflies only.
//   - RealFft: real-input/real-output transform of size n via the packed
//     half-size complex FFT (two real samples per complex slot), producing
//     the n/2+1 non-redundant bins.
//   - FftConvolver: a 2D plan for images of one fixed size. Rows are
//     transformed with RealFft and columns with Fft; both passes run on the
//     util/parallel.h thread pool through cache-tiled transposes. Kernels
//     are given as symmetric separable taps (t[0] center, t[j] at offset
//     +-j); their spectra are evaluated as exact cosine sums, so the result
//     equals the direct sliding-window convolution of the *same truncated
//     kernel* to floating-point rounding — not an analytic approximation.
//     Zero padding to the next power of two past the kernel support makes
//     the convolution linear (zero boundaries), never circular.
//
// Determinism: every output element is computed in a fixed sequential order
// by exactly one chunk, so results are bit-identical for any thread count
// (same contract as the rest of the codebase).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ebl {

/// Smallest power of two >= n (n >= 1).
std::size_t fft_next_pow2(std::size_t n);

/// In-place iterative radix-2 complex FFT plan for one power-of-two size.
class Fft {
 public:
  explicit Fft(std::size_t n);  ///< n must be a power of two (>= 1)

  std::size_t size() const { return n_; }

  /// In-place forward DFT: a[k] <- sum_j a[j] exp(-2 pi i j k / n).
  void forward(std::complex<double>* a) const { transform(a, false); }

  /// In-place unscaled inverse: inverse(forward(x)) == n * x. Callers fold
  /// the 1/n into a spectral weight instead of paying an extra pass.
  void inverse(std::complex<double>* a) const { transform(a, true); }

 private:
  void transform(std::complex<double>* a, bool inverse) const;

  std::size_t n_;
  std::vector<std::uint32_t> rev_;           // bit-reversal permutation
  std::vector<std::complex<double>> tw_;     // stage-packed forward twiddles
};

/// Real-input FFT of even power-of-two size n, packed into the half-size
/// complex transform. Spectra hold the n/2+1 non-redundant bins (DC through
/// Nyquist); the upper half is implied by conjugate symmetry.
class RealFft {
 public:
  explicit RealFft(std::size_t n);  ///< n must be a power of two >= 2

  std::size_t size() const { return n_; }

  /// spec (n/2+1 bins) <- DFT of in (n reals). spec may not alias in.
  void forward(const double* in, std::complex<double>* spec) const;

  /// out (n reals) <- unscaled inverse of spec; the spec buffer is clobbered.
  /// inverse(forward(x)) == (n/2) * x — see Fft::inverse for the rationale.
  void inverse(std::complex<double>* spec, double* out) const;

 private:
  std::size_t n_;
  Fft half_;
  std::vector<std::complex<double>> w_;  // untangle twiddles exp(-2 pi i k/n)
};

/// 2D linear-convolution engine for repeatedly blurring same-sized real
/// images with symmetric separable kernels. Plan once, then per image:
/// load() computes the padded forward transform; each convolve() multiplies
/// that cached spectrum by a kernel's (exact, separable) spectrum and
/// inverse-transforms. Boundaries are zero-padded (linear convolution with
/// out-of-image taps contributing zero), matching the truncated-kernel
/// semantics of the direct separable blur.
class FftConvolver {
 public:
  /// Plans for nx-by-ny images and kernels of half-width up to max_radius
  /// taps. Padded sizes are the next powers of two past nx + max_radius and
  /// ny + max_radius, which is exactly enough to keep wraparound out of the
  /// cropped output.
  FftConvolver(int nx, int ny, int max_radius, int threads = 0);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t padded_x() const { return px_; }
  std::size_t padded_y() const { return py_; }

  /// Caches the forward transform of img (row-major, nx*ny).
  void load(const double* img);

  /// out (row-major, nx*ny) <- loaded image convolved with the separable
  /// symmetric kernel taps[0..r] (applied along both axes). Requires
  /// taps.size() - 1 <= max_radius and a prior load(). out may alias the
  /// loaded image (the spectrum is cached, not the pixels). Not reentrant:
  /// convolve calls on one plan must not run concurrently.
  void convolve(const std::vector<double>& taps, double* out) const;

  /// Flop estimate of one padded forward or inverse transform, for
  /// direct-vs-FFT backend decisions (see fft_blur_wins in pec/exposure.h,
  /// whose throughput calibration lives beside it in pec/exposure.cpp).
  static double transform_cost(int nx, int ny, int max_radius);

 private:
  int nx_, ny_;
  int max_radius_;
  int threads_;
  std::size_t px_, py_;  // padded sizes (powers of two)
  std::size_t w_;        // px_/2 + 1 non-redundant row bins
  RealFft row_;
  Fft col_;
  std::vector<std::complex<double>> spec_;          // cached spectrum, column-major
  mutable std::vector<std::complex<double>> work_;  // scratch spectrum (lazy)
};

}  // namespace ebl
