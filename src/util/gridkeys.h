// Sparse-grid bucket keys: the shared machinery behind the field
// partitioner and the PEC shard layout.
//
// Both tile the pattern bbox into a regular grid whose indices are computed
// relative to the bbox corner (so they are non-negative and, with the
// extent capped at 2^32 dbu and cell size >= 1, each fits 32 bits), pack
// (column, row) into one 64-bit key, and materialize only the occupied
// cells — sort + unique the keys, then address buckets by slot. Sparse
// giant extents therefore never allocate a dense grid.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geom/coord.h"

namespace ebl {

/// Packs a non-negative (column, row) grid index pair, each < 2^32, into
/// one key. Sorted keys order cells by row, then column.
inline std::uint64_t pack_grid_key(Coord64 ix, Coord64 iy) {
  return (static_cast<std::uint64_t>(iy) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(ix));
}

inline Coord64 grid_key_x(std::uint64_t key) {
  return static_cast<Coord64>(key & 0xffffffffu);
}

inline Coord64 grid_key_y(std::uint64_t key) {
  return static_cast<Coord64>(key >> 32);
}

/// Dense slots for a sparse set of grid keys: sorted + deduplicated once at
/// construction, O(log n) lookups after. Resolve each key once and carry
/// the slot — not the key — through any subsequent bucketing passes.
class GridKeySlots {
 public:
  explicit GridKeySlots(std::vector<std::uint64_t> keys) : keys_(std::move(keys)) {
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  }

  std::size_t size() const { return keys_.size(); }
  std::uint64_t key(std::size_t slot) const { return keys_[slot]; }

  /// Slot of @p key; size() when the key is not an occupied cell.
  std::size_t slot_of(std::uint64_t key) const {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return keys_.size();
    return static_cast<std::size_t>(it - keys_.begin());
  }

 private:
  std::vector<std::uint64_t> keys_;
};

}  // namespace ebl
