#include "util/net.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/contracts.h"
#include "util/subprocess.h"

namespace ebl::net {
namespace {

using clock_t_ = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw DataError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("net: cannot set O_NONBLOCK");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Failure (e.g. on a non-TCP fd in tests) costs latency, not correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Bounded poll toward a deadline: true when an event arrived, false when the
// deadline passed. Slices the wait like read_exact's deadline path so EINTR
// and clock re-checks stay cheap.
bool poll_until(int fd, short events, clock_t_::time_point deadline) {
  for (;;) {
    const auto now = clock_t_::now();
    if (now >= deadline) return false;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const int slice = static_cast<int>(
        std::min<std::chrono::milliseconds::rep>(left.count() + 1, 100));
    struct pollfd pfd = {fd, events, 0};
    const int rv = ::poll(&pfd, 1, slice);
    if (rv < 0) {
      if (errno == EINTR) continue;
      throw_errno("net: poll failed");
    }
    if (rv > 0) return true;
  }
}

struct AddrInfoDeleter {
  void operator()(addrinfo* p) const { ::freeaddrinfo(p); }
};

std::unique_ptr<addrinfo, AddrInfoDeleter> resolve(const std::string& host,
                                                   std::uint16_t port,
                                                   bool passive) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &res);
  if (rc != 0)
    throw DataError("net: cannot resolve " + host + ": " + ::gai_strerror(rc));
  return std::unique_ptr<addrinfo, AddrInfoDeleter>(res);
}

}  // namespace

HostPort parse_host_port(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0)
    throw DataError("net: expected host:port, got \"" + spec + "\"");
  HostPort hp;
  hp.host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  if (port.empty()) throw DataError("net: missing port in \"" + spec + "\"");
  char* end = nullptr;
  const unsigned long v = std::strtoul(port.c_str(), &end, 10);
  if (end == port.c_str() || *end != '\0' || v > 65535)
    throw DataError("net: bad port in \"" + spec + "\"");
  hp.port = static_cast<std::uint16_t>(v);
  return hp;
}

TcpSocket TcpSocket::connect(const std::string& host, std::uint16_t port,
                             clock_t_::time_point deadline) {
  const auto addrs = resolve(host, port, /*passive=*/false);
  std::string last_error = "no addresses";
  for (const addrinfo* ai = addrs.get(); ai; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    try {
      set_nonblocking(fd);
    } catch (const DataError& e) {
      ::close(fd);
      throw;
    }
    // Non-blocking connect: EINPROGRESS, then poll for writability and read
    // the outcome back through SO_ERROR — the only deadline-capable shape.
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0 && errno == EINPROGRESS) {
      if (!poll_until(fd, POLLOUT, deadline)) {
        ::close(fd);
        throw TimeoutError("net: connect to " + host + ":" +
                           std::to_string(port) + " timed out");
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) < 0)
        soerr = errno;
      rc = soerr == 0 ? 0 : -1;
      errno = soerr;
    }
    if (rc == 0) {
      set_nodelay(fd);
      TcpSocket s;
      s.fd_ = fd;
      return s;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw DataError("net: cannot connect to " + host + ":" +
                  std::to_string(port) + ": " + last_error);
}

TcpSocket TcpSocket::adopt(int fd) {
  expects(fd >= 0, "TcpSocket::adopt: bad fd");
  set_nonblocking(fd);
  set_nodelay(fd);
  TcpSocket s;
  s.fd_ = fd;
  return s;
}

TcpSocket::TcpSocket(TcpSocket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

TcpSocket& TcpSocket::operator=(TcpSocket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

TcpSocket::~TcpSocket() { close(); }

void TcpSocket::shutdown_write() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

void TcpSocket::shutdown_both() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void TcpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::bind(const std::string& host, std::uint16_t port) {
  const auto addrs = resolve(host, port, /*passive=*/true);
  std::string last_error = "no addresses";
  for (const addrinfo* ai = addrs.get(); ai; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, 16) == 0) {
      sockaddr_storage sa = {};
      socklen_t len = sizeof(sa);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
        last_error = std::strerror(errno);
        ::close(fd);
        continue;
      }
      TcpListener l;
      l.fd_ = fd;
      l.port_ = sa.ss_family == AF_INET6
                    ? ntohs(reinterpret_cast<sockaddr_in6*>(&sa)->sin6_port)
                    : ntohs(reinterpret_cast<sockaddr_in*>(&sa)->sin_port);
      return l;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw DataError("net: cannot listen on " + host + ":" +
                  std::to_string(port) + ": " + last_error);
}

TcpListener::TcpListener(TcpListener&& o) noexcept
    : fd_(o.fd_), port_(o.port_) {
  o.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    port_ = o.port_;
    o.fd_ = -1;
  }
  return *this;
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<TcpSocket> TcpListener::accept(clock_t_::time_point deadline) {
  expects(fd_ >= 0, "TcpListener::accept: not listening");
  for (;;) {
    if (!poll_until(fd_, POLLIN, deadline)) return std::nullopt;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return TcpSocket::adopt(client);
    // The connection can vanish between poll and accept (peer RST) — not a
    // listener fault; wait for the next one.
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED)
      continue;
    throw_errno("net: accept failed");
  }
}

}  // namespace ebl::net
