// Minimal POSIX TCP sockets: the substrate under the PEC-as-a-service
// transport (src/pec/transport.h drives tools/pec_worker daemons over these,
// and tools/flaky_proxy relays through them).
//
// Scope mirrors util/subprocess.h deliberately: blocking-style whole-buffer
// I/O with optional deadlines, nothing else. Every socket this header hands
// out is O_NONBLOCK at the fd level — write_all / read_exact
// (util/subprocess.h) absorb EAGAIN by polling for readiness, so callers
// still see blocking semantics, but a deadline overload can bound any read
// *or write*: a peer that stops draining its receive window cannot block the
// caller forever (the socket analog of the pipe path's hung-worker
// detection). TCP_NODELAY is set everywhere — the wire protocol is
// request/response frames, and Nagle would serialize every round trip
// against the peer's delayed ACK.
//
// Errors are DataError (util/contracts.h); deadline expiry is TimeoutError
// (util/subprocess.h), the same types the pipe transport produces, so the
// supervisor's fault handling is transport-blind.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace ebl::net {

/// A parsed "host:port" spec. Host may be a name or a numeric address;
/// port 0 is valid for TcpListener::bind (the OS picks an ephemeral port).
struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Splits "host:port" at the last ':' (names never contain one; a bare
/// numeric IPv6 host is not supported — bracket syntax is out of scope for
/// this transport). Throws DataError on a missing host, a missing or
/// non-numeric port, or a port out of range.
HostPort parse_host_port(const std::string& spec);

/// One connected TCP stream. Move-only; the destructor closes the fd.
/// The fd is O_NONBLOCK — use write_all / read_exact / wire::read_frame,
/// which poll for readiness (with or without a deadline).
class TcpSocket {
 public:
  /// Connects to host:port, bounded by @p deadline (non-blocking connect +
  /// poll + SO_ERROR). Resolves names via getaddrinfo and tries each
  /// address until one connects. Throws TimeoutError when the deadline
  /// passes first, DataError on resolution or connection failure.
  static TcpSocket connect(const std::string& host, std::uint16_t port,
                           std::chrono::steady_clock::time_point deadline);

  /// Wraps an already-connected fd (TcpListener::accept uses this). Sets
  /// O_NONBLOCK and TCP_NODELAY on it.
  static TcpSocket adopt(int fd);

  TcpSocket() = default;
  TcpSocket(TcpSocket&& o) noexcept;
  TcpSocket& operator=(TcpSocket&& o) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;
  ~TcpSocket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Half-close: signals EOF to the peer's reads while this side can still
  /// read — the socket analog of Subprocess::close_stdin (a well-behaved
  /// worker finishes its queue and closes the session on it).
  void shutdown_write();

  /// Full shutdown without closing the fd: wakes any thread blocked in
  /// poll() on this socket (reads see EOF, writes see EPIPE). The unblock
  /// primitive for the paired writer/reader threads in the supervisor —
  /// safe to call from another thread, unlike close() (fd reuse races).
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket. Move-only; the destructor closes the fd.
class TcpListener {
 public:
  /// Binds host:port (SO_REUSEADDR) and listens. Port 0 asks the OS for an
  /// ephemeral port — read the real one back via port(). Throws DataError
  /// on resolution/bind/listen failure.
  static TcpListener bind(const std::string& host, std::uint16_t port);

  TcpListener() = default;
  TcpListener(TcpListener&& o) noexcept;
  TcpListener& operator=(TcpListener&& o) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// The bound port (resolved via getsockname, so ephemeral binds report
  /// the port the OS actually picked).
  std::uint16_t port() const { return port_; }

  /// Waits for a client until @p deadline: the accepted connection, or
  /// std::nullopt when the deadline passes first (callers poll in bounded
  /// slices — the pec_worker daemon checks its stop flag between slices).
  /// EINTR-safe. Throws DataError on accept failure.
  std::optional<TcpSocket> accept(std::chrono::steady_clock::time_point deadline);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace ebl::net
