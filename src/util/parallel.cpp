#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/contracts.h"

namespace ebl {
namespace {

// Set while a pool worker (or the caller inside parallel_for) is executing
// chunks; nested parallel_for calls then run inline instead of re-entering
// the pool.
thread_local bool t_in_parallel_region = false;

/// Persistent single-job pool: parallel_for publishes one chunked job, wakes
/// workers, participates, and waits. Only one job is active at a time (the
/// library parallelizes at one level; nested calls run inline).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(std::size_t n, int threads,
           const std::function<void(std::size_t, std::size_t)>& chunk) {
    // Fixed grain: several chunks per thread for load balance. The grain is a
    // function of (n, threads) only, but results must not depend on it anyway.
    const std::size_t parts = static_cast<std::size_t>(threads) * 4;
    const std::size_t grain = (n + parts - 1) / parts;

    std::unique_lock<std::mutex> lock(job_mutex_);  // serialize jobs
    {
      std::lock_guard<std::mutex> state(mutex_);
      job_fn_ = &chunk;
      job_n_ = n;
      job_grain_ = grain;
      job_next_.store(0, std::memory_order_relaxed);
      job_error_ = nullptr;
      ++job_id_;
      workers_needed_ = threads - 1;
      workers_running_ = 0;
      ensure_workers_locked(threads - 1);
    }
    wake_cv_.notify_all();

    t_in_parallel_region = true;
    work();
    t_in_parallel_region = false;

    {
      // Wait until every worker that joined the job has drained its chunks.
      std::unique_lock<std::mutex> state(mutex_);
      done_cv_.wait(state, [&] { return workers_running_ == 0; });
      job_fn_ = nullptr;
      if (job_error_) std::rethrow_exception(job_error_);
    }
  }

 private:
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> state(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  void ensure_workers_locked(int count) {
    while (static_cast<int>(threads_.size()) < count) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    t_in_parallel_region = true;
    std::uint64_t last_job = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> state(mutex_);
        wake_cv_.wait(state, [&] {
          return stop_ || (job_fn_ && job_id_ != last_job && workers_needed_ > 0);
        });
        if (stop_) return;
        last_job = job_id_;
        --workers_needed_;
        ++workers_running_;
      }
      work();
      {
        std::lock_guard<std::mutex> state(mutex_);
        --workers_running_;
      }
      done_cv_.notify_all();
    }
  }

  void work() {
    const std::size_t n = job_n_;
    const std::size_t grain = job_grain_;
    for (;;) {
      const std::size_t begin = job_next_.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + grain, n);
      try {
        (*job_fn_)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> state(mutex_);
        if (!job_error_) job_error_ = std::current_exception();
      }
    }
  }

  std::mutex job_mutex_;  // held by the caller for the whole job

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // State of the active job (guarded by mutex_ except the atomic cursor).
  const std::function<void(std::size_t, std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_grain_ = 1;
  std::atomic<std::size_t> job_next_{0};
  std::exception_ptr job_error_;
  std::uint64_t job_id_ = 0;
  int workers_needed_ = 0;
  int workers_running_ = 0;
};

}  // namespace

int resolve_threads(int requested) {
  expects(requested >= 0, "resolve_threads: thread count must be >= 0");
  if (requested > 0) return requested;
  if (const char* env = std::getenv("EBL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& chunk,
                  int threads) {
  if (n == 0) return;
  const int t = std::min<std::size_t>(resolve_threads(threads), n);
  if (t <= 1 || t_in_parallel_region) {
    chunk(0, n);
    return;
  }
  ThreadPool::instance().run(n, t, chunk);
}

}  // namespace ebl
