// Minimal thread-pool parallel-for substrate for the compute hot paths.
//
// Design constraints (shared by every user in this codebase):
//   - Determinism: callers get identical results for any thread count. The
//     pool only hands out index ranges; it is the caller's job to make each
//     index's output independent of its neighbors (parallelize over disjoint
//     output elements, never over a shared accumulator).
//   - Zero steady-state allocation: one persistent pool, workers are spawned
//     lazily on first use and grown on demand, never per call.
//   - Nested calls degrade gracefully: a parallel_for issued from inside a
//     worker runs inline on that worker (no deadlock, no oversubscription).
//
// Thread-count resolution (resolve_threads):
//   requested > 0        -> exactly that many threads;
//   requested == 0       -> the EBL_THREADS environment variable if set to a
//                           positive integer, else std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>

namespace ebl {

/// Resolves a user-facing thread-count knob (0 = auto) to a concrete count
/// >= 1. See the header comment for the resolution order.
int resolve_threads(int requested);

/// Runs chunk(begin, end) over disjoint sub-ranges covering [0, n) on up to
/// @p threads threads (0 = auto per resolve_threads; the calling thread
/// participates). Blocks until every chunk completed. Exceptions thrown by
/// chunks are captured and the first one is rethrown on the caller.
///
/// The chunk decomposition is an implementation detail: for deterministic
/// results, chunk(b, e) must write only to outputs derived from indices in
/// [b, e) and read only state that is constant for the duration of the call.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& chunk,
                  int threads = 0);

}  // namespace ebl
