#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/contracts.h"

namespace ebl {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  expects(lo <= hi, "Rng::uniform: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ebl
