// Deterministic random number generation for workload generators.
// A fixed, documented algorithm (splitmix64 seeding + xoshiro256**) keeps
// benchmark workloads byte-identical across platforms and standard-library
// versions, unlike std::mt19937 + std::uniform_* whose mapping is unspecified.
#pragma once

#include <cstdint>

namespace ebl {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Standard normal variate (Box–Muller, deterministic).
  double normal();

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ebl
