#include "util/subprocess.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/contracts.h"

namespace ebl {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw DataError(std::string(what) + ": " + std::strerror(errno));
}

// A worker that died mid-conversation must surface as a DataError on the
// writing thread, not as a process-killing SIGPIPE. Ignoring the signal is
// process-wide; done lazily so merely linking this file changes nothing.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

// Waits for @p events on @p fd in bounded poll slices, re-checking the
// clock each slice so a deadline is honored even when no event ever fires.
// Throws TimeoutError (with @p timeout_what) once the deadline passes; a
// deadline of time_point::max() waits forever (in 100 ms slices — poll has
// no "infinite but EINTR-cheap" mode). POLLHUP/POLLERR count as ready: the
// subsequent read/write surfaces the condition as EOF or an errno.
void wait_io(int fd, short events, std::chrono::steady_clock::time_point deadline,
             const char* timeout_what) {
  using clock = std::chrono::steady_clock;
  for (;;) {
    int slice = 100;
    if (deadline != clock::time_point::max()) {
      const auto now = clock::now();
      if (now >= deadline) throw TimeoutError(timeout_what);
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      slice = static_cast<int>(
          std::min<std::chrono::milliseconds::rep>(left.count() + 1, 100));
    }
    struct pollfd pfd = {fd, events, 0};
    const int rv = ::poll(&pfd, 1, slice);
    if (rv < 0) {
      if (errno == EINTR) continue;
      throw_errno("subprocess: poll failed");
    }
    if (rv > 0) return;  // ready (or HUP/ERR: the I/O call surfaces it)
  }
}

}  // namespace

void write_all(int fd, const void* data, std::size_t n) {
  write_all(fd, data, n, std::chrono::steady_clock::time_point::max());
}

void write_all(int fd, const void* data, std::size_t n,
               std::chrono::steady_clock::time_point deadline) {
  ignore_sigpipe_once();
  const char* p = static_cast<const char*>(data);
  bool started = false;
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // O_NONBLOCK fd with a full buffer: wait for writability (bounded
        // by the deadline) instead of surfacing a spurious error. This is
        // the short-write hole the nonblocking sockets exposed — a partial
        // write followed by EAGAIN must resume, not throw.
        wait_io(fd, POLLOUT, deadline,
                started ? "subprocess: write deadline exceeded mid-record"
                        : "subprocess: write deadline exceeded");
        continue;
      }
      throw_errno("subprocess: write failed");
    }
    if (w > 0) started = true;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  return read_exact(fd, data, n, std::chrono::steady_clock::time_point::max());
}

bool read_exact(int fd, void* data, std::size_t n,
                std::chrono::steady_clock::time_point deadline) {
  using clock = std::chrono::steady_clock;
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  const auto wait_readable = [&] {
    wait_io(fd, POLLIN, deadline,
            got == 0 ? "subprocess: read deadline exceeded"
                     : "subprocess: read deadline exceeded mid-record");
  };
  while (got < n) {
    // Under a deadline, wait for readability first so the deadline is
    // honored even when no byte ever arrives; without one, read() blocks
    // (blocking fd) or returns EAGAIN and waits below (O_NONBLOCK fd).
    if (deadline != clock::time_point::max()) wait_readable();
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Nonblocking fd not ready (or a poll wakeup the kernel revoked).
        wait_readable();
        continue;
      }
      throw_errno("subprocess: read failed");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a record boundary
      throw DataError("subprocess: stream ended mid-record");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  expects(!argv.empty(), "Subprocess::spawn: empty argv");
  ignore_sigpipe_once();

  // in_pipe: parent writes [1] -> child reads [0] (child stdin).
  // out_pipe: child writes [1] -> parent reads [0] (child stdout).
  int in_pipe[2];
  int out_pipe[2];
  if (::pipe(in_pipe) != 0) throw_errno("subprocess: pipe failed");
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    throw_errno("subprocess: pipe failed");
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
    throw_errno("subprocess: fork failed");
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout, drop everything else we opened.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
    ::signal(SIGPIPE, SIG_DFL);  // children get the default disposition back
    ::execvp(cargv[0], cargv.data());
    // exec failed: nothing sane to do in a forked child but report and exit.
    const char* msg = "subprocess: exec failed: ";
    (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
    (void)!::write(STDERR_FILENO, cargv[0], std::strlen(cargv[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  Subprocess s;
  s.pid_ = pid;
  s.in_ = in_pipe[1];
  s.out_ = out_pipe[0];
  return s;
}

Subprocess::Subprocess(Subprocess&& o) noexcept
    : pid_(o.pid_), in_(o.in_), out_(o.out_) {
  o.pid_ = -1;
  o.in_ = -1;
  o.out_ = -1;
}

Subprocess& Subprocess::operator=(Subprocess&& o) noexcept {
  if (this != &o) {
    terminate();
    pid_ = o.pid_;
    in_ = o.in_;
    out_ = o.out_;
    o.pid_ = -1;
    o.in_ = -1;
    o.out_ = -1;
  }
  return *this;
}

Subprocess::~Subprocess() { terminate(); }

void Subprocess::close_stdin() {
  if (in_ >= 0) {
    ::close(in_);
    in_ = -1;
  }
}

int Subprocess::wait() {
  expects(pid_ > 0, "Subprocess::wait: no running child");
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  pid_ = -1;
  close_stdin();
  if (out_ >= 0) {
    ::close(out_);
    out_ = -1;
  }
  if (r < 0) throw_errno("subprocess: waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

std::optional<int> Subprocess::try_wait() {
  if (pid_ <= 0) return std::nullopt;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return std::nullopt;  // still running
  pid_ = -1;
  close_stdin();
  if (out_ >= 0) {
    ::close(out_);
    out_ = -1;
  }
  if (r < 0) throw_errno("subprocess: waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

void Subprocess::terminate() {
  if (pid_ <= 0) {
    close_stdin();
    if (out_ >= 0) {
      ::close(out_);
      out_ = -1;
    }
    return;
  }
  ::kill(pid_, SIGKILL);
  wait();
}

ProcessPool::ProcessPool(const std::vector<std::string>& argv, int count) {
  expects(count > 0, "ProcessPool: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(count));
  // Subprocess destructors reap already-spawned workers if a later spawn
  // throws mid-loop.
  for (int i = 0; i < count; ++i) workers_.push_back(Subprocess::spawn(argv));
}

std::vector<int> ProcessPool::shutdown() {
  std::vector<int> statuses;
  statuses.reserve(workers_.size());
  for (Subprocess& w : workers_) w.close_stdin();
  for (Subprocess& w : workers_) statuses.push_back(w.running() ? w.wait() : 0);
  workers_.clear();
  return statuses;
}

void ProcessPool::terminate_all() {
  for (Subprocess& w : workers_) w.terminate();
  workers_.clear();
}

}  // namespace ebl
