#include "util/subprocess.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/contracts.h"

namespace ebl {
namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw DataError(std::string(what) + ": " + std::strerror(errno));
}

// A worker that died mid-conversation must surface as a DataError on the
// writing thread, not as a process-killing SIGPIPE. Ignoring the signal is
// process-wide; done lazily so merely linking this file changes nothing.
void ignore_sigpipe_once() {
  static std::once_flag once;
  std::call_once(once, [] { std::signal(SIGPIPE, SIG_IGN); });
}

}  // namespace

void write_all(int fd, const void* data, std::size_t n) {
  ignore_sigpipe_once();
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("subprocess: write failed");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_exact(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("subprocess: read failed");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a record boundary
      throw DataError("subprocess: stream ended mid-record");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t n,
                std::chrono::steady_clock::time_point deadline) {
  using clock = std::chrono::steady_clock;
  if (deadline == clock::time_point::max()) return read_exact(fd, data, n);
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    // Wait for readability (or hangup — the subsequent read returns 0 and
    // the EOF semantics of the blocking variant apply) in bounded slices so
    // the deadline is honored even when no byte ever arrives.
    for (;;) {
      const auto now = clock::now();
      if (now >= deadline)
        throw TimeoutError(got == 0
                               ? "subprocess: read deadline exceeded"
                               : "subprocess: read deadline exceeded mid-record");
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      const int slice = static_cast<int>(
          std::min<std::chrono::milliseconds::rep>(left.count() + 1, 100));
      struct pollfd pfd = {fd, POLLIN, 0};
      const int rv = ::poll(&pfd, 1, slice);
      if (rv < 0) {
        if (errno == EINTR) continue;
        throw_errno("subprocess: poll failed");
      }
      if (rv > 0) break;  // readable (or HUP/ERR: the read below surfaces it)
    }
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("subprocess: read failed");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a record boundary
      throw DataError("subprocess: stream ended mid-record");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  expects(!argv.empty(), "Subprocess::spawn: empty argv");
  ignore_sigpipe_once();

  // in_pipe: parent writes [1] -> child reads [0] (child stdin).
  // out_pipe: child writes [1] -> parent reads [0] (child stdout).
  int in_pipe[2];
  int out_pipe[2];
  if (::pipe(in_pipe) != 0) throw_errno("subprocess: pipe failed");
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    throw_errno("subprocess: pipe failed");
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
    throw_errno("subprocess: fork failed");
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout, drop everything else we opened.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) ::close(fd);
    ::signal(SIGPIPE, SIG_DFL);  // children get the default disposition back
    ::execvp(cargv[0], cargv.data());
    // exec failed: nothing sane to do in a forked child but report and exit.
    const char* msg = "subprocess: exec failed: ";
    (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
    (void)!::write(STDERR_FILENO, cargv[0], std::strlen(cargv[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  Subprocess s;
  s.pid_ = pid;
  s.in_ = in_pipe[1];
  s.out_ = out_pipe[0];
  return s;
}

Subprocess::Subprocess(Subprocess&& o) noexcept
    : pid_(o.pid_), in_(o.in_), out_(o.out_) {
  o.pid_ = -1;
  o.in_ = -1;
  o.out_ = -1;
}

Subprocess& Subprocess::operator=(Subprocess&& o) noexcept {
  if (this != &o) {
    terminate();
    pid_ = o.pid_;
    in_ = o.in_;
    out_ = o.out_;
    o.pid_ = -1;
    o.in_ = -1;
    o.out_ = -1;
  }
  return *this;
}

Subprocess::~Subprocess() { terminate(); }

void Subprocess::close_stdin() {
  if (in_ >= 0) {
    ::close(in_);
    in_ = -1;
  }
}

int Subprocess::wait() {
  expects(pid_ > 0, "Subprocess::wait: no running child");
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  pid_ = -1;
  close_stdin();
  if (out_ >= 0) {
    ::close(out_);
    out_ = -1;
  }
  if (r < 0) throw_errno("subprocess: waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

std::optional<int> Subprocess::try_wait() {
  if (pid_ <= 0) return std::nullopt;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return std::nullopt;  // still running
  pid_ = -1;
  close_stdin();
  if (out_ >= 0) {
    ::close(out_);
    out_ = -1;
  }
  if (r < 0) throw_errno("subprocess: waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

void Subprocess::terminate() {
  if (pid_ <= 0) {
    close_stdin();
    if (out_ >= 0) {
      ::close(out_);
      out_ = -1;
    }
    return;
  }
  ::kill(pid_, SIGKILL);
  wait();
}

ProcessPool::ProcessPool(const std::vector<std::string>& argv, int count) {
  expects(count > 0, "ProcessPool: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(count));
  // Subprocess destructors reap already-spawned workers if a later spawn
  // throws mid-loop.
  for (int i = 0; i < count; ++i) workers_.push_back(Subprocess::spawn(argv));
}

std::vector<int> ProcessPool::shutdown() {
  std::vector<int> statuses;
  statuses.reserve(workers_.size());
  for (Subprocess& w : workers_) w.close_stdin();
  for (Subprocess& w : workers_) statuses.push_back(w.running() ? w.wait() : 0);
  workers_.clear();
  return statuses;
}

void ProcessPool::terminate_all() {
  for (Subprocess& w : workers_) w.terminate();
  workers_.clear();
}

}  // namespace ebl
