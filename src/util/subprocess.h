// Minimal POSIX subprocess + process-pool utility: the substrate under the
// out-of-process sharded PEC driver (src/pec/sharded.cpp farms shard jobs to
// tools/pec_worker processes over pipes).
//
// Scope is deliberately small: spawn a child with piped stdin/stdout (stderr
// is inherited, so worker diagnostics land on the parent's stderr), blocking
// whole-buffer reads/writes, orderly shutdown by closing the child's stdin,
// and a kill switch for error paths. Concurrency is the caller's business —
// the PEC driver pairs one writer and one reader thread per worker so a
// worker can stream results while jobs are still being queued, which is what
// makes pipe-buffer deadlock impossible regardless of job or result size.
#pragma once

#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "util/contracts.h"

namespace ebl {

/// Thrown by the deadline-aware reads when the deadline passes before the
/// requested bytes arrive. A DataError subtype so existing catch sites keep
/// working, but distinguishable where the caller wants to treat a hung peer
/// differently from a corrupt stream (the PEC worker supervisor does).
class TimeoutError : public DataError {
 public:
  using DataError::DataError;
};

/// Writes exactly @p n bytes to @p fd, retrying short writes and EINTR.
/// On an O_NONBLOCK fd (every socket util/net.h hands out) EAGAIN waits for
/// writability via poll(2) instead of failing, so callers keep blocking
/// semantics regardless of the fd's mode. Throws DataError on any write
/// error — including EPIPE: SIGPIPE is set to ignored (process-wide, once)
/// on the first call, so a dead reader surfaces as an exception instead of
/// killing the process.
void write_all(int fd, const void* data, std::size_t n);

/// Deadline-aware write_all: same semantics, but waits for writability in
/// bounded poll slices and throws TimeoutError once @p deadline passes
/// before all @p n bytes are accepted — the send-side half of hung-peer
/// detection (a TCP peer that stops draining its receive window stalls the
/// writer exactly like a hung reader stalls a pipe). A deadline of
/// time_point::max() degrades to the plain blocking write.
void write_all(int fd, const void* data, std::size_t n,
               std::chrono::steady_clock::time_point deadline);

/// Reads exactly @p n bytes from @p fd, retrying short reads, EINTR, and —
/// on O_NONBLOCK fds — EAGAIN (via poll, like write_all). Returns true when
/// all @p n bytes arrived; false on clean EOF before the first byte. Throws
/// DataError on EOF after a partial read, or a read error — a mid-record
/// EOF is corruption, not a boundary.
bool read_exact(int fd, void* data, std::size_t n);

/// Deadline-aware read_exact: same semantics, but waits for readability via
/// poll(2) and throws TimeoutError once @p deadline passes — the primitive
/// under hung-worker detection (a peer that stops answering, or stalls
/// mid-record, cannot block the caller forever). A deadline of
/// time_point::max() degrades to the plain blocking read.
bool read_exact(int fd, void* data, std::size_t n,
                std::chrono::steady_clock::time_point deadline);

/// One spawned child process with pipes on its stdin and stdout.
/// Move-only; the destructor kills (SIGKILL) and reaps a child that is
/// still running — orderly shutdown is close_stdin() + wait().
class Subprocess {
 public:
  /// Forks and execs argv[0] with arguments argv[1..]. The child's stdin
  /// and stdout are pipes owned by this object; stderr is inherited.
  /// Throws DataError when the pipes or the fork fail, and the child
  /// exits 127 when the exec itself fails (surfaced by wait()).
  static Subprocess spawn(const std::vector<std::string>& argv);

  Subprocess() = default;
  Subprocess(Subprocess&& o) noexcept;
  Subprocess& operator=(Subprocess&& o) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Write end of the child's stdin; -1 after close_stdin().
  int stdin_fd() const { return in_; }
  /// Read end of the child's stdout.
  int stdout_fd() const { return out_; }

  /// Closes the child's stdin — the EOF a well-behaved worker exits on.
  void close_stdin();

  /// Blocks until the child exits and reaps it. Returns the exit code for a
  /// normal exit, or -signal when the child was killed by a signal.
  int wait();

  /// Non-blocking liveness probe (waitpid WNOHANG): reaps and returns the
  /// exit status (wait() semantics) when the child has exited; std::nullopt
  /// while it is still running or after it was already reaped.
  std::optional<int> try_wait();

  /// SIGKILLs a running child and reaps it. No-op when already waited.
  void terminate();

 private:
  pid_t pid_ = -1;
  int in_ = -1;   ///< parent's write end of the child's stdin
  int out_ = -1;  ///< parent's read end of the child's stdout
};

/// A fixed set of identical worker processes. Thin by design: it owns
/// spawning and teardown; job routing, framing, and per-worker threads stay
/// with the caller.
class ProcessPool {
 public:
  /// Spawns @p count workers running @p argv. Throws DataError (and reaps
  /// any already-spawned workers) when a spawn fails.
  ProcessPool(const std::vector<std::string>& argv, int count);

  std::size_t size() const { return workers_.size(); }
  Subprocess& worker(std::size_t i) { return workers_[i]; }

  /// Orderly shutdown: close every stdin, wait for every worker, and return
  /// the list of exit statuses (wait() semantics). Safe to call once;
  /// workers are gone afterwards.
  std::vector<int> shutdown();

  /// Error-path teardown: SIGKILL + reap everything still running.
  void terminate_all();

 private:
  std::vector<Subprocess> workers_;
};

}  // namespace ebl
