#include "util/table.h"

#include <algorithm>
#include <iomanip>

namespace ebl {

void Table::columns(const std::vector<std::string>& names) { header_ = names; }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << cells[i];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace ebl
