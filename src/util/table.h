// Console table printer. The bench harness uses it to print the rows/series
// of each reconstructed table/figure in a paper-like layout.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace ebl {

/// Collects rows of cells and prints them as an aligned ASCII table.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void columns(const std::vector<std::string>& names);

  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> v;
    (v.push_back(format(cells)), ...);
    rows_.push_back(std::move(v));
  }

  /// Prints the table to @p os with column alignment and a rule under the
  /// header.
  void print(std::ostream& os = std::cout) const;

 private:
  template <typename T>
  static std::string format(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision — convenience for Table::row.
std::string fixed(double value, int digits = 3);

}  // namespace ebl
