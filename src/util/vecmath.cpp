#include "util/vecmath.h"

#include <cmath>
#include <cstdint>
#include <cstring>

namespace ebl {
namespace {

// Abramowitz & Stegun 7.1.26: erf(x) = 1 - t P(t) exp(-x^2), t = 1/(1+px),
// max absolute error 1.5e-7 on [0, inf).
constexpr double kP = 0.3275911;
constexpr double kA1 = 0.254829592;
constexpr double kA2 = -0.284496736;
constexpr double kA3 = 1.421413741;
constexpr double kA4 = -1.453152027;
constexpr double kA5 = 1.061405429;

// exp(z) for z <= 0 by the standard reduction z = k ln2 + r, |r| <= ln2/2:
// 2^k is assembled from the exponent bits, e^r is a degree-7 Taylor
// polynomial (|error| < 3e-9 relative over the reduced range — far below
// the 1.5e-7 budget of the outer approximation). Branch-free: the argument
// is clamped to the smallest useful value instead of special-cased.
constexpr double kLog2E = 1.4426950408889634074;
constexpr double kLn2Hi = 6.93147180369123816490e-01;
constexpr double kLn2Lo = 1.90821492927058770002e-10;
constexpr double kExpClamp = -700.0;  // exp(-700) ~ 1e-304: effectively 0
// Round-to-nearest via the 2^52 magic constant (exact for |v| < 2^51).
constexpr double kRoundMagic = 6755399441055744.0;

constexpr double kE2 = 1.0 / 2.0;
constexpr double kE3 = 1.0 / 6.0;
constexpr double kE4 = 1.0 / 24.0;
constexpr double kE5 = 1.0 / 120.0;
constexpr double kE6 = 1.0 / 720.0;
constexpr double kE7 = 1.0 / 5040.0;

inline double exp_neg_core(double z) {
  z = z < kExpClamp ? kExpClamp : z;
  const double kf = (z * kLog2E + kRoundMagic) - kRoundMagic;
  const double r = (z - kf * kLn2Hi) - kf * kLn2Lo;
  double p = kE7;
  p = p * r + kE6;
  p = p * r + kE5;
  p = p * r + kE4;
  p = p * r + kE3;
  p = p * r + kE2;
  p = p * r + 1.0;
  p = p * r + 1.0;
  const std::int64_t k = static_cast<std::int64_t>(kf);
  std::uint64_t bits = static_cast<std::uint64_t>(k + 1023) << 52;
  double scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

inline double erf_core(double x) {
  const double ax = std::fabs(x);
  const double t = 1.0 / (1.0 + kP * ax);
  double q = kA5;
  q = q * t + kA4;
  q = q * t + kA3;
  q = q * t + kA2;
  q = q * t + kA1;
  const double e = 1.0 - q * t * exp_neg_core(-ax * ax);
  return x < 0 ? -e : e;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define EBL_ERF_AVX2 1

typedef double v4d __attribute__((vector_size(32)));
typedef std::int64_t v4i __attribute__((vector_size(32)));

// The same formula, four lanes at a time. target attribute + runtime
// dispatch keep the baseline build portable: this function is only called
// after __builtin_cpu_supports confirms AVX2 and FMA.
__attribute__((target("avx2,fma"))) void erf4(const double* x, double* y) {
  v4d v;
  std::memcpy(&v, x, sizeof v);
  const v4d ax = v < 0.0 ? -v : v;
  const v4d t = 1.0 / (1.0 + kP * ax);
  v4d q = kA5 + t * 0.0;  // broadcast
  q = q * t + kA4;
  q = q * t + kA3;
  q = q * t + kA2;
  q = q * t + kA1;

  v4d z = -ax * ax;
  z = z < kExpClamp ? v4d{kExpClamp, kExpClamp, kExpClamp, kExpClamp} : z;
  const v4d kf = (z * kLog2E + kRoundMagic) - kRoundMagic;
  const v4d r = (z - kf * kLn2Hi) - kf * kLn2Lo;
  v4d p = kE7 + r * 0.0;
  p = p * r + kE6;
  p = p * r + kE5;
  p = p * r + kE4;
  p = p * r + kE3;
  p = p * r + kE2;
  p = p * r + 1.0;
  p = p * r + 1.0;
  const v4i k = __builtin_convertvector(kf, v4i);
  const v4i bits = (k + 1023) << 52;
  v4d scale;
  std::memcpy(&scale, &bits, sizeof scale);

  const v4d e = 1.0 - q * t * (p * scale);
  const v4d out = v < 0.0 ? -e : e;
  std::memcpy(y, &out, sizeof out);
}

bool detect_avx2() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
const bool g_use_avx2 = detect_avx2();
#else
const bool g_use_avx2 = false;
#endif

}  // namespace

double fast_erf(double x) { return erf_core(x); }

bool erf_batch_is_vectorized() { return g_use_avx2; }

void erf_batch(const double* x, double* y, std::size_t n) {
#ifdef EBL_ERF_AVX2
  if (g_use_avx2) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) erf4(x + i, y + i);
    if (i < n) {
      // Pad the tail and run it through the same vector kernel so a value's
      // result never depends on its position in the batch.
      double xin[4] = {0.0, 0.0, 0.0, 0.0};
      double yout[4];
      for (std::size_t j = i; j < n; ++j) xin[j - i] = x[j];
      erf4(xin, yout);
      for (std::size_t j = i; j < n; ++j) y[j] = yout[j - i];
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) y[i] = erf_core(x[i]);
}

}  // namespace ebl
