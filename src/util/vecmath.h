// Vectorized special functions for the analytic exposure path.
//
// The short-range PEC sum is erf-bound: every (query, shot, term) pair costs
// four error-function evaluations (the exact rectangle integral is a product
// of erf differences), and the centroid sweep makes millions of them per
// Jacobi iteration. libm's erf is accurate to the last bit but scalar and
// branchy; the evaluator only needs ~1e-7 absolute accuracy — the analytic
// path already truncates neighbor sums at cutoff_sigmas (~1e-6 of a term's
// weight) — so a branch-free polynomial pays for itself many times over.
//
// erf_batch evaluates a contiguous argument batch 4-wide (AVX2 + FMA,
// selected at runtime; scalar fallback otherwise) using the Abramowitz &
// Stegun 7.1.26 rational approximation with an inlined branch-free exp:
//   |erf_batch(x) - erf(x)| <= 2e-7 for all finite x.
// Within one process the result for a given argument value is identical
// regardless of its position in the batch (short tails are padded and run
// through the same vector kernel), so callers that batch deterministically
// get bit-identical results for any thread count or batch split.
#pragma once

#include <cstddef>

namespace ebl {

/// Scalar companion of erf_batch (same polynomial; may differ from the
/// vector kernel in the last bits where FMA contraction differs). Use for
/// one-off evaluations; use erf_batch wherever arguments come in arrays.
double fast_erf(double x);

/// y[i] = fast_erf-accuracy erf of x[i] for i < n. Processes 4 lanes per
/// step on AVX2+FMA hardware, scalar otherwise; x and y may alias.
void erf_batch(const double* x, double* y, std::size_t n);

/// True when the 4-wide AVX2 kernel is in use (for tests and bench logs).
bool erf_batch_is_vectorized();

}  // namespace ebl
