// Tests for hierarchical (cell-cached) data preparation.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/ebl.h"
#include "util/contracts.h"

namespace ebl {
namespace {

Library arrayed_library(std::uint32_t n, Orient orient = Orient::r0) {
  Library lib("HIER");
  const CellId macro = lib.add_cell("MACRO");
  lib.cell(macro).add_shape(LayerKey{1, 0}, Box{0, 0, 3000, 1000});
  lib.cell(macro).add_shape(LayerKey{1, 0},
                            SimplePolygon{{{0, 2000}, {2000, 2000}, {0, 4000}}});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = macro;
  r.cols = n;
  r.rows = n;
  r.col_step = {6000, 0};
  r.row_step = {0, 6000};
  r.trans = CTrans{Trans{Point{0, 0}, orient}};
  lib.cell(top).add_reference(r);
  return lib;
}

TEST(TransformTrapezoidNoswap, IdentityAndTranslate) {
  const Trapezoid t{0, 100, 10, 200, 30, 150};
  EXPECT_EQ(transform_trapezoid_noswap(t, Trans{}), t);
  const Trapezoid moved = transform_trapezoid_noswap(t, Trans{Point{5, 7}});
  EXPECT_EQ(moved, (Trapezoid{7, 107, 15, 205, 35, 155}));
}

TEST(TransformTrapezoidNoswap, Rotate180AndMirror) {
  const Trapezoid t{0, 100, 10, 200, 30, 150};
  const Trapezoid r180 = transform_trapezoid_noswap(t, Trans{Point{0, 0}, Orient::r180});
  EXPECT_TRUE(r180.valid());
  EXPECT_DOUBLE_EQ(r180.area(), t.area());
  EXPECT_EQ(r180.bbox(), (Box{-200, -100, -10, 0}));
  const Trapezoid m0 = transform_trapezoid_noswap(t, Trans{Point{0, 0}, Orient::m0});
  EXPECT_TRUE(m0.valid());
  EXPECT_DOUBLE_EQ(m0.area(), t.area());
  EXPECT_EQ(m0.bbox(), (Box{10, -100, 200, 0}));
}

TEST(TransformTrapezoidNoswap, RejectsAxisSwap) {
  const Trapezoid t{0, 100, 10, 200, 30, 150};
  EXPECT_THROW(transform_trapezoid_noswap(t, Trans{Point{0, 0}, Orient::r90}),
               ContractViolation);
}

TEST(HierPrep, MatchesFlatPrepOnArray) {
  const Library lib = arrayed_library(4);
  const CellId top = *lib.find_cell("TOP");
  const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{1, 0});
  const FractureResult flat = fracture(lib.flatten(top, LayerKey{1, 0}));

  EXPECT_EQ(hier.stats.instances, 17u);  // top + 16 array elements
  EXPECT_EQ(hier.stats.cells_fractured, 1u);
  EXPECT_EQ(hier.shots.size(), flat.shots.size());
  EXPECT_NEAR(hier.stats.area, flat.stats.area, 1e-6);
}

TEST(HierPrep, RotatedArrayConservesArea) {
  for (const Orient o : {Orient::r90, Orient::r270, Orient::m90}) {
    const Library lib = arrayed_library(3, o);
    const CellId top = *lib.find_cell("TOP");
    const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{1, 0});
    const FractureResult flat = fracture(lib.flatten(top, LayerKey{1, 0}));
    EXPECT_NEAR(hier.stats.area, flat.stats.area, 1.0) << "orient " << int(o);
    EXPECT_EQ(hier.shots.size(), flat.shots.size()) << "orient " << int(o);
    // Every shot valid.
    for (const Shot& s : hier.shots) EXPECT_TRUE(s.shape.valid());
  }
}

TEST(HierPrep, SharedCellFracturedOncePerOrientationClass) {
  Library lib("MIX");
  const CellId macro = lib.add_cell("MACRO");
  lib.cell(macro).add_shape(LayerKey{1, 0}, Box{0, 0, 1000, 500});
  const CellId top = lib.add_cell("TOP");
  for (int i = 0; i < 4; ++i) {
    Reference r;
    r.child = macro;
    r.trans = CTrans{Trans{Point{Coord(i * 3000), 0}, static_cast<Orient>(i)}};
    lib.cell(top).add_reference(r);
  }
  const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{1, 0});
  // r0/r180 share the unswapped cache entry; r90/r270 the swapped one.
  EXPECT_EQ(hier.stats.cells_fractured, 2u);
  EXPECT_EQ(hier.shots.size(), 4u);
  EXPECT_DOUBLE_EQ(hier.stats.area, 4.0 * 1000 * 500);
}

TEST(HierPrep, NonOrthogonalFallsBack) {
  Library lib("ROT");
  const CellId macro = lib.add_cell("MACRO");
  lib.cell(macro).add_shape(LayerKey{1, 0}, Box{0, 0, 1000, 1000});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = macro;
  r.trans = CTrans{Point{0, 0}, 45.0, 1.0, false};
  lib.cell(top).add_reference(r);
  const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{1, 0});
  EXPECT_EQ(hier.stats.fallback_instances, 1u);
  // 45° square fractures into triangles/trapezoids; area preserved ~1 dbu.
  EXPECT_NEAR(hier.stats.area, 1e6, 1e6 * 1e-2);
}

TEST(HierPrep, RespectsMaxShotSize) {
  const Library lib = arrayed_library(2);
  const CellId top = *lib.find_cell("TOP");
  FractureOptions opt;
  opt.max_shot_size = 500;
  const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{1, 0}, opt);
  for (const Shot& s : hier.shots) {
    EXPECT_LE(s.shape.bbox().width(), 500);
    EXPECT_LE(s.shape.bbox().height(), 500);
  }
}

TEST(HierPrep, EmptyLayerGivesNoShots) {
  const Library lib = arrayed_library(2);
  const CellId top = *lib.find_cell("TOP");
  const HierPrepResult hier = run_hier_prep(lib, top, LayerKey{9, 9});
  EXPECT_TRUE(hier.shots.empty());
  EXPECT_EQ(hier.stats.cells_fractured, 0u);
}

}  // namespace
}  // namespace ebl
