// Integration tests: workload generators and the end-to-end pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ebl.h"
#include "util/contracts.h"

namespace ebl {
namespace {

TEST(Patterns, RandomManhattanHitsDensity) {
  Rng rng(1);
  const Box frame{0, 0, 100000, 100000};
  const PolygonSet s = random_manhattan(rng, frame, 0.3, 500, 5000);
  // Raw placement reaches at least the target (overlaps may reduce merged).
  EXPECT_GE(s.raw_area(), 0.3 * static_cast<double>(frame.area()));
  EXPECT_LE(s.area(), s.raw_area());
}

TEST(Patterns, LineSpaceArrayGeometry) {
  const PolygonSet s = line_space_array({0, 0}, 250, 500, 10000, 20);
  EXPECT_EQ(s.size(), 20u);
  EXPECT_DOUBLE_EQ(s.area(), 20.0 * 250.0 * 10000.0);
  EXPECT_EQ(s.bbox(), Box(0, 0, 19 * 500 + 250, 10000));
}

TEST(Patterns, StaircaseMonotoneHeights) {
  const PolygonSet s = staircase({0, 0}, 1000, 500, 8);
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.bbox(), Box(0, 0, 8000, 4000));
}

TEST(Patterns, ZonePlateRadiiFollowFresnel) {
  // f = 150 µm, lambda = 532 nm (the canonical FZP of the field).
  const PolygonSet s = zone_plate({0, 0}, 150000.0, 532.0, 10);
  EXPECT_EQ(s.size(), 10u);
  // First opaque zone: inner radius r1 = sqrt(1*532*150000 + (532/2)^2).
  const double r1 = std::sqrt(532.0 * 150000.0 + 266.0 * 266.0);
  const Box bb = s.polygons()[0].bbox();
  EXPECT_NEAR(bb.hi.x, std::sqrt(2 * 532.0 * 150000.0 + 532.0 * 532.0), 5.0);
  EXPECT_TRUE(s.polygons()[0].holes().size() == 1);
  EXPECT_NEAR(s.polygons()[0].holes()[0].bbox().hi.x, r1, 5.0);
}

TEST(Patterns, CheckerboardHalfDensity) {
  const Box frame{0, 0, 8000, 8000};
  const PolygonSet s = checkerboard(frame, 1000);
  EXPECT_DOUBLE_EQ(s.area(), 0.5 * static_cast<double>(frame.area()));
}

TEST(Patterns, CombIsConnected) {
  const PolygonSet s = comb({0, 0}, 200, 300, 5000, 10);
  EXPECT_EQ(s.merged().size(), 1u);
}

TEST(Pipeline, BasicRunProducesShotsAndEstimates) {
  Rng rng(7);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 50000, 50000}, 0.2, 500, 5000);
  const PrepResult r = run_data_prep(s);
  EXPECT_GT(r.shots.size(), 0u);
  EXPECT_EQ(r.estimates.size(), 3u);
  EXPECT_GT(r.time_for("raster").total(), 0.0);
  EXPECT_GT(r.time_for("vector").total(), 0.0);
  EXPECT_GT(r.time_for("vsb").total(), 0.0);
  EXPECT_THROW(r.time_for("nonexistent"), ContractViolation);
  EXPECT_NEAR(r.fracture.area, s.area(), 1e-6);
}

TEST(Pipeline, PecReducesError) {
  PolygonSet s;
  s.insert(Box{0, 0, 20000, 20000});
  s.insert(Box{40000, 9000, 41000, 10000});
  PrepOptions opt;
  opt.fracture.max_shot_size = 2000;
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 6;
  const PrepResult r = run_data_prep(s, opt);
  ASSERT_TRUE(r.pec_final_error && r.pec_uncorrected_error);
  EXPECT_LT(*r.pec_final_error, *r.pec_uncorrected_error / 2.0);
  EXPECT_GT(r.pec_iterations, 0);
}

TEST(Pipeline, EpeStageScoresThePrintedResult) {
  PolygonSet s;
  s.insert(Box{0, 0, 12000, 12000});
  for (Coord x = 16000; x < 24000; x += 3000) {
    for (Coord y = 1000; y < 9000; y += 3000) {
      s.insert(Box{x, y, x + 1000, y + 1000});
    }
  }
  PrepOptions opt;
  opt.fracture.max_shot_size = 2000;
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 8;
  opt.epe = PrepEpeOptions{};
  opt.epe->score.search_window = 400;
  opt.epe->score.sim.pixel = 50;
  const PrepResult r = run_data_prep(s, opt);

  ASSERT_TRUE(r.epe.has_value());
  EXPECT_GT(r.epe->samples, 0u);
  EXPECT_LT(r.epe->p99, 100.0);  // corrected write lands close to target
  bool saw_stage = false;
  for (const StageTime& st : r.stage_times) saw_stage |= st.name == "epe";
  EXPECT_TRUE(saw_stage);

  // Without a PSF there is nothing to simulate: the stage must not run.
  PrepOptions no_psf;
  no_psf.epe = PrepEpeOptions{};
  const PrepResult r2 = run_data_prep(s, no_psf);
  EXPECT_FALSE(r2.epe.has_value());
}

TEST(Pipeline, FieldPartitioningSplitsAndPreservesArea) {
  Rng rng(9);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 300000, 300000}, 0.1, 3000, 30000);
  PrepOptions opt;
  opt.field_size = 100000;
  const PrepResult r = run_data_prep(s, opt);
  EXPECT_GT(r.fields.size(), 1u);
  EXPECT_GT(r.boundary_straddlers, 0u);
  EXPECT_NEAR(shot_area(r.shots), s.area(), s.area() * 1e-6);
}

TEST(Pipeline, RunsFromHierarchicalLayout) {
  Library lib("CHIP");
  const CellId cellA = lib.add_cell("MACRO");
  lib.cell(cellA).add_shape(LayerKey{1, 0}, Box{0, 0, 5000, 5000});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = cellA;
  r.cols = 4;
  r.rows = 4;
  r.col_step = {10000, 0};
  r.row_step = {0, 10000};
  lib.cell(top).add_reference(r);

  const PrepResult res = run_data_prep(lib, top, LayerKey{1, 0});
  EXPECT_EQ(res.shots.size(), 16u);
  EXPECT_NEAR(shot_area(res.shots), 16.0 * 25e6, 1.0);
}

TEST(Pipeline, GdsToEbfEndToEnd) {
  // Full path: build layout -> write GDS -> read back -> prep -> EBF round
  // trip: the complete 1979 tape-to-tape flow.
  Library lib("FLOW");
  const CellId top = lib.add_cell("TOP");
  lib.cell(top).add_shape(LayerKey{1, 0}, Box{0, 0, 10000, 8000});
  lib.cell(top).add_shape(LayerKey{1, 0},
                          SimplePolygon{{{20000, 0}, {30000, 0}, {20000, 9000}}});

  std::stringstream gds;
  write_gds(lib, gds);
  const Library back = read_gds(gds);

  const PrepResult prep = run_data_prep(back, *back.find_cell("TOP"), LayerKey{1, 0});
  EbfFile ebf;
  ebf.shots = prep.shots;
  std::stringstream ebf_buf;
  write_ebf(ebf, ebf_buf);
  const EbfFile ebf_back = read_ebf(ebf_buf);
  EXPECT_EQ(ebf_back.shots.size(), prep.shots.size());
  EXPECT_NEAR(shot_area(ebf_back.shots), 10000.0 * 8000 + 0.5 * 10000 * 9000, 10.0);
}

TEST(Pipeline, EmptyGeometryRejected) {
  EXPECT_THROW(run_data_prep(PolygonSet{}), ContractViolation);
}

TEST(Pipeline, RecordsStageTimes) {
  Rng rng(11);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 50000, 50000}, 0.2, 500, 5000);

  // Minimal run: only the always-on stages execute, in pipeline order.
  const PrepResult basic = run_data_prep(s);
  ASSERT_EQ(basic.stage_times.size(), 2u);
  EXPECT_EQ(basic.stage_times[0].name, "fracture");
  EXPECT_EQ(basic.stage_times[1].name, "write_time");
  for (const StageTime& st : basic.stage_times) EXPECT_GE(st.ms, 0.0);

  // Full run: PEC (global, so the baseline stage runs too) and fields.
  PrepOptions opt;
  opt.fracture.max_shot_size = 4000;
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 2;
  opt.field_size = 20000;
  const PrepResult full = run_data_prep(s, opt);
  ASSERT_EQ(full.stage_times.size(), 5u);
  EXPECT_EQ(full.stage_times[0].name, "fracture");
  EXPECT_EQ(full.stage_times[1].name, "pec_baseline");
  EXPECT_EQ(full.stage_times[2].name, "pec");
  EXPECT_EQ(full.stage_times[3].name, "field_partition");
  EXPECT_EQ(full.stage_times[4].name, "write_time");

  // Sharded run: each halo-exchange round surfaces as its own pec_round_N
  // sub-stage (in round order, just before the enclosing "pec" entry).
  PrepOptions sharded = opt;
  sharded.pec.shard_size = 20000;
  const PrepResult sh = run_data_prep(s, sharded);
  std::vector<std::string> rounds;
  std::size_t pec_at = 0;
  for (std::size_t i = 0; i < sh.stage_times.size(); ++i) {
    if (sh.stage_times[i].name.rfind("pec_round_", 0) == 0) {
      rounds.push_back(sh.stage_times[i].name);
      EXPECT_GE(sh.stage_times[i].ms, 0.0);
    }
    if (sh.stage_times[i].name == "pec") pec_at = i;
  }
  ASSERT_GE(rounds.size(), 1u);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r], "pec_round_" + std::to_string(r + 1));
  }
  EXPECT_GT(pec_at, 0u);
  EXPECT_EQ(sh.stage_times[pec_at].name, "pec");
}

TEST(Pipeline, DistributedPecMatchesInProcessThroughThePipeline) {
  // The pipeline drives the distributed solve exactly like the in-process
  // one: same stages, same stage names, bitwise the same doses, plus the
  // worker count surfaced in the result.
  PolygonSet s;
  s.insert(Box{0, 0, 20000, 20000});
  s.insert(Box{40000, 9000, 41000, 10000});
  PrepOptions opt;
  opt.fracture.max_shot_size = 2000;
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 6;
  opt.pec.shard_size = 25000;
  const PrepResult local = run_data_prep(s, opt);

  PrepOptions dopt = opt;
  dopt.pec.worker_count = 2;
  PrepResult dist;
  try {
    dist = run_data_prep(s, dopt);
  } catch (const DataError&) {
    GTEST_SKIP() << "pec_worker binary not built";
  }
  EXPECT_EQ(local.pec_workers, 0);
  EXPECT_GE(dist.pec_workers, 1);
  EXPECT_EQ(dist.pec_shards, local.pec_shards);
  ASSERT_EQ(dist.shots.size(), local.shots.size());
  for (std::size_t i = 0; i < local.shots.size(); ++i)
    EXPECT_EQ(dist.shots[i].dose, local.shots[i].dose) << "shot " << i;
}

TEST(Pipeline, ShardedPecSkipsGlobalBaseline) {
  PolygonSet s;
  s.insert(Box{0, 0, 20000, 20000});
  s.insert(Box{40000, 9000, 41000, 10000});
  PrepOptions opt;
  opt.fracture.max_shot_size = 2000;
  opt.pec_psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  opt.pec.max_iterations = 6;
  opt.pec.shard_size = 25000;
  const PrepResult r = run_data_prep(s, opt);
  ASSERT_TRUE(r.pec_final_error);
  // The uncorrected-error baseline needs a whole-pattern evaluator, which
  // sharded jobs avoid by design.
  EXPECT_FALSE(r.pec_uncorrected_error);
  EXPECT_GE(r.pec_shards, 2);
  EXPECT_LT(*r.pec_final_error, 0.05);
  for (const StageTime& st : r.stage_times) EXPECT_NE(st.name, "pec_baseline");
}

// Property sweep: pipeline invariants across workloads.
class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, ShotAreasMatchGeometryAndTimesArePositive) {
  Rng rng(200 + GetParam());
  const double density = 0.05 + 0.1 * GetParam();
  const PolygonSet s =
      random_manhattan(rng, Box{0, 0, 80000, 80000}, density, 400, 6000);
  PrepOptions opt;
  opt.fracture.max_shot_size = 4000;
  const PrepResult r = run_data_prep(s, opt);
  EXPECT_NEAR(shot_area(r.shots), s.area(), s.area() * 1e-3);
  EXPECT_GT(r.time_for("vsb").total(), 0.0);
  // Raster time must not depend on density (same frame -> equal pixels),
  // checked against a fresh empty-ish run with the same extent.
  const WriteJob job = make_write_job(r.shots);
  const RasterScanWriter raster;
  EXPECT_NEAR(raster.write_time(job).total(),
              raster.write_time(WriteJob{job.extent, 1.0, 1.0, 1}).total(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Densities, PipelineProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace ebl
