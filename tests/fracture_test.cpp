// Tests for the fracturing engine, shot splitting and EBF records.
#include <gtest/gtest.h>

#include <sstream>

#include "core/patterns.h"
#include "fracture/ebf.h"
#include "fracture/fracture.h"
#include "geom/curves.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace ebl {
namespace {

PolygonSet l_shape() {
  PolygonSet s;
  s.insert(SimplePolygon{{{0, 0}, {2000, 0}, {2000, 1000}, {1000, 1000},
                          {1000, 2000}, {0, 2000}}});
  return s;
}

TEST(Fracture, RectangleSingleShot) {
  PolygonSet s;
  s.insert(Box{0, 0, 500, 300});
  const FractureResult r = fracture(s);
  ASSERT_EQ(r.shots.size(), 1u);
  EXPECT_EQ(r.stats.rectangles, 1u);
  EXPECT_DOUBLE_EQ(r.stats.area, 150000.0);
  EXPECT_DOUBLE_EQ(r.shots[0].dose, 1.0);
}

TEST(Fracture, LShapeTwoFigures) {
  const FractureResult r = fracture(l_shape());
  EXPECT_EQ(r.shots.size(), 2u);
  EXPECT_DOUBLE_EQ(r.stats.area, 3000000.0);  // 2*1 + 1*1 (in 1000² units)
}

TEST(Fracture, AreaConservedOnCurvedInput) {
  PolygonSet s;
  s.insert(circle({0, 0}, 50000, 2.0));
  const FractureResult r = fracture(s);
  const double poly_area = s.area();
  EXPECT_NEAR(r.stats.area, poly_area, poly_area * 1e-4);
  EXPECT_GT(r.stats.triangles, 0u);
}

TEST(Fracture, StrategiesAgreeOnArea) {
  Rng rng(5);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 20000, 20000}, 0.3, 200, 3000);
  const double merged_area =
      fracture(s, {.strategy = FractureStrategy::merged_traps}).stats.area;
  const double bands_area = fracture(s, {.strategy = FractureStrategy::bands}).stats.area;
  const double rect_area =
      fracture(s, {.strategy = FractureStrategy::rectangles}).stats.area;
  EXPECT_DOUBLE_EQ(merged_area, bands_area);
  EXPECT_DOUBLE_EQ(merged_area, rect_area);
}

TEST(Fracture, MergedStrategyNeverMoreFigures) {
  Rng rng(6);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 30000, 30000}, 0.25, 300, 4000);
  const auto merged = fracture(s, {.strategy = FractureStrategy::merged_traps});
  const auto bands = fracture(s, {.strategy = FractureStrategy::bands});
  EXPECT_LE(merged.stats.figures, bands.stats.figures);
  EXPECT_LT(merged.stats.figures, bands.stats.figures);  // real merging happens
}

TEST(Fracture, RectanglesStrategyRejectsAllAngle) {
  PolygonSet s;
  s.insert(SimplePolygon{{{0, 0}, {1000, 0}, {0, 1000}}});
  EXPECT_THROW(fracture(s, {.strategy = FractureStrategy::rectangles}), DataError);
}

TEST(Fracture, MaxShotSizeSplitsRect) {
  PolygonSet s;
  s.insert(Box{0, 0, 1000, 1000});
  const FractureResult r = fracture(s, {.max_shot_size = 300});
  // ceil(1000/300) = 4 columns x 4 rows.
  EXPECT_EQ(r.stats.shots, 16u);
  EXPECT_DOUBLE_EQ(r.stats.area, 1e6);
  for (const Shot& shot : r.shots) {
    const Box bb = shot.shape.bbox();
    EXPECT_LE(bb.width(), 300);
    EXPECT_LE(bb.height(), 300);
  }
}

TEST(Fracture, SliverCounting) {
  PolygonSet s;
  s.insert(Box{0, 0, 10000, 5});      // 5 dbu tall sliver
  s.insert(Box{0, 100, 10000, 1100}); // healthy
  const FractureResult r = fracture(s, {.sliver_threshold = 20});
  EXPECT_EQ(r.stats.slivers, 1u);
}

TEST(SplitToMaxSize, TriangleStaysTrapezoidsAndConservesArea) {
  const Trapezoid tri{0, 1000, 0, 1000, 0, 0};  // right triangle
  const auto pieces = split_to_max_size(tri, 256);
  double area = 0.0;
  for (const auto& p : pieces) {
    EXPECT_TRUE(p.valid());
    const Box bb = p.bbox();
    EXPECT_LE(bb.width(), 256);
    EXPECT_LE(bb.height(), 256);
    area += p.area();
  }
  EXPECT_NEAR(area, tri.area(), tri.area() * 0.01);  // grid-rounded cuts
}

TEST(SplitToMaxSize, NoSplitWhenSmall) {
  const Trapezoid t{0, 100, 0, 100, 0, 100};
  const auto pieces = split_to_max_size(t, 100);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], t);
}

TEST(ClipTrapezoid, InsideOutsidePartial) {
  const Trapezoid t{0, 100, 0, 200, 0, 200};
  EXPECT_TRUE(clip_trapezoid(t, Box{300, 300, 400, 400}).empty());
  const auto whole = clip_trapezoid(t, Box{-10, -10, 500, 500});
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0], t);
  const auto half = clip_trapezoid(t, Box{0, 0, 100, 100});
  double area = 0.0;
  for (const auto& p : half) area += p.area();
  EXPECT_DOUBLE_EQ(area, 100.0 * 100.0);
}

TEST(ClipTrapezoid, SlantedCutConservesArea) {
  const Trapezoid t{0, 1000, 0, 2000, 500, 1500};
  const Box left{0, 0, 700, 1000};
  const Box right{700, 0, 2000, 1000};
  double area = 0.0;
  for (const auto& p : clip_trapezoid(t, left)) area += p.area();
  for (const auto& p : clip_trapezoid(t, right)) area += p.area();
  EXPECT_NEAR(area, t.area(), 2.0);
}

TEST(Shot, AreaHelpers) {
  ShotList shots{{Trapezoid::rect(Box{0, 0, 10, 10}), 1.0},
                 {Trapezoid::rect(Box{20, 0, 30, 10}), 2.0}};
  EXPECT_DOUBLE_EQ(shot_area(shots), 200.0);
  EXPECT_DOUBLE_EQ(shot_charge_area(shots), 300.0);
}

TEST(Ebf, RoundTrip) {
  EbfFile f;
  f.field = Box{0, 0, 100000, 100000};
  f.shots.push_back({Trapezoid{0, 50, 10, 90, 20, 80}, 1.25});
  f.shots.push_back({Trapezoid::rect(Box{100, 100, 200, 160}), 0.75});

  std::stringstream buf;
  write_ebf(f, buf);
  const EbfFile back = read_ebf(buf);
  ASSERT_TRUE(back.field.has_value());
  EXPECT_EQ(back.field->width(), 100000);
  ASSERT_EQ(back.shots.size(), 2u);
  EXPECT_EQ(back.shots[0].shape, f.shots[0].shape);
  EXPECT_DOUBLE_EQ(back.shots[0].dose, 1.25);
  EXPECT_EQ(back.shots[1].shape, f.shots[1].shape);
}

TEST(Ebf, RejectsMalformed) {
  std::stringstream bad1("EBF2\nend\n");
  EXPECT_THROW(read_ebf(bad1), DataError);
  std::stringstream bad2("EBF1\nshot 0 0 0 0 0 0 1\nend\n");  // zero-height shot
  EXPECT_THROW(read_ebf(bad2), DataError);
  std::stringstream bad3("EBF1\nshot 0 10 0 10 0 10 1\n");  // missing end
  EXPECT_THROW(read_ebf(bad3), DataError);
  std::stringstream bad4("EBF1\nbogus\nend\n");
  EXPECT_THROW(read_ebf(bad4), DataError);
}

// Property sweep: fracture conserves area across strategies and seeds.
class FractureProperty : public ::testing::TestWithParam<int> {};

TEST_P(FractureProperty, AreaConservation) {
  Rng rng(100 + GetParam());
  const PolygonSet s = random_manhattan(rng, Box{0, 0, 10000, 10000}, 0.4, 100, 2000);
  const double merged_region_area = s.area();
  for (const auto strategy :
       {FractureStrategy::bands, FractureStrategy::merged_traps}) {
    FractureOptions opt;
    opt.strategy = strategy;
    const FractureResult r = fracture(s, opt);
    EXPECT_NEAR(r.stats.area, merged_region_area, 1e-6) << "seed " << GetParam();
  }
  // With shot splitting the area may shift by rounded cut lines only.
  FractureOptions split_opt;
  split_opt.max_shot_size = 750;
  const FractureResult r = fracture(s, split_opt);
  EXPECT_NEAR(r.stats.area, merged_region_area, merged_region_area * 1e-3);
  EXPECT_GE(r.stats.shots, r.stats.figures);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FractureProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace ebl
