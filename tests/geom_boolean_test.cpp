// Tests for the scanline boolean engine, trapezoid decomposition and
// polygon stitching — the correctness core of the toolkit.
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/boolean.h"
#include "geom/polygon_set.h"
#include "util/rng.h"

namespace ebl {
namespace {

double traps_area(const std::vector<Trapezoid>& traps) {
  double a = 0.0;
  for (const auto& t : traps) a += t.area();
  return a;
}

double polys_area(const std::vector<Polygon>& polys) {
  double a = 0.0;
  for (const auto& p : polys) a += p.area();
  return a;
}

bool any_trap_contains(const std::vector<Trapezoid>& traps, Point p) {
  return std::any_of(traps.begin(), traps.end(),
                     [&](const Trapezoid& t) { return t.contains(p); });
}

TEST(Boolean, SingleRectangleIdentity) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 100, 50});
  const auto traps = eng.trapezoids(BoolOp::Or);
  ASSERT_EQ(traps.size(), 1u);
  EXPECT_EQ(traps[0], Trapezoid::rect(Box{0, 0, 100, 50}));
}

TEST(Boolean, DisjointRectanglesStayDisjoint) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 10, 10});
  eng.add(Box{20, 20, 30, 30});
  const auto traps = eng.trapezoids(BoolOp::Or);
  EXPECT_EQ(traps.size(), 2u);
  EXPECT_DOUBLE_EQ(traps_area(traps), 200.0);
}

TEST(Boolean, OverlappingUnionArea) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 10, 10});
  eng.add(Box{5, 5, 15, 15});
  EXPECT_DOUBLE_EQ(traps_area(eng.trapezoids(BoolOp::Or)), 175.0);
}

TEST(Boolean, IntersectionOfOverlap) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 10, 10}, 0);
  eng.add(Box{5, 5, 15, 15}, 1);
  const auto traps = eng.trapezoids(BoolOp::And);
  ASSERT_EQ(traps.size(), 1u);
  EXPECT_EQ(traps[0], Trapezoid::rect(Box{5, 5, 10, 10}));
}

TEST(Boolean, SubtractionPunchesHole) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 30, 30}, 0);
  eng.add(Box{10, 10, 20, 20}, 1);
  EXPECT_DOUBLE_EQ(traps_area(eng.trapezoids(BoolOp::Sub)), 800.0);
  const auto polys = eng.polygons(BoolOp::Sub);
  ASSERT_EQ(polys.size(), 1u);
  ASSERT_EQ(polys[0].holes().size(), 1u);
  EXPECT_DOUBLE_EQ(polys[0].area(), 800.0);
  EXPECT_FALSE(polys[0].contains({15, 15}));
  EXPECT_TRUE(polys[0].contains({5, 15}));
}

TEST(Boolean, XorIsSymmetricDifference) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 10, 10}, 0);
  eng.add(Box{5, 5, 15, 15}, 1);
  EXPECT_DOUBLE_EQ(traps_area(eng.trapezoids(BoolOp::Xor)), 150.0);
}

TEST(Boolean, TouchingRectanglesFuse) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 10, 10});
  eng.add(Box{10, 0, 20, 10});
  const auto traps = eng.trapezoids(BoolOp::Or);
  ASSERT_EQ(traps.size(), 1u);
  EXPECT_EQ(traps[0], Trapezoid::rect(Box{0, 0, 20, 10}));
}

TEST(Boolean, VerticallyStackedRectanglesMerge) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 10, 10});
  eng.add(Box{0, 10, 10, 20});
  const auto merged = eng.trapezoids(BoolOp::Or, /*merge_vertical=*/true);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], Trapezoid::rect(Box{0, 0, 10, 20}));
  const auto unmerged = eng.trapezoids(BoolOp::Or, /*merge_vertical=*/false);
  EXPECT_EQ(unmerged.size(), 2u);
}

TEST(Boolean, TriangleDecomposes) {
  BooleanEngine eng;
  eng.add(SimplePolygon{{{0, 0}, {100, 0}, {0, 100}}});
  const auto traps = eng.trapezoids(BoolOp::Or);
  ASSERT_EQ(traps.size(), 1u);  // single trapezoid band (degenerate top)
  EXPECT_DOUBLE_EQ(traps_area(traps), 5000.0);
}

TEST(Boolean, CrossingRectanglesUnion) {
  // A plus-sign from two crossing bars.
  BooleanEngine eng;
  eng.add(Box{-30, -10, 30, 10});
  eng.add(Box{-10, -30, 10, 30});
  const auto traps = eng.trapezoids(BoolOp::Or);
  EXPECT_DOUBLE_EQ(traps_area(traps), 60.0 * 20.0 + 2.0 * 20.0 * 20.0);
  const auto polys = eng.polygons(BoolOp::Or);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].outer().size(), 12u);
  EXPECT_TRUE(polys[0].holes().empty());
}

TEST(Boolean, DiagonalSquaresCross) {
  // Two 45-degree rotated squares overlapping -> eight-pointed star union.
  const SimplePolygon d1{{{0, -20}, {20, 0}, {0, 20}, {-20, 0}}};
  const SimplePolygon d2{{{10, -20}, {30, 0}, {10, 20}, {-10, 0}}};
  BooleanEngine eng;
  eng.add(d1, 0);
  eng.add(d2, 1);
  const double a1 = 2.0 * 20.0 * 20.0;  // diamond area = d^2/2 with d=40
  const auto uni = eng.trapezoids(BoolOp::Or);
  const auto inter = eng.trapezoids(BoolOp::And);
  const auto x = eng.trapezoids(BoolOp::Xor);
  // Inclusion-exclusion: |A|+|B| = |A∪B| + |A∩B| ; |XOR| = |A∪B| - |A∩B|.
  EXPECT_NEAR(traps_area(uni) + traps_area(inter), 2 * a1, 3.0);
  EXPECT_NEAR(traps_area(x), traps_area(uni) - traps_area(inter), 3.0);
}

TEST(Boolean, SelfIntersectingContourUsesWinding) {
  // A bowtie: two triangles sharing only the crossing point.
  const SimplePolygon bowtie{{{0, 0}, {20, 20}, {20, 0}, {0, 20}}};
  BooleanEngine eng;
  eng.add(bowtie);
  const auto traps = eng.trapezoids(BoolOp::Or);
  // Nonzero winding fills both wings: total area = 2 * (1/4 of 20x20) = 200.
  EXPECT_NEAR(traps_area(traps), 200.0, 1.0);
}

TEST(Boolean, HoleViaPolygonInput) {
  BooleanEngine eng;
  eng.add(Polygon{SimplePolygon::rect(0, 0, 40, 40), {SimplePolygon::rect(10, 10, 30, 30)}});
  const auto traps = eng.trapezoids(BoolOp::Or);
  EXPECT_DOUBLE_EQ(traps_area(traps), 1600.0 - 400.0);
  EXPECT_FALSE(any_trap_contains(traps, {20, 20}));
  EXPECT_TRUE(any_trap_contains(traps, {5, 20}));
}

TEST(Boolean, NestedHoleIsland) {
  // Ring with an island inside the hole.
  BooleanEngine eng;
  eng.add(Polygon{SimplePolygon::rect(0, 0, 100, 100),
                  {SimplePolygon::rect(20, 20, 80, 80)}});
  eng.add(Box{40, 40, 60, 60});
  const auto polys = eng.polygons(BoolOp::Or);
  ASSERT_EQ(polys.size(), 2u);
  EXPECT_DOUBLE_EQ(polys_area(polys), 10000.0 - 3600.0 + 400.0);
}

TEST(Boolean, EmptyInputsAndEmptyResults) {
  BooleanEngine eng;
  EXPECT_TRUE(eng.trapezoids(BoolOp::Or).empty());
  eng.add(Box{0, 0, 10, 10}, 0);
  EXPECT_TRUE(eng.trapezoids(BoolOp::And).empty());  // nothing in group B
  EXPECT_TRUE(eng.polygons(BoolOp::And).empty());
  // A \ A = empty.
  BooleanEngine eng2;
  eng2.add(Box{0, 0, 10, 10}, 0);
  eng2.add(Box{0, 0, 10, 10}, 1);
  EXPECT_TRUE(eng2.trapezoids(BoolOp::Sub).empty());
}

TEST(Boolean, StitchRoundTripPreservesArea) {
  BooleanEngine eng;
  eng.add(Box{0, 0, 50, 20});
  eng.add(SimplePolygon{{{10, 5}, {60, 5}, {60, 40}, {35, 60}}});
  eng.add(Box{-20, -20, 5, 5});
  const auto traps = eng.trapezoids(BoolOp::Or);
  const auto polys = eng.polygons(BoolOp::Or);
  EXPECT_NEAR(polys_area(polys), traps_area(traps), 1.0);

  // Re-run the reconstructed polygons through the engine: area must be stable.
  BooleanEngine eng2;
  for (const auto& p : polys) eng2.add(p);
  EXPECT_NEAR(traps_area(eng2.trapezoids(BoolOp::Or)), traps_area(traps), 1.0);
}

TEST(PolygonSet, OperatorsComposeAndAgreeWithContains) {
  PolygonSet a;
  a.insert(Box{0, 0, 100, 100});
  PolygonSet b;
  b.insert(Box{50, 50, 150, 150});

  EXPECT_DOUBLE_EQ(a.united(b).area(), 17500.0);
  EXPECT_DOUBLE_EQ(a.intersected(b).area(), 2500.0);
  EXPECT_DOUBLE_EQ(a.subtracted(b).area(), 7500.0);
  EXPECT_DOUBLE_EQ(a.xored(b).area(), 15000.0);

  const PolygonSet u = a.united(b);
  EXPECT_TRUE(u.contains({25, 25}));
  EXPECT_TRUE(u.contains({125, 125}));
  EXPECT_FALSE(u.contains({125, 25}));
}

TEST(PolygonSet, MergedDissolvesOverlap) {
  PolygonSet s;
  s.insert(Box{0, 0, 10, 10});
  s.insert(Box{0, 0, 10, 10});
  s.insert(Box{5, 0, 15, 10});
  EXPECT_DOUBLE_EQ(s.raw_area(), 300.0);
  EXPECT_DOUBLE_EQ(s.area(), 150.0);
  const PolygonSet m = s.merged();
  EXPECT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m.raw_area(), 150.0);
}

TEST(Sizing, GrowRectangle) {
  PolygonSet s;
  s.insert(Box{0, 0, 100, 100});
  const PolygonSet g = s.sized(10);
  EXPECT_DOUBLE_EQ(g.area(), 120.0 * 120.0);
  EXPECT_EQ(g.bbox(), Box(-10, -10, 110, 110));
}

TEST(Sizing, ShrinkRectangle) {
  PolygonSet s;
  s.insert(Box{0, 0, 100, 100});
  const PolygonSet g = s.sized(-10);
  EXPECT_DOUBLE_EQ(g.area(), 80.0 * 80.0);
  EXPECT_EQ(g.bbox(), Box(10, 10, 90, 90));
}

TEST(Sizing, ShrinkBelowWidthVanishes) {
  PolygonSet s;
  s.insert(Box{0, 0, 100, 15});
  EXPECT_DOUBLE_EQ(s.sized(-10).area(), 0.0);
}

TEST(Sizing, GrowMergesNeighbors) {
  PolygonSet s;
  s.insert(Box{0, 0, 10, 10});
  s.insert(Box{14, 0, 24, 10});   // 4 dbu gap, grow by 3 bridges it
  const PolygonSet g = s.sized(3);
  EXPECT_EQ(g.merged().size(), 1u);
}

TEST(Sizing, GrowFillsSmallHole) {
  PolygonSet s;
  s.insert(Polygon{SimplePolygon::rect(0, 0, 100, 100),
                   {SimplePolygon::rect(48, 48, 52, 52)}});
  const PolygonSet g = s.sized(5);
  // Hole half-width is 2 < 5: it must be swallowed, not resurrected (a
  // phantom 6x6 hole would lose 36 dbu²). Sub-dbu snapping slivers from the
  // cancelled inverted contour may cost a couple of dbu².
  EXPECT_NEAR(g.area(), 110.0 * 110.0, 8.0);
}

TEST(Sizing, GrowShrinkRoundTripOnFatShape) {
  PolygonSet s;
  s.insert(Box{0, 0, 200, 200});
  const PolygonSet rt = s.sized(17).sized(-17);
  EXPECT_NEAR(rt.area(), 200.0 * 200.0, 1.0);
}

// ---------------------------------------------------------------------------
// Property-style randomized sweeps.
// ---------------------------------------------------------------------------

class BooleanRandomRects : public ::testing::TestWithParam<int> {};

TEST_P(BooleanRandomRects, InclusionExclusionAndPointOracle) {
  Rng rng(1234 + GetParam());
  const int n = 12;
  std::vector<Box> group_a;
  std::vector<Box> group_b;
  BooleanEngine eng;
  for (int i = 0; i < n; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(-500, 500));
    const Coord y = static_cast<Coord>(rng.uniform(-500, 500));
    const Coord w = static_cast<Coord>(rng.uniform(1, 400));
    const Coord h = static_cast<Coord>(rng.uniform(1, 400));
    const Box box{x, y, static_cast<Coord>(x + w), static_cast<Coord>(y + h)};
    const int g = static_cast<int>(rng.uniform(0, 1));
    eng.add(box, g);
    (g == 0 ? group_a : group_b).push_back(box);
  }

  const auto uni = eng.trapezoids(BoolOp::Or);
  const auto inter = eng.trapezoids(BoolOp::And);
  const auto sub = eng.trapezoids(BoolOp::Sub);
  const auto x = eng.trapezoids(BoolOp::Xor);

  // Area identities (exact for integer rect inputs).
  EXPECT_DOUBLE_EQ(traps_area(x), traps_area(uni) - traps_area(inter));
  EXPECT_DOUBLE_EQ(traps_area(sub) + traps_area(inter),
                   traps_area(uni) - (traps_area(x) - traps_area(sub)));

  // Point-sampling oracle against brute-force box membership.
  for (int k = 0; k < 300; ++k) {
    const Point p{static_cast<Coord>(rng.uniform(-600, 1000)),
                  static_cast<Coord>(rng.uniform(-600, 1000))};
    const bool in_a = std::any_of(group_a.begin(), group_a.end(),
                                  [&](const Box& b) { return b.contains(p); });
    const bool in_b = std::any_of(group_b.begin(), group_b.end(),
                                  [&](const Box& b) { return b.contains(p); });
    // Skip points on any boundary: closed-set semantics differ there.
    bool boundary = false;
    for (const Box& b : group_a)
      if (b.contains(p) && (p.x == b.lo.x || p.x == b.hi.x || p.y == b.lo.y || p.y == b.hi.y))
        boundary = true;
    for (const Box& b : group_b)
      if (b.contains(p) && (p.x == b.lo.x || p.x == b.hi.x || p.y == b.lo.y || p.y == b.hi.y))
        boundary = true;
    if (boundary) continue;

    EXPECT_EQ(any_trap_contains(uni, p), in_a || in_b) << "union @" << p;
    EXPECT_EQ(any_trap_contains(inter, p), in_a && in_b) << "and @" << p;
    EXPECT_EQ(any_trap_contains(sub, p), in_a && !in_b) << "sub @" << p;
    EXPECT_EQ(any_trap_contains(x, p), in_a != in_b) << "xor @" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanRandomRects, ::testing::Range(0, 8));

class BooleanRandomPolys : public ::testing::TestWithParam<int> {};

TEST_P(BooleanRandomPolys, StitchAgreesWithTrapezoidsOnRandomAllAngle) {
  Rng rng(777 + GetParam());
  BooleanEngine eng;
  for (int i = 0; i < 10; ++i) {
    // Random triangles (possibly degenerate-ish, all angles).
    const Point a{static_cast<Coord>(rng.uniform(-400, 400)),
                  static_cast<Coord>(rng.uniform(-400, 400))};
    const Point b = a + Point{static_cast<Coord>(rng.uniform(-200, 200)),
                              static_cast<Coord>(rng.uniform(-200, 200))};
    const Point c = a + Point{static_cast<Coord>(rng.uniform(-200, 200)),
                              static_cast<Coord>(rng.uniform(-200, 200))};
    if (cross(a, b, c) == 0) continue;
    eng.add(SimplePolygon{{a, b, c}});
  }
  // Compare against the UNMERGED bands: stitching reconstructs exactly the
  // rounded band geometry, while the merged trapezoids reunite bands split
  // by foreign events and are closer to the exact area (less rounding).
  const auto traps = eng.trapezoids(BoolOp::Or, /*merge_vertical=*/false);
  const auto polys = eng.polygons(BoolOp::Or);
  // Grid snapping may shift each boundary crossing by <= 0.5 dbu; allow a
  // tolerance proportional to total perimeter.
  double perim = 0.0;
  for (const auto& p : polys) perim += p.outer().perimeter();
  EXPECT_NEAR(polys_area(polys), traps_area(traps), 2.0 + perim * 0.01);
  // The merged decomposition conserves area at least as well (it can only
  // remove rounded interior boundaries, never add error).
  const auto merged = eng.trapezoids(BoolOp::Or, /*merge_vertical=*/true);
  EXPECT_NEAR(traps_area(merged), traps_area(traps), 4.0 + perim * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BooleanRandomPolys, ::testing::Range(0, 8));

}  // namespace
}  // namespace ebl
