// Unit tests for the basic geometry types: Point, Box, Edge, Trans.
#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/edge.h"
#include "geom/point.h"
#include "geom/transform.h"

namespace ebl {
namespace {

TEST(Point, ArithmeticAndOrder) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, Point(2, 6));
  EXPECT_EQ(a - b, Point(4, 2));
  EXPECT_EQ(-a, Point(-3, -4));
  EXPECT_LT(Point(5, 1), Point(0, 2));  // scanline order: y first
  EXPECT_LT(Point(1, 2), Point(3, 2));
}

TEST(Point, CrossSignGivesOrientation) {
  EXPECT_GT(cross({0, 0}, {1, 0}, {0, 1}), 0);  // left turn
  EXPECT_LT(cross({0, 0}, {0, 1}, {1, 0}), 0);  // right turn
  EXPECT_EQ(cross({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(Point, CrossNoOverflowAtExtremes) {
  const Coord big = 2'000'000'000;
  // (2b)*(2b) ~ 1.6e19 > int64 max; must be exact in Wide.
  const Wide c = cross({-big, -big}, {big, -big}, {-big, big});
  EXPECT_GT(c, 0);
  const Wide expected = Wide(4) * big * big;  // base * height of the turn
  EXPECT_EQ(c, expected);
}

TEST(Box, EmptyAndGrow) {
  Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.area(), 0);
  b += Point{2, 3};
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.width(), 0);
  b += Point{-1, 5};
  EXPECT_EQ(b, Box(-1, 3, 2, 5));
  EXPECT_EQ(b.area(), Wide(6));
}

TEST(Box, IntersectionAndContainment) {
  const Box a{0, 0, 10, 10};
  const Box b{5, 5, 15, 15};
  EXPECT_EQ(a & b, Box(5, 5, 10, 10));
  EXPECT_TRUE(a.touches(b));
  EXPECT_TRUE(a.contains(Point{0, 0}));
  EXPECT_TRUE(a.contains(Point{10, 10}));
  EXPECT_FALSE(a.contains(Point{11, 10}));
  EXPECT_TRUE((a & Box{20, 20, 30, 30}).empty());
}

TEST(Box, Bloated) {
  const Box a{0, 0, 4, 4};
  EXPECT_EQ(a.bloated(3), Box(-3, -3, 7, 7));
}

TEST(Edge, SideAndContains) {
  const Edge e{{0, 0}, {10, 10}};
  EXPECT_GT(e.side_of({0, 5}), 0);
  EXPECT_LT(e.side_of({5, 0}), 0);
  EXPECT_EQ(e.side_of({7, 7}), 0);
  EXPECT_TRUE(e.contains({7, 7}));
  EXPECT_FALSE(e.contains({11, 11}));  // beyond endpoint
  EXPECT_FALSE(e.contains({5, 6}));    // off the line
}

TEST(Edge, ClassifyProperCross) {
  EXPECT_EQ(classify_intersection({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}), SegCross::proper);
  EXPECT_EQ(intersection_point({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}), Point(5, 5));
}

TEST(Edge, ClassifyTouchAtEndpointAndTJunction) {
  // Shared endpoint.
  EXPECT_EQ(classify_intersection({{0, 0}, {5, 5}}, {{5, 5}, {9, 0}}), SegCross::touch);
  // T-junction: endpoint in the interior of the other.
  EXPECT_EQ(classify_intersection({{0, 0}, {10, 0}}, {{5, 0}, {5, 7}}), SegCross::touch);
}

TEST(Edge, ClassifyDisjointAndParallel) {
  EXPECT_EQ(classify_intersection({{0, 0}, {1, 1}}, {{5, 5}, {9, 9}}), SegCross::none);
  EXPECT_EQ(classify_intersection({{0, 0}, {4, 0}}, {{0, 1}, {4, 1}}), SegCross::none);
}

TEST(Edge, ClassifyCollinearOverlap) {
  EXPECT_EQ(classify_intersection({{0, 0}, {10, 0}}, {{5, 0}, {15, 0}}), SegCross::overlap);
  EXPECT_EQ(classify_intersection({{0, 0}, {10, 0}}, {{10, 0}, {20, 0}}), SegCross::touch);
  const auto span = overlap_span({{0, 0}, {10, 0}}, {{5, 0}, {15, 0}});
  EXPECT_EQ(span.first, Point(5, 0));
  EXPECT_EQ(span.second, Point(10, 0));
}

TEST(Edge, IntersectionRoundsToGrid) {
  // Lines cross at (0.5, 0.5) -> rounds to (1, 1) (ties away from zero).
  const Point p = intersection_point({{0, 0}, {1, 1}}, {{0, 1}, {1, 0}});
  EXPECT_EQ(p, Point(1, 1));
}

TEST(Trans, AppliesOrientations) {
  const Point p{2, 1};
  EXPECT_EQ(Trans({0, 0}, Orient::r0)(p), Point(2, 1));
  EXPECT_EQ(Trans({0, 0}, Orient::r90)(p), Point(-1, 2));
  EXPECT_EQ(Trans({0, 0}, Orient::r180)(p), Point(-2, -1));
  EXPECT_EQ(Trans({0, 0}, Orient::r270)(p), Point(1, -2));
  EXPECT_EQ(Trans({0, 0}, Orient::m0)(p), Point(2, -1));
  EXPECT_EQ(Trans({10, 20}, Orient::r0)(p), Point(12, 21));
}

TEST(Trans, CompositionMatchesApplication) {
  const Point probe{7, -3};
  for (int oa = 0; oa < 8; ++oa) {
    for (int ob = 0; ob < 8; ++ob) {
      const Trans a{Point{5, -2}, static_cast<Orient>(oa)};
      const Trans b{Point{-4, 9}, static_cast<Orient>(ob)};
      EXPECT_EQ((a * b)(probe), a(b(probe)))
          << "oa=" << oa << " ob=" << ob;
    }
  }
}

TEST(Trans, InverseRoundTrips) {
  const Point probe{13, 27};
  for (int o = 0; o < 8; ++o) {
    const Trans t{Point{31, -8}, static_cast<Orient>(o)};
    EXPECT_EQ(t.inverted()(t(probe)), probe) << "orient " << o;
    EXPECT_EQ(t(t.inverted()(probe)), probe) << "orient " << o;
  }
}

TEST(CTrans, OrthogonalMatchesTrans) {
  const Point probe{11, 5};
  for (int o = 0; o < 8; ++o) {
    const Trans t{Point{3, 4}, static_cast<Orient>(o)};
    const CTrans c{t};
    EXPECT_TRUE(c.is_orthogonal());
    EXPECT_EQ(c(probe), t(probe)) << "orient " << o;
    EXPECT_EQ(c.to_trans(), t);
  }
}

TEST(CTrans, MagnificationScales) {
  const CTrans c{Point{0, 0}, 0.0, 2.0, false};
  EXPECT_EQ(c(Point{3, 4}), Point(6, 8));
  EXPECT_FALSE(c.is_orthogonal());
}

}  // namespace
}  // namespace ebl
