// Unit tests for SimplePolygon / Polygon / Trapezoid / curves.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/curves.h"
#include "geom/polygon.h"
#include "geom/trapezoid.h"
#include "util/contracts.h"

namespace ebl {
namespace {

SimplePolygon unit_square(Coord s = 10) {
  return SimplePolygon::rect(0, 0, s, s);
}

TEST(SimplePolygon, RectBasics) {
  const auto p = unit_square();
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.bbox(), Box(0, 0, 10, 10));
  EXPECT_EQ(p.doubled_signed_area(), Wide(200));
  EXPECT_DOUBLE_EQ(p.area(), 100.0);
  EXPECT_TRUE(p.is_ccw());
  EXPECT_TRUE(p.is_rectilinear());
  EXPECT_DOUBLE_EQ(p.perimeter(), 40.0);
}

TEST(SimplePolygon, ReversedFlipsOrientation) {
  const auto p = unit_square();
  const auto r = p.reversed();
  EXPECT_FALSE(r.is_ccw());
  EXPECT_EQ(r.doubled_signed_area(), -p.doubled_signed_area());
}

TEST(SimplePolygon, ContainsInteriorBoundaryExterior) {
  const auto p = unit_square();
  EXPECT_TRUE(p.contains({5, 5}));
  EXPECT_TRUE(p.contains({0, 0}));    // vertex
  EXPECT_TRUE(p.contains({5, 0}));    // edge
  EXPECT_FALSE(p.contains({11, 5}));
  EXPECT_FALSE(p.contains({-1, -1}));
}

TEST(SimplePolygon, ContainsNonConvex) {
  // L-shape.
  const SimplePolygon p{{{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}}};
  EXPECT_TRUE(p.contains({5, 15}));
  EXPECT_TRUE(p.contains({15, 5}));
  EXPECT_FALSE(p.contains({15, 15}));
  EXPECT_DOUBLE_EQ(p.area(), 300.0);
}

TEST(SimplePolygon, NormalizedCanonicalizes) {
  // Same square entered CW with a redundant collinear vertex.
  const SimplePolygon messy{{{10, 0}, {10, 10}, {5, 10}, {0, 10}, {0, 0}, {5, 0}}};
  const auto n = messy.normalized();
  EXPECT_EQ(n, unit_square().normalized());
  EXPECT_TRUE(n.is_ccw());
  EXPECT_EQ(n.size(), 4u);
  EXPECT_EQ(n[0], Point(0, 0));  // smallest vertex first
}

TEST(SimplePolygon, NormalizedDropsDegenerate) {
  const SimplePolygon degenerate{{{0, 0}, {5, 0}, {9, 0}}};
  EXPECT_TRUE(degenerate.normalized().empty());
}

TEST(SimplePolygon, NotRectilinearWith45) {
  const SimplePolygon tri{{{0, 0}, {10, 0}, {0, 10}}};
  EXPECT_FALSE(tri.is_rectilinear());
  EXPECT_DOUBLE_EQ(tri.area(), 50.0);
}

TEST(Polygon, HoleAreaAndContains) {
  const Polygon p{unit_square(20), {SimplePolygon::rect(5, 5, 15, 15)}};
  EXPECT_DOUBLE_EQ(p.area(), 400.0 - 100.0);
  EXPECT_TRUE(p.contains({2, 2}));
  EXPECT_FALSE(p.contains({10, 10}));   // inside the hole
  EXPECT_TRUE(p.contains({5, 10}));     // on the hole boundary
  EXPECT_EQ(p.vertex_count(), 8u);
}

TEST(Polygon, NormalizesOrientations) {
  // Outer given CW, hole given CCW: constructor must fix both.
  const Polygon p{unit_square(20).reversed(), {SimplePolygon::rect(5, 5, 15, 15)}};
  EXPECT_TRUE(p.outer().is_ccw());
  EXPECT_FALSE(p.holes()[0].is_ccw());
  EXPECT_DOUBLE_EQ(p.area(), 300.0);
}

TEST(Trapezoid, RectAndArea) {
  const auto t = Trapezoid::rect(Box{0, 0, 10, 4});
  EXPECT_TRUE(t.valid());
  EXPECT_TRUE(t.is_rect());
  EXPECT_DOUBLE_EQ(t.area(), 40.0);
  EXPECT_EQ(t.bbox(), Box(0, 0, 10, 4));
}

TEST(Trapezoid, SlantedAreaAndContains) {
  // Right triangle: bottom [0,10], top collapses at x=0.
  const Trapezoid t{0, 10, 0, 10, 0, 0};
  EXPECT_TRUE(t.valid());
  EXPECT_TRUE(t.is_triangle());
  EXPECT_DOUBLE_EQ(t.area(), 50.0);
  EXPECT_TRUE(t.contains({1, 1}));
  EXPECT_TRUE(t.contains({0, 10}));   // apex
  EXPECT_TRUE(t.contains({5, 5}));    // on hypotenuse
  EXPECT_FALSE(t.contains({6, 5}));
}

TEST(Trapezoid, ToPolygonRoundTripsArea) {
  const Trapezoid t{0, 8, 2, 14, 4, 10};
  const auto p = t.to_polygon();
  EXPECT_DOUBLE_EQ(p.area(), t.area());
  EXPECT_TRUE(p.is_ccw());
}

TEST(Trapezoid, InvalidShapes) {
  EXPECT_FALSE((Trapezoid{0, 0, 0, 10, 0, 10}).valid());   // zero height
  EXPECT_FALSE((Trapezoid{0, 5, 10, 0, 10, 0}).valid());   // inverted x
  EXPECT_FALSE((Trapezoid{0, 5, 3, 3, 4, 4}).valid());     // zero width both ends
}

TEST(Curves, CircleAreaConverges) {
  const Coord r = 10000;
  const auto c = circle({0, 0}, r, 1.0);
  const double exact = std::numbers::pi * double(r) * r;
  EXPECT_NEAR(c.area(), exact, exact * 1e-3);
  EXPECT_GE(c.size(), 8u);
}

TEST(Curves, CircleRespectsToleranceScaling) {
  EXPECT_GT(circle_segments(10000, 1.0), circle_segments(10000, 10.0));
  EXPECT_GT(circle_segments(100000, 1.0), circle_segments(10000, 1.0));
}

TEST(Curves, RingHasHole) {
  const auto ringp = ring({0, 0}, 5000, 10000, 1.0);
  EXPECT_EQ(ringp.holes().size(), 1u);
  const double exact = std::numbers::pi * (1e8 - 25e6);
  EXPECT_NEAR(ringp.area(), exact, exact * 1e-3);
  EXPECT_TRUE(ringp.contains({7500, 0}));
  EXPECT_FALSE(ringp.contains({0, 0}));
}

TEST(Curves, RingSectorQuarter) {
  const auto s = ring_sector({0, 0}, 5000, 10000, 0.0, std::numbers::pi / 2, 1.0);
  const double exact = std::numbers::pi * (1e8 - 25e6) / 4.0;
  EXPECT_NEAR(s.area(), exact, exact * 2e-3);
  EXPECT_TRUE(s.contains({5300, 5300}));
  EXPECT_FALSE(s.contains({-5300, 5300}));
}

TEST(Curves, PieSliceWithZeroInnerRadius) {
  const auto s = ring_sector({0, 0}, 0, 1000, 0.0, std::numbers::pi, 1.0);
  const double exact = std::numbers::pi * 1e6 / 2.0;
  EXPECT_NEAR(s.area(), exact, exact * 2e-3);
}

TEST(Curves, RegularPolygonArea) {
  const auto hex = regular_polygon({0, 0}, 1000, 6);
  const double exact = 6.0 * 0.25 * std::sqrt(3.0) * 1000.0 * 1000.0;
  EXPECT_NEAR(hex.area(), exact, exact * 1e-2);
  EXPECT_EQ(hex.size(), 6u);
}

TEST(Curves, RejectsBadArguments) {
  EXPECT_THROW(circle({0, 0}, 0, 1.0), ContractViolation);
  EXPECT_THROW(ring({0, 0}, 10, 5, 1.0), ContractViolation);
  EXPECT_THROW(regular_polygon({0, 0}, 10, 2), ContractViolation);
}

}  // namespace
}  // namespace ebl
