// Tests for the area-coverage rasterizer.
#include <gtest/gtest.h>

#include "geom/raster.h"
#include "util/contracts.h"

namespace ebl {
namespace {

TEST(Raster, GridSizingAndIndexing) {
  Raster r(Box{0, 0, 1000, 500}, 100);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.center(0, 0), Point(50, 50));
  EXPECT_EQ(r.index_of(Point{250, 250}), (std::pair{2, 2}));
  EXPECT_EQ(r.index_of(Point{-100, 9999}), (std::pair{0, 4}));  // clamped
}

TEST(Raster, PartialPixelFrameRoundsUp) {
  Raster r(Box{0, 0, 1050, 100}, 100);
  EXPECT_EQ(r.width(), 11);
  EXPECT_EQ(r.height(), 1);
}

TEST(Raster, FullCoverageOfAlignedRect) {
  Raster r(Box{0, 0, 400, 400}, 100);
  r.add_coverage(Trapezoid::rect(Box{0, 0, 400, 400}));
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) EXPECT_DOUBLE_EQ(r.at(x, y), 1.0);
  }
  EXPECT_DOUBLE_EQ(r.sum(), 16.0);
  EXPECT_DOUBLE_EQ(r.max_value(), 1.0);
}

TEST(Raster, HalfPixelCoverage) {
  Raster r(Box{0, 0, 200, 100}, 100);
  r.add_coverage(Trapezoid::rect(Box{0, 0, 150, 100}));
  EXPECT_DOUBLE_EQ(r.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r.at(1, 0), 0.5);
}

TEST(Raster, TriangleCoverageIsExact) {
  Raster r(Box{0, 0, 100, 100}, 100);
  // Right triangle covering half the single pixel.
  r.add_coverage(Trapezoid{0, 100, 0, 100, 0, 0});
  EXPECT_DOUBLE_EQ(r.at(0, 0), 0.5);
}

TEST(Raster, CoverageSumsAreaInvariant) {
  Raster r(Box{-500, -500, 1500, 1500}, 64);
  const Trapezoid t{13, 977, -240, 311, 52, 845};
  r.add_coverage(t, 1.0);
  const double pixel_area = 64.0 * 64.0;
  EXPECT_NEAR(r.sum() * pixel_area, t.area(), 1.0);
}

TEST(Raster, WeightScalesAccumulation) {
  Raster r(Box{0, 0, 100, 100}, 100);
  r.add_coverage(Trapezoid::rect(Box{0, 0, 100, 100}), 2.5);
  r.add_coverage(Trapezoid::rect(Box{0, 0, 100, 100}), 0.5);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 3.0);
}

TEST(Raster, OutsideGeometryIgnored) {
  Raster r(Box{0, 0, 100, 100}, 100);
  r.add_coverage(Trapezoid::rect(Box{500, 500, 600, 600}));
  EXPECT_DOUBLE_EQ(r.sum(), 0.0);
}

TEST(Raster, InvalidConstructionRejected) {
  EXPECT_THROW(Raster(Box{0, 0, 10, 10}, 0), ContractViolation);
  EXPECT_THROW(Raster(Box{}, 10), ContractViolation);
}

TEST(Raster, AtBoundsChecked) {
  Raster r(Box{0, 0, 100, 100}, 100);
  EXPECT_THROW(r.at(1, 0), ContractViolation);
  EXPECT_THROW(r.at(0, -1), ContractViolation);
}

}  // namespace
}  // namespace ebl
