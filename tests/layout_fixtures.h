// Shared layout fixtures for the format and streaming tests.
#pragma once

#include "layout/library.h"

namespace ebl {
namespace test_fixtures {

/// The canonical two-cell hierarchy used across layout_gdsii_test,
/// layout_oasis_test and layout_stream_test: a LEAF with a rectangle, a
/// triangle, and a holed polygon on three layers, placed under TOP once
/// with a mirrored 90° transform and once as a 3x2 array. Every value is
/// exactly representable in both GDSII excess-64 reals and OASIS operands,
/// so cross-format equality tests can demand exactness.
inline Library sample_library() {
  Library lib("SAMPLE");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{0, 0, 100, 50});
  lib.cell(leaf).add_shape(LayerKey{1, 5}, SimplePolygon{{{0, 0}, {40, 0}, {0, 30}}});
  lib.cell(leaf).add_shape(
      LayerKey{2, 0},
      Polygon{SimplePolygon::rect(0, 0, 60, 60), {SimplePolygon::rect(20, 20, 40, 40)}});

  const CellId top = lib.add_cell("TOP");
  Reference sref;
  sref.child = leaf;
  sref.trans = CTrans{Point{1000, -500}, 90.0, 1.0, true};
  lib.cell(top).add_reference(sref);

  Reference aref;
  aref.child = leaf;
  aref.cols = 3;
  aref.rows = 2;
  aref.col_step = {200, 0};
  aref.row_step = {0, 300};
  aref.trans = CTrans{Point{-400, 800}, 0.0, 1.0, false};
  lib.cell(top).add_reference(aref);
  return lib;
}

/// A deeper hierarchy for window/eviction tests: LEAF geometry wrapped in
/// two intermediate cells that both re-reference LEAF, so a small window
/// must evict and reload cells during the flatten walk.
inline Library deep_library() {
  Library lib("DEEP");
  const LayerKey metal{1, 0};
  const CellId leaf_a = lib.add_cell("LEAF_A");
  lib.cell(leaf_a).add_shape(metal, Box{0, 0, 80, 40});
  const CellId leaf_b = lib.add_cell("LEAF_B");
  lib.cell(leaf_b).add_shape(metal, SimplePolygon{{{0, 0}, {50, 0}, {0, 50}}});

  const CellId mid_a = lib.add_cell("MID_A");
  {
    Reference r;
    r.child = leaf_a;
    lib.cell(mid_a).add_reference(r);
    r.child = leaf_b;
    r.trans = CTrans{Point{200, 0}, 0.0, 1.0, false};
    lib.cell(mid_a).add_reference(r);
  }
  const CellId mid_b = lib.add_cell("MID_B");
  {
    Reference r;
    r.child = leaf_b;
    lib.cell(mid_b).add_reference(r);
    r.child = leaf_a;
    r.trans = CTrans{Point{0, 200}, 90.0, 1.0, false};
    lib.cell(mid_b).add_reference(r);
  }
  const CellId top = lib.add_cell("TOP");
  {
    Reference r;
    r.child = mid_a;
    lib.cell(top).add_reference(r);
    r.child = mid_b;
    r.trans = CTrans{Point{1000, 0}, 0.0, 1.0, false};
    lib.cell(top).add_reference(r);
    r.child = mid_a;
    r.cols = 2;
    r.rows = 2;
    r.col_step = {500, 0};
    r.row_step = {0, 500};
    r.trans = CTrans{Point{0, 2000}, 0.0, 1.0, false};
    lib.cell(top).add_reference(r);
  }
  return lib;
}

}  // namespace test_fixtures
}  // namespace ebl
