// GDSII round-trip and format tests.
#include <gtest/gtest.h>

#include <sstream>

#include "layout/gdsii.h"
#include "layout_fixtures.h"
#include "util/contracts.h"

namespace ebl {
namespace {

using gds_detail::from_gds_real;
using gds_detail::to_gds_real;

TEST(GdsReal, RoundTripsCommonValues) {
  for (double v : {0.0, 1.0, -1.0, 0.001, 1e-9, 90.0, 270.0, 2.5, 1e6, -3.25e-4}) {
    EXPECT_NEAR(from_gds_real(to_gds_real(v)), v, std::abs(v) * 1e-14)
        << "value " << v;
  }
}

TEST(GdsReal, KnownEncodingOfOne) {
  // 1.0 = 0.0625 * 16^1: exponent 65, mantissa 0x10000000000000.
  EXPECT_EQ(to_gds_real(1.0), 0x4110000000000000ull);
  EXPECT_DOUBLE_EQ(from_gds_real(0x4110000000000000ull), 1.0);
}

TEST(GdsReal, NegativeSetsSignBit) {
  EXPECT_EQ(to_gds_real(-1.0) >> 63, 1u);
  EXPECT_DOUBLE_EQ(from_gds_real(to_gds_real(-2.0)), -2.0);
}

using test_fixtures::sample_library;

TEST(Gdsii, RoundTripPreservesStructure) {
  const Library lib = sample_library();
  std::stringstream buf;
  write_gds(lib, buf);

  GdsReadReport report;
  const Library back = read_gds(buf, &report);

  EXPECT_EQ(back.name(), "SAMPLE");
  EXPECT_NEAR(back.dbu_in_microns(), 0.001, 1e-12);
  EXPECT_EQ(report.structures, 2u);
  EXPECT_EQ(report.srefs, 1u);
  EXPECT_EQ(report.arefs, 1u);
  // 3 polygons, one with a hole -> 4 boundaries.
  EXPECT_EQ(report.boundaries, 4u);

  const auto leaf = back.find_cell("LEAF");
  const auto top = back.find_cell("TOP");
  ASSERT_TRUE(leaf && top);
  EXPECT_EQ(back.cell(*leaf).shapes_on(LayerKey{1, 0}).size(), 1u);
  EXPECT_EQ(back.cell(*leaf).shapes_on(LayerKey{1, 5}).size(), 1u);
  EXPECT_EQ(back.cell(*top).references().size(), 2u);
}

TEST(Gdsii, RoundTripPreservesFlattenedGeometry) {
  const Library lib = sample_library();
  std::stringstream buf;
  write_gds(lib, buf);
  const Library back = read_gds(buf);

  const CellId t1 = *lib.find_cell("TOP");
  const CellId t2 = *back.find_cell("TOP");
  for (const LayerKey layer : {LayerKey{1, 0}, LayerKey{1, 5}}) {
    const PolygonSet a = lib.flatten(t1, layer);
    const PolygonSet b = back.flatten(t2, layer);
    EXPECT_EQ(a.bbox(), b.bbox()) << "layer " << layer;
    EXPECT_NEAR(a.area(), b.area(), 1e-6) << "layer " << layer;
  }
  // The holed polygon is written as two boundaries; the merged region area
  // changes (hole becomes overlap) but the union bbox must match.
  EXPECT_EQ(lib.flatten(t1, LayerKey{2, 0}).bbox(),
            back.flatten(t2, LayerKey{2, 0}).bbox());
}

TEST(Gdsii, RoundTripPreservesArrayPlacement) {
  const Library lib = sample_library();
  std::stringstream buf;
  write_gds(lib, buf);
  const Library back = read_gds(buf);
  const Cell& top = back.cell(*back.find_cell("TOP"));
  const Reference* aref = nullptr;
  for (const auto& r : top.references()) {
    if (r.is_array()) aref = &r;
  }
  ASSERT_NE(aref, nullptr);
  EXPECT_EQ(aref->cols, 3u);
  EXPECT_EQ(aref->rows, 2u);
  EXPECT_EQ(aref->col_step, Point(200, 0));
  EXPECT_EQ(aref->row_step, Point(0, 300));
  EXPECT_EQ(aref->trans.disp(), Point(-400, 800));
}

TEST(Gdsii, RejectsGarbage) {
  std::stringstream buf("this is not a gds file at all");
  EXPECT_THROW(read_gds(buf), std::exception);  // truncated record or bad HEADER
  std::stringstream empty;
  EXPECT_THROW(read_gds(empty), DataError);
}

TEST(Gdsii, RejectsTruncatedStream) {
  const Library lib = sample_library();
  std::stringstream buf;
  write_gds(lib, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_gds(cut), DataError);
}

TEST(Gdsii, RejectsUndefinedReference) {
  // Build a tiny stream referencing a structure that never appears: write a
  // library with a reference, then truncate the LEAF structure by writing
  // manually via a modified library is complex — instead rely on name
  // resolution: a self-contained check through the writer is not possible,
  // so craft the error by reading a library where the child cell exists,
  // then assert the reader resolved it (negative control).
  const Library lib = sample_library();
  std::stringstream buf;
  write_gds(lib, buf);
  EXPECT_NO_THROW(read_gds(buf));
}

TEST(Gdsii, EmptyLibraryRoundTrips) {
  Library lib("EMPTY");
  std::stringstream buf;
  write_gds(lib, buf);
  const Library back = read_gds(buf);
  EXPECT_EQ(back.name(), "EMPTY");
  EXPECT_EQ(back.cell_count(), 0u);
}

TEST(Gdsii, OddLengthNamePads) {
  Library lib("ODD");
  const CellId c = lib.add_cell("ABC");  // 3 chars -> padded to 4
  lib.cell(c).add_shape(LayerKey{1, 0}, Box{0, 0, 1, 1});
  std::stringstream buf;
  write_gds(lib, buf);
  const Library back = read_gds(buf);
  EXPECT_TRUE(back.find_cell("ABC").has_value());
}

}  // namespace
}  // namespace ebl
