// Tests for the hierarchical layout database.
#include <gtest/gtest.h>

#include "layout/library.h"
#include "util/contracts.h"

namespace ebl {
namespace {

Library two_level_library() {
  Library lib("TEST");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{0, 0, 10, 10});

  const CellId top = lib.add_cell("TOP");
  lib.cell(top).add_shape(LayerKey{2, 0}, Box{-5, -5, 0, 0});
  Reference r;
  r.child = leaf;
  r.trans = CTrans{Point{100, 0}, 0.0, 1.0, false};
  lib.cell(top).add_reference(r);
  return lib;
}

TEST(Library, AddFindCells) {
  Library lib("L");
  const CellId a = lib.add_cell("A");
  const CellId b = lib.add_cell("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(lib.find_cell("A"), a);
  EXPECT_EQ(lib.find_cell("B"), b);
  EXPECT_FALSE(lib.find_cell("C").has_value());
  EXPECT_EQ(lib.cell_count(), 2u);
  EXPECT_THROW(lib.add_cell("A"), DataError);
  EXPECT_THROW(lib.add_cell(""), ContractViolation);
}

TEST(Library, TopCellDetection) {
  Library lib = two_level_library();
  const auto tops = lib.top_cells();
  ASSERT_EQ(tops.size(), 1u);
  EXPECT_EQ(lib.cell(tops[0]).name(), "TOP");
}

TEST(Library, FlattenSingleReference) {
  Library lib = two_level_library();
  const CellId top = *lib.find_cell("TOP");
  const PolygonSet flat = lib.flatten(top, LayerKey{1, 0});
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat.bbox(), Box(100, 0, 110, 10));
  // TOP's own layer flattens too.
  EXPECT_EQ(lib.flatten(top, LayerKey{2, 0}).bbox(), Box(-5, -5, 0, 0));
  // Unused layer is empty.
  EXPECT_TRUE(lib.flatten(top, LayerKey{9, 9}).empty());
}

TEST(Library, FlattenRotatedReference) {
  Library lib("L");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{0, 0, 10, 4});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = leaf;
  r.trans = CTrans{Point{0, 0}, 90.0, 1.0, false};
  lib.cell(top).add_reference(r);
  const PolygonSet flat = lib.flatten(top, LayerKey{1, 0});
  EXPECT_EQ(flat.bbox(), Box(-4, 0, 0, 10));
}

TEST(Library, FlattenArrayReference) {
  Library lib("L");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{0, 0, 10, 10});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = leaf;
  r.cols = 3;
  r.rows = 2;
  r.col_step = {100, 0};
  r.row_step = {0, 50};
  lib.cell(top).add_reference(r);
  const PolygonSet flat = lib.flatten(top, LayerKey{1, 0});
  EXPECT_EQ(flat.size(), 6u);
  EXPECT_EQ(flat.bbox(), Box(0, 0, 210, 60));
  EXPECT_EQ(lib.bbox(top), Box(0, 0, 210, 60));
}

TEST(Library, NestedHierarchyComposesTransforms) {
  Library lib("L");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{0, 0, 2, 1});
  const CellId mid = lib.add_cell("MID");
  Reference r1;
  r1.child = leaf;
  r1.trans = CTrans{Point{10, 0}, 0.0, 1.0, false};
  lib.cell(mid).add_reference(r1);
  const CellId top = lib.add_cell("TOP");
  Reference r2;
  r2.child = mid;
  r2.trans = CTrans{Point{0, 100}, 90.0, 1.0, false};
  lib.cell(top).add_reference(r2);

  // leaf box at (10,0)-(12,1) in MID; rotate 90° about origin then +{0,100}:
  // (x,y) -> (-y, x) + (0,100) => (10,0)->(0,110), (12,1)->(-1,112).
  const PolygonSet flat = lib.flatten(top, LayerKey{1, 0});
  EXPECT_EQ(flat.bbox(), Box(-1, 110, 0, 112));
}

TEST(Library, StatsCountInstancesAndShapes) {
  Library lib("L");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{0, 0, 1, 1});
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{2, 0, 3, 1});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = leaf;
  r.cols = 4;
  r.rows = 4;
  r.col_step = {10, 0};
  r.row_step = {0, 10};
  lib.cell(top).add_reference(r);
  const LibraryStats s = lib.stats(top);
  EXPECT_EQ(s.cells, 2u);
  EXPECT_EQ(s.local_shapes, 2u);
  EXPECT_EQ(s.references, 1u);
  EXPECT_EQ(s.flat_instances, 16u);
  EXPECT_EQ(s.flat_shapes, 32u);
}

TEST(Library, ValidateDetectsCycle) {
  Library lib("L");
  const CellId a = lib.add_cell("A");
  const CellId b = lib.add_cell("B");
  Reference rab;
  rab.child = b;
  lib.cell(a).add_reference(rab);
  lib.validate();  // fine so far
  Reference rba;
  rba.child = a;
  lib.cell(b).add_reference(rba);
  EXPECT_THROW(lib.validate(), DataError);
  EXPECT_THROW(lib.flatten(a, LayerKey{1, 0}), DataError);
}

TEST(Library, BBoxCachesAndInvalidates) {
  Library lib("L");
  const CellId a = lib.add_cell("A");
  lib.cell(a).add_shape(LayerKey{1, 0}, Box{0, 0, 5, 5});
  EXPECT_EQ(lib.bbox(a), Box(0, 0, 5, 5));
  lib.cell(a).add_shape(LayerKey{1, 0}, Box{10, 10, 20, 20});
  EXPECT_EQ(lib.bbox(a), Box(0, 0, 20, 20));  // cache invalidated by cell()
}

TEST(Library, LayersUnderAggregatesHierarchy) {
  Library lib = two_level_library();
  const CellId top = *lib.find_cell("TOP");
  const auto layers = lib.layers_under(top);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0], (LayerKey{1, 0}));
  EXPECT_EQ(layers[1], (LayerKey{2, 0}));
}

TEST(Library, MirroredReferenceFlattens) {
  Library lib("L");
  const CellId leaf = lib.add_cell("LEAF");
  lib.cell(leaf).add_shape(LayerKey{1, 0}, Box{1, 2, 4, 6});
  const CellId top = lib.add_cell("TOP");
  Reference r;
  r.child = leaf;
  r.trans = CTrans{Point{0, 0}, 0.0, 1.0, true};  // mirror about x
  lib.cell(top).add_reference(r);
  EXPECT_EQ(lib.flatten(top, LayerKey{1, 0}).bbox(), Box(1, -6, 4, -2));
}

}  // namespace
}  // namespace ebl
