// OASIS codec, round-trip, and hostile-input tests.
//
// The hand-built byte sequences below follow SEMI P39 record layouts; the
// record-id and info-byte constants are documented in docs/formats.md.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "layout/gdsii.h"
#include "layout/oasis.h"
#include "layout/stream.h"
#include "layout_fixtures.h"
#include "util/contracts.h"

namespace ebl {
namespace {

using oasis_detail::Cursor;
using oasis_detail::write_real;
using oasis_detail::write_sint;
using oasis_detail::write_string;
using oasis_detail::write_uint;
using test_fixtures::sample_library;

std::string dump_oas(const Library& lib) {
  std::ostringstream os(std::ios::binary);
  write_oas(lib, os);
  return os.str();
}

// ---------------------------------------------------------------- codecs ---

TEST(OasisCodec, UintRoundTripsBoundaries) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{16383}, std::uint64_t{16384}, std::uint64_t{1} << 31,
        std::uint64_t{1} << 63, ~std::uint64_t{0}}) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_uint(ss, v);
    Cursor c(ss);
    EXPECT_EQ(c.read_uint(), v) << "value " << v;
    EXPECT_TRUE(c.at_eof());
  }
}

TEST(OasisCodec, UintRejects65BitEncoding) {
  // Nine continuation bytes put the tenth at shift 63, where only the low
  // bit may be set; 0x03 would be bit 64.
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  for (int i = 0; i < 9; ++i) ss.put(static_cast<char>(0xFF));
  ss.put(0x03);
  Cursor c(ss);
  EXPECT_THROW(c.read_uint(), DataError);
}

TEST(OasisCodec, UintRejectsOverlongContinuation) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  for (int i = 0; i < 10; ++i) ss.put(static_cast<char>(0x81));
  ss.put(0x01);
  Cursor c(ss);
  EXPECT_THROW(c.read_uint(), DataError);
}

TEST(OasisCodec, SintRoundTripsBoundaries) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63},
        std::int64_t{-64}, std::int64_t{1} << 40, -(std::int64_t{1} << 40),
        (std::int64_t{1} << 62) - 1, -((std::int64_t{1} << 62) - 1)}) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_sint(ss, v);
    Cursor c(ss);
    EXPECT_EQ(c.read_sint(), v) << "value " << v;
  }
}

TEST(OasisCodec, RealRoundTripsWholeAndFractional) {
  for (const double v : {0.0, 1.0, -1.0, 1000.0, -42.0, 0.5, 1.25, -2.75e-3, 3.14159}) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_real(ss, v);
    Cursor c(ss);
    EXPECT_DOUBLE_EQ(c.read_real(), v) << "value " << v;
  }
}

TEST(OasisCodec, RealDecodesAllSpecTypes) {
  const auto decode = [](const std::function<void(std::ostream&)>& put) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    put(ss);
    Cursor c(ss);
    return c.read_real();
  };
  // Type 2/3: positive/negative reciprocal.
  EXPECT_DOUBLE_EQ(decode([](std::ostream& os) {
                     write_uint(os, 2);
                     write_uint(os, 4);
                   }),
                   0.25);
  EXPECT_DOUBLE_EQ(decode([](std::ostream& os) {
                     write_uint(os, 3);
                     write_uint(os, 8);
                   }),
                   -0.125);
  // Type 4/5: ratio.
  EXPECT_DOUBLE_EQ(decode([](std::ostream& os) {
                     write_uint(os, 4);
                     write_uint(os, 3);
                     write_uint(os, 4);
                   }),
                   0.75);
  EXPECT_DOUBLE_EQ(decode([](std::ostream& os) {
                     write_uint(os, 5);
                     write_uint(os, 7);
                     write_uint(os, 2);
                   }),
                   -3.5);
  // Type 6: float32, little-endian.
  EXPECT_DOUBLE_EQ(decode([](std::ostream& os) {
                     write_uint(os, 6);
                     const float f = 1.5f;
                     char raw[4];
                     std::memcpy(raw, &f, 4);
                     os.write(raw, 4);
                   }),
                   1.5);
}

TEST(OasisCodec, RealRejectsZeroDenominatorAndNonFinite) {
  const auto expect_throw = [](const std::function<void(std::ostream&)>& put) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    put(ss);
    Cursor c(ss);
    EXPECT_THROW(c.read_real(), DataError);
  };
  expect_throw([](std::ostream& os) {
    write_uint(os, 2);
    write_uint(os, 0);  // 1/0
  });
  expect_throw([](std::ostream& os) {
    write_uint(os, 4);
    write_uint(os, 1);
    write_uint(os, 0);  // 1/0 as ratio
  });
  expect_throw([](std::ostream& os) {
    write_uint(os, 7);
    const double inf = std::numeric_limits<double>::infinity();
    char raw[8];
    std::memcpy(raw, &inf, 8);
    os.write(raw, 8);
  });
  expect_throw([](std::ostream& os) { write_uint(os, 8); });  // invalid type
}

TEST(OasisCodec, NStringValidation) {
  {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_string(ss, "TOP_0.A$");
    Cursor c(ss);
    EXPECT_EQ(c.read_string(true), "TOP_0.A$");
  }
  {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_string(ss, "bad name");  // space is outside 0x21..0x7E
    Cursor c(ss);
    EXPECT_THROW(c.read_string(true), DataError);
  }
  {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_string(ss, "");
    Cursor c(ss);
    EXPECT_THROW(c.read_string(true), DataError);  // empty n-string
  }
}

TEST(OasisCodec, CoordRejectsGridOverflow) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_sint(ss, std::int64_t{1} << 33);
  Cursor c(ss);
  EXPECT_THROW(c.read_coord(), DataError);
}

// ------------------------------------------------------------ round trip ---

TEST(Oasis, RoundTripPreservesStructure) {
  const Library lib = sample_library();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_oas(lib, ss);

  OasisReadReport report;
  const Library back = read_oas(ss, &report);
  EXPECT_EQ(back.cell_count(), 2u);
  EXPECT_EQ(report.cells, 2u);
  EXPECT_EQ(report.placements, 2u);
  EXPECT_GE(report.rectangles, 1u);  // the leaf Box goes out as RECTANGLE
  ASSERT_TRUE(back.find_cell("LEAF").has_value());
  ASSERT_TRUE(back.find_cell("TOP").has_value());
}

TEST(Oasis, RoundTripPreservesFlattenedGeometryExactly) {
  const Library lib = sample_library();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_oas(lib, ss);
  const Library back = read_oas(ss);

  const CellId top = *lib.find_cell("TOP");
  const CellId btop = *back.find_cell("TOP");
  for (const LayerKey layer : {LayerKey{1, 0}, LayerKey{1, 5}}) {
    const auto a = lib.flatten(top, layer).trapezoids();
    const auto b = back.flatten(btop, layer).trapezoids();
    EXPECT_EQ(a, b) << "layer " << layer.layer << "/" << layer.datatype;
  }
  // Holes are written as separate contours (the GDSII convention shared by
  // both writers): the merged region turns the hole into overlap, so only
  // the union bbox is preserved on the holed layer.
  EXPECT_EQ(lib.flatten(top, LayerKey{2, 0}).bbox(),
            back.flatten(btop, LayerKey{2, 0}).bbox());
}

TEST(Oasis, RoundTripPreservesArrayPlacement) {
  const Library lib = sample_library();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_oas(lib, ss);
  const Library back = read_oas(ss);

  const Cell& top = back.cell(*back.find_cell("TOP"));
  ASSERT_EQ(top.references().size(), 2u);
  const Reference& sref = top.references()[0];
  EXPECT_EQ(sref.trans.disp(), (Point{1000, -500}));
  EXPECT_DOUBLE_EQ(sref.trans.angle(), 90.0);
  EXPECT_TRUE(sref.trans.mirror());
  const Reference& aref = top.references()[1];
  EXPECT_EQ(aref.cols, 3u);
  EXPECT_EQ(aref.rows, 2u);
  EXPECT_EQ(aref.col_step, (Point{200, 0}));
  EXPECT_EQ(aref.row_step, (Point{0, 300}));
}

TEST(Oasis, CrossFormatEqualityWithGdsii) {
  const Library lib = sample_library();
  std::stringstream gds(std::ios::in | std::ios::out | std::ios::binary);
  std::stringstream oas(std::ios::in | std::ios::out | std::ios::binary);
  write_gds(lib, gds);
  write_oas(lib, oas);
  const Library from_gds = read_gds(gds);
  const Library from_oas = read_oas(oas);

  ASSERT_EQ(from_gds.cell_count(), from_oas.cell_count());
  const CellId gtop = *from_gds.find_cell("TOP");
  const CellId otop = *from_oas.find_cell("TOP");
  for (const LayerKey layer : {LayerKey{1, 0}, LayerKey{1, 5}, LayerKey{2, 0}}) {
    EXPECT_EQ(from_gds.flatten(gtop, layer).trapezoids(),
              from_oas.flatten(otop, layer).trapezoids())
        << "layer " << layer.layer << "/" << layer.datatype;
  }
}

TEST(Oasis, WriterRejectsUnrepresentableNames) {
  Library lib("BAD");
  lib.add_cell("has space");
  std::ostringstream os(std::ios::binary);
  EXPECT_THROW(write_oas(lib, os), DataError);
}

// --------------------------------------------------------- hand-built files ---

void put_header(std::ostream& os) {
  os.write("%SEMI-OASIS\r\n", 13);
  os.put(1);  // START
  write_string(os, "1.0");
  write_real(os, 1000.0);  // 1000 grid steps per micron = 1 nm dbu
  write_uint(os, 0);       // offset-flag: table offsets here...
  for (int i = 0; i < 12; ++i) write_uint(os, 0);  // ...and all absent
}

void put_end(std::ostream& os) {
  os.put(2);  // END
  std::string pad(252, '\0');
  write_string(os, pad);
  write_uint(os, 0);  // validation scheme: none
}

void put_cell(std::ostream& os, const std::string& name) {
  os.put(14);  // CELL by name
  write_string(os, name);
}

// RECTANGLE with everything explicit: info = W H X Y D L.
void put_rectangle(std::ostream& os, std::uint64_t layer, std::uint64_t datatype,
                   std::uint64_t w, std::uint64_t h, std::int64_t x, std::int64_t y) {
  os.put(20);
  os.put(0x7B);  // 0100 0000 W | 0010 0000 H | X Y | D L
  write_uint(os, layer);
  write_uint(os, datatype);
  write_uint(os, w);
  write_uint(os, h);
  write_sint(os, x);
  write_sint(os, y);
}

TEST(OasisHandBuilt, MinimalFileParses) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  put_rectangle(ss, 1, 0, 100, 50, 10, 20);
  put_end(ss);

  OasisReadReport report;
  const Library lib = read_oas(ss, &report);
  EXPECT_EQ(report.rectangles, 1u);
  const Cell& a = lib.cell(*lib.find_cell("A"));
  ASSERT_EQ(a.shapes_on(LayerKey{1, 0}).size(), 1u);
  EXPECT_EQ(a.shapes_on(LayerKey{1, 0})[0], Polygon::rect(Box{10, 20, 110, 70}));
}

TEST(OasisHandBuilt, ModalVariablesCompressWithinACell) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  put_rectangle(ss, 1, 0, 100, 50, 0, 0);
  // Second rectangle reuses every modal: info = X Y only.
  ss.put(20);
  ss.put(0x18);
  write_sint(ss, 500);
  write_sint(ss, 500);
  put_end(ss);

  const Library lib = read_oas(ss);
  const Cell& a = lib.cell(*lib.find_cell("A"));
  ASSERT_EQ(a.shapes_on(LayerKey{1, 0}).size(), 2u);
  EXPECT_EQ(a.shapes_on(LayerKey{1, 0})[1], Polygon::rect(Box{500, 500, 600, 550}));
}

TEST(OasisHandBuilt, ModalStateResetsAcrossCells) {
  // Cell B's rectangle reuses modal layer/width/... — but CELL resets all
  // modal variables, so the reuse must be a hard error, not cell A's state.
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  put_rectangle(ss, 1, 0, 100, 50, 0, 0);
  put_cell(ss, "B");
  ss.put(20);
  ss.put(0x18);  // X Y only: layer/datatype/width/height all modal — unset
  write_sint(ss, 0);
  write_sint(ss, 0);
  put_end(ss);

  try {
    read_oas(ss);
    FAIL() << "modal reuse across cells must throw";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("modal variable"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos) << e.what();
  }
}

TEST(OasisHandBuilt, XyRelativeModeAccumulates) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  put_rectangle(ss, 1, 0, 10, 10, 100, 200);
  ss.put(16);  // XYRELATIVE
  ss.put(20);  // rectangle at modal + (5, 7)
  ss.put(0x18);
  write_sint(ss, 5);
  write_sint(ss, 7);
  put_end(ss);

  const Library lib = read_oas(ss);
  const Cell& a = lib.cell(*lib.find_cell("A"));
  ASSERT_EQ(a.shapes_on(LayerKey{1, 0}).size(), 2u);
  EXPECT_EQ(a.shapes_on(LayerKey{1, 0})[1], Polygon::rect(Box{105, 207, 115, 217}));
}

TEST(OasisHandBuilt, PathBecomesSegmentQuads) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  ss.put(22);    // PATH
  ss.put(0xFB);  // E W P X Y - D L
  write_uint(ss, 3);              // layer
  write_uint(ss, 1);              // datatype
  write_uint(ss, 5);              // halfwidth
  write_uint(ss, (1u << 2) | 1);  // extension scheme: both flush
  write_uint(ss, 0);              // point list type 0: horizontal first
  write_uint(ss, 1);              // one delta
  write_sint(ss, 20);             // 20 dbu east
  write_sint(ss, 0);              // x
  write_sint(ss, 0);              // y
  put_end(ss);

  OasisReadReport report;
  const Library lib = read_oas(ss, &report);
  EXPECT_EQ(report.paths, 1u);
  const Cell& a = lib.cell(*lib.find_cell("A"));
  ASSERT_EQ(a.shapes_on(LayerKey{3, 1}).size(), 1u);
  EXPECT_EQ(a.shapes_on(LayerKey{3, 1})[0], Polygon::rect(Box{0, -5, 20, 5}));
}

TEST(OasisHandBuilt, RejectsCblock) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  ss.put(34);  // CBLOCK
  put_end(ss);
  try {
    read_oas(ss);
    FAIL() << "CBLOCK must be rejected";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("CBLOCK"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------------- hostile inputs ---

TEST(Oasis, RejectsGarbage) {
  std::stringstream ss("this is not an OASIS file at all");
  EXPECT_THROW(read_oas(ss), DataError);
}

TEST(Oasis, RejectsTrailingBytesAfterEnd) {
  std::string bytes = dump_oas(sample_library());
  bytes.push_back('\0');
  std::stringstream ss(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_oas(ss), DataError);
}

TEST(Oasis, TruncationAtEveryByteOffsetThrowsDataError) {
  // The wire-protocol standard: any prefix of a valid file must produce a
  // clean DataError — never a crash, a hang, or a silently parsed library.
  const std::string bytes = dump_oas(sample_library());
  ASSERT_GT(bytes.size(), 256u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream ss(bytes.substr(0, len), std::ios::in | std::ios::binary);
    EXPECT_THROW(read_oas(ss), DataError) << "prefix length " << len;
  }
}

TEST(Oasis, PlacementOfUndefinedCellRejected) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  put_header(ss);
  put_cell(ss, "A");
  ss.put(17);    // PLACEMENT
  ss.put(0xB0);  // C(name present) - N X Y
  write_string(ss, "GHOST");
  write_sint(ss, 0);
  write_sint(ss, 0);
  put_end(ss);
  EXPECT_THROW(read_oas(ss), DataError);
}

}  // namespace
}  // namespace ebl
