// LayoutStream + bounded-window ingestion tests.
//
// The load-bearing claims of the streaming subsystem are verified here:
// streamed fracture is bitwise-identical to the in-RAM flatten path for
// both formats, and the flatten pass never holds more parsed cells than
// the configured window.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/job.h"
#include "fracture/fracture.h"
#include "layout/gdsii.h"
#include "layout/oasis.h"
#include "layout/stream.h"
#include "layout_fixtures.h"
#include "util/contracts.h"

namespace ebl {
namespace {

using test_fixtures::deep_library;
using test_fixtures::sample_library;

constexpr LayerKey kMetal{1, 0};

std::unique_ptr<LayoutStream> stream_of(const Library& lib, bool oasis) {
  auto ss = std::make_unique<std::stringstream>(std::ios::in | std::ios::out |
                                                std::ios::binary);
  if (oasis) {
    write_oas(lib, *ss);
    return open_oas_stream(std::move(ss));
  }
  write_gds(lib, *ss);
  return open_gds_stream(std::move(ss));
}

TEST(LayoutStream, IteratesCellsInFileOrder) {
  for (const bool oasis : {false, true}) {
    const auto stream = stream_of(sample_library(), oasis);
    std::vector<std::string> names;
    StreamCell cell;
    while (stream->next(cell)) names.push_back(cell.name);
    EXPECT_EQ(names, (std::vector<std::string>{"LEAF", "TOP"})) << "oasis " << oasis;
    EXPECT_EQ(stream->cells_seen(), 2u);
  }
}

TEST(LayoutStream, SkimCountsShapesWithoutStoringThem) {
  for (const bool oasis : {false, true}) {
    const auto stream = stream_of(sample_library(), oasis);
    StreamCell cell;
    ASSERT_TRUE(stream->next(cell, /*with_geometry=*/false));
    EXPECT_EQ(cell.name, "LEAF");
    EXPECT_TRUE(cell.shapes.empty()) << "oasis " << oasis;
    // LEAF carries 3 shapes; the holed polygon counts once in GDSII terms
    // (two boundaries) vs once as a polygon + hole contour in OASIS terms,
    // so only require a nonzero count that matches the geometry read.
    const std::size_t skimmed = cell.shape_count;
    EXPECT_GT(skimmed, 0u);
    const StreamCell full = stream->read_cell(0);
    EXPECT_EQ(full.shape_count, skimmed) << "oasis " << oasis;
    std::size_t stored = 0;
    for (const auto& [layer, polys] : full.shapes) stored += polys.size();
    EXPECT_EQ(stored, skimmed) << "oasis " << oasis;
  }
}

TEST(LayoutStream, RewindRestartsIteration) {
  for (const bool oasis : {false, true}) {
    const auto stream = stream_of(deep_library(), oasis);
    StreamCell cell;
    std::vector<std::string> first;
    while (stream->next(cell)) first.push_back(cell.name);
    stream->rewind();
    std::vector<std::string> second;
    while (stream->next(cell)) second.push_back(cell.name);
    EXPECT_EQ(first, second) << "oasis " << oasis;
  }
}

TEST(LayoutStream, ReadCellReparsesByIndex) {
  for (const bool oasis : {false, true}) {
    const auto stream = stream_of(deep_library(), oasis);
    StreamCell cell;
    std::vector<StreamCell> cells;
    while (stream->next(cell)) cells.push_back(cell);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const StreamCell again = stream->read_cell(i);
      EXPECT_EQ(again.name, cells[i].name);
      EXPECT_EQ(again.shape_count, cells[i].shape_count);
      EXPECT_EQ(again.refs.size(), cells[i].refs.size());
      EXPECT_EQ(again.shapes, cells[i].shapes) << "oasis " << oasis << " cell " << i;
    }
  }
}

TEST(LayoutStream, GdsStreamHasNoRefnumTable) {
  const auto stream = stream_of(sample_library(), false);
  EXPECT_THROW(stream->name_of(0), DataError);
}

TEST(LayoutStream, UnsupportedExtensionRejected) {
  EXPECT_THROW(open_layout_stream("pattern.txt"), DataError);
  EXPECT_THROW(open_layout_stream("no_extension"), DataError);
}

// ------------------------------------------------------- streamed fracture ---

TEST(StreamFracture, BitwiseIdenticalToInRamForEveryWindow) {
  const Library lib = deep_library();
  FractureOptions fopt;
  fopt.max_shot_size = 64;

  const FractureResult reference =
      fracture(lib.flatten(*lib.find_cell("TOP"), kMetal), fopt);
  ASSERT_GT(reference.shots.size(), 0u);

  for (const bool oasis : {false, true}) {
    for (const std::size_t window : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      const auto stream = stream_of(lib, oasis);
      IngestOptions iopt;
      iopt.layer = kMetal;
      iopt.window = window;
      const StreamFractureResult r = stream_fracture(*stream, iopt, fopt);
      EXPECT_EQ(r.fracture.shots, reference.shots)
          << "oasis " << oasis << " window " << window;
      EXPECT_LE(r.ingest.peak_resident, window)
          << "oasis " << oasis << " window " << window;
      EXPECT_EQ(r.ingest.cells, 5u);
    }
  }
}

TEST(StreamFracture, WindowOneForcesReloadsLargeWindowAvoidsThem) {
  const Library lib = deep_library();
  // deep_library interleaves LEAF_A and LEAF_B under two mid cells, so a
  // window of 1 must evict and re-parse leaves; a window covering every
  // cell never parses one twice.
  for (const bool oasis : {false, true}) {
    IngestOptions iopt;
    iopt.layer = kMetal;

    iopt.window = 1;
    auto stream = stream_of(lib, oasis);
    const StreamFractureResult tight = stream_fracture(*stream, iopt, {});
    EXPECT_EQ(tight.ingest.peak_resident, 1u);
    EXPECT_GT(tight.ingest.reloads, 0u) << "oasis " << oasis;

    iopt.window = 16;
    stream = stream_of(lib, oasis);
    const StreamFractureResult roomy = stream_fracture(*stream, iopt, {});
    EXPECT_EQ(roomy.ingest.reloads, 0u) << "oasis " << oasis;
    EXPECT_EQ(roomy.ingest.cell_parses, 2u);  // only the two geometry leaves
    EXPECT_EQ(tight.fracture.shots, roomy.fracture.shots);
  }
}

TEST(StreamFracture, AutoTopDetection) {
  const auto stream = stream_of(deep_library(), true);
  IngestOptions iopt;
  iopt.layer = kMetal;  // top left empty: TOP is the only unreferenced cell
  const StreamFractureResult r = stream_fracture(*stream, iopt, {});
  EXPECT_GT(r.ingest.polygons, 0u);
}

TEST(StreamFracture, ExplicitTopSelectsSubtree) {
  const Library lib = deep_library();
  const auto stream = stream_of(lib, true);
  IngestOptions iopt;
  iopt.layer = kMetal;
  iopt.top = "MID_A";
  const StreamFractureResult r = stream_fracture(*stream, iopt, {});
  const FractureResult reference = fracture(lib.flatten(*lib.find_cell("MID_A"), kMetal));
  EXPECT_EQ(r.fracture.shots, reference.shots);
}

TEST(StreamFracture, MissingTopRejected) {
  const auto stream = stream_of(deep_library(), true);
  IngestOptions iopt;
  iopt.layer = kMetal;
  iopt.top = "NO_SUCH_CELL";
  EXPECT_THROW(stream_fracture(*stream, iopt, {}), DataError);
}

TEST(StreamFracture, AmbiguousTopRejected) {
  Library lib("TWO_TOPS");
  lib.cell(lib.add_cell("A")).add_shape(kMetal, Box{0, 0, 10, 10});
  lib.cell(lib.add_cell("B")).add_shape(kMetal, Box{20, 0, 30, 10});
  const auto stream = stream_of(lib, true);
  IngestOptions iopt;
  iopt.layer = kMetal;
  EXPECT_THROW(stream_fracture(*stream, iopt, {}), DataError);
}

TEST(StreamFracture, CollectAccumulatesFlattenedTarget) {
  const Library lib = deep_library();
  const auto stream = stream_of(lib, true);
  IngestOptions iopt;
  iopt.layer = kMetal;
  PolygonSet collected;
  stream_fracture(*stream, iopt, {}, &collected);
  const PolygonSet reference = lib.flatten(*lib.find_cell("TOP"), kMetal);
  ASSERT_EQ(collected.size(), reference.size());
  EXPECT_EQ(collected.trapezoids(), reference.trapezoids());
}

// ------------------------------------------------------------- pipeline ---

TEST(PipelineIngest, FileInputMatchesInRamPipeline) {
  const Library lib = deep_library();
  const std::string path = testing::TempDir() + "layout_stream_test.oas";
  write_oas(lib, path);

  PrepOptions opt;
  opt.input_path = path;
  opt.ingest.layer = kMetal;
  opt.ingest.window = 2;
  opt.fracture.max_shot_size = 64;
  const PrepResult streamed = run_data_prep(opt);

  PrepOptions ram_opt = opt;
  ram_opt.input_path.clear();
  const PrepResult in_ram =
      run_data_prep(lib, *lib.find_cell("TOP"), kMetal, ram_opt);

  EXPECT_EQ(streamed.shots, in_ram.shots);
  ASSERT_TRUE(streamed.ingest.has_value());
  EXPECT_LE(streamed.ingest->peak_resident, 2u);
  EXPECT_FALSE(in_ram.ingest.has_value());

  // The front stage is reported as "ingest" instead of "fracture".
  bool saw_ingest = false;
  for (const StageTime& s : streamed.stage_times) {
    EXPECT_NE(s.name, "fracture");
    if (s.name == "ingest") saw_ingest = true;
  }
  EXPECT_TRUE(saw_ingest);
}

TEST(PipelineIngest, GdsInputWorksToo) {
  const Library lib = sample_library();
  const std::string path = testing::TempDir() + "layout_stream_test.gds";
  write_gds(lib, path);

  PrepOptions opt;
  opt.input_path = path;
  opt.ingest.layer = kMetal;
  const PrepResult streamed = run_data_prep(opt);

  PrepOptions ram_opt = opt;
  ram_opt.input_path.clear();
  const PrepResult in_ram =
      run_data_prep(lib, *lib.find_cell("TOP"), kMetal, ram_opt);
  EXPECT_EQ(streamed.shots, in_ram.shots);
}

TEST(PipelineIngest, MissingLayerRejected) {
  const Library lib = sample_library();
  const std::string path = testing::TempDir() + "layout_stream_empty.oas";
  write_oas(lib, path);
  PrepOptions opt;
  opt.input_path = path;
  opt.ingest.layer = LayerKey{99, 0};
  EXPECT_THROW(run_data_prep(opt), DataError);
}

}  // namespace
}  // namespace ebl
