// Tests for the two-pass bucket field partitioner: conservation properties,
// straddler counting against an independent brute force, 64-bit frame math
// at extreme coordinates, and thread-count independence.
#include <gtest/gtest.h>

#include <limits>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "machine/field.h"
#include "util/rng.h"

namespace ebl {
namespace {

Box shots_bbox(const ShotList& shots) {
  Box b;
  for (const Shot& s : shots) b += s.shape.bbox();
  return b;
}

// Brute-force straddler test by walking the boundary lines themselves: a
// shot straddles iff some field boundary (anchor + k * field_size) falls
// strictly inside its bbox span, i.e. in (lo, hi]. Same definition as the
// partitioner's index arithmetic, different mechanism.
bool crosses_boundary(Coord64 lo, Coord64 hi, Coord64 anchor, Coord field) {
  for (Coord64 b = anchor + field; b <= hi; b += field) {
    if (b > lo) return true;
  }
  return false;
}

std::size_t brute_force_straddlers(const ShotList& shots, Coord field) {
  const Box bb = shots_bbox(shots);
  std::size_t n = 0;
  for (const Shot& s : shots) {
    const Box sb = s.shape.bbox();
    if (crosses_boundary(sb.lo.x, sb.hi.x, bb.lo.x, field) ||
        crosses_boundary(sb.lo.y, sb.hi.y, bb.lo.y, field))
      ++n;
  }
  return n;
}

TEST(FieldPartition, ConservesAreaAndChargeAndCountsStraddlers) {
  Rng rng(77);
  const PolygonSet s =
      random_manhattan(rng, Box{0, 0, 300000, 300000}, 0.15, 2000, 25000);
  ShotList shots = fracture(s, {.max_shot_size = 20000}).shots;
  ASSERT_GT(shots.size(), 100u);
  // Non-uniform doses so the dose-weighted conservation is a real check.
  for (std::size_t i = 0; i < shots.size(); ++i)
    shots[i].dose = 0.5 + 0.013 * static_cast<double>(i % 101);
  const double area = shot_area(shots);
  const double charge = shot_charge_area(shots);

  for (const Coord field : {70000, 100000}) {
    const FieldPartition part = partition_fields_counted(shots, field);
    EXPECT_GT(part.fields.size(), 1u);
    double piece_area = 0.0;
    double piece_charge = 0.0;
    for (const FieldJob& f : part.fields) {
      for (const Shot& piece : f.shots) {
        EXPECT_TRUE(f.field.contains(piece.shape.bbox()))
            << piece.shape << " vs " << f.field;
        piece_area += piece.shape.area();
        piece_charge += piece.shape.area() * piece.dose;
      }
    }
    EXPECT_NEAR(piece_area, area, area * 1e-9) << "field " << field;
    EXPECT_NEAR(piece_charge, charge, charge * 1e-9) << "field " << field;
    EXPECT_EQ(part.straddlers, brute_force_straddlers(shots, field));
    EXPECT_EQ(part.straddlers, count_boundary_straddlers(shots, field));
  }
}

TEST(FieldPartition, ExtremeCoordinateExtentsDoNotWrap) {
  // Pattern corner to corner spans nearly the full 32-bit range — well past
  // 2^31 dbu — so field frames computed naively in Coord wrap around. The
  // regression: pieces must land inside correctly-oriented frames and the
  // area must survive.
  constexpr Coord kMax = std::numeric_limits<Coord>::max();
  constexpr Coord kMin = std::numeric_limits<Coord>::min();
  ShotList shots;
  shots.push_back({Trapezoid::rect(Box{kMin + 10, kMin + 10, kMin + 50010, kMin + 40010}), 1.0});
  shots.push_back({Trapezoid::rect(Box{kMax - 50010, kMax - 40010, kMax - 10, kMax - 10}), 2.0});
  // A shot whose span crosses a field boundary near the positive edge.
  shots.push_back({Trapezoid::rect(Box{kMax - 250010, kMax - 20010, kMax - 49000, kMax - 10}), 1.5});

  const Coord field = 100000;
  const double area = shot_area(shots);
  const double charge = shot_charge_area(shots);
  const FieldPartition part = partition_fields_counted(shots, field);
  EXPECT_GE(part.fields.size(), 3u);
  double piece_area = 0.0;
  double piece_charge = 0.0;
  for (const FieldJob& f : part.fields) {
    EXPECT_FALSE(f.field.empty());
    EXPECT_GT(f.field.width(), 0);
    EXPECT_GT(f.field.height(), 0);
    for (const Shot& piece : f.shots) {
      EXPECT_TRUE(f.field.contains(piece.shape.bbox()))
          << piece.shape << " vs " << f.field;
      piece_area += piece.shape.area();
      piece_charge += piece.shape.area() * piece.dose;
    }
  }
  EXPECT_NEAR(piece_area, area, area * 1e-9);
  EXPECT_NEAR(piece_charge, charge, charge * 1e-9);
  EXPECT_EQ(part.straddlers, brute_force_straddlers(shots, field));
}

TEST(FieldPartition, IdenticalForAnyThreadCount) {
  Rng rng(91);
  const PolygonSet s =
      random_manhattan(rng, Box{0, 0, 200000, 200000}, 0.2, 2000, 20000);
  const ShotList shots = fracture(s, {.max_shot_size = 15000}).shots;
  const FieldPartition one = partition_fields_counted(shots, 60000, 1);
  const FieldPartition four = partition_fields_counted(shots, 60000, 4);
  EXPECT_EQ(one.straddlers, four.straddlers);
  ASSERT_EQ(one.fields.size(), four.fields.size());
  for (std::size_t f = 0; f < one.fields.size(); ++f) {
    EXPECT_EQ(one.fields[f].field, four.fields[f].field);
    ASSERT_EQ(one.fields[f].shots.size(), four.fields[f].shots.size()) << "field " << f;
    for (std::size_t k = 0; k < one.fields[f].shots.size(); ++k)
      EXPECT_EQ(one.fields[f].shots[k], four.fields[f].shots[k]);
  }
}

TEST(FieldPartition, WrapperMatchesCombinedResult) {
  Rng rng(13);
  const PolygonSet s =
      random_manhattan(rng, Box{0, 0, 150000, 150000}, 0.1, 2000, 15000);
  const ShotList shots = fracture(s).shots;
  const FieldPartition part = partition_fields_counted(shots, 50000);
  const std::vector<FieldJob> fields = partition_fields(shots, 50000);
  ASSERT_EQ(fields.size(), part.fields.size());
  for (std::size_t f = 0; f < fields.size(); ++f) {
    EXPECT_EQ(fields[f].field, part.fields[f].field);
    EXPECT_EQ(fields[f].shots, part.fields[f].shots);
  }
}

}  // namespace
}  // namespace ebl
