// Tests for vector-scan shot ordering.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "machine/ordering.h"
#include "util/rng.h"

namespace ebl {
namespace {

ShotList scattered_shots(int n, std::uint64_t seed) {
  Rng rng(seed);
  ShotList shots;
  for (int i = 0; i < n; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(0, 200000));
    const Coord y = static_cast<Coord>(rng.uniform(0, 200000));
    shots.push_back({Trapezoid::rect(Box{x, y, static_cast<Coord>(x + 500),
                                         static_cast<Coord>(y + 500)}),
                     1.0});
  }
  return shots;
}

bool same_multiset(const ShotList& a, const ShotList& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const Shot& s) {
    return std::tuple{s.shape.y0, s.shape.y1, s.shape.xl0, s.shape.xr0, s.dose};
  };
  std::vector<decltype(key(a[0]))> ka, kb;
  for (const Shot& s : a) ka.push_back(key(s));
  for (const Shot& s : b) kb.push_back(key(s));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

TEST(Ordering, SerpentineReducesTravel) {
  ShotList shots = scattered_shots(2000, 3);
  const double before = total_travel(shots);
  ShotList ordered = shots;
  order_serpentine(ordered, 10000);
  EXPECT_LT(total_travel(ordered), before / 5.0);
  EXPECT_TRUE(same_multiset(shots, ordered));
}

TEST(Ordering, NearestNeighborBeatsRandom) {
  ShotList shots = scattered_shots(1500, 4);
  const double before = total_travel(shots);
  ShotList ordered = shots;
  order_nearest_neighbor(ordered);
  EXPECT_LT(total_travel(ordered), before / 8.0);
  EXPECT_TRUE(same_multiset(shots, ordered));
}

TEST(Ordering, NearestNeighborBeatsOrComparableToSerpentine) {
  ShotList shots = scattered_shots(1500, 5);
  ShotList serp = shots;
  order_serpentine(serp, 10000);
  ShotList nn = shots;
  order_nearest_neighbor(nn);
  // NN should be within 2x of serpentine on uniform data (usually better).
  EXPECT_LT(total_travel(nn), 2.0 * total_travel(serp));
}

TEST(Ordering, SettleModelMonotoneInTravel) {
  ShotList shots = scattered_shots(500, 6);
  ShotList ordered = shots;
  order_serpentine(ordered, 10000);
  const double t_bad = deflection_settle_time(shots, 1e-6, 1e-7);
  const double t_good = deflection_settle_time(ordered, 1e-6, 1e-7);
  EXPECT_LT(t_good, t_bad);
  // Fixed floor dominates when travel term vanishes.
  EXPECT_NEAR(deflection_settle_time(ordered, 0.0, 1e-7), 500 * 1e-7, 1e-12);
}

TEST(Ordering, SmallAndDegenerateInputs) {
  ShotList empty;
  order_nearest_neighbor(empty);
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(total_travel(empty), 0.0);

  ShotList one{{Trapezoid::rect(Box{0, 0, 10, 10}), 1.0}};
  order_nearest_neighbor(one);
  order_serpentine(one, 100);
  EXPECT_EQ(one.size(), 1u);

  // All shots at the same location.
  ShotList same;
  for (int i = 0; i < 10; ++i) same.push_back({Trapezoid::rect(Box{0, 0, 10, 10}), 1.0});
  order_nearest_neighbor(same);
  EXPECT_EQ(same.size(), 10u);
  EXPECT_DOUBLE_EQ(total_travel(same), 0.0);
}

TEST(Ordering, SerpentineAlternatesDirection) {
  // Two swaths of three shots each; second swath must run right-to-left.
  ShotList shots;
  for (const Coord x : {0, 1000, 2000}) {
    shots.push_back({Trapezoid::rect(Box{x, 0, Coord(x + 10), 10}), 1.0});
    shots.push_back({Trapezoid::rect(Box{x, 5000, Coord(x + 10), 5010}), 1.0});
  }
  order_serpentine(shots, 1000);
  ASSERT_EQ(shots.size(), 6u);
  EXPECT_LT(shots[0].shape.xl0, shots[2].shape.xl0);  // first swath ltr
  EXPECT_GT(shots[3].shape.xl0, shots[5].shape.xl0);  // second swath rtl
}

}  // namespace
}  // namespace ebl
