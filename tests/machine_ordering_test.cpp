// Tests for vector-scan shot ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "machine/ordering.h"
#include "util/rng.h"

namespace ebl {
namespace {

ShotList scattered_shots(int n, std::uint64_t seed) {
  Rng rng(seed);
  ShotList shots;
  for (int i = 0; i < n; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform(0, 200000));
    const Coord y = static_cast<Coord>(rng.uniform(0, 200000));
    shots.push_back({Trapezoid::rect(Box{x, y, static_cast<Coord>(x + 500),
                                         static_cast<Coord>(y + 500)}),
                     1.0});
  }
  return shots;
}

bool same_multiset(const ShotList& a, const ShotList& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const Shot& s) {
    return std::tuple{s.shape.y0, s.shape.y1, s.shape.xl0, s.shape.xr0, s.dose};
  };
  std::vector<decltype(key(a[0]))> ka, kb;
  for (const Shot& s : a) ka.push_back(key(s));
  for (const Shot& s : b) kb.push_back(key(s));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

TEST(Ordering, SerpentineReducesTravel) {
  ShotList shots = scattered_shots(2000, 3);
  const double before = total_travel(shots);
  ShotList ordered = shots;
  order_serpentine(ordered, 10000);
  EXPECT_LT(total_travel(ordered), before / 5.0);
  EXPECT_TRUE(same_multiset(shots, ordered));
}

TEST(Ordering, NearestNeighborBeatsRandom) {
  ShotList shots = scattered_shots(1500, 4);
  const double before = total_travel(shots);
  ShotList ordered = shots;
  order_nearest_neighbor(ordered);
  EXPECT_LT(total_travel(ordered), before / 8.0);
  EXPECT_TRUE(same_multiset(shots, ordered));
}

TEST(Ordering, NearestNeighborBeatsOrComparableToSerpentine) {
  ShotList shots = scattered_shots(1500, 5);
  ShotList serp = shots;
  order_serpentine(serp, 10000);
  ShotList nn = shots;
  order_nearest_neighbor(nn);
  // NN should be within 2x of serpentine on uniform data (usually better).
  EXPECT_LT(total_travel(nn), 2.0 * total_travel(serp));
}

TEST(Ordering, SettleModelMonotoneInTravel) {
  ShotList shots = scattered_shots(500, 6);
  ShotList ordered = shots;
  order_serpentine(ordered, 10000);
  const double t_bad = deflection_settle_time(shots, 1e-6, 1e-7);
  const double t_good = deflection_settle_time(ordered, 1e-6, 1e-7);
  EXPECT_LT(t_good, t_bad);
  // Fixed floor dominates when travel term vanishes.
  EXPECT_NEAR(deflection_settle_time(ordered, 0.0, 1e-7), 500 * 1e-7, 1e-12);
}

TEST(Ordering, SmallAndDegenerateInputs) {
  ShotList empty;
  order_nearest_neighbor(empty);
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(total_travel(empty), 0.0);

  ShotList one{{Trapezoid::rect(Box{0, 0, 10, 10}), 1.0}};
  order_nearest_neighbor(one);
  order_serpentine(one, 100);
  EXPECT_EQ(one.size(), 1u);

  // All shots at the same location.
  ShotList same;
  for (int i = 0; i < 10; ++i) same.push_back({Trapezoid::rect(Box{0, 0, 10, 10}), 1.0});
  order_nearest_neighbor(same);
  EXPECT_EQ(same.size(), 10u);
  EXPECT_DOUBLE_EQ(total_travel(same), 0.0);
}

TEST(Ordering, OrderedNeverWorseThanShuffled) {
  // Monotonicity: both orderings must not lose to a deterministic shuffle
  // of the same multiset.
  ShotList shots = scattered_shots(800, 21);
  ShotList shuffled = shots;
  Rng rng(22);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<std::size_t>(rng.uniform(0, std::int64_t(i) - 1))]);
  }
  const double shuffled_travel = total_travel(shuffled);

  ShotList serp = shots;
  order_serpentine(serp, 10000);
  EXPECT_LE(total_travel(serp), shuffled_travel);

  ShotList nn = shots;
  order_nearest_neighbor(nn);
  EXPECT_LE(total_travel(nn), shuffled_travel);
}

TEST(Ordering, SerpentineSwathInvariants) {
  const Coord swath = 7000;
  ShotList shots = scattered_shots(1200, 23);
  order_serpentine(shots, swath);

  const auto swath_of = [&](const Shot& s) {
    const Trapezoid& t = s.shape;
    const double cy = 0.5 * (double(t.y0) + t.y1);
    return static_cast<Coord64>(std::floor(cy / swath));
  };
  const auto cx_of = [](const Shot& s) {
    const Trapezoid& t = s.shape;
    return 0.25 * (double(t.xl0) + t.xr0 + t.xl1 + t.xr1);
  };
  for (std::size_t i = 1; i < shots.size(); ++i) {
    const Coord64 prev = swath_of(shots[i - 1]);
    const Coord64 cur = swath_of(shots[i]);
    ASSERT_LE(prev, cur) << "swath indices must be non-decreasing at " << i;
    if (prev == cur) {
      // Even swaths sweep left-to-right, odd ones right-to-left.
      if (cur % 2 == 0) {
        ASSERT_LE(cx_of(shots[i - 1]), cx_of(shots[i])) << "swath " << cur;
      } else {
        ASSERT_GE(cx_of(shots[i - 1]), cx_of(shots[i])) << "swath " << cur;
      }
    }
  }
}

TEST(Ordering, NearestNeighborMatchesBruteForceOnSmallLists) {
  // The bucketed ring search must implement exactly the greedy tour a
  // brute-force scan produces (random coordinates: no distance ties).
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const ShotList shots = scattered_shots(60, seed);
    ShotList bucketed = shots;
    order_nearest_neighbor(bucketed);

    const auto cx = [](const Shot& s) {
      return 0.25 * (double(s.shape.xl0) + s.shape.xr0 + s.shape.xl1 + s.shape.xr1);
    };
    const auto cy = [](const Shot& s) {
      return 0.5 * (double(s.shape.y0) + s.shape.y1);
    };
    ShotList brute;
    std::vector<char> used(shots.size(), 0);
    std::size_t cur = 0;
    used[0] = 1;
    brute.push_back(shots[0]);
    for (std::size_t step = 1; step < shots.size(); ++step) {
      std::size_t best = shots.size();
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < shots.size(); ++i) {
        if (used[i]) continue;
        const double dx = cx(shots[i]) - cx(shots[cur]);
        const double dy = cy(shots[i]) - cy(shots[cur]);
        const double d = dx * dx + dy * dy;
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      used[best] = 1;
      brute.push_back(shots[best]);
      cur = best;
    }

    ASSERT_EQ(bucketed.size(), brute.size());
    for (std::size_t i = 0; i < brute.size(); ++i) {
      EXPECT_EQ(bucketed[i].shape.xl0, brute[i].shape.xl0) << "seed " << seed;
      EXPECT_EQ(bucketed[i].shape.y0, brute[i].shape.y0) << "seed " << seed;
    }
  }
}

TEST(Ordering, DeterministicAcrossThreadEnv) {
  // Ordering is stage-serial by design; pin that EBL_THREADS cannot change
  // the tour (the scenario matrix depends on it).
  const ShotList shots = scattered_shots(1000, 41);
  const char* saved = std::getenv("EBL_THREADS");
  const std::string saved_value = saved ? saved : "";

  setenv("EBL_THREADS", "1", 1);
  ShotList serp1 = shots;
  order_serpentine(serp1, 9000);
  ShotList nn1 = shots;
  order_nearest_neighbor(nn1);

  setenv("EBL_THREADS", "7", 1);
  ShotList serp7 = shots;
  order_serpentine(serp7, 9000);
  ShotList nn7 = shots;
  order_nearest_neighbor(nn7);

  if (saved) {
    setenv("EBL_THREADS", saved_value.c_str(), 1);
  } else {
    unsetenv("EBL_THREADS");
  }

  const auto same_order = [](const ShotList& a, const ShotList& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].shape.xl0 != b[i].shape.xl0 || a[i].shape.y0 != b[i].shape.y0)
        return false;
    }
    return true;
  };
  EXPECT_TRUE(same_order(serp1, serp7));
  EXPECT_TRUE(same_order(nn1, nn7));
}

TEST(Ordering, SerpentineAlternatesDirection) {
  // Two swaths of three shots each; second swath must run right-to-left.
  ShotList shots;
  for (const Coord x : {0, 1000, 2000}) {
    shots.push_back({Trapezoid::rect(Box{x, 0, Coord(x + 10), 10}), 1.0});
    shots.push_back({Trapezoid::rect(Box{x, 5000, Coord(x + 10), 5010}), 1.0});
  }
  order_serpentine(shots, 1000);
  ASSERT_EQ(shots.size(), 6u);
  EXPECT_LT(shots[0].shape.xl0, shots[2].shape.xl0);  // first swath ltr
  EXPECT_GT(shots[3].shape.xl0, shots[5].shape.xl0);  // second swath rtl
}

}  // namespace
}  // namespace ebl
