// Tests for writer timing models, field partitioning and distortion.
#include <gtest/gtest.h>

#include <cmath>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "machine/distortion.h"
#include "machine/field.h"
#include "machine/writer.h"
#include "util/rng.h"

namespace ebl {
namespace {

ShotList dense_shots(double density, Coord frame_size = 1000000) {
  Rng rng(42);
  const PolygonSet s = random_manhattan(rng, Box{0, 0, frame_size, frame_size},
                                        density, 2000, 20000);
  return fracture(s, {.max_shot_size = 20000}).shots;
}

TEST(WriteJob, AggregatesShotList) {
  ShotList shots{{Trapezoid::rect(Box{0, 0, 1000, 1000}), 1.0},
                 {Trapezoid::rect(Box{2000, 0, 3000, 1000}), 2.0}};
  const WriteJob job = make_write_job(shots);
  EXPECT_EQ(job.figures, 2u);
  EXPECT_DOUBLE_EQ(job.exposed_area, 2e6);
  EXPECT_DOUBLE_EQ(job.charge_area, 3e6);
  EXPECT_EQ(job.extent, Box(0, 0, 3000, 1000));
}

TEST(RasterWriter, TimeIsDensityIndependent) {
  const RasterScanWriter w;
  const ShotList lo = dense_shots(0.05);
  const ShotList hi = dense_shots(0.50);
  WriteJob jlo = make_write_job(lo, Box{0, 0, 1000000, 1000000});
  WriteJob jhi = make_write_job(hi, Box{0, 0, 1000000, 1000000});
  EXPECT_NEAR(w.write_time(jlo).total(), w.write_time(jhi).total(), 1e-9);
}

TEST(RasterWriter, DoseLimitsClock) {
  RasterScanParams p;
  p.max_pixel_rate_hz = 1e12;  // effectively unlimited clock
  p.beam_current_na = 100.0;
  p.base_dose_uc_cm2 = 1.0;
  p.pixel_nm = 100.0;
  const RasterScanWriter w(p);
  // t_pixel = D*a/I = 1e-6 * 1e-10 cm² / 1e-7 A = 1e-9 s -> 1 GHz.
  EXPECT_NEAR(w.pixel_rate_hz(), 1e9, 1e6);
}

TEST(VectorWriter, TimeScalesWithDensity) {
  const VectorScanWriter w;
  const WriteJob jlo = make_write_job(dense_shots(0.05), Box{0, 0, 1000000, 1000000});
  const WriteJob jhi = make_write_job(dense_shots(0.50), Box{0, 0, 1000000, 1000000});
  const double tlo = w.write_time(jlo).exposure_s;
  const double thi = w.write_time(jhi).exposure_s;
  EXPECT_GT(thi, 5.0 * tlo);
}

TEST(VectorWriter, PecDosesCostBeamTime) {
  ShotList shots = dense_shots(0.2);
  const WriteJob base = make_write_job(shots);
  for (Shot& s : shots) s.dose = 2.0;
  const WriteJob doubled = make_write_job(shots);
  const VectorScanWriter w;
  EXPECT_NEAR(w.write_time(doubled).exposure_s, 2.0 * w.write_time(base).exposure_s,
              1e-9);
}

TEST(VsbWriter, TimeScalesWithShotCountNotArea) {
  const VsbWriter w;
  // Same area, different figure counts.
  ShotList coarse{{Trapezoid::rect(Box{0, 0, 100000, 100000}), 1.0}};
  ShotList fine;
  for (int i = 0; i < 100; ++i) {
    fine.push_back({Trapezoid::rect(Box{Coord(i * 1000), 0, Coord((i + 1) * 1000), 100000}),
                    1.0});
  }
  // Stage time is extent-driven and identical; beam + overhead time scales
  // with the shot count.
  const WriteTime t1 = w.write_time(make_write_job(coarse));
  const WriteTime t2 = w.write_time(make_write_job(fine));
  EXPECT_GT(t2.exposure_s + t2.overhead_s, 10.0 * (t1.exposure_s + t1.overhead_s));
  EXPECT_DOUBLE_EQ(t1.stage_s, t2.stage_s);
}

TEST(VsbWriter, MinFlashEnforced) {
  VsbParams p;
  p.min_flash_s = 1e-6;
  p.base_dose_uc_cm2 = 0.001;  // would be faster than min flash
  const VsbWriter w(p);
  EXPECT_DOUBLE_EQ(w.flash_time_s(1.0), 1e-6);
}

TEST(Fields, PartitionCoversAllShotsOnce) {
  const ShotList shots = dense_shots(0.2, 300000);
  const double total = shot_area(shots);
  const auto fields = partition_fields(shots, 100000);
  EXPECT_GT(fields.size(), 1u);
  double sum = 0.0;
  for (const FieldJob& f : fields) {
    for (const Shot& s : f.shots) {
      // Every piece inside its field frame.
      EXPECT_TRUE(f.field.contains(s.shape.bbox())) << s.shape << " vs " << f.field;
      sum += s.shape.area();
    }
  }
  EXPECT_NEAR(sum, total, total * 1e-6);
}

TEST(Fields, StraddlerCountMatchesGridCrossing) {
  ShotList shots;
  shots.push_back({Trapezoid::rect(Box{10, 10, 50, 50}), 1.0});         // inside
  shots.push_back({Trapezoid::rect(Box{90, 10, 150, 50}), 1.0});        // crosses x
  shots.push_back({Trapezoid::rect(Box{10, 90, 50, 150}), 1.0});        // crosses y
  EXPECT_EQ(count_boundary_straddlers(shots, 100), 2u);
  const auto fields = partition_fields(shots, 100);
  std::size_t pieces = 0;
  for (const auto& f : fields) pieces += f.shots.size();
  EXPECT_EQ(pieces, 5u);  // two straddlers split into two pieces each
}

TEST(Distortion, PureScaleStitchError) {
  DeflectionDistortion d;
  d.scale_x = 10.0;  // 10 dbu at the field edge
  // Right edge displaced +10, left edge -10 -> butting error 20.
  EXPECT_NEAR(max_stitching_error(d), 20.0, 1e-9);
}

TEST(Distortion, PincushionGrowsTowardCorners) {
  DeflectionDistortion d;
  d.pincushion = 8.0;
  const auto [cx, cy] = d.displacement(1.0, 1.0);
  const auto [ex, ey] = d.displacement(1.0, 0.0);
  EXPECT_GT(std::hypot(cx, cy), std::hypot(ex, ey));
}

TEST(Distortion, CalibrationRemovesAffinePart) {
  DeflectionDistortion d;
  d.scale_x = 12.0;
  d.scale_y = -7.0;
  d.rotation = 5.0;
  d.offset_x = 3.0;
  d.offset_y = -2.0;
  const DeflectionDistortion r = calibrate_affine(d, 5, 0.0);
  EXPECT_NEAR(r.scale_x, 0.0, 1e-9);
  EXPECT_NEAR(r.scale_y, 0.0, 1e-9);
  EXPECT_NEAR(r.rotation, 0.0, 1e-9);
  EXPECT_NEAR(r.offset_x, 0.0, 1e-9);
  EXPECT_NEAR(r.offset_y, 0.0, 1e-9);
  EXPECT_NEAR(max_stitching_error(r), 0.0, 1e-9);
}

TEST(Distortion, CalibrationLeavesPincushionResidual) {
  DeflectionDistortion d;
  d.scale_x = 12.0;
  d.pincushion = 6.0;
  const double before = max_stitching_error(d);
  const DeflectionDistortion r = calibrate_affine(d, 7, 0.0);
  const double after = max_stitching_error(r);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.1);  // third-order residual cannot be nulled affinely
}

TEST(Distortion, ApplyIdentityIsBitwiseNoOp) {
  const Box field{0, 0, 10000, 10000};
  ShotList shots;
  for (Coord x = 0; x < 10000; x += 2000) {
    for (Coord y = 0; y < 10000; y += 2000) {
      shots.push_back({Trapezoid::rect(Box{x, y, x + 500, y + 500}), 1.5});
    }
  }
  const ShotList before = shots;
  apply_distortion(shots, field, DeflectionDistortion{}, 1.0);
  apply_distortion(shots, field, DeflectionDistortion{}, -1.0);
  ASSERT_EQ(shots.size(), before.size());
  for (std::size_t i = 0; i < shots.size(); ++i) {
    EXPECT_EQ(shots[i].shape.xl0, before[i].shape.xl0);
    EXPECT_EQ(shots[i].shape.xr0, before[i].shape.xr0);
    EXPECT_EQ(shots[i].shape.xl1, before[i].shape.xl1);
    EXPECT_EQ(shots[i].shape.xr1, before[i].shape.xr1);
    EXPECT_EQ(shots[i].shape.y0, before[i].shape.y0);
    EXPECT_EQ(shots[i].shape.y1, before[i].shape.y1);
    EXPECT_EQ(shots[i].dose, before[i].dose);
  }
}

TEST(Distortion, CorrectionDistortionRoundTripWithinTolerance) {
  // Pre-compensating with -d and then suffering +d must land every figure
  // within grid rounding (two half-dbu roundings) plus the second-order
  // term of evaluating d at the corrected rather than the nominal position.
  const Box field{0, 0, 20000, 20000};
  DeflectionDistortion d;
  d.scale_x = 40.0;
  d.scale_y = -25.0;
  d.rotation = 18.0;
  d.pincushion = 12.0;
  d.offset_x = 5.0;
  d.offset_y = -3.0;

  ShotList shots;
  for (int ix = 0; ix <= 10; ++ix) {
    for (int iy = 0; iy <= 10; ++iy) {
      const Coord x = static_cast<Coord>(ix * 1950);
      const Coord y = static_cast<Coord>(iy * 1950);
      shots.push_back({Trapezoid::rect(Box{x, y, x + 100, y + 100}), 1.0});
    }
  }
  const ShotList nominal = shots;

  apply_distortion(shots, field, d, -1.0);  // data-prep correction
  apply_distortion(shots, field, d, 1.0);   // the column's distortion

  // max |displacement| ~ 90 dbu over a 10000 dbu half-field -> the
  // second-order error is below 1 dbu; 2 dbu covers it plus rounding.
  for (std::size_t i = 0; i < shots.size(); ++i) {
    EXPECT_LE(std::abs(shots[i].shape.xl0 - nominal[i].shape.xl0), 2) << i;
    EXPECT_LE(std::abs(shots[i].shape.y0 - nominal[i].shape.y0), 2) << i;
    EXPECT_EQ(shots[i].shape.xr0 - shots[i].shape.xl0,
              nominal[i].shape.xr0 - nominal[i].shape.xl0)
        << "distortion must translate figures, never resize them";
  }
}

TEST(Distortion, ApplySignConventionMatchesModel) {
  // A +x gain error displaces a figure at the +x field edge by +scale_x.
  const Box field{0, 0, 10000, 10000};
  DeflectionDistortion d;
  d.scale_x = 50.0;
  ShotList shots{{Trapezoid::rect(Box{9950, 4950, 10050, 5050}), 1.0}};
  apply_distortion(shots, field, d, 1.0);
  // Centroid at (10000, 5000) = (u, v) = (1, 0) -> dx = +50, dy = 0.
  EXPECT_EQ(shots[0].shape.xl0, 10000);
  EXPECT_EQ(shots[0].shape.y0, 4950);
}

TEST(Distortion, NoisyCalibrationStillHelps) {
  DeflectionDistortion d;
  d.scale_x = 20.0;
  d.rotation = 10.0;
  const double before = max_stitching_error(d);
  const DeflectionDistortion r = calibrate_affine(d, 7, 0.5, 7);
  EXPECT_LT(max_stitching_error(r), before * 0.2);
}

}  // namespace
}  // namespace ebl
