// Backend-agreement and edge-case tests for the long-range blur: the
// separable sliding-window path and the FFT spectral path compute the same
// truncated normalized kernel, so they must agree far below the 1e-6 the
// PEC accuracy budget asks for — on bare rasters, through the evaluator,
// through the simulator, and across backend switches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "pec/correction.h"
#include "pec/exposure.h"
#include "sim/exposure_sim.h"
#include "util/rng.h"

namespace ebl {
namespace {

ShotList pad_and_island() {
  PolygonSet s;
  s.insert(Box{0, 0, 20000, 20000});
  s.insert(Box{40000, 9500, 41000, 10500});
  return fracture(s, {.max_shot_size = 2000}).shots;
}

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

Raster random_raster(Box frame, Coord pixel, std::uint64_t seed) {
  Raster r(frame, pixel);
  Rng rng(seed);
  for (double& v : r.data()) v = rng.uniform_real(0.0, 2.0);
  return r;
}

TEST(FftGaussianBlur, MatchesDirectOnRandomRasters) {
  struct Case {
    Coord w, h, pixel;
    double sigma;
  };
  for (const Case c : {Case{20000, 12000, 100, 900.0},   // mid kernel
                       Case{30000, 30000, 150, 3000.0},  // wide kernel
                       Case{5000, 900, 50, 400.0},       // skinny raster
                       Case{7000, 7000, 100, 151.0}}) {  // non-integral sigma_px
    Raster direct = random_raster(Box{0, 0, c.w, c.h}, c.pixel, 99);
    Raster fft = direct;
    gaussian_blur(direct, c.sigma);
    fft_gaussian_blur(fft, c.sigma);
    EXPECT_LT(max_abs_diff(direct.data(), fft.data()), 1e-6)
        << c.w << "x" << c.h << " pixel " << c.pixel << " sigma " << c.sigma;
  }
}

TEST(FftGaussianBlur, OnePixelRaster) {
  // A 1x1 raster keeps only the kernel's center tap (all others fall off
  // the edge and are skipped, not renormalized) — on both backends.
  Raster direct(Box{0, 0, 50, 50}, 100);
  ASSERT_EQ(direct.width(), 1);
  ASSERT_EQ(direct.height(), 1);
  direct.at(0, 0) = 2.0;
  Raster fft = direct;
  const std::vector<double> taps = gaussian_kernel_taps(300.0 / 100.0);
  gaussian_blur(direct, 300.0);
  fft_gaussian_blur(fft, 300.0);
  EXPECT_NEAR(direct.at(0, 0), 2.0 * taps[0] * taps[0], 1e-12);
  EXPECT_NEAR(fft.at(0, 0), direct.at(0, 0), 1e-12);
}

TEST(FftGaussianBlur, SigmaSmallerThanOnePixel) {
  // sigma << pixel: the kernel collapses toward identity (radius clamps to
  // 1) and both backends must still agree exactly.
  Raster direct = random_raster(Box{0, 0, 3000, 3000}, 100, 7);
  Raster fft = direct;
  const Raster before = direct;
  gaussian_blur(direct, 20.0);  // sigma_px = 0.2
  fft_gaussian_blur(fft, 20.0);
  EXPECT_LT(max_abs_diff(direct.data(), fft.data()), 1e-9);
  // Nearly the identity: center weight dominates.
  const std::vector<double> taps = gaussian_kernel_taps(0.2);
  EXPECT_GT(taps[0], 0.99);
  EXPECT_NEAR(direct.at(15, 15), before.at(15, 15), 0.02);
}

TEST(FftGaussianBlur, SigmaLargerThanRaster) {
  // Kernel support far beyond the raster: the blur drains mass off the
  // edges identically on both backends (zero boundaries, no wraparound).
  Raster direct = random_raster(Box{0, 0, 1000, 800}, 100, 13);
  Raster fft = direct;
  gaussian_blur(direct, 5000.0);  // sigma_px = 50 >> 10 pixels
  fft_gaussian_blur(fft, 5000.0);
  EXPECT_LT(max_abs_diff(direct.data(), fft.data()), 1e-9);
  // Strong leakage: the surviving mass is well below the input mass but
  // still positive.
  EXPECT_GT(direct.sum(), 0.0);
  EXPECT_LT(direct.max_value(), 0.5);
}

TEST(FftGaussianBlur, UniformInteriorStaysOne) {
  Raster r(Box{0, 0, 10000, 10000}, 100);
  for (double& v : r.data()) v = 1.0;
  fft_gaussian_blur(r, 500.0);
  EXPECT_NEAR(r.at(50, 50), 1.0, 1e-9);
}

TEST(FftGaussianBlur, SpreadsPointSymmetrically) {
  Raster r(Box{0, 0, 20000, 20000}, 100);
  r.at(100, 100) = 1.0;
  fft_gaussian_blur(r, 800.0);
  EXPECT_NEAR(r.at(92, 100), r.at(108, 100), 1e-12);
  EXPECT_NEAR(r.at(100, 92), r.at(100, 108), 1e-12);
  EXPECT_GT(r.at(100, 100), r.at(104, 100));
  EXPECT_NEAR(r.sum(), 1.0, 1e-6);
}

TEST(BlurBackendDispatch, AutoPrefersDirectForNarrowAndFftForWide) {
  // The flop model must keep narrow kernels (the sigma/4-pixel default) on
  // the separable path and hand very wide kernels to the FFT.
  EXPECT_FALSE(fft_blur_wins(1000, 1000, {16}));
  EXPECT_TRUE(fft_blur_wins(1000, 1000, {480}));
  // Several wide kernels amortize the shared forward transform.
  EXPECT_TRUE(fft_blur_wins(1000, 1000, {200, 200, 200}));
}

TEST(ExposureEvaluator, FftBackendMatchesDirectDoubleGaussian) {
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  ExposureOptions direct_opt;
  direct_opt.blur_backend = BlurBackend::kDirect;
  ExposureOptions fft_opt;
  fft_opt.blur_backend = BlurBackend::kFft;
  ExposureEvaluator direct(shots, psf, direct_opt);
  ExposureEvaluator fft(shots, psf, fft_opt);
  EXPECT_EQ(direct.blur_backend(), BlurBackend::kDirect);
  EXPECT_EQ(fft.blur_backend(), BlurBackend::kFft);
  EXPECT_LT(max_abs_diff(direct.exposures_at_centroids(),
                         fft.exposures_at_centroids()),
            1e-6);
}

TEST(ExposureEvaluator, FftBackendMatchesDirectTripleGaussian) {
  // Two long-range terms sharing one base map: the FFT path computes both
  // blurred maps from a single forward transform and must still match the
  // per-term separable blur to 1e-6.
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::triple_gaussian(50.0, 3000.0, 600.0, 0.7, 0.3);
  ExposureOptions direct_opt;
  direct_opt.blur_backend = BlurBackend::kDirect;
  ExposureOptions fft_opt;
  fft_opt.blur_backend = BlurBackend::kFft;
  ExposureEvaluator direct(shots, psf, direct_opt);
  ExposureEvaluator fft(shots, psf, fft_opt);
  std::vector<double> doses(shots.size());
  for (std::size_t i = 0; i < doses.size(); ++i)
    doses[i] = 0.8 + 0.01 * static_cast<double>(i % 37);
  direct.set_doses(doses);
  fft.set_doses(doses);
  EXPECT_LT(max_abs_diff(direct.exposures_at_centroids(),
                         fft.exposures_at_centroids()),
            1e-6);
}

TEST(ExposureEvaluator, SwitchingBackendReproducesFreshEvaluator) {
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  ExposureOptions direct_opt;
  direct_opt.blur_backend = BlurBackend::kDirect;
  ExposureEvaluator eval(shots, psf, direct_opt);
  std::vector<double> doses(shots.size(), 1.3);
  eval.set_doses(doses);

  eval.set_blur_backend(BlurBackend::kFft);
  EXPECT_EQ(eval.blur_backend(), BlurBackend::kFft);

  ExposureOptions fft_opt;
  fft_opt.blur_backend = BlurBackend::kFft;
  ExposureEvaluator fresh(shots, psf, fft_opt);
  fresh.set_doses(doses);
  const auto a = eval.exposures_at_centroids();
  const auto b = fresh.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "shot " << i;
}

TEST(ExposureEvaluator, RepeatedBackendTogglesWithDoseChangesStayExact) {
  // The FFT plan caches every term's kernel spectrum for the evaluator's
  // lifetime; a stale or mis-invalidated spectrum would surface as drift
  // against a freshly built evaluator. Toggle backends repeatedly with dose
  // changes in between and demand bitwise agreement each round.
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  ExposureOptions opt;
  opt.blur_backend = BlurBackend::kFft;
  opt.delta_threshold = 0.0;  // full refreshes: bitwise comparisons hold
  ExposureEvaluator eval(shots, psf, opt);

  std::vector<double> doses(shots.size(), 1.0);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < doses.size(); ++i)
      doses[i] = 1.0 + 0.002 * static_cast<double>((i + round) % 53);
    eval.set_doses(doses);
    eval.set_blur_backend(BlurBackend::kDirect);
    eval.set_blur_backend(BlurBackend::kFft);

    ShotList fresh_shots = shots;
    for (std::size_t i = 0; i < doses.size(); ++i) fresh_shots[i].dose = doses[i];
    ExposureEvaluator fresh(fresh_shots, psf, opt);
    const auto a = eval.exposures_at_centroids();
    const auto b = fresh.exposures_at_centroids();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i], b[i]) << "round " << round << " shot " << i;
  }
}

TEST(ExposureEvaluator, FftBackendBitIdenticalAcrossThreadCounts) {
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  std::vector<std::vector<double>> results;
  for (const int threads : {1, 5}) {
    ExposureOptions opt;
    opt.threads = threads;
    opt.blur_backend = BlurBackend::kFft;
    ExposureEvaluator eval(shots, psf, opt);
    std::vector<double> doses(shots.size());
    for (std::size_t i = 0; i < doses.size(); ++i)
      doses[i] = 1.0 + 0.001 * static_cast<double>(i % 89);
    eval.set_doses(doses);
    results.push_back(eval.exposures_at_centroids());
  }
  for (std::size_t i = 0; i < results[0].size(); ++i)
    EXPECT_EQ(results[0][i], results[1][i]) << "shot " << i;
}

TEST(ExposureEvaluator, BlurPerfCountsRefreshes) {
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  ExposureEvaluator eval(shots, psf);
  const int before = eval.blur_perf().refreshes;
  EXPECT_GE(before, 1);  // construction accumulates once
  eval.set_doses(std::vector<double>(shots.size(), 1.1));
  EXPECT_EQ(eval.blur_perf().refreshes, before + 1);
  EXPECT_GE(eval.blur_perf().blur_ms, 0.0);
  EXPECT_GE(eval.blur_perf().accumulate_ms, 0.0);
}

TEST(Pec, IterativeCorrectionAgreesAcrossBackends) {
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  PecOptions direct_opt;
  direct_opt.max_iterations = 4;
  direct_opt.exposure.blur_backend = BlurBackend::kDirect;
  PecOptions fft_opt = direct_opt;
  fft_opt.exposure.blur_backend = BlurBackend::kFft;
  const PecResult a = correct_proximity(shots, psf, direct_opt);
  const PecResult b = correct_proximity(shots, psf, fft_opt);
  ASSERT_EQ(a.shots.size(), b.shots.size());
  for (std::size_t i = 0; i < a.shots.size(); ++i)
    EXPECT_NEAR(a.shots[i].dose, b.shots[i].dose, 1e-6) << "shot " << i;
  EXPECT_NEAR(a.final_max_error, b.final_max_error, 1e-6);
}

TEST(Pec, DensityPecAgreesAcrossBackends) {
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  PecOptions direct_opt;
  direct_opt.exposure.blur_backend = BlurBackend::kDirect;
  PecOptions fft_opt;
  fft_opt.exposure.blur_backend = BlurBackend::kFft;
  const PecResult a = density_pec(shots, psf, direct_opt);
  const PecResult b = density_pec(shots, psf, fft_opt);
  for (std::size_t i = 0; i < a.shots.size(); ++i)
    EXPECT_NEAR(a.shots[i].dose, b.shots[i].dose, 1e-6) << "shot " << i;
}

TEST(Sim, SimulateExposureAgreesAcrossBackends) {
  // At simulation resolution (pixel = alpha/2) the backscatter kernel spans
  // hundreds of pixels, so kAuto sends it to the FFT — the result must
  // stay within rounding of the all-direct map.
  PolygonSet pattern;
  pattern.insert(Box{0, 0, 8000, 6000});
  pattern.insert(Box{12000, 0, 13000, 6000});
  const ShotList shots = fracture(pattern, {.max_shot_size = 2000}).shots;
  const Psf psf = Psf::double_gaussian(50.0, 3000.0, 0.7);
  SimOptions direct_opt;
  direct_opt.pixel = 50;
  direct_opt.blur_backend = BlurBackend::kDirect;
  SimOptions auto_opt = direct_opt;
  auto_opt.blur_backend = BlurBackend::kAuto;
  SimOptions fft_opt = direct_opt;
  fft_opt.blur_backend = BlurBackend::kFft;
  const Raster d = simulate_exposure(shots, psf, direct_opt);
  const Raster a = simulate_exposure(shots, psf, auto_opt);
  const Raster f = simulate_exposure(shots, psf, fft_opt);
  EXPECT_LT(max_abs_diff(d.data(), a.data()), 1e-6);
  EXPECT_LT(max_abs_diff(d.data(), f.data()), 1e-6);
}

}  // namespace
}  // namespace ebl
