// Tests for exposure evaluation and proximity-effect correction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "pec/correction.h"
#include "pec/exposure.h"
#include "util/contracts.h"

namespace ebl {
namespace {

// A dense pad (backscatter-rich) next to an isolated small square: the
// canonical proximity-effect test case.
ShotList pad_and_island() {
  PolygonSet s;
  s.insert(Box{0, 0, 20000, 20000});          // 20 µm pad
  s.insert(Box{40000, 9500, 41000, 10500});   // isolated 1 µm square, 20 µm away
  return fracture(s, {.max_shot_size = 2000}).shots;
}

Psf test_psf() { return Psf::double_gaussian(50.0, 3000.0, 0.7); }

TEST(ExposureEvaluator, UniformLargePadCenterIsOne) {
  PolygonSet s;
  s.insert(Box{0, 0, 40000, 40000});  // 40 µm >> 4 beta
  const ShotList shots = fracture(s, {.max_shot_size = 4000}).shots;
  const ExposureEvaluator eval(shots, test_psf());
  EXPECT_NEAR(eval.exposure_at(20000.0, 20000.0), 1.0, 0.02);
  // Pad edge: half the energy.
  EXPECT_NEAR(eval.exposure_at(0.0, 20000.0), 0.5, 0.02);
  // Far outside: nothing.
  EXPECT_NEAR(eval.exposure_at(-30000.0, 20000.0), 0.0, 0.01);
}

TEST(ExposureEvaluator, IsolatedSmallFeatureGetsForwardShareOnly) {
  PolygonSet s;
  s.insert(Box{0, 0, 1000, 1000});  // 1 µm square, alpha = 50 nm << 1 µm << beta
  const ShotList shots = fracture(s).shots;
  const ExposureEvaluator eval(shots, test_psf());
  // Center sees the full forward term but almost no backscatter:
  // E ~ 1/(1+eta) = 0.588.
  EXPECT_NEAR(eval.exposure_at(500.0, 500.0), 1.0 / 1.7, 0.03);
}

TEST(ExposureEvaluator, MatchesBruteForceAnalytic) {
  // Cross-check the two-scale evaluator against the direct erf sum.
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const ExposureEvaluator eval(shots, psf);
  for (const auto& probe : {std::pair{10000.0, 10000.0}, {40500.0, 10000.0},
                            {25000.0, 10000.0}}) {
    double brute = 0.0;
    for (const Shot& s : shots)
      brute += s.dose * exposure_trapezoid(psf, s.shape, probe.first, probe.second);
    EXPECT_NEAR(eval.exposure_at(probe.first, probe.second), brute, 0.03)
        << "at " << probe.first << "," << probe.second;
  }
}

TEST(ExposureEvaluator, SetDosesScalesExposure) {
  PolygonSet s;
  s.insert(Box{0, 0, 2000, 2000});
  const ShotList shots = fracture(s).shots;
  ExposureEvaluator eval(shots, test_psf());
  const double base = eval.exposure_at(1000.0, 1000.0);
  std::vector<double> doses(shots.size(), 2.0);
  eval.set_doses(doses);
  EXPECT_NEAR(eval.exposure_at(1000.0, 1000.0), 2.0 * base, 1e-6);
}

TEST(Pec, UncorrectedPatternHasLargeIsoDenseGap) {
  const ShotList shots = pad_and_island();
  const ExposureEvaluator eval(shots, test_psf());
  const auto exposures = eval.exposures_at_centroids();
  const double lo = *std::min_element(exposures.begin(), exposures.end());
  const double hi = *std::max_element(exposures.begin(), exposures.end());
  // Pad interior ~1.0; isolated island ~0.59.
  EXPECT_GT(hi / lo, 1.4);
}

TEST(Pec, IterativeCorrectionEqualizesExposure) {
  const ShotList shots = pad_and_island();
  PecOptions opt;
  opt.max_iterations = 8;
  opt.tolerance = 0.005;
  const PecResult r = correct_proximity(shots, test_psf(), opt);
  EXPECT_LT(r.final_max_error, 0.05);
  // Convergence history is monotone decreasing (geometric decay).
  for (std::size_t i = 1; i < r.max_error_history.size(); ++i)
    EXPECT_LT(r.max_error_history[i], r.max_error_history[i - 1] + 1e-9);
  // The isolated island must have received a higher dose than the pad core.
  double pad_dose = 0.0;
  double island_dose = 0.0;
  for (const Shot& s : r.shots) {
    const Box bb = s.shape.bbox();
    if (bb.lo.x >= 40000) island_dose = std::max(island_dose, s.dose);
    if (bb.hi.x <= 20000 && bb.lo.x >= 8000 && bb.lo.y >= 8000 && bb.hi.y <= 12000)
      pad_dose = std::max(pad_dose, s.dose);
  }
  EXPECT_GT(island_dose, pad_dose * 1.2);
}

TEST(Pec, CorrectionReducesErrorVsUncorrected) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const ExposureEvaluator eval(shots, psf);
  double uncorrected = 0.0;
  for (double e : eval.exposures_at_centroids())
    uncorrected = std::max(uncorrected, std::abs(e - 1.0));
  const PecResult r = correct_proximity(shots, psf);
  EXPECT_LT(r.final_max_error, uncorrected / 3.0);
}

TEST(Pec, DensityPecAlsoImproves) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const ExposureEvaluator eval(shots, psf);
  double uncorrected = 0.0;
  for (double e : eval.exposures_at_centroids())
    uncorrected = std::max(uncorrected, std::abs(e - 1.0));
  const PecResult r = density_pec(shots, psf);
  EXPECT_LT(r.final_max_error, uncorrected);
}

TEST(Pec, DoseClampRespected) {
  const ShotList shots = pad_and_island();
  PecOptions opt;
  opt.min_dose = 0.8;
  opt.max_dose = 1.5;
  const PecResult r = correct_proximity(shots, test_psf(), opt);
  for (const Shot& s : r.shots) {
    EXPECT_GE(s.dose, 0.8);
    EXPECT_LE(s.dose, 1.5);
  }
}

TEST(Pec, QuantizeDoses) {
  ShotList shots;
  for (int i = 0; i <= 10; ++i) {
    shots.push_back({Trapezoid::rect(Box{Coord(i * 100), 0, Coord(i * 100 + 50), 50}),
                     1.0 + 0.1 * i});
  }
  const int used = quantize_doses(shots, 4);
  EXPECT_LE(used, 4);
  std::vector<double> distinct;
  for (const Shot& s : shots) {
    if (std::find(distinct.begin(), distinct.end(), s.dose) == distinct.end())
      distinct.push_back(s.dose);
  }
  EXPECT_LE(distinct.size(), 4u);
  // Extremes preserved.
  EXPECT_DOUBLE_EQ(*std::min_element(distinct.begin(), distinct.end()), 1.0);
  EXPECT_DOUBLE_EQ(*std::max_element(distinct.begin(), distinct.end()), 2.0);
}

TEST(Pec, QuantizeSingleClassSnapsToRangeMidpoint) {
  ShotList shots{{Trapezoid::rect(Box{0, 0, 50, 50}), 1.0},
                 {Trapezoid::rect(Box{100, 0, 150, 50}), 2.0},
                 {Trapezoid::rect(Box{200, 0, 250, 50}), 4.0}};
  EXPECT_EQ(quantize_doses(shots, 1), 1);
  for (const Shot& s : shots) EXPECT_DOUBLE_EQ(s.dose, 2.5);
}

TEST(Pec, QuantizeConstantDosesUnchanged) {
  ShotList shots{{Trapezoid::rect(Box{0, 0, 50, 50}), 1.7},
                 {Trapezoid::rect(Box{100, 0, 150, 50}), 1.7}};
  EXPECT_EQ(quantize_doses(shots, 1), 1);
  EXPECT_EQ(quantize_doses(shots, 8), 1);
  for (const Shot& s : shots) EXPECT_DOUBLE_EQ(s.dose, 1.7);
}

TEST(Pec, QuantizeClassEdgeTiesToHigherClass) {
  // Range [1, 2], 3 classes -> levels 1.0, 1.5, 2.0 with edges at 1.25 and
  // 1.75. Edge doses snap up; just-below doses snap down.
  const auto make = [](double dose) {
    return Shot{Trapezoid::rect(Box{0, 0, 50, 50}), dose};
  };
  ShotList shots{make(1.0), make(2.0), make(1.25), make(1.75),
                 make(1.2499999), make(1.7499999)};
  EXPECT_EQ(quantize_doses(shots, 3), 3);
  EXPECT_DOUBLE_EQ(shots[2].dose, 1.5);  // exactly on edge: up
  EXPECT_DOUBLE_EQ(shots[3].dose, 2.0);  // exactly on edge: up
  EXPECT_DOUBLE_EQ(shots[4].dose, 1.0);  // below edge: down
  EXPECT_DOUBLE_EQ(shots[5].dose, 1.5);  // below edge: down
}

TEST(Pec, QuantizeEmptyAndSingleShot) {
  ShotList empty;
  EXPECT_EQ(quantize_doses(empty, 5), 0);
  ShotList one{{Trapezoid::rect(Box{0, 0, 50, 50}), 3.0}};
  EXPECT_EQ(quantize_doses(one, 5), 1);
  EXPECT_DOUBLE_EQ(one[0].dose, 3.0);
}

TEST(Pec, QuantizeRejectsNonPositiveClasses) {
  ShotList shots{{Trapezoid::rect(Box{0, 0, 50, 50}), 1.0}};
  EXPECT_THROW(quantize_doses(shots, 0), ContractViolation);
}

TEST(Pec, QuantizedCorrectionStillBeatsUncorrected) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const ExposureEvaluator eval(shots, psf);
  double uncorrected = 0.0;
  for (double e : eval.exposures_at_centroids())
    uncorrected = std::max(uncorrected, std::abs(e - 1.0));
  PecOptions opt;
  opt.dose_classes = 8;
  const PecResult r = correct_proximity(shots, psf, opt);
  EXPECT_LT(r.final_max_error, uncorrected);
}

TEST(ExposureEvaluator, OptimizedQueryMatchesBruteForceReference) {
  // Adversarial reference for the CSR-grid + epoch-stamp neighbor path: an
  // all-short-range PSF makes the evaluator purely analytic, so it must
  // agree with the O(shots x queries) direct sum over every shot to within
  // the cutoff truncation (cutoff_sigmas = 6 pushes that below 1e-9 of the
  // term weight).
  ShotList shots = pad_and_island();
  // Slanted shapes and non-uniform doses exercise the trapezoid slicing and
  // dose weighting paths too.
  shots.push_back({Trapezoid{9000, 10000, 42000, 43000, 42500, 42500}, 1.0});
  shots.push_back({Trapezoid{12000, 13500, 44000, 44000, 43000, 45000}, 1.0});
  for (std::size_t i = 0; i < shots.size(); ++i)
    shots[i].dose = 0.5 + 0.01 * static_cast<double>(i % 173);

  const Psf psf = Psf::double_gaussian(40.0, 150.0, 0.5);  // both terms short
  ExposureOptions opt;
  opt.cutoff_sigmas = 6.0;
  const ExposureEvaluator eval(shots, psf, opt);

  std::vector<std::pair<double, double>> probes = {
      {10000.0, 10000.0}, {40500.0, 10000.0}, {42510.0, 9500.0},
      {43800.0, 12750.0}, {19990.0, 19990.0}, {25000.0, 10000.0},
      {-500.0, -500.0}};
  for (std::size_t i = 0; i < shots.size(); i += 7) {
    probes.push_back(eval.centroid(i));
  }
  for (const auto& [px, py] : probes) {
    double brute = 0.0;
    for (const Shot& s : shots)
      brute += s.dose * exposure_trapezoid(psf, s.shape, px, py);
    EXPECT_NEAR(eval.exposure_at(px, py), brute, 1e-6) << "at " << px << "," << py;
  }
}

TEST(ExposureEvaluator, CentroidSweepIsBitIdenticalAcrossThreadCounts) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();  // short + long term: exercises grid, splat
                               // re-accumulation, and both blur passes
  std::vector<std::vector<double>> results;
  for (const int threads : {1, 2, 8}) {
    ExposureOptions opt;
    opt.threads = threads;
    ExposureEvaluator eval(shots, psf, opt);
    // Push the evaluator through a dose update so the parallel splat
    // re-accumulation path is covered as well.
    std::vector<double> doses(shots.size());
    for (std::size_t i = 0; i < doses.size(); ++i)
      doses[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
    eval.set_doses(doses);
    results.push_back(eval.exposures_at_centroids());
  }
  ASSERT_EQ(results[0].size(), shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i) {
    EXPECT_EQ(results[0][i], results[1][i]) << "1 vs 2 threads at shot " << i;
    EXPECT_EQ(results[0][i], results[2][i]) << "1 vs 8 threads at shot " << i;
  }
}

TEST(Pec, CorrectionIsBitIdenticalAcrossThreadCounts) {
  const ShotList shots = pad_and_island();
  std::vector<ShotList> corrected;
  for (const int threads : {1, 4}) {
    PecOptions opt;
    opt.max_iterations = 4;
    opt.exposure.threads = threads;
    corrected.push_back(correct_proximity(shots, test_psf(), opt).shots);
  }
  ASSERT_EQ(corrected[0].size(), corrected[1].size());
  for (std::size_t i = 0; i < corrected[0].size(); ++i)
    EXPECT_EQ(corrected[0][i].dose, corrected[1][i].dose) << "shot " << i;
}

TEST(ExposureEvaluator, SplatCacheMatchesRerasterization) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  ExposureOptions cached;
  ExposureOptions direct;
  direct.splat_cache = false;
  ExposureEvaluator eval_cached(shots, psf, cached);
  ExposureEvaluator eval_direct(shots, psf, direct);
  std::vector<double> doses(shots.size(), 1.25);
  eval_cached.set_doses(doses);
  eval_direct.set_doses(doses);
  const auto a = eval_cached.exposures_at_centroids();
  const auto b = eval_direct.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The cache stores coverage fractions as float: agreement is to float
    // precision of the long-range contribution, far below raster error.
    EXPECT_NEAR(a[i], b[i], 1e-5) << "shot " << i;
  }
}

TEST(GaussianBlur, PreservesMassInInterior) {
  Raster r(Box{0, 0, 10000, 10000}, 100);
  // Uniform field: blur must be identity in the interior.
  for (double& v : r.data()) v = 1.0;
  gaussian_blur(r, 500.0);
  EXPECT_NEAR(r.at(50, 50), 1.0, 1e-9);
}

TEST(GaussianBlur, SpreadsPointSymmetrically) {
  Raster r(Box{0, 0, 20000, 20000}, 100);
  r.at(100, 100) = 1.0;
  gaussian_blur(r, 800.0);
  EXPECT_NEAR(r.at(92, 100), r.at(108, 100), 1e-12);
  EXPECT_NEAR(r.at(100, 92), r.at(100, 108), 1e-12);
  EXPECT_GT(r.at(100, 100), r.at(104, 100));
  // Total mass preserved away from the borders.
  EXPECT_NEAR(r.sum(), 1.0, 1e-6);
}

}  // namespace
}  // namespace ebl
