// Tests for the incremental dose-delta path of the exposure evaluator
// (ExposureOptions::delta_threshold) and the exact dose-reset entry points
// the resident sharded pipeline is built on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/patterns.h"
#include "fracture/fracture.h"
#include "pec/correction.h"
#include "pec/exposure.h"

namespace ebl {
namespace {

ShotList pad_and_island() {
  PolygonSet s;
  s.insert(Box{0, 0, 20000, 20000});
  s.insert(Box{40000, 9500, 41000, 10500});
  return fracture(s, {.max_shot_size = 2000}).shots;
}

Psf test_psf() { return Psf::double_gaussian(50.0, 3000.0, 0.7); }

// Deterministic pseudo-random dose trajectories: step k moves a subset of
// the doses by a few percent. frac_num/frac_den controls the moved subset
// size so both the delta path (minority moved) and the full fallback
// (majority moved) are exercised.
std::vector<double> perturb(const std::vector<double>& doses, int step,
                            std::uint64_t frac_num, std::uint64_t frac_den) {
  std::vector<double> out = doses;
  std::uint64_t h = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(step + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= i * 0xc4ceb9fe1a85ec53ull + 1;
    if ((h >> 8) % frac_den < frac_num) {
      out[i] *= 1.0 + 0.04 * (static_cast<double>(h % 1000) / 1000.0 - 0.5);
    }
  }
  return out;
}

TEST(DeltaPath, MatchesFullReaccumulationAcrossRandomTrajectories) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  ExposureOptions delta_opt;
  delta_opt.delta_threshold = 1e-15;  // apply every change, via deltas
  ExposureOptions full_opt;
  full_opt.delta_threshold = 0.0;  // the always-full oracle
  ExposureEvaluator delta_eval(shots, psf, delta_opt);
  ExposureEvaluator full_eval(shots, psf, full_opt);

  std::vector<double> doses(shots.size(), 1.0);
  for (int step = 0; step < 12; ++step) {
    // Mostly minority updates (delta path), every fourth step a majority
    // update (full fallback) — the paths must agree wherever they hand over.
    doses = perturb(doses, step, step % 4 == 3 ? 9 : 2, 10);
    delta_eval.set_doses(doses);
    full_eval.set_doses(doses);
    const std::vector<double> a = delta_eval.exposures_at_centroids();
    const std::vector<double> b = full_eval.exposures_at_centroids();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12) << "step " << step << " shot " << i;
    }
  }
  EXPECT_GT(delta_eval.blur_perf().delta_refreshes, 0);
  EXPECT_GT(delta_eval.blur_perf().shots_updated, 0);
  EXPECT_EQ(full_eval.blur_perf().delta_refreshes, 0);
}

TEST(DeltaPath, ShortOnlyPsfDeltasThroughTheCentroidCache) {
  // All-short PSF: no long-range maps at all, the delta path updates only
  // the cached analytic sums.
  const ShotList shots = pad_and_island();
  const Psf psf = Psf::double_gaussian(40.0, 150.0, 0.5);
  ExposureOptions delta_opt;
  delta_opt.delta_threshold = 1e-15;
  ExposureOptions full_opt;
  full_opt.delta_threshold = 0.0;
  ExposureEvaluator delta_eval(shots, psf, delta_opt);
  ExposureEvaluator full_eval(shots, psf, full_opt);
  std::vector<double> doses(shots.size(), 1.0);
  // Prime both caches, then run delta steps.
  (void)delta_eval.exposures_at_centroids();
  for (int step = 0; step < 6; ++step) {
    doses = perturb(doses, step, 1, 10);
    delta_eval.set_doses(doses);
    full_eval.set_doses(doses);
    const std::vector<double> a = delta_eval.exposures_at_centroids();
    const std::vector<double> b = full_eval.exposures_at_centroids();
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12) << "step " << step << " shot " << i;
    }
  }
  EXPECT_GT(delta_eval.blur_perf().delta_refreshes, 0);
}

TEST(DeltaPath, ThresholdZeroIsBitwiseTheFreshEvaluator) {
  // The opt-out contract: with delta_threshold = 0 a trajectory of full
  // re-accumulations leaves the evaluator bit-identical to one freshly
  // constructed at the final doses.
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  ExposureOptions opt;
  opt.delta_threshold = 0.0;
  ExposureEvaluator eval(shots, psf, opt);
  std::vector<double> doses(shots.size(), 1.0);
  for (int step = 0; step < 5; ++step) {
    doses = perturb(doses, step, 3, 10);
    eval.set_doses(doses);
  }
  ShotList fresh_shots = shots;
  for (std::size_t i = 0; i < doses.size(); ++i) fresh_shots[i].dose = doses[i];
  ExposureEvaluator fresh(fresh_shots, psf, opt);
  const std::vector<double> a = eval.exposures_at_centroids();
  const std::vector<double> b = fresh.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "shot " << i;
}

TEST(DeltaPath, BitIdenticalAcrossThreadCounts) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  std::vector<std::vector<double>> sweeps;
  for (const int threads : {1, 4}) {
    ExposureOptions opt;
    opt.delta_threshold = 1e-15;
    opt.threads = threads;
    ExposureEvaluator eval(shots, psf, opt);
    std::vector<double> doses(shots.size(), 1.0);
    std::vector<double> last;
    for (int step = 0; step < 6; ++step) {
      doses = perturb(doses, step, 2, 10);
      eval.set_doses(doses);
      last = eval.exposures_at_centroids();
    }
    EXPECT_GT(eval.blur_perf().delta_refreshes, 0) << threads << " threads";
    sweeps.push_back(std::move(last));
  }
  ASSERT_EQ(sweeps[0].size(), sweeps[1].size());
  for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
    EXPECT_EQ(sweeps[0][i], sweeps[1][i]) << "shot " << i;
  }
}

TEST(DeltaPath, SubThresholdUpdatesAreDeferredThenApplied) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  ExposureOptions opt;
  opt.delta_threshold = 1e-3;
  ExposureEvaluator eval(shots, psf, opt);
  const std::vector<double> before = eval.exposures_at_centroids();
  const int skipped0 = eval.blur_perf().skipped_refreshes;

  // One sub-threshold nudge: nothing is applied, the refresh is skipped
  // outright and the sweep is bitwise unchanged.
  std::vector<double> doses(shots.size(), 1.0 + 2e-4);
  eval.set_doses(doses);
  EXPECT_EQ(eval.blur_perf().skipped_refreshes, skipped0 + 1);
  const std::vector<double> after_nudge = eval.exposures_at_centroids();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(after_nudge[i], before[i]) << "shot " << i;

  // Keep creeping: the accumulated request crosses the threshold and is
  // applied in full — no drift is ever lost, and the evaluator never lags
  // the requests by more than the threshold.
  for (int step = 2; step <= 10; ++step) {
    for (double& d : doses) d = 1.0 + 2e-4 * step;
    eval.set_doses(doses);
  }
  ExposureOptions exact_opt;
  exact_opt.delta_threshold = 0.0;
  ShotList exact_shots = shots;
  for (Shot& s : exact_shots) s.dose = doses[0];
  ExposureEvaluator exact(exact_shots, psf, exact_opt);
  const std::vector<double> a = eval.exposures_at_centroids();
  const std::vector<double> b = exact.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Residual deferral is bounded by the threshold (relative, and exposure
    // is 1-homogeneous in dose).
    EXPECT_NEAR(a[i], b[i], 2.5 * opt.delta_threshold) << "shot " << i;
  }
}

// Indices of the island shots (the small box far from the pad) — moving
// only these keeps the touched region tiny so the windowed delta-blur wins
// its flop model against re-blurring the whole map.
std::vector<std::size_t> island_indices(const ShotList& shots) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < shots.size(); ++i) {
    if (shots[i].shape.bbox().lo.x >= 40000) out.push_back(i);
  }
  return out;
}

std::vector<double> perturb_subset(const std::vector<double>& doses,
                                   const std::vector<std::size_t>& subset,
                                   int step) {
  std::vector<double> out = doses;
  std::uint64_t h = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(step + 1);
  for (const std::size_t i : subset) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= i * 0xc4ceb9fe1a85ec53ull + 1;
    out[i] *= 1.0 + 0.05 * (static_cast<double>(h % 1000) / 1000.0 - 0.5);
  }
  return out;
}

TEST(DeltaPath, WindowedBlurMatchesTheFullBlurOracle) {
  // Localized updates (island only): the delta path refreshes the blur on a
  // snug window around the island instead of the whole map. The windowed
  // result must stay within the delta path's 1e-12 contract of the
  // always-full oracle across a random trajectory.
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const std::vector<std::size_t> island = island_indices(shots);
  ASSERT_FALSE(island.empty());

  ExposureOptions delta_opt;
  delta_opt.delta_threshold = 1e-15;
  ExposureOptions full_opt;
  full_opt.delta_threshold = 0.0;
  ExposureEvaluator delta_eval(shots, psf, delta_opt);
  ExposureEvaluator full_eval(shots, psf, full_opt);

  std::vector<double> doses(shots.size(), 1.0);
  for (int step = 0; step < 8; ++step) {
    doses = perturb_subset(doses, island, step);
    delta_eval.set_doses(doses);
    full_eval.set_doses(doses);
    const std::vector<double> a = delta_eval.exposures_at_centroids();
    const std::vector<double> b = full_eval.exposures_at_centroids();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i], b[i], 1e-12) << "step " << step << " shot " << i;
    }
  }
  EXPECT_GT(delta_eval.blur_perf().windowed_blurs, 0);
  EXPECT_GT(delta_eval.blur_perf().windowed_blur_ms, 0.0);
  EXPECT_LE(delta_eval.blur_perf().windowed_blur_ms,
            delta_eval.blur_perf().blur_ms);
  EXPECT_EQ(full_eval.blur_perf().windowed_blurs, 0);
}

TEST(DeltaPath, WindowedBlurBitIdenticalAcrossThreadCounts) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const std::vector<std::size_t> island = island_indices(shots);
  std::vector<std::vector<double>> sweeps;
  for (const int threads : {1, 4}) {
    ExposureOptions opt;
    opt.delta_threshold = 1e-15;
    opt.threads = threads;
    ExposureEvaluator eval(shots, psf, opt);
    std::vector<double> doses(shots.size(), 1.0);
    std::vector<double> last;
    for (int step = 0; step < 6; ++step) {
      doses = perturb_subset(doses, island, step);
      eval.set_doses(doses);
      last = eval.exposures_at_centroids();
    }
    EXPECT_GT(eval.blur_perf().windowed_blurs, 0) << threads << " threads";
    sweeps.push_back(std::move(last));
  }
  ASSERT_EQ(sweeps[0].size(), sweeps[1].size());
  for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
    EXPECT_EQ(sweeps[0][i], sweeps[1][i]) << "shot " << i;
  }
}

TEST(DosePaths, SetBackgroundDosesIsBitwiseTheFreshEvaluator) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const std::size_t na = shots.size() / 2;
  ExposureEvaluator split(shots, na, psf);

  std::vector<double> bg(shots.size() - na);
  for (std::size_t k = 0; k < bg.size(); ++k)
    bg[k] = 1.0 + 0.02 * static_cast<double>(k % 11);
  split.set_background_doses(bg);
  // Active doses untouched, background doses applied.
  for (std::size_t i = 0; i < na; ++i)
    EXPECT_EQ(split.shots()[i].dose, shots[i].dose);
  for (std::size_t i = na; i < shots.size(); ++i)
    EXPECT_EQ(split.shots()[i].dose, bg[i - na]);

  ShotList fresh_shots = shots;
  for (std::size_t i = na; i < shots.size(); ++i) fresh_shots[i].dose = bg[i - na];
  ExposureEvaluator fresh(fresh_shots, na, psf);
  const std::vector<double> a = split.exposures_at_centroids();
  const std::vector<double> b = fresh.exposures_at_centroids();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "shot " << i;
}

TEST(DosePaths, BackgroundRefreshTakesTheDeltaRouteAndStaysBitwise) {
  // The resident-shard entry point: when only a few ghost doses moved,
  // set_background_doses must re-rasterize just those ghosts' footprints
  // (counted as a delta refresh) and still land bit-identical to a fresh
  // evaluator — the sharded pipeline's residency contract depends on it.
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const std::size_t na = shots.size() / 2;
  ExposureEvaluator split(shots, na, psf);

  std::vector<double> bg(shots.size() - na, 1.0);
  for (int step = 0; step < 4; ++step) {
    // Move a handful of ghost doses per step.
    for (std::size_t k = static_cast<std::size_t>(step); k < bg.size();
         k += bg.size() / 3 + 1) {
      bg[k] *= 1.0 + 0.01 * (step + 1);
    }
    split.set_background_doses(bg);
  }
  EXPECT_GT(split.blur_perf().delta_refreshes, 0);
  EXPECT_EQ(split.blur_perf().refreshes, 1);  // only the constructor's

  ShotList fresh_shots = shots;
  for (std::size_t i = na; i < shots.size(); ++i) fresh_shots[i].dose = bg[i - na];
  ExposureEvaluator fresh(fresh_shots, na, psf);
  const std::vector<double> a = split.exposures_at_centroids();
  const std::vector<double> b = fresh.exposures_at_centroids();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "shot " << i;

  // Re-sending identical background doses skips the refresh outright.
  const int skipped0 = split.blur_perf().skipped_refreshes;
  split.set_background_doses(bg);
  EXPECT_EQ(split.blur_perf().skipped_refreshes, skipped0 + 1);
  const std::vector<double> c = split.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(c[i], a[i]) << "shot " << i;
}

TEST(DosePaths, ResetDosesIsBitwiseTheFreshEvaluator) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  const std::size_t na = shots.size() / 2;
  ExposureEvaluator split(shots, na, psf);

  // Drive the evaluator through delta updates first: reset_doses must wipe
  // every trace of the incremental state.
  std::vector<double> act(na, 1.0);
  for (int step = 0; step < 3; ++step) {
    act = perturb(act, step, 2, 10);
    split.set_active_doses(act);
  }
  std::vector<double> all(shots.size());
  for (std::size_t i = 0; i < shots.size(); ++i)
    all[i] = 1.0 + 0.01 * static_cast<double>(i % 13);
  split.reset_doses(all);

  ShotList fresh_shots = shots;
  for (std::size_t i = 0; i < shots.size(); ++i) fresh_shots[i].dose = all[i];
  ExposureEvaluator fresh(fresh_shots, na, psf);
  const std::vector<double> a = split.exposures_at_centroids();
  const std::vector<double> b = fresh.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "shot " << i;
}

TEST(Sweep, ExactErfSweepMatchesPointQueries) {
  // With fast_erf off the batched sweep and the scalar point query compute
  // the same sums with the same libm erf — they differ only in summation
  // grouping, far below 1e-9.
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  ExposureOptions opt;
  opt.fast_erf = false;
  const ExposureEvaluator eval(shots, psf, opt);
  const std::vector<double> sweep = eval.exposures_at_centroids();
  for (std::size_t i = 0; i < shots.size(); i += 17) {
    const auto [cx, cy] = eval.centroid(i);
    EXPECT_NEAR(sweep[i], eval.exposure_at(cx, cy), 1e-9) << "shot " << i;
  }
}

TEST(Sweep, FastErfSweepStaysWithinAnalyticTruncationBudget) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  ExposureOptions fast;
  ExposureOptions exact;
  exact.fast_erf = false;
  const ExposureEvaluator fast_eval(shots, psf, fast);
  const ExposureEvaluator exact_eval(shots, psf, exact);
  const std::vector<double> a = fast_eval.exposures_at_centroids();
  const std::vector<double> b = exact_eval.exposures_at_centroids();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 2e-6) << "shot " << i;
  }
}

TEST(Corrector, DeltaModeConvergesToTheSameToleranceContract) {
  const ShotList shots = pad_and_island();
  const Psf psf = test_psf();
  PecOptions opt;
  opt.max_iterations = 10;
  opt.tolerance = 0.005;
  const PecResult with_delta = correct_proximity(shots, psf, opt);
  PecOptions oracle_opt = opt;
  oracle_opt.exposure.delta_threshold = 0.0;
  oracle_opt.exposure.fast_erf = false;
  const PecResult oracle = correct_proximity(shots, psf, oracle_opt);
  EXPECT_LT(with_delta.final_max_error, opt.tolerance);
  EXPECT_LT(oracle.final_max_error, opt.tolerance);
  // Same contract, nearly the same doses: deviations bounded by the update
  // schedule's freeze threshold, far below the tolerance.
  for (std::size_t i = 0; i < shots.size(); ++i) {
    EXPECT_NEAR(with_delta.shots[i].dose, oracle.shots[i].dose,
                2.0 * opt.tolerance * oracle.shots[i].dose)
        << "shot " << i;
  }
}

}  // namespace
}  // namespace ebl
